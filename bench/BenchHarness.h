//===- bench/BenchHarness.h - Shared harness for the bench binaries -*- C++ -*-===//
///
/// \file
/// Presentation and reporting helpers shared by the per-figure bench
/// binaries, on top of the runtime Session/SuiteRunner API:
///
///   - figure-style table rows over a SuiteResult (benchmarks as
///     columns plus the mean),
///   - loud, structured failure reporting (the seed's bench-side suite
///     loop silently dropped failed programs),
///   - BenchReporter: every bench binary emits a machine-readable
///     BENCH_<name>.json (wall-clock, mean ED2 ratio, per-series
///     means, extra metrics, the session cache statistics —
///     EvalCache timing/selection and ScheduleCache hit/miss counters
///     per series — plus the build provenance stamp and the session
///     metrics-registry snapshot per series) so the performance
///     trajectory of the repository is diffable and attributable run
///     over run. The output directory is $BENCH_JSON_DIR when set,
///     else the working directory.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_BENCH_BENCHHARNESS_H
#define HCVLIW_BENCH_BENCHHARNESS_H

#include "obs/AllocHook.h"
#include "obs/BuildInfo.h"
#include "runtime/SuiteRunner.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

//===----------------------------------------------------------------------===//
// Allocation counter. Every bench binary is a single translation unit
// including this header once, so the (deliberately non-inline)
// replacement operator new/delete definitions the macro below expands
// are well-formed per binary and count *every* heap allocation the
// bench performs — the metric behind "allocations per schedule" in the
// BENCH json (and the top-level "alloc_count" BenchReporter emits for
// every bench). The macro also installs the counter into the obs
// layer, so span traces recorded by benches carry per-span alloc
// deltas.
//===----------------------------------------------------------------------===//

namespace hcvliw {
inline std::atomic<uint64_t> BenchAllocCounter{0};
/// Allocations since process start (relaxed; exact in single-threaded
/// measurement sections, monotone everywhere).
inline uint64_t benchAllocCount() {
  return BenchAllocCounter.load(std::memory_order_relaxed);
}
} // namespace hcvliw

HCVLIW_INSTRUMENT_ALLOCS(hcvliw::BenchAllocCounter)

namespace hcvliw {

/// Prints one figure-style series: benchmarks as columns plus the mean.
inline void printSeries(TablePrinter &T, const std::string &Label,
                        const SuiteResult &R) {
  std::vector<std::string> Row = {Label};
  for (double V : R.ED2Ratios)
    Row.push_back(formatString("%.3f", V));
  Row.push_back(formatString("%.3f", R.meanRatio()));
  T.addRow(std::move(Row));
}

inline std::vector<std::string> headerRow(const SuiteResult &R,
                                          const std::string &First) {
  std::vector<std::string> H = {First};
  for (const auto &N : R.Names)
    H.push_back(shortSpecName(N));
  H.push_back("mean");
  return H;
}

/// Prints every structured failure record (with the failing stage's
/// wall time, so timeout-shaped failures read differently from logic
/// failures); returns true when any.
inline bool reportFailures(const SuiteResult &R) {
  for (const SuiteFailure &F : R.Failures)
    std::fprintf(stderr, "error: %s failed at %s after %.1f ms: %s\n",
                 F.Program.c_str(), pipelineStageName(F.Stage),
                 F.StageWallMs, F.Reason.c_str());
  return !R.Failures.empty();
}

/// Validated --threads value (support/StrUtil's parseThreadCount);
/// exits with an error on bad input.
inline unsigned parseThreadsArg(const char *Value) {
  unsigned N = 0;
  if (!parseThreadCount(Value, N)) {
    std::fprintf(stderr,
                 "error: --threads expects an integer in [0, 1024], "
                 "got '%s'\n",
                 Value);
    std::exit(1);
  }
  return N;
}

/// Collects one bench binary's results and writes BENCH_<name>.json.
class BenchReporter {
  /// One cache's counters at the end of a series (a Session's EvalCache
  /// and ScheduleCache snapshot).
  struct CacheStats {
    std::string Label;
    uint64_t EvalHits = 0, EvalMisses = 0;
    uint64_t SelectionHits = 0, SelectionMisses = 0;
    uint64_t ScheduleHits = 0, ScheduleMisses = 0;
    /// Scheduler effort behind the misses (fresh Figure 5 runs only):
    /// how future perf PRs attribute wins.
    uint64_t SchedPlacements = 0, SchedEjections = 0;
    uint64_t SchedBudgetUsed = 0, SchedITSteps = 0;
    /// Partitioner effort behind the misses (multilevel hierarchy).
    uint64_t PartLevels = 0, PartMatchedPairs = 0;
    uint64_t PartRefineMoves = 0, PartFMMoves = 0;
    uint64_t PartCoarsenMemoHits = 0;
    /// Robustness ledger (PR 9): silent tick-grid → Rational replays,
    /// loops finished on a degradation rung, and injected faults.
    /// Baselines assert the last two are zero in clean CI runs.
    uint64_t FallbackRational = 0;
    uint64_t DegradedCount = 0;
    uint64_t FaultInjected = 0;
    /// Persistent-tier ledger (PR 10): hits served by snapshot-imported
    /// entries, entries imported, and frames quarantined during load.
    /// Clean CI runs assert cache_load_corrupt is zero.
    uint64_t CachePersistHits = 0;
    uint64_t CachePersistLoaded = 0;
    uint64_t CacheLoadCorrupt = 0;
  };

  std::string Name;
  std::chrono::steady_clock::time_point Start;
  std::vector<std::pair<std::string, double>> Series; ///< label, mean ED2
  std::vector<std::pair<std::string, double>> Metrics; ///< free-form extras
  std::vector<CacheStats> Caches; ///< per-series cache counters
  /// Per-series obs::MetricsRegistry snapshots, pre-rendered as JSON
  /// (label, snapshot) — the "obs" object of the BENCH json.
  std::vector<std::pair<std::string, std::string>> ObsSnapshots;

  static void appendJsonString(std::string &Out, const std::string &S) {
    Out += '"';
    Out += jsonEscape(S); // the shared escaper in support/StrUtil
    Out += '"';
  }

public:
  explicit BenchReporter(std::string BenchName)
      : Name(std::move(BenchName)), Start(std::chrono::steady_clock::now()) {}

  /// Records one suite series' mean ED2 ratio under \p Label.
  void addSeries(const std::string &Label, const SuiteResult &R) {
    Series.emplace_back(Label, R.meanRatio());
  }

  /// Records a free-form scalar (speedups, cache hit rates, ...).
  void addMetric(const std::string &Label, double Value) {
    Metrics.emplace_back(Label, Value);
  }

  /// Snapshots a session's cache counters under \p Label (one call per
  /// series; the JSON's "caches" object carries them all).
  void addCacheStats(const std::string &Label, const Session &S) {
    CacheStats C;
    C.Label = Label;
    C.EvalHits = S.evalCache().hits();
    C.EvalMisses = S.evalCache().misses();
    C.SelectionHits = S.evalCache().selectionHits();
    C.SelectionMisses = S.evalCache().selectionMisses();
    C.ScheduleHits = S.scheduleCache().hits();
    C.ScheduleMisses = S.scheduleCache().misses();
    C.SchedPlacements = S.scheduleCache().placements();
    C.SchedEjections = S.scheduleCache().ejections();
    C.SchedBudgetUsed = S.scheduleCache().budgetUsed();
    C.SchedITSteps = S.scheduleCache().itSteps();
    C.PartLevels = S.scheduleCache().partLevels();
    C.PartMatchedPairs = S.scheduleCache().partMatchedPairs();
    C.PartRefineMoves = S.scheduleCache().partRefineMoves();
    C.PartFMMoves = S.scheduleCache().partFMMoves();
    C.PartCoarsenMemoHits = S.scheduleCache().partCoarsenMemoHits();
    // The robustness ledger lives in the metrics registry (the
    // measurement layer records it per config run); one snapshot
    // serves both these keys and the "obs" object below.
    obs::MetricsSnapshot Snap = S.metricsSnapshot();
    auto Counter = [&Snap](const char *Name) -> uint64_t {
      auto It = Snap.Counters.find(Name);
      return It == Snap.Counters.end() ? 0 : It->second;
    };
    C.FallbackRational = Counter("sched.fallback_rational");
    C.DegradedCount = Counter("degrade.cold_replay") +
                      Counter("degrade.flat_partition") +
                      Counter("degrade.analytic_estimate");
    C.FaultInjected = S.faultInjector().totalInjected();
    C.CachePersistHits = S.cachePersistHits();
    C.CachePersistLoaded = S.cachePersistLoadStats().loaded();
    C.CacheLoadCorrupt = S.cachePersistLoadStats().CorruptFrames;
    Caches.push_back(std::move(C));
    // The full registry snapshot rides along: stage wall-time
    // histograms, cache gauges, whatever the series recorded.
    ObsSnapshots.emplace_back(Label, Snap.json());
  }

  /// Writes BENCH_<name>.json; returns false (and warns) on IO errors.
  bool write() const {
    double WallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    std::vector<double> Means;
    Means.reserve(Series.size());
    for (const auto &S : Series)
      Means.push_back(S.second);

    std::string J = "{\n  \"bench\": ";
    appendJsonString(J, Name);
    // Provenance: which build produced this artifact (committed
    // baselines are only comparable when attributable).
    J += ",\n  \"build\": " + obs::buildInfoJson();
    J += formatString(",\n  \"wall_ms\": %.3f", WallMs);
    J += formatString(",\n  \"alloc_count\": %llu",
                      static_cast<unsigned long long>(benchAllocCount()));
    if (Means.empty())
      J += ",\n  \"mean_ed2_ratio\": null";
    else
      J += formatString(",\n  \"mean_ed2_ratio\": %.6f", mean(Means));
    J += ",\n  \"series\": [";
    for (size_t I = 0; I < Series.size(); ++I) {
      J += I ? ",\n    " : "\n    ";
      J += "{\"label\": ";
      appendJsonString(J, Series[I].first);
      J += formatString(", \"mean_ed2_ratio\": %.6f}", Series[I].second);
    }
    J += Series.empty() ? "]" : "\n  ]";
    J += ",\n  \"metrics\": {";
    for (size_t I = 0; I < Metrics.size(); ++I) {
      J += I ? ", " : "";
      appendJsonString(J, Metrics[I].first);
      J += formatString(": %.6f", Metrics[I].second);
    }
    J += "}";
    J += ",\n  \"caches\": {";
    for (size_t I = 0; I < Caches.size(); ++I) {
      const CacheStats &C = Caches[I];
      J += I ? ",\n    " : "\n    ";
      appendJsonString(J, C.Label);
      J += formatString(": {\"eval_hits\": %llu, \"eval_misses\": %llu, "
                        "\"selection_hits\": %llu, "
                        "\"selection_misses\": %llu, "
                        "\"schedule_hits\": %llu, "
                        "\"schedule_misses\": %llu, "
                        "\"sched_placements\": %llu, "
                        "\"sched_ejections\": %llu, "
                        "\"sched_budget_used\": %llu, "
                        "\"sched_it_steps\": %llu, "
                        "\"part_levels\": %llu, "
                        "\"part_matched_pairs\": %llu, "
                        "\"part_refine_moves\": %llu, "
                        "\"part_fm_moves\": %llu, "
                        "\"part_coarsen_memo_hits\": %llu, "
                        "\"sched_fallback_rational\": %llu, "
                        "\"degraded_count\": %llu, "
                        "\"fault_injected\": %llu, "
                        "\"cache_persist_hits\": %llu, "
                        "\"cache_persist_loaded\": %llu, "
                        "\"cache_load_corrupt\": %llu}",
                        static_cast<unsigned long long>(C.EvalHits),
                        static_cast<unsigned long long>(C.EvalMisses),
                        static_cast<unsigned long long>(C.SelectionHits),
                        static_cast<unsigned long long>(C.SelectionMisses),
                        static_cast<unsigned long long>(C.ScheduleHits),
                        static_cast<unsigned long long>(C.ScheduleMisses),
                        static_cast<unsigned long long>(C.SchedPlacements),
                        static_cast<unsigned long long>(C.SchedEjections),
                        static_cast<unsigned long long>(C.SchedBudgetUsed),
                        static_cast<unsigned long long>(C.SchedITSteps),
                        static_cast<unsigned long long>(C.PartLevels),
                        static_cast<unsigned long long>(C.PartMatchedPairs),
                        static_cast<unsigned long long>(C.PartRefineMoves),
                        static_cast<unsigned long long>(C.PartFMMoves),
                        static_cast<unsigned long long>(C.PartCoarsenMemoHits),
                        static_cast<unsigned long long>(C.FallbackRational),
                        static_cast<unsigned long long>(C.DegradedCount),
                        static_cast<unsigned long long>(C.FaultInjected),
                        static_cast<unsigned long long>(C.CachePersistHits),
                        static_cast<unsigned long long>(C.CachePersistLoaded),
                        static_cast<unsigned long long>(C.CacheLoadCorrupt));
    }
    J += Caches.empty() ? "}" : "\n  }";
    J += ",\n  \"obs\": {";
    for (size_t I = 0; I < ObsSnapshots.size(); ++I) {
      J += I ? ",\n    " : "\n    ";
      appendJsonString(J, ObsSnapshots[I].first);
      J += ": " + ObsSnapshots[I].second;
    }
    J += ObsSnapshots.empty() ? "}" : "\n  }";
    J += "\n}\n";

    const char *Dir = std::getenv("BENCH_JSON_DIR");
    std::string Path = (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
                       "BENCH_" + Name + ".json";
    std::FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return false;
    }
    std::fwrite(J.data(), 1, J.size(), Out);
    std::fclose(Out);
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }
};

/// The suite-sweep skeleton the figure benches share: one session per
/// option set, run the SPECfp suite, report failures, print the series
/// row (header first) and record its mean in the bench's JSON
/// artifact. Keeping it here means a policy change (failure handling,
/// reporting) lands in every figure bench at once.
class SuiteSeriesRunner {
  TablePrinter &T;
  BenchReporter &Rep;
  unsigned Threads;
  bool Header = false;
  int ExitCode = 0;

public:
  SuiteSeriesRunner(TablePrinter &Table, BenchReporter &Rp, unsigned Threads)
      : T(Table), Rep(Rp), Threads(Threads) {}

  SuiteResult run(const std::string &Label, const PipelineOptions &Opts) {
    Session S(Opts, Threads);
    SuiteResult R = SuiteRunner(S).runSpecFP();
    if (reportFailures(R))
      ExitCode = 1;
    if (!Header) {
      T.addRow(headerRow(R, "config"));
      Header = true;
    }
    printSeries(T, Label, R);
    Rep.addSeries(Label, R);
    Rep.addCacheStats(Label, S);
    return R;
  }

  int exitCode() const { return ExitCode; }
};

} // namespace hcvliw

#endif // HCVLIW_BENCH_BENCHHARNESS_H
