//===- bench/BenchUtil.h - DEPRECATED shim over runtime/SuiteRunner -*- C++ -*-===//
///
/// \file
/// DEPRECATED. Suite execution is now a library feature:
/// runtime/Session owns the worker pool and the shared EvalCache,
/// runtime/SuiteRunner fans runProgram across programs with structured
/// failure records, and bench/BenchHarness.h holds the presentation
/// helpers the figure benches share. This header remains only so
/// out-of-tree users of the old free functions keep compiling; it
/// forwards to the new API and will be removed.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_BENCH_BENCHUTIL_H
#define HCVLIW_BENCH_BENCHUTIL_H

#include "BenchHarness.h"
#include "runtime/SuiteRunner.h"

#include <cstdio>
#include <string>

namespace hcvliw {

/// DEPRECATED: use shortSpecName (runtime/SuiteRunner.h).
inline std::string shortName(const std::string &Name) {
  return shortSpecName(Name);
}

/// DEPRECATED: use Session + SuiteRunner::runSpecFP, which parallelize
/// across programs and share one timing cache. This shim reproduces
/// the old serial contract exactly (Names shortened, failures also
/// printed to stderr) on top of the new runner; the returned
/// SuiteResult now additionally carries the structured Failures
/// records instead of only dropping failed programs.
inline SuiteResult runSuite(const PipelineOptions &Opts) {
  Session S(Opts, /*Threads=*/1);
  SuiteResult R = SuiteRunner(S).runSpecFP();
  for (const SuiteFailure &F : R.Failures)
    std::fprintf(stderr, "error: pipeline failed on %s (%s: %s)\n",
                 F.Program.c_str(), pipelineStageName(F.Stage),
                 F.Reason.c_str());
  for (std::string &N : R.Names)
    N = shortSpecName(N);
  return R;
}

} // namespace hcvliw

#endif // HCVLIW_BENCH_BENCHUTIL_H
