//===- bench/BenchUtil.h - Shared harness for the paper's figures -*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: run the full
/// pipeline over the SPECfp suite for a given option set and print the
/// per-benchmark normalized ED2 rows the paper plots.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_BENCH_BENCHUTIL_H
#define HCVLIW_BENCH_BENCHUTIL_H

#include "core/HeterogeneousPipeline.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <string>
#include <vector>

namespace hcvliw {

struct SuiteResult {
  std::vector<std::string> Names; ///< short benchmark names
  std::vector<double> ED2Ratios;  ///< heterogeneous / optimum homogeneous
  std::vector<ProgramRunResult> Details;

  double meanRatio() const { return mean(ED2Ratios); }
};

/// Strips the SPEC number prefix ("171.swim" -> "swim").
inline std::string shortName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

/// Runs the whole suite under \p Opts.
inline SuiteResult runSuite(const PipelineOptions &Opts) {
  SuiteResult R;
  HeterogeneousPipeline Pipe(Opts);
  for (const auto &Prog : buildSpecFPSuite()) {
    auto Res = Pipe.runProgram(Prog);
    if (!Res) {
      std::fprintf(stderr, "error: pipeline failed on %s\n",
                   Prog.Name.c_str());
      continue;
    }
    R.Names.push_back(shortName(Prog.Name));
    R.ED2Ratios.push_back(Res->ED2Ratio);
    R.Details.push_back(std::move(*Res));
  }
  return R;
}

/// Prints one figure-style series: benchmarks as columns plus the mean.
inline void printSeries(TablePrinter &T, const std::string &Label,
                        const SuiteResult &R) {
  std::vector<std::string> Row = {Label};
  for (double V : R.ED2Ratios)
    Row.push_back(formatString("%.3f", V));
  Row.push_back(formatString("%.3f", R.meanRatio()));
  T.addRow(std::move(Row));
}

inline std::vector<std::string> headerRow(const SuiteResult &R,
                                          const std::string &First) {
  std::vector<std::string> H = {First};
  for (const auto &N : R.Names)
    H.push_back(N);
  H.push_back("mean");
  return H;
}

} // namespace hcvliw

#endif // HCVLIW_BENCH_BENCHUTIL_H
