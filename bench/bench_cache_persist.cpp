//===- bench/bench_cache_persist.cpp - Persistent cache tier cost/win -------===//
//
// Pins the economics and the safety contract of the persistent
// schedule/eval-cache tier (runtime/CachePersist, PR 10):
//
//   1. *Warm identity.* A suite run warmed from a snapshot produces the
//      exact per-program ED2 ratios of the cold run — the persistent
//      tier may only change effort, never results. A mismatch exits 2.
//   2. *Clean loads are clean.* Round-tripping the snapshot quarantines
//      zero frames; cache_load_corrupt != 0 on this path exits 2 (CI
//      also asserts it on every bench's "caches" series).
//   3. *The tier pays.* Snapshot save/load throughput and the warm-run
//      wall-time delta are reported so regressions in the serde layer
//      or the import path show up as numbers, not anecdotes.
//
// Writes BENCH_bench_cache_persist.json with both series' cache
// counters (cache_persist_hits / cache_persist_loaded /
// cache_load_corrupt) via BenchReporter.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace hcvliw;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

uint64_t fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  return In ? static_cast<uint64_t>(In.tellg()) : 0;
}

} // namespace

int main(int argc, char **argv) {
  unsigned ThreadsFlag = 0;
  unsigned LoadIters = 10;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc) {
      ThreadsFlag = parseThreadsArg(argv[++I]);
    } else if (!std::strcmp(argv[I], "--load-iters") && I + 1 < argc) {
      LoadIters = static_cast<unsigned>(std::atoi(argv[++I]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_cache_persist [--threads N] "
                   "[--load-iters N]\n");
      return 2;
    }
  }
  if (LoadIters == 0)
    LoadIters = 1;

  BenchReporter Reporter("bench_cache_persist");
  std::vector<BenchmarkProgram> Programs = buildSpecFPSuite();
  const std::string SnapPath = "BENCH_cache_persist.snapshot.tmp";
  PipelineOptions Opts;

  // Cold: nothing persisted anywhere; this populates the session
  // caches the snapshot will capture.
  Session Cold(Opts, ThreadsFlag);
  Clock::time_point T0 = Clock::now();
  SuiteResult ColdR = SuiteRunner(Cold).run(Programs);
  double ColdS = secondsSince(T0);
  Reporter.addSeries("cold", ColdR);
  Reporter.addCacheStats("cold", Cold);

  // Save throughput (one timed save; the format is append-only text,
  // so a single save is representative).
  std::string Err;
  T0 = Clock::now();
  if (!Cold.saveCacheTo(SnapPath, &Err)) {
    std::fprintf(stderr, "FAIL: snapshot save: %s\n", Err.c_str());
    return 2;
  }
  double SaveS = secondsSince(T0);
  uint64_t Saved = Cold.cachePersistSaveStats().saved();
  uint64_t SnapBytes = fileBytes(SnapPath);

  // Load throughput: repeated imports into throwaway sessions (parse +
  // checksum + insert; the dominant cost of every warm start).
  double LoadS = 0;
  uint64_t Loaded = 0;
  for (unsigned I = 0; I < LoadIters; ++I) {
    Session Scratch(Opts, 1);
    T0 = Clock::now();
    if (!Scratch.loadCacheFrom(SnapPath, &Err)) {
      std::fprintf(stderr, "FAIL: snapshot load: %s\n", Err.c_str());
      return 2;
    }
    LoadS += secondsSince(T0);
    Loaded = Scratch.cachePersistLoadStats().loaded();
    if (Scratch.cachePersistLoadStats().CorruptFrames != 0) {
      std::fprintf(stderr,
                   "FAIL: clean snapshot quarantined %llu frames\n",
                   static_cast<unsigned long long>(
                       Scratch.cachePersistLoadStats().CorruptFrames));
      return 2;
    }
  }
  LoadS /= LoadIters;

  // Warm: a fresh session seeded from the snapshot runs the same suite.
  Session Warm(Opts, ThreadsFlag);
  if (!Warm.loadCacheFrom(SnapPath, &Err)) {
    std::fprintf(stderr, "FAIL: warm-session load: %s\n", Err.c_str());
    return 2;
  }
  T0 = Clock::now();
  SuiteResult WarmR = SuiteRunner(Warm).run(Programs);
  double WarmS = secondsSince(T0);
  Reporter.addSeries("warm", WarmR);
  Reporter.addCacheStats("warm", Warm);
  std::remove(SnapPath.c_str());

  // Contract 1: warm results are the cold results, bit for bit.
  bool Identical = ColdR.Names == WarmR.Names &&
                   ColdR.ED2Ratios.size() == WarmR.ED2Ratios.size() &&
                   ColdR.Failures.size() == WarmR.Failures.size();
  for (size_t I = 0; Identical && I < ColdR.ED2Ratios.size(); ++I)
    Identical = std::memcmp(&ColdR.ED2Ratios[I], &WarmR.ED2Ratios[I],
                            sizeof(double)) == 0;
  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: snapshot-warmed suite diverged from the cold "
                 "run (the persistent tier changed a result)\n");
    return 2;
  }
  if (Warm.cachePersistHits() == 0) {
    std::fprintf(stderr,
                 "FAIL: warm run served zero persistent-tier hits — "
                 "the snapshot import is dead weight\n");
    return 2;
  }

  double WarmPct = (ColdS / WarmS - 1.0) * 100.0;
  std::printf("cold suite     %.3f s  (%zu programs, mean ED2 ratio %.4f)\n"
              "snapshot save  %.2f ms (%llu records, %llu bytes)\n"
              "snapshot load  %.2f ms (%llu records, mean of %u)\n"
              "warm suite     %.3f s  (%+.1f%% vs cold, %llu persist hits)\n",
              ColdS, ColdR.Names.size(), ColdR.meanRatio(), SaveS * 1e3,
              static_cast<unsigned long long>(Saved),
              static_cast<unsigned long long>(SnapBytes), LoadS * 1e3,
              static_cast<unsigned long long>(Loaded), LoadIters, WarmS,
              WarmPct, static_cast<unsigned long long>(Warm.cachePersistHits()));

  Reporter.addMetric("cold_suite_s", ColdS);
  Reporter.addMetric("warm_suite_s", WarmS);
  Reporter.addMetric("warm_speedup_pct", WarmPct);
  Reporter.addMetric("snapshot_bytes", static_cast<double>(SnapBytes));
  Reporter.addMetric("snapshot_records_saved", static_cast<double>(Saved));
  Reporter.addMetric("snapshot_records_loaded", static_cast<double>(Loaded));
  Reporter.addMetric("snapshot_save_ms", SaveS * 1e3);
  Reporter.addMetric("snapshot_load_ms", LoadS * 1e3);
  Reporter.write();
  return 0;
}
