//===- bench/bench_explore_scaling.cpp - Engine thread scaling --------------===//
//
// Measures the exploration engine's wall-clock speedup at 1/2/4/8
// worker threads over an enlarged candidate grid (distinct slow/fast
// ratios, so the timing cache cannot collapse the work) on a many-loop
// program. Prints per-thread-count times, speedups, and the cache's
// effect at the paper-default grid for reference.
//
// The scaling run disables the timing cache: memoization removes most
// of the per-candidate work precisely when candidates share frequency
// shapes, which is the honest serial optimization but a dishonest
// parallel workload. Cache-on numbers are reported separately.
//
// Usage: bench_explore_scaling [--repeats N] [--fast N] [--ratios N]
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "explore/ExplorationEngine.h"
#include "profiling/Profiler.h"
#include "runtime/WorkerPool.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "workloads/SpecFPSuite.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace hcvliw;

namespace {

/// A many-loop program: the whole synthetic SPECfp suite concatenated,
/// weights rescaled to keep the profile's budget semantics.
std::vector<Loop> suiteLoops() {
  std::vector<Loop> All;
  auto Suite = buildSpecFPSuite();
  for (auto &Prog : Suite)
    for (Loop &L : Prog.Loops) {
      L.Weight /= static_cast<double>(Suite.size());
      All.push_back(std::move(L));
    }
  return All;
}

/// \p NFast fast factors around the reference and \p NRatios distinct
/// slow/fast ratios in [1, 2]: NFast * NRatios candidates with NRatios
/// distinct frequency shapes.
DesignSpaceOptions enlargedSpace(unsigned NFast, unsigned NRatios) {
  DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
  Space.FastFactors.clear();
  for (unsigned I = 0; I < NFast; ++I)
    Space.FastFactors.push_back(
        Rational(85 + static_cast<int64_t>(I) * 50 / std::max(1u, NFast - 1),
                 100));
  Space.SlowRatios.clear();
  for (unsigned I = 0; I < NRatios; ++I)
    Space.SlowRatios.push_back(Rational(64 + static_cast<int64_t>(I), 64));
  return Space;
}

/// Reuses one long-lived WorkerPool across repeats (the Session model),
/// so the timings measure evaluation scaling, not thread spawning.
double exploreOnce(const ExplorationEngine &Eng, WorkerPool &Pool,
                   bool UseCache, ExplorationResult *Out = nullptr) {
  ExploreOptions Opts;
  Opts.Pool = &Pool;
  Opts.UseCache = UseCache;
  ExplorationResult R = Eng.explore(Opts);
  double Ms = R.Stats.WallMs;
  if (Out)
    *Out = std::move(R);
  return Ms;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Repeats = 3, NFast = 8, NRatios = 48;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--repeats") && I + 1 < argc)
      Repeats = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--fast") && I + 1 < argc)
      NFast = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--ratios") && I + 1 < argc)
      NRatios = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--repeats N] [--fast N] [--ratios N]\n",
                   argv[0]);
      return 1;
    }
  }

  MachineDescription M = MachineDescription::paperDefault();
  std::vector<Loop> Loops = suiteLoops();
  Profiler Prof(M);
  auto P = Prof.profileProgram("suite", Loops);
  if (!P) {
    std::fprintf(stderr, "error: profiling failed\n");
    return 1;
  }
  EnergyModel E(EnergyBreakdown(), P->Totals, P->TexecRefNs,
                M.numClusters());
  TechnologyModel Tech = TechnologyModel::paperDefault();

  DesignSpaceOptions Space = enlargedSpace(NFast, NRatios);
  ExplorationEngine Eng(*P, M, E, Tech, FrequencyMenu::continuous(), Space);

  unsigned HW = std::thread::hardware_concurrency();
  std::printf("explore scaling: %zu loops, %zu candidates "
              "(%zu distinct frequency shapes), %u repeats, "
              "hardware threads: %u\n\n",
              P->Loops.size(), Space.numHeteroCandidates(),
              Space.SlowRatios.size(), Repeats, HW);
  if (HW < 4)
    std::printf("WARNING: fewer than 4 hardware threads; parallel "
                "speedups below reflect this machine, not the engine.\n\n");

  BenchReporter Reporter("bench_explore_scaling");
  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  double Base = 0;
  ExplorationResult Ref;
  TablePrinter T("wall time by worker threads (cache off)");
  T.addRow({"threads", "best ms", "speedup vs 1"});
  double SpeedupAt4 = 0;
  for (unsigned TC : ThreadCounts) {
    WorkerPool Pool(TC);
    double BestMs = 0;
    for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
      ExplorationResult R;
      double Ms = exploreOnce(Eng, Pool, /*UseCache=*/false, &R);
      if (Rep == 0 || Ms < BestMs)
        BestMs = Ms;
      // Cross-check determinism across thread counts.
      if (TC == 1 && Rep == 0)
        Ref = std::move(R);
      else if (R.Best.Valid && Ref.Best.Valid &&
               R.Best.EstED2 != Ref.Best.EstED2) {
        std::fprintf(stderr,
                     "error: thread count changed the selected design\n");
        return 2; // distinct from the (timing-sensitive) scaling exit 1
      }
    }
    if (TC == 1)
      Base = BestMs;
    double Speedup = Base / BestMs;
    if (TC == 4)
      SpeedupAt4 = Speedup;
    T.addRow({formatString("%u", TC), formatString("%.2f", BestMs),
              formatString("%.2fx", Speedup)});
  }
  T.print();

  // The memoization win at the paper-default grid (5x4 candidates, 4
  // distinct shapes), serial: the cache is the other half of the story.
  DesignSpaceOptions Paper = DesignSpaceOptions::paperDefault();
  ExplorationEngine PaperEng(*P, M, E, Tech, FrequencyMenu::continuous(),
                             Paper);
  WorkerPool Serial(1);
  double NoCacheMs = 0, CacheMs = 0;
  ExplorationResult Memoized;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    double A = exploreOnce(PaperEng, Serial, /*UseCache=*/false);
    double B = exploreOnce(PaperEng, Serial, /*UseCache=*/true, &Memoized);
    if (Rep == 0 || A < NoCacheMs)
      NoCacheMs = A;
    if (Rep == 0 || B < CacheMs)
      CacheMs = B;
  }
  std::printf("\npaper-default grid, 1 thread: %.2f ms direct, %.2f ms "
              "memoized (%.2fx)\n",
              NoCacheMs, CacheMs, NoCacheMs / CacheMs);

  bool ScalingOk = SpeedupAt4 > 1.8 || HW < 4;
  std::printf("\nspeedup at 4 threads over 1: %.2fx %s\n", SpeedupAt4,
              SpeedupAt4 > 1.8
                  ? "(PASS: > 1.8x)"
                  : (HW < 4 ? "(machine has < 4 hardware threads)"
                            : "(FAIL: expected > 1.8x)"));
  Reporter.addMetric("speedup_at_4_threads", SpeedupAt4);
  Reporter.addMetric("memoization_speedup", NoCacheMs / CacheMs);
  // This bench runs per-call caches (no Session), so its counters come
  // from the memoized run's own stats.
  Reporter.addMetric("eval_cache_hits",
                     static_cast<double>(Memoized.Stats.CacheHits));
  Reporter.addMetric("eval_cache_misses",
                     static_cast<double>(Memoized.Stats.CacheMisses));
  Reporter.write();
  return ScalingOk ? 0 : 1;
}
