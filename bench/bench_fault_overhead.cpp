//===- bench/bench_fault_overhead.cpp - Cost of the fault layer -------------===//
//
// Pins the two promises the fault injector (src/fault/Fault.h) makes
// about the Figure 5 hot path:
//
//   1. *An idle injector never perturbs results.* Every loop schedule
//      produced with an injector plumbed down — unarmed, or armed with
//      rules that match none of the scheduler's sites — is bit-identical
//      (placements, counters, failure log) to the injector-free
//      baseline. A mismatch here is a real bug — exit code 2, never
//      advisory.
//   2. *Null is free, idle is a branch.* The same sweep-heavy fixture
//      as bench_obs_overhead runs three ways: baseline (no injector
//      anywhere near the call — the production shape), idle (a
//      constructed FaultInjector passed down but never armed — each
//      HCVLIW_FAULT_POINT is a null check plus one relaxed load), and
//      armed-elsewhere (armed with a rule on a site the scheduler never
//      reaches, so every site pays the full match() lookup without
//      firing — the chaos-run worst case that still must not change
//      results). Idle overhead above 2% exits 1 (advisory on shared
//      runners, like the hotpath gates); armed-elsewhere cost is
//      reported but not gated — armed runs are chaos-only.
//
// Writes BENCH_fault_overhead.json (throughputs, overhead percentages)
// via BenchReporter.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "fault/Fault.h"
#include "partition/LoopScheduler.h"
#include "partition/ScheduleScratch.h"
#include "workloads/SyntheticLoops.h"

#include <chrono>
#include <cstring>

using namespace hcvliw;

namespace {

using Clock = std::chrono::steady_clock;

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

const MachineDescription &machine() {
  static MachineDescription M = MachineDescription::paperDefault();
  return M;
}

/// The same regime as bench_obs_overhead: sweep-heavy random loops on
/// the 4-frequency relative ladder, so the per-loop fault sites
/// (sched.warm, sched.place) are crossed many times per schedule — the
/// densest realistic site traffic for the driver.
const std::vector<Loop> &fixtureLoops() {
  static std::vector<Loop> Loops = [] {
    std::vector<Loop> Ls;
    for (unsigned I = 0; I < 12; ++I) {
      RNG Rng(0x0b5 + 131 * I);
      RandomLoopParams Params;
      Params.MinOps = 16;
      Params.MaxOps = 40;
      Params.Trip = 64;
      Ls.push_back(makeRandomLoop(Rng, Params, "fault"));
    }
    return Ls;
  }();
  return Loops;
}

/// FNV-1a over everything the idle-injector equivalence contract pins:
/// success, every node placement, the effort counters, and the failure
/// log (the same digest as bench_obs_overhead's tracing contract).
uint64_t digest(uint64_t H, const LoopScheduleResult &R) {
  auto mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (8 * B)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  mix(R.Success ? 1 : 0);
  mix(static_cast<uint64_t>(R.ITSteps));
  mix(R.Placements);
  mix(R.Ejections);
  mix(R.BudgetUsed);
  mix(static_cast<uint64_t>(R.FailureLog.size()));
  for (const ScheduledNode &N : R.Sched.Nodes) {
    mix(N.Placed ? 1 : 0);
    mix(static_cast<uint64_t>(N.Slot));
    mix(N.Unit);
  }
  return H;
}

struct ModeResult {
  double PerSec = 0;   ///< loop-schedules per second
  uint64_t Digest = 0; ///< result digest (identical across modes)
};

/// Times the whole fixture through LoopScheduler::schedule with \p Inj
/// plumbed down (null for the baseline mode).
ModeResult runMode(fault::FaultInjector *Inj, unsigned MinIters,
                   double MinSeconds) {
  const std::vector<Loop> &Loops = fixtureLoops();
  LoopScheduleOptions O;
  O.Menu = FrequencyMenu::relativeLadder(4);
  O.Fault = Inj;
  O.FaultContext = "bench";
  LoopScheduler S(machine(), heteroConfig(machine()), O);
  ScheduleScratch Scratch;
  ModeResult M;
  auto runAll = [&] {
    uint64_t H = 0xcbf29ce484222325ull;
    for (const Loop &L : Loops)
      H = digest(H, S.schedule(L, nullptr, nullptr, &Scratch));
    M.Digest = H; // data dependence: the sweep cannot be elided
  };
  runAll(); // warm-up (arena growth, page-in; not timed)
  unsigned Iters = 0;
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    runAll();
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  M.PerSec = static_cast<double>(Iters) * Loops.size() / Elapsed;
  return M;
}

} // namespace

int main(int argc, char **argv) {
  unsigned MinIters = 20;
  double MinSeconds = 0.4;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--iters") == 0 && I + 1 < argc) {
      MinIters = static_cast<unsigned>(std::atoi(argv[I + 1]));
      MinSeconds = 0;
      ++I;
    } else {
      std::fprintf(stderr, "usage: bench_fault_overhead [--iters N]\n");
      return 2;
    }
  }

  BenchReporter Reporter("fault_overhead");

  // Baseline: no injector in sight (the library default — every Fault
  // pointer defaulted to null).
  ModeResult Base = runMode(nullptr, MinIters, MinSeconds);

  // Idle: an injector is constructed and plumbed through every layer,
  // but never armed. Each site is a null check plus one relaxed load.
  fault::FaultInjector Inj;
  ModeResult Idle = runMode(&Inj, MinIters, MinSeconds);

  // Armed-elsewhere: a rule targets pool.job, a site the scheduler
  // never reaches, so every sched.* crossing pays the full match()
  // path (mutex + occurrence counter) without firing. Results still
  // must not change — match() only observes.
  std::string PErr;
  auto Plan = fault::FaultPlan::parse(
      "seed 1\non pool.job occurrence 1 throw\n", &PErr);
  if (!Plan) {
    std::fprintf(stderr, "internal error: bad plan: %s\n", PErr.c_str());
    return 2;
  }
  Inj.arm(*Plan);
  ModeResult Armed = runMode(&Inj, MinIters, MinSeconds);
  Inj.disarm();

  double IdlePct = (Base.PerSec / Idle.PerSec - 1.0) * 100.0;
  double ArmedPct = (Base.PerSec / Armed.PerSec - 1.0) * 100.0;
  std::printf("baseline       %.0f loop-schedules/s\n"
              "idle injector  %.0f/s (overhead %+.2f%%)\n"
              "armed (no hit) %.0f/s (overhead %+.2f%%, %llu injected)\n",
              Base.PerSec, Idle.PerSec, IdlePct, Armed.PerSec, ArmedPct,
              static_cast<unsigned long long>(Inj.totalInjected()));

  Reporter.addMetric("loop_schedules_per_sec_baseline", Base.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_idle", Idle.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_armed", Armed.PerSec);
  Reporter.addMetric("overhead_idle_pct", IdlePct);
  Reporter.addMetric("overhead_armed_pct", ArmedPct);
  Reporter.addMetric("fault_injected",
                     static_cast<double>(Inj.totalInjected()));
  Reporter.write();

  // Contract 1 first: identity failures are real failures.
  if (Idle.Digest != Base.Digest || Armed.Digest != Base.Digest) {
    std::fprintf(stderr,
                 "FAIL: results differ across fault modes "
                 "(baseline %016llx, idle %016llx, armed %016llx)\n",
                 static_cast<unsigned long long>(Base.Digest),
                 static_cast<unsigned long long>(Idle.Digest),
                 static_cast<unsigned long long>(Armed.Digest));
    return 2;
  }
  if (Inj.totalInjected() != 0) {
    std::fprintf(stderr,
                 "FAIL: a rule on pool.job fired inside the scheduler\n");
    return 2;
  }

  int Exit = 0;
  if (IdlePct > 2.0) {
    std::fprintf(stderr,
                 "warning: idle-injector overhead %.2f%% — the unarmed "
                 "site should be a branch\n",
                 IdlePct);
    Exit = 1; // advisory on shared runners (CI treats it as a warning)
  }
  return Exit;
}
