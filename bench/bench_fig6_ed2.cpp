//===- bench/bench_fig6_ed2.cpp - Figure 6 reproduction ---------------------===//
//
// Figure 6 of the paper: ED2 of the selected heterogeneous configuration
// normalized to the optimum homogeneous design, per SPECfp benchmark,
// for 1-bus and 2-bus machines. The paper reports ~15% mean benefit,
// ~35% for 200.sixtrack, ~30% for 187.facerec, 20-25% for 189.lucas and
// the smallest benefits (~5%) for 168.wupwise / 173.applu.
//
// Runs on the runtime Session/SuiteRunner API: programs fan out across
// the session's worker pool, loop-timing estimates are shared through
// the session EvalCache (structurally identical loops hit across
// programs), and failed programs surface as structured records.
//
// Flags:
//   --ablation   also run with recurrence pre-placement disabled and
//                with the balance-only refinement objective (DESIGN.md
//                ablations #2 and #3).
//   --oracle     cross-check the Section 3 estimator: measure every
//                ranked heterogeneous candidate of each program and
//                report the estimator's regret (DESIGN.md ablation #4).
//   --threads N  worker-pool parallelism (default: hardware).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "profiling/Profiler.h"

#include <cstdlib>
#include <cstring>

using namespace hcvliw;

static unsigned ThreadsFlag = 0;

static void runOracle() {
  std::printf("\nOracle cross-check (estimator pick vs best measured "
              "candidate):\n");
  PipelineOptions Opts;
  Session S(Opts, ThreadsFlag);
  const HeterogeneousPipeline &Pipe = S.pipeline();
  TablePrinter T("estimator regret per program");
  T.addRow({"program", "est-pick ED2", "oracle ED2", "regret %"});
  for (const auto &Prog : buildSpecFPSuite()) {
    Profiler Prof(S.machine(), Opts.ProgramBudgetNs);
    auto Profile = Prof.profileProgram(Prog.Name, Prog.Loops);
    if (!Profile)
      continue;
    EnergyModel Energy(Opts.Breakdown, Profile->Totals, Profile->TexecRefNs,
                       S.machine().numClusters());
    // Session-backed selector: the ranking's candidate evaluations
    // share the session's timing cache and worker pool.
    ConfigurationSelector Sel(*Profile, S.machine(), Energy, Opts.Tech,
                              S.menu(), Opts.Space, &S.evalCache(),
                              &S.pool());
    auto Ranked = Sel.rankHeterogeneous();
    if (Ranked.empty())
      continue;
    double PickED2 = 0, BestED2 = 0;
    for (size_t I = 0; I < Ranked.size(); ++I) {
      ConfigRunResult M =
          Pipe.measureConfig(*Profile, Prog.Loops, Ranked[I].Config,
                             Ranked[I].Scaling, Energy, true);
      if (!M.Ok)
        continue;
      if (I == 0)
        PickED2 = M.ED2;
      if (BestED2 == 0 || M.ED2 < BestED2)
        BestED2 = M.ED2;
    }
    T.addRow({shortSpecName(Prog.Name), formatString("%.4g", PickED2),
              formatString("%.4g", BestED2),
              formatString("%.2f", 100.0 * (PickED2 / BestED2 - 1.0))});
  }
  T.print();
}

int main(int argc, char **argv) {
  bool Ablation = false, Oracle = false;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--ablation"))
      Ablation = true;
    if (!std::strcmp(argv[I], "--oracle"))
      Oracle = true;
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      ThreadsFlag = parseThreadsArg(argv[++I]);
  }

  std::printf("Figure 6: ED2 of the heterogeneous approach normalized to "
              "the optimum homogeneous.\n"
              "Paper shape: all < 1.0; sixtrack lowest (~0.65), facerec "
              "~0.70, lucas 0.75-0.80; wupwise/applu highest (~0.95); "
              "mean ~0.85.\n\n");

  BenchReporter Reporter("bench_fig6_ed2");
  TablePrinter T("Figure 6: normalized ED2 (lower is better)");
  SuiteSeriesRunner Series(T, Reporter, ThreadsFlag);

  for (unsigned Buses : {1u, 2u}) {
    PipelineOptions Opts;
    Opts.Buses = Buses;
    Series.run(formatString("%u bus%s", Buses, Buses > 1 ? "es" : ""),
               Opts);

    if (Ablation && Buses == 1) {
      PipelineOptions NoPre = Opts;
      NoPre.Part.PrePlaceRecurrences = false;
      Series.run("1 bus, no rec pre-place", NoPre);

      PipelineOptions BalOnly = Opts;
      BalOnly.Part.ED2Objective = false;
      Series.run("1 bus, balance-only refine", BalOnly);
    }
  }
  T.print();

  if (Oracle)
    runOracle();
  Reporter.write();
  return Series.exitCode();
}
