//===- bench/bench_fig7_frequencies.cpp - Figure 7 reproduction -------------===//
//
// Figure 7 of the paper: normalized ED2 when each component supports
// only a limited number of frequencies (any / 16 / 8 / 4), for 1-bus
// and 2-bus machines. A restricted menu occasionally forces the
// scheduler to round the IT up to a synchronizable value ("increase the
// IT due to synchronization problems"). The paper reports <0.1%
// degradation with 16 frequencies, <1% with 8 and ~2% with 4.
//
// Runs on the runtime Session/SuiteRunner API; each menu size is one
// session (the shared EvalCache is menu-bound).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdlib>
#include <cstring>

using namespace hcvliw;

int main(int argc, char **argv) {
  unsigned Threads = 0;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Threads = parseThreadsArg(argv[++I]);

  std::printf("Figure 7: ED2 (normalized to the optimum homogeneous) for "
              "different numbers of supported frequencies.\n"
              "Paper shape: 16 freqs ~= any; 8 freqs < 1%% worse; 4 freqs "
              "~2%% worse.\n\n");

  BenchReporter Reporter("bench_fig7_frequencies");
  TablePrinter T("Figure 7: normalized ED2 by frequency-menu size");
  SuiteSeriesRunner Series(T, Reporter, Threads);
  for (unsigned Buses : {1u, 2u}) {
    struct MenuCase {
      const char *Label;
      std::optional<unsigned> Size;
    } Cases[] = {{"any freq", std::nullopt},
                 {"16 freqs", 16u},
                 {"8 freqs", 8u},
                 {"4 freqs", 4u}};
    for (const auto &C : Cases) {
      PipelineOptions Opts;
      Opts.Buses = Buses;
      Opts.MenuSize = C.Size;
      Series.run(formatString("%u bus%s, %s", Buses, Buses > 1 ? "es" : "",
                              C.Label),
                 Opts);
    }
  }
  T.print();
  Reporter.write();
  return Series.exitCode();
}
