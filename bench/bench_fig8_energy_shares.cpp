//===- bench/bench_fig8_energy_shares.cpp - Figure 8 reproduction -----------===//
//
// Figure 8 of the paper: mean normalized ED2 when the reference
// homogeneous machine attributes different shares of total energy to
// the interconnection network and the cache: {ICN/cache} in
// {.1/.25, .1/.33, .15/.3, .2/.25, .2/.3}. Each variant is normalized
// against *its own* optimum homogeneous design. The paper reports only
// slight variation across these assumptions.
//
// Runs on the runtime Session/SuiteRunner API (one session per
// assumption set; programs fan out across the session's worker pool).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdlib>
#include <cstring>

using namespace hcvliw;

int main(int argc, char **argv) {
  unsigned Threads = 0;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Threads = parseThreadsArg(argv[++I]);

  std::printf("Figure 8: ED2 varying the energy shares of the ICN and the "
              "cache (each vs its own optimum homogeneous).\n"
              "Paper shape: results vary only slightly.\n\n");

  struct ShareCase {
    double Icn, Cache;
  } Cases[] = {{0.10, 0.25}, {0.10, 1.0 / 3.0}, {0.15, 0.30},
               {0.20, 0.25}, {0.20, 0.30}};

  BenchReporter Reporter("bench_fig8_energy_shares");
  TablePrinter T("Figure 8: normalized ED2 by ICN/cache energy share");
  SuiteSeriesRunner Series(T, Reporter, Threads);
  for (unsigned Buses : {1u, 2u}) {
    for (const auto &C : Cases) {
      PipelineOptions Opts;
      Opts.Buses = Buses;
      Opts.Breakdown.IcnShare = C.Icn;
      Opts.Breakdown.CacheShare = C.Cache;
      Series.run(formatString("%u bus%s, .%02d/.%02d", Buses,
                              Buses > 1 ? "es" : "",
                              static_cast<int>(C.Icn * 100),
                              static_cast<int>(C.Cache * 100)),
                 Opts);
    }
  }
  T.print();
  Reporter.write();
  return Series.exitCode();
}
