//===- bench/bench_fig9_leakage.cpp - Figure 9 reproduction -----------------===//
//
// Figure 9 of the paper: mean normalized ED2 when the fraction of each
// component's energy due to leakage varies: (cluster / ICN / cache) in
// {.25/.05/.6, .33/.1/.66, .4/.15/.7, .2/.1/.75}. The paper reports
// little impact ("our scheme is somewhat independent of the assumptions
// made for the baseline microarchitecture").
//
// Runs on the runtime Session/SuiteRunner API (one session per
// assumption set; programs fan out across the session's worker pool).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdlib>
#include <cstring>

using namespace hcvliw;

int main(int argc, char **argv) {
  unsigned Threads = 0;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Threads = parseThreadsArg(argv[++I]);

  std::printf("Figure 9: ED2 varying the leakage fractions "
              "(cluster/ICN/cache), each vs its own optimum "
              "homogeneous.\nPaper shape: changing these percentages has "
              "little impact.\n\n");

  struct LeakCase {
    double Cluster, Icn, Cache;
  } Cases[] = {{0.25, 0.05, 0.60},
               {1.0 / 3.0, 0.10, 2.0 / 3.0},
               {0.40, 0.15, 0.70},
               {0.20, 0.10, 0.75}};

  BenchReporter Reporter("bench_fig9_leakage");
  TablePrinter T("Figure 9: normalized ED2 by leakage fractions");
  SuiteSeriesRunner Series(T, Reporter, Threads);
  for (unsigned Buses : {1u, 2u}) {
    for (const auto &C : Cases) {
      PipelineOptions Opts;
      Opts.Buses = Buses;
      Opts.Breakdown.ClusterLeakageFrac = C.Cluster;
      Opts.Breakdown.IcnLeakageFrac = C.Icn;
      Opts.Breakdown.CacheLeakageFrac = C.Cache;
      Series.run(formatString("%u bus%s, .%02d/.%02d/.%02d", Buses,
                              Buses > 1 ? "es" : "",
                              static_cast<int>(C.Cluster * 100 + 0.5),
                              static_cast<int>(C.Icn * 100 + 0.5),
                              static_cast<int>(C.Cache * 100 + 0.5)),
                 Opts);
    }
  }
  T.print();
  Reporter.write();
  return Series.exitCode();
}
