//===- bench/bench_frontier_measured.cpp - Measured frontier evaluation -----===//
//
// Measured (scheduler-level) evaluation of the Pareto frontier on the
// SPECfp suite: every surviving frontier point of every program is
// re-evaluated with real schedules (measure/FrontierMeasurer on the
// session pool + ScheduleCache) and re-ranked by measured ED2. The
// headline number is the *argmin agreement rate* — on how many
// programs the estimate-level ED2 argmin (what the Section 3 models
// select) is also the measured ED2 argmin — together with the mean
// estimate error over the frontier; both are pinned into
// BENCH_bench_frontier_measured.json.
//
// Flags:
//   --threads N  worker-pool parallelism (default: hardware).
//   --csv PATH   write the aggregated frontier_measured.csv.
//   --json PATH  write the aggregated frontier_measured.json.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstring>

using namespace hcvliw;

int main(int argc, char **argv) {
  unsigned Threads = 0;
  std::string CsvPath, JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Threads = parseThreadsArg(argv[++I]);
    else if (!std::strcmp(argv[I], "--csv") && I + 1 < argc)
      CsvPath = argv[++I];
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
  }

  std::printf("Measured frontier evaluation: every Pareto point of every "
              "program scheduled for real,\nre-ranked by measured ED2 and "
              "compared against the Section 3 estimates.\n\n");

  BenchReporter Reporter("bench_frontier_measured");
  PipelineOptions Opts;
  Session S(Opts, Threads);
  SuiteOptions SO;
  SO.MeasureFrontier = true;
  SuiteResult R = SuiteRunner(S).runSpecFP(SO);
  int Rc = reportFailures(R) ? 1 : 0;
  Reporter.addSeries("paper grid", R);

  TablePrinter T("measured frontier per program");
  T.addRow({"program", "points", "agree", "mean |ED2 err|", "sched hit%"});
  size_t Agree = 0;
  double ErrSum = 0, PointSum = 0;
  for (size_t I = 0; I < R.Frontiers.size(); ++I) {
    const MeasuredFrontier &F = R.Frontiers[I];
    Agree += F.ArgminAgrees ? 1 : 0;
    ErrSum += F.meanAbsED2Error();
    PointSum += static_cast<double>(F.Points.size());
    double Acc = static_cast<double>(F.ScheduleHits + F.ScheduleMisses);
    T.addRow({shortSpecName(F.Program),
              formatString("%zu", F.Points.size()),
              F.ArgminAgrees ? "yes" : "NO",
              formatString("%.4f", F.meanAbsED2Error()),
              formatString("%.1f%%",
                           Acc > 0 ? 100.0 * F.ScheduleHits / Acc : 0.0)});
  }
  T.print();

  size_t N = R.Frontiers.size();
  double AgreeRate = N ? static_cast<double>(Agree) / N : 0.0;
  std::printf("\nargmin agreement: %zu/%zu programs (%.0f%%), mean |ED2 "
              "error| %.4f, mean frontier size %.1f\n",
              Agree, N, 100.0 * AgreeRate, N ? ErrSum / N : 0.0,
              N ? PointSum / N : 0.0);

  if (!CsvPath.empty() && writeFrontierCsv(R.Frontiers, CsvPath))
    std::printf("wrote %s\n", CsvPath.c_str());
  if (!JsonPath.empty() && writeFrontierJson(R.Frontiers, JsonPath))
    std::printf("wrote %s\n", JsonPath.c_str());

  Reporter.addMetric("argmin_agreement_rate", AgreeRate);
  Reporter.addMetric("mean_abs_ed2_error", N ? ErrSum / N : 0.0);
  Reporter.addMetric("mean_frontier_size", N ? PointSum / N : 0.0);
  Reporter.addCacheStats("paper grid", S);
  Reporter.write();
  return Rc;
}
