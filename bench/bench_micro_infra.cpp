//===- bench/bench_micro_infra.cpp - Infrastructure microbenchmarks ---------===//
//
// google-benchmark measurements of the scheduling infrastructure itself:
// recMII computation, MinDist matrices, graph partitioning, modulo
// scheduling, the pipelined simulator, and the full per-program
// pipeline. These are the costs a compiler integrating the technique
// would pay at -O3.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "core/HeterogeneousPipeline.h"
#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"
#include "workloads/SyntheticLoops.h"

#include <benchmark/benchmark.h>

using namespace hcvliw;

static Loop benchLoop(unsigned Ops) {
  RNG Rng(0x5eed + Ops);
  RandomLoopParams P;
  P.MinOps = Ops;
  P.MaxOps = Ops;
  P.Trip = 64;
  return makeRandomLoop(Rng, P, "bench");
}

static void BM_RecMII(benchmark::State &State) {
  Loop L = benchLoop(static_cast<unsigned>(State.range(0)));
  DDG G = DDG::build(L);
  MachineDescription M = MachineDescription::paperDefault();
  auto Lat = M.Isa.nodeLatencies(L);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeRecMII(G, Lat));
}
BENCHMARK(BM_RecMII)->Arg(16)->Arg(48)->Arg(96);

static void BM_MinDist(benchmark::State &State) {
  Loop L = benchLoop(static_cast<unsigned>(State.range(0)));
  DDG G = DDG::build(L);
  MachineDescription M = MachineDescription::paperDefault();
  auto Lat = M.Isa.nodeLatencies(L);
  int64_t II = std::max<int64_t>(1, computeRecMII(G, Lat));
  for (auto _ : State)
    benchmark::DoNotOptimize(MinDistMatrix::compute(G, Lat, II));
}
BENCHMARK(BM_MinDist)->Arg(16)->Arg(48)->Arg(96);

static void BM_ScheduleLoop(benchmark::State &State) {
  Loop L = benchLoop(static_cast<unsigned>(State.range(0)));
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  LoopScheduler S(M, C);
  for (auto _ : State) {
    LoopScheduleResult R = S.schedule(L);
    benchmark::DoNotOptimize(R.Success);
  }
}
BENCHMARK(BM_ScheduleLoop)->Arg(16)->Arg(48)->Arg(96);

static void BM_PipelinedSim(benchmark::State &State) {
  Loop L = benchLoop(32);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler S(M, C);
  LoopScheduleResult R = S.schedule(L);
  if (!R.Success) {
    State.SkipWithError("schedule failed");
    return;
  }
  uint64_t N = static_cast<uint64_t>(State.range(0));
  for (auto _ : State) {
    PipelinedResult PR = runPipelined(L, R.PG, R.Sched, M, N);
    benchmark::DoNotOptimize(PR.Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(N) * L.size());
}
BENCHMARK(BM_PipelinedSim)->Arg(64)->Arg(256);

static void BM_FullProgramPipeline(benchmark::State &State) {
  PipelineOptions Opts;
  HeterogeneousPipeline Pipe(Opts);
  BenchmarkProgram Prog = buildSpecFPProgram("200.sixtrack");
  for (auto _ : State) {
    auto R = Pipe.runProgram(Prog);
    benchmark::DoNotOptimize(R.has_value());
  }
}
BENCHMARK(BM_FullProgramPipeline);

// Expanded BENCHMARK_MAIN: also emits the BENCH_<name>.json artifact
// (wall-clock only; google-benchmark owns the per-kernel numbers).
int main(int argc, char **argv) {
  BenchReporter Reporter("bench_micro_infra");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  Reporter.write();
  return 0;
}
