//===- bench/bench_obs_overhead.cpp - Cost of the observability layer -------===//
//
// Pins the two promises the span tracer (src/obs/Trace.h) makes about
// the Figure 5 hot path:
//
//   1. *Tracing never perturbs results.* Every loop schedule produced
//      with tracing enabled is bit-identical (placements, counters,
//      failure log) to the untraced baseline. A mismatch here is a real
//      bug — exit code 2, never advisory.
//   2. *Off means free, on means cheap.* The same sweep-heavy fixture
//      as bench_sched_hotpath's end-to-end section runs three ways:
//      baseline (no tracer anywhere near the call), disabled (a
//      constructed Tracer passed down but never enabled — the per-span
//      cost is one branch), and enabled (every loop.schedule /
//      loop.itstep / part.* / sched.place span recorded). Enabled
//      overhead above 5% or disabled overhead above 2% exits 1
//      (advisory on shared runners, like the hotpath gates; the
//      cross-run regression gate lives in CI).
//
// Writes BENCH_obs_overhead.json (throughputs, overhead percentages,
// events recorded) via BenchReporter.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "partition/LoopScheduler.h"
#include "partition/ScheduleScratch.h"
#include "workloads/SyntheticLoops.h"

#include <chrono>
#include <cstring>

using namespace hcvliw;

namespace {

using Clock = std::chrono::steady_clock;

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

const MachineDescription &machine() {
  static MachineDescription M = MachineDescription::paperDefault();
  return M;
}

/// The same regime as bench_sched_hotpath's end-to-end section:
/// sweep-heavy random loops on the 4-frequency relative ladder, so an
/// enabled tracer records several loop.itstep spans (plus the nested
/// partition/scheduler spans) per loop — the worst realistic
/// span-density for the driver.
const std::vector<Loop> &fixtureLoops() {
  static std::vector<Loop> Loops = [] {
    std::vector<Loop> Ls;
    for (unsigned I = 0; I < 12; ++I) {
      RNG Rng(0x0b5 + 131 * I);
      RandomLoopParams Params;
      Params.MinOps = 16;
      Params.MaxOps = 40;
      Params.Trip = 64;
      Ls.push_back(makeRandomLoop(Rng, Params, "obs"));
    }
    return Ls;
  }();
  return Loops;
}

/// FNV-1a over everything the warm/cold and traced/untraced
/// equivalence contracts pin: success, every node placement, the
/// machine-plan IT, the effort counters, and the failure log.
uint64_t digest(uint64_t H, const LoopScheduleResult &R) {
  auto mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (8 * B)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  mix(R.Success ? 1 : 0);
  mix(static_cast<uint64_t>(R.ITSteps));
  mix(R.Placements);
  mix(R.Ejections);
  mix(R.BudgetUsed);
  mix(static_cast<uint64_t>(R.FailureLog.size()));
  for (const ScheduledNode &N : R.Sched.Nodes) {
    mix(N.Placed ? 1 : 0);
    mix(static_cast<uint64_t>(N.Slot));
    mix(N.Unit);
  }
  return H;
}

struct ModeResult {
  double PerSec = 0;       ///< loop-schedules per second
  double AllocsPerRun = 0; ///< heap allocations per loop-schedule
  uint64_t Digest = 0;     ///< result digest (identical across modes)
};

/// Times the whole fixture through LoopScheduler::schedule with \p
/// Trace plumbed down (null for the baseline mode).
ModeResult runMode(obs::Tracer *Trace, unsigned MinIters,
                   double MinSeconds) {
  const std::vector<Loop> &Loops = fixtureLoops();
  LoopScheduleOptions O;
  O.Menu = FrequencyMenu::relativeLadder(4);
  LoopScheduler S(machine(), heteroConfig(machine()), O);
  ScheduleScratch Scratch;
  ModeResult M;
  auto runAll = [&] {
    uint64_t H = 0xcbf29ce484222325ull;
    for (const Loop &L : Loops)
      H = digest(H, S.schedule(L, nullptr, nullptr, &Scratch, Trace));
    M.Digest = H; // data dependence: the sweep cannot be elided
  };
  runAll(); // warm-up (arena growth, page-in; not timed)
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    runAll();
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  double Schedules = static_cast<double>(Iters) * Loops.size();
  M.PerSec = Schedules / Elapsed;
  M.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Schedules;
  return M;
}

} // namespace

int main(int argc, char **argv) {
  unsigned MinIters = 20;
  double MinSeconds = 0.4;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--iters") == 0 && I + 1 < argc) {
      MinIters = static_cast<unsigned>(std::atoi(argv[I + 1]));
      MinSeconds = 0;
      ++I;
    } else {
      std::fprintf(stderr, "usage: bench_obs_overhead [--iters N]\n");
      return 2;
    }
  }

  BenchReporter Reporter("obs_overhead");

  // Baseline: no tracer in sight (the library default — every Trace
  // parameter defaulted to null).
  ModeResult Base = runMode(nullptr, MinIters, MinSeconds);

  // Disabled: a Tracer is constructed and plumbed through every layer,
  // but never enabled. Each span constructor is one branch.
  obs::Tracer Tr;
  ModeResult Off = runMode(&Tr, MinIters, MinSeconds);

  // Enabled: every span records. The ring wraps during the run (the
  // fixture emits far more itstep/place spans than one ring holds);
  // wrapping is the designed steady state, not an error.
  Tr.enable();
  ModeResult On = runMode(&Tr, MinIters, MinSeconds);
  Tr.disable();

  double OffPct = (Base.PerSec / Off.PerSec - 1.0) * 100.0;
  double OnPct = (Base.PerSec / On.PerSec - 1.0) * 100.0;
  std::printf("baseline %.0f loop-schedules/s (%.1f allocs each)\n"
              "disabled %.0f/s (overhead %+.2f%%)\n"
              "enabled  %.0f/s (overhead %+.2f%%, %llu events, "
              "%llu dropped by ring wrap)\n",
              Base.PerSec, Base.AllocsPerRun, Off.PerSec, OffPct,
              On.PerSec, OnPct,
              static_cast<unsigned long long>(Tr.totalEvents()),
              static_cast<unsigned long long>(Tr.droppedEvents()));

  Reporter.addMetric("loop_schedules_per_sec_baseline", Base.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_disabled", Off.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_enabled", On.PerSec);
  Reporter.addMetric("overhead_disabled_pct", OffPct);
  Reporter.addMetric("overhead_enabled_pct", OnPct);
  Reporter.addMetric("allocs_per_loop_schedule", Base.AllocsPerRun);
  Reporter.addMetric("trace_events",
                     static_cast<double>(Tr.totalEvents()));
  Reporter.write();

  // Contract 1 first: identity failures are real failures.
  if (Off.Digest != Base.Digest || On.Digest != Base.Digest) {
    std::fprintf(stderr,
                 "FAIL: results differ across tracing modes "
                 "(baseline %016llx, disabled %016llx, enabled %016llx)\n",
                 static_cast<unsigned long long>(Base.Digest),
                 static_cast<unsigned long long>(Off.Digest),
                 static_cast<unsigned long long>(On.Digest));
    return 2;
  }

  int Exit = 0;
  if (OnPct > 5.0) {
    std::fprintf(stderr,
                 "warning: enabled-tracing overhead %.2f%% above the "
                 "5%% target\n",
                 OnPct);
    Exit = 1; // advisory on shared runners (CI treats it as a warning)
  }
  if (OffPct > 2.0) {
    std::fprintf(stderr,
                 "warning: disabled-tracer overhead %.2f%% — the "
                 "span-off path should be a branch\n",
                 OffPct);
    Exit = 1;
  }
  return Exit;
}
