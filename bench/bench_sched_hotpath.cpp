//===- bench/bench_sched_hotpath.cpp - Tick vs Rational scheduling ----------===//
//
// google-benchmark measurement of the per-loop scheduling hot path on
// its two arithmetic routes: the tick-domain fast path (PlanGrid +
// TickGraph + rank-indexed ready set) against the retained
// exact-Rational reference, over unrolled-kernel loops of
// 16/48/96/192 ops on the one-fast/three-slow heterogeneous plan.
// Both paths produce bit-identical schedules
// (tests/sched/TickDomainTest), so the ratio is pure
// arithmetic/indexing win.
//
// Every fixture here is a REAL partition: LoopScheduler's multilevel
// coarsen/refine partitioner places every size, and each size runs on
// a machine whose register files scale with the unroll factor
// (bigLoopRegisters — max(16, Ops/4), the rotating-register-file
// growth an unrolled kernel would ship with). Through PR 7 the
// partitioner topped out near ~200 ops and the 192-op fixture fell
// back to a synthetic cyclic cluster assignment (bus-saturated, ~40%
// copies), which made speedup_192ops measure the MRT scan rather than
// the scheduler; the multilevel hierarchy killed that ceiling and the
// fallback is gone.
//
// Besides the google-benchmark kernels, a self-timed pass records the
// per-schedule throughput ratio in BENCH_sched_hotpath.json
// ("speedup_<N>ops" metrics measured in the same run) plus, per size,
// steady-state allocations per schedule on the tick path (scratch
// arena + prebuilt TickGraph: ~3 allocs, the escaping result vector).
//
// A size-series section then times the WHOLE Figure 5 driver
// (LoopScheduler::schedule — multilevel partition + IT sweep +
// schedule + pressure + validation) at 96/192/384/768/1536 ops,
// emitting "loop_schedules_per_sec_<N>ops". This is the headline of
// the big-loop work: before the multilevel partitioner these sizes
// simply failed above ~200 ops (the series would be empty past the
// second point), and the sublinear ejection-budget curve
// (HeteroModuloScheduler::budgetFor — linear to 256 ops, sqrt-scaled
// above) keeps the largest sizes terminating rather than burning a
// linear budget on ejection storms.
//
// An end-to-end "loop_schedules_per_sec" section times the same
// driver on a menu-restricted sweep-heavy fixture, warm (per-worker
// ScheduleScratch arena + warm-started IT sweep + coarsening memos)
// against cold (WarmStart=false, no caller arena). The cold side
// still shares the driver-level wins (worklist ASAP fixpoint,
// modulo-free MRT slot scan, in-run buffer reuse), so
// "warmstart_speedup" isolates only the warm-start memos/prune and
// understates the PR-over-PR gain: against the pristine PR 4 library
// this same fixture measured 73 loop-schedules/s vs ~280/s warm here.
// Exit code 1 (advisory on shared CI runners) when the 96-op speedup
// is below 3x or warm-start stops paying at all (speedup below 1.02x);
// the cross-run regression gate lives in CI, against the committed
// BENCH_sched_hotpath.json baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "partition/LoopScheduler.h"
#include "partition/ScheduleScratch.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/TickGraph.h"
#include "workloads/SyntheticLoops.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <map>

using namespace hcvliw;

namespace {

using Clock = std::chrono::steady_clock;

/// One prepared scheduling problem: the unrolled-kernel fixture loop,
/// the register-scaled machine it runs on, and the partitioned graph +
/// machine plan a real LoopScheduler run settled on, so the tick-path
/// bench times exactly one HeteroModuloScheduler::run per iteration.
struct Prepared {
  Loop L;
  MachineDescription M;
  LoopScheduleResult R; ///< holds PG + Sched.Plan
  bool Ok = false;
};

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

const MachineDescription &machine() {
  static MachineDescription M = MachineDescription::paperDefault();
  return M;
}

/// The paper machine with register files scaled to the unroll factor
/// (the same policy the big-loop tests pin).
MachineDescription sizedMachine(unsigned Ops) {
  MachineDescription M = MachineDescription::paperDefault();
  for (auto &Cl : M.Clusters)
    Cl.Registers = bigLoopRegisters(Ops);
  return M;
}

Prepared &prepared(unsigned Ops) {
  static std::map<unsigned, Prepared> Cache;
  auto It = Cache.find(Ops);
  if (It != Cache.end())
    return It->second;
  Prepared &P = Cache[Ops];
  P.M = sizedMachine(Ops);
  // Deterministic seed sweep: not every unrolled-kernel instance of a
  // given size is schedulable on the heterogeneous plan; the first
  // schedulable one becomes the fixture. Every size goes through the
  // real multilevel partitioner — the pre-PR 8 cyclic-partition
  // fallback for sizes past ~200 ops is gone.
  for (unsigned Try = 0; Try < 8 && !P.Ok; ++Try) {
    P.L = makeUnrolledKernelLoop("hotpath", Ops, Try);
    LoopScheduler S(P.M, heteroConfig(P.M));
    P.R = S.schedule(P.L);
    P.Ok = P.R.Success;
  }
  return P;
}

SchedulerResult runOnce(const Prepared &P, bool UseTickGrid,
                        const TickGraph *Ticks = nullptr,
                        SchedulerScratch *Scratch = nullptr) {
  SchedulerOptions O;
  O.UseTickGrid = UseTickGrid;
  return HeteroModuloScheduler(P.M, P.R.PG, P.R.Sched.Plan, O)
      .run(Ticks, Scratch);
}

void benchPath(benchmark::State &State, bool UseTickGrid) {
  Prepared &P = prepared(static_cast<unsigned>(State.range(0)));
  if (!P.Ok) {
    State.SkipWithError("preparation schedule failed");
    return;
  }
  // Steady-state configuration: per-worker scratch + one tick lowering,
  // exactly what the Figure 5 driver passes per attempt.
  SchedulerScratch Scratch;
  TickGraph Ticks;
  TickGraph::buildInto(Ticks, P.R.PG, P.R.Sched.Plan);
  for (auto _ : State) {
    SchedulerResult R = runOnce(P, UseTickGrid,
                                UseTickGrid ? &Ticks : nullptr, &Scratch);
    benchmark::DoNotOptimize(R.Success);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_ScheduleTick(benchmark::State &State) { benchPath(State, true); }
void BM_ScheduleRational(benchmark::State &State) { benchPath(State, false); }

BENCHMARK(BM_ScheduleTick)->Arg(16)->Arg(48)->Arg(96)->Arg(192);
BENCHMARK(BM_ScheduleRational)->Arg(16)->Arg(48)->Arg(96)->Arg(192);

/// Self-timed throughput of one path in schedules/sec, plus the
/// steady-state allocation count per schedule (exact: the measurement
/// section is single-threaded).
struct PathTiming {
  double PerSec = 0;
  double AllocsPerRun = 0;
};

PathTiming schedulesPerSec(const Prepared &P, bool UseTickGrid,
                           unsigned MinIters, double MinSeconds) {
  SchedulerScratch Scratch;
  TickGraph Ticks;
  TickGraph::buildInto(Ticks, P.R.PG, P.R.Sched.Plan);
  const TickGraph *TP = UseTickGrid ? &Ticks : nullptr;
  // Warm-up (page in the tables, grow the arena to steady state).
  runOnce(P, UseTickGrid, TP, &Scratch);
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    SchedulerResult R = runOnce(P, UseTickGrid, TP, &Scratch);
    benchmark::DoNotOptimize(R.Success);
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  PathTiming T;
  T.PerSec = Iters / Elapsed;
  T.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Iters;
  return T;
}

/// The end-to-end fixture: sweep-heavy random loops on the 4-frequency
/// relative ladder (the menu shape that makes the Figure 5 driver pay
/// several failing IT steps per loop — the regime warm-start targets).
const std::vector<Loop> &e2eLoops() {
  static std::vector<Loop> Loops = [] {
    std::vector<Loop> Ls;
    for (unsigned I = 0; I < 12; ++I) {
      RNG Rng(0xe2e + 131 * I);
      RandomLoopParams Params;
      Params.MinOps = 16;
      Params.MaxOps = 40;
      Params.Trip = 64;
      Ls.push_back(makeRandomLoop(Rng, Params, "e2e"));
    }
    return Ls;
  }();
  return Loops;
}

/// The big-kernel side of the e2e fixture: re-scheduling the same big
/// loop under several machine plans is where the cross-run analysis
/// memo (recurrences + Floyd-Warshall slack matrix) pays, so the
/// warm/cold comparison must include it or it measures only the
/// small-loop regime.
constexpr unsigned E2EBigSizes[] = {256, 768};

/// Whole-driver throughput in loop-schedules/sec: every loop of the
/// fixture (12 sweep-heavy small loops + the big unrolled kernels,
/// each on its register-scaled machine) through
/// LoopScheduler::schedule. Warm = caller arena + warm-started sweep;
/// cold = WarmStart off, no caller arena (the retained reference
/// configuration — see the header note on how this relates to the
/// PR 4 baseline).
PathTiming loopSchedulesPerSec(bool Warm, unsigned MinIters,
                               double MinSeconds) {
  const std::vector<Loop> &Loops = e2eLoops();
  LoopScheduleOptions O;
  O.Menu = FrequencyMenu::relativeLadder(4);
  O.WarmStart = Warm;
  LoopScheduler S(machine(), heteroConfig(machine()), O);
  std::vector<std::unique_ptr<MachineDescription>> BigMs;
  std::vector<std::unique_ptr<LoopScheduler>> BigSs;
  std::vector<Loop> BigLs;
  for (unsigned Ops : E2EBigSizes) {
    BigMs.push_back(std::make_unique<MachineDescription>(sizedMachine(Ops)));
    BigSs.push_back(std::make_unique<LoopScheduler>(
        *BigMs.back(), heteroConfig(*BigMs.back()), O));
    BigLs.push_back(makeUnrolledKernelLoop("e2ebig", Ops));
  }
  ScheduleScratch Scratch;
  auto runAll = [&] {
    for (const Loop &L : Loops) {
      LoopScheduleResult R =
          S.schedule(L, nullptr, nullptr, Warm ? &Scratch : nullptr);
      benchmark::DoNotOptimize(R.Success);
    }
    for (size_t I = 0; I < BigLs.size(); ++I) {
      LoopScheduleResult R = BigSs[I]->schedule(BigLs[I], nullptr, nullptr,
                                                Warm ? &Scratch : nullptr);
      benchmark::DoNotOptimize(R.Success);
    }
  };
  runAll(); // warm-up
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    runAll();
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  PathTiming T;
  double Schedules =
      static_cast<double>(Iters) * (Loops.size() + BigLs.size());
  T.PerSec = Schedules / Elapsed;
  T.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Schedules;
  return T;
}

/// Whole-driver throughput on ONE fixture of a given size, warm
/// configuration (shared arena + warm-started sweep, continuous menu —
/// the per-size series isolates how partition+schedule cost scales
/// with loop size, not menu-sweep depth).
PathTiming driverPerSec(const Prepared &P, unsigned MinIters,
                        double MinSeconds) {
  LoopScheduleOptions O;
  LoopScheduler S(P.M, heteroConfig(P.M), O);
  ScheduleScratch Scratch;
  auto once = [&] {
    LoopScheduleResult R = S.schedule(P.L, nullptr, nullptr, &Scratch);
    benchmark::DoNotOptimize(R.Success);
  };
  once(); // warm-up
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    once();
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  PathTiming T;
  T.PerSec = Iters / Elapsed;
  T.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Iters;
  return T;
}

} // namespace

int main(int argc, char **argv) {
  // Strip the bench-local flag before google-benchmark sees argv.
  unsigned MinIters = 20;
  double MinSeconds = 0.2;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--speedup-iters") == 0 && I + 1 < argc) {
      MinIters = static_cast<unsigned>(std::atoi(argv[I + 1]));
      MinSeconds = 0;
      ++I;
      continue;
    }
    argv[Out++] = argv[I];
  }
  argc = Out;

  BenchReporter Reporter("sched_hotpath");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 2; // real failure; exit 1 is reserved for the advisory gate
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The JSON's headline metrics: tick/Rational throughput ratio per
  // size plus steady-state allocations per tick schedule, measured
  // back-to-back in this same run.
  double Speedup96 = 0;
  for (unsigned Ops : {16u, 48u, 96u, 192u}) {
    Prepared &P = prepared(Ops);
    if (!P.Ok) {
      std::fprintf(stderr, "warning: %u-op preparation failed\n", Ops);
      continue;
    }
    PathTiming Rat = schedulesPerSec(P, false, MinIters, MinSeconds);
    PathTiming Tick = schedulesPerSec(P, true, MinIters, MinSeconds);
    double Speedup = Tick.PerSec / Rat.PerSec;
    if (Ops == 96)
      Speedup96 = Speedup;
    Reporter.addMetric(formatString("schedules_per_sec_rational_%uops", Ops),
                       Rat.PerSec);
    Reporter.addMetric(formatString("schedules_per_sec_tick_%uops", Ops),
                       Tick.PerSec);
    Reporter.addMetric(formatString("speedup_%uops", Ops), Speedup);
    Reporter.addMetric(formatString("allocs_per_schedule_tick_%uops", Ops),
                       Tick.AllocsPerRun);
    std::printf("%3u ops: rational %.0f/s, tick %.0f/s, speedup %.2fx, "
                "%.1f allocs/schedule\n",
                Ops, Rat.PerSec, Tick.PerSec, Speedup, Tick.AllocsPerRun);
  }

  // The big-loop size series: whole Figure 5 driver throughput as loop
  // size grows. Before the multilevel partitioner, every size past
  // ~200 ops FAILED to partition — this series pins that the ceiling
  // stays dead. Iteration counts scale down with size (a 1536-op
  // schedule is ~100x a 96-op one) so the series stays CI-affordable.
  bool SeriesOk = true;
  for (unsigned Ops : {96u, 192u, 384u, 768u, 1536u}) {
    Prepared &P = prepared(Ops);
    if (!P.Ok) {
      std::fprintf(stderr, "warning: %u-op driver fixture failed\n", Ops);
      SeriesOk = false;
      continue;
    }
    unsigned SizeIters =
        std::max(2u, MinIters / (Ops >= 768 ? 8 : Ops >= 384 ? 4 : 1));
    PathTiming T = driverPerSec(P, SizeIters, MinSeconds);
    Reporter.addMetric(formatString("loop_schedules_per_sec_%uops", Ops),
                       T.PerSec);
    std::printf("%4u ops: %.1f loop-schedules/s end-to-end, "
                "%.0f allocs/loop-schedule, it_steps %u\n",
                Ops, T.PerSec, T.AllocsPerRun, P.R.ITSteps);
  }

  // End-to-end Figure 5 driver: warm-started arena sweep vs the cold
  // PR 4 behavior, on the menu-restricted fixture.
  PathTiming Cold = loopSchedulesPerSec(false, MinIters, MinSeconds);
  PathTiming WarmT = loopSchedulesPerSec(true, MinIters, MinSeconds);
  double WarmSpeedup = WarmT.PerSec / Cold.PerSec;
  Reporter.addMetric("loop_schedules_per_sec", WarmT.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_cold", Cold.PerSec);
  Reporter.addMetric("warmstart_speedup", WarmSpeedup);
  Reporter.addMetric("allocs_per_loop_schedule", WarmT.AllocsPerRun);
  std::printf("e2e: cold %.0f loop-schedules/s, warm %.0f/s, "
              "warm-start speedup %.2fx, %.1f allocs/loop-schedule\n",
              Cold.PerSec, WarmT.PerSec, WarmSpeedup, WarmT.AllocsPerRun);

  Reporter.write();

  int Exit = 0;
  if (Speedup96 < 3.0) {
    std::fprintf(stderr,
                 "warning: 96-op tick speedup %.2fx below the 3x target\n",
                 Speedup96);
    Exit = 1; // advisory on shared runners (CI treats it as a warning)
  }
  if (WarmSpeedup < 1.02) {
    std::fprintf(stderr,
                 "warning: warm-start speedup %.2fx — the warm path is "
                 "no longer paying for itself\n",
                 WarmSpeedup);
    Exit = 1;
  }
  if (!SeriesOk) {
    std::fprintf(stderr,
                 "warning: a big-loop size-series fixture failed to "
                 "schedule — the ~200-op ceiling may be back\n");
    Exit = 1;
  }
  return Exit;
}
