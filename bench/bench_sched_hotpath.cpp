//===- bench/bench_sched_hotpath.cpp - Tick vs Rational scheduling ----------===//
//
// google-benchmark measurement of the per-loop scheduling hot path on
// its two arithmetic routes: the tick-domain fast path (PlanGrid +
// TickGraph + rank-indexed ready set) against the retained
// exact-Rational reference, over synthetic loops of 16/48/96/192 ops
// on the one-fast/three-slow heterogeneous plan. Both paths produce
// bit-identical schedules (tests/sched/TickDomainTest), so the ratio
// is pure arithmetic/indexing win.
//
// The speedup_192ops falloff (PR 4 baseline: 13x vs 22.5x at 96 ops),
// investigated and fixed in PR 5: the 192-op cyclic-partition fixture
// is bus-saturated (~151 copies on a single bus with II == 151), and
// most of its placement-loop time went into the MRT slot-probe scan
// over the nearly-full bus table — path-INDEPENDENT integer work (one
// int64 modulo division per probed slot, paid identically on the tick
// and Rational routes) that grows ~quadratically with the copy count
// and so dilutes the tick/Rational ratio toward the scan-bound limit.
// ModuloReservationTable::reserveFirstFree now performs that scan with
// one modulo total (wrap-around index instead of a division per
// probe), and the forced-placement victim scan no longer materializes
// an occupant vector; 192-op tick throughput rose ~1.8x and the
// speedup to ~23x. The residual gap to the 96-op ratio is the
// remaining path-independent share: ejection-heavy budget iterations
// (~40% of placements are re-placements here) whose predecessor
// rescans and table updates are integer work on both routes.
//
// Besides the google-benchmark kernels, a self-timed pass records the
// per-schedule throughput ratio in BENCH_sched_hotpath.json
// ("speedup_<N>ops" metrics measured in the same run) plus, per size,
// steady-state allocations per schedule on the tick path (scratch
// arena + prebuilt TickGraph: ~3 allocs, the escaping result vector).
// An end-to-end "loop_schedules_per_sec" section times the whole
// Figure 5 driver (LoopScheduler::schedule — partition + IT sweep +
// schedule + pressure + validation) on a menu-restricted sweep-heavy
// fixture, warm (per-worker ScheduleScratch arena + warm-started IT
// sweep) against cold (WarmStart=false, no caller arena). Note the
// cold side still shares most of PR 5's driver-level wins (worklist
// ASAP fixpoint, modulo-free MRT slot scan, in-run buffer reuse), so
// "warmstart_speedup" isolates only the warm-start memos/prune and
// understates the PR-over-PR gain: against the pristine PR 4 library
// this same fixture measured 73 loop-schedules/s vs ~280/s warm here —
// ~3.8x, from ~6700 allocations per loop-schedule down to ~800.
// Exit code 1 (advisory on shared CI runners) when the 96-op speedup
// is below 3x or warm-start stops paying at all (speedup below 1.02x);
// the cross-run regression gate lives in CI, against the committed
// BENCH_sched_hotpath.json baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "partition/LoopScheduler.h"
#include "partition/ScheduleScratch.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/TickGraph.h"
#include "workloads/SyntheticLoops.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <map>

using namespace hcvliw;

namespace {

using Clock = std::chrono::steady_clock;

/// One prepared scheduling problem: the partitioned graph and machine
/// plan a LoopScheduler run settled on, so the bench times exactly one
/// HeteroModuloScheduler::run per iteration.
struct Prepared {
  Loop L;
  LoopScheduleResult R; ///< holds PG + Sched.Plan
  bool Ok = false;
};

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

const MachineDescription &machine() {
  static MachineDescription M = MachineDescription::paperDefault();
  return M;
}

Prepared &prepared(unsigned Ops) {
  static std::map<unsigned, Prepared> Cache;
  auto It = Cache.find(Ops);
  if (It != Cache.end())
    return It->second;
  Prepared &P = Cache[Ops];
  // Deterministic seed sweep: not every random loop of a given size is
  // schedulable on the heterogeneous plan; the first schedulable one
  // becomes the fixture.
  for (unsigned Try = 0; Try < 8 && !P.Ok; ++Try) {
    RNG Rng(0x5eed + Ops + 7919 * Try);
    RandomLoopParams Params;
    Params.MinOps = Ops;
    Params.MaxOps = Ops;
    Params.Trip = 64;
    P.L = makeRandomLoop(Rng, Params, "hotpath");
    LoopScheduler S(machine(), heteroConfig(machine()));
    P.R = S.schedule(P.L);
    P.Ok = P.R.Success;
  }
  if (!P.Ok) {
    // Sizes beyond the partitioner's reach (192 ops): a cyclic cluster
    // assignment (bus-heavy: ~40% copy nodes) and the smallest IT the
    // scheduler itself completes at. The bench times the scheduler, not
    // the partitioner, so fixture quality is irrelevant -- determinism
    // and success are what matter. (This is the bus-saturated fixture
    // behind the speedup_192ops finding in the header.)
    const MachineDescription &M = machine();
    HeteroConfig C = heteroConfig(M);
    DDG G = DDG::build(P.L);
    Partition Part;
    Part.ClusterOf.resize(G.size());
    for (unsigned I = 0; I < G.size(); ++I)
      Part.ClusterOf[I] = I % M.numClusters();
    PartitionedGraph PG = PartitionedGraph::build(P.L, G, M.Isa, Part,
                                                  M.numClusters(),
                                                  M.BusLatency);
    DomainPlanner Planner(M, C, FrequencyMenu::continuous());
    RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(P.L));
    Rational IT = Planner.computeMIT(Recs.RecMII, P.L.opCountsByFU());
    for (unsigned Step = 0; Step < 300 && !P.Ok; ++Step) {
      if (auto Plan = Planner.planForIT(IT)) {
        SchedulerResult R =
            HeteroModuloScheduler(M, PG, *Plan, SchedulerOptions()).run();
        if (R.Success) {
          P.R.PG = PG;
          P.R.Sched = std::move(R.Sched);
          P.Ok = true;
          break;
        }
      }
      IT = Planner.nextIT(IT);
    }
  }
  return P;
}

SchedulerResult runOnce(const Prepared &P, bool UseTickGrid,
                        const TickGraph *Ticks = nullptr,
                        SchedulerScratch *Scratch = nullptr) {
  SchedulerOptions O;
  O.UseTickGrid = UseTickGrid;
  return HeteroModuloScheduler(machine(), P.R.PG, P.R.Sched.Plan, O)
      .run(Ticks, Scratch);
}

void benchPath(benchmark::State &State, bool UseTickGrid) {
  Prepared &P = prepared(static_cast<unsigned>(State.range(0)));
  if (!P.Ok) {
    State.SkipWithError("preparation schedule failed");
    return;
  }
  // Steady-state configuration: per-worker scratch + one tick lowering,
  // exactly what the Figure 5 driver passes per attempt.
  SchedulerScratch Scratch;
  TickGraph Ticks;
  TickGraph::buildInto(Ticks, P.R.PG, P.R.Sched.Plan);
  for (auto _ : State) {
    SchedulerResult R = runOnce(P, UseTickGrid,
                                UseTickGrid ? &Ticks : nullptr, &Scratch);
    benchmark::DoNotOptimize(R.Success);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_ScheduleTick(benchmark::State &State) { benchPath(State, true); }
void BM_ScheduleRational(benchmark::State &State) { benchPath(State, false); }

BENCHMARK(BM_ScheduleTick)->Arg(16)->Arg(48)->Arg(96)->Arg(192);
BENCHMARK(BM_ScheduleRational)->Arg(16)->Arg(48)->Arg(96)->Arg(192);

/// Self-timed throughput of one path in schedules/sec, plus the
/// steady-state allocation count per schedule (exact: the measurement
/// section is single-threaded).
struct PathTiming {
  double PerSec = 0;
  double AllocsPerRun = 0;
};

PathTiming schedulesPerSec(const Prepared &P, bool UseTickGrid,
                           unsigned MinIters, double MinSeconds) {
  SchedulerScratch Scratch;
  TickGraph Ticks;
  TickGraph::buildInto(Ticks, P.R.PG, P.R.Sched.Plan);
  const TickGraph *TP = UseTickGrid ? &Ticks : nullptr;
  // Warm-up (page in the tables, grow the arena to steady state).
  runOnce(P, UseTickGrid, TP, &Scratch);
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    SchedulerResult R = runOnce(P, UseTickGrid, TP, &Scratch);
    benchmark::DoNotOptimize(R.Success);
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  PathTiming T;
  T.PerSec = Iters / Elapsed;
  T.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Iters;
  return T;
}

/// The end-to-end fixture: sweep-heavy random loops on the 4-frequency
/// relative ladder (the menu shape that makes the Figure 5 driver pay
/// several failing IT steps per loop — the regime warm-start targets).
const std::vector<Loop> &e2eLoops() {
  static std::vector<Loop> Loops = [] {
    std::vector<Loop> Ls;
    for (unsigned I = 0; I < 12; ++I) {
      RNG Rng(0xe2e + 131 * I);
      RandomLoopParams Params;
      Params.MinOps = 16;
      Params.MaxOps = 40;
      Params.Trip = 64;
      Ls.push_back(makeRandomLoop(Rng, Params, "e2e"));
    }
    return Ls;
  }();
  return Loops;
}

/// Whole-driver throughput in loop-schedules/sec: every loop of the
/// fixture through LoopScheduler::schedule. Warm = caller arena +
/// warm-started sweep; cold = WarmStart off, no caller arena (the
/// retained reference configuration — see the header note on how this
/// relates to the PR 4 baseline).
PathTiming loopSchedulesPerSec(bool Warm, unsigned MinIters,
                               double MinSeconds) {
  const std::vector<Loop> &Loops = e2eLoops();
  LoopScheduleOptions O;
  O.Menu = FrequencyMenu::relativeLadder(4);
  O.WarmStart = Warm;
  LoopScheduler S(machine(), heteroConfig(machine()), O);
  ScheduleScratch Scratch;
  auto runAll = [&] {
    for (const Loop &L : Loops) {
      LoopScheduleResult R =
          S.schedule(L, nullptr, nullptr, Warm ? &Scratch : nullptr);
      benchmark::DoNotOptimize(R.Success);
    }
  };
  runAll(); // warm-up
  unsigned Iters = 0;
  uint64_t Allocs0 = benchAllocCount();
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    runAll();
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  PathTiming T;
  double Schedules = static_cast<double>(Iters) * Loops.size();
  T.PerSec = Schedules / Elapsed;
  T.AllocsPerRun =
      static_cast<double>(benchAllocCount() - Allocs0) / Schedules;
  return T;
}

} // namespace

int main(int argc, char **argv) {
  // Strip the bench-local flag before google-benchmark sees argv.
  unsigned MinIters = 20;
  double MinSeconds = 0.2;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--speedup-iters") == 0 && I + 1 < argc) {
      MinIters = static_cast<unsigned>(std::atoi(argv[I + 1]));
      MinSeconds = 0;
      ++I;
      continue;
    }
    argv[Out++] = argv[I];
  }
  argc = Out;

  BenchReporter Reporter("sched_hotpath");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 2; // real failure; exit 1 is reserved for the advisory gate
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The JSON's headline metrics: tick/Rational throughput ratio per
  // size plus steady-state allocations per tick schedule, measured
  // back-to-back in this same run.
  double Speedup96 = 0;
  for (unsigned Ops : {16u, 48u, 96u, 192u}) {
    Prepared &P = prepared(Ops);
    if (!P.Ok) {
      std::fprintf(stderr, "warning: %u-op preparation failed\n", Ops);
      continue;
    }
    PathTiming Rat = schedulesPerSec(P, false, MinIters, MinSeconds);
    PathTiming Tick = schedulesPerSec(P, true, MinIters, MinSeconds);
    double Speedup = Tick.PerSec / Rat.PerSec;
    if (Ops == 96)
      Speedup96 = Speedup;
    Reporter.addMetric(formatString("schedules_per_sec_rational_%uops", Ops),
                       Rat.PerSec);
    Reporter.addMetric(formatString("schedules_per_sec_tick_%uops", Ops),
                       Tick.PerSec);
    Reporter.addMetric(formatString("speedup_%uops", Ops), Speedup);
    Reporter.addMetric(formatString("allocs_per_schedule_tick_%uops", Ops),
                       Tick.AllocsPerRun);
    std::printf("%3u ops: rational %.0f/s, tick %.0f/s, speedup %.2fx, "
                "%.1f allocs/schedule\n",
                Ops, Rat.PerSec, Tick.PerSec, Speedup, Tick.AllocsPerRun);
  }

  // End-to-end Figure 5 driver: warm-started arena sweep vs the cold
  // PR 4 behavior, on the menu-restricted fixture.
  PathTiming Cold = loopSchedulesPerSec(false, MinIters, MinSeconds);
  PathTiming WarmT = loopSchedulesPerSec(true, MinIters, MinSeconds);
  double WarmSpeedup = WarmT.PerSec / Cold.PerSec;
  Reporter.addMetric("loop_schedules_per_sec", WarmT.PerSec);
  Reporter.addMetric("loop_schedules_per_sec_cold", Cold.PerSec);
  Reporter.addMetric("warmstart_speedup", WarmSpeedup);
  Reporter.addMetric("allocs_per_loop_schedule", WarmT.AllocsPerRun);
  std::printf("e2e: cold %.0f loop-schedules/s, warm %.0f/s, "
              "warm-start speedup %.2fx, %.1f allocs/loop-schedule\n",
              Cold.PerSec, WarmT.PerSec, WarmSpeedup, WarmT.AllocsPerRun);

  Reporter.write();

  int Exit = 0;
  if (Speedup96 < 3.0) {
    std::fprintf(stderr,
                 "warning: 96-op tick speedup %.2fx below the 3x target\n",
                 Speedup96);
    Exit = 1; // advisory on shared runners (CI treats it as a warning)
  }
  if (WarmSpeedup < 1.02) {
    std::fprintf(stderr,
                 "warning: warm-start speedup %.2fx — the warm path is "
                 "no longer paying for itself\n",
                 WarmSpeedup);
    Exit = 1;
  }
  return Exit;
}
