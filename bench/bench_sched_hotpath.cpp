//===- bench/bench_sched_hotpath.cpp - Tick vs Rational scheduling ----------===//
//
// google-benchmark measurement of the per-loop scheduling hot path on
// its two arithmetic routes: the tick-domain fast path (PlanGrid +
// TickGraph + rank-indexed ready set) against the retained
// exact-Rational reference, over synthetic loops of 16/48/96/192 ops
// on the one-fast/three-slow heterogeneous plan. Both paths produce
// bit-identical schedules (tests/sched/TickDomainTest), so the ratio
// is pure arithmetic/indexing win.
//
// Besides the google-benchmark kernels, a self-timed pass records the
// per-schedule throughput ratio in BENCH_sched_hotpath.json
// ("speedup_<N>ops" metrics measured in the same run). Exit code 1
// (advisory on shared CI runners) when the 96-op speedup is below 3x.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "partition/LoopScheduler.h"
#include "sched/HeteroModuloScheduler.h"
#include "workloads/SyntheticLoops.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <map>

using namespace hcvliw;

namespace {

/// One prepared scheduling problem: the partitioned graph and machine
/// plan a LoopScheduler run settled on, so the bench times exactly one
/// HeteroModuloScheduler::run per iteration.
struct Prepared {
  Loop L;
  LoopScheduleResult R; ///< holds PG + Sched.Plan
  bool Ok = false;
};

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

const MachineDescription &machine() {
  static MachineDescription M = MachineDescription::paperDefault();
  return M;
}

Prepared &prepared(unsigned Ops) {
  static std::map<unsigned, Prepared> Cache;
  auto It = Cache.find(Ops);
  if (It != Cache.end())
    return It->second;
  Prepared &P = Cache[Ops];
  // Deterministic seed sweep: not every random loop of a given size is
  // schedulable on the heterogeneous plan; the first schedulable one
  // becomes the fixture.
  for (unsigned Try = 0; Try < 8 && !P.Ok; ++Try) {
    RNG Rng(0x5eed + Ops + 7919 * Try);
    RandomLoopParams Params;
    Params.MinOps = Ops;
    Params.MaxOps = Ops;
    Params.Trip = 64;
    P.L = makeRandomLoop(Rng, Params, "hotpath");
    LoopScheduler S(machine(), heteroConfig(machine()));
    P.R = S.schedule(P.L);
    P.Ok = P.R.Success;
  }
  if (!P.Ok) {
    // Sizes beyond the partitioner's reach (192 ops): a cyclic cluster
    // assignment (bus-heavy: ~40% copy nodes) and the smallest IT the
    // scheduler itself completes at. The bench times the scheduler, not
    // the partitioner, so fixture quality is irrelevant -- determinism
    // and success are what matter.
    const MachineDescription &M = machine();
    HeteroConfig C = heteroConfig(M);
    DDG G = DDG::build(P.L);
    Partition Part;
    Part.ClusterOf.resize(G.size());
    for (unsigned I = 0; I < G.size(); ++I)
      Part.ClusterOf[I] = I % M.numClusters();
    PartitionedGraph PG = PartitionedGraph::build(P.L, G, M.Isa, Part,
                                                  M.numClusters(),
                                                  M.BusLatency);
    DomainPlanner Planner(M, C, FrequencyMenu::continuous());
    RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(P.L));
    Rational IT = Planner.computeMIT(Recs.RecMII, P.L.opCountsByFU());
    for (unsigned Step = 0; Step < 300 && !P.Ok; ++Step) {
      if (auto Plan = Planner.planForIT(IT)) {
        SchedulerResult R =
            HeteroModuloScheduler(M, PG, *Plan, SchedulerOptions()).run();
        if (R.Success) {
          P.R.PG = PG;
          P.R.Sched = std::move(R.Sched);
          P.Ok = true;
          break;
        }
      }
      IT = Planner.nextIT(IT);
    }
  }
  return P;
}

SchedulerResult runOnce(const Prepared &P, bool UseTickGrid) {
  SchedulerOptions O;
  O.UseTickGrid = UseTickGrid;
  return HeteroModuloScheduler(machine(), P.R.PG, P.R.Sched.Plan, O).run();
}

void benchPath(benchmark::State &State, bool UseTickGrid) {
  Prepared &P = prepared(static_cast<unsigned>(State.range(0)));
  if (!P.Ok) {
    State.SkipWithError("preparation schedule failed");
    return;
  }
  for (auto _ : State) {
    SchedulerResult R = runOnce(P, UseTickGrid);
    benchmark::DoNotOptimize(R.Success);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_ScheduleTick(benchmark::State &State) { benchPath(State, true); }
void BM_ScheduleRational(benchmark::State &State) { benchPath(State, false); }

BENCHMARK(BM_ScheduleTick)->Arg(16)->Arg(48)->Arg(96)->Arg(192);
BENCHMARK(BM_ScheduleRational)->Arg(16)->Arg(48)->Arg(96)->Arg(192);

/// Self-timed per-schedule throughput of one path, in schedules/sec.
double schedulesPerSec(const Prepared &P, bool UseTickGrid,
                       unsigned MinIters, double MinSeconds) {
  using Clock = std::chrono::steady_clock;
  // Warm-up (page in the tables, settle the allocator).
  runOnce(P, UseTickGrid);
  unsigned Iters = 0;
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    SchedulerResult R = runOnce(P, UseTickGrid);
    benchmark::DoNotOptimize(R.Success);
    ++Iters;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Iters < MinIters || Elapsed < MinSeconds);
  return Iters / Elapsed;
}

} // namespace

int main(int argc, char **argv) {
  // Strip the bench-local flag before google-benchmark sees argv.
  unsigned MinIters = 20;
  double MinSeconds = 0.2;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--speedup-iters") == 0 && I + 1 < argc) {
      MinIters = static_cast<unsigned>(std::atoi(argv[I + 1]));
      MinSeconds = 0;
      ++I;
      continue;
    }
    argv[Out++] = argv[I];
  }
  argc = Out;

  BenchReporter Reporter("sched_hotpath");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 2; // real failure; exit 1 is reserved for the advisory gate
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The JSON's headline metrics: tick/Rational throughput ratio per
  // size, measured back-to-back in this same run.
  double Speedup96 = 0;
  for (unsigned Ops : {16u, 48u, 96u, 192u}) {
    Prepared &P = prepared(Ops);
    if (!P.Ok) {
      std::fprintf(stderr, "warning: %u-op preparation failed\n", Ops);
      continue;
    }
    double Rat = schedulesPerSec(P, false, MinIters, MinSeconds);
    double Tick = schedulesPerSec(P, true, MinIters, MinSeconds);
    double Speedup = Tick / Rat;
    if (Ops == 96)
      Speedup96 = Speedup;
    Reporter.addMetric(formatString("schedules_per_sec_rational_%uops", Ops),
                       Rat);
    Reporter.addMetric(formatString("schedules_per_sec_tick_%uops", Ops),
                       Tick);
    Reporter.addMetric(formatString("speedup_%uops", Ops), Speedup);
    std::printf("%3u ops: rational %.0f/s, tick %.0f/s, speedup %.2fx\n",
                Ops, Rat, Tick, Speedup);
  }
  Reporter.write();

  if (Speedup96 < 3.0) {
    std::fprintf(stderr,
                 "warning: 96-op tick speedup %.2fx below the 3x target\n",
                 Speedup96);
    return 1; // advisory on shared runners (CI treats it as a warning)
  }
  return 0;
}
