//===- bench/bench_table1_isa.cpp - Table 1 reproduction --------------------===//
//
// Table 1 of the paper: instruction latencies (cycles) and average
// energy consumption relative to an integer add, per category and type.
// The bench prints the table, then demonstrates the values are live in
// the stack: per-opcode schedule latency (a chain of two dependent ops
// must start lat(op) cycles apart on the reference machine) and the
// energy weighting of the Section 3.1 model.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "ir/LoopBuilder.h"
#include "partition/LoopScheduler.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace hcvliw;

int main() {
  BenchReporter Reporter("bench_table1_isa");
  MachineDescription M = MachineDescription::paperDefault();

  std::printf("Table 1: latency of the instructions and energy relative "
              "to an integer add.\n\n");
  TablePrinter T("Table 1: ISA latency / energy");
  T.addRow({"category", "INT lat", "INT E", "FP lat", "FP E"});
  struct Row {
    const char *Label;
    OpCategory Cat;
  } Rows[] = {{"Memory", OpCategory::Memory},
              {"Arithmetic", OpCategory::Arith},
              {"Multiply", OpCategory::Mul},
              {"Division/Modulo/sqrt", OpCategory::Div}};
  auto opcodeFor = [](OpCategory Cat, bool Fp) {
    switch (Cat) {
    case OpCategory::Memory:
      return Opcode::Load;
    case OpCategory::Arith:
      return Fp ? Opcode::FAdd : Opcode::IntAdd;
    case OpCategory::Mul:
      return Fp ? Opcode::FMul : Opcode::IntMul;
    case OpCategory::Div:
      return Fp ? Opcode::FDiv : Opcode::IntDiv;
    case OpCategory::Copy:
      break;
    }
    return Opcode::IntAdd;
  };
  for (const auto &R : Rows) {
    LatencyEnergy I = M.Isa.get(opcodeFor(R.Cat, false));
    LatencyEnergy F = M.Isa.get(opcodeFor(R.Cat, true));
    T.addRow({R.Label, formatString("%u", I.Latency),
              formatString("%.1f", I.Energy), formatString("%u", F.Latency),
              formatString("%.1f", F.Energy)});
  }
  T.print();

  // Live check: a two-op dependence chain r = op(x); s = add(r, r) must
  // schedule s exactly lat(op) cycles after r. A single-cluster machine
  // keeps the chain together so the slot difference is the latency.
  std::printf("\nScheduled producer->consumer separation on a "
              "single-cluster reference machine (must equal the latency "
              "column):\n");
  MachineDescription M1 = MachineDescription::paperDefault(1, 1);
  TablePrinter S("measured separations");
  S.addRow({"opcode", "table lat", "scheduled separation (cycles)"});
  for (Opcode Op : {Opcode::IntAdd, Opcode::IntMul, Opcode::IntDiv,
                    Opcode::FAdd, Opcode::FMul, Opcode::FDiv}) {
    LoopBuilder B(formatString("chain_%s", opcodeName(Op)), 16);
    unsigned A = B.array("A");
    unsigned O = B.array("O");
    unsigned X = B.load("x", A);
    unsigned R = B.op(Op, "r", Operand::def(X), Operand::def(X));
    // The consumer uses the opposite unit kind so producer and consumer
    // never collide on a functional unit at the same modulo slot.
    Opcode Consumer = isFloatOpcode(Op) ? Opcode::IntAdd : Opcode::FAdd;
    unsigned Sum =
        B.op(Consumer, "s", Operand::def(R), Operand::def(R));
    B.store(O, Operand::def(Sum));
    Loop L = B.take();

    HeteroConfig C = HeteroConfig::reference(M1);
    LoopScheduler Sched(M1, C);
    LoopScheduleResult LR = Sched.schedule(L);
    if (!LR.Success) {
      std::fprintf(stderr, "error: chain loop failed to schedule\n");
      return 1;
    }
    int64_t Sep = LR.Sched.Nodes[Sum].Slot - LR.Sched.Nodes[R].Slot;
    S.addRow({opcodeName(Op), formatString("%u", M1.Isa.latency(Op)),
              formatString("%lld", static_cast<long long>(Sep))});
  }
  S.print();
  Reporter.write();
  return 0;
}
