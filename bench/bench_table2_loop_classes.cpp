//===- bench/bench_table2_loop_classes.cpp - Table 2 reproduction -----------===//
//
// Table 2 of the paper: percentage of execution time each benchmark
// spends in resource-constrained loops (recMII < resMII), borderline
// loops (resMII <= recMII < 1.3 resMII) and recurrence-constrained loops
// (1.3 resMII <= recMII), measured on the reference homogeneous machine
// with one bus. E.g. 171.swim is 100% resource-constrained and
// 200.sixtrack 99.9% recurrence-constrained.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "profiling/Profiler.h"

using namespace hcvliw;

int main() {
  std::printf("Table 2: %% of execution time in resource- / borderline- / "
              "recurrence-constrained loops (reference machine, 1 bus).\n\n");

  BenchReporter Reporter("bench_table2_loop_classes");
  PipelineOptions Opts;
  // Serial session: this bench only profiles, so the pool stays idle.
  Session S(Opts, /*Threads=*/1);
  Profiler Prof(S.machine(), Opts.ProgramBudgetNs);

  TablePrinter T("Table 2: loop constraint classes");
  T.addRow({"program", "recMII<resMII", "resMII<=recMII<1.3resMII",
            "1.3resMII<=recMII"});
  for (const auto &Prog : buildSpecFPSuite()) {
    std::string Err;
    auto Profile = Prof.profileProgram(Prog.Name, Prog.Loops, &Err);
    if (!Profile) {
      std::fprintf(stderr, "error: profiling failed on %s: %s\n",
                   Prog.Name.c_str(), Err.c_str());
      continue;
    }
    auto Sh = Profile->shareByConstraint();
    T.addRow({Prog.Name, formatString("%.2f%%", 100 * Sh[0]),
              formatString("%.2f%%", 100 * Sh[1]),
              formatString("%.2f%%", 100 * Sh[2])});
  }
  T.print();

  std::printf("\nPer-loop classification detail:\n");
  TablePrinter D("loops");
  D.addRow({"program", "loop", "recMII", "resMII", "class", "weight"});
  for (const auto &Prog : buildSpecFPSuite()) {
    auto Profile = Prof.profileProgram(Prog.Name, Prog.Loops);
    if (!Profile)
      continue;
    for (const auto &LP : Profile->Loops)
      D.addRow({Prog.Name, LP.Name,
                formatString("%lld", static_cast<long long>(LP.RecMII)),
                formatString("%lld", static_cast<long long>(LP.ResMII)),
                loopConstraintName(LP.classification()),
                formatString("%.4f", LP.Weight)});
  }
  D.print();
  Reporter.addCacheStats("profile-only", S);
  Reporter.write();
  return 0;
}
