//===- examples/explore_tool.cpp - Design-space exploration CLI -------------===//
//
// Drives the parallel exploration engine over one benchmark program (or
// the whole synthetic SPECfp suite), printing the Pareto frontier and
// search statistics and optionally serializing the full report.
//
// Usage:
//   explore_tool [--program NAME] [--threads N] [--menu K]
//                [--fast LIST] [--ratios LIST] [--num-fast N]
//                [--no-prune] [--no-cache] [--csv PATH] [--json PATH]
//                [--measure-frontier] [--measured-csv PATH]
//                [--measured-json PATH]
//     --program   SPECfp program name (e.g. 171.swim; default: all)
//     --threads   worker threads (default 0 = hardware concurrency)
//     --menu      frequencies per domain (default: any)
//     --fast      comma-separated fast factors, e.g. 9/10,1,11/10
//     --ratios    comma-separated slow/fast ratios, e.g. 1,5/4,3/2
//     --num-fast  number of fast clusters (default 1)
//     --no-prune  skip the Pareto frontier
//     --no-cache  disable timing memoization
//     --csv/--json  write the report (with --program only, the path is
//                   used as-is; over the suite, the program name is
//                   inserted before the extension)
//     --measure-frontier  also measure every frontier point with real
//                   schedules (measure/FrontierMeasurer on a session
//                   pool + ScheduleCache), re-rank by measured ED2 and
//                   write frontier_measured.csv / frontier_measured.json
//                   (paths overridable with --measured-csv/--measured-json)
//     --trace PATH  record a span trace of the run and write it as
//                   Chrome-trace-event JSON (open in Perfetto); results
//                   are bit-identical with or without tracing
//     --metrics PATH  write the metrics snapshot (stage wall-time
//                   histograms, cache counters) as JSON
//     --help        usage
//
//===----------------------------------------------------------------------===//

#include "explore/ConfigurationSelector.h"
#include "explore/ExplorationReport.h"
#include "runtime/FrontierMeasurer.h"
#include "obs/AllocHook.h"
#include "profiling/Profiler.h"
#include "runtime/WorkerPool.h"
#include "support/StrUtil.h"
#include "workloads/SpecFPSuite.h"

#include <atomic>
#include <chrono>
#include <memory>

#include <cstdio>
#include <cstring>
#include <string>

namespace hcvliw {
/// Allocation counter surfaced to the tracer: every span in --trace
/// output carries its heap-allocation delta.
std::atomic<uint64_t> ToolAllocCounter{0};
} // namespace hcvliw

HCVLIW_INSTRUMENT_ALLOCS(hcvliw::ToolAllocCounter)

using namespace hcvliw;

static bool parseRational(const std::string &S, Rational &Out) {
  size_t Slash = S.find('/');
  int64_t N = 0, D = 1;
  if (Slash == std::string::npos) {
    if (!parseInt64(S, N))
      return false;
  } else {
    if (!parseInt64(S.substr(0, Slash), N) ||
        !parseInt64(S.substr(Slash + 1), D) || D <= 0)
      return false;
  }
  Out = Rational(N, D);
  return Out.isPositive();
}

static bool parseRationalList(const char *Arg, std::vector<Rational> &Out) {
  Out.clear();
  for (const std::string &Tok : splitString(Arg, ",")) {
    Rational R;
    if (!parseRational(Tok, R))
      return false;
    Out.push_back(R);
  }
  return !Out.empty();
}

/// "out.csv" + "171.swim" -> "out.171.swim.csv". Only a '.' in the
/// final path component is an extension.
static std::string perProgramPath(const std::string &Path,
                                  const std::string &Program) {
  size_t Slash = Path.rfind('/');
  size_t Dot = Path.rfind('.');
  if (Dot == std::string::npos ||
      (Slash != std::string::npos && Dot < Slash))
    return Path + "." + Program;
  return Path.substr(0, Dot) + "." + Program + Path.substr(Dot);
}

int main(int argc, char **argv) {
  std::string Program;
  std::string CsvPath, JsonPath;
  ExploreOptions Opts;
  unsigned Threads = 0;
  DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
  unsigned MenuK = 0;
  bool MeasureFrontier = false;
  std::string MeasuredCsv = "frontier_measured.csv";
  std::string MeasuredJson = "frontier_measured.json";
  std::string TracePath, MetricsPath;

  for (int I = 1; I < argc; ++I) {
    auto need = [&](const char *Flag) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      std::printf(
          "usage: explore_tool [options]\n"
          "  --program NAME       SPECfp program (default: whole suite)\n"
          "  --threads N          worker threads (0 = hardware)\n"
          "  --menu K             frequencies per domain (default: any)\n"
          "  --fast LIST          fast factors, e.g. 9/10,1,11/10\n"
          "  --ratios LIST        slow/fast ratios, e.g. 1,5/4,3/2\n"
          "  --num-fast N         number of fast clusters (default 1)\n"
          "  --no-prune           skip the Pareto frontier\n"
          "  --no-cache           disable timing memoization\n"
          "  --csv/--json PATH    write the exploration report\n"
          "  --measure-frontier   measure frontier points with real "
          "schedules\n"
          "  --measured-csv PATH  measured-frontier CSV path\n"
          "  --measured-json PATH measured-frontier JSON path\n"
          "  --trace PATH         write a Perfetto-loadable span trace\n"
          "                       (tracing never changes results)\n"
          "  --metrics PATH       write the metrics snapshot as JSON\n"
          "  --help               this text\n");
      return 0;
    } else if (!std::strcmp(argv[I], "--trace")) {
      TracePath = need("--trace");
    } else if (!std::strcmp(argv[I], "--metrics")) {
      MetricsPath = need("--metrics");
    } else if (!std::strcmp(argv[I], "--program")) {
      Program = need("--program");
    } else if (!std::strcmp(argv[I], "--threads")) {
      if (!parseThreadCount(need("--threads"), Threads)) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024]\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--menu")) {
      MenuK = static_cast<unsigned>(std::atoi(need("--menu")));
    } else if (!std::strcmp(argv[I], "--fast")) {
      if (!parseRationalList(need("--fast"), Space.FastFactors)) {
        std::fprintf(stderr, "error: bad --fast list\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--ratios")) {
      if (!parseRationalList(need("--ratios"), Space.SlowRatios)) {
        std::fprintf(stderr, "error: bad --ratios list\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--num-fast")) {
      Space.NumFastClusters =
          static_cast<unsigned>(std::atoi(need("--num-fast")));
    } else if (!std::strcmp(argv[I], "--no-prune")) {
      Opts.ComputeFrontier = false;
    } else if (!std::strcmp(argv[I], "--no-cache")) {
      Opts.UseCache = false;
    } else if (!std::strcmp(argv[I], "--csv")) {
      CsvPath = need("--csv");
    } else if (!std::strcmp(argv[I], "--json")) {
      JsonPath = need("--json");
    } else if (!std::strcmp(argv[I], "--measure-frontier")) {
      MeasureFrontier = true;
    } else if (!std::strcmp(argv[I], "--measured-csv")) {
      MeasuredCsv = need("--measured-csv");
    } else if (!std::strcmp(argv[I], "--measured-json")) {
      MeasuredJson = need("--measured-json");
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return 1;
    }
  }

  std::vector<BenchmarkProgram> Programs;
  if (!Program.empty()) {
    bool Known = false;
    for (const std::string &N : specFPProgramNames())
      Known |= N == Program;
    if (!Known) {
      std::fprintf(stderr, "error: unknown program '%s'; known:\n",
                   Program.c_str());
      for (const std::string &N : specFPProgramNames())
        std::fprintf(stderr, "  %s\n", N.c_str());
      return 1;
    }
    Programs.push_back(buildSpecFPProgram(Program));
  } else {
    Programs = buildSpecFPSuite();
  }
  bool Suite = Programs.size() > 1;

  MachineDescription M = MachineDescription::paperDefault();
  FrequencyMenu Menu = MenuK > 0 ? FrequencyMenu::relativeLadder(MenuK)
                                 : FrequencyMenu::continuous();
  TechnologyModel Tech = TechnologyModel::paperDefault();
  Profiler Prof(M);

  // The runtime substrate, shared across every program of the run: one
  // worker pool (no per-explore thread spawning) and one timing cache
  // (structurally identical loops hit across programs). The
  // measure-frontier mode needs the full Session (its ScheduleCache
  // memoizes per-loop schedules across frontier points and programs),
  // so it runs on a session-owned pool and cache instead.
  std::unique_ptr<WorkerPool> OwnPool;
  std::unique_ptr<EvalCache> OwnCache;
  std::unique_ptr<Session> Sess;
  if (MeasureFrontier) {
    PipelineOptions PO;
    if (MenuK > 0)
      PO.MenuSize = MenuK;
    PO.Space = Space;
    Sess = std::make_unique<Session>(PO, Threads);
    Opts.Pool = &Sess->pool();
    Opts.SharedCache = &Sess->evalCache();
  } else {
    OwnPool = std::make_unique<WorkerPool>(Threads);
    OwnCache = std::make_unique<EvalCache>(M, Menu);
    Opts.Pool = OwnPool.get();
    Opts.SharedCache = OwnCache.get();
  }
  EvalCache &Cache = *Opts.SharedCache;
  std::vector<MeasuredFrontier> Measured;

  // In session mode spans and metrics land on the session's own
  // tracer/registry (so frontier measurement phases appear too);
  // standalone explorations use tool-owned ones.
  obs::Tracer OwnTracer;
  obs::MetricsRegistry OwnMetrics;
  obs::Tracer &Tracer = Sess ? Sess->tracer() : OwnTracer;
  obs::MetricsRegistry &Metrics = Sess ? Sess->metrics() : OwnMetrics;
  if (!TracePath.empty())
    Tracer.enable();

  int Rc = 0;
  for (const BenchmarkProgram &Prog : Programs) {
    obs::Span ProgSp(&Tracer, "explore:", Prog.Name);
    auto ProgT0 = std::chrono::steady_clock::now();
    auto P = Prof.profileProgram(Prog.Name, Prog.Loops);
    if (!P) {
      std::fprintf(stderr, "error: profiling failed on %s\n",
                   Prog.Name.c_str());
      Rc = 1;
      continue;
    }
    EnergyModel E(EnergyBreakdown(), P->Totals, P->TexecRefNs,
                  M.numClusters());
    ExplorationEngine Eng(*P, M, E, Tech, Menu, Space);
    ExplorationResult R = Eng.explore(Opts);

    ExplorationReport Rep(Prog.Name, R);
    std::printf("%s\n", Rep.summary().c_str());
    if (!R.Best.Valid) {
      std::fprintf(stderr, "error: no feasible design for %s\n",
                   Prog.Name.c_str());
      Rc = 1;
    }

    if (MeasureFrontier) {
      MeasuredFrontier F =
          FrontierMeasurer(*Sess).measure(Prog.Name, Prog.Loops, *P);
      std::printf("measured frontier: %zu points, argmin %s, mean |ED2 "
                  "error| %.4f\n",
                  F.Points.size(),
                  F.ArgminAgrees ? "agrees with the estimate"
                                 : "DIFFERS from the estimate",
                  F.meanAbsED2Error());
      Measured.push_back(std::move(F));
    }

    if (!CsvPath.empty()) {
      std::string Path = Suite ? perProgramPath(CsvPath, Prog.Name) : CsvPath;
      if (!Rep.writeCsv(Path)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        Rc = 1;
      } else {
        std::printf("wrote %s\n", Path.c_str());
      }
    }
    if (!JsonPath.empty()) {
      std::string Path =
          Suite ? perProgramPath(JsonPath, Prog.Name) : JsonPath;
      if (!Rep.writeJson(Path)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        Rc = 1;
      } else {
        std::printf("wrote %s\n", Path.c_str());
      }
    }
    Metrics.observeMs("stage.explore.ms",
                      std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - ProgT0)
                          .count());
    std::printf("\n");
  }
  if (MeasureFrontier) {
    if (writeFrontierCsv(Measured, MeasuredCsv))
      std::printf("wrote %s\n", MeasuredCsv.c_str());
    else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   MeasuredCsv.c_str());
      Rc = 1;
    }
    if (writeFrontierJson(Measured, MeasuredJson))
      std::printf("wrote %s\n", MeasuredJson.c_str());
    else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   MeasuredJson.c_str());
      Rc = 1;
    }
    const ScheduleCache &SC = Sess->scheduleCache();
    std::printf("schedule cache over the whole run: %llu hits, %llu "
                "misses, %zu entries\n",
                static_cast<unsigned long long>(SC.hits()),
                static_cast<unsigned long long>(SC.misses()), SC.size());
  }
  if (Programs.size() > 1 && Opts.UseCache)
    std::printf("shared timing cache over the whole run: %llu hits, "
                "%llu misses, %zu entries\n",
                static_cast<unsigned long long>(Cache.hits()),
                static_cast<unsigned long long>(Cache.misses()),
                Cache.size());

  if (!TracePath.empty()) {
    Tracer.disable();
    if (Tracer.writeChromeTrace(TracePath))
      std::printf("wrote %s (%llu events across %zu workers, %llu "
                  "dropped)\n",
                  TracePath.c_str(),
                  static_cast<unsigned long long>(Tracer.totalEvents()),
                  Tracer.numBuffers(),
                  static_cast<unsigned long long>(Tracer.droppedEvents()));
    else
      Rc = 1;
  }
  if (!MetricsPath.empty()) {
    std::string J =
        Sess ? Sess->metricsSnapshot().json() : Metrics.snapshot().json();
    std::FILE *Out = std::fopen(MetricsPath.c_str(), "wb");
    if (Out) {
      std::fwrite(J.data(), 1, J.size(), Out);
      std::fclose(Out);
      std::printf("wrote %s\n", MetricsPath.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", MetricsPath.c_str());
      Rc = 1;
    }
  }
  return Rc;
}
