//===- examples/explore_tool.cpp - Design-space exploration CLI -------------===//
//
// Drives the parallel exploration engine over one benchmark program (or
// the whole synthetic SPECfp suite), printing the Pareto frontier and
// search statistics and optionally serializing the full report.
//
// Usage:
//   explore_tool [--program NAME] [--threads N] [--menu K]
//                [--fast LIST] [--ratios LIST] [--num-fast N]
//                [--no-prune] [--no-cache] [--csv PATH] [--json PATH]
//     --program   SPECfp program name (e.g. 171.swim; default: all)
//     --threads   worker threads (default 0 = hardware concurrency)
//     --menu      frequencies per domain (default: any)
//     --fast      comma-separated fast factors, e.g. 9/10,1,11/10
//     --ratios    comma-separated slow/fast ratios, e.g. 1,5/4,3/2
//     --num-fast  number of fast clusters (default 1)
//     --no-prune  skip the Pareto frontier
//     --no-cache  disable timing memoization
//     --csv/--json  write the report (with --program only, the path is
//                   used as-is; over the suite, the program name is
//                   inserted before the extension)
//
//===----------------------------------------------------------------------===//

#include "configsel/ConfigurationSelector.h"
#include "explore/ExplorationReport.h"
#include "profiling/Profiler.h"
#include "runtime/WorkerPool.h"
#include "support/StrUtil.h"
#include "workloads/SpecFPSuite.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace hcvliw;

static bool parseRational(const std::string &S, Rational &Out) {
  size_t Slash = S.find('/');
  int64_t N = 0, D = 1;
  if (Slash == std::string::npos) {
    if (!parseInt64(S, N))
      return false;
  } else {
    if (!parseInt64(S.substr(0, Slash), N) ||
        !parseInt64(S.substr(Slash + 1), D) || D <= 0)
      return false;
  }
  Out = Rational(N, D);
  return Out.isPositive();
}

static bool parseRationalList(const char *Arg, std::vector<Rational> &Out) {
  Out.clear();
  for (const std::string &Tok : splitString(Arg, ",")) {
    Rational R;
    if (!parseRational(Tok, R))
      return false;
    Out.push_back(R);
  }
  return !Out.empty();
}

/// "out.csv" + "171.swim" -> "out.171.swim.csv". Only a '.' in the
/// final path component is an extension.
static std::string perProgramPath(const std::string &Path,
                                  const std::string &Program) {
  size_t Slash = Path.rfind('/');
  size_t Dot = Path.rfind('.');
  if (Dot == std::string::npos ||
      (Slash != std::string::npos && Dot < Slash))
    return Path + "." + Program;
  return Path.substr(0, Dot) + "." + Program + Path.substr(Dot);
}

int main(int argc, char **argv) {
  std::string Program;
  std::string CsvPath, JsonPath;
  ExploreOptions Opts;
  unsigned Threads = 0;
  DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
  unsigned MenuK = 0;

  for (int I = 1; I < argc; ++I) {
    auto need = [&](const char *Flag) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (!std::strcmp(argv[I], "--program")) {
      Program = need("--program");
    } else if (!std::strcmp(argv[I], "--threads")) {
      if (!parseThreadCount(need("--threads"), Threads)) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024]\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--menu")) {
      MenuK = static_cast<unsigned>(std::atoi(need("--menu")));
    } else if (!std::strcmp(argv[I], "--fast")) {
      if (!parseRationalList(need("--fast"), Space.FastFactors)) {
        std::fprintf(stderr, "error: bad --fast list\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--ratios")) {
      if (!parseRationalList(need("--ratios"), Space.SlowRatios)) {
        std::fprintf(stderr, "error: bad --ratios list\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--num-fast")) {
      Space.NumFastClusters =
          static_cast<unsigned>(std::atoi(need("--num-fast")));
    } else if (!std::strcmp(argv[I], "--no-prune")) {
      Opts.ComputeFrontier = false;
    } else if (!std::strcmp(argv[I], "--no-cache")) {
      Opts.UseCache = false;
    } else if (!std::strcmp(argv[I], "--csv")) {
      CsvPath = need("--csv");
    } else if (!std::strcmp(argv[I], "--json")) {
      JsonPath = need("--json");
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return 1;
    }
  }

  std::vector<BenchmarkProgram> Programs;
  if (!Program.empty()) {
    bool Known = false;
    for (const std::string &N : specFPProgramNames())
      Known |= N == Program;
    if (!Known) {
      std::fprintf(stderr, "error: unknown program '%s'; known:\n",
                   Program.c_str());
      for (const std::string &N : specFPProgramNames())
        std::fprintf(stderr, "  %s\n", N.c_str());
      return 1;
    }
    Programs.push_back(buildSpecFPProgram(Program));
  } else {
    Programs = buildSpecFPSuite();
  }
  bool Suite = Programs.size() > 1;

  MachineDescription M = MachineDescription::paperDefault();
  FrequencyMenu Menu = MenuK > 0 ? FrequencyMenu::relativeLadder(MenuK)
                                 : FrequencyMenu::continuous();
  TechnologyModel Tech = TechnologyModel::paperDefault();
  Profiler Prof(M);

  // The runtime substrate, shared across every program of the run: one
  // worker pool (no per-explore thread spawning) and one timing cache
  // (structurally identical loops hit across programs).
  WorkerPool Pool(Threads);
  EvalCache Cache(M, Menu);
  Opts.Pool = &Pool;
  Opts.SharedCache = &Cache;

  int Rc = 0;
  for (const BenchmarkProgram &Prog : Programs) {
    auto P = Prof.profileProgram(Prog.Name, Prog.Loops);
    if (!P) {
      std::fprintf(stderr, "error: profiling failed on %s\n",
                   Prog.Name.c_str());
      Rc = 1;
      continue;
    }
    EnergyModel E(EnergyBreakdown(), P->Totals, P->TexecRefNs,
                  M.numClusters());
    ExplorationEngine Eng(*P, M, E, Tech, Menu, Space);
    ExplorationResult R = Eng.explore(Opts);

    ExplorationReport Rep(Prog.Name, R);
    std::printf("%s\n", Rep.summary().c_str());
    if (!R.Best.Valid) {
      std::fprintf(stderr, "error: no feasible design for %s\n",
                   Prog.Name.c_str());
      Rc = 1;
    }

    if (!CsvPath.empty()) {
      std::string Path = Suite ? perProgramPath(CsvPath, Prog.Name) : CsvPath;
      if (!Rep.writeCsv(Path)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        Rc = 1;
      } else {
        std::printf("wrote %s\n", Path.c_str());
      }
    }
    if (!JsonPath.empty()) {
      std::string Path =
          Suite ? perProgramPath(JsonPath, Prog.Name) : JsonPath;
      if (!Rep.writeJson(Path)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        Rc = 1;
      } else {
        std::printf("wrote %s\n", Path.c_str());
      }
    }
    std::printf("\n");
  }
  if (Programs.size() > 1 && Opts.UseCache)
    std::printf("shared timing cache over the whole run: %llu hits, "
                "%llu misses, %zu entries\n",
                static_cast<unsigned long long>(Cache.hits()),
                static_cast<unsigned long long>(Cache.misses()),
                Cache.size());
  return Rc;
}
