//===- examples/frequency_selection.cpp - Section 3 end to end --------------===//
//
// Demonstrates the paper's configuration-selection flow on one program:
// profile the reference homogeneous machine, build the Section 3.1
// energy model, explore the design space of Section 3.3 (fast-cluster
// cycle times x slow ratios x per-component supply voltages), and
// report the chosen heterogeneous configuration next to the optimum
// homogeneous baseline -- then measure both and compare reality against
// the estimates.
//
// Runs through a runtime Session: the session owns the worker pool the
// design-space search fans out on and the shared timing cache, and a
// failed run reports *where* it failed (structured PipelineError)
// instead of a bare nullopt.
//
// Build & run:  ./build/examples/frequency_selection [program]
//
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace hcvliw;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "187.facerec";
  BenchmarkProgram Prog = buildSpecFPProgram(Name);

  PipelineOptions Opts;
  Session S(Opts);
  PipelineError Err;
  auto R = S.pipeline().runProgram(Prog, &Err);
  if (!R) {
    std::fprintf(stderr, "pipeline failed on %s at %s: %s\n", Name.c_str(),
                 pipelineStageName(Err.Stage), Err.Reason.c_str());
    return 1;
  }

  std::printf("program %s: %zu loops, reference Texec %.0f ns\n",
              Name.c_str(), R->Profile.Loops.size(), R->Profile.TexecRefNs);
  auto Shares = R->Profile.shareByConstraint();
  std::printf("constraint mix: %.1f%% resource, %.1f%% borderline, "
              "%.1f%% recurrence\n\n",
              100 * Shares[0], 100 * Shares[1], 100 * Shares[2]);

  std::printf("selected heterogeneous configuration:\n  %s\n",
              R->HetDesign.Config.str().c_str());
  std::printf("optimum homogeneous baseline:\n  %s\n\n",
              R->HomDesign.Config.str().c_str());

  TablePrinter T("estimates vs measurements");
  T.addRow({"quantity", "estimated", "measured"});
  T.addRow({"het Texec (ns)",
            formatString("%.0f", R->HetDesign.EstTexecNs),
            formatString("%.0f", R->HetMeasured.TexecNs)});
  T.addRow({"het energy (ref units)",
            formatString("%.3f", R->HetDesign.EstEnergy),
            formatString("%.3f", R->HetMeasured.Energy)});
  T.addRow({"hom Texec (ns)",
            formatString("%.0f", R->HomDesign.EstTexecNs),
            formatString("%.0f", R->HomMeasured.TexecNs)});
  T.addRow({"hom energy (ref units)",
            formatString("%.3f", R->HomDesign.EstEnergy),
            formatString("%.3f", R->HomMeasured.Energy)});
  T.addRow({"ED2 ratio (het/hom)",
            formatString("%.3f", R->HetDesign.EstED2 / R->HomDesign.EstED2),
            formatString("%.3f", R->ED2Ratio)});
  T.print();

  std::printf("\nED2 benefit of heterogeneity: %.1f%%\n",
              100.0 * (1.0 - R->ED2Ratio));
  return 0;
}
