//===- examples/quickstart.cpp - First steps with the library ---------------===//
//
// Quickstart: write a small loop in the textual DSL, schedule it on a
// heterogeneous 4-cluster VLIW (one fast cluster at 0.9 ns, three slow
// clusters at 1.35 ns), print the modulo schedule, and prove the
// software-pipelined execution computes exactly what sequential
// execution computes.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/LoopDSL.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"

#include <cstdio>

using namespace hcvliw;

int main() {
  // A dot-product-style loop: two streams, a multiply, a loop-carried
  // accumulation (the recurrence that will pin itself to the fast
  // cluster), and a store.
  Loop L = parseSingleLoop(R"(
loop dot trip=64
  arrays A B S
  x = load A
  y = load B
  m = fmul x y
  s = fadd s@1 m init=0
  store S s
endloop
)");

  // The paper's evaluation machine: 4 clusters x {1 INT FU, 1 FP FU,
  // 1 memory port, 16 registers}, one 1-cycle inter-cluster bus.
  MachineDescription M = MachineDescription::paperDefault();

  // A heterogeneous configuration: cluster 0 fast, the rest slow.
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10); // 0.9 ns
  for (unsigned I = 1; I < 4; ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20); // 1.35 ns
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);

  // Figure 5 flow: MIT -> select (II, freq) per domain -> partition ->
  // modulo schedule, growing the IT on failure.
  LoopScheduler Scheduler(M, C);
  LoopScheduleResult R = Scheduler.schedule(L);
  if (!R.Success) {
    std::fprintf(stderr, "scheduling failed: %s\n", R.Failure.c_str());
    return 1;
  }

  std::printf("scheduled '%s' (recMII=%lld, resMII=%lld)\n",
              L.Name.c_str(), static_cast<long long>(R.RecMII),
              static_cast<long long>(R.ResMII));
  std::printf("MIT = %s ns, achieved IT = %s ns (%u IT increases)\n\n",
              R.MITNs.str().c_str(), R.Sched.Plan.ITNs.str().c_str(),
              R.ITSteps);
  std::printf("%s\n", R.Sched.str(R.PG).c_str());

  std::printf("cluster assignment:");
  for (unsigned Op = 0; Op < L.size(); ++Op)
    std::printf(" %s->C%u", opcodeName(L.Ops[Op].Op),
                R.Assignment.cluster(Op));
  std::printf("\ncommunications per iteration: %u\n", R.PG.numCopies());

  // Execute the pipelined schedule and compare against sequential
  // semantics, bit for bit.
  std::string Err = checkFunctionalEquivalence(L, R.PG, R.Sched, M, 64);
  std::printf("functional equivalence vs sequential execution: %s\n",
              Err.empty() ? "EXACT" : Err.c_str());

  PipelinedResult Sim = runPipelined(L, R.PG, R.Sched, M, 64);
  std::printf("64 iterations execute in %s ns (%.2f ns/iter)\n",
              Sim.TexecNs.str().c_str(), Sim.TexecNs.toDouble() / 64);
  return Err.empty() ? 0 : 1;
}
