//===- examples/recurrence_criticality.cpp - Why heterogeneity wins ---------===//
//
// The paper's central observation, reproduced on one loop: in a
// recurrence-constrained loop only the few instructions on the critical
// recurrence determine the initiation time; everything else can run on
// slow, low-voltage clusters without losing performance.
//
// This example schedules the same loop on (a) the reference homogeneous
// machine, (b) a heterogeneous machine with one fast / three slow
// clusters, and shows: the critical recurrence migrates to the fast
// cluster, the IT *drops* below the homogeneous II * Tcyc, and the bulk
// of the instructions land in the slow clusters.
//
// Build & run:  ./build/examples/recurrence_criticality
//
//===----------------------------------------------------------------------===//

#include "ir/RecurrenceAnalysis.h"
#include "partition/LoopScheduler.h"
#include "workloads/SyntheticLoops.h"

#include <cstdio>

using namespace hcvliw;

static void report(const char *Label, const MachineDescription &M,
                   const Loop &L, const LoopScheduleResult &R) {
  std::printf("%s\n", Label);
  std::printf("  IT = %s ns, it_length = %s ns\n",
              R.Sched.Plan.ITNs.str().c_str(),
              R.Sched.itLengthNs(R.PG).str().c_str());
  std::printf("  per-domain II:");
  for (unsigned C = 0; C < M.numClusters(); ++C)
    std::printf(" C%u=%lld@%sns", C,
                static_cast<long long>(R.Sched.Plan.Clusters[C].II),
                R.Sched.Plan.Clusters[C].PeriodNs.str().c_str());
  std::printf("\n");

  std::vector<unsigned> PerCluster(M.numClusters(), 0);
  for (unsigned Op = 0; Op < L.size(); ++Op)
    ++PerCluster[R.Assignment.cluster(Op)];
  std::printf("  ops per cluster:");
  for (unsigned C = 0; C < M.numClusters(); ++C)
    std::printf(" %u", PerCluster[C]);
  std::printf("  (comms/iter: %u)\n", R.PG.numCopies());
}

int main() {
  // 3 critical ops (fmul+fadd+fadd at distance 1: recMII 12) plus four
  // independent side lanes: 17 of 20 ops are non-critical.
  Loop L = makeChainRecurrenceLoop("hot", 1, 2, 1, 4, 96, 1.0);
  MachineDescription M = MachineDescription::paperDefault();

  DDG G = DDG::build(L);
  RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
  std::printf("loop '%s': %u ops, recMII=%lld, resMII=%lld, critical "
              "recurrence has %zu ops\n\n",
              L.Name.c_str(), L.size(),
              static_cast<long long>(Recs.RecMII),
              static_cast<long long>(M.computeResMII(L)),
              Recs.Recurrences.front().Nodes.size());

  HeteroConfig Hom = HeteroConfig::reference(M);
  LoopScheduler SchedHom(M, Hom);
  LoopScheduleResult RHom = SchedHom.schedule(L);
  if (!RHom.Success) {
    std::fprintf(stderr, "homogeneous scheduling failed\n");
    return 1;
  }
  report("reference homogeneous (4 x 1.0 ns):", M, L, RHom);

  HeteroConfig Het = Hom;
  Het.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    Het.Clusters[I].PeriodNs = Rational(27, 20);
  Het.Icn.PeriodNs = Rational(9, 10);
  Het.Cache.PeriodNs = Rational(9, 10);
  LoopScheduler SchedHet(M, Het);
  LoopScheduleResult RHet = SchedHet.schedule(L);
  if (!RHet.Success) {
    std::fprintf(stderr, "heterogeneous scheduling failed\n");
    return 1;
  }
  std::printf("\n");
  report("heterogeneous (0.9 ns + 3 x 1.35 ns):", M, L, RHet);

  std::printf("\ncritical recurrence placement (heterogeneous):");
  for (unsigned N : Recs.Recurrences.front().Nodes)
    std::printf(" op%u->C%u", N, RHet.Assignment.cluster(N));
  std::printf("\n");

  double THom = RHom.Sched.execTimeNs(RHom.PG, L.TripCount).toDouble();
  double THet = RHet.Sched.execTimeNs(RHet.PG, L.TripCount).toDouble();
  std::printf("\nexecution time, %llu iterations: homogeneous %.1f ns, "
              "heterogeneous %.1f ns (%.1f%% %s)\n",
              static_cast<unsigned long long>(L.TripCount), THom, THet,
              100.0 * std::abs(1.0 - THet / THom),
              THet <= THom ? "faster" : "slower");
  std::printf("...while 3 of 4 clusters can run at 0.74x frequency and "
              "a much lower supply voltage.\n");
  return 0;
}
