//===- examples/schedule_tool.cpp - Command-line loop scheduler -------------===//
//
// A small driver exposing the library as a tool: read loops in the DSL
// from a file (or stdin), schedule each on a chosen machine
// configuration, and print the schedule, placement, register pressure
// and a functional-equivalence verdict.
//
// Usage:
//   schedule_tool [file.loop] [--fast N/D] [--ratio N/D] [--menu K]
//     --fast   fast-cluster cycle time in ns (default 9/10)
//     --ratio  slow/fast cycle-time ratio   (default 3/2; 1 = uniform)
//     --menu   frequencies per domain       (default: any)
//
// Example loop file:
//   loop dot trip=64
//     arrays A B S
//     x = load A
//     y = load B
//     m = fmul x y
//     s = fadd s@1 m init=0
//     store S s
//   endloop
//
//===----------------------------------------------------------------------===//

#include "ir/LoopDSL.h"
#include "partition/LoopScheduler.h"
#include "runtime/WorkerPool.h"
#include "support/StrUtil.h"
#include "vliwsim/PipelinedSimulator.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace hcvliw;

static bool parseRational(const char *S, Rational &Out) {
  std::string Str(S);
  size_t Slash = Str.find('/');
  int64_t N = 0, D = 1;
  if (Slash == std::string::npos) {
    if (!parseInt64(Str, N))
      return false;
  } else {
    if (!parseInt64(Str.substr(0, Slash), N) ||
        !parseInt64(Str.substr(Slash + 1), D) || D <= 0)
      return false;
  }
  Out = Rational(N, D);
  return Out.isPositive();
}

static std::string readAll(std::FILE *In) {
  std::string Text;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Text.append(Buf, Got);
  return Text;
}

int main(int argc, char **argv) {
  Rational Fast(9, 10), Ratio(3, 2);
  unsigned MenuK = 0;
  const char *Path = nullptr;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--fast") && I + 1 < argc) {
      if (!parseRational(argv[++I], Fast)) {
        std::fprintf(stderr, "error: bad --fast value\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--ratio") && I + 1 < argc) {
      if (!parseRational(argv[++I], Ratio)) {
        std::fprintf(stderr, "error: bad --ratio value\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--menu") && I + 1 < argc) {
      MenuK = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (argv[I][0] != '-') {
      Path = argv[I];
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return 1;
    }
  }

  std::string Text;
  if (Path) {
    std::FILE *In = std::fopen(Path, "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path);
      return 1;
    }
    Text = readAll(In);
    std::fclose(In);
  } else {
    std::printf("reading loops from stdin...\n");
    Text = readAll(stdin);
  }

  ParsedLoops Parsed = parseLoops(Text);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  if (Parsed.Loops.empty()) {
    std::fprintf(stderr, "error: no loops in input\n");
    return 1;
  }

  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Fast;
  for (unsigned I = 1; I < M.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Fast * Ratio;
  C.Icn.PeriodNs = Fast;
  C.Cache.PeriodNs = Fast;

  LoopScheduleOptions Opts;
  if (MenuK > 0)
    Opts.Menu = FrequencyMenu::relativeLadder(MenuK);
  LoopScheduler Sched(M, C, Opts);

  std::printf("machine: 4 clusters, fast %s ns, slow %s ns, %u bus, "
              "menu %s\n\n",
              Fast.str().c_str(), (Fast * Ratio).str().c_str(), M.Buses,
              MenuK ? formatString("%u freqs", MenuK).c_str() : "any");

  // Schedule and verify every loop on the worker-pool substrate
  // (slot-indexed results, so the printed order and exit code are
  // independent of the thread count), then print serially.
  struct LoopOutcome {
    bool Success = false;
    std::string Text;
  };
  std::vector<LoopOutcome> Out(Parsed.Loops.size());
  WorkerPool Pool;
  Pool.parallelFor(Parsed.Loops.size(), [&](size_t I) {
    const Loop &L = Parsed.Loops[I];
    LoopScheduleResult R = Sched.schedule(L);
    LoopOutcome &O = Out[I];
    if (!R.Success) {
      O.Text = formatString("loop '%s': FAILED (%s)\n", L.Name.c_str(),
                            R.Failure.c_str());
      return;
    }
    std::string Err =
        checkFunctionalEquivalence(L, R.PG, R.Sched, M, L.TripCount);
    O.Success = Err.empty();
    O.Text = formatString(
        "loop '%s': recMII=%lld resMII=%lld MIT=%s ns -> "
        "IT=%s ns, comms/iter=%u, %s\n",
        L.Name.c_str(), static_cast<long long>(R.RecMII),
        static_cast<long long>(R.ResMII), R.MITNs.str().c_str(),
        R.Sched.Plan.ITNs.str().c_str(), R.PG.numCopies(),
        Err.empty() ? "functionally EXACT" : Err.c_str());
    O.Text += R.Sched.str(R.PG) + "\n";
  });

  int Rc = 0;
  for (const LoopOutcome &O : Out) {
    std::fputs(O.Text.c_str(), stdout);
    if (!O.Success)
      Rc = 1;
  }
  return Rc;
}
