//===- examples/suite_tool.cpp - Suite execution CLI ------------------------===//
//
// Drives the runtime Session/SuiteRunner API over the synthetic SPECfp
// suite: programs fan out across the session's worker pool (each
// program's design-space search nests on the same pool), per-program
// completions stream to stderr as they happen, failures are reported
// as structured records, and the per-benchmark normalized ED2 table —
// the paper's Figure 6 row — prints at the end together with the
// session's shared-cache statistics.
//
// Robustness (PR 9): --journal checkpoints each completed program to a
// durable journal; --resume splices a killed run's journal back in and
// re-executes only what is missing (bit-identical merged result);
// --fault-plan arms the session's deterministic fault injector;
// --degrade / --effort-deadline enable the graceful-degradation ladder.
//
// Distribution (PR 10): --shards N re-executes this invocation as N
// journaling subprocess shards (dist/ShardOrchestrator) with per-shard
// deadlines and bounded retries, then reassembles a SuiteResult
// bit-identical to the single-process run; --shard i/N is the child
// form (a deterministic partition of the suite). --load-cache /
// --save-cache attach the persistent schedule/eval cache tier
// (runtime/CachePersist), so a later run starts warm.
//
// Usage:
//   suite_tool [--threads N] [--lanes K] [--buses B] [--menu K]
//              [--repeat N] [--measure-frontier]
//              [--frontier-csv PATH] [--frontier-json PATH]
//              [--trace PATH] [--metrics PATH]
//              [--journal PATH] [--resume PATH] [--fault-plan PATH]
//              [--degrade] [--effort-deadline N]
//              [--shard I/N | --shards N] [--shard-dir DIR]
//              [--shard-deadline MS] [--shard-retries K]
//              [--shard-backoff MS]
//              [--load-cache PATH] [--save-cache PATH]
//     --threads  worker-pool parallelism (default: hardware)
//     --lanes    nested-parallelism budget: max programs in flight
//                (default: all; spare threads speed up exploration)
//     --buses    inter-cluster buses (default 1)
//     --menu     frequencies per domain (default: any)
//     --repeat   run the suite N times in one session to show the
//                selection memo (repeats skip all searches)
//     --measure-frontier  also measure every program's Pareto frontier
//                with real schedules (measure/FrontierMeasurer) and
//                emit frontier_measured.csv / frontier_measured.json
//                (paths overridable with --frontier-csv/--frontier-json)
//     --trace    record a span trace of the whole run and write it as
//                Chrome-trace-event JSON (open in Perfetto or
//                chrome://tracing); results are bit-identical with or
//                without tracing
//     --metrics  write the session metrics snapshot (stage wall-time
//                histograms, cache counters) as JSON
//
// Build & run:  ./build/suite_tool --threads 4 --lanes 2
//
//===----------------------------------------------------------------------===//

#include "dist/ShardOrchestrator.h"
#include "obs/AllocHook.h"
#include "runtime/SuiteRunner.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace hcvliw {
/// Allocation counter surfaced to the tracer: every span in --trace
/// output carries its heap-allocation delta.
std::atomic<uint64_t> ToolAllocCounter{0};
} // namespace hcvliw

HCVLIW_INSTRUMENT_ALLOCS(hcvliw::ToolAllocCounter)

using namespace hcvliw;

namespace {

void printUsage() {
  std::printf(
      "usage: suite_tool [options]\n"
      "  --threads N          worker-pool parallelism (default: hardware)\n"
      "  --lanes K            max programs in flight (default: all)\n"
      "  --buses B            inter-cluster buses (default 1)\n"
      "  --menu K             frequencies per domain (default: any)\n"
      "  --repeat N           run the suite N times in one session\n"
      "  --measure-frontier   also measure every program's frontier\n"
      "  --frontier-csv PATH  frontier CSV path\n"
      "  --frontier-json PATH frontier JSON path\n"
      "  --trace PATH         write a Perfetto-loadable span trace of the\n"
      "                       run (Chrome trace-event JSON); tracing never\n"
      "                       changes results\n"
      "  --metrics PATH       write the session metrics snapshot as JSON\n"
      "  --journal PATH       checkpoint each completed program to PATH\n"
      "                       (incompatible with --measure-frontier)\n"
      "  --resume PATH        resume from a journal written by a previous\n"
      "                       (killed) run of the same options; merged\n"
      "                       result is bit-identical to an uninterrupted\n"
      "                       run\n"
      "  --fault-plan PATH    arm the deterministic fault injector with\n"
      "                       the plan in PATH (see src/fault/Fault.h)\n"
      "  --degrade            degrade unschedulable loops to the analytic\n"
      "                       estimate instead of failing the measurement\n"
      "  --effort-deadline N  per-loop scheduler effort deadline in\n"
      "                       BudgetUsed units (0 = off; deterministic,\n"
      "                       never wall clock)\n"
      "  --shards N           run the suite as N journaling subprocess\n"
      "                       shards with retries, then reassemble a\n"
      "                       result bit-identical to single-process\n"
      "  --shard I/N          child form: execute only shard I of N\n"
      "                       (deterministic per-name partition)\n"
      "  --shard-dir DIR      shard journals/caches/logs directory\n"
      "                       (default '.')\n"
      "  --shard-deadline MS  kill-and-retry deadline per shard attempt\n"
      "                       (0 = none)\n"
      "  --shard-retries K    attempts per shard before giving up\n"
      "                       (default 3)\n"
      "  --shard-backoff MS   deterministic retry backoff base\n"
      "                       (MS << (attempt-2); default 25)\n"
      "  --load-cache PATH    warm the session caches from a persistent\n"
      "                       snapshot (refuses version/binding skew;\n"
      "                       corrupt frames quarantine, never crash)\n"
      "  --save-cache PATH    write the session caches' persistent\n"
      "                       snapshot after the run\n"
      "  --help               this text\n");
}

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = 0, Buses = 1, MenuK = 0, Repeat = 1;
  size_t Lanes = 0;
  bool MeasureFrontier = false, Degrade = false;
  uint64_t EffortDeadline = 0;
  std::string FrontierCsv = "frontier_measured.csv";
  std::string FrontierJson = "frontier_measured.json";
  std::string TracePath, MetricsPath;
  std::string JournalPath, ResumePath, FaultPlanPath;
  std::vector<std::string> RawArgs(argv, argv + argc);
  unsigned ShardIndex = 0, ShardCount = 0; // --shard I/N (child)
  unsigned Shards = 0;                     // --shards N (orchestrator)
  double ShardDeadlineMs = 0;
  unsigned ShardRetries = 3;
  uint64_t ShardBackoffMs = 25;
  std::string ShardDir = ".";
  std::string LoadCachePath, SaveCachePath;
  for (int I = 1; I < argc; ++I) {
    auto need = [&](const char *Flag) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      printUsage();
      return 0;
    } else if (!std::strcmp(argv[I], "--trace")) {
      TracePath = need("--trace");
    } else if (!std::strcmp(argv[I], "--metrics")) {
      MetricsPath = need("--metrics");
    } else if (!std::strcmp(argv[I], "--threads")) {
      if (!parseThreadCount(need("--threads"), Threads)) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024]\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--lanes")) {
      int N = std::atoi(need("--lanes"));
      Lanes = N > 0 ? static_cast<size_t>(N) : 0;
    } else if (!std::strcmp(argv[I], "--buses"))
      Buses = static_cast<unsigned>(std::atoi(need("--buses")));
    else if (!std::strcmp(argv[I], "--menu"))
      MenuK = static_cast<unsigned>(std::atoi(need("--menu")));
    else if (!std::strcmp(argv[I], "--repeat"))
      Repeat = static_cast<unsigned>(std::atoi(need("--repeat")));
    else if (!std::strcmp(argv[I], "--measure-frontier"))
      MeasureFrontier = true;
    else if (!std::strcmp(argv[I], "--frontier-csv"))
      FrontierCsv = need("--frontier-csv");
    else if (!std::strcmp(argv[I], "--frontier-json"))
      FrontierJson = need("--frontier-json");
    else if (!std::strcmp(argv[I], "--journal"))
      JournalPath = need("--journal");
    else if (!std::strcmp(argv[I], "--resume"))
      ResumePath = need("--resume");
    else if (!std::strcmp(argv[I], "--fault-plan"))
      FaultPlanPath = need("--fault-plan");
    else if (!std::strcmp(argv[I], "--degrade"))
      Degrade = true;
    else if (!std::strcmp(argv[I], "--effort-deadline"))
      EffortDeadline = std::strtoull(need("--effort-deadline"), nullptr, 10);
    else if (!std::strcmp(argv[I], "--shard")) {
      const char *V = need("--shard");
      unsigned Idx = 0, Cnt = 0;
      if (std::sscanf(V, "%u/%u", &Idx, &Cnt) != 2 || Cnt == 0 ||
          Idx >= Cnt) {
        std::fprintf(stderr,
                     "error: --shard expects I/N with 0 <= I < N\n");
        return 1;
      }
      ShardIndex = Idx;
      ShardCount = Cnt;
    } else if (!std::strcmp(argv[I], "--shards"))
      Shards = static_cast<unsigned>(std::atoi(need("--shards")));
    else if (!std::strcmp(argv[I], "--shard-dir"))
      ShardDir = need("--shard-dir");
    else if (!std::strcmp(argv[I], "--shard-deadline"))
      ShardDeadlineMs = std::atof(need("--shard-deadline"));
    else if (!std::strcmp(argv[I], "--shard-retries"))
      ShardRetries = static_cast<unsigned>(std::atoi(need("--shard-retries")));
    else if (!std::strcmp(argv[I], "--shard-backoff"))
      ShardBackoffMs = std::strtoull(need("--shard-backoff"), nullptr, 10);
    else if (!std::strcmp(argv[I], "--load-cache"))
      LoadCachePath = need("--load-cache");
    else if (!std::strcmp(argv[I], "--save-cache"))
      SaveCachePath = need("--save-cache");
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return 1;
    }
  }

  if (MeasureFrontier && (!JournalPath.empty() || !ResumePath.empty() ||
                          ShardCount > 0 || Shards > 0)) {
    std::fprintf(stderr,
                 "error: --journal/--resume/--shard/--shards are "
                 "incompatible with --measure-frontier (frontiers are not "
                 "journaled)\n");
    return 1;
  }
  if (Shards > 0 && (ShardCount > 0 || !JournalPath.empty() ||
                     !ResumePath.empty() || Repeat > 1)) {
    std::fprintf(stderr,
                 "error: --shards owns the shard journals; it is "
                 "incompatible with --shard, --journal, --resume and "
                 "--repeat\n");
    return 1;
  }

  PipelineOptions Opts;
  Opts.Buses = Buses;
  if (MenuK > 0)
    Opts.MenuSize = MenuK;
  Opts.DegradeToEstimate = Degrade;
  Opts.LoopEffortDeadline = EffortDeadline;
  Session S(Opts, Threads);
  SuiteRunner Runner(S);
  if (!TracePath.empty())
    S.tracer().enable();

  if (!FaultPlanPath.empty()) {
    std::string PErr;
    auto Plan = fault::FaultPlan::parseFile(FaultPlanPath, &PErr);
    if (!Plan) {
      std::fprintf(stderr, "error: bad fault plan '%s': %s\n",
                   FaultPlanPath.c_str(), PErr.c_str());
      return 1;
    }
    S.faultInjector().arm(*Plan);
    std::fprintf(stderr, "fault injector armed (%zu rules, seed %llu)\n",
                 Plan->Rules.size(),
                 static_cast<unsigned long long>(Plan->Seed));
  }

  // Persistent cache tier: warm the session before anything runs. A
  // version/binding skew refuses (hard error); corrupt frames only
  // quarantine. The orchestrating parent never computes, so it skips
  // the load and passes --load-cache through to its shards instead.
  if (!LoadCachePath.empty() && Shards == 0) {
    std::string CErr;
    if (!S.loadCacheFrom(LoadCachePath, &CErr)) {
      std::fprintf(stderr, "error: %s\n", CErr.c_str());
      return 1;
    }
    const CacheLoadStats &CL = S.cachePersistLoadStats();
    std::fprintf(stderr,
                 "cache: loaded %llu entries from %s (%llu corrupt "
                 "frame(s) quarantined)\n",
                 static_cast<unsigned long long>(CL.loaded()),
                 LoadCachePath.c_str(),
                 static_cast<unsigned long long>(CL.CorruptFrames));
  }

  // The resume journal's fingerprint is re-validated by SuiteRunner
  // against this session's options and programs. A shard child resumes
  // from its own journal implicitly: a retried attempt re-executes
  // only what the killed attempt had not checkpointed.
  std::optional<SuiteJournal> Resumed;
  if (ResumePath.empty() && ShardCount > 0 && !JournalPath.empty()) {
    std::ifstream Probe(JournalPath);
    if (Probe.good())
      ResumePath = JournalPath;
  }
  if (!ResumePath.empty()) {
    std::string JErr;
    Resumed = SuiteJournal::load(ResumePath, /*ExpectFingerprint=*/0, &JErr);
    if (!Resumed) {
      std::fprintf(stderr, "error: %s\n", JErr.c_str());
      return 1;
    }
    std::fprintf(stderr, "resuming: %zu journaled programs\n",
                 Resumed->numRecords());
  }

  SuiteOptions SO;
  SO.ProgramLanes = Lanes;
  SO.MeasureFrontier = MeasureFrontier;
  SO.JournalPath = JournalPath;
  SO.ShardIndex = ShardIndex;
  SO.ShardCount = ShardCount;
  if (Resumed)
    SO.ResumeFrom = &*Resumed;
  SO.OnProgramDone = [](const SuiteProgress &P) {
    if (P.Ok)
      std::fprintf(stderr, "[%zu/%zu] %-13s ED2 ratio %.3f\n", P.Completed,
                   P.Total, P.Program.c_str(), P.ED2Ratio);
    else
      std::fprintf(stderr, "[%zu/%zu] %-13s FAILED at %s: %s\n",
                   P.Completed, P.Total, P.Program.c_str(),
                   pipelineStageName(P.Failure->Stage),
                   P.Failure->Reason.c_str());
  };

  SuiteResult R;
  if (Shards > 0) {
    // Orchestrator mode: re-execute this invocation as N journaling
    // subprocess shards and reassemble. Everything orchestration
    // prints goes to stderr; stdout below stays identical to the
    // single-process run (modulo the parent's own cache counters).
    dist::OrchestratorOptions OO;
    OO.Shards = Shards;
    OO.MaxAttempts = std::max(1u, ShardRetries);
    OO.ShardDeadlineMs = ShardDeadlineMs;
    OO.BackoffBaseMs = ShardBackoffMs;
    OO.WorkDir = ShardDir;
    OO.MergeCaches = !SaveCachePath.empty();
    OO.OnEvent = [](const std::string &M) {
      std::fprintf(stderr, "orch: %s\n", M.c_str());
    };
    dist::SubprocessShardExecutor Exec([&](const dist::ShardSpec &Spec) {
      std::vector<std::string> Cmd;
      Cmd.push_back(RawArgs[0]);
      // Shards inherit every suite-shaping flag; orchestration-only
      // and parent-output flags are stripped (all of them take a
      // value, so drop the pair).
      static const char *const Drop[] = {
          "--shards",        "--shard-dir", "--shard-retries",
          "--shard-deadline", "--shard-backoff", "--save-cache",
          "--trace",         "--metrics"};
      for (size_t A = 1; A < RawArgs.size(); ++A) {
        bool Dropped = false;
        for (const char *F : Drop)
          if (RawArgs[A] == F) {
            ++A; // skip the flag's value too
            Dropped = true;
            break;
          }
        if (!Dropped)
          Cmd.push_back(RawArgs[A]);
      }
      Cmd.push_back("--shard");
      Cmd.push_back(std::to_string(Spec.Index) + "/" +
                    std::to_string(Spec.Count));
      Cmd.push_back("--journal");
      Cmd.push_back(Spec.JournalPath);
      if (!Spec.CachePath.empty()) {
        Cmd.push_back("--save-cache");
        Cmd.push_back(Spec.CachePath);
      }
      return Cmd;
    });
    dist::OrchestratorResult OR =
        dist::ShardOrchestrator(S, Exec).run(buildSpecFPSuite(), OO);
    for (size_t I = 0; I < OR.Shards.size(); ++I)
      std::fprintf(stderr, "shard %zu: %s after %u attempt(s)%s%s%s\n", I,
                   OR.Shards[I].Ok ? "ok" : "FAILED",
                   OR.Shards[I].Attempts,
                   OR.Shards[I].TimedOut ? " (hit deadline)" : "",
                   OR.Shards[I].Detail.empty() ? "" : ": ",
                   OR.Shards[I].Detail.c_str());
    if (!OR.Ok) {
      std::fprintf(stderr, "error: %s\n", OR.Error.c_str());
      return 1;
    }
    R = std::move(OR.Result);
    if (!SaveCachePath.empty()) {
      if (!OR.MergedCachePath.empty() &&
          std::rename(OR.MergedCachePath.c_str(), SaveCachePath.c_str()) ==
              0) {
        std::fprintf(stderr,
                     "cache: merged %u shard snapshot(s) -> %s (%llu "
                     "corrupt frame(s) quarantined)\n",
                     Shards, SaveCachePath.c_str(),
                     static_cast<unsigned long long>(
                         OR.CacheCorruptFrames));
      } else {
        std::fprintf(stderr, "error: cannot produce merged cache '%s'\n",
                     SaveCachePath.c_str());
        // Warmth is an optimization; the suite result above is whole.
      }
    }
  } else {
    try {
      for (unsigned Rep = 0; Rep < std::max(1u, Repeat); ++Rep)
        R = Runner.runSpecFP(SO);
    } catch (const std::exception &E) {
      // Journal configuration errors (unwritable path, fingerprint
      // mismatch); per-program failures never throw out of run().
      std::fprintf(stderr, "error: %s\n", E.what());
      return 1;
    }
  }

  TablePrinter T("normalized ED2 (heterogeneous / optimum homogeneous)");
  std::vector<std::string> Header = {"program"}, Row = {"ED2 ratio"};
  for (size_t I = 0; I < R.Names.size(); ++I) {
    Header.push_back(shortSpecName(R.Names[I]));
    Row.push_back(formatString("%.3f", R.ED2Ratios[I]));
  }
  Header.push_back("mean");
  Row.push_back(formatString("%.3f", R.meanRatio()));
  T.addRow(std::move(Header));
  T.addRow(std::move(Row));
  T.print();

  for (const SuiteFailure &F : R.Failures)
    std::fprintf(stderr, "error: %s failed at %s after %.1f ms: %s\n",
                 F.Program.c_str(), pipelineStageName(F.Stage),
                 F.StageWallMs, F.Reason.c_str());

  // Robustness summary: what the degradation ladder absorbed and what
  // the injector (if armed) fired. All zero on a healthy run.
  {
    unsigned long long Degraded = 0, Cold = 0, Flat = 0, Rat = 0;
    for (const ProgramRunResult &D : R.Details) {
      Degraded += D.HetMeasured.DegradedLoops + D.HomMeasured.DegradedLoops;
      Cold += D.HetMeasured.ColdReplays + D.HomMeasured.ColdReplays;
      Flat += D.HetMeasured.FlatPartitions + D.HomMeasured.FlatPartitions;
      Rat += D.HetMeasured.FallbackRational + D.HomMeasured.FallbackRational;
    }
    if (Degraded || Cold || Flat || Rat)
      std::printf("degradation: %llu loops on the analytic rung, %llu cold "
                  "replays, %llu flat partitions, %llu rational fallbacks\n",
                  Degraded, Cold, Flat, Rat);
    const fault::FaultInjector &FI = S.faultInjector();
    if (FI.totalInjected()) {
      std::printf("faults injected: %llu (%llu throws, %llu bad_allocs, "
                  "%llu degrades)\n",
                  static_cast<unsigned long long>(FI.totalInjected()),
                  static_cast<unsigned long long>(FI.injectedThrows()),
                  static_cast<unsigned long long>(FI.injectedBadAllocs()),
                  static_cast<unsigned long long>(FI.injectedDegrades()));
      for (const auto &[Site, Count] : FI.injectedBySite())
        std::printf("  %-16s %llu\n", Site.c_str(),
                    static_cast<unsigned long long>(Count));
    }
  }

  int Rc = R.Failures.empty() ? 0 : 1;
  if (MeasureFrontier) {
    TablePrinter FT("measured frontier (re-ranked by measured ED2)");
    FT.addRow({"program", "points", "argmin agrees", "mean |ED2 err|"});
    for (const MeasuredFrontier &F : R.Frontiers)
      FT.addRow({shortSpecName(F.Program),
                 formatString("%zu", F.Points.size()),
                 F.ArgminAgrees ? "yes" : "NO",
                 formatString("%.4f", F.meanAbsED2Error())});
    FT.print();
    if (writeFrontierCsv(R.Frontiers, FrontierCsv)) {
      std::printf("wrote %s\n", FrontierCsv.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   FrontierCsv.c_str());
      Rc = 1;
    }
    if (writeFrontierJson(R.Frontiers, FrontierJson)) {
      std::printf("wrote %s\n", FrontierJson.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   FrontierJson.c_str());
      Rc = 1;
    }
  }

  const EvalCache &C = S.evalCache();
  std::printf("\nsession cache: %llu timing hits / %llu misses "
              "(%zu entries), %llu selection memo hits / %llu misses\n",
              static_cast<unsigned long long>(C.hits()),
              static_cast<unsigned long long>(C.misses()), C.size(),
              static_cast<unsigned long long>(C.selectionHits()),
              static_cast<unsigned long long>(C.selectionMisses()));
  const ScheduleCache &SC = S.scheduleCache();
  std::printf("schedule cache: %llu hits / %llu misses (%zu entries)\n",
              static_cast<unsigned long long>(SC.hits()),
              static_cast<unsigned long long>(SC.misses()), SC.size());

  // Persistent-tier report and save (stderr: the stdout table stays
  // identical whether or not the cache tier is attached).
  if (S.cachePersistHits() || S.cachePersistLoadStats().loaded())
    std::fprintf(stderr,
                 "cache: %llu hit(s) served from the persistent tier\n",
                 static_cast<unsigned long long>(S.cachePersistHits()));
  if (!SaveCachePath.empty() && Shards == 0) {
    std::string CErr;
    if (S.saveCacheTo(SaveCachePath, &CErr)) {
      std::fprintf(stderr, "cache: saved %llu entries to %s\n",
                   static_cast<unsigned long long>(
                       S.cachePersistSaveStats().saved()),
                   SaveCachePath.c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", CErr.c_str());
      Rc = 1;
    }
  }

  if (!TracePath.empty()) {
    S.tracer().disable();
    if (S.tracer().writeChromeTrace(TracePath))
      std::printf("wrote %s (%llu events across %zu workers, %llu "
                  "dropped)\n",
                  TracePath.c_str(),
                  static_cast<unsigned long long>(S.tracer().totalEvents()),
                  S.tracer().numBuffers(),
                  static_cast<unsigned long long>(
                      S.tracer().droppedEvents()));
    else
      Rc = 1;
  }
  if (!MetricsPath.empty()) {
    std::string J = S.metricsSnapshot().json();
    std::FILE *Out = std::fopen(MetricsPath.c_str(), "wb");
    if (Out) {
      std::fwrite(J.data(), 1, J.size(), Out);
      std::fclose(Out);
      std::printf("wrote %s\n", MetricsPath.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", MetricsPath.c_str());
      Rc = 1;
    }
  }
  return Rc;
}
