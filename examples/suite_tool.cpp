//===- examples/suite_tool.cpp - Suite execution CLI ------------------------===//
//
// Drives the runtime Session/SuiteRunner API over the synthetic SPECfp
// suite: programs fan out across the session's worker pool (each
// program's design-space search nests on the same pool), per-program
// completions stream to stderr as they happen, failures are reported
// as structured records, and the per-benchmark normalized ED2 table —
// the paper's Figure 6 row — prints at the end together with the
// session's shared-cache statistics.
//
// Robustness (PR 9): --journal checkpoints each completed program to a
// durable journal; --resume splices a killed run's journal back in and
// re-executes only what is missing (bit-identical merged result);
// --fault-plan arms the session's deterministic fault injector;
// --degrade / --effort-deadline enable the graceful-degradation ladder.
//
// Usage:
//   suite_tool [--threads N] [--lanes K] [--buses B] [--menu K]
//              [--repeat N] [--measure-frontier]
//              [--frontier-csv PATH] [--frontier-json PATH]
//              [--trace PATH] [--metrics PATH]
//              [--journal PATH] [--resume PATH] [--fault-plan PATH]
//              [--degrade] [--effort-deadline N]
//     --threads  worker-pool parallelism (default: hardware)
//     --lanes    nested-parallelism budget: max programs in flight
//                (default: all; spare threads speed up exploration)
//     --buses    inter-cluster buses (default 1)
//     --menu     frequencies per domain (default: any)
//     --repeat   run the suite N times in one session to show the
//                selection memo (repeats skip all searches)
//     --measure-frontier  also measure every program's Pareto frontier
//                with real schedules (measure/FrontierMeasurer) and
//                emit frontier_measured.csv / frontier_measured.json
//                (paths overridable with --frontier-csv/--frontier-json)
//     --trace    record a span trace of the whole run and write it as
//                Chrome-trace-event JSON (open in Perfetto or
//                chrome://tracing); results are bit-identical with or
//                without tracing
//     --metrics  write the session metrics snapshot (stage wall-time
//                histograms, cache counters) as JSON
//
// Build & run:  ./build/suite_tool --threads 4 --lanes 2
//
//===----------------------------------------------------------------------===//

#include "obs/AllocHook.h"
#include "runtime/SuiteRunner.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hcvliw {
/// Allocation counter surfaced to the tracer: every span in --trace
/// output carries its heap-allocation delta.
std::atomic<uint64_t> ToolAllocCounter{0};
} // namespace hcvliw

HCVLIW_INSTRUMENT_ALLOCS(hcvliw::ToolAllocCounter)

using namespace hcvliw;

namespace {

void printUsage() {
  std::printf(
      "usage: suite_tool [options]\n"
      "  --threads N          worker-pool parallelism (default: hardware)\n"
      "  --lanes K            max programs in flight (default: all)\n"
      "  --buses B            inter-cluster buses (default 1)\n"
      "  --menu K             frequencies per domain (default: any)\n"
      "  --repeat N           run the suite N times in one session\n"
      "  --measure-frontier   also measure every program's frontier\n"
      "  --frontier-csv PATH  frontier CSV path\n"
      "  --frontier-json PATH frontier JSON path\n"
      "  --trace PATH         write a Perfetto-loadable span trace of the\n"
      "                       run (Chrome trace-event JSON); tracing never\n"
      "                       changes results\n"
      "  --metrics PATH       write the session metrics snapshot as JSON\n"
      "  --journal PATH       checkpoint each completed program to PATH\n"
      "                       (incompatible with --measure-frontier)\n"
      "  --resume PATH        resume from a journal written by a previous\n"
      "                       (killed) run of the same options; merged\n"
      "                       result is bit-identical to an uninterrupted\n"
      "                       run\n"
      "  --fault-plan PATH    arm the deterministic fault injector with\n"
      "                       the plan in PATH (see src/fault/Fault.h)\n"
      "  --degrade            degrade unschedulable loops to the analytic\n"
      "                       estimate instead of failing the measurement\n"
      "  --effort-deadline N  per-loop scheduler effort deadline in\n"
      "                       BudgetUsed units (0 = off; deterministic,\n"
      "                       never wall clock)\n"
      "  --help               this text\n");
}

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = 0, Buses = 1, MenuK = 0, Repeat = 1;
  size_t Lanes = 0;
  bool MeasureFrontier = false, Degrade = false;
  uint64_t EffortDeadline = 0;
  std::string FrontierCsv = "frontier_measured.csv";
  std::string FrontierJson = "frontier_measured.json";
  std::string TracePath, MetricsPath;
  std::string JournalPath, ResumePath, FaultPlanPath;
  for (int I = 1; I < argc; ++I) {
    auto need = [&](const char *Flag) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      printUsage();
      return 0;
    } else if (!std::strcmp(argv[I], "--trace")) {
      TracePath = need("--trace");
    } else if (!std::strcmp(argv[I], "--metrics")) {
      MetricsPath = need("--metrics");
    } else if (!std::strcmp(argv[I], "--threads")) {
      if (!parseThreadCount(need("--threads"), Threads)) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024]\n");
        return 1;
      }
    } else if (!std::strcmp(argv[I], "--lanes")) {
      int N = std::atoi(need("--lanes"));
      Lanes = N > 0 ? static_cast<size_t>(N) : 0;
    } else if (!std::strcmp(argv[I], "--buses"))
      Buses = static_cast<unsigned>(std::atoi(need("--buses")));
    else if (!std::strcmp(argv[I], "--menu"))
      MenuK = static_cast<unsigned>(std::atoi(need("--menu")));
    else if (!std::strcmp(argv[I], "--repeat"))
      Repeat = static_cast<unsigned>(std::atoi(need("--repeat")));
    else if (!std::strcmp(argv[I], "--measure-frontier"))
      MeasureFrontier = true;
    else if (!std::strcmp(argv[I], "--frontier-csv"))
      FrontierCsv = need("--frontier-csv");
    else if (!std::strcmp(argv[I], "--frontier-json"))
      FrontierJson = need("--frontier-json");
    else if (!std::strcmp(argv[I], "--journal"))
      JournalPath = need("--journal");
    else if (!std::strcmp(argv[I], "--resume"))
      ResumePath = need("--resume");
    else if (!std::strcmp(argv[I], "--fault-plan"))
      FaultPlanPath = need("--fault-plan");
    else if (!std::strcmp(argv[I], "--degrade"))
      Degrade = true;
    else if (!std::strcmp(argv[I], "--effort-deadline"))
      EffortDeadline = std::strtoull(need("--effort-deadline"), nullptr, 10);
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return 1;
    }
  }

  if (MeasureFrontier && (!JournalPath.empty() || !ResumePath.empty())) {
    std::fprintf(stderr, "error: --journal/--resume are incompatible with "
                         "--measure-frontier (frontiers are not journaled)\n");
    return 1;
  }

  PipelineOptions Opts;
  Opts.Buses = Buses;
  if (MenuK > 0)
    Opts.MenuSize = MenuK;
  Opts.DegradeToEstimate = Degrade;
  Opts.LoopEffortDeadline = EffortDeadline;
  Session S(Opts, Threads);
  SuiteRunner Runner(S);
  if (!TracePath.empty())
    S.tracer().enable();

  if (!FaultPlanPath.empty()) {
    std::string PErr;
    auto Plan = fault::FaultPlan::parseFile(FaultPlanPath, &PErr);
    if (!Plan) {
      std::fprintf(stderr, "error: bad fault plan '%s': %s\n",
                   FaultPlanPath.c_str(), PErr.c_str());
      return 1;
    }
    S.faultInjector().arm(*Plan);
    std::fprintf(stderr, "fault injector armed (%zu rules, seed %llu)\n",
                 Plan->Rules.size(),
                 static_cast<unsigned long long>(Plan->Seed));
  }

  // The resume journal's fingerprint is re-validated by SuiteRunner
  // against this session's options and programs.
  std::optional<SuiteJournal> Resumed;
  if (!ResumePath.empty()) {
    std::string JErr;
    Resumed = SuiteJournal::load(ResumePath, /*ExpectFingerprint=*/0, &JErr);
    if (!Resumed) {
      std::fprintf(stderr, "error: %s\n", JErr.c_str());
      return 1;
    }
    std::fprintf(stderr, "resuming: %zu journaled programs\n",
                 Resumed->numRecords());
  }

  SuiteOptions SO;
  SO.ProgramLanes = Lanes;
  SO.MeasureFrontier = MeasureFrontier;
  SO.JournalPath = JournalPath;
  if (Resumed)
    SO.ResumeFrom = &*Resumed;
  SO.OnProgramDone = [](const SuiteProgress &P) {
    if (P.Ok)
      std::fprintf(stderr, "[%zu/%zu] %-13s ED2 ratio %.3f\n", P.Completed,
                   P.Total, P.Program.c_str(), P.ED2Ratio);
    else
      std::fprintf(stderr, "[%zu/%zu] %-13s FAILED at %s: %s\n",
                   P.Completed, P.Total, P.Program.c_str(),
                   pipelineStageName(P.Failure->Stage),
                   P.Failure->Reason.c_str());
  };

  SuiteResult R;
  try {
    for (unsigned Rep = 0; Rep < std::max(1u, Repeat); ++Rep)
      R = Runner.runSpecFP(SO);
  } catch (const std::exception &E) {
    // Journal configuration errors (unwritable path, fingerprint
    // mismatch); per-program failures never throw out of run().
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }

  TablePrinter T("normalized ED2 (heterogeneous / optimum homogeneous)");
  std::vector<std::string> Header = {"program"}, Row = {"ED2 ratio"};
  for (size_t I = 0; I < R.Names.size(); ++I) {
    Header.push_back(shortSpecName(R.Names[I]));
    Row.push_back(formatString("%.3f", R.ED2Ratios[I]));
  }
  Header.push_back("mean");
  Row.push_back(formatString("%.3f", R.meanRatio()));
  T.addRow(std::move(Header));
  T.addRow(std::move(Row));
  T.print();

  for (const SuiteFailure &F : R.Failures)
    std::fprintf(stderr, "error: %s failed at %s after %.1f ms: %s\n",
                 F.Program.c_str(), pipelineStageName(F.Stage),
                 F.StageWallMs, F.Reason.c_str());

  // Robustness summary: what the degradation ladder absorbed and what
  // the injector (if armed) fired. All zero on a healthy run.
  {
    unsigned long long Degraded = 0, Cold = 0, Flat = 0, Rat = 0;
    for (const ProgramRunResult &D : R.Details) {
      Degraded += D.HetMeasured.DegradedLoops + D.HomMeasured.DegradedLoops;
      Cold += D.HetMeasured.ColdReplays + D.HomMeasured.ColdReplays;
      Flat += D.HetMeasured.FlatPartitions + D.HomMeasured.FlatPartitions;
      Rat += D.HetMeasured.FallbackRational + D.HomMeasured.FallbackRational;
    }
    if (Degraded || Cold || Flat || Rat)
      std::printf("degradation: %llu loops on the analytic rung, %llu cold "
                  "replays, %llu flat partitions, %llu rational fallbacks\n",
                  Degraded, Cold, Flat, Rat);
    const fault::FaultInjector &FI = S.faultInjector();
    if (FI.totalInjected()) {
      std::printf("faults injected: %llu (%llu throws, %llu bad_allocs, "
                  "%llu degrades)\n",
                  static_cast<unsigned long long>(FI.totalInjected()),
                  static_cast<unsigned long long>(FI.injectedThrows()),
                  static_cast<unsigned long long>(FI.injectedBadAllocs()),
                  static_cast<unsigned long long>(FI.injectedDegrades()));
      for (const auto &[Site, Count] : FI.injectedBySite())
        std::printf("  %-16s %llu\n", Site.c_str(),
                    static_cast<unsigned long long>(Count));
    }
  }

  int Rc = R.Failures.empty() ? 0 : 1;
  if (MeasureFrontier) {
    TablePrinter FT("measured frontier (re-ranked by measured ED2)");
    FT.addRow({"program", "points", "argmin agrees", "mean |ED2 err|"});
    for (const MeasuredFrontier &F : R.Frontiers)
      FT.addRow({shortSpecName(F.Program),
                 formatString("%zu", F.Points.size()),
                 F.ArgminAgrees ? "yes" : "NO",
                 formatString("%.4f", F.meanAbsED2Error())});
    FT.print();
    if (writeFrontierCsv(R.Frontiers, FrontierCsv)) {
      std::printf("wrote %s\n", FrontierCsv.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   FrontierCsv.c_str());
      Rc = 1;
    }
    if (writeFrontierJson(R.Frontiers, FrontierJson)) {
      std::printf("wrote %s\n", FrontierJson.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   FrontierJson.c_str());
      Rc = 1;
    }
  }

  const EvalCache &C = S.evalCache();
  std::printf("\nsession cache: %llu timing hits / %llu misses "
              "(%zu entries), %llu selection memo hits / %llu misses\n",
              static_cast<unsigned long long>(C.hits()),
              static_cast<unsigned long long>(C.misses()), C.size(),
              static_cast<unsigned long long>(C.selectionHits()),
              static_cast<unsigned long long>(C.selectionMisses()));
  const ScheduleCache &SC = S.scheduleCache();
  std::printf("schedule cache: %llu hits / %llu misses (%zu entries)\n",
              static_cast<unsigned long long>(SC.hits()),
              static_cast<unsigned long long>(SC.misses()), SC.size());

  if (!TracePath.empty()) {
    S.tracer().disable();
    if (S.tracer().writeChromeTrace(TracePath))
      std::printf("wrote %s (%llu events across %zu workers, %llu "
                  "dropped)\n",
                  TracePath.c_str(),
                  static_cast<unsigned long long>(S.tracer().totalEvents()),
                  S.tracer().numBuffers(),
                  static_cast<unsigned long long>(
                      S.tracer().droppedEvents()));
    else
      Rc = 1;
  }
  if (!MetricsPath.empty()) {
    std::string J = S.metricsSnapshot().json();
    std::FILE *Out = std::fopen(MetricsPath.c_str(), "wb");
    if (Out) {
      std::fwrite(J.data(), 1, J.size(), Out);
      std::fclose(Out);
      std::printf("wrote %s\n", MetricsPath.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", MetricsPath.c_str());
      Rc = 1;
    }
  }
  return Rc;
}
