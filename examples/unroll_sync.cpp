//===- examples/unroll_sync.cpp - Unrolling vs frequency menus --------------===//
//
// Section 5.3 of the paper: when each domain supports only a few
// frequencies, the scheduler sometimes must round the IT up to a
// synchronizable value; unrolling multiplies the loop's MIT so the
// *relative* rounding penalty shrinks, and the unroll factor can be
// chosen so the resulting IT synchronizes exactly.
//
// This example schedules an accumulator loop on a heterogeneous machine
// with a 4-entry frequency menu, at unroll factors 1..4, and prints the
// effective time per original iteration.
//
// Build & run:  ./build/examples/unroll_sync
//
//===----------------------------------------------------------------------===//

#include "ir/Unroll.h"
#include "partition/LoopScheduler.h"
#include "runtime/WorkerPool.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "vliwsim/PipelinedSimulator.h"
#include "workloads/SyntheticLoops.h"

#include <cstdio>
#include <vector>

using namespace hcvliw;

int main() {
  // An accumulator chain (recMII 9) with two side lanes.
  Loop Base = makeChainRecurrenceLoop("acc", 0, 3, 1, 2, 96, 1.0);
  MachineDescription M = MachineDescription::paperDefault();

  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    C.Clusters[I].PeriodNs = Rational(6, 5); // 1.2 ns
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);

  LoopScheduleOptions Opts;
  Opts.Menu = FrequencyMenu::relativeLadder(4);
  LoopScheduler Sched(M, C, Opts);

  TablePrinter T("unroll factor vs achieved initiation time");
  T.addRow({"unroll", "IT (ns)", "IT / orig iter (ns)", "IT steps",
            "verified"});
  // The four unroll factors are independent: fan them out on the
  // worker-pool substrate, rows slot-indexed so the table is identical
  // for any thread count.
  std::vector<std::vector<std::string>> Rows(4);
  WorkerPool Pool;
  Pool.parallelFor(Rows.size(), [&](size_t I) {
    unsigned U = static_cast<unsigned>(I) + 1;
    Loop L = unrollLoop(Base, U);
    LoopScheduleResult R = Sched.schedule(L);
    if (!R.Success) {
      Rows[I] = {formatString("%u", U), "-", "-", "-", R.Failure};
      return;
    }
    double PerIter = R.Sched.Plan.ITNs.toDouble() / U;
    std::string Err =
        checkFunctionalEquivalence(L, R.PG, R.Sched, M, L.TripCount);
    Rows[I] = {formatString("%u", U), R.Sched.Plan.ITNs.str(),
               formatString("%.3f", PerIter), formatString("%u", R.ITSteps),
               Err.empty() ? "exact" : Err};
  });
  for (auto &Row : Rows)
    T.addRow(std::move(Row));
  T.print();

  std::printf("\nWith only 4 frequencies per domain, the unrolled loops "
              "amortize the IT rounding: the per-original-iteration\n"
              "initiation time approaches the recurrence bound "
              "(9 cycles * 0.9 ns = 8.1 ns) as the factor grows.\n");
  return 0;
}
