//===- configsel/ConfigurationSelector.cpp - Section 3.3 search -------------===//

#include "configsel/ConfigurationSelector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace hcvliw;

DesignSpaceOptions DesignSpaceOptions::paperDefault() {
  DesignSpaceOptions O;
  O.FastFactors = {Rational(9, 10), Rational(19, 20), Rational(1),
                   Rational(21, 20), Rational(11, 10)};
  O.SlowRatios = {Rational(1), Rational(5, 4), Rational(4, 3),
                  Rational(3, 2)};
  O.NumFastClusters = 1;
  for (int V = 70; V <= 120; V += 5)
    O.ClusterVddGrid.push_back(V / 100.0);
  for (int V = 80; V <= 110; V += 5)
    O.IcnVddGrid.push_back(V / 100.0);
  for (int V = 100; V <= 140; V += 5)
    O.CacheVddGrid.push_back(V / 100.0);
  for (int F = 16; F <= 30; ++F)
    O.HomogFactors.push_back(Rational(F, 20));
  for (int V = 70; V <= 140; V += 5)
    O.HomogVddGrid.push_back(V / 100.0);
  return O;
}

ConfigurationSelector::ConfigurationSelector(
    const ProgramProfile &P, const MachineDescription &M,
    const EnergyModel &E, const TechnologyModel &T, const FrequencyMenu &Mn,
    const DesignSpaceOptions &S)
    : Profile(P), Machine(M), Energy(E), Tech(T),
      Alpha(T, M.refFrequency().toDouble(), M.RefVdd, M.RefVth), Menu(Mn),
      Space(S) {}

namespace {

/// Greedy per-class voltage choice: the Vdd of \p Grid minimizing
/// Dynamic * delta(Vdd) + LeakPerNs * TexecNs * sigma(Vdd, Vth(f, Vdd)),
/// with Vth derived from the alpha-power law. std::nullopt when no grid
/// voltage supports frequency \p FreqGHz.
std::optional<DomainOperatingPoint>
pickVdd(const AlphaPowerModel &Alpha, const MachineDescription &M,
        const TechnologyModel &Tech, const std::vector<double> &Grid,
        double FreqGHz, const Rational &PeriodNs, double Dynamic,
        double LeakPerNs, double TexecNs, double *CostOut) {
  std::optional<DomainOperatingPoint> Best;
  double BestCost = 0;
  for (double Vdd : Grid) {
    auto Vth = Alpha.vthForFrequency(FreqGHz, Vdd);
    if (!Vth)
      continue;
    double Delta = dynamicEnergyScale(Vdd, M.RefVdd);
    double Sigma = staticEnergyScale(Vdd, *Vth, M.RefVdd, M.RefVth,
                                     Tech.SubthresholdSlopeV);
    double Cost = Dynamic * Delta + LeakPerNs * TexecNs * Sigma;
    if (!Best || Cost < BestCost) {
      DomainOperatingPoint P;
      P.PeriodNs = PeriodNs;
      P.Vdd = Vdd;
      P.Vth = *Vth;
      Best = P;
      BestCost = Cost;
    }
  }
  if (Best && CostOut)
    *CostOut = BestCost;
  return Best;
}

} // namespace

SelectedDesign
ConfigurationSelector::evaluateCandidate(const Rational &FastPeriod,
                                         const Rational &SlowPeriod) const {
  SelectedDesign D;
  unsigned NC = Machine.numClusters();
  unsigned NF = std::min(Space.NumFastClusters, NC);

  HeteroConfig C;
  C.Clusters.resize(NC);
  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I].PeriodNs = I < NF ? FastPeriod : SlowPeriod;
  // Cache and ICN run with the fastest cluster (Section 5).
  C.Icn.PeriodNs = FastPeriod;
  C.Cache.PeriodNs = FastPeriod;

  // Timing + activity accumulation over all loops.
  double TexecNs = 0;
  std::vector<double> WIns(NC, 0.0);
  double Comms = 0, Mem = 0;
  for (const LoopProfile &LP : Profile.Loops) {
    LoopTimingEstimate TE = estimateLoopTiming(LP, Machine, C, Menu);
    if (!TE.Feasible)
      return D;
    TexecNs += LP.Invocations * TE.TexecNs;
    double Iters =
        LP.Invocations * static_cast<double>(LP.TripCount);
    for (unsigned Cl = 0; Cl < NC; ++Cl)
      WIns[Cl] += LP.PerIter.WeightedIns * TE.ClusterShare[Cl] * Iters;
    Comms += LP.PerIter.Comms * Iters;
    Mem += LP.PerIter.MemAccesses * Iters;
  }

  // Voltages, greedily per component class.
  double FastF = FastPeriod.reciprocal().toDouble();
  double SlowF = SlowPeriod.reciprocal().toDouble();
  double WFast = 0, WSlow = 0;
  for (unsigned Cl = 0; Cl < NC; ++Cl)
    (Cl < NF ? WFast : WSlow) += WIns[Cl];

  auto Fast = pickVdd(Alpha, Machine, Tech, Space.ClusterVddGrid, FastF,
                      FastPeriod, WFast * Energy.insUnit(),
                      Energy.clusterLeakPerNs() * NF, TexecNs, nullptr);
  auto Slow = pickVdd(Alpha, Machine, Tech, Space.ClusterVddGrid, SlowF,
                      SlowPeriod, WSlow * Energy.insUnit(),
                      Energy.clusterLeakPerNs() * (NC - NF), TexecNs,
                      nullptr);
  auto Icn = pickVdd(Alpha, Machine, Tech, Space.IcnVddGrid, FastF,
                     FastPeriod, Comms * Energy.commUnit(),
                     Energy.icnLeakPerNs(), TexecNs, nullptr);
  auto Cache = pickVdd(Alpha, Machine, Tech, Space.CacheVddGrid, FastF,
                       FastPeriod, Mem * Energy.accessUnit(),
                       Energy.cacheLeakPerNs(), TexecNs, nullptr);
  if (!Fast || !Slow || !Icn || !Cache)
    return D;

  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I] = I < NF ? *Fast : *Slow;
  C.Icn = *Icn;
  C.Cache = *Cache;

  D.Config = C;
  D.Scaling = scalingForConfig(C, Machine, Tech);
  D.EstTexecNs = TexecNs;
  D.EstEnergy = Energy.heteroEnergy(WIns, Comms, Mem, TexecNs, D.Scaling);
  D.EstED2 = computeED2(D.EstEnergy, TexecNs);
  D.Valid = true;
  return D;
}

std::vector<SelectedDesign> ConfigurationSelector::rankHeterogeneous() const {
  std::vector<SelectedDesign> All;
  for (const Rational &FF : Space.FastFactors) {
    Rational FastPeriod = Machine.RefPeriodNs * FF;
    for (const Rational &SR : Space.SlowRatios) {
      SelectedDesign D = evaluateCandidate(FastPeriod, FastPeriod * SR);
      if (D.Valid)
        All.push_back(std::move(D));
    }
  }
  std::sort(All.begin(), All.end(),
            [](const SelectedDesign &A, const SelectedDesign &B) {
              return A.EstED2 < B.EstED2;
            });
  return All;
}

SelectedDesign ConfigurationSelector::selectHeterogeneous() const {
  std::vector<SelectedDesign> All = rankHeterogeneous();
  if (All.empty())
    return SelectedDesign();
  return All.front();
}

SelectedDesign ConfigurationSelector::selectOptimumHomogeneous() const {
  SelectedDesign Best;
  for (const Rational &HF : Space.HomogFactors) {
    Rational Period = Machine.RefPeriodNs * HF;
    double Freq = Period.reciprocal().toDouble();
    // Same schedule as the reference: only the cycle time scales T.
    double TexecNs = Profile.TexecRefNs * HF.toDouble();

    for (double Vdd : Space.HomogVddGrid) {
      auto Vth = Alpha.vthForFrequency(Freq, Vdd);
      if (!Vth)
        continue;
      HeteroConfig C;
      DomainOperatingPoint P;
      P.PeriodNs = Period;
      P.Vdd = Vdd;
      P.Vth = *Vth;
      C.Clusters.assign(Machine.numClusters(), P);
      C.Icn = P;
      C.Cache = P;

      HeteroScaling S = scalingForConfig(C, Machine, Tech);
      double E = Energy.homogeneousEnergy(Profile.Totals, TexecNs,
                                          S.Clusters.front(), S.Icn,
                                          S.Cache);
      double ED2 = computeED2(E, TexecNs);
      if (!Best.Valid || ED2 < Best.EstED2) {
        Best.Valid = true;
        Best.Config = C;
        Best.Scaling = S;
        Best.EstTexecNs = TexecNs;
        Best.EstEnergy = E;
        Best.EstED2 = ED2;
      }
    }
  }
  return Best;
}
