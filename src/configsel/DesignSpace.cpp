//===- configsel/DesignSpace.cpp - Candidate grids and designs --------------===//

#include "configsel/DesignSpace.h"

using namespace hcvliw;

DesignSpaceOptions DesignSpaceOptions::paperDefault() {
  DesignSpaceOptions O;
  O.FastFactors = {Rational(9, 10), Rational(19, 20), Rational(1),
                   Rational(21, 20), Rational(11, 10)};
  O.SlowRatios = {Rational(1), Rational(5, 4), Rational(4, 3),
                  Rational(3, 2)};
  O.NumFastClusters = 1;
  for (int V = 70; V <= 120; V += 5)
    O.ClusterVddGrid.push_back(V / 100.0);
  for (int V = 80; V <= 110; V += 5)
    O.IcnVddGrid.push_back(V / 100.0);
  for (int V = 100; V <= 140; V += 5)
    O.CacheVddGrid.push_back(V / 100.0);
  for (int F = 16; F <= 30; ++F)
    O.HomogFactors.push_back(Rational(F, 20));
  for (int V = 70; V <= 140; V += 5)
    O.HomogVddGrid.push_back(V / 100.0);
  return O;
}
