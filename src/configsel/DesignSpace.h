//===- configsel/DesignSpace.h - Candidate grids and designs -----*- C++ -*-===//
///
/// \file
/// The heterogeneous design space of Section 3.3 / Section 5 — the
/// frequency-factor and voltage grids a search enumerates — and the
/// record describing one evaluated design. Shared between the serial
/// ConfigurationSelector facade and the parallel ExplorationEngine
/// (src/explore/), so neither has to include the other.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_CONFIGSEL_DESIGNSPACE_H
#define HCVLIW_CONFIGSEL_DESIGNSPACE_H

#include "mcd/HeteroConfig.h"
#include "power/EnergyModel.h"

#include <vector>

namespace hcvliw {

struct DesignSpaceOptions {
  std::vector<Rational> FastFactors;
  std::vector<Rational> SlowRatios;
  unsigned NumFastClusters = 1;
  std::vector<double> ClusterVddGrid;
  std::vector<double> IcnVddGrid;
  std::vector<double> CacheVddGrid;
  std::vector<Rational> HomogFactors;
  std::vector<double> HomogVddGrid;

  /// The paper's evaluation grids (Section 5).
  static DesignSpaceOptions paperDefault();

  /// Heterogeneous candidates in the grid (|FastFactors| x |SlowRatios|).
  size_t numHeteroCandidates() const {
    return FastFactors.size() * SlowRatios.size();
  }
};

struct SelectedDesign {
  bool Valid = false;
  HeteroConfig Config;
  HeteroScaling Scaling;
  double EstTexecNs = 0;
  double EstEnergy = 0;
  double EstED2 = 0;
};

} // namespace hcvliw

#endif // HCVLIW_CONFIGSEL_DESIGNSPACE_H
