//===- configsel/Scaling.cpp - Per-domain delta/sigma factors ---------------===//

#include "configsel/Scaling.h"

using namespace hcvliw;

DomainScaling hcvliw::domainScaling(const DomainOperatingPoint &P,
                                    const MachineDescription &M,
                                    const TechnologyModel &Tech) {
  DomainScaling S;
  S.Delta = dynamicEnergyScale(P.Vdd, M.RefVdd);
  S.Sigma = staticEnergyScale(P.Vdd, P.Vth, M.RefVdd, M.RefVth,
                              Tech.SubthresholdSlopeV);
  return S;
}

HeteroScaling hcvliw::scalingForConfig(const HeteroConfig &C,
                                       const MachineDescription &M,
                                       const TechnologyModel &Tech) {
  HeteroScaling S;
  S.Clusters.reserve(C.Clusters.size());
  for (const auto &P : C.Clusters)
    S.Clusters.push_back(domainScaling(P, M, Tech));
  S.Icn = domainScaling(C.Icn, M, Tech);
  S.Cache = domainScaling(C.Cache, M, Tech);
  return S;
}
