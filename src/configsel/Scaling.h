//===- configsel/Scaling.h - Per-domain delta/sigma factors ------*- C++ -*-===//
///
/// \file
/// Derives the Section 3.1 energy-scaling factors (delta for dynamic,
/// sigma for static energy) of every clock domain of a heterogeneous
/// configuration, relative to the machine's reference operating point.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_CONFIGSEL_SCALING_H
#define HCVLIW_CONFIGSEL_SCALING_H

#include "mcd/HeteroConfig.h"
#include "power/AlphaPowerModel.h"
#include "power/EnergyModel.h"

namespace hcvliw {

/// delta/sigma of one operating point against the reference.
DomainScaling domainScaling(const DomainOperatingPoint &P,
                            const MachineDescription &M,
                            const TechnologyModel &Tech);

/// Scaling of every domain of \p C.
HeteroScaling scalingForConfig(const HeteroConfig &C,
                               const MachineDescription &M,
                               const TechnologyModel &Tech);

} // namespace hcvliw

#endif // HCVLIW_CONFIGSEL_SCALING_H
