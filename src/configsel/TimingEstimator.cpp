//===- configsel/TimingEstimator.cpp - Section 3.2 timing model -------------===//

#include "configsel/TimingEstimator.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

namespace {

/// Best-fit-decreasing packing of the loop's DDG components into the
/// clusters' (II * FU) slot capacities. Components are atomic (splitting
/// one costs communications) and a component containing a recurrence
/// needs a cluster whose II accommodates its recMII. This is what makes
/// the Section 3.2 estimate honest about imbalance: raw slot sums
/// over-promise capacity that indivisible lanes cannot use.
bool packComponents(const LoopProfile &LP, const MachineDescription &M,
                    const MachinePlan &Plan, int64_t EffRecMII) {
  if (LP.Components.empty())
    return true;
  // The real partitioner splits a component across clusters when
  // capacity demands it (paying communications); the estimate allows
  // one such split per loop before declaring the IT infeasible.
  unsigned SplitBudget = 1;
  unsigned NC = M.numClusters();
  std::vector<std::vector<int64_t>> Free(NC,
                                         std::vector<int64_t>(NumFUKinds));
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C][K] = Plan.Clusters[C].II *
                   static_cast<int64_t>(
                       M.Clusters[C].fuCount(static_cast<FUKind>(K)));

  std::vector<unsigned> Order(LP.Components.size());
  for (unsigned I = 0; I < Order.size(); ++I)
    Order[I] = I;
  auto totalSize = [&](unsigned I) {
    unsigned S = 0;
    for (unsigned K = 0; K < NumFUKinds; ++K)
      S += LP.Components[I].FUCounts[K];
    return S;
  };
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    if (LP.Components[A].RecMII != LP.Components[B].RecMII)
      return LP.Components[A].RecMII > LP.Components[B].RecMII;
    return totalSize(A) > totalSize(B);
  });

  for (unsigned I : Order) {
    const ComponentProfile &CP = LP.Components[I];
    // The loop's critical component inherits the achievable (profiled)
    // recurrence II rather than the analytic one.
    int64_t CompRecMII =
        CP.RecMII == LP.RecMII ? std::max(CP.RecMII, EffRecMII) : CP.RecMII;
    int Best = -1;
    int64_t BestSlack = 0;
    for (unsigned C = 0; C < NC; ++C) {
      if (Plan.Clusters[C].II < CompRecMII)
        continue;
      bool Fits = true;
      int64_t Slack = 0;
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        int64_t Rem = Free[C][K] - CP.FUCounts[K];
        if (Rem < 0)
          Fits = false;
        Slack += Rem;
      }
      if (!Fits)
        continue;
      if (Best < 0 || Slack < BestSlack) {
        Best = static_cast<int>(C);
        BestSlack = Slack;
      }
    }
    if (Best >= 0) {
      for (unsigned K = 0; K < NumFUKinds; ++K)
        Free[static_cast<unsigned>(Best)][K] -= CP.FUCounts[K];
      continue;
    }

    // The component fits nowhere atomically. Structurally oversized
    // components (too big even for an empty cluster) must be split;
    // otherwise one split per loop is allowed before the IT grows.
    bool FitsEmptyCluster = false;
    for (unsigned C = 0; C < NC && !FitsEmptyCluster; ++C) {
      if (Plan.Clusters[C].II < CompRecMII)
        continue;
      bool Fits = true;
      for (unsigned K = 0; K < NumFUKinds; ++K)
        if (static_cast<int64_t>(CP.FUCounts[K]) >
            Plan.Clusters[C].II *
                static_cast<int64_t>(
                    M.Clusters[C].fuCount(static_cast<FUKind>(K))))
          Fits = false;
      FitsEmptyCluster = Fits;
    }
    if (FitsEmptyCluster) {
      if (SplitBudget == 0)
        return false; // residual-space failure: grow the IT
      --SplitBudget;
    }
    if (CompRecMII > 0) {
      int Host = -1;
      for (unsigned C = 0; C < NC; ++C)
        if (Plan.Clusters[C].II >= CompRecMII &&
            (Host < 0 || Free[C][0] + Free[C][1] + Free[C][2] >
                             Free[static_cast<unsigned>(Host)][0] +
                                 Free[static_cast<unsigned>(Host)][1] +
                                 Free[static_cast<unsigned>(Host)][2]))
          Host = static_cast<int>(C);
      if (Host < 0)
        return false;
    }
    std::vector<int64_t> Need(CP.FUCounts.begin(), CP.FUCounts.end());
    for (unsigned C = 0; C < NC; ++C)
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        int64_t Take = std::min(Need[K], Free[C][K]);
        Need[K] -= Take;
        Free[C][K] -= Take;
      }
    for (unsigned K = 0; K < NumFUKinds; ++K)
      if (Need[K] > 0)
        return false;
  }
  return true;
}

} // namespace

LoopTimingEstimate hcvliw::estimateLoopTiming(const LoopProfile &LP,
                                              const MachineDescription &M,
                                              const HeteroConfig &C,
                                              const FrequencyMenu &Menu) {
  LoopTimingEstimate E;
  DomainPlanner Planner(M, C, Menu);

  // The achievable recurrence II can exceed the analytic recMII when a
  // zero-slack cycle collides with itself on a functional unit; the
  // reference schedule's II captures that, so recurrence-limited loops
  // use the measured value (profile-driven, in the Section 3 spirit).
  int64_t EffRecMII = LP.RecMII;
  if (LP.RecMII >= LP.ResMII)
    EffRecMII = std::max(EffRecMII, LP.IIHom);

  Rational IT = Planner.computeMIT(EffRecMII, LP.OpCounts);
  constexpr unsigned MaxSteps = 512;
  for (unsigned Step = 0; Step < MaxSteps; ++Step) {
    auto Plan = Planner.planForIT(IT);
    if (Plan && Planner.hasCapacity(*Plan, LP.OpCounts) &&
        packComponents(LP, M, *Plan, EffRecMII)) {
      // Bus slots for the reference schedule's communications.
      bool CommsOK = Plan->Bus.II * static_cast<int64_t>(M.Buses) >=
                     static_cast<int64_t>(LP.PerIter.Comms);
      // Register-lifetime slots for the reference lifetimes.
      int64_t LifetimeSlots = 0;
      for (unsigned Cl = 0; Cl < M.numClusters(); ++Cl)
        LifetimeSlots += Plan->Clusters[Cl].II *
                         static_cast<int64_t>(M.Clusters[Cl].Registers);
      bool LifetimesOK = LifetimeSlots >= LP.SumLifetimesRef;
      if (CommsOK && LifetimesOK) {
        E.Feasible = true;
        E.ITNs = IT;

        // The paper approximates it_length as the reference cycle count
        // times the mean heterogeneous cycle time. Our partitioner's
        // ED2 objective deliberately pushes non-critical work into the
        // slow clusters, so the *slowest* period is the honest
        // multiplier (see DESIGN.md); for uniform-frequency candidates
        // the two coincide.
        Rational SlowestPeriod = C.Clusters.front().PeriodNs;
        for (const auto &D : C.Clusters)
          SlowestPeriod = Rational::max(SlowestPeriod, D.PeriodNs);
        double RefCycles =
            LP.ItLengthRefNs.toDouble() / M.RefPeriodNs.toDouble();
        E.ItLengthNs = RefCycles * SlowestPeriod.toDouble();
        E.TexecNs = (static_cast<double>(LP.TripCount) - 1) *
                        IT.toDouble() +
                    E.ItLengthNs;

        double TotalSlots = 0;
        E.ClusterShare.assign(M.numClusters(), 0);
        for (unsigned Cl = 0; Cl < M.numClusters(); ++Cl) {
          double Slots = static_cast<double>(Plan->Clusters[Cl].II) *
                         (M.Clusters[Cl].IntFUs + M.Clusters[Cl].FpFUs +
                          M.Clusters[Cl].MemPorts);
          E.ClusterShare[Cl] = Slots;
          TotalSlots += Slots;
        }
        for (double &S : E.ClusterShare)
          S /= TotalSlots;
        return E;
      }
    }
    IT = Planner.nextIT(IT);
  }
  return E; // infeasible within the step budget
}
