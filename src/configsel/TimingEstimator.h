//===- configsel/TimingEstimator.h - Section 3.2 timing model ----*- C++ -*-===//
///
/// \file
/// Estimates, at configuration-selection time, the initiation time and
/// execution time a loop would achieve on a candidate heterogeneous
/// configuration (Section 3.2): the IT is the smallest value at or above
/// the configuration's MIT that also provides enough bus slots for the
/// reference schedule's communications and enough register-lifetime
/// slots for the reference schedule's lifetimes; the iteration length is
/// the reference cycle count times the arithmetic mean of the cluster
/// cycle times (the paper's half-fast / half-slow assumption).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_CONFIGSEL_TIMINGESTIMATOR_H
#define HCVLIW_CONFIGSEL_TIMINGESTIMATOR_H

#include "mcd/DomainPlanner.h"
#include "profiling/ProfileData.h"

namespace hcvliw {

struct LoopTimingEstimate {
  bool Feasible = false;
  Rational ITNs;
  double ItLengthNs = 0;
  /// One invocation: (N - 1) * IT + it_length.
  double TexecNs = 0;
  /// Capacity share of each cluster at the estimated IT (the paper's
  /// p_Ci surrogate used by the energy estimate).
  std::vector<double> ClusterShare;
};

LoopTimingEstimate estimateLoopTiming(const LoopProfile &LP,
                                      const MachineDescription &M,
                                      const HeteroConfig &C,
                                      const FrequencyMenu &Menu);

} // namespace hcvliw

#endif // HCVLIW_CONFIGSEL_TIMINGESTIMATOR_H
