//===- core/HeterogeneousPipeline.cpp - Whole-paper pipeline ----------------===//

#include "core/HeterogeneousPipeline.h"
#include "obs/Stopwatch.h"
#include "runtime/Session.h"
#include "support/HashUtil.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace hcvliw;

const char *hcvliw::pipelineStageName(PipelineStage S) {
  switch (S) {
  case PipelineStage::Profiling:
    return "profiling";
  case PipelineStage::Selection:
    return "selection";
  case PipelineStage::Measurement:
    return "measurement";
  }
  assert(false && "unknown pipeline stage");
  return "?";
}

HeterogeneousPipeline::HeterogeneousPipeline(const PipelineOptions &O)
    : Opts(O),
      OwnedMachine(MachineDescription::paperDefault(O.Buses, O.NumClusters)),
      MachineRef(&*OwnedMachine) {}

HeterogeneousPipeline::HeterogeneousPipeline(Session &S)
    : Opts(S.pipelineOptions()), MachineRef(&S.machine()), Sess(&S) {}

FrequencyMenu HeterogeneousPipeline::menu() const {
  // Session mode reuses the session's one menu object (the same the
  // shared EvalCache is bound to) instead of rebuilding per call.
  return Sess ? Sess->menu() : menuFor(Opts);
}

FrequencyMenu HeterogeneousPipeline::menuFor(const PipelineOptions &O) {
  if (!O.MenuSize)
    return FrequencyMenu::continuous();
  // Every domain's clock network derives MenuSize sub-frequencies of
  // that domain's own maximum (Figure 2's multipliers/dividers).
  return FrequencyMenu::relativeLadder(*O.MenuSize);
}

MeasureOptions
HeterogeneousPipeline::measureOptionsFor(const PipelineOptions &O) {
  MeasureOptions MO;
  MO.Menu = menuFor(O);
  MO.Part = O.Part;
  MO.MaxITSteps = O.MaxITSteps;
  MO.SimCheckIterations = O.SimCheckIterations;
  MO.EffortDeadline = O.LoopEffortDeadline;
  MO.AnalyticFallback = O.DegradeToEstimate;
  return MO;
}

ConfigRunResult HeterogeneousPipeline::measureConfig(
    const ProgramProfile &Profile, const std::vector<Loop> &Loops,
    const HeteroConfig &Config, const HeteroScaling &Scaling,
    const EnergyModel &Energy, bool ED2Objective) const {
  // Step 4 is the measure/ layer's ScheduleMeasurer, run under this
  // pipeline's options; session mode memoizes per-loop schedules
  // through the session ScheduleCache (bit-identical to recomputation,
  // so standalone and session pipelines still agree exactly).
  MeasureOptions MO = measureOptionsFor(Opts);
  MO.Menu = menu(); // session mode reuses the session's menu object
  // The session's fault injector (disarmed = every site is a no-op
  // branch); not part of any cache key — an *armed* measurement
  // bypasses the schedule cache instead (see MeasureOptions::Fault).
  MO.Fault = Sess ? &Sess->faultInjector() : nullptr;
  ScheduleMeasurer Measurer(machine(), MO,
                            Sess ? &Sess->scheduleCache() : nullptr,
                            Sess ? &Sess->scheduleScratchPool() : nullptr,
                            Sess ? &Sess->tracer() : nullptr,
                            Sess ? &Sess->metrics() : nullptr);
  return Measurer.measure(Profile, Loops, Config, Scaling, Energy,
                          ED2Objective);
}

namespace {

/// Everything a selection's result depends on beyond the shared cache's
/// own (machine, menu) binding: the profile, the grids, the technology,
/// the energy-share assumptions, the reference operating point, and
/// which of the two selections ran.
uint64_t selectionKey(uint64_t ProfileFP, const PipelineOptions &Opts,
                      const MachineDescription &M, bool Heterogeneous) {
  FnvHasher H;
  H.mix(ProfileFP);
  H.mix(Heterogeneous ? 1u : 2u);
  const DesignSpaceOptions &S = Opts.Space;
  H.mixVector(S.FastFactors);
  H.mixVector(S.SlowRatios);
  H.mix(S.NumFastClusters);
  H.mixVector(S.ClusterVddGrid);
  H.mixVector(S.IcnVddGrid);
  H.mixVector(S.CacheVddGrid);
  H.mixVector(S.HomogFactors);
  H.mixVector(S.HomogVddGrid);
  H.mixDouble(Opts.Tech.Alpha);
  H.mixDouble(Opts.Tech.SubthresholdSlopeV);
  H.mixDouble(Opts.Tech.OverdriveMargin);
  H.mixDouble(Opts.Breakdown.CacheShare);
  H.mixDouble(Opts.Breakdown.IcnShare);
  H.mixDouble(Opts.Breakdown.ClusterLeakageFrac);
  H.mixDouble(Opts.Breakdown.CacheLeakageFrac);
  H.mixDouble(Opts.Breakdown.IcnLeakageFrac);
  H.mixDouble(M.RefVdd);
  H.mixDouble(M.RefVth);
  return H.digest();
}

void setError(PipelineError *Err, PipelineStage Stage, std::string Reason) {
  if (!Err)
    return;
  Err->Stage = Stage;
  Err->Reason = std::move(Reason);
}

} // namespace

std::optional<ProgramRunResult>
HeterogeneousPipeline::runProgram(const BenchmarkProgram &Program,
                                  PipelineError *Err) const {
  ProgramRunResult R;
  R.Name = Program.Name;

  // Observability: stage spans + per-stage wall histograms in session
  // mode; the stage clock also stamps StageWallMs into failure records
  // (always cheap: three clock reads per program). None of this feeds
  // back into any result.
  obs::Tracer *Trace = Sess ? &Sess->tracer() : nullptr;
  obs::MetricsRegistry *Metrics = Sess ? &Sess->metrics() : nullptr;
  obs::Stopwatch StageSW;
  auto stageMs = [&StageSW] { return StageSW.elapsedMs(); };
  auto finishStage = [&](const char *Hist) {
    double Ms = stageMs();
    if (Metrics)
      Metrics->observeMs(Hist, Ms);
    StageSW.restart();
    return Ms;
  };

  // Containment: each stage converts a throw — an injected fault, a
  // bad_alloc, a defect in stage code — into the same structured
  // PipelineError a failing stage returns. One program's crash must
  // cost that program, never the suite or the process.
  auto stageException = [&](PipelineStage Stage, const char *Hist) {
    std::string What = "unknown exception";
    try {
      throw;
    } catch (const std::exception &E) {
      What = E.what();
    } catch (...) {
    }
    setError(Err, Stage, "exception: " + What);
    if (Err)
      Err->StageWallMs = finishStage(Hist);
  };

  Profiler Prof(machine(), Opts.ProgramBudgetNs);
  std::string ProfErr;
  std::optional<ProgramProfile> Profile;
  try {
    obs::Span Sp(Trace, "stage.profile:", Program.Name);
    Profile = Prof.profileProgram(Program.Name, Program.Loops, &ProfErr);
  } catch (...) {
    stageException(PipelineStage::Profiling, "stage.profile.ms");
    return std::nullopt;
  }
  if (!Profile) {
    setError(Err, PipelineStage::Profiling, std::move(ProfErr));
    if (Err)
      Err->StageWallMs = finishStage("stage.profile.ms");
    return std::nullopt;
  }
  finishStage("stage.profile.ms");
  R.Profile = std::move(*Profile);

  EnergyModel Energy(Opts.Breakdown, R.Profile.Totals, R.Profile.TexecRefNs,
                     machine().numClusters());
  EvalCache *Cache = Sess ? &Sess->evalCache() : nullptr;
  ConfigurationSelector Sel(R.Profile, machine(), Energy, Opts.Tech, menu(),
                            Opts.Space, Cache,
                            Sess ? &Sess->pool() : nullptr);

  // Session mode memoizes whole selections: a repeated program (same
  // profile, same selection inputs) skips its searches entirely. The
  // memo is exact — equal keys hash equal inputs, and the searches are
  // pure functions of those inputs.
  try {
    obs::Span Sp(Trace, "stage.select:", Program.Name);
    if (Cache) {
      uint64_t FP = R.Profile.fingerprint();
      uint64_t HetKey = selectionKey(FP, Opts, machine(), true);
      uint64_t HomKey = selectionKey(FP, Opts, machine(), false);
      unsigned MemoHits = 0;
      if (auto D = Cache->findSelection(HetKey)) {
        R.HetDesign = *D;
        ++MemoHits;
      } else {
        R.HetDesign = Sel.selectHeterogeneous();
        Cache->storeSelection(HetKey, R.HetDesign);
      }
      if (auto D = Cache->findSelection(HomKey)) {
        R.HomDesign = *D;
        ++MemoHits;
      } else {
        R.HomDesign = Sel.selectOptimumHomogeneous();
        Cache->storeSelection(HomKey, R.HomDesign);
      }
      Sp.arg("memo_hits", MemoHits);
    } else {
      R.HetDesign = Sel.selectHeterogeneous();
      R.HomDesign = Sel.selectOptimumHomogeneous();
    }
  } catch (...) {
    stageException(PipelineStage::Selection, "stage.select.ms");
    return std::nullopt;
  }
  if (!R.HetDesign.Valid || !R.HomDesign.Valid) {
    setError(Err, PipelineStage::Selection,
             formatString("no feasible %s design in the grid",
                          !R.HetDesign.Valid && !R.HomDesign.Valid
                              ? "heterogeneous or homogeneous"
                              : (!R.HetDesign.Valid ? "heterogeneous"
                                                    : "homogeneous")));
    if (Err)
      Err->StageWallMs = finishStage("stage.select.ms");
    return std::nullopt;
  }
  finishStage("stage.select.ms");

  try {
    obs::Span Sp(Trace, "stage.measure:", Program.Name);
    R.HetMeasured =
        measureConfig(R.Profile, Program.Loops, R.HetDesign.Config,
                      R.HetDesign.Scaling, Energy, /*ED2Objective=*/true);
    R.HomMeasured =
        measureConfig(R.Profile, Program.Loops, R.HomDesign.Config,
                      R.HomDesign.Scaling, Energy, /*ED2Objective=*/false);
  } catch (...) {
    stageException(PipelineStage::Measurement, "stage.measure.ms");
    return std::nullopt;
  }
  if (!R.HetMeasured.Ok || !R.HomMeasured.Ok) {
    const ConfigRunResult &Bad =
        !R.HetMeasured.Ok ? R.HetMeasured : R.HomMeasured;
    std::string Reason = formatString(
        "%s measurement failed: %u of %zu loops unschedulable",
        !R.HetMeasured.Ok ? "heterogeneous" : "homogeneous", Bad.Failures,
        Program.Loops.size());
    // Surface the Figure 5 sweep's per-IT failure aggregation for the
    // first failed loop: which stage failed at which IT.
    if (!Bad.FailureDetails.empty()) {
      const LoopScheduleFailure &F = Bad.FailureDetails.front();
      Reason += formatString(" (%s: %s)", F.Loop.c_str(), F.Detail.c_str());
    }
    setError(Err, PipelineStage::Measurement, std::move(Reason));
    if (Err)
      Err->StageWallMs = finishStage("stage.measure.ms");
    return std::nullopt;
  }
  finishStage("stage.measure.ms");

  R.ED2Ratio = R.HetMeasured.ED2 / R.HomMeasured.ED2;
  return R;
}
