//===- core/HeterogeneousPipeline.cpp - Whole-paper pipeline ----------------===//

#include "core/HeterogeneousPipeline.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

HeterogeneousPipeline::HeterogeneousPipeline(const PipelineOptions &O)
    : Opts(O),
      Machine(MachineDescription::paperDefault(O.Buses, O.NumClusters)) {}

FrequencyMenu HeterogeneousPipeline::menu() const {
  if (!Opts.MenuSize)
    return FrequencyMenu::continuous();
  // Every domain's clock network derives MenuSize sub-frequencies of
  // that domain's own maximum (Figure 2's multipliers/dividers).
  return FrequencyMenu::relativeLadder(*Opts.MenuSize);
}

ConfigRunResult HeterogeneousPipeline::measureConfig(
    const ProgramProfile &Profile, const std::vector<Loop> &Loops,
    const HeteroConfig &Config, const HeteroScaling &Scaling,
    const EnergyModel &Energy, bool ED2Objective) const {
  ConfigRunResult R;
  assert(Profile.Loops.size() == Loops.size() &&
         "profile does not match the loop list");

  LoopScheduleOptions LSO;
  // Homogeneous baselines run at one fixed frequency; only the
  // heterogeneous machine negotiates per-loop (II, freq) pairs from the
  // restricted menu.
  LSO.Menu = ED2Objective ? menu() : FrequencyMenu::continuous();
  LSO.Part = Opts.Part;
  // The ablation knob in Opts.Part can force the balance-only objective
  // even on the heterogeneous machine.
  LSO.Part.ED2Objective = ED2Objective && Opts.Part.ED2Objective;
  LoopScheduler Sched(Machine, Config, LSO);

  double TexecNs = 0;
  std::vector<double> WIns(Machine.numClusters(), 0.0);
  double Comms = 0, Mem = 0;

  for (size_t I = 0; I < Loops.size(); ++I) {
    const Loop &L = Loops[I];
    const LoopProfile &LP = Profile.Loops[I];

    LoopScheduleResult LR =
        Sched.schedule(L, ED2Objective ? &Energy : nullptr,
                       ED2Objective ? &Scaling : nullptr);
    if (!LR.Success) {
      ++R.Failures;
      continue;
    }

    if (Opts.SimCheckIterations > 0) {
      uint64_t N = std::min<uint64_t>(L.TripCount, Opts.SimCheckIterations);
      [[maybe_unused]] std::string Err =
          checkFunctionalEquivalence(L, LR.PG, LR.Sched, Machine, N);
      assert(Err.empty() && "measured schedule is not functionally correct");
    }

    double LoopT = LP.Invocations *
                   LR.Sched.execTimeNs(LR.PG, L.TripCount).toDouble();
    TexecNs += LoopT;

    double Iters =
        LP.Invocations * static_cast<double>(L.TripCount);
    for (unsigned Op = 0; Op < L.size(); ++Op)
      WIns[LR.Assignment.cluster(Op)] +=
          Machine.Isa.energy(L.Ops[Op].Op) * Iters;
    Comms += static_cast<double>(LR.PG.numCopies()) * Iters;
    Mem += LP.PerIter.MemAccesses * Iters;

    LoopRunStat Stat;
    Stat.Name = L.Name;
    Stat.ITNs = LR.Sched.Plan.ITNs.toDouble();
    Stat.TexecNs = LoopT;
    Stat.Comms = LR.PG.numCopies();
    R.Loops.push_back(std::move(Stat));
  }

  if (R.Failures == Loops.size())
    return R;
  R.TexecNs = TexecNs;
  R.Energy = Energy.heteroEnergy(WIns, Comms, Mem, TexecNs, Scaling);
  R.ED2 = computeED2(R.Energy, TexecNs);
  R.Ok = true;
  return R;
}

std::optional<ProgramRunResult>
HeterogeneousPipeline::runProgram(const BenchmarkProgram &Program) const {
  ProgramRunResult R;
  R.Name = Program.Name;

  Profiler Prof(Machine, Opts.ProgramBudgetNs);
  auto Profile = Prof.profileProgram(Program.Name, Program.Loops);
  if (!Profile)
    return std::nullopt;
  R.Profile = std::move(*Profile);

  EnergyModel Energy(Opts.Breakdown, R.Profile.Totals, R.Profile.TexecRefNs,
                     Machine.numClusters());
  ConfigurationSelector Sel(R.Profile, Machine, Energy, Opts.Tech, menu(),
                            Opts.Space);
  R.HetDesign = Sel.selectHeterogeneous();
  R.HomDesign = Sel.selectOptimumHomogeneous();
  if (!R.HetDesign.Valid || !R.HomDesign.Valid)
    return std::nullopt;

  R.HetMeasured =
      measureConfig(R.Profile, Program.Loops, R.HetDesign.Config,
                    R.HetDesign.Scaling, Energy, /*ED2Objective=*/true);
  R.HomMeasured =
      measureConfig(R.Profile, Program.Loops, R.HomDesign.Config,
                    R.HomDesign.Scaling, Energy, /*ED2Objective=*/false);
  if (!R.HetMeasured.Ok || !R.HomMeasured.Ok)
    return std::nullopt;

  R.ED2Ratio = R.HetMeasured.ED2 / R.HomMeasured.ED2;
  return R;
}
