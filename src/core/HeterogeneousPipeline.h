//===- core/HeterogeneousPipeline.h - Whole-paper pipeline -------*- C++ -*-===//
///
/// \file
/// The end-to-end flow the paper evaluates, for one program:
///
///   1. profile the program on the reference homogeneous machine,
///   2. build the Section 3.1 energy model from the profile,
///   3. select the heterogeneous configuration minimizing estimated ED2
///      (Section 3.3) and the optimum homogeneous baseline (Section 5.1),
///   4. *measure* both: schedule every loop with the Figure 5 driver
///      (ED2-objective partitioning on the heterogeneous machine, the
///      [2][3] baseline objective on the homogeneous one), optionally
///      re-execute schedules on the MCD simulator as a functional check,
///      and evaluate time/energy/ED2 from the measured schedules,
///   5. report heterogeneous ED2 normalized to the homogeneous optimum
///      (the quantity plotted in Figure 6).
///
/// All baseline assumptions (bus count, energy shares, leakage shares,
/// frequency-menu size, ablation knobs) are PipelineOptions fields; the
/// Figure 7/8/9 benches are parameter sweeps over them.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_CORE_HETEROGENEOUSPIPELINE_H
#define HCVLIW_CORE_HETEROGENEOUSPIPELINE_H

#include "explore/ConfigurationSelector.h"
#include "measure/ScheduleMeasurer.h"
#include "partition/Partitioner.h"
#include "profiling/Profiler.h"
#include "workloads/SpecFPSuite.h"

#include <optional>

namespace hcvliw {

struct PipelineOptions {
  unsigned Buses = 1;
  unsigned NumClusters = 4;
  /// Frequencies each domain supports: nullopt = any frequency
  /// (Figure 7 sweeps {16, 8, 4}).
  std::optional<unsigned> MenuSize;
  EnergyBreakdown Breakdown;
  TechnologyModel Tech = TechnologyModel::paperDefault();
  DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
  /// Partitioner knobs (ablations disable recurrence pre-placement or
  /// the ED2 refinement objective).
  PartitionerOptions Part;
  double ProgramBudgetNs = 1e6;
  /// Measurement-stage IT growth attempts per loop (Figure 5 retries);
  /// a loop exhausting them counts as a measurement failure.
  unsigned MaxITSteps = 64;
  /// When nonzero, every measured schedule is re-executed on the MCD
  /// simulator for min(trip, this) iterations and compared bit-for-bit
  /// against sequential execution.
  uint64_t SimCheckIterations = 0;
  /// Per-loop effort deadline for the measurement stage, in scheduler
  /// BudgetUsed units (0 = off). Effort — never wall clock — so the
  /// same loops hit the deadline on every machine and thread count;
  /// see LoopScheduleOptions::EffortDeadline.
  uint64_t LoopEffortDeadline = 0;
  /// Degrade a loop whose Figure 5 sweep fails (including by effort
  /// deadline) to the analytic reference-profile estimate instead of
  /// failing the measurement — the last graceful-degradation rung
  /// (MeasureOptions::AnalyticFallback). Degraded loops are flagged on
  /// LoopRunStat::Degraded and counted in ConfigRunResult.
  bool DegradeToEstimate = false;
};

// LoopRunStat / ConfigRunResult — the measured-schedule result types —
// live in measure/ScheduleMeasurer.h since the measurement stage was
// extracted into src/measure/; re-exported here for source
// compatibility.

struct ProgramRunResult {
  std::string Name;
  ProgramProfile Profile;
  SelectedDesign HetDesign; ///< estimates behind the selection
  SelectedDesign HomDesign;
  ConfigRunResult HetMeasured;
  ConfigRunResult HomMeasured;
  /// Measured heterogeneous ED2 / measured optimum-homogeneous ED2
  /// (Figure 6's y-axis).
  double ED2Ratio = 1.0;
};

/// Where a failed runProgram gave up.
enum class PipelineStage { Profiling, Selection, Measurement };

const char *pipelineStageName(PipelineStage S);

/// Structured failure record: stage plus a human-readable reason (the
/// SuiteRunner surfaces these instead of dropping failed programs).
struct PipelineError {
  PipelineStage Stage = PipelineStage::Profiling;
  std::string Reason;
  /// Wall time the failing stage ran before giving up, so
  /// timeout-shaped failures (a stage that ground away for seconds)
  /// read differently from logic failures (instant). Diagnostic only —
  /// never part of any result or cache contract.
  double StageWallMs = 0;
};

class Session;

class HeterogeneousPipeline {
  PipelineOptions Opts;
  /// Standalone mode owns its machine; session mode points at the
  /// session's (the same object its EvalCache is bound to).
  std::optional<MachineDescription> OwnedMachine;
  const MachineDescription *MachineRef = nullptr;
  Session *Sess = nullptr; ///< non-owning; null for standalone pipelines

public:
  explicit HeterogeneousPipeline(const PipelineOptions &O);

  /// Session-backed pipeline: machine and menu are the session's,
  /// selections run on the session's worker pool and memoize through
  /// its shared EvalCache (loop timing across programs, whole
  /// selections across repeated runs). Numerically identical to the
  /// standalone constructor.
  explicit HeterogeneousPipeline(Session &S);

  HeterogeneousPipeline(const HeterogeneousPipeline &) = delete;
  HeterogeneousPipeline &operator=(const HeterogeneousPipeline &) = delete;

  const MachineDescription &machine() const { return *MachineRef; }
  const PipelineOptions &options() const { return Opts; }

  /// The frequency menu heterogeneous scheduling/selection uses.
  FrequencyMenu menu() const;
  static FrequencyMenu menuFor(const PipelineOptions &O);

  /// The measurement-stage knobs \p O implies (what this pipeline's
  /// ScheduleMeasurer runs under).
  static MeasureOptions measureOptionsFor(const PipelineOptions &O);

  /// Full pipeline for one program; std::nullopt when profiling,
  /// selection or measurement fails (a workload bug). On failure,
  /// \p Err (when non-null) records the stage and reason. Safe to call
  /// concurrently from multiple threads.
  ///
  /// Exception containment: a stage that throws (an injected fault, a
  /// bad_alloc, a defect in stage code) is converted into the same
  /// structured failure as a stage that returns one — PipelineError
  /// with the stage, an "exception: <what>" reason, and the stage's
  /// wall time. runProgram itself never throws.
  std::optional<ProgramRunResult>
  runProgram(const BenchmarkProgram &Program,
             PipelineError *Err = nullptr) const;

  /// Schedules and evaluates one already-chosen configuration: a thin
  /// facade over the measure/ layer's ScheduleMeasurer, run under this
  /// pipeline's options (exposed for the oracle ablation and the
  /// tests). In session mode per-loop schedules are memoized through
  /// the session ScheduleCache; results are bit-identical either way.
  ConfigRunResult measureConfig(const ProgramProfile &Profile,
                                const std::vector<Loop> &Loops,
                                const HeteroConfig &Config,
                                const HeteroScaling &Scaling,
                                const EnergyModel &Energy,
                                bool ED2Objective) const;
};

} // namespace hcvliw

#endif // HCVLIW_CORE_HETEROGENEOUSPIPELINE_H
