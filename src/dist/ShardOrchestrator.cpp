//===- dist/ShardOrchestrator.cpp - Crash-tolerant sharded suites -----------===//

#include "dist/ShardOrchestrator.h"

#include "obs/Stopwatch.h"
#include "runtime/CachePersist.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace hcvliw;
using namespace hcvliw::dist;

ShardExecutor::~ShardExecutor() = default;

uint64_t hcvliw::dist::shardBackoffMs(uint64_t BaseMs, unsigned Attempt) {
  if (Attempt < 2)
    return 0;
  unsigned Shift = Attempt - 2;
  if (Shift > 20) // cap well before overflow; 30 s clamp below anyway
    Shift = 20;
  uint64_t Ms = BaseMs << Shift;
  return std::min<uint64_t>(Ms, 30000);
}

std::string hcvliw::dist::shardJournalPath(const std::string &WorkDir,
                                           unsigned Index) {
  return WorkDir + "/shard" + std::to_string(Index) + ".journal";
}
std::string hcvliw::dist::shardCachePath(const std::string &WorkDir,
                                         unsigned Index) {
  return WorkDir + "/shard" + std::to_string(Index) + ".cache";
}
std::string hcvliw::dist::shardLogPath(const std::string &WorkDir,
                                       unsigned Index) {
  return WorkDir + "/shard" + std::to_string(Index) + ".log";
}
std::string hcvliw::dist::mergedCachePath(const std::string &WorkDir) {
  return WorkDir + "/merged.cache";
}

ShardExecutor::Outcome
SubprocessShardExecutor::runShard(const ShardSpec &Spec, double DeadlineMs) {
  Outcome O;
  std::vector<std::string> Args = Cmd(Spec);
  if (Args.empty()) {
    O.Detail = "empty shard command";
    return O;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    O.Detail = "fork failed";
    return O;
  }
  if (Pid == 0) {
    // Child: capture both streams into the shard log, then exec. Only
    // async-signal-safe calls from here on.
    if (!Spec.LogPath.empty()) {
      int Fd = ::open(Spec.LogPath.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                      0644);
      if (Fd >= 0) {
        ::dup2(Fd, 1);
        ::dup2(Fd, 2);
        ::close(Fd);
      }
    }
    std::vector<char *> Argv;
    Argv.reserve(Args.size() + 1);
    for (std::string &A : Args)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    ::execvp(Argv[0], Argv.data());
    ::_exit(127);
  }
  O.Spawned = true;
  obs::Stopwatch SW; // orchestration control only; never in a result
  int Status = 0;
  for (;;) {
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid)
      break;
    if (R < 0) {
      O.Detail = "waitpid failed";
      return O;
    }
    if (DeadlineMs > 0 && SW.elapsedMs() > DeadlineMs) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, &Status, 0);
      O.TimedOut = true;
      O.Detail = "deadline exceeded; shard killed";
      return O;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
    O.Exited0 = true;
  } else if (WIFSIGNALED(Status)) {
    O.Detail = "shard killed by signal " + std::to_string(WTERMSIG(Status));
  } else {
    O.Detail =
        "shard exited with status " +
        std::to_string(WIFEXITED(Status) ? WEXITSTATUS(Status) : -1);
  }
  return O;
}

namespace {

/// Does \p JournalPath hold every program shard (\p Index, \p Count)
/// owns? Returns the number missing (0 = complete); fills \p Why on a
/// journal that is absent or refuses to load.
size_t shardMissing(const std::string &JournalPath, uint64_t Fingerprint,
                    unsigned Index, unsigned Count,
                    const std::vector<BenchmarkProgram> &Programs,
                    std::string *Why) {
  std::string Err;
  auto J = SuiteJournal::load(JournalPath, Fingerprint, &Err);
  if (!J) {
    if (Why)
      *Why = Err;
    size_t Owned = 0;
    for (const BenchmarkProgram &P : Programs)
      Owned += suiteShardOf(P.Name, Count) == Index ? 1 : 0;
    return Owned;
  }
  size_t Missing = 0;
  for (const BenchmarkProgram &P : Programs) {
    if (suiteShardOf(P.Name, Count) != Index)
      continue;
    if (!J->Results.count(P.Name) && !J->Failures.count(P.Name))
      ++Missing;
  }
  if (Missing && Why)
    *Why = std::to_string(Missing) + " owned program(s) not journaled";
  return Missing;
}

} // namespace

OrchestratorResult
ShardOrchestrator::run(const std::vector<BenchmarkProgram> &Programs,
                       const OrchestratorOptions &Opts) {
  OrchestratorResult R;
  const unsigned N = std::max(1u, Opts.Shards);
  const unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  R.Shards.resize(N);

  obs::Span Sp(&S.tracer(), "dist.run");
  if (Sp.active()) {
    Sp.arg("shards", static_cast<int64_t>(N));
    Sp.arg("programs", static_cast<int64_t>(Programs.size()));
  }

  const uint64_t Fingerprint =
      suiteJournalFingerprint(S.pipelineOptions(), Programs);

  std::mutex EventMutex;
  auto event = [&](const std::string &Msg) {
    if (!Opts.OnEvent)
      return;
    std::lock_guard<std::mutex> Lock(EventMutex);
    Opts.OnEvent(Msg);
  };

  // One attempt loop per shard, each on its own thread: attempts block
  // on child processes, so the session pool (sized for CPU work) is
  // the wrong vehicle. Reports are slot-indexed; nothing here feeds a
  // result except through the journals.
  auto driveShard = [&](unsigned Index) {
    ShardReport &Rep = R.Shards[Index];
    std::string Ctx = "shard" + std::to_string(Index);
    for (unsigned Attempt = 1; Attempt <= MaxAttempts; ++Attempt) {
      Rep.Attempts = Attempt;
      uint64_t Wait = shardBackoffMs(Opts.BackoffBaseMs, Attempt);
      if (Wait) {
        S.metrics().addCounter("dist.retries", 1);
        event(Ctx + ": retry attempt " + std::to_string(Attempt) +
              " after " + std::to_string(Wait) + " ms backoff");
        std::this_thread::sleep_for(std::chrono::milliseconds(Wait));
      }
      ShardSpec Spec;
      Spec.Index = Index;
      Spec.Count = N;
      Spec.Attempt = Attempt;
      Spec.JournalPath = shardJournalPath(Opts.WorkDir, Index);
      if (Opts.MergeCaches)
        Spec.CachePath = shardCachePath(Opts.WorkDir, Index);
      Spec.LogPath = shardLogPath(Opts.WorkDir, Index);

      ShardExecutor::Outcome O;
      try {
        HCVLIW_FAULT_POINT(&S.faultInjector(), "dist.spawn", Ctx);
        S.metrics().addCounter("dist.spawns", 1);
        event(Ctx + ": attempt " + std::to_string(Attempt) + " spawning");
        O = Exec.runShard(Spec, Opts.ShardDeadlineMs);
      } catch (const std::exception &E) {
        O.Detail = std::string("spawn failed: ") + E.what();
      }
      if (O.TimedOut) {
        Rep.TimedOut = true;
        S.metrics().addCounter("dist.timeouts", 1);
      }
      // Trust the journal, not the exit status: a shard that exited 0
      // but left a hole retries; one that crashed after finishing its
      // partition does not need to.
      std::string Why;
      size_t Missing = shardMissing(Spec.JournalPath, Fingerprint, Index, N,
                                    Programs, &Why);
      if (Missing == 0) {
        Rep.Ok = true;
        Rep.Detail = O.Detail;
        event(Ctx + ": complete after " + std::to_string(Attempt) +
              " attempt(s)");
        return;
      }
      Rep.Detail = O.Detail.empty() ? Why : O.Detail + "; " + Why;
      event(Ctx + ": incomplete (" + Rep.Detail + ")");
    }
    event(Ctx + ": giving up after " + std::to_string(MaxAttempts) +
          " attempt(s)");
  };

  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back(driveShard, I);
  for (std::thread &T : Threads)
    T.join();

  for (unsigned I = 0; I < N; ++I) {
    if (!R.Shards[I].Ok) {
      R.Error = "shard " + std::to_string(I) + " failed after " +
                std::to_string(R.Shards[I].Attempts) + " attempt(s): " +
                R.Shards[I].Detail;
      return R;
    }
  }

  // --- reassembly ----------------------------------------------------------
  // Union the shard journals, then take SuiteRunner's resume path with
  // every slot prefilled: the merged result flows through the exact
  // reduction an uninterrupted run uses, so it is bit-identical to
  // single-process for any shard count.
  try {
    HCVLIW_FAULT_POINT(&S.faultInjector(), "dist.merge", "");
    SuiteJournal Union;
    Union.Fingerprint = Fingerprint;
    for (unsigned I = 0; I < N; ++I) {
      std::string Err;
      auto J = SuiteJournal::load(shardJournalPath(Opts.WorkDir, I),
                                  Fingerprint, &Err);
      if (!J) {
        R.Error = "shard " + std::to_string(I) + " journal: " + Err;
        return R;
      }
      for (auto &KV : J->Results)
        Union.Results.emplace(KV.first, std::move(KV.second));
      for (auto &KV : J->Failures)
        Union.Failures.emplace(KV.first, std::move(KV.second));
    }
    // Coverage before reassembly: a hole means a scheduling bug, and
    // resuming past it would silently recompute the program locally —
    // masking exactly the defect this layer exists to surface.
    for (const BenchmarkProgram &P : Programs) {
      if (!Union.Results.count(P.Name) && !Union.Failures.count(P.Name)) {
        R.Error = "merge coverage hole: program " + P.Name +
                  " appears in no shard journal";
        return R;
      }
    }
    S.metrics().addCounter("dist.merged_records", Union.numRecords());
    event("merge: " + std::to_string(Union.numRecords()) +
          " journal records across " + std::to_string(N) + " shards");
    SuiteOptions MO;
    MO.ResumeFrom = &Union;
    R.Result = SuiteRunner(S).run(Programs, MO);
  } catch (const std::exception &E) {
    R.Error = std::string("merge failed: ") + E.what();
    return R;
  }

  // --- side-car cache merge ------------------------------------------------
  if (Opts.MergeCaches) {
    std::vector<std::string> Snaps;
    for (unsigned I = 0; I < N; ++I) {
      std::string P = shardCachePath(Opts.WorkDir, I);
      struct stat St;
      if (::stat(P.c_str(), &St) == 0)
        Snaps.push_back(P);
    }
    if (!Snaps.empty()) {
      std::string Out = mergedCachePath(Opts.WorkDir), Err;
      if (mergeCacheSnapshots(Snaps, Out, &R.CacheCorruptFrames, &Err)) {
        R.MergedCachePath = Out;
        event("cache merge: " + std::to_string(Snaps.size()) +
              " side-car snapshot(s) -> " + Out);
      } else {
        // Cache warmth is an optimization, never correctness: report
        // and continue with the (already merged) suite result.
        event("cache merge failed: " + Err);
      }
    }
  }

  R.Ok = true;
  return R;
}
