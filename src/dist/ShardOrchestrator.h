//===- dist/ShardOrchestrator.h - Crash-tolerant sharded suites --*- C++ -*-===//
///
/// \file
/// Drives one suite as N independent shards — each a SuiteRunner over
/// the programs suiteShardOf() assigns to it, checkpointing to its own
/// journal — then reassembles one SuiteResult that is bit-identical to
/// the single-process run for any shard count. Crash tolerance comes
/// from composing two existing contracts:
///
///   - every shard journals per-program (runtime/SuiteJournal), so a
///     killed, crashed or hung shard attempt loses at most its
///     in-flight programs, and
///   - a re-spawned attempt resumes from that same journal, so retries
///     re-execute only what the dead attempt had not finished.
///
/// The orchestrator spawns shards through a ShardExecutor (the
/// subprocess executor below in production; tests substitute an
/// in-process one to script crashes), enforces a per-shard deadline
/// (hung shards are killed and retried like crashed ones), and retries
/// each shard up to a bounded attempt count with deterministic
/// backoff (BackoffBaseMs << (attempt-1) — no randomness, and no wall
/// clock reading ever reaches a result).
///
/// Reassembly is resume-based, not re-reduction: the shard journals —
/// which all share the FULL program list's fingerprint — are unioned
/// and fed through SuiteRunner's ResumeFrom path, so the merged
/// SuiteResult takes the exact code path (and byte layout) of an
/// uninterrupted run. "Bit-identical" means every deterministic field;
/// the usual carve-outs apply exactly as runtime/SuiteJournal.h
/// documents them — SuiteFailure::StageWallMs is wall time from the
/// run that recorded it, and the scheduler-effort / cache-
/// effectiveness counters (ScheduleHits, ScheduleMisses, ...) reflect
/// the session that computed each record, since cross-program cache
/// warmth depends on which programs shared that session. A coverage hole (a program no shard journaled)
/// is an error before that run starts; silently recomputing it locally
/// would mask the scheduling bug that dropped it.
///
/// Shards may also write side-car persistent cache snapshots
/// (runtime/CachePersist); the orchestrator merges them record-level
/// last-wins into one warm-start snapshot for the next run.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_DIST_SHARDORCHESTRATOR_H
#define HCVLIW_DIST_SHARDORCHESTRATOR_H

#include "runtime/SuiteRunner.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hcvliw {
namespace dist {

/// Everything one shard attempt needs to know.
struct ShardSpec {
  unsigned Index = 0;
  unsigned Count = 1;
  unsigned Attempt = 1;    ///< 1-based attempt number
  std::string JournalPath; ///< shard journal (persists across attempts)
  std::string CachePath;   ///< side-car cache snapshot ("" = none)
  std::string LogPath;     ///< child stdout/stderr capture ("" = none)
};

/// How one shard attempt is executed. The orchestrator only observes
/// the Outcome plus the shard's journal; HOW the shard runs (another
/// process, an in-process test double, a remote box) is this
/// interface's business.
class ShardExecutor {
public:
  struct Outcome {
    bool Spawned = false;  ///< the attempt started at all
    bool Exited0 = false;  ///< clean exit (completeness still verified
                           ///< against the journal, not trusted)
    bool TimedOut = false; ///< killed at the deadline
    std::string Detail;    ///< diagnostic for logs / reports
  };
  virtual ~ShardExecutor();
  /// Runs one shard attempt to completion, crash, or \p DeadlineMs
  /// (0 = no deadline). Must not throw for attempt-level failures —
  /// those are Outcomes; throwing is reserved for executor misuse.
  virtual Outcome runShard(const ShardSpec &Spec, double DeadlineMs) = 0;
};

/// fork/exec executor: runs the command \p CommandFor builds (argv[0]
/// is resolved via PATH), redirects the child's stdout+stderr to
/// Spec.LogPath, polls nonblockingly, and SIGKILLs at the deadline.
class SubprocessShardExecutor : public ShardExecutor {
  std::function<std::vector<std::string>(const ShardSpec &)> Cmd;

public:
  explicit SubprocessShardExecutor(
      std::function<std::vector<std::string>(const ShardSpec &)> CommandFor)
      : Cmd(std::move(CommandFor)) {}
  Outcome runShard(const ShardSpec &Spec, double DeadlineMs) override;
};

struct OrchestratorOptions {
  unsigned Shards = 2;
  /// Attempts per shard before giving up (>= 1).
  unsigned MaxAttempts = 3;
  /// Kill-and-retry deadline per attempt, ms (0 = none).
  double ShardDeadlineMs = 0;
  /// Backoff before retry K is BackoffBaseMs << (K-2) ms — exact,
  /// deterministic, no jitter (shards are local processes; thundering
  /// herds are not a concern, replayability is).
  uint64_t BackoffBaseMs = 25;
  /// Directory for shard journals, side-car caches and logs.
  std::string WorkDir = ".";
  /// Also have shards write side-car cache snapshots and merge them
  /// into mergedCachePath(WorkDir) after the run.
  bool MergeCaches = false;
  /// Orchestration chatter (spawn/retry/kill/merge events), serialized.
  /// Never part of any result.
  std::function<void(const std::string &)> OnEvent;
};

/// What happened to one shard across its attempts.
struct ShardReport {
  unsigned Attempts = 0;
  bool Ok = false;       ///< journal complete for the shard's partition
  bool TimedOut = false; ///< any attempt hit the deadline
  std::string Detail;    ///< last attempt's diagnostic
};

struct OrchestratorResult {
  bool Ok = false;    ///< all shards complete and the merge succeeded
  std::string Error;  ///< filled when !Ok
  SuiteResult Result; ///< valid when Ok; bit-identical to single-process
  std::vector<ShardReport> Shards;
  std::string MergedCachePath;     ///< "" unless MergeCaches succeeded
  uint64_t CacheCorruptFrames = 0; ///< quarantined during cache merge
};

/// Backoff before attempt \p Attempt (2-based; attempt 1 never waits):
/// BaseMs << (Attempt - 2), capped at 30 s.
uint64_t shardBackoffMs(uint64_t BaseMs, unsigned Attempt);

/// Canonical side-car paths under an orchestrator work directory.
std::string shardJournalPath(const std::string &WorkDir, unsigned Index);
std::string shardCachePath(const std::string &WorkDir, unsigned Index);
std::string shardLogPath(const std::string &WorkDir, unsigned Index);
std::string mergedCachePath(const std::string &WorkDir);

class ShardOrchestrator {
  Session &S;
  ShardExecutor &Exec;

public:
  ShardOrchestrator(Session &Sess, ShardExecutor &E) : S(Sess), Exec(E) {}

  /// Runs \p Programs as Opts.Shards shards and reassembles the merged
  /// SuiteResult (see file header). Attempt-level failures retry;
  /// exhausted retries, journal skew and coverage holes surface as
  /// Ok = false with the reports filled — never an exception, so the
  /// caller always sees which shard died and why.
  OrchestratorResult run(const std::vector<BenchmarkProgram> &Programs,
                         const OrchestratorOptions &Opts);
};

} // namespace dist
} // namespace hcvliw

#endif // HCVLIW_DIST_SHARDORCHESTRATOR_H
