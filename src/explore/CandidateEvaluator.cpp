//===- explore/CandidateEvaluator.cpp - One-candidate estimation ------------===//

#include "explore/CandidateEvaluator.h"

#include "configsel/TimingEstimator.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

CandidateEvaluator::CandidateEvaluator(const ProgramProfile &P,
                                       const MachineDescription &M,
                                       const EnergyModel &E,
                                       const TechnologyModel &T,
                                       const FrequencyMenu &Mn,
                                       const DesignSpaceOptions &S,
                                       EvalCache *SharedCache,
                                       CacheCounters *Stats)
    : Profile(P), Machine(M), Energy(E), Tech(T),
      Alpha(T, M.refFrequency().toDouble(), M.RefVdd, M.RefVth), Menu(Mn),
      Space(S), Cache(SharedCache), Counters(Stats) {}

namespace {

/// Greedy per-class voltage choice: the Vdd of \p Grid minimizing
/// Dynamic * delta(Vdd) + LeakPerNs * TexecNs * sigma(Vdd, Vth(f, Vdd)),
/// with Vth derived from the alpha-power law. std::nullopt when no grid
/// voltage supports frequency \p FreqGHz.
std::optional<DomainOperatingPoint>
pickVdd(const AlphaPowerModel &Alpha, const MachineDescription &M,
        const TechnologyModel &Tech, const std::vector<double> &Grid,
        double FreqGHz, const Rational &PeriodNs, double Dynamic,
        double LeakPerNs, double TexecNs, double *CostOut) {
  std::optional<DomainOperatingPoint> Best;
  double BestCost = 0;
  for (double Vdd : Grid) {
    auto Vth = Alpha.vthForFrequency(FreqGHz, Vdd);
    if (!Vth)
      continue;
    double Delta = dynamicEnergyScale(Vdd, M.RefVdd);
    double Sigma = staticEnergyScale(Vdd, *Vth, M.RefVdd, M.RefVth,
                                     Tech.SubthresholdSlopeV);
    double Cost = Dynamic * Delta + LeakPerNs * TexecNs * Sigma;
    if (!Best || Cost < BestCost) {
      DomainOperatingPoint P;
      P.PeriodNs = PeriodNs;
      P.Vdd = Vdd;
      P.Vth = *Vth;
      Best = P;
      BestCost = Cost;
    }
  }
  if (Best && CostOut)
    *CostOut = BestCost;
  return Best;
}

} // namespace

SelectedDesign CandidateEvaluator::evaluate(const Rational &FastPeriod,
                                            const Rational &SlowPeriod) const {
  SelectedDesign D;
  unsigned NC = Machine.numClusters();
  unsigned NF = std::min(Space.NumFastClusters, NC);

  HeteroConfig C;
  C.Clusters.resize(NC);
  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I].PeriodNs = I < NF ? FastPeriod : SlowPeriod;
  // Cache and ICN run with the fastest cluster (Section 5).
  C.Icn.PeriodNs = FastPeriod;
  C.Cache.PeriodNs = FastPeriod;

  // Timing + activity accumulation over all loops.
  double TexecNs = 0;
  std::vector<double> WIns(NC, 0.0);
  double Comms = 0, Mem = 0;
  for (unsigned LI = 0; LI < Profile.Loops.size(); ++LI) {
    const LoopProfile &LP = Profile.Loops[LI];
    bool WasHit = false;
    LoopTimingEstimate TE =
        Cache ? Cache->loopTiming(LP, FastPeriod, SlowPeriod, NF, &WasHit)
              : estimateLoopTiming(LP, Machine, C, Menu);
    if (Cache && Counters)
      (WasHit ? Counters->Hits : Counters->Misses)
          .fetch_add(1, std::memory_order_relaxed);
    if (!TE.Feasible)
      return D;
    TexecNs += LP.Invocations * TE.TexecNs;
    double Iters = LP.Invocations * static_cast<double>(LP.TripCount);
    for (unsigned Cl = 0; Cl < NC; ++Cl)
      WIns[Cl] += LP.PerIter.WeightedIns * TE.ClusterShare[Cl] * Iters;
    Comms += LP.PerIter.Comms * Iters;
    Mem += LP.PerIter.MemAccesses * Iters;
  }

  // Voltages, greedily per component class.
  double FastF = FastPeriod.reciprocal().toDouble();
  double SlowF = SlowPeriod.reciprocal().toDouble();
  double WFast = 0, WSlow = 0;
  for (unsigned Cl = 0; Cl < NC; ++Cl)
    (Cl < NF ? WFast : WSlow) += WIns[Cl];

  auto Fast = pickVdd(Alpha, Machine, Tech, Space.ClusterVddGrid, FastF,
                      FastPeriod, WFast * Energy.insUnit(),
                      Energy.clusterLeakPerNs() * NF, TexecNs, nullptr);
  auto Slow = pickVdd(Alpha, Machine, Tech, Space.ClusterVddGrid, SlowF,
                      SlowPeriod, WSlow * Energy.insUnit(),
                      Energy.clusterLeakPerNs() * (NC - NF), TexecNs,
                      nullptr);
  auto Icn = pickVdd(Alpha, Machine, Tech, Space.IcnVddGrid, FastF,
                     FastPeriod, Comms * Energy.commUnit(),
                     Energy.icnLeakPerNs(), TexecNs, nullptr);
  auto Cch = pickVdd(Alpha, Machine, Tech, Space.CacheVddGrid, FastF,
                     FastPeriod, Mem * Energy.accessUnit(),
                     Energy.cacheLeakPerNs(), TexecNs, nullptr);
  if (!Fast || !Slow || !Icn || !Cch)
    return D;

  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I] = I < NF ? *Fast : *Slow;
  C.Icn = *Icn;
  C.Cache = *Cch;

  D.Config = C;
  D.Scaling = scalingForConfig(C, Machine, Tech);
  D.EstTexecNs = TexecNs;
  D.EstEnergy = Energy.heteroEnergy(WIns, Comms, Mem, TexecNs, D.Scaling);
  D.EstED2 = computeED2(D.EstEnergy, TexecNs);
  D.Valid = true;
  return D;
}
