//===- explore/CandidateEvaluator.h - One-candidate estimation ---*- C++ -*-===//
///
/// \file
/// Estimates one heterogeneous candidate of the Section 3.3 search:
/// timing over every profiled loop (optionally memoized through an
/// EvalCache), greedy per-component-class supply voltages from the
/// design space's grids, then the Section 3.1 energy and ED2. This is
/// the evaluation the seed's ConfigurationSelector ran inline; it lives
/// here so the serial selector facade and the parallel
/// ExplorationEngine share one bit-identical implementation.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_CANDIDATEEVALUATOR_H
#define HCVLIW_EXPLORE_CANDIDATEEVALUATOR_H

#include "configsel/DesignSpace.h"
#include "configsel/Scaling.h"
#include "explore/EvalCache.h"
#include "mcd/FrequencyMenu.h"
#include "profiling/ProfileData.h"

#include <atomic>

namespace hcvliw {

/// Per-search cache statistics. The EvalCache's own counters are
/// lifetime totals over every concurrent user; a search that wants its
/// exact private hit/miss contribution passes one of these.
struct CacheCounters {
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

class CandidateEvaluator {
  const ProgramProfile &Profile;
  const MachineDescription &Machine;
  const EnergyModel &Energy;
  TechnologyModel Tech;
  AlphaPowerModel Alpha;
  FrequencyMenu Menu;
  const DesignSpaceOptions &Space;
  EvalCache *Cache;        ///< may be null: evaluate timing directly
  CacheCounters *Counters; ///< may be null: no per-search stats

public:
  CandidateEvaluator(const ProgramProfile &P, const MachineDescription &M,
                     const EnergyModel &E, const TechnologyModel &T,
                     const FrequencyMenu &Menu,
                     const DesignSpaceOptions &Space,
                     EvalCache *Cache = nullptr,
                     CacheCounters *Counters = nullptr);

  /// Estimates the candidate with the first NumFastClusters clusters at
  /// \p FastPeriod, the rest at \p SlowPeriod, ICN/cache clocked with
  /// the fast cluster (Section 5); Valid=false when timing is
  /// infeasible or no grid voltage supports a required frequency.
  SelectedDesign evaluate(const Rational &FastPeriod,
                          const Rational &SlowPeriod) const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_CANDIDATEEVALUATOR_H
