//===- explore/ConfigurationSelector.cpp - Section 3.3 search -------------===//

#include "explore/ConfigurationSelector.h"

#include <cassert>

using namespace hcvliw;

ConfigurationSelector::ConfigurationSelector(
    const ProgramProfile &P, const MachineDescription &M,
    const EnergyModel &E, const TechnologyModel &T, const FrequencyMenu &Mn,
    const DesignSpaceOptions &S, EvalCache *Cache, WorkerPool *SessionPool)
    : Profile(P), Machine(M), Energy(E), Tech(T),
      Alpha(T, M.refFrequency().toDouble(), M.RefVdd, M.RefVth), Space(S),
      Engine(P, M, E, T, Mn, S), SharedCache(Cache), Pool(SessionPool) {}

std::vector<SelectedDesign> ConfigurationSelector::rankHeterogeneous() const {
  // The seed's exhaustive serial walk: one worker, frontier bookkeeping
  // skipped (it never affects evaluation or Best); the timing cache is
  // an exact memoization, so results are unchanged.
  ExploreOptions Opts;
  Opts.Threads = 1;
  Opts.ComputeFrontier = false;
  return explore(Opts).rankedByED2();
}

SelectedDesign ConfigurationSelector::selectHeterogeneous() const {
  ExploreOptions Opts;
  Opts.Threads = 1;
  Opts.ComputeFrontier = false;
  return explore(Opts).Best;
}

SelectedDesign ConfigurationSelector::selectOptimumHomogeneous() const {
  SelectedDesign Best;
  for (const Rational &HF : Space.HomogFactors) {
    Rational Period = Machine.RefPeriodNs * HF;
    double Freq = Period.reciprocal().toDouble();
    // Same schedule as the reference: only the cycle time scales T.
    double TexecNs = Profile.TexecRefNs * HF.toDouble();

    for (double Vdd : Space.HomogVddGrid) {
      auto Vth = Alpha.vthForFrequency(Freq, Vdd);
      if (!Vth)
        continue;
      HeteroConfig C;
      DomainOperatingPoint P;
      P.PeriodNs = Period;
      P.Vdd = Vdd;
      P.Vth = *Vth;
      C.Clusters.assign(Machine.numClusters(), P);
      C.Icn = P;
      C.Cache = P;

      HeteroScaling S = scalingForConfig(C, Machine, Tech);
      double E = Energy.homogeneousEnergy(Profile.Totals, TexecNs,
                                          S.Clusters.front(), S.Icn,
                                          S.Cache);
      double ED2 = computeED2(E, TexecNs);
      if (!Best.Valid || ED2 < Best.EstED2) {
        Best.Valid = true;
        Best.Config = C;
        Best.Scaling = S;
        Best.EstTexecNs = TexecNs;
        Best.EstEnergy = E;
        Best.EstED2 = ED2;
      }
    }
  }
  return Best;
}
