//===- explore/ConfigurationSelector.h - Section 3.3 search ----*- C++ -*-===//
///
/// \file
/// The design-space exploration of Section 3.3 / Section 5: choose the
/// frequencies and voltages of every component of the heterogeneous
/// machine that minimize the *estimated* ED2 of a profiled program.
///
/// Heterogeneous candidates (the paper's evaluation space): one fast
/// cluster cycle time in {0.9, 0.95, 1, 1.05, 1.1} x reference, slow
/// clusters at {1, 1.25, 1.33, 1.5} x the fast cycle time, ICN and cache
/// clocked with the fastest cluster, and per-component supply voltages
/// from the ranges clusters 0.7-1.2 V, ICN 0.8-1.1 V, cache 1.0-1.4 V.
/// Threshold voltages follow from the alpha-power law; energy follows
/// the Section 3.1 model; timing the Section 3.2 estimator.
///
/// The baseline is the *optimum homogeneous* design (Section 5.1): one
/// frequency and one supply voltage for the entire processor, chosen by
/// the same models (its schedule is the reference schedule, so only the
/// cycle time scales the execution time).
///
/// The heterogeneous search runs on the ExplorationEngine
/// (src/explore/): this class is the serial facade — its exhaustive
/// walk is the engine's `Threads=1, ComputeFrontier=false` special case — while
/// explore() exposes the parallel, Pareto-pruning search directly.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_CONFIGURATIONSELECTOR_H
#define HCVLIW_EXPLORE_CONFIGURATIONSELECTOR_H

#include "configsel/DesignSpace.h"
#include "configsel/Scaling.h"
#include "configsel/TimingEstimator.h"
#include "explore/ExplorationEngine.h"
#include "mcd/FrequencyMenu.h"
#include "profiling/ProfileData.h"

#include <optional>
#include <vector>

namespace hcvliw {

class WorkerPool;

class ConfigurationSelector {
  const ProgramProfile &Profile;
  const MachineDescription &Machine;
  const EnergyModel &Energy;
  TechnologyModel Tech;
  AlphaPowerModel Alpha;
  DesignSpaceOptions Space;
  ExplorationEngine Engine;  ///< holds the frequency menu
  EvalCache *SharedCache;    ///< session-owned; may be null
  WorkerPool *Pool;          ///< session-owned; may be null

public:
  /// \p SharedCache / \p Pool, when given (the Session substrate), are
  /// threaded through every search this selector runs; results are
  /// bit-identical to the self-contained defaults.
  ConfigurationSelector(const ProgramProfile &P,
                        const MachineDescription &M, const EnergyModel &E,
                        const TechnologyModel &T, const FrequencyMenu &Menu,
                        const DesignSpaceOptions &Space,
                        EvalCache *SharedCache = nullptr,
                        WorkerPool *Pool = nullptr);

  /// The underlying parallel search; callers wanting threads, the
  /// Pareto frontier, or serialized reports use this directly. The
  /// selector's shared cache / pool (if any) fill unset fields of
  /// \p Opts.
  ExplorationResult explore(ExploreOptions Opts) const {
    if (!Opts.SharedCache)
      Opts.SharedCache = SharedCache;
    if (!Opts.Pool)
      Opts.Pool = Pool;
    return Engine.explore(Opts);
  }

  /// Best heterogeneous design by estimated ED2.
  SelectedDesign selectHeterogeneous() const;

  /// All heterogeneous candidates, best first (for the oracle
  /// cross-check ablation).
  std::vector<SelectedDesign> rankHeterogeneous() const;

  /// Best single-(frequency, voltage) homogeneous design (Section 5.1).
  SelectedDesign selectOptimumHomogeneous() const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_CONFIGURATIONSELECTOR_H
