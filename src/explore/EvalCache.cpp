//===- explore/EvalCache.cpp - Memoized loop-timing evaluation --------------===//

#include "explore/EvalCache.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace hcvliw;

EvalCache::EvalCache(const MachineDescription &M, const FrequencyMenu &Mn)
    : Machine(M), Menu(Mn),
      // Continuous and relative menus decide every (II, freq) pair from
      // IT * fmax products only; absolute menus pin real frequencies.
      ScaleInvariant(Mn.frequencies().empty()) {}

size_t EvalCache::size() const {
  size_t N = 0;
  for (const TimingShard &S : TimingShards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    N += S.Entries.size();
  }
  return N;
}

bool EvalCache::compatibleWith(const MachineDescription &M,
                               const FrequencyMenu &Mn) const {
  auto sameMenu = [](const FrequencyMenu &A, const FrequencyMenu &B) {
    return A.isContinuous() == B.isContinuous() &&
           A.frequencies() == B.frequencies() && A.ratios() == B.ratios();
  };
  if (&M != &Machine) {
    // Value equality of the timing-relevant structure (the Isa table is
    // a fixed paper constant and not compared).
    if (M.numClusters() != Machine.numClusters() ||
        M.Buses != Machine.Buses || M.BusLatency != Machine.BusLatency ||
        !(M.RefPeriodNs == Machine.RefPeriodNs))
      return false;
    for (unsigned I = 0; I < M.numClusters(); ++I) {
      const ClusterConfig &A = M.Clusters[I], &B = Machine.Clusters[I];
      if (A.IntFUs != B.IntFUs || A.FpFUs != B.FpFUs ||
          A.MemPorts != B.MemPorts || A.Registers != B.Registers)
        return false;
    }
  }
  return sameMenu(Mn, Menu);
}

EvalCache::CachedTiming EvalCache::compute(const Key &K,
                                           const LoopProfile &LP,
                                           const Rational &FastPeriod,
                                           const Rational &SlowPeriod) const {
  // Under scale invariance, evaluate at a normalized fast period of
  // 1 ns with the slow clusters at the ratio; otherwise at the actual
  // periods (ITNorm is then the actual IT, rescaled by 1).
  Rational NormFast = ScaleInvariant ? Rational(1) : FastPeriod;
  Rational NormSlow =
      ScaleInvariant ? Rational(K.RatioNum, K.RatioDen) : SlowPeriod;

  unsigned NC = Machine.numClusters();
  HeteroConfig C;
  C.Clusters.resize(NC);
  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I].PeriodNs = I < K.NumFast ? NormFast : NormSlow;
  C.Icn.PeriodNs = NormFast;
  C.Cache.PeriodNs = NormFast;

  LoopTimingEstimate E = estimateLoopTiming(LP, Machine, C, Menu);
  CachedTiming T;
  T.Feasible = E.Feasible;
  if (E.Feasible) {
    T.ITNorm = E.ITNs;
    T.ClusterShare = std::move(E.ClusterShare);
  }
  return T;
}

LoopTimingEstimate EvalCache::loopTiming(const LoopProfile &LP,
                                         const Rational &FastPeriod,
                                         const Rational &SlowPeriod,
                                         unsigned NumFast, bool *WasHit) {
  assert(FastPeriod.isPositive() && SlowPeriod.isPositive() &&
         "periods must be positive");

  Rational Ratio = SlowPeriod / FastPeriod;
  Key K;
  K.LoopFP = LP.timingFingerprint();
  // A ratio of 1 makes every cluster (and the ICN and cache) run at the
  // same period whatever NumFast says; canonicalize so homogeneous
  // shapes reached from different NumFast values share one entry.
  K.NumFast = Ratio == Rational(1) ? Machine.numClusters() : NumFast;
  K.RatioNum = Ratio.num();
  K.RatioDen = Ratio.den();
  if (!ScaleInvariant) {
    K.FastNum = FastPeriod.num();
    K.FastDen = FastPeriod.den();
  }

  TimingShard &Shard = TimingShards[shardOf(KeyHash()(K))];
  bool Found = false;
  CachedTiming Computed;
  {
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    auto It = Shard.Entries.find(K);
    if (It != Shard.Entries.end()) {
      Shard.Hits.fetch_add(1, std::memory_order_relaxed);
      if (It->second.Persisted)
        Shard.PersistHits.fetch_add(1, std::memory_order_relaxed);
      Computed = It->second;
      Found = true;
    }
  }
  if (!Found) {
    Shard.Misses.fetch_add(1, std::memory_order_relaxed);
    Computed = compute(K, LP, FastPeriod, SlowPeriod);
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    // First writer wins; concurrent computes of the same key produce
    // identical values, so dropping the duplicate is safe.
    Shard.Entries.emplace(K, Computed);
  }
  if (WasHit)
    *WasHit = Found;

  // Materialize the estimate at the caller's actual periods with the
  // exact expressions estimateLoopTiming uses, so cached and direct
  // evaluation are bit-identical.
  LoopTimingEstimate E;
  E.Feasible = Computed.Feasible;
  if (!E.Feasible)
    return E;

  Rational Scale = ScaleInvariant ? FastPeriod : Rational(1);
  E.ITNs = Computed.ITNorm * Scale;
  // The estimator's slowest *cluster* period: all-slow and all-fast
  // shapes see only one of the two periods.
  Rational SlowestPeriod =
      NumFast == 0 ? SlowPeriod
                   : (NumFast >= Machine.numClusters()
                          ? FastPeriod
                          : Rational::max(FastPeriod, SlowPeriod));
  double RefCycles =
      LP.ItLengthRefNs.toDouble() / Machine.RefPeriodNs.toDouble();
  E.ItLengthNs = RefCycles * SlowestPeriod.toDouble();
  E.TexecNs =
      (static_cast<double>(LP.TripCount) - 1) * E.ITNs.toDouble() +
      E.ItLengthNs;
  E.ClusterShare = Computed.ClusterShare;
  return E;
}

std::optional<SelectedDesign> EvalCache::findSelection(uint64_t SelKey) {
  SelectionShard &Shard = SelectionShards[shardOf(SelKey)];
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  auto It = Shard.Selections.find(SelKey);
  if (It == Shard.Selections.end()) {
    Shard.Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard.Hits.fetch_add(1, std::memory_order_relaxed);
  if (It->second.Persisted)
    Shard.PersistHits.fetch_add(1, std::memory_order_relaxed);
  return It->second.D;
}

void EvalCache::storeSelection(uint64_t SelKey, const SelectedDesign &D) {
  SelectionShard &Shard = SelectionShards[shardOf(SelKey)];
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  Shard.Selections.emplace(SelKey, SelectionEntry{D, /*Persisted=*/false});
}

void EvalCache::exportTimings(
    const std::function<void(const TimingRecord &)> &Fn) const {
  auto lessKey = [](const Key &A, const Key &B) {
    if (A.LoopFP != B.LoopFP)
      return A.LoopFP < B.LoopFP;
    if (A.NumFast != B.NumFast)
      return A.NumFast < B.NumFast;
    if (A.RatioNum != B.RatioNum)
      return A.RatioNum < B.RatioNum;
    if (A.RatioDen != B.RatioDen)
      return A.RatioDen < B.RatioDen;
    if (A.FastNum != B.FastNum)
      return A.FastNum < B.FastNum;
    return A.FastDen < B.FastDen;
  };
  for (const TimingShard &S : TimingShards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    std::vector<Key> Keys;
    Keys.reserve(S.Entries.size());
    for (const auto &KV : S.Entries)
      Keys.push_back(KV.first);
    std::sort(Keys.begin(), Keys.end(), lessKey);
    for (const Key &K : Keys) {
      const CachedTiming &T = S.Entries.find(K)->second;
      TimingRecord R{K.LoopFP,  K.NumFast, K.RatioNum,
                     K.RatioDen, K.FastNum, K.FastDen,
                     T.Feasible, T.ITNorm,  T.ClusterShare};
      Fn(R);
    }
  }
}

bool EvalCache::importTiming(const TimingRecord &R) {
  Key K;
  K.LoopFP = R.LoopFP;
  K.NumFast = R.NumFast;
  K.RatioNum = R.RatioNum;
  K.RatioDen = R.RatioDen;
  K.FastNum = R.FastNum;
  K.FastDen = R.FastDen;
  CachedTiming T{R.Feasible, R.ITNorm, R.ClusterShare, /*Persisted=*/true};
  TimingShard &Shard = TimingShards[shardOf(KeyHash()(K))];
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  return Shard.Entries.emplace(K, std::move(T)).second;
}

void EvalCache::exportSelections(
    const std::function<void(uint64_t, const SelectedDesign &)> &Fn) const {
  for (const SelectionShard &S : SelectionShards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    std::vector<uint64_t> Keys;
    Keys.reserve(S.Selections.size());
    for (const auto &KV : S.Selections)
      Keys.push_back(KV.first);
    std::sort(Keys.begin(), Keys.end());
    for (uint64_t K : Keys)
      Fn(K, S.Selections.find(K)->second.D);
  }
}

bool EvalCache::importSelection(uint64_t SelKey, const SelectedDesign &D) {
  SelectionShard &Shard = SelectionShards[shardOf(SelKey)];
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  return Shard.Selections
      .emplace(SelKey, SelectionEntry{D, /*Persisted=*/true})
      .second;
}
