//===- explore/EvalCache.cpp - Memoized loop-timing evaluation --------------===//

#include "explore/EvalCache.h"

#include <cassert>

using namespace hcvliw;

EvalCache::EvalCache(const ProgramProfile &P, const MachineDescription &M,
                     const FrequencyMenu &Menu)
    : Profile(P), Machine(M), Menu(Menu),
      // Continuous and relative menus decide every (II, freq) pair from
      // IT * fmax products only; absolute menus pin real frequencies.
      ScaleInvariant(Menu.frequencies().empty()) {}

size_t EvalCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

EvalCache::CachedTiming EvalCache::compute(const Key &K,
                                           const Rational &FastPeriod,
                                           const Rational &SlowPeriod) const {
  // Under scale invariance, evaluate at a normalized fast period of
  // 1 ns with the slow clusters at the ratio; otherwise at the actual
  // periods (ITNorm is then the actual IT, rescaled by 1).
  Rational NormFast = ScaleInvariant ? Rational(1) : FastPeriod;
  Rational NormSlow =
      ScaleInvariant ? Rational(K.RatioNum, K.RatioDen) : SlowPeriod;

  const LoopProfile &LP = Profile.Loops[K.LoopIdx];
  unsigned NC = Machine.numClusters();
  HeteroConfig C;
  C.Clusters.resize(NC);
  for (unsigned I = 0; I < NC; ++I)
    C.Clusters[I].PeriodNs = I < K.NumFast ? NormFast : NormSlow;
  C.Icn.PeriodNs = NormFast;
  C.Cache.PeriodNs = NormFast;

  LoopTimingEstimate E = estimateLoopTiming(LP, Machine, C, Menu);
  CachedTiming T;
  T.Feasible = E.Feasible;
  if (E.Feasible) {
    T.ITNorm = E.ITNs;
    T.ClusterShare = std::move(E.ClusterShare);
  }
  return T;
}

LoopTimingEstimate EvalCache::loopTiming(unsigned LoopIdx,
                                         const Rational &FastPeriod,
                                         const Rational &SlowPeriod,
                                         unsigned NumFast) {
  assert(LoopIdx < Profile.Loops.size() && "loop index out of range");
  assert(FastPeriod.isPositive() && SlowPeriod.isPositive() &&
         "periods must be positive");

  Rational Ratio = SlowPeriod / FastPeriod;
  Key K;
  K.LoopIdx = LoopIdx;
  K.NumFast = NumFast;
  K.RatioNum = Ratio.num();
  K.RatioDen = Ratio.den();
  if (!ScaleInvariant) {
    K.FastNum = FastPeriod.num();
    K.FastDen = FastPeriod.den();
  }

  const CachedTiming *Found = nullptr;
  CachedTiming Computed;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(K);
    if (It != Entries.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      Computed = It->second;
      Found = &Computed;
    }
  }
  if (!Found) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    Computed = compute(K, FastPeriod, SlowPeriod);
    std::lock_guard<std::mutex> Lock(Mutex);
    // First writer wins; concurrent computes of the same key produce
    // identical values, so dropping the duplicate is safe.
    Entries.emplace(K, Computed);
  }

  // Materialize the estimate at the caller's actual periods with the
  // exact expressions estimateLoopTiming uses, so cached and direct
  // evaluation are bit-identical.
  const LoopProfile &LP = Profile.Loops[LoopIdx];
  LoopTimingEstimate E;
  E.Feasible = Computed.Feasible;
  if (!E.Feasible)
    return E;

  Rational Scale = ScaleInvariant ? FastPeriod : Rational(1);
  E.ITNs = Computed.ITNorm * Scale;
  // The estimator's slowest *cluster* period: all-slow and all-fast
  // shapes see only one of the two periods.
  Rational SlowestPeriod =
      NumFast == 0 ? SlowPeriod
                   : (NumFast >= Machine.numClusters()
                          ? FastPeriod
                          : Rational::max(FastPeriod, SlowPeriod));
  double RefCycles =
      LP.ItLengthRefNs.toDouble() / Machine.RefPeriodNs.toDouble();
  E.ItLengthNs = RefCycles * SlowestPeriod.toDouble();
  E.TexecNs =
      (static_cast<double>(LP.TripCount) - 1) * E.ITNs.toDouble() +
      E.ItLengthNs;
  E.ClusterShare = Computed.ClusterShare;
  return E;
}
