//===- explore/EvalCache.h - Memoized loop-timing evaluation -----*- C++ -*-===//
///
/// \file
/// Memoizes the Section 3.2 timing estimate per (loop structure,
/// frequency shape). For continuous and relative frequency menus the
/// estimator is exactly scale-invariant in Rational arithmetic:
/// multiplying every domain period by a factor s multiplies the IT by s
/// and leaves every per-domain II (and hence feasibility, packing, and
/// the cluster capacity shares) unchanged, because all menu decisions
/// depend only on the products IT * fmax. The cache therefore keys
/// those menus on the slow/fast *ratio* alone, evaluates once at a
/// normalized fast period of 1 ns, and rescales exactly — candidates
/// sharing a ratio never re-run the estimator. Absolute menus pin
/// actual frequencies, so the key falls back to the exact (fast, slow)
/// period pair.
///
/// Loops are identified by LoopProfile::timingFingerprint(), not by
/// their index in some profile, so one cache instance is shareable
/// across programs and across explore() calls: structurally identical
/// loops in different programs (common in the synthetic SPECfp suite)
/// hit the same entries. A Session owns one such cache per
/// (machine, menu) pair and threads it through every selection.
///
/// The cache also carries a selection memo: whole SelectedDesigns
/// keyed by a caller-computed hash of the full selection inputs, so a
/// Session can skip re-running a selection it has already performed
/// (repeated runProgram calls, oracle re-ranking, series sweeps).
///
/// Rescaling is bit-identical to direct evaluation: the IT is an exact
/// Rational product, and the derived doubles (iteration length,
/// execution time) are recomputed from the same expressions
/// estimateLoopTiming uses.
///
/// Storage is striped (sharded by key hash, per-shard mutex + exact
/// per-shard counters summed at report time), so high-thread grids do
/// not serialize on one lock.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_EVALCACHE_H
#define HCVLIW_EXPLORE_EVALCACHE_H

#include "configsel/DesignSpace.h"
#include "configsel/TimingEstimator.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace hcvliw {

class EvalCache {
  struct Key {
    uint64_t LoopFP = 0;                ///< LoopProfile::timingFingerprint()
    uint32_t NumFast = 0;
    int64_t RatioNum = 1, RatioDen = 1; ///< slow/fast period ratio
    int64_t FastNum = 1, FastDen = 1;   ///< 1/1 under scale invariance

    bool operator==(const Key &O) const {
      return LoopFP == O.LoopFP && NumFast == O.NumFast &&
             RatioNum == O.RatioNum && RatioDen == O.RatioDen &&
             FastNum == O.FastNum && FastDen == O.FastDen;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = 0xcbf29ce484222325ull;
      auto mix = [&H](uint64_t V) {
        H ^= V;
        H *= 0x100000001b3ull;
      };
      mix(K.LoopFP);
      mix(K.NumFast);
      mix(static_cast<uint64_t>(K.RatioNum));
      mix(static_cast<uint64_t>(K.RatioDen));
      mix(static_cast<uint64_t>(K.FastNum));
      mix(static_cast<uint64_t>(K.FastDen));
      return static_cast<size_t>(H);
    }
  };

  /// Scale-free residue of one estimate; the doubles of the full
  /// LoopTimingEstimate are re-derived at the caller's actual periods.
  struct CachedTiming {
    bool Feasible = false;
    Rational ITNorm; ///< IT at the key's normalized fast period
    std::vector<double> ClusterShare;
    /// Imported from a persistent snapshot (runtime/CachePersist):
    /// hits it serves count toward persistHits().
    bool Persisted = false;
  };

  const MachineDescription &Machine;
  FrequencyMenu Menu;
  bool ScaleInvariant;

  /// Striped storage: timing entries and selection memos live in shards
  /// selected by key hash, each with its own mutex and hit/miss
  /// counters, so a high-thread exploration grid stops serializing on
  /// one lock. The public counters sum the per-shard atomics at report
  /// time and stay exact.
  static constexpr unsigned NumShards = 16;

  struct alignas(64) TimingShard {
    mutable std::mutex Mutex;
    std::unordered_map<Key, CachedTiming, KeyHash> Entries;
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
    std::atomic<uint64_t> PersistHits{0};
  };
  /// Selection memo entry; Persisted as in CachedTiming.
  struct SelectionEntry {
    SelectedDesign D;
    bool Persisted = false;
  };
  struct alignas(64) SelectionShard {
    mutable std::mutex Mutex;
    std::unordered_map<uint64_t, SelectionEntry> Selections;
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
    std::atomic<uint64_t> PersistHits{0};
  };

  mutable TimingShard TimingShards[NumShards];
  mutable SelectionShard SelectionShards[NumShards];

  /// Fold the hash's high bits so shard choice stays independent of the
  /// maps' bucket choice (which consumes the low bits).
  static unsigned shardOf(uint64_t H) {
    return static_cast<unsigned>((H >> 59) ^ (H >> 13)) % NumShards;
  }

  template <typename ShardT, unsigned N>
  static uint64_t sumShards(ShardT (&Shards)[N],
                            std::atomic<uint64_t> ShardT::*Counter) {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += (S.*Counter).load(std::memory_order_relaxed);
    return Total;
  }

  CachedTiming compute(const Key &K, const LoopProfile &LP,
                       const Rational &FastPeriod,
                       const Rational &SlowPeriod) const;

public:
  /// A cache is bound to one machine and one frequency menu; every user
  /// must evaluate against an equivalent pair (checked by
  /// compatibleWith / asserted by the engine).
  EvalCache(const MachineDescription &M, const FrequencyMenu &Menu);

  /// Timing of \p LP with the first \p NumFast clusters at
  /// \p FastPeriod, the rest at \p SlowPeriod, ICN and cache at
  /// \p FastPeriod (the paper's candidate shape). Memoized; safe to
  /// call from multiple threads (duplicate concurrent computes are
  /// allowed and produce identical values, so insertion is
  /// first-writer-wins). \p WasHit (when non-null) reports whether
  /// this call was served from the cache, so concurrent users can
  /// keep exact private statistics.
  LoopTimingEstimate loopTiming(const LoopProfile &LP,
                                const Rational &FastPeriod,
                                const Rational &SlowPeriod,
                                unsigned NumFast, bool *WasHit = nullptr);

  /// True when the menu allows ratio-keyed memoization.
  bool scaleInvariant() const { return ScaleInvariant; }

  const MachineDescription &machine() const { return Machine; }
  const FrequencyMenu &menu() const { return Menu; }

  /// Whether this cache may serve evaluations against (\p M, \p Mn):
  /// the timing-relevant machine structure and the menu must be equal
  /// (same values, not same objects).
  bool compatibleWith(const MachineDescription &M,
                      const FrequencyMenu &Mn) const;

  /// Selection memo: a whole SelectedDesign keyed by the caller's hash
  /// of the complete selection inputs (profile fingerprint, design
  /// space, technology, het/hom kind). Thread-safe,
  /// first-writer-wins.
  std::optional<SelectedDesign> findSelection(uint64_t SelKey);
  void storeSelection(uint64_t SelKey, const SelectedDesign &D);

  /// One timing entry in persistable form — the private Key fields plus
  /// the scale-free cached value (runtime/CachePersist round-trips
  /// these bit-exactly).
  struct TimingRecord {
    uint64_t LoopFP = 0;
    uint32_t NumFast = 0;
    int64_t RatioNum = 1, RatioDen = 1;
    int64_t FastNum = 1, FastDen = 1;
    bool Feasible = false;
    Rational ITNorm;
    std::vector<double> ClusterShare;
  };

  /// Invokes \p Fn for every timing entry in deterministic order
  /// (shards in index order, keys sorted within a shard). Caller must
  /// be quiescent with respect to loopTiming().
  void exportTimings(const std::function<void(const TimingRecord &)> &Fn)
      const;
  /// Inserts a timing entry loaded from a persistent snapshot
  /// (first-writer-wins, flagged persisted). False when already present.
  bool importTiming(const TimingRecord &R);

  /// Selection-memo analogues of exportTimings / importTiming.
  void exportSelections(
      const std::function<void(uint64_t, const SelectedDesign &)> &Fn) const;
  bool importSelection(uint64_t SelKey, const SelectedDesign &D);

  /// Hits served by imported (persisted) timing + selection entries —
  /// the warm tier's contribution (subset of hits() + selectionHits()).
  uint64_t persistHits() const {
    return sumShards(TimingShards, &TimingShard::PersistHits) +
           sumShards(SelectionShards, &SelectionShard::PersistHits);
  }

  uint64_t hits() const {
    return sumShards(TimingShards, &TimingShard::Hits);
  }
  uint64_t misses() const {
    return sumShards(TimingShards, &TimingShard::Misses);
  }
  uint64_t selectionHits() const {
    return sumShards(SelectionShards, &SelectionShard::Hits);
  }
  uint64_t selectionMisses() const {
    return sumShards(SelectionShards, &SelectionShard::Misses);
  }
  size_t size() const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_EVALCACHE_H
