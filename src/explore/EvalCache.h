//===- explore/EvalCache.h - Memoized loop-timing evaluation -----*- C++ -*-===//
///
/// \file
/// Memoizes the Section 3.2 timing estimate per (loop, frequency shape).
/// For continuous and relative frequency menus the estimator is exactly
/// scale-invariant in Rational arithmetic: multiplying every domain
/// period by a factor s multiplies the IT by s and leaves every per-
/// domain II (and hence feasibility, packing, and the cluster capacity
/// shares) unchanged, because all menu decisions depend only on the
/// products IT * fmax. The cache therefore keys those menus on the
/// slow/fast *ratio* alone, evaluates once at a normalized fast period
/// of 1 ns, and rescales exactly — candidates sharing a ratio never
/// re-run the estimator. Absolute menus pin actual frequencies, so the
/// key falls back to the exact (fast, slow) period pair.
///
/// Rescaling is bit-identical to direct evaluation: the IT is an exact
/// Rational product, and the derived doubles (iteration length,
/// execution time) are recomputed from the same expressions
/// estimateLoopTiming uses.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_EVALCACHE_H
#define HCVLIW_EXPLORE_EVALCACHE_H

#include "configsel/TimingEstimator.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace hcvliw {

class EvalCache {
  struct Key {
    uint32_t LoopIdx = 0;
    uint32_t NumFast = 0;
    int64_t RatioNum = 1, RatioDen = 1; ///< slow/fast period ratio
    int64_t FastNum = 1, FastDen = 1;   ///< 1/1 under scale invariance

    bool operator==(const Key &O) const {
      return LoopIdx == O.LoopIdx && NumFast == O.NumFast &&
             RatioNum == O.RatioNum && RatioDen == O.RatioDen &&
             FastNum == O.FastNum && FastDen == O.FastDen;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = 0xcbf29ce484222325ull;
      auto mix = [&H](uint64_t V) {
        H ^= V;
        H *= 0x100000001b3ull;
      };
      mix(K.LoopIdx);
      mix(K.NumFast);
      mix(static_cast<uint64_t>(K.RatioNum));
      mix(static_cast<uint64_t>(K.RatioDen));
      mix(static_cast<uint64_t>(K.FastNum));
      mix(static_cast<uint64_t>(K.FastDen));
      return static_cast<size_t>(H);
    }
  };

  /// Scale-free residue of one estimate; the doubles of the full
  /// LoopTimingEstimate are re-derived at the caller's actual periods.
  struct CachedTiming {
    bool Feasible = false;
    Rational ITNorm; ///< IT at the key's normalized fast period
    std::vector<double> ClusterShare;
  };

  const ProgramProfile &Profile;
  const MachineDescription &Machine;
  FrequencyMenu Menu;
  bool ScaleInvariant;

  mutable std::mutex Mutex;
  std::unordered_map<Key, CachedTiming, KeyHash> Entries;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};

  CachedTiming compute(const Key &K, const Rational &FastPeriod,
                       const Rational &SlowPeriod) const;

public:
  EvalCache(const ProgramProfile &P, const MachineDescription &M,
            const FrequencyMenu &Menu);

  /// Timing of Profile.Loops[LoopIdx] with the first \p NumFast clusters
  /// at \p FastPeriod, the rest at \p SlowPeriod, ICN and cache at
  /// \p FastPeriod (the paper's candidate shape). Memoized; safe to call
  /// from multiple threads (duplicate concurrent computes are allowed
  /// and produce identical values, so insertion is first-writer-wins).
  LoopTimingEstimate loopTiming(unsigned LoopIdx, const Rational &FastPeriod,
                                const Rational &SlowPeriod, unsigned NumFast);

  /// True when the menu allows ratio-keyed memoization.
  bool scaleInvariant() const { return ScaleInvariant; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_EVALCACHE_H
