//===- explore/ExplorationEngine.cpp - Parallel design-space search ---------===//

#include "explore/ExplorationEngine.h"

#include "obs/Stopwatch.h"
#include "runtime/WorkerPool.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <thread>

using namespace hcvliw;

std::vector<SelectedDesign> ExplorationResult::rankedByED2() const {
  std::vector<SelectedDesign> Ranked;
  Ranked.reserve(Candidates.size());
  for (const ExploreCandidate &C : Candidates)
    if (C.Design.Valid)
      Ranked.push_back(C.Design);
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const SelectedDesign &A, const SelectedDesign &B) {
                     return A.EstED2 < B.EstED2;
                   });
  return Ranked;
}

ExplorationEngine::ExplorationEngine(const ProgramProfile &P,
                                     const MachineDescription &M,
                                     const EnergyModel &E,
                                     const TechnologyModel &T,
                                     const FrequencyMenu &Mn,
                                     const DesignSpaceOptions &Sp)
    : Profile(P), Machine(M), Energy(E), Tech(T), Menu(Mn), Space(Sp) {}

std::vector<ExploreCandidate> ExplorationEngine::enumerate() const {
  std::vector<ExploreCandidate> Grid;
  Grid.reserve(Space.numHeteroCandidates());
  for (const Rational &FF : Space.FastFactors) {
    Rational FastPeriod = Machine.RefPeriodNs * FF;
    for (const Rational &SR : Space.SlowRatios) {
      ExploreCandidate C;
      C.FastFactor = FF;
      C.SlowRatio = SR;
      C.FastPeriodNs = FastPeriod;
      C.SlowPeriodNs = FastPeriod * SR;
      Grid.push_back(std::move(C));
    }
  }
  return Grid;
}

ExplorationResult
ExplorationEngine::explore(const ExploreOptions &Opts) const {
  obs::Stopwatch SW;

  ExplorationResult R;
  R.Candidates = enumerate();
  R.Stats.Enumerated = R.Candidates.size();

  // Resolve the pool: the caller's long-lived one (Session substrate)
  // or a per-call pool of Opts.Threads.
  std::unique_ptr<WorkerPool> OwnPool;
  WorkerPool *Pool = Opts.Pool;
  if (!Pool) {
    unsigned Threads = Opts.Threads;
    if (Threads == 0)
      Threads = std::max(1u, std::thread::hardware_concurrency());
    Threads = static_cast<unsigned>(
        std::min<size_t>(Threads, std::max<size_t>(1, R.Candidates.size())));
    OwnPool = std::make_unique<WorkerPool>(Threads);
    Pool = OwnPool.get();
  }
  R.Stats.ThreadsUsed = Pool->threads();

  // Resolve the cache: the caller's shared one (hits persist across
  // explore() calls and across programs) or a private per-call one.
  std::unique_ptr<EvalCache> OwnCache;
  EvalCache *Cache = nullptr;
  if (Opts.UseCache) {
    if (Opts.SharedCache) {
      assert(Opts.SharedCache->compatibleWith(Machine, Menu) &&
             "shared EvalCache bound to a different machine or menu");
      Cache = Opts.SharedCache;
    } else {
      OwnCache = std::make_unique<EvalCache>(Machine, Menu);
      Cache = OwnCache.get();
    }
  }
  // Private hit/miss counters: the shared cache's own totals cover
  // every concurrent user, so this explore's stats are counted at the
  // call sites instead.
  CacheCounters Counters;
  CandidateEvaluator Eval(Profile, Machine, Energy, Tech, Menu, Space,
                          Cache, &Counters);

  // Fan out: workers claim enumeration slots and write results into
  // their own slot; no result ordering depends on thread scheduling.
  Pool->parallelFor(R.Candidates.size(), [&](size_t I) {
    ExploreCandidate &C = R.Candidates[I];
    C.Design = Eval.evaluate(C.FastPeriodNs, C.SlowPeriodNs);
  });

  R.Stats.CacheHits = Counters.Hits.load(std::memory_order_relaxed);
  R.Stats.CacheMisses = Counters.Misses.load(std::memory_order_relaxed);

  // Serial reductions over the enumeration order: the ED2 argmin (first
  // wins on exact ties, matching the serial search) and the frontier.
  for (const ExploreCandidate &C : R.Candidates) {
    if (!C.Design.Valid) {
      ++R.Stats.Infeasible;
      continue;
    }
    ++R.Stats.Feasible;
    if (!R.Best.Valid || C.Design.EstED2 < R.Best.EstED2)
      R.Best = C.Design;
  }

  if (Opts.ComputeFrontier) {
    ParetoFrontier Frontier;
    for (size_t I = 0; I < R.Candidates.size(); ++I) {
      const SelectedDesign &D = R.Candidates[I].Design;
      if (!D.Valid)
        continue;
      ParetoPoint P;
      P.TexecNs = D.EstTexecNs;
      P.Energy = D.EstEnergy;
      P.ED2 = D.EstED2;
      P.Index = I;
      Frontier.insert(P);
    }
    for (const ParetoPoint &P : Frontier.sortedByTexec()) {
      R.Candidates[P.Index].OnFrontier = true;
      R.Frontier.push_back(P.Index);
    }
    R.Stats.FrontierSize = R.Frontier.size();
  }

  R.Stats.WallMs = SW.elapsedMs();
  return R;
}
