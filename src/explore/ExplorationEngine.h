//===- explore/ExplorationEngine.h - Parallel design-space search -*- C++ -*-===//
///
/// \file
/// The parallel design-space exploration engine: enumerates the
/// heterogeneous candidates of a DesignSpaceOptions grid (fast-factor
/// major, slow-ratio minor — the seed's serial order), fans their
/// evaluation out across a worker pool, memoizes loop timing through an
/// EvalCache, and reduces the results to the ED2 argmin plus the Pareto
/// frontier over (Texec, Energy, ED2).
///
/// Determinism: each candidate's result is written to its enumeration
/// slot, every per-candidate computation is a pure function of the
/// candidate, and all reductions (best design, frontier) run serially
/// over the slots afterwards — so the selected design and the frontier
/// are identical for any thread count, and `Threads=1, ComputeFrontier=false` is
/// exactly the seed's exhaustive serial search.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_EXPLORATIONENGINE_H
#define HCVLIW_EXPLORE_EXPLORATIONENGINE_H

#include "configsel/DesignSpace.h"
#include "explore/CandidateEvaluator.h"
#include "explore/EvalCache.h"
#include "explore/ParetoFrontier.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class WorkerPool;

struct ExploreOptions {
  /// Worker threads when no Pool is given; 0 means
  /// std::thread::hardware_concurrency(). Ignored when Pool is set.
  unsigned Threads = 1;
  /// Compute the Pareto frontier and mark dominated candidates. Every
  /// candidate is fully evaluated either way — this is reporting
  /// bookkeeping, not a search-space reduction, so Best never depends
  /// on it.
  bool ComputeFrontier = true;
  /// Memoize loop timing across candidates sharing a frequency shape.
  bool UseCache = true;
  /// Evaluate on this long-lived pool instead of a per-call one (the
  /// Session substrate: nested under a SuiteRunner's program fan-out,
  /// exploration shares the suite's thread budget).
  WorkerPool *Pool = nullptr;
  /// Memoize loop timing in this long-lived cache instead of a
  /// per-call one. Must be compatibleWith(engine machine, engine menu);
  /// ignored when UseCache is false. Results are bit-identical to a
  /// private cache — entries are pure functions of (loop structure,
  /// frequency shape).
  EvalCache *SharedCache = nullptr;
};

/// One enumerated grid point and (after explore()) its evaluation.
struct ExploreCandidate {
  Rational FastFactor;   ///< fast period / reference period
  Rational SlowRatio;    ///< slow period / fast period
  Rational FastPeriodNs;
  Rational SlowPeriodNs;
  SelectedDesign Design; ///< Valid=false when infeasible
  bool OnFrontier = false;
};

struct ExplorationStats {
  size_t Enumerated = 0; ///< all enumerated candidates are evaluated
  size_t Feasible = 0;
  size_t Infeasible = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  size_t FrontierSize = 0;
  unsigned ThreadsUsed = 1;
  double WallMs = 0;
};

struct ExplorationResult {
  /// All grid points in enumeration order (fast-factor major).
  std::vector<ExploreCandidate> Candidates;
  /// Indices into Candidates, ascending estimated execution time.
  std::vector<size_t> Frontier;
  /// The ED2 argmin (the paper's selected design); Valid=false when the
  /// whole grid is infeasible.
  SelectedDesign Best;
  ExplorationStats Stats;

  /// Valid candidates ordered by ascending estimated ED2 (stable in
  /// enumeration order), the seed's rankHeterogeneous() contract.
  std::vector<SelectedDesign> rankedByED2() const;
};

class ExplorationEngine {
  const ProgramProfile &Profile;
  const MachineDescription &Machine;
  const EnergyModel &Energy;
  TechnologyModel Tech;
  FrequencyMenu Menu;
  DesignSpaceOptions Space;

public:
  ExplorationEngine(const ProgramProfile &P, const MachineDescription &M,
                    const EnergyModel &E, const TechnologyModel &T,
                    const FrequencyMenu &Menu,
                    const DesignSpaceOptions &Space);

  const DesignSpaceOptions &space() const { return Space; }

  /// The candidate grid in enumeration order, unevaluated.
  std::vector<ExploreCandidate> enumerate() const;

  /// Full search under \p Opts.
  ExplorationResult explore(const ExploreOptions &Opts = ExploreOptions()) const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_EXPLORATIONENGINE_H
