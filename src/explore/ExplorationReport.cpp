//===- explore/ExplorationReport.cpp - Frontier serialization ---------------===//

#include "explore/ExplorationReport.h"

#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace hcvliw;

namespace {

/// Clusters are laid out fast-first by the engine; the first and last
/// cluster carry the fast and slow operating points.
const DomainOperatingPoint &fastCluster(const SelectedDesign &D) {
  return D.Config.Clusters.front();
}
const DomainOperatingPoint &slowCluster(const SelectedDesign &D) {
  return D.Config.Clusters.back();
}

std::string candidateJson(const ExploreCandidate &C, size_t Index) {
  std::string S = formatString(
      "    {\"index\": %zu, \"fast_factor\": \"%s\", \"slow_ratio\": "
      "\"%s\", \"fast_period_ns\": \"%s\", \"slow_period_ns\": \"%s\", "
      "\"valid\": %s, \"on_frontier\": %s",
      Index, C.FastFactor.str().c_str(), C.SlowRatio.str().c_str(),
      C.FastPeriodNs.str().c_str(), C.SlowPeriodNs.str().c_str(),
      C.Design.Valid ? "true" : "false", C.OnFrontier ? "true" : "false");
  if (C.Design.Valid) {
    const SelectedDesign &D = C.Design;
    S += formatString(
        ", \"texec_ns\": %.17g, \"energy\": %.17g, \"ed2\": %.17g, "
        "\"fast_vdd\": %.17g, \"slow_vdd\": %.17g, \"icn_vdd\": %.17g, "
        "\"cache_vdd\": %.17g",
        D.EstTexecNs, D.EstEnergy, D.EstED2, fastCluster(D).Vdd,
        slowCluster(D).Vdd, D.Config.Icn.Vdd, D.Config.Cache.Vdd);
  }
  S += "}";
  return S;
}

} // namespace

std::string ExplorationReport::csv() const {
  std::string Out = "index,fast_factor,slow_ratio,fast_period_ns,"
                    "slow_period_ns,valid,on_frontier,texec_ns,energy,ed2,"
                    "fast_vdd,slow_vdd,icn_vdd,cache_vdd\n";
  for (size_t I = 0; I < Result.Candidates.size(); ++I) {
    const ExploreCandidate &C = Result.Candidates[I];
    Out += formatString("%zu,%s,%s,%s,%s,%d,%d", I,
                        C.FastFactor.str().c_str(),
                        C.SlowRatio.str().c_str(),
                        C.FastPeriodNs.str().c_str(),
                        C.SlowPeriodNs.str().c_str(), C.Design.Valid ? 1 : 0,
                        C.OnFrontier ? 1 : 0);
    if (C.Design.Valid) {
      const SelectedDesign &D = C.Design;
      Out += formatString(",%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g",
                          D.EstTexecNs, D.EstEnergy, D.EstED2,
                          fastCluster(D).Vdd, slowCluster(D).Vdd,
                          D.Config.Icn.Vdd, D.Config.Cache.Vdd);
    } else {
      Out += ",,,,,,,";
    }
    Out += "\n";
  }
  return Out;
}

std::string ExplorationReport::json() const {
  const ExplorationStats &S = Result.Stats;
  std::string Out = "{\n";
  Out += formatString("  \"program\": \"%s\",\n",
                      jsonEscape(Program).c_str());
  Out += formatString(
      "  \"stats\": {\"enumerated\": %zu, "
      "\"feasible\": %zu, \"infeasible\": %zu, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu, \"frontier_size\": %zu, \"threads\": %u, "
      "\"wall_ms\": %.3f},\n",
      S.Enumerated, S.Feasible, S.Infeasible,
      static_cast<unsigned long long>(S.CacheHits),
      static_cast<unsigned long long>(S.CacheMisses), S.FrontierSize,
      S.ThreadsUsed, S.WallMs);
  Out += "  \"frontier\": [";
  for (size_t I = 0; I < Result.Frontier.size(); ++I)
    Out += formatString("%s%zu", I ? ", " : "", Result.Frontier[I]);
  Out += "],\n";
  if (Result.Best.Valid) {
    Out += formatString(
        "  \"best\": {\"texec_ns\": %.17g, \"energy\": %.17g, "
        "\"ed2\": %.17g},\n",
        Result.Best.EstTexecNs, Result.Best.EstEnergy, Result.Best.EstED2);
  } else {
    Out += "  \"best\": null,\n";
  }
  Out += "  \"candidates\": [\n";
  for (size_t I = 0; I < Result.Candidates.size(); ++I) {
    Out += candidateJson(Result.Candidates[I], I);
    Out += I + 1 < Result.Candidates.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

std::string ExplorationReport::summary() const {
  const ExplorationStats &S = Result.Stats;
  // Without a frontier (ComputeFrontier=false) the selected design is still the
  // headline; show it instead of an empty table.
  if (Result.Frontier.empty() && Result.Best.Valid) {
    const SelectedDesign &B = Result.Best;
    return formatString(
        "%s: best ED2 %.4g (Texec %.1f ns, energy %.4f), fast %s ns, "
        "slow %s ns\n%zu candidates (%zu feasible), no frontier "
        "(pruning off), cache %llu hits / %llu misses, %u thread(s), "
        "%.2f ms\n",
        Program.c_str(), B.EstED2, B.EstTexecNs, B.EstEnergy,
        B.Config.Clusters.front().PeriodNs.str().c_str(),
        B.Config.Clusters.back().PeriodNs.str().c_str(), S.Enumerated,
        S.Feasible, static_cast<unsigned long long>(S.CacheHits),
        static_cast<unsigned long long>(S.CacheMisses), S.ThreadsUsed,
        S.WallMs);
  }
  TablePrinter T(formatString("Pareto frontier: %s", Program.c_str()));
  T.addRow({"idx", "fast", "slow/fast", "Texec (ns)", "energy", "ED2",
            "best"});
  for (size_t Idx : Result.Frontier) {
    const ExploreCandidate &C = Result.Candidates[Idx];
    bool IsBest =
        Result.Best.Valid && C.Design.EstED2 == Result.Best.EstED2 &&
        C.Design.EstTexecNs == Result.Best.EstTexecNs;
    T.addRow({formatString("%zu", Idx), C.FastFactor.str(),
              C.SlowRatio.str(), formatString("%.1f", C.Design.EstTexecNs),
              formatString("%.4f", C.Design.EstEnergy),
              formatString("%.4g", C.Design.EstED2), IsBest ? "*" : ""});
  }
  std::string Out = T.render();
  Out += formatString(
      "\n%zu candidates (%zu feasible), frontier %zu, cache %llu hits / "
      "%llu misses, %u thread(s), %.2f ms\n",
      S.Enumerated, S.Feasible, S.FrontierSize,
      static_cast<unsigned long long>(S.CacheHits),
      static_cast<unsigned long long>(S.CacheMisses), S.ThreadsUsed,
      S.WallMs);
  return Out;
}

static bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out)
    return false;
  size_t Wrote = std::fwrite(Text.data(), 1, Text.size(), Out);
  return std::fclose(Out) == 0 && Wrote == Text.size();
}

bool ExplorationReport::writeCsv(const std::string &Path) const {
  return writeFile(Path, csv());
}

bool ExplorationReport::writeJson(const std::string &Path) const {
  return writeFile(Path, json());
}
