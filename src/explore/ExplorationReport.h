//===- explore/ExplorationReport.h - Frontier serialization ------*- C++ -*-===//
///
/// \file
/// Serializes an ExplorationResult — the candidate grid, the Pareto
/// frontier and the search statistics — to CSV (one row per candidate)
/// and JSON (stats + frontier + candidates), so exploration runs can be
/// archived, diffed and consumed by external tooling without re-running
/// the search. Doubles are printed with %.17g and rationals as exact
/// "N/D" strings, so a serialized run round-trips losslessly.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_EXPLORATIONREPORT_H
#define HCVLIW_EXPLORE_EXPLORATIONREPORT_H

#include "explore/ExplorationEngine.h"

#include <string>

namespace hcvliw {

class ExplorationReport {
  std::string Program;
  const ExplorationResult &Result;

public:
  ExplorationReport(std::string ProgramName, const ExplorationResult &R)
      : Program(std::move(ProgramName)), Result(R) {}
  /// The report only references the result; a temporary would dangle.
  ExplorationReport(std::string, ExplorationResult &&) = delete;

  /// One row per enumerated candidate:
  /// index,fast_factor,slow_ratio,fast_period_ns,slow_period_ns,valid,
  /// on_frontier,texec_ns,energy,ed2,fast_vdd,slow_vdd,icn_vdd,cache_vdd
  std::string csv() const;

  /// Stats, the frontier (by candidate index) and every candidate.
  std::string json() const;

  /// Human-readable frontier + stats summary for console output.
  std::string summary() const;

  bool writeCsv(const std::string &Path) const;
  bool writeJson(const std::string &Path) const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_EXPLORATIONREPORT_H
