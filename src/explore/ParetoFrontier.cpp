//===- explore/ParetoFrontier.cpp - Non-dominated design set ----------------===//

#include "explore/ParetoFrontier.h"

#include <algorithm>

using namespace hcvliw;

bool hcvliw::dominates(const ParetoPoint &A, const ParetoPoint &B) {
  if (A.TexecNs > B.TexecNs || A.Energy > B.Energy || A.ED2 > B.ED2)
    return false;
  return A.TexecNs < B.TexecNs || A.Energy < B.Energy || A.ED2 < B.ED2;
}

bool ParetoFrontier::dominated(const ParetoPoint &P) const {
  for (const ParetoPoint &Q : Points)
    if (dominates(Q, P))
      return true;
  return false;
}

bool ParetoFrontier::insert(const ParetoPoint &P) {
  if (dominated(P))
    return false;
  Points.erase(std::remove_if(Points.begin(), Points.end(),
                              [&P](const ParetoPoint &Q) {
                                return dominates(P, Q);
                              }),
               Points.end());
  Points.push_back(P);
  return true;
}

std::vector<ParetoPoint> ParetoFrontier::sortedByTexec() const {
  std::vector<ParetoPoint> Sorted = Points;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ParetoPoint &A, const ParetoPoint &B) {
              if (A.TexecNs != B.TexecNs)
                return A.TexecNs < B.TexecNs;
              if (A.Energy != B.Energy)
                return A.Energy < B.Energy;
              return A.Index < B.Index;
            });
  return Sorted;
}
