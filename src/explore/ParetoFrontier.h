//===- explore/ParetoFrontier.h - Non-dominated design set -------*- C++ -*-===//
///
/// \file
/// Maintains the Pareto frontier of evaluated designs over the paper's
/// three figures of merit (execution time, energy, ED2), minimizing all
/// three. The ED2 argmin the paper reports is always on the frontier;
/// keeping the whole frontier lets downstream consumers (SLAP-style
/// per-workload adaptation, the report serializer) pick any operating
/// point without re-running the search.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_EXPLORE_PARETOFRONTIER_H
#define HCVLIW_EXPLORE_PARETOFRONTIER_H

#include <cstddef>
#include <vector>

namespace hcvliw {

/// One candidate's objective vector plus its identity in the caller's
/// candidate array.
struct ParetoPoint {
  double TexecNs = 0;
  double Energy = 0;
  double ED2 = 0;
  size_t Index = 0;
};

/// True when \p A is no worse than \p B in every objective and strictly
/// better in at least one.
bool dominates(const ParetoPoint &A, const ParetoPoint &B);

class ParetoFrontier {
  std::vector<ParetoPoint> Points; ///< mutually non-dominated

public:
  /// Inserts \p P unless an existing point dominates it; evicts points
  /// \p P dominates. Returns true when \p P was kept. Objective-equal
  /// points coexist (neither dominates).
  bool insert(const ParetoPoint &P);

  const std::vector<ParetoPoint> &points() const { return Points; }
  size_t size() const { return Points.size(); }
  bool empty() const { return Points.empty(); }

  /// True when some frontier point dominates \p P.
  bool dominated(const ParetoPoint &P) const;

  /// The frontier ordered by ascending execution time (ties by energy,
  /// then by candidate index, so the order is deterministic).
  std::vector<ParetoPoint> sortedByTexec() const;
};

} // namespace hcvliw

#endif // HCVLIW_EXPLORE_PARETOFRONTIER_H
