//===- fault/Fault.cpp - Deterministic fault injection ----------------------===//

#include "fault/Fault.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace hcvliw;
using namespace hcvliw::fault;

const char *hcvliw::fault::faultActionName(FaultAction A) {
  switch (A) {
  case FaultAction::Throw:
    return "throw";
  case FaultAction::BadAlloc:
    return "badalloc";
  case FaultAction::Degrade:
    return "degrade";
  }
  return "?";
}

FaultInjected::FaultInjected(const std::string &Site, std::string_view Context,
                             uint64_t Occurrence)
    : std::runtime_error("fault injected: " + Site + " @ " +
                         std::string(Context) + " #" +
                         std::to_string(Occurrence)),
      Site_(Site) {}

//===----------------------------------------------------------------------===//
// FaultPlan text form
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Err, unsigned LineNo, const std::string &Msg) {
  if (Err)
    *Err = "fault plan line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool parseLine(const std::string &Line, unsigned LineNo, FaultPlan &P,
               std::string *Err) {
  std::istringstream In(Line);
  std::string Tok;
  if (!(In >> Tok))
    return true; // blank
  if (Tok[0] == '#')
    return true;
  if (Tok == "seed") {
    unsigned long long S = 0;
    if (!(In >> S))
      return fail(Err, LineNo, "seed needs an integer");
    P.Seed = S;
    return true;
  }
  if (Tok != "on")
    return fail(Err, LineNo, "expected 'seed' or 'on', got '" + Tok + "'");

  FaultRule R;
  if (!(In >> R.Site))
    return fail(Err, LineNo, "'on' needs a site name");
  std::string Kw;
  if (!(In >> Kw))
    return fail(Err, LineNo, "rule needs a trigger");
  if (Kw == "ctx") {
    if (!(In >> R.Context))
      return fail(Err, LineNo, "'ctx' needs a context string");
    if (!(In >> Kw))
      return fail(Err, LineNo, "rule needs a trigger");
  }
  unsigned long long N = 0;
  if (Kw == "occurrence")
    R.Trigger = FaultTrigger::Nth;
  else if (Kw == "every")
    R.Trigger = FaultTrigger::Every;
  else if (Kw == "prob")
    R.Trigger = FaultTrigger::Prob;
  else
    return fail(Err, LineNo,
                "unknown trigger '" + Kw +
                    "' (want occurrence/every/prob)");
  if (!(In >> N) || N == 0)
    return fail(Err, LineNo, "'" + Kw + "' needs a positive integer");
  if (R.Trigger == FaultTrigger::Prob && N > 100)
    return fail(Err, LineNo, "'prob' percentage must be in [1, 100]");
  R.N = N;
  std::string Act;
  if (!(In >> Act))
    return fail(Err, LineNo, "rule needs an action (throw/badalloc/degrade)");
  if (Act == "throw")
    R.Action = FaultAction::Throw;
  else if (Act == "badalloc")
    R.Action = FaultAction::BadAlloc;
  else if (Act == "degrade")
    R.Action = FaultAction::Degrade;
  else
    return fail(Err, LineNo, "unknown action '" + Act + "'");
  std::string Extra;
  if (In >> Extra)
    return fail(Err, LineNo, "trailing token '" + Extra + "'");
  P.Rules.push_back(std::move(R));
  return true;
}

} // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string &Text,
                                          std::string *Err) {
  FaultPlan P;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (!parseLine(Line, LineNo, P, Err))
      return std::nullopt;
  }
  return P;
}

std::optional<FaultPlan> FaultPlan::parseFile(const std::string &Path,
                                              std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot read fault plan '" + Path + "'";
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  return parse(Buf.str(), Err);
}

std::string FaultPlan::str() const {
  std::string Out = "seed " + std::to_string(Seed) + "\n";
  for (const FaultRule &R : Rules) {
    Out += "on " + R.Site;
    if (!R.Context.empty())
      Out += " ctx " + R.Context;
    switch (R.Trigger) {
    case FaultTrigger::Nth:
      Out += " occurrence ";
      break;
    case FaultTrigger::Every:
      Out += " every ";
      break;
    case FaultTrigger::Prob:
      Out += " prob ";
      break;
    }
    Out += std::to_string(R.N);
    Out += " ";
    Out += faultActionName(R.Action);
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_NO_FAULT

namespace {

/// Pure replayable "coin": FNV-1a over (seed, site, context, count).
/// No RNG stream, so the draw is independent of thread scheduling.
uint64_t probHash(uint64_t Seed, std::string_view Site, std::string_view Ctx,
                  uint64_t Count) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto mixByte = [&H](unsigned char B) {
    H ^= B;
    H *= 0x100000001b3ull;
  };
  auto mixU64 = [&](uint64_t V) {
    for (unsigned I = 0; I < 8; ++I)
      mixByte(static_cast<unsigned char>(V >> (I * 8)));
  };
  mixU64(Seed);
  for (char C : Site)
    mixByte(static_cast<unsigned char>(C));
  mixByte(0x1f);
  for (char C : Ctx)
    mixByte(static_cast<unsigned char>(C));
  mixByte(0x1f);
  mixU64(Count);
  return H;
}

} // namespace

void FaultInjector::arm(const FaultPlan &P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Plan_ = P;
  Counts.clear();
  Fired.clear();
  Throws_ = BadAllocs_ = Degrades_ = 0;
  Armed_.store(true, std::memory_order_relaxed);
}

std::optional<FaultAction> FaultInjector::match(const char *Site,
                                                std::string_view Ctx,
                                                bool DegradeSite,
                                                uint64_t *Occ) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Key = std::string(Site) + '\x1f' + std::string(Ctx);
  uint64_t N = ++Counts[Key];
  *Occ = N;
  for (const FaultRule &R : Plan_.Rules) {
    if (R.Site != Site)
      continue;
    if (!R.Context.empty() && R.Context != Ctx)
      continue;
    // Degrade rules only make sense at degrade sites; throw-capable
    // rules fire at either kind.
    if (R.Action == FaultAction::Degrade && !DegradeSite)
      continue;
    bool Fires = false;
    switch (R.Trigger) {
    case FaultTrigger::Nth:
      Fires = N == R.N;
      break;
    case FaultTrigger::Every:
      Fires = N % R.N == 0;
      break;
    case FaultTrigger::Prob:
      Fires = probHash(Plan_.Seed, Site, Ctx, N) % 100 < R.N;
      break;
    }
    if (!Fires)
      continue;
    ++Fired[Site];
    switch (R.Action) {
    case FaultAction::Throw:
      ++Throws_;
      break;
    case FaultAction::BadAlloc:
      ++BadAllocs_;
      break;
    case FaultAction::Degrade:
      ++Degrades_;
      break;
    }
    return R.Action;
  }
  return std::nullopt;
}

void FaultInjector::hit(const char *Site, std::string_view Ctx) {
  uint64_t Occ = 0;
  std::optional<FaultAction> A = match(Site, Ctx, /*DegradeSite=*/false, &Occ);
  if (!A)
    return;
  if (*A == FaultAction::BadAlloc)
    throw std::bad_alloc();
  throw FaultInjected(Site, Ctx, Occ);
}

bool FaultInjector::shouldDegrade(const char *Site, std::string_view Ctx) {
  uint64_t Occ = 0;
  std::optional<FaultAction> A = match(Site, Ctx, /*DegradeSite=*/true, &Occ);
  if (!A)
    return false;
  if (*A == FaultAction::Degrade)
    return true;
  if (*A == FaultAction::BadAlloc)
    throw std::bad_alloc();
  throw FaultInjected(Site, Ctx, Occ);
}

uint64_t FaultInjector::injectedThrows() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Throws_;
}

uint64_t FaultInjector::injectedBadAllocs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return BadAllocs_;
}

uint64_t FaultInjector::injectedDegrades() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Degrades_;
}

uint64_t FaultInjector::totalInjected() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Throws_ + BadAllocs_ + Degrades_;
}

std::map<std::string, uint64_t> FaultInjector::injectedBySite() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Fired;
}

#endif // HCVLIW_NO_FAULT
