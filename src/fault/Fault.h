//===- fault/Fault.h - Deterministic fault injection -------------*- C++ -*-===//
///
/// \file
/// The fault-injection half of the robustness layer: a seeded FaultPlan
/// keyed on stable *site names* (e.g. "sched.place", "part.coarsen"),
/// armed on a FaultInjector the Session owns, consulted at
/// HCVLIW_FAULT_POINT / HCVLIW_FAULT_DEGRADE macros compiled into the
/// runtime. Three actions exist:
///
///   throw    — raise fault::FaultInjected at the site
///   badalloc — raise std::bad_alloc at the site (allocation failure)
///   degrade  — make the site's HCVLIW_FAULT_DEGRADE check return true,
///              forcing that site's graceful-degradation rung
///
/// Design constraints, in order (mirroring obs/Trace.h):
///
///   - *Determinism.* Occurrence counters are kept per (site, context)
///     pair, and every site passes a context that is processed serially
///     (the program or program/loop being worked on), so the Nth hit of
///     a (site, context) pair is the same computation for any thread
///     count. Probabilistic rules draw no RNG stream: they hash
///     (seed, site, context, occurrence) — pure, replayable. While an
///     injector is armed the measurement layer bypasses its
///     ScheduleCache, so cross-program cache races can never change
///     which occurrence a site observes. With no plan armed, results
///     are bit-identical to a build without the layer.
///   - *Idle means one branch.* Every macro checks armed() — a relaxed
///     atomic load — before doing anything else; the unarmed cost is a
///     null check plus that load.
///   - *Compiled out like the tracer.* -DHCVLIW_NO_FAULT turns the
///     injector into empty inline stubs and both macros into no-ops
///     (the FaultPlan parser stays, so tools still accept plan files).
///
/// Site names are registered in fault/FaultSites.def; the hcvliw_lint
/// "fault-site" rule family checks that every macro's site literal is
/// registered, used exactly once, and that no registered site is stale.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_FAULT_FAULT_H
#define HCVLIW_FAULT_FAULT_H

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#ifndef HCVLIW_NO_FAULT
#include <atomic>
#include <mutex>
#endif

namespace hcvliw {
namespace fault {

/// What an armed rule does when it fires.
enum class FaultAction { Throw, BadAlloc, Degrade };

/// When a rule fires, relative to the (site, context) occurrence count.
enum class FaultTrigger {
  Nth,   ///< exactly the N-th hit (1-based)
  Every, ///< every N-th hit (count % N == 0)
  Prob,  ///< hash(seed, site, context, count) % 100 < N
};

const char *faultActionName(FaultAction A);

/// One rule of a plan. Context "" matches any context (the occurrence
/// count consulted is still the matching (site, context) pair's own).
struct FaultRule {
  std::string Site;
  std::string Context;
  FaultTrigger Trigger = FaultTrigger::Nth;
  uint64_t N = 1; ///< Nth: 1-based index; Every: period; Prob: percent
  FaultAction Action = FaultAction::Throw;
};

/// A parsed fault plan: a seed (for Prob rules) plus an ordered rule
/// list (first matching rule fires). Text format, one directive per
/// line ('#' comments):
///
///   seed 42
///   on sched.place ctx 171.swim/loop2 occurrence 3 throw
///   on measure.config occurrence 1 badalloc
///   on part.coarsen every 2 degrade
///   on pool.job prob 25 throw
///
struct FaultPlan {
  uint64_t Seed = 0;
  std::vector<FaultRule> Rules;

  /// Parses the text form above; std::nullopt (with \p Err filled when
  /// non-null) on malformed input.
  static std::optional<FaultPlan> parse(const std::string &Text,
                                        std::string *Err = nullptr);
  /// parse() over the contents of \p Path.
  static std::optional<FaultPlan> parseFile(const std::string &Path,
                                            std::string *Err = nullptr);
  /// The canonical text form (parse(str()) round-trips exactly).
  std::string str() const;
};

/// The exception a Throw-action rule raises. Carries the site so tests
/// and failure records can assert exactly which injection fired.
class FaultInjected : public std::runtime_error {
  std::string Site_;

public:
  FaultInjected(const std::string &Site, std::string_view Context,
                uint64_t Occurrence);
  const std::string &site() const { return Site_; }
};

#ifndef HCVLIW_NO_FAULT

/// The armed-plan evaluator. One per Session; thread-safe. All mutation
/// happens under one mutex — acceptable because the injector is only
/// consulted beyond the armed() branch when a plan is armed (fault
/// testing), never on the production fast path.
class FaultInjector {
  std::atomic<bool> Armed_{false};
  mutable std::mutex Mutex;
  FaultPlan Plan_;
  /// Occurrence count per "site\x1f context" pair.
  std::map<std::string, uint64_t> Counts;
  /// Fired injections per site (all actions).
  std::map<std::string, uint64_t> Fired;
  uint64_t Throws_ = 0, BadAllocs_ = 0, Degrades_ = 0;

  /// Counts the hit and returns the firing rule's action, if any.
  std::optional<FaultAction> match(const char *Site, std::string_view Ctx,
                                   bool DegradeSite, uint64_t *Occ);

public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Arms \p P and resets every occurrence and injection counter.
  void arm(const FaultPlan &P);
  /// Disarms; counters are kept for post-run reporting.
  void disarm() { Armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return Armed_.load(std::memory_order_relaxed); }
  const FaultPlan &plan() const { return Plan_; }

  /// A throw-capable site (HCVLIW_FAULT_POINT): counts the hit; raises
  /// FaultInjected or std::bad_alloc when a Throw/BadAlloc rule fires.
  /// Degrade rules never fire here.
  void hit(const char *Site, std::string_view Ctx);
  /// A degradation site (HCVLIW_FAULT_DEGRADE): counts the hit; true
  /// when a Degrade rule fires (the caller takes its fallback rung).
  /// Throw/BadAlloc rules on a degrade site also fire here, by raising.
  bool shouldDegrade(const char *Site, std::string_view Ctx);

  uint64_t injectedThrows() const;
  uint64_t injectedBadAllocs() const;
  uint64_t injectedDegrades() const;
  uint64_t totalInjected() const;
  /// Fired injections per site name (deterministic order).
  std::map<std::string, uint64_t> injectedBySite() const;
};

/// Consults \p InjPtr (FaultInjector*, may be null) at throw-capable
/// site \p SiteName with context \p Ctx. Unarmed cost: a null check and
/// one relaxed load.
#define HCVLIW_FAULT_POINT(InjPtr, SiteName, Ctx)                            \
  do {                                                                       \
    ::hcvliw::fault::FaultInjector *FIP_ = (InjPtr);                         \
    if (FIP_ && FIP_->armed())                                               \
      FIP_->hit(SiteName, Ctx);                                              \
  } while (0)

/// True when a Degrade rule fires at \p SiteName — the caller takes its
/// degradation rung. Same unarmed cost as HCVLIW_FAULT_POINT.
#define HCVLIW_FAULT_DEGRADE(InjPtr, SiteName, Ctx)                          \
  ((InjPtr) != nullptr && (InjPtr)->armed() &&                               \
   (InjPtr)->shouldDegrade(SiteName, Ctx))

#else // HCVLIW_NO_FAULT: the injector compiles to empty stubs.

class FaultInjector {
public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;
  void arm(const FaultPlan &) {}
  void disarm() {}
  bool armed() const { return false; }
  const FaultPlan &plan() const {
    static const FaultPlan Empty;
    return Empty;
  }
  void hit(const char *, std::string_view) {}
  bool shouldDegrade(const char *, std::string_view) { return false; }
  uint64_t injectedThrows() const { return 0; }
  uint64_t injectedBadAllocs() const { return 0; }
  uint64_t injectedDegrades() const { return 0; }
  uint64_t totalInjected() const { return 0; }
  std::map<std::string, uint64_t> injectedBySite() const { return {}; }
};

#define HCVLIW_FAULT_POINT(InjPtr, SiteName, Ctx)                            \
  do {                                                                       \
    (void)(InjPtr);                                                          \
  } while (0)
#define HCVLIW_FAULT_DEGRADE(InjPtr, SiteName, Ctx) (false)

#endif // HCVLIW_NO_FAULT

} // namespace fault
} // namespace hcvliw

#endif // HCVLIW_FAULT_FAULT_H
