//===- ir/DDG.cpp - Data dependence graph ----------------------------------===//

#include "ir/DDG.h"

#include <cassert>
#include <cstdlib>

using namespace hcvliw;

void DDG::addEdge(unsigned Src, unsigned Dst, unsigned Distance,
                  DepKind Kind) {
  assert(Src < NumNodes && Dst < NumNodes && "edge endpoint out of range");
  Edges.push_back({Src, Dst, Distance, Kind});
}

/// Counting sort of the edge list into the CSR rows. Stable: within one
/// node's row, edge indices stay in insertion order — exactly the
/// iteration order of the per-node push_back rows this replaces.
void DDG::finalizeAdjacency() {
  const unsigned N = NumNodes;
  const unsigned E = static_cast<unsigned>(Edges.size());
  OutStart.assign(N + 1, 0);
  InStart.assign(N + 1, 0);
  for (const Edge &Ed : Edges) {
    ++OutStart[Ed.Src + 1];
    ++InStart[Ed.Dst + 1];
  }
  for (unsigned I = 0; I < N; ++I) {
    OutStart[I + 1] += OutStart[I];
    InStart[I + 1] += InStart[I];
  }
  OutIx.resize(E);
  InIx.resize(E);
  // Fill using the start arrays as cursors, then shift them back.
  for (unsigned Ix = 0; Ix < E; ++Ix) {
    OutIx[OutStart[Edges[Ix].Src]++] = Ix;
    InIx[InStart[Edges[Ix].Dst]++] = Ix;
  }
  for (unsigned I = N; I > 0; --I) {
    OutStart[I] = OutStart[I - 1];
    InStart[I] = InStart[I - 1];
  }
  OutStart[0] = 0;
  InStart[0] = 0;
}

std::vector<std::vector<unsigned>> DDG::adjacency() const {
  std::vector<std::vector<unsigned>> Adj(NumNodes);
  for (const Edge &E : Edges)
    Adj[E.Src].push_back(E.Dst);
  return Adj;
}

unsigned hcvliw::edgeLatency(const DDG::Edge &E,
                             const std::vector<unsigned> &NodeLatency) {
  switch (E.Kind) {
  case DepKind::Flow:
  case DepKind::MemFlow:
    return NodeLatency[E.Src];
  case DepKind::MemAnti:
  case DepKind::MemOutput:
    return 1;
  }
  assert(false && "unknown dep kind");
  return 1;
}

// Adds the memory-ordering edge between accesses A (op IxA) and B (op
// IxB) on the same array, where A precedes B in program order. With a
// shared index scale S the accesses of iterations n (A) and m (B)
// collide iff S*n + OffA == S*m + OffB, i.e. m - n == (OffA - OffB) / S
// when divisible; the dependence direction follows the sign.
void DDG::addAliasEdges(DDG &G, const Loop &L, unsigned IxA, unsigned IxB) {
  const Operation &A = L.Ops[IxA];
  const Operation &B = L.Ops[IxB];
  bool AStore = isStoreOpcode(A.Op);
  bool BStore = isStoreOpcode(B.Op);
  if (!AStore && !BStore)
    return; // load-load: no constraint

  auto kindFor = [&](bool SrcIsStore, bool DstIsStore) {
    if (SrcIsStore && DstIsStore)
      return DepKind::MemOutput;
    return SrcIsStore ? DepKind::MemFlow : DepKind::MemAnti;
  };

  if (A.IndexScale != B.IndexScale) {
    // Conservative serialization for incomparable affine accesses:
    // program order within the iteration, plus the loop-carried reverse.
    G.addEdge(IxA, IxB, 0, kindFor(AStore, BStore));
    G.addEdge(IxB, IxA, 1, kindFor(BStore, AStore));
    return;
  }

  int64_t Delta = A.Offset - B.Offset;
  int64_t S = A.IndexScale;
  if (Delta % S != 0)
    return; // never alias
  int64_t D = Delta / S; // B of iteration n+D hits A of iteration n
  if (D > 0) {
    G.addEdge(IxA, IxB, static_cast<unsigned>(D), kindFor(AStore, BStore));
  } else if (D < 0) {
    G.addEdge(IxB, IxA, static_cast<unsigned>(-D), kindFor(BStore, AStore));
  } else {
    // Same address every iteration pair (n, n): program order wins.
    G.addEdge(IxA, IxB, 0, kindFor(AStore, BStore));
    // And across iterations, the earlier op of iteration n+1 follows the
    // later op of iteration n.
    G.addEdge(IxB, IxA, 1, kindFor(BStore, AStore));
  }
}

DDG DDG::build(const Loop &L) {
  DDG G;
  buildInto(G, L);
  return G;
}

void DDG::buildInto(DDG &G, const Loop &L) {
  assert(L.validate().empty() && "building DDG of an invalid loop");
  G.Edges.clear();
  G.NumNodes = L.size();

  // Register flow edges.
  for (unsigned I = 0; I < L.size(); ++I)
    for (const Operand &U : L.Ops[I].Operands)
      if (U.Kind == OperandKind::Def)
        G.addEdge(U.Index, I, U.Distance, DepKind::Flow);

  // Memory edges, per array, over ordered access pairs.
  for (unsigned A = 0; A < L.Arrays.size(); ++A) {
    std::vector<unsigned> Accesses;
    for (unsigned I = 0; I < L.size(); ++I)
      if (isMemoryOpcode(L.Ops[I].Op) &&
          L.Ops[I].Array == static_cast<int>(A))
        Accesses.push_back(I);
    for (size_t X = 0; X < Accesses.size(); ++X)
      for (size_t Y = X + 1; Y < Accesses.size(); ++Y)
        addAliasEdges(G, L, Accesses[X], Accesses[Y]);
  }

  G.finalizeAdjacency();
}
