//===- ir/DDG.h - Data dependence graph -------------------------*- C++ -*-===//
///
/// \file
/// The data dependence graph of a loop body. Nodes are the loop's
/// operations; edges carry a dependence *distance* (iterations) and a
/// kind. Register flow edges come straight from operands; memory edges
/// are inferred from the affine addresses of loads/stores (exact when
/// two accesses share an index scale, conservative otherwise).
///
/// Latencies are *not* stored on edges: they depend on the machine's ISA
/// table, so analyses take a per-node latency vector (see edgeLatency).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_DDG_H
#define HCVLIW_IR_DDG_H

#include "ir/Loop.h"

#include <vector>

namespace hcvliw {

enum class DepKind : uint8_t {
  Flow,      ///< register true dependence (producer -> consumer)
  MemFlow,   ///< store -> load on the same address
  MemAnti,   ///< load -> store on the same address
  MemOutput, ///< store -> store on the same address
};

/// Flow kinds propagate a value (and may require an inter-cluster copy);
/// memory-ordering kinds only constrain time.
inline bool isValueCarrying(DepKind K) { return K == DepKind::Flow; }

/// A borrowed, contiguous run of edge indices (one node's adjacency row
/// in a CSR graph). Iterates like the std::vector<unsigned> it
/// replaced; valid as long as the owning graph.
class EdgeIxSpan {
  const unsigned *B = nullptr;
  const unsigned *E = nullptr;

public:
  EdgeIxSpan() = default;
  EdgeIxSpan(const unsigned *Begin, const unsigned *End) : B(Begin), E(End) {}
  const unsigned *begin() const { return B; }
  const unsigned *end() const { return E; }
  size_t size() const { return static_cast<size_t>(E - B); }
  bool empty() const { return B == E; }
};

class DDG {
public:
  struct Edge {
    unsigned Src;
    unsigned Dst;
    unsigned Distance;
    DepKind Kind;
  };

private:
  unsigned NumNodes = 0;
  std::vector<Edge> Edges;
  /// CSR adjacency (built once per buildInto, after all edges exist):
  /// node N's out-edge indices are OutIx[OutStart[N] .. OutStart[N+1]),
  /// in edge-insertion order. Flat arrays instead of two heap rows per
  /// node, so cycling loops of very different sizes through one reused
  /// DDG never reallocates rows in steady state (a resize-down of a
  /// vector<vector> destroys the tail rows' capacity; flat arrays only
  /// ever keep their high-water capacity).
  std::vector<unsigned> OutStart, OutIx, InStart, InIx;

  void addEdge(unsigned Src, unsigned Dst, unsigned Distance, DepKind Kind);
  void finalizeAdjacency();
  static void addAliasEdges(DDG &G, const Loop &L, unsigned IxA, unsigned IxB);

public:
  DDG() = default;

  /// Builds the DDG of \p L: register flow edges from operands plus
  /// memory-ordering edges between may-alias accesses. \p L must be
  /// valid (Loop::validate).
  static DDG build(const Loop &L);

  /// In-place form of build: reuses \p G's node and edge buffers, so
  /// drivers scheduling one loop after another (the measurement layer's
  /// per-loop chain) stop reallocating the graph per loop.
  static void buildInto(DDG &G, const Loop &L);

  unsigned size() const { return NumNodes; }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const std::vector<Edge> &edges() const { return Edges; }
  const Edge &edge(unsigned Ix) const { return Edges[Ix]; }
  EdgeIxSpan outEdges(unsigned Node) const {
    return {OutIx.data() + OutStart[Node], OutIx.data() + OutStart[Node + 1]};
  }
  EdgeIxSpan inEdges(unsigned Node) const {
    return {InIx.data() + InStart[Node], InIx.data() + InStart[Node + 1]};
  }

  /// Plain adjacency lists (successor node ids), for the generic graph
  /// algorithms.
  std::vector<std::vector<unsigned>> adjacency() const;
};

/// Latency in (producer-domain) cycles an edge imposes between the start
/// of Src and the start of Dst. Flow-like edges wait for the producer's
/// full latency; pure ordering edges (anti/output) require one cycle.
unsigned edgeLatency(const DDG::Edge &E,
                     const std::vector<unsigned> &NodeLatency);

} // namespace hcvliw

#endif // HCVLIW_IR_DDG_H
