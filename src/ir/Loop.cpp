//===- ir/Loop.cpp - Loop bodies with functional semantics ----------------===//

#include "ir/Loop.h"
#include "support/HashUtil.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace hcvliw;

int Loop::findOp(std::string_view ValueName) const {
  for (unsigned I = 0; I < Ops.size(); ++I)
    if (Ops[I].definesValue() && Ops[I].Name == ValueName)
      return static_cast<int>(I);
  return -1;
}

int Loop::findLiveIn(std::string_view LiveInName) const {
  for (unsigned I = 0; I < LiveIns.size(); ++I)
    if (LiveIns[I].Name == LiveInName)
      return static_cast<int>(I);
  return -1;
}

std::string Loop::validate() const {
  if (TripCount == 0)
    return "loop '" + Name + "': zero trip count";
  for (unsigned I = 0; I < Ops.size(); ++I) {
    const Operation &O = Ops[I];
    if (O.Op == Opcode::Copy)
      return formatString("op %u: explicit copy in source loop", I);
    if (isMemoryOpcode(O.Op)) {
      if (O.Array < 0 || static_cast<size_t>(O.Array) >= Arrays.size())
        return formatString("op %u: memory op with bad array id", I);
      if (O.IndexScale <= 0)
        return formatString("op %u: non-positive index scale", I);
    } else if (O.Array >= 0) {
      return formatString("op %u: non-memory op with array id", I);
    }
    if (isStoreOpcode(O.Op) && !O.Name.empty())
      return formatString("op %u: store must not define a value", I);
    if (!isStoreOpcode(O.Op) && O.Name.empty())
      return formatString("op %u: missing destination name", I);
    if (O.Operands.size() != numOperandsOf(O.Op))
      return formatString("op %u: expected %u operands, got %zu", I,
                          numOperandsOf(O.Op), O.Operands.size());
    for (const Operand &U : O.Operands) {
      switch (U.Kind) {
      case OperandKind::Def:
        if (U.Index >= Ops.size())
          return formatString("op %u: operand def index out of range", I);
        if (!Ops[U.Index].definesValue())
          return formatString("op %u: operand refers to a store", I);
        if (U.Distance == 0 && U.Index >= I)
          return formatString(
              "op %u: same-iteration use of a later def (op %u)", I, U.Index);
        break;
      case OperandKind::LiveIn:
        if (U.Index >= LiveIns.size())
          return formatString("op %u: live-in index out of range", I);
        break;
      case OperandKind::Immediate:
        break;
      }
    }
  }
  return "";
}

std::vector<unsigned> Loop::opCountsByFU() const {
  std::vector<unsigned> Counts(NumFUKinds, 0);
  for (const Operation &O : Ops)
    ++Counts[static_cast<unsigned>(fuKindOf(O.Op))];
  return Counts;
}

uint64_t Loop::structuralFingerprint() const {
  FnvHasher H;
  H.mix(TripCount);
  H.mix(Ops.size());
  for (const Operation &O : Ops) {
    H.mix(static_cast<uint64_t>(O.Op));
    H.mix(O.Operands.size());
    for (const Operand &U : O.Operands) {
      H.mix(static_cast<uint64_t>(U.Kind));
      H.mix(U.Index);
      H.mix(U.Distance);
      H.mixDouble(U.Imm);
    }
    H.mixSigned(O.Array);
    H.mixSigned(O.IndexScale);
    H.mixSigned(O.Offset);
    H.mixDouble(O.InitValue);
    H.mixDouble(O.InitStep);
  }
  H.mix(LiveIns.size());
  for (const LiveIn &L : LiveIns)
    H.mixDouble(L.Value);
  H.mix(Arrays.size());
  return H.digest();
}

std::string Loop::str() const {
  std::string Out =
      formatString("loop %s trip=%llu weight=%g\n", Name.c_str(),
                   static_cast<unsigned long long>(TripCount), Weight);
  if (!Arrays.empty()) {
    Out += "  arrays";
    for (const auto &A : Arrays)
      Out += " " + A;
    Out += "\n";
  }
  for (const auto &L : LiveIns)
    Out += formatString("  livein %s = %g\n", L.Name.c_str(), L.Value);

  auto operandStr = [&](const Operand &U) -> std::string {
    switch (U.Kind) {
    case OperandKind::Def: {
      const std::string &Def = Ops[U.Index].Name;
      if (U.Distance == 0)
        return Def;
      return formatString("%s@%u", Def.c_str(), U.Distance);
    }
    case OperandKind::LiveIn:
      return LiveIns[U.Index].Name;
    case OperandKind::Immediate:
      return formatString("#%g", U.Imm);
    }
    return "?";
  };

  for (const Operation &O : Ops) {
    Out += "  ";
    if (O.definesValue())
      Out += O.Name + " = ";
    Out += opcodeName(O.Op);
    if (isMemoryOpcode(O.Op))
      Out += " " + Arrays[static_cast<size_t>(O.Array)];
    for (const Operand &U : O.Operands)
      Out += " " + operandStr(U);
    if (isMemoryOpcode(O.Op)) {
      if (O.Offset != 0)
        Out += formatString(" off=%lld", static_cast<long long>(O.Offset));
      if (O.IndexScale != 1)
        Out += formatString(" scale=%lld",
                            static_cast<long long>(O.IndexScale));
    }
    bool HasCarriedInit = false;
    for (const Operand &U : O.Operands)
      (void)U;
    if (O.InitValue != 0 || O.InitStep != 1)
      HasCarriedInit = true;
    if (HasCarriedInit)
      Out += formatString(" init=%g step=%g", O.InitValue, O.InitStep);
    Out += "\n";
  }
  Out += "endloop\n";
  return Out;
}
