//===- ir/Loop.h - Loop bodies with functional semantics --------*- C++ -*-===//
///
/// \file
/// The loop IR. A Loop is a single innermost-loop body: a list of SSA
/// operations, live-in scalars, and the arrays its loads/stores touch.
/// Every operation carries enough semantics (array, affine index, initial
/// values for loop-carried uses) that the loop can be *executed*, which
/// lets the test suite prove a modulo schedule functionally equivalent to
/// sequential execution.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_LOOP_H
#define HCVLIW_IR_LOOP_H

#include "ir/Opcode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hcvliw {

/// How an operand obtains its value.
enum class OperandKind : uint8_t {
  /// The value produced by operation #Index, Distance iterations ago.
  Def,
  /// Loop-invariant value LiveIns[Index].
  LiveIn,
  /// A literal constant.
  Immediate,
};

struct Operand {
  OperandKind Kind = OperandKind::Immediate;
  unsigned Index = 0;
  unsigned Distance = 0;
  double Imm = 0;

  static Operand def(unsigned OpIndex, unsigned Dist = 0) {
    Operand O;
    O.Kind = OperandKind::Def;
    O.Index = OpIndex;
    O.Distance = Dist;
    return O;
  }
  static Operand liveIn(unsigned LiveInIndex) {
    Operand O;
    O.Kind = OperandKind::LiveIn;
    O.Index = LiveInIndex;
    return O;
  }
  static Operand imm(double V) {
    Operand O;
    O.Kind = OperandKind::Immediate;
    O.Imm = V;
    return O;
  }
};

/// One operation of the loop body.
///
/// Memory operations address Arrays[Array] at element
/// `IndexScale * i + Offset` for iteration i (affine single-induction
/// addressing, which covers the streaming/stencil/recurrence patterns the
/// paper's SPECfp loops exhibit).
///
/// Loop-carried uses reaching before iteration 0 read the *initial value
/// function* `InitValue + InitStep * i` (i < 0); the affine form is
/// closed under unrolling.
struct Operation {
  Opcode Op = Opcode::IntAdd;
  std::string Name;
  std::vector<Operand> Operands;
  int Array = -1;
  int64_t IndexScale = 1;
  int64_t Offset = 0;
  double InitValue = 0;
  double InitStep = 1;

  bool definesValue() const { return Op != Opcode::Store; }
};

struct LiveIn {
  std::string Name;
  double Value = 0;
};

/// A single innermost loop plus the metadata the experiments need: a trip
/// count and a weight (relative share of whole-program execution time the
/// profiling substrate attributes to the loop).
class Loop {
public:
  std::string Name;
  uint64_t TripCount = 1;
  double Weight = 1.0;
  std::vector<Operation> Ops;
  std::vector<LiveIn> LiveIns;
  std::vector<std::string> Arrays;

  unsigned size() const { return static_cast<unsigned>(Ops.size()); }

  /// Index of the operation defining \p Name; -1 when absent.
  int findOp(std::string_view ValueName) const;

  /// Index of the live-in named \p Name; -1 when absent.
  int findLiveIn(std::string_view LiveInName) const;

  /// Structural well-formedness: operand indices in range, same-iteration
  /// uses refer to earlier program-order defs (SSA), memory ops carry an
  /// array, stores are unnamed. Returns an empty string when valid.
  std::string validate() const;

  /// Identity of everything the per-loop scheduling flow reads: trip
  /// count, every operation (opcode, operands, addressing, initial-value
  /// functions) and the live-in values. Names and the profiling Weight
  /// are excluded — two loops with equal fingerprints receive
  /// bit-identical schedules on equal machines under equal options,
  /// which is what lets a ScheduleCache hit across frontier points and
  /// across programs containing structurally identical loops.
  uint64_t structuralFingerprint() const;

  /// Number of operations executed per iteration on each FU kind.
  /// (Copies never appear in source loops.)
  std::vector<unsigned> opCountsByFU() const;

  /// Renders the loop in the DSL syntax (parseable back).
  std::string str() const;
};

} // namespace hcvliw

#endif // HCVLIW_IR_LOOP_H
