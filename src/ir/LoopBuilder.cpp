//===- ir/LoopBuilder.cpp - Programmatic loop construction ------------------===//

#include "ir/LoopBuilder.h"

#include <cassert>

using namespace hcvliw;

LoopBuilder::LoopBuilder(std::string Name, uint64_t Trip, double Weight) {
  L.Name = std::move(Name);
  L.TripCount = Trip;
  L.Weight = Weight;
}

unsigned LoopBuilder::array(std::string Name) {
  L.Arrays.push_back(std::move(Name));
  return static_cast<unsigned>(L.Arrays.size() - 1);
}

Operand LoopBuilder::liveIn(std::string Name, double Value) {
  L.LiveIns.push_back({std::move(Name), Value});
  return Operand::liveIn(static_cast<unsigned>(L.LiveIns.size() - 1));
}

unsigned LoopBuilder::load(std::string Name, unsigned Array, int64_t Off,
                           int64_t Scale) {
  Operation O;
  O.Op = Opcode::Load;
  O.Name = std::move(Name);
  O.Array = static_cast<int>(Array);
  O.Offset = Off;
  O.IndexScale = Scale;
  L.Ops.push_back(std::move(O));
  return L.size() - 1;
}

unsigned LoopBuilder::store(unsigned Array, Operand Val, int64_t Off,
                            int64_t Scale) {
  Operation O;
  O.Op = Opcode::Store;
  O.Array = static_cast<int>(Array);
  O.Offset = Off;
  O.IndexScale = Scale;
  O.Operands.push_back(Val);
  L.Ops.push_back(std::move(O));
  return L.size() - 1;
}

unsigned LoopBuilder::op(Opcode Op, std::string Name, Operand A, Operand B) {
  assert(numOperandsOf(Op) == 2 && "op() is for binary opcodes");
  Operation O;
  O.Op = Op;
  O.Name = std::move(Name);
  O.Operands = {A, B};
  L.Ops.push_back(std::move(O));
  return L.size() - 1;
}

unsigned LoopBuilder::unop(Opcode Op, std::string Name, Operand A) {
  assert(numOperandsOf(Op) == 1 && "unop() is for unary opcodes");
  Operation O;
  O.Op = Op;
  O.Name = std::move(Name);
  O.Operands = {A};
  L.Ops.push_back(std::move(O));
  return L.size() - 1;
}

void LoopBuilder::setInit(unsigned OpIx, double Init, double Step) {
  assert(OpIx < L.size() && "op index out of range");
  L.Ops[OpIx].InitValue = Init;
  L.Ops[OpIx].InitStep = Step;
}

void LoopBuilder::rewireOperand(unsigned OpIx, unsigned Which,
                                Operand NewUse) {
  assert(OpIx < L.size() && Which < L.Ops[OpIx].Operands.size() &&
         "operand slot out of range");
  L.Ops[OpIx].Operands[Which] = NewUse;
}

Loop LoopBuilder::take() {
  [[maybe_unused]] std::string Err = L.validate();
  assert(Err.empty() && "LoopBuilder produced an invalid loop");
  return std::move(L);
}
