//===- ir/LoopBuilder.h - Programmatic loop construction ---------*- C++ -*-===//
///
/// \file
/// Fluent construction of Loop bodies from C++ (the synthetic workload
/// generators and many tests use this instead of the textual DSL).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_LOOPBUILDER_H
#define HCVLIW_IR_LOOPBUILDER_H

#include "ir/Loop.h"

#include <string>

namespace hcvliw {

class LoopBuilder {
  Loop L;

public:
  LoopBuilder(std::string Name, uint64_t Trip, double Weight = 1.0);

  /// Declares an array; returns its id.
  unsigned array(std::string Name);

  /// Declares a live-in scalar; returns an operand referring to it.
  Operand liveIn(std::string Name, double Value);

  /// load NAME = Array[Scale * i + Off]; returns the op index.
  unsigned load(std::string Name, unsigned Array, int64_t Off = 0,
                int64_t Scale = 1);

  /// store Array[Scale * i + Off] = Val; returns the op index.
  unsigned store(unsigned Array, Operand Val, int64_t Off = 0,
                 int64_t Scale = 1);

  /// Binary operation; returns the op index.
  unsigned op(Opcode Op, std::string Name, Operand A, Operand B);

  /// Unary operation (fsqrt); returns the op index.
  unsigned unop(Opcode Op, std::string Name, Operand A);

  /// Sets the initial-value function of a loop-carried def.
  void setInit(unsigned OpIx, double Init, double Step = 1.0);

  /// Rewires operand \p Which of op \p OpIx (used to close recurrences
  /// after their body has been emitted).
  void rewireOperand(unsigned OpIx, unsigned Which, Operand NewUse);

  unsigned numOps() const { return L.size(); }

  /// Validates and returns the loop (asserts on construction errors).
  Loop take();
};

} // namespace hcvliw

#endif // HCVLIW_IR_LOOPBUILDER_H
