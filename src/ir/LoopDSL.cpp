//===- ir/LoopDSL.cpp - Textual loop format --------------------------------===//

#include "ir/LoopDSL.h"
#include "support/StrUtil.h"

#include <cassert>
#include <map>

using namespace hcvliw;

namespace {

/// Operand spelled in the source, resolved after all defs are known.
struct PendingOperand {
  std::string Name;
  unsigned Distance = 0;
  bool IsImmediate = false;
  double Imm = 0;
};

struct PendingOp {
  Operation Op;
  std::vector<PendingOperand> Uses;
  unsigned Line = 0;
};

class Parser {
  std::vector<std::string> Lines;
  ParsedLoops Result;

  bool fail(unsigned Line, const std::string &Msg) {
    Result.Error = formatString("line %u: %s", Line + 1, Msg.c_str());
    Result.Loops.clear();
    return false;
  }

  /// Splits "k=v" into K/V; returns false if Tok has no '='.
  static bool splitKeyVal(const std::string &Tok, std::string &K,
                          std::string &V) {
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos)
      return false;
    K = Tok.substr(0, Eq);
    V = Tok.substr(Eq + 1);
    return true;
  }

  static PendingOperand parseOperandToken(const std::string &Tok) {
    PendingOperand P;
    if (!Tok.empty() && Tok[0] == '#') {
      P.IsImmediate = true;
      parseDouble(Tok.substr(1), P.Imm);
      return P;
    }
    size_t At = Tok.find('@');
    if (At == std::string::npos) {
      P.Name = Tok;
      return P;
    }
    P.Name = Tok.substr(0, At);
    int64_t D = 0;
    parseInt64(Tok.substr(At + 1), D);
    P.Distance = D < 0 ? 0 : static_cast<unsigned>(D);
    return P;
  }

  bool parseLoop(size_t &LineIx, Loop &L, std::vector<PendingOp> &Pending);
  bool resolve(Loop &L, std::vector<PendingOp> &Pending);

public:
  explicit Parser(std::string_view Text) {
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t End = Text.find('\n', Start);
      if (End == std::string_view::npos)
        End = Text.size();
      std::string Line(Text.substr(Start, End - Start));
      // '#' introduces a comment only at the start of a line (and when
      // followed by whitespace mid-line); '#1.5' spells an immediate.
      std::string_view Lead = trimString(Line);
      if (!Lead.empty() && Lead[0] == '#' &&
          (Lead.size() == 1 || !std::isdigit(static_cast<unsigned char>(
                                   Lead[1])))) {
        Line.clear();
      } else {
        for (size_t I = 0; I + 1 < Line.size(); ++I)
          if (Line[I] == '#' && I > 0 && Line[I - 1] == ' ' &&
              !std::isdigit(static_cast<unsigned char>(Line[I + 1]))) {
            Line.resize(I);
            break;
          }
      }
      Lines.push_back(Line);
      Start = End + 1;
      if (End == Text.size())
        break;
    }
  }

  ParsedLoops run();
};

bool Parser::parseLoop(size_t &LineIx, Loop &L,
                       std::vector<PendingOp> &Pending) {
  auto Header = splitString(Lines[LineIx]);
  assert(Header[0] == "loop");
  if (Header.size() < 2)
    return fail(LineIx, "loop without a name");
  L.Name = Header[1];
  for (size_t T = 2; T < Header.size(); ++T) {
    std::string K, V;
    if (!splitKeyVal(Header[T], K, V))
      return fail(LineIx, "expected key=value, got '" + Header[T] + "'");
    if (K == "trip") {
      int64_t N = 0;
      if (!parseInt64(V, N) || N <= 0)
        return fail(LineIx, "bad trip count '" + V + "'");
      L.TripCount = static_cast<uint64_t>(N);
    } else if (K == "weight") {
      double W = 0;
      if (!parseDouble(V, W) || W <= 0)
        return fail(LineIx, "bad weight '" + V + "'");
      L.Weight = W;
    } else {
      return fail(LineIx, "unknown loop attribute '" + K + "'");
    }
  }
  ++LineIx;

  for (; LineIx < Lines.size(); ++LineIx) {
    auto Tokens = splitString(Lines[LineIx]);
    if (Tokens.empty())
      continue;
    if (Tokens[0] == "endloop")
      return true;
    if (Tokens[0] == "loop")
      return fail(LineIx, "nested 'loop' (missing endloop?)");

    if (Tokens[0] == "arrays") {
      for (size_t T = 1; T < Tokens.size(); ++T)
        L.Arrays.push_back(Tokens[T]);
      continue;
    }
    if (Tokens[0] == "livein") {
      // livein NAME = VALUE
      if (Tokens.size() != 4 || Tokens[2] != "=")
        return fail(LineIx, "expected: livein NAME = VALUE");
      double V = 0;
      if (!parseDouble(Tokens[3], V))
        return fail(LineIx, "bad live-in value '" + Tokens[3] + "'");
      L.LiveIns.push_back({Tokens[1], V});
      continue;
    }

    PendingOp P;
    P.Line = static_cast<unsigned>(LineIx);
    size_t T = 0;
    if (Tokens[0] == "store") {
      P.Op.Op = Opcode::Store;
      T = 1;
    } else {
      if (Tokens.size() < 3 || Tokens[1] != "=")
        return fail(LineIx, "expected: NAME = OPCODE ...");
      P.Op.Name = Tokens[0];
      auto Op = parseOpcode(Tokens[2]);
      if (!Op)
        return fail(LineIx, "unknown opcode '" + Tokens[2] + "'");
      P.Op.Op = *Op;
      T = 3;
    }

    // Memory ops name their array first.
    if (isMemoryOpcode(P.Op.Op)) {
      if (T >= Tokens.size())
        return fail(LineIx, "memory op without an array");
      const std::string &ArrayName = Tokens[T++];
      int Ix = -1;
      for (unsigned A = 0; A < L.Arrays.size(); ++A)
        if (L.Arrays[A] == ArrayName)
          Ix = static_cast<int>(A);
      if (Ix < 0)
        return fail(LineIx, "unknown array '" + ArrayName + "'");
      P.Op.Array = Ix;
    }

    // Value operands, then trailing key=value attributes.
    unsigned WantOperands = numOperandsOf(P.Op.Op);
    for (; T < Tokens.size(); ++T) {
      std::string K, V;
      if (splitKeyVal(Tokens[T], K, V)) {
        int64_t IV = 0;
        double DV = 0;
        if (K == "off" && parseInt64(V, IV))
          P.Op.Offset = IV;
        else if (K == "scale" && parseInt64(V, IV) && IV > 0)
          P.Op.IndexScale = IV;
        else if (K == "init" && parseDouble(V, DV))
          P.Op.InitValue = DV;
        else if (K == "step" && parseDouble(V, DV))
          P.Op.InitStep = DV;
        else
          return fail(LineIx, "bad attribute '" + Tokens[T] + "'");
        continue;
      }
      P.Uses.push_back(parseOperandToken(Tokens[T]));
    }
    if (P.Uses.size() != WantOperands)
      return fail(LineIx,
                  formatString("opcode '%s' wants %u operands, got %zu",
                               opcodeName(P.Op.Op), WantOperands,
                               P.Uses.size()));
    Pending.push_back(std::move(P));
  }
  return fail(Lines.size() - 1, "missing endloop");
}

bool Parser::resolve(Loop &L, std::vector<PendingOp> &Pending) {
  std::map<std::string, unsigned> DefIx;
  for (unsigned I = 0; I < Pending.size(); ++I) {
    const Operation &O = Pending[I].Op;
    if (!O.definesValue())
      continue;
    if (DefIx.count(O.Name))
      return fail(Pending[I].Line, "redefinition of '" + O.Name + "'");
    if (L.findLiveIn(O.Name) >= 0)
      return fail(Pending[I].Line,
                  "'" + O.Name + "' shadows a live-in");
    DefIx[O.Name] = I;
  }
  for (auto &P : Pending) {
    for (const auto &U : P.Uses) {
      if (U.IsImmediate) {
        P.Op.Operands.push_back(Operand::imm(U.Imm));
        continue;
      }
      auto It = DefIx.find(U.Name);
      if (It != DefIx.end()) {
        P.Op.Operands.push_back(Operand::def(It->second, U.Distance));
        continue;
      }
      int LI = L.findLiveIn(U.Name);
      if (LI >= 0 && U.Distance == 0) {
        P.Op.Operands.push_back(Operand::liveIn(static_cast<unsigned>(LI)));
        continue;
      }
      return fail(P.Line, "unknown value '" + U.Name + "'");
    }
    L.Ops.push_back(std::move(P.Op));
  }
  std::string Err = L.validate();
  if (!Err.empty())
    return fail(Pending.empty() ? 0 : Pending.front().Line,
                "invalid loop: " + Err);
  return true;
}

ParsedLoops Parser::run() {
  for (size_t LineIx = 0; LineIx < Lines.size();) {
    auto Tokens = splitString(Lines[LineIx]);
    if (Tokens.empty()) {
      ++LineIx;
      continue;
    }
    if (Tokens[0] != "loop") {
      fail(LineIx, "expected 'loop', got '" + Tokens[0] + "'");
      return Result;
    }
    Loop L;
    std::vector<PendingOp> Pending;
    if (!parseLoop(LineIx, L, Pending))
      return Result;
    if (!resolve(L, Pending))
      return Result;
    Result.Loops.push_back(std::move(L));
    ++LineIx; // past endloop
  }
  return Result;
}

} // namespace

ParsedLoops hcvliw::parseLoops(std::string_view Text) {
  return Parser(Text).run();
}

Loop hcvliw::parseSingleLoop(std::string_view Text) {
  ParsedLoops P = parseLoops(Text);
  assert(P.ok() && "parseSingleLoop: parse error");
  assert(P.Loops.size() == 1 && "parseSingleLoop: expected one loop");
  return P.Loops.front();
}
