//===- ir/LoopDSL.h - Textual loop format -----------------------*- C++ -*-===//
///
/// \file
/// A small textual format for writing loops in tests, examples and the
/// synthetic workload suite. Grammar (one statement per line, '#' starts
/// a comment):
///
/// \code
///   loop NAME [trip=N] [weight=W]
///     arrays A B S
///     livein c = 2.5
///     t1 = load A [off=K] [scale=K]
///     m  = fmul t1 c
///     s  = fadd s@1 m init=0 step=1    # s@1: value of s one iter ago
///     store S s [off=K] [scale=K]
///   endloop
/// \endcode
///
/// Operands are a defined name (`t1`), a loop-carried use (`s@2`), a
/// live-in name, or an immediate (`#1.5`). A `#` followed by a digit is
/// always an immediate; any other `#` at line start or after a space
/// starts a comment. Several loops may appear in one string. Parsing
/// never throws; errors carry line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_LOOPDSL_H
#define HCVLIW_IR_LOOPDSL_H

#include "ir/Loop.h"

#include <string>
#include <string_view>
#include <vector>

namespace hcvliw {

struct ParsedLoops {
  std::vector<Loop> Loops;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses every loop in \p Text. On error, ParsedLoops::Error holds a
/// "line N: ..." diagnostic and Loops is empty.
ParsedLoops parseLoops(std::string_view Text);

/// Convenience for tests: parses exactly one loop; asserts on failure.
Loop parseSingleLoop(std::string_view Text);

} // namespace hcvliw

#endif // HCVLIW_IR_LOOPDSL_H
