//===- ir/MinDist.cpp - Modulo-scheduling distance matrix ------------------===//

#include "ir/MinDist.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

MinDistMatrix MinDistMatrix::compute(const DDG &G,
                                     const std::vector<unsigned> &NodeLatency,
                                     int64_t II) {
  MinDistMatrix M;
  M.N = G.size();
  M.Data.assign(static_cast<size_t>(M.N) * M.N, NegInf);

  for (const auto &E : G.edges()) {
    int64_t W = static_cast<int64_t>(edgeLatency(E, NodeLatency)) -
                II * static_cast<int64_t>(E.Distance);
    int64_t &Cell = M.Data[E.Src * M.N + E.Dst];
    Cell = std::max(Cell, W);
  }

  for (unsigned K = 0; K < M.N; ++K)
    for (unsigned I = 0; I < M.N; ++I) {
      int64_t IK = M.Data[I * M.N + K];
      if (IK == NegInf)
        continue;
      for (unsigned J = 0; J < M.N; ++J) {
        int64_t KJ = M.Data[K * M.N + J];
        if (KJ == NegInf)
          continue;
        int64_t &Cell = M.Data[I * M.N + J];
        Cell = std::max(Cell, IK + KJ);
      }
    }

  for (unsigned I = 0; I < M.N; ++I)
    assert(M.at(I, I) <= 0 && "II below recMII: positive self-distance");
  return M;
}

int64_t MinDistMatrix::height(unsigned I) const {
  int64_t H = 0;
  for (unsigned J = 0; J < N; ++J)
    if (at(I, J) != NegInf)
      H = std::max(H, at(I, J));
  return H;
}

int64_t MinDistMatrix::slack(unsigned I, unsigned J, int64_t II) const {
  int64_t Forward = at(I, J) == NegInf ? 0 : at(I, J);
  int64_t Backward = at(J, I) == NegInf ? 0 : at(J, I);
  return II - Forward - Backward;
}
