//===- ir/MinDist.cpp - Modulo-scheduling distance matrix ------------------===//

#include "ir/MinDist.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

MinDistMatrix MinDistMatrix::compute(const DDG &G,
                                     const std::vector<unsigned> &NodeLatency,
                                     int64_t II) {
  MinDistMatrix M;
  computeInto(M, G, NodeLatency, II);
  return M;
}

void MinDistMatrix::computeInto(MinDistMatrix &M, const DDG &G,
                                const std::vector<unsigned> &NodeLatency,
                                int64_t II) {
  M.N = G.size();
  // assign reuses the scratch matrix's existing allocation.
  M.Data.assign(static_cast<size_t>(M.N) * M.N, NegInf);

  // Rows with no outgoing path contribute nothing to any relaxation:
  // track row non-emptiness so the Floyd-Kleene pivot skips them whole
  // (sink-heavy DDGs have many such rows).
  std::vector<char> RowNonEmpty(M.N, 0);
  for (const auto &E : G.edges()) {
    int64_t W = static_cast<int64_t>(edgeLatency(E, NodeLatency)) -
                II * static_cast<int64_t>(E.Distance);
    int64_t &Cell = M.Data[E.Src * M.N + E.Dst];
    Cell = std::max(Cell, W);
    RowNonEmpty[E.Src] = 1;
  }

  for (unsigned K = 0; K < M.N; ++K) {
    if (!RowNonEmpty[K])
      continue; // empty pivot row relaxes nothing
    for (unsigned I = 0; I < M.N; ++I) {
      int64_t IK = M.Data[I * M.N + K];
      if (IK == NegInf)
        continue;
      for (unsigned J = 0; J < M.N; ++J) {
        int64_t KJ = M.Data[K * M.N + J];
        if (KJ == NegInf)
          continue;
        int64_t &Cell = M.Data[I * M.N + J];
        Cell = std::max(Cell, IK + KJ);
      }
      RowNonEmpty[I] = 1; // row I gained (or already had) entries
    }
  }

  for (unsigned I = 0; I < M.N; ++I)
    assert(M.at(I, I) <= 0 && "II below recMII: positive self-distance");
}

int64_t MinDistMatrix::height(unsigned I) const {
  int64_t H = 0;
  for (unsigned J = 0; J < N; ++J)
    if (at(I, J) != NegInf)
      H = std::max(H, at(I, J));
  return H;
}

int64_t MinDistMatrix::slack(unsigned I, unsigned J, int64_t II) const {
  int64_t Forward = at(I, J) == NegInf ? 0 : at(I, J);
  int64_t Backward = at(J, I) == NegInf ? 0 : at(J, I);
  return II - Forward - Backward;
}
