//===- ir/MinDist.h - Modulo-scheduling distance matrix ---------*- C++ -*-===//
///
/// \file
/// The classic MinDist matrix of modulo scheduling: for a candidate II,
/// MinDist(i, j) is the longest-path weight from i to j under edge
/// weights latency(e) - II * distance(e). If i and j are both scheduled,
/// start(j) - start(i) >= MinDist(i, j) must hold. The scheduler uses it
/// for priority heights and slack; the partitioner for coarsening order.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_MINDIST_H
#define HCVLIW_IR_MINDIST_H

#include "ir/DDG.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class MinDistMatrix {
  unsigned N = 0;
  std::vector<int64_t> Data; // row-major, NegInf when unreachable

public:
  static constexpr int64_t NegInf = INT64_MIN / 4;

  /// Floyd-Warshall longest paths; \p II must be >= recMII so that no
  /// positive self-distance exists (asserted).
  static MinDistMatrix compute(const DDG &G,
                               const std::vector<unsigned> &NodeLatency,
                               int64_t II);

  /// In-place form of compute: reuses \p M's O(N^2) buffer (callers
  /// recomputing per II attempt pass one scratch matrix instead of
  /// reallocating every time).
  static void computeInto(MinDistMatrix &M, const DDG &G,
                          const std::vector<unsigned> &NodeLatency,
                          int64_t II);

  unsigned size() const { return N; }
  int64_t at(unsigned I, unsigned J) const { return Data[I * N + J]; }
  bool reaches(unsigned I, unsigned J) const {
    return at(I, J) != NegInf;
  }

  /// Longest-path height of node I over all reachable J (>= 0).
  int64_t height(unsigned I) const;

  /// Slack between I and J given their schedule-time difference bound:
  /// II - MinDist(i,j) - MinDist(j,i) style freedom; NegInf-aware.
  int64_t slack(unsigned I, unsigned J, int64_t II) const;
};

} // namespace hcvliw

#endif // HCVLIW_IR_MINDIST_H
