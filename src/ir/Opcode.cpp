//===- ir/Opcode.cpp - Operation opcodes and classes ----------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace hcvliw;

OpCategory hcvliw::categoryOf(Opcode Op) {
  switch (Op) {
  case Opcode::Load:
  case Opcode::Store:
    return OpCategory::Memory;
  case Opcode::IntAdd:
  case Opcode::IntSub:
  case Opcode::FAdd:
  case Opcode::FSub:
    return OpCategory::Arith;
  case Opcode::IntMul:
  case Opcode::FMul:
    return OpCategory::Mul;
  case Opcode::IntDiv:
  case Opcode::FDiv:
  case Opcode::FSqrt:
    return OpCategory::Div;
  case Opcode::Copy:
    return OpCategory::Copy;
  }
  assert(false && "unknown opcode");
  return OpCategory::Arith;
}

bool hcvliw::isFloatOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FSqrt:
    return true;
  default:
    return false;
  }
}

bool hcvliw::isMemoryOpcode(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

bool hcvliw::isStoreOpcode(Opcode Op) { return Op == Opcode::Store; }

FUKind hcvliw::fuKindOf(Opcode Op) {
  if (isMemoryOpcode(Op))
    return FUKind::MemPort;
  if (Op == Opcode::Copy)
    return FUKind::Bus;
  return isFloatOpcode(Op) ? FUKind::FpFU : FUKind::IntFU;
}

const char *hcvliw::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::IntAdd:
    return "add";
  case Opcode::IntSub:
    return "sub";
  case Opcode::IntMul:
    return "mul";
  case Opcode::IntDiv:
    return "div";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FSqrt:
    return "fsqrt";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Copy:
    return "copy";
  }
  assert(false && "unknown opcode");
  return "?";
}

const char *hcvliw::fuKindName(FUKind K) {
  switch (K) {
  case FUKind::IntFU:
    return "INT";
  case FUKind::FpFU:
    return "FP";
  case FUKind::MemPort:
    return "MEM";
  case FUKind::Bus:
    return "BUS";
  }
  assert(false && "unknown FU kind");
  return "?";
}

std::optional<Opcode> hcvliw::parseOpcode(std::string_view Name) {
  static const struct {
    const char *Spelling;
    Opcode Op;
  } Table[] = {
      {"add", Opcode::IntAdd},   {"sub", Opcode::IntSub},
      {"mul", Opcode::IntMul},   {"div", Opcode::IntDiv},
      {"fadd", Opcode::FAdd},    {"fsub", Opcode::FSub},
      {"fmul", Opcode::FMul},    {"fdiv", Opcode::FDiv},
      {"fsqrt", Opcode::FSqrt},  {"load", Opcode::Load},
      {"store", Opcode::Store},
  };
  for (const auto &Row : Table)
    if (Name == Row.Spelling)
      return Row.Op;
  return std::nullopt;
}

unsigned hcvliw::numOperandsOf(Opcode Op) {
  switch (Op) {
  case Opcode::Load:
    return 0;
  case Opcode::Store:
  case Opcode::FSqrt:
  case Opcode::Copy:
    return 1;
  default:
    return 2;
  }
}
