//===- ir/Opcode.h - Operation opcodes and classes --------------*- C++ -*-===//
///
/// \file
/// The operation set of the modeled VLIW ISA. The paper's Table 1 groups
/// operations into Memory / Arithmetic / Multiply / Division-sqrt rows,
/// split into integer and floating-point columns; \c OpCategory mirrors
/// those rows and \c isFloatOpcode the columns.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_OPCODE_H
#define HCVLIW_IR_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace hcvliw {

/// Concrete operations the synthetic loops are written in.
enum class Opcode : uint8_t {
  IntAdd,
  IntSub,
  IntMul,
  IntDiv,
  FAdd,
  FSub,
  FMul,
  FDiv,
  FSqrt,
  Load,
  Store,
  /// Inter-cluster register copy; only the scheduler materializes these.
  Copy,
};

/// Table 1 row of an opcode.
enum class OpCategory : uint8_t { Memory, Arith, Mul, Div, Copy };

/// Functional-unit kinds a cluster provides (plus the bus for copies).
enum class FUKind : uint8_t { IntFU, FpFU, MemPort, Bus };

OpCategory categoryOf(Opcode Op);
bool isFloatOpcode(Opcode Op);
bool isMemoryOpcode(Opcode Op);
bool isStoreOpcode(Opcode Op);

/// Functional unit that executes \p Op inside a cluster; Copy maps to Bus.
FUKind fuKindOf(Opcode Op);

const char *opcodeName(Opcode Op);
const char *fuKindName(FUKind K);

/// Parses the DSL spelling ("fadd", "load", ...). std::nullopt when
/// unknown; "copy" is rejected because copies cannot be written by hand.
std::optional<Opcode> parseOpcode(std::string_view Name);

/// Number of FUKind enumerators (for fixed-size per-kind arrays).
inline constexpr unsigned NumFUKinds = 4;

/// Number of value operands an opcode consumes (Load: 0, Store: 1,
/// FSqrt: 1, binary arithmetic: 2).
unsigned numOperandsOf(Opcode Op);

} // namespace hcvliw

#endif // HCVLIW_IR_OPCODE_H
