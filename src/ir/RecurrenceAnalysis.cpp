//===- ir/RecurrenceAnalysis.cpp - Recurrences and recMII ------------------===//

#include "ir/RecurrenceAnalysis.h"
#include "support/Graph.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

// True iff some cycle of Edges has positive weight under latency - II*dist.
static bool
positiveCycleAt(int64_t II, unsigned NumNodes,
                const std::vector<DDG::Edge> &Edges,
                const std::vector<unsigned> &NodeLatency) {
  std::vector<WeightedEdge<int64_t>> W;
  W.reserve(Edges.size());
  for (const auto &E : Edges)
    W.push_back({E.Src, E.Dst,
                 static_cast<int64_t>(edgeLatency(E, NodeLatency)) -
                     II * static_cast<int64_t>(E.Distance)});
  return hasPositiveCycle<int64_t>(NumNodes, W);
}

// recMII of an edge subset over NumNodes nodes (node ids must be dense).
static int64_t recMIIOfEdges(unsigned NumNodes,
                             const std::vector<DDG::Edge> &Edges,
                             const std::vector<unsigned> &NodeLatency) {
  if (Edges.empty())
    return 0;
  int64_t SumLat = 0;
  for (const auto &E : Edges)
    SumLat += edgeLatency(E, NodeLatency);
  if (!positiveCycleAt(0, NumNodes, Edges, NodeLatency))
    return 0; // acyclic (or only non-positive cycles)

  // Binary search the least II in [1, SumLat] with no positive cycle.
  // Any cycle has distance >= 1, so II = SumLat is always sufficient.
  int64_t Lo = 1, Hi = SumLat;
  while (Lo < Hi) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    if (positiveCycleAt(Mid, NumNodes, Edges, NodeLatency))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

int64_t hcvliw::computeRecMII(const DDG &G,
                              const std::vector<unsigned> &NodeLatency) {
  return recMIIOfEdges(G.size(), G.edges(), NodeLatency);
}

RecurrenceInfo
hcvliw::analyzeRecurrences(const DDG &G,
                           const std::vector<unsigned> &NodeLatency) {
  assert(NodeLatency.size() == G.size() && "latency vector size mismatch");
  RecurrenceInfo Info;
  Info.RecurrenceOf.assign(G.size(), -1);

  SCCResult SCCs = computeSCCs(G.size(), G.adjacency());
  auto Members = SCCs.members();

  for (const auto &Nodes : Members) {
    bool HasSelfEdge = false;
    if (Nodes.size() == 1)
      for (unsigned EIx : G.outEdges(Nodes[0]))
        if (G.edge(EIx).Dst == Nodes[0])
          HasSelfEdge = true;
    if (Nodes.size() == 1 && !HasSelfEdge)
      continue;

    // Re-index the SCC's nodes densely and collect internal edges.
    std::vector<int> Local(G.size(), -1);
    for (unsigned I = 0; I < Nodes.size(); ++I)
      Local[Nodes[I]] = static_cast<int>(I);
    std::vector<DDG::Edge> Internal;
    std::vector<unsigned> LocalLat(Nodes.size());
    for (unsigned I = 0; I < Nodes.size(); ++I)
      LocalLat[I] = NodeLatency[Nodes[I]];
    for (unsigned N : Nodes)
      for (unsigned EIx : G.outEdges(N)) {
        const DDG::Edge &E = G.edge(EIx);
        if (Local[E.Dst] < 0)
          continue;
        Internal.push_back({static_cast<unsigned>(Local[E.Src]),
                            static_cast<unsigned>(Local[E.Dst]), E.Distance,
                            E.Kind});
      }

    Recurrence R;
    R.Nodes = Nodes;
    R.RecMII = recMIIOfEdges(static_cast<unsigned>(Nodes.size()), Internal,
                             LocalLat);
    assert(R.RecMII >= 1 && "SCC with a cycle must have recMII >= 1");
    Info.Recurrences.push_back(std::move(R));
  }

  // Sort recurrences by criticality (descending recMII) and fill the
  // per-node map afterwards so ids match the sorted order.
  std::sort(Info.Recurrences.begin(), Info.Recurrences.end(),
            [](const Recurrence &A, const Recurrence &B) {
              if (A.RecMII != B.RecMII)
                return A.RecMII > B.RecMII;
              return A.Nodes.front() < B.Nodes.front();
            });
  for (unsigned R = 0; R < Info.Recurrences.size(); ++R)
    for (unsigned N : Info.Recurrences[R].Nodes)
      Info.RecurrenceOf[N] = static_cast<int>(R);
  for (const auto &R : Info.Recurrences)
    Info.RecMII = std::max(Info.RecMII, R.RecMII);
  return Info;
}
