//===- ir/RecurrenceAnalysis.h - Recurrences and recMII ---------*- C++ -*-===//
///
/// \file
/// Recurrence (dependence-cycle) analysis of a DDG. Recurrences are the
/// strongly connected components of the graph; each contributes a
/// recurrence-constrained lower bound on the initiation interval:
///
///   recMII(R) = min integer II such that no cycle in R has
///               sum(latency) - II * sum(distance) > 0.
///
/// The paper's heterogeneous extension (Section 2.2) multiplies recMII by
/// the fastest cluster's cycle time to obtain recMIT; the partitioner
/// (Section 4.1.1) pre-places the most critical recurrences in the
/// slowest cluster whose II still accommodates them.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_RECURRENCEANALYSIS_H
#define HCVLIW_IR_RECURRENCEANALYSIS_H

#include "ir/DDG.h"

#include <vector>

namespace hcvliw {

/// One recurrence: an SCC of the DDG with at least one cycle.
struct Recurrence {
  std::vector<unsigned> Nodes;
  /// Minimum II (cycles) imposed by this recurrence alone.
  int64_t RecMII = 0;
};

struct RecurrenceInfo {
  std::vector<Recurrence> Recurrences;
  /// max over recurrences (0 when the loop has no cycles).
  int64_t RecMII = 0;
  /// Recurrence id per node, or -1 for nodes outside every recurrence.
  std::vector<int> RecurrenceOf;
};

/// Analyzes \p G with per-node latencies \p NodeLatency (cycles).
RecurrenceInfo analyzeRecurrences(const DDG &G,
                                  const std::vector<unsigned> &NodeLatency);

/// Minimum integer II such that the *whole graph* (restricted to the
/// given nodes, or all nodes when empty) has no positive cycle under
/// weights latency(e) - II * distance(e). Returns 0 for acyclic graphs.
int64_t computeRecMII(const DDG &G, const std::vector<unsigned> &NodeLatency);

} // namespace hcvliw

#endif // HCVLIW_IR_RECURRENCEANALYSIS_H
