//===- ir/Unroll.cpp - Loop unrolling ---------------------------------------===//

#include "ir/Unroll.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace hcvliw;

Loop hcvliw::unrollLoop(const Loop &L, unsigned Factor) {
  assert(Factor >= 1 && "unroll factor must be positive");
  assert(L.validate().empty() && "unrolling an invalid loop");
  if (Factor == 1)
    return L;

  Loop U;
  U.Name = L.Name + formatString(".x%u", Factor);
  U.TripCount = L.TripCount / Factor;
  if (U.TripCount == 0)
    U.TripCount = 1;
  U.Weight = L.Weight;
  U.LiveIns = L.LiveIns;
  U.Arrays = L.Arrays;

  unsigned N = L.size();
  U.Ops.reserve(static_cast<size_t>(N) * Factor);

  // Copy c of original op i gets index c*N + i, preserving program order
  // within each copy and across copies (copy 0 first).
  for (unsigned C = 0; C < Factor; ++C) {
    for (unsigned I = 0; I < N; ++I) {
      Operation O = L.Ops[I];
      if (!O.Name.empty())
        O.Name = formatString("%s.%u", O.Name.c_str(), C);
      // Original iteration t = Factor*n + C executes as unrolled
      // iteration n; affine address Scale*t + Off becomes
      // (Scale*Factor)*n + (Scale*C + Off).
      if (isMemoryOpcode(O.Op)) {
        O.Offset = O.IndexScale * static_cast<int64_t>(C) + O.Offset;
        O.IndexScale *= Factor;
      }
      // Initial-value function Init + Step*t becomes, at unrolled
      // iteration n < 0 standing for original iteration Factor*n + C:
      // (Init + Step*C) + (Step*Factor)*n.
      O.InitValue = O.InitValue + O.InitStep * static_cast<double>(C);
      O.InitStep = O.InitStep * static_cast<double>(Factor);

      // Remap operands: a use at distance d in copy C refers to original
      // iteration t - d = Factor*n + C - d, i.e. copy C' at unrolled
      // distance D with C - d = C' - Factor*D.
      for (Operand &Use : O.Operands) {
        if (Use.Kind != OperandKind::Def)
          continue;
        int64_t Shift = static_cast<int64_t>(C) -
                        static_cast<int64_t>(Use.Distance);
        int64_t CPrime = Shift % static_cast<int64_t>(Factor);
        if (CPrime < 0)
          CPrime += Factor;
        int64_t D = (CPrime - Shift) / static_cast<int64_t>(Factor);
        assert(D >= 0 && "unroll produced negative distance");
        Use.Index = static_cast<unsigned>(CPrime) * N + Use.Index;
        Use.Distance = static_cast<unsigned>(D);
      }
      U.Ops.push_back(std::move(O));
    }
  }

  assert(U.validate().empty() && "unroll produced an invalid loop");
  return U;
}
