//===- ir/Unroll.h - Loop unrolling ------------------------------*- C++ -*-===//
///
/// \file
/// DDG-level loop unrolling. Section 5.3 of the paper proposes unrolling
/// to soften the IT increases caused by restricted frequency menus: the
/// MIT of an unrolled loop is multiplied by the unroll factor, so the
/// *relative* penalty of rounding the IT up to a synchronizable value
/// shrinks, and the factor can even be chosen so the resulting IT
/// synchronizes exactly.
///
/// Unrolling by U replicates the body U times; a use at distance d in
/// copy c becomes a use of copy (c - d) mod U at distance
/// ceil-adjusted (d - c + c') / U. Affine memory addresses and the affine
/// initial-value functions are closed under the transformation, so the
/// unrolled loop remains executable and the pipelined-vs-sequential
/// equivalence tests keep working.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_IR_UNROLL_H
#define HCVLIW_IR_UNROLL_H

#include "ir/Loop.h"

namespace hcvliw {

/// Unrolls \p L by \p Factor (>= 1). The unrolled trip count is
/// TripCount / Factor; callers that need exact functional equivalence
/// should compare against Factor * (TripCount / Factor) sequential
/// iterations (the remainder iterations are dropped, as a real compiler
/// would peel them into an epilogue).
Loop unrollLoop(const Loop &L, unsigned Factor);

} // namespace hcvliw

#endif // HCVLIW_IR_UNROLL_H
