//===- machine/IsaTable.cpp - Table 1: latency and energy -------------------===//

#include "machine/IsaTable.h"

#include <cassert>

using namespace hcvliw;

IsaTable::IsaTable() {
  set(OpCategory::Memory, /*IsFloat=*/false, {2, 1.0});
  set(OpCategory::Memory, /*IsFloat=*/true, {2, 1.0});
  set(OpCategory::Arith, /*IsFloat=*/false, {1, 1.0});
  set(OpCategory::Arith, /*IsFloat=*/true, {3, 1.2});
  set(OpCategory::Mul, /*IsFloat=*/false, {2, 1.1});
  set(OpCategory::Mul, /*IsFloat=*/true, {6, 1.5});
  set(OpCategory::Div, /*IsFloat=*/false, {6, 1.4});
  set(OpCategory::Div, /*IsFloat=*/true, {18, 2.0});
}

LatencyEnergy IsaTable::get(Opcode Op) const {
  OpCategory Cat = categoryOf(Op);
  if (Cat == OpCategory::Copy) {
    // Copies execute on the bus; their energy is charged through the
    // communication term of the energy model, not per-instruction.
    return {1, 0.0};
  }
  return Table[static_cast<unsigned>(Cat)][isFloatOpcode(Op) ? 1 : 0];
}

void IsaTable::set(OpCategory Cat, bool IsFloat, LatencyEnergy LE) {
  assert(Cat != OpCategory::Copy && "copy latency is fixed");
  assert(LE.Latency >= 1 && "zero-latency operations unsupported");
  Table[static_cast<unsigned>(Cat)][IsFloat ? 1 : 0] = LE;
}

std::vector<unsigned> IsaTable::nodeLatencies(const Loop &L) const {
  std::vector<unsigned> Lat;
  nodeLatenciesInto(Lat, L);
  return Lat;
}

void IsaTable::nodeLatenciesInto(std::vector<unsigned> &Lat,
                                 const Loop &L) const {
  Lat.resize(L.size());
  for (unsigned I = 0; I < L.size(); ++I)
    Lat[I] = latency(L.Ops[I].Op);
}

double IsaTable::meanInstructionEnergy(const Loop &L) const {
  if (L.Ops.empty())
    return 1.0;
  double Sum = 0;
  for (const Operation &O : L.Ops)
    Sum += energy(O.Op);
  return Sum / static_cast<double>(L.Ops.size());
}
