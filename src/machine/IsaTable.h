//===- machine/IsaTable.h - Table 1: latency and energy ---------*- C++ -*-===//
///
/// \file
/// The paper's Table 1: per instruction category (memory, arithmetic,
/// multiply, division/modulo/sqrt) and type (integer / floating point),
/// the latency in cycles and the average energy of one execution,
/// relative to an integer add.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MACHINE_ISATABLE_H
#define HCVLIW_MACHINE_ISATABLE_H

#include "ir/Loop.h"
#include "ir/Opcode.h"

#include <vector>

namespace hcvliw {

struct LatencyEnergy {
  unsigned Latency = 1; ///< cycles, frequency-independent (Section 3.1.1)
  double Energy = 1.0;  ///< relative to one integer add
};

/// Latency/energy lookup per opcode; defaults to the paper's Table 1.
class IsaTable {
  // Indexed by [category][isFloat].
  LatencyEnergy Table[4][2];

public:
  /// Constructs the paper's Table 1:
  ///   Memory      INT 2/1.0   FP 2/1.0
  ///   Arithmetic  INT 1/1.0   FP 3/1.2
  ///   Multiply    INT 2/1.1   FP 6/1.5
  ///   Div/sqrt    INT 6/1.4   FP 18/2.0
  IsaTable();

  LatencyEnergy get(Opcode Op) const;
  unsigned latency(Opcode Op) const { return get(Op).Latency; }
  double energy(Opcode Op) const { return get(Op).Energy; }

  void set(OpCategory Cat, bool IsFloat, LatencyEnergy LE);

  /// Latency of every operation of \p L, in program order; the vector
  /// the DDG analyses consume.
  std::vector<unsigned> nodeLatencies(const Loop &L) const;

  /// In-place form of nodeLatencies: reuses \p Lat's buffer (the
  /// per-loop scheduling chain calls this once per Figure 5 run).
  void nodeLatenciesInto(std::vector<unsigned> &Lat, const Loop &L) const;

  /// Mean relative energy of one executed instruction of \p L (used to
  /// weight the per-instruction unit energy of the Section 3.1 model).
  double meanInstructionEnergy(const Loop &L) const;
};

} // namespace hcvliw

#endif // HCVLIW_MACHINE_ISATABLE_H
