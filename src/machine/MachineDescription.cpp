//===- machine/MachineDescription.cpp - Clustered VLIW model ----------------===//

#include "machine/MachineDescription.h"

#include <cassert>

using namespace hcvliw;

unsigned ClusterConfig::fuCount(FUKind K) const {
  switch (K) {
  case FUKind::IntFU:
    return IntFUs;
  case FUKind::FpFU:
    return FpFUs;
  case FUKind::MemPort:
    return MemPorts;
  case FUKind::Bus:
    return 0;
  }
  assert(false && "unknown FU kind");
  return 0;
}

MachineDescription MachineDescription::paperDefault(unsigned NumBuses,
                                                    unsigned NumClusters) {
  assert(NumClusters >= 1 && "machine needs at least one cluster");
  MachineDescription M;
  ClusterConfig C;
  C.IntFUs = 1;
  C.FpFUs = 1;
  C.MemPorts = 1;
  C.Registers = 64 / NumClusters;
  M.Clusters.assign(NumClusters, C);
  M.Buses = NumBuses;
  M.BusLatency = 1;
  return M;
}

unsigned MachineDescription::totalFUs(FUKind K) const {
  if (K == FUKind::Bus)
    return Buses;
  unsigned Total = 0;
  for (const auto &C : Clusters)
    Total += C.fuCount(K);
  return Total;
}

int64_t MachineDescription::computeResMII(const Loop &L) const {
  std::vector<unsigned> Counts = L.opCountsByFU();
  int64_t ResMII = 1;
  for (unsigned K = 0; K < NumFUKinds; ++K) {
    if (static_cast<FUKind>(K) == FUKind::Bus)
      continue;
    unsigned Units = totalFUs(static_cast<FUKind>(K));
    if (Counts[K] == 0)
      continue;
    assert(Units > 0 && "ops of a kind with no functional unit");
    int64_t Need = (Counts[K] + Units - 1) / Units;
    if (Need > ResMII)
      ResMII = Need;
  }
  return ResMII;
}
