//===- machine/MachineDescription.h - Clustered VLIW model ------*- C++ -*-===//
///
/// \file
/// Structural description of the clustered VLIW: per-cluster functional
/// units and registers, the inter-cluster register buses, the shared
/// always-hit memory hierarchy, and the reference operating point
/// (Section 5: 4 clusters x {1 INT FU, 1 FP FU, 1 memory port, 16 regs},
/// 1-cycle register buses, 1 GHz / 1 V / 0.25 V reference).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MACHINE_MACHINEDESCRIPTION_H
#define HCVLIW_MACHINE_MACHINEDESCRIPTION_H

#include "ir/DDG.h"
#include "machine/IsaTable.h"
#include "support/Rational.h"

#include <vector>

namespace hcvliw {

struct ClusterConfig {
  unsigned IntFUs = 1;
  unsigned FpFUs = 1;
  unsigned MemPorts = 1;
  unsigned Registers = 16;

  unsigned fuCount(FUKind K) const;
};

class MachineDescription {
public:
  std::vector<ClusterConfig> Clusters;
  unsigned Buses = 1;
  unsigned BusLatency = 1; ///< bus cycles per transfer

  IsaTable Isa;

  /// Reference homogeneous operating point (Section 5).
  Rational RefPeriodNs = Rational(1); ///< 1 GHz
  double RefVdd = 1.0;
  double RefVth = 0.25;

  /// The evaluation machine: \p NumClusters identical clusters with one
  /// FU of each kind and 64/NumClusters registers each, \p NumBuses
  /// 1-cycle register buses.
  static MachineDescription paperDefault(unsigned NumBuses = 1,
                                         unsigned NumClusters = 4);

  unsigned numClusters() const {
    return static_cast<unsigned>(Clusters.size());
  }

  /// Machine-wide FU count of a kind (Bus returns the bus count).
  unsigned totalFUs(FUKind K) const;

  /// Classic resource-constrained MII over the whole machine:
  /// max over FU kinds of ceil(ops(kind) / totalFUs(kind)). Buses are
  /// excluded (communications are not known before partitioning).
  int64_t computeResMII(const Loop &L) const;

  /// Reference frequency in GHz (1 / RefPeriodNs).
  Rational refFrequency() const { return RefPeriodNs.reciprocal(); }
};

} // namespace hcvliw

#endif // HCVLIW_MACHINE_MACHINEDESCRIPTION_H
