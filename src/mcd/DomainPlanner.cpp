//===- mcd/DomainPlanner.cpp - Per-domain (II, frequency) plans -------------===//

#include "mcd/DomainPlanner.h"

#include <cassert>

using namespace hcvliw;

DomainPlanner::DomainPlanner(const MachineDescription &M,
                             const HeteroConfig &C, const FrequencyMenu &Mn)
    : Machine(&M), Config(C), Menu(Mn) {
  assert(C.numClusters() == M.numClusters() &&
         "configuration does not match the machine");
}

static std::optional<DomainPlan> planDomain(const FrequencyMenu &Menu,
                                            const Rational &ITNs,
                                            const DomainOperatingPoint &P) {
  auto Sel = Menu.selectIIFreq(ITNs, P.fmaxGHz());
  if (!Sel)
    return std::nullopt;
  DomainPlan D;
  D.II = Sel->first;
  D.FreqGHz = Sel->second;
  D.PeriodNs = D.FreqGHz.reciprocal();
  return D;
}

bool DomainPlanner::planForITInto(MachinePlan &Plan,
                                  const Rational &ITNs) const {
  Plan.ITNs = ITNs;
  Plan.Clusters.clear();
  Plan.Clusters.reserve(Config.numClusters());
  for (const auto &C : Config.Clusters) {
    auto D = planDomain(Menu, ITNs, C);
    if (!D)
      return false;
    Plan.Clusters.push_back(*D);
  }
  auto B = planDomain(Menu, ITNs, Config.Icn);
  if (!B)
    return false;
  Plan.Bus = *B;
  auto M = planDomain(Menu, ITNs, Config.Cache);
  if (!M)
    return false;
  Plan.Cache = *M;
  return true;
}

std::optional<MachinePlan>
DomainPlanner::planForIT(const Rational &ITNs) const {
  MachinePlan Plan;
  if (!planForITInto(Plan, ITNs))
    return std::nullopt;
  return Plan;
}

Rational DomainPlanner::nextIT(const Rational &ITNs) const {
  Rational Best = Menu.nextIT(ITNs, Config.Clusters.front().fmaxGHz());
  for (unsigned C = 1; C < Config.numClusters(); ++C)
    Best = Rational::min(Best,
                         Menu.nextIT(ITNs, Config.Clusters[C].fmaxGHz()));
  Best = Rational::min(Best, Menu.nextIT(ITNs, Config.Icn.fmaxGHz()));
  Best = Rational::min(Best, Menu.nextIT(ITNs, Config.Cache.fmaxGHz()));
  assert(Best > ITNs && "nextIT must strictly increase the IT");
  return Best;
}

bool DomainPlanner::hasCapacity(const MachinePlan &Plan,
                                const std::vector<unsigned> &OpCounts) const {
  for (unsigned K = 0; K < NumFUKinds; ++K) {
    FUKind Kind = static_cast<FUKind>(K);
    if (Kind == FUKind::Bus || OpCounts[K] == 0)
      continue;
    int64_t Slots = 0;
    for (unsigned C = 0; C < Machine->numClusters(); ++C)
      Slots += Plan.Clusters[C].II *
               static_cast<int64_t>(Machine->Clusters[C].fuCount(Kind));
    if (Slots < static_cast<int64_t>(OpCounts[K]))
      return false;
  }
  return true;
}

Rational
DomainPlanner::computeMIT(int64_t RecMII,
                          const std::vector<unsigned> &OpCounts) const {
  // recMIT: the recurrence can at best run in the fastest cluster.
  Rational RecMIT = Rational(RecMII) * Config.fastestClusterPeriod();

  // resMIT: grow the IT until every FU kind has enough slots (and every
  // domain has a synchronizable (II, freq) pair). One reused probe plan
  // — this loop takes hundreds of one-slot steps on big loops.
  Rational IT = Rational::max(RecMIT, Config.fastestClusterPeriod());
  MachinePlan Probe;
  for (unsigned Guard = 0;; ++Guard) {
    assert(Guard < 100000 && "computeMIT failed to converge");
    if (planForITInto(Probe, IT) && hasCapacity(Probe, OpCounts))
      return IT;
    IT = nextIT(IT);
  }
}
