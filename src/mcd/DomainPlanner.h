//===- mcd/DomainPlanner.h - Per-domain (II, frequency) plans ----*- C++ -*-===//
///
/// \file
/// Implements the "Select IIs & freqs" box of the paper's Figure 5. For
/// a candidate initiation time IT, every clock domain (clusters, bus,
/// cache) receives an integer II and a running frequency II / IT drawn
/// from its frequency menu and bounded by the voltage-determined fmax:
///
///   II_X = IT * f_X,   f_X <= fmax_X.
///
/// When some domain admits no such pair the IT must be increased
/// ("synchronization problems"); nextIT() yields the smallest useful
/// increase. The minimum initiation time (MIT, Section 2.2) is the
/// larger of recMII * (fastest cluster cycle time) and the smallest IT
/// with enough functional-unit slots for the whole loop body.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MCD_DOMAINPLANNER_H
#define HCVLIW_MCD_DOMAINPLANNER_H

#include "machine/MachineDescription.h"
#include "mcd/FrequencyMenu.h"
#include "mcd/HeteroConfig.h"

#include <optional>
#include <vector>

namespace hcvliw {

/// One domain's schedule-time clocking for a specific loop.
struct DomainPlan {
  int64_t II = 1;            ///< slots per initiation time
  Rational FreqGHz;          ///< II / IT, <= the domain's fmax
  Rational PeriodNs;         ///< 1 / FreqGHz (the *running* period)
};

/// Clocking of the whole machine for one loop.
struct MachinePlan {
  Rational ITNs;
  std::vector<DomainPlan> Clusters;
  DomainPlan Bus;
  DomainPlan Cache;

  const DomainPlan &cluster(unsigned C) const { return Clusters[C]; }
};

class DomainPlanner {
  const MachineDescription *Machine;
  HeteroConfig Config;
  FrequencyMenu Menu;

public:
  DomainPlanner(const MachineDescription &M, const HeteroConfig &C,
                const FrequencyMenu &Menu);

  const HeteroConfig &config() const { return Config; }
  const FrequencyMenu &menu() const { return Menu; }

  /// (II, freq) for every domain at \p ITNs, or std::nullopt on a
  /// synchronization failure in any domain.
  std::optional<MachinePlan> planForIT(const Rational &ITNs) const;

  /// In-place form of planForIT: overwrites \p Plan (reusing its
  /// Clusters capacity) and returns false on a synchronization failure.
  /// computeMIT probes hundreds of candidate ITs on big loops, one slot
  /// at a time; this keeps that search allocation-free in steady state.
  bool planForITInto(MachinePlan &Plan, const Rational &ITNs) const;

  /// Smallest IT' > ITNs at which any domain gains a slot (the Figure 5
  /// "increase IT" step).
  Rational nextIT(const Rational &ITNs) const;

  /// MIT = max(recMIT, resMIT): \p RecMII in cycles and per-FU-kind
  /// operation counts of the loop (Loop::opCountsByFU).
  Rational computeMIT(int64_t RecMII,
                      const std::vector<unsigned> &OpCounts) const;

  /// True when every FU kind has enough slots across clusters for
  /// \p OpCounts under \p Plan.
  bool hasCapacity(const MachinePlan &Plan,
                   const std::vector<unsigned> &OpCounts) const;
};

} // namespace hcvliw

#endif // HCVLIW_MCD_DOMAINPLANNER_H
