//===- mcd/FrequencyMenu.cpp - Supported clock frequencies ------------------===//

#include "mcd/FrequencyMenu.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

FrequencyMenu FrequencyMenu::continuous() { return FrequencyMenu(); }

FrequencyMenu FrequencyMenu::uniform(unsigned K, Rational MaxGHz) {
  assert(K >= 1 && MaxGHz.isPositive() && "bad menu parameters");
  FrequencyMenu M;
  M.MenuKind = Kind::Absolute;
  M.Freqs.reserve(K);
  for (unsigned I = 1; I <= K; ++I)
    M.Freqs.push_back(MaxGHz * Rational(I, K));
  return M;
}

/// Ratios m/d in [1/2, 1], by increasing denominator, deduplicated:
/// 1, 1/2, 2/3, 3/4, 4/5, 3/5, 5/6, 6/7, 5/7, 4/7, 7/8, 5/8, ...
static std::vector<Rational> ratioLadder(unsigned K) {
  std::vector<Rational> Ratios;
  for (int64_t D = 1; Ratios.size() < K && D <= 64; ++D) {
    for (int64_t N = D; 2 * N >= D && Ratios.size() < K; --N) {
      Rational R(N, D);
      bool Seen = false;
      for (const Rational &Have : Ratios)
        if (Have == R)
          Seen = true;
      if (!Seen)
        Ratios.push_back(R);
    }
  }
  std::sort(Ratios.begin(), Ratios.end(),
            [](const Rational &A, const Rational &B) { return B < A; });
  return Ratios;
}

FrequencyMenu FrequencyMenu::dividerLadder(unsigned K, Rational MaxGHz) {
  assert(K >= 1 && MaxGHz.isPositive() && "bad menu parameters");
  FrequencyMenu M;
  M.MenuKind = Kind::Absolute;
  for (const Rational &R : ratioLadder(K))
    M.Freqs.push_back(MaxGHz * R);
  std::sort(M.Freqs.begin(), M.Freqs.end());
  return M;
}

FrequencyMenu FrequencyMenu::relativeLadder(unsigned K) {
  assert(K >= 1 && "bad menu parameters");
  FrequencyMenu M;
  M.MenuKind = Kind::Relative;
  M.Ratios = ratioLadder(K);
  return M;
}

std::optional<std::pair<int64_t, Rational>>
FrequencyMenu::selectIIFreq(const Rational &ITNs,
                            const Rational &FmaxGHz) const {
  assert(ITNs.isPositive() && FmaxGHz.isPositive() && "bad selection query");
  switch (MenuKind) {
  case Kind::Continuous: {
    int64_t II = (ITNs * FmaxGHz).floor();
    if (II < 1)
      return std::nullopt;
    return std::make_pair(II, Rational(II) / ITNs);
  }
  case Kind::Absolute:
    for (auto It = Freqs.rbegin(); It != Freqs.rend(); ++It) {
      if (*It > FmaxGHz)
        continue;
      Rational Slots = *It * ITNs;
      if (Slots.isInteger() && Slots.num() >= 1)
        return std::make_pair(Slots.num(), *It);
    }
    return std::nullopt;
  case Kind::Relative:
    for (const Rational &R : Ratios) {
      Rational F = FmaxGHz * R;
      Rational Slots = F * ITNs;
      if (Slots.isInteger() && Slots.num() >= 1)
        return std::make_pair(Slots.num(), F);
    }
    return std::nullopt;
  }
  return std::nullopt;
}

Rational FrequencyMenu::nextIT(const Rational &ITNs,
                               const Rational &FmaxGHz) const {
  assert(FmaxGHz.isPositive() && "bad frequency bound");
  auto nextFor = [&](const Rational &F) {
    int64_t II = (ITNs * F).floor();
    return Rational(II + 1) / F;
  };
  switch (MenuKind) {
  case Kind::Continuous:
    return nextFor(FmaxGHz);
  case Kind::Absolute: {
    bool Have = false;
    Rational Best;
    for (const Rational &F : Freqs) {
      if (F > FmaxGHz)
        continue;
      Rational Cand = nextFor(F);
      if (!Have || Cand < Best) {
        Best = Cand;
        Have = true;
      }
    }
    assert(Have && "frequency menu has no entry below the domain's fmax");
    return Best;
  }
  case Kind::Relative: {
    bool Have = false;
    Rational Best;
    for (const Rational &R : Ratios) {
      Rational Cand = nextFor(FmaxGHz * R);
      if (!Have || Cand < Best) {
        Best = Cand;
        Have = true;
      }
    }
    assert(Have && "empty relative frequency menu");
    return Best;
  }
  }
  return nextFor(FmaxGHz);
}
