//===- mcd/FrequencyMenu.h - Supported clock frequencies --------*- C++ -*-===//
///
/// \file
/// The set of frequencies the clock-generation network (Figure 2:
/// multipliers/dividers off one general clock) can deliver to a domain.
/// Figure 7 evaluates menus of any/16/8/4 frequencies; a discrete menu
/// forces the scheduler to pick an (II, frequency) pair with II = IT * f
/// integral and f in the menu, occasionally increasing the IT "due to
/// synchronization problems" (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MCD_FREQUENCYMENU_H
#define HCVLIW_MCD_FREQUENCYMENU_H

#include "support/Rational.h"

#include <optional>
#include <utility>
#include <vector>

namespace hcvliw {

class FrequencyMenu {
  enum class Kind : uint8_t {
    /// Any frequency is generable.
    Continuous,
    /// One machine-wide list of absolute frequencies (GHz).
    Absolute,
    /// Each domain's clock network derives K sub-frequencies of that
    /// domain's own maximum: f = fmax * ratio.
    Relative,
  };
  Kind MenuKind = Kind::Continuous;
  /// Absolute frequencies (GHz), sorted ascending (Kind::Absolute).
  std::vector<Rational> Freqs;
  /// Ratios in (0, 1], sorted descending (Kind::Relative).
  std::vector<Rational> Ratios;

public:
  /// Any frequency is generable ("any freq" series of Figure 7).
  static FrequencyMenu continuous();

  /// \p K frequencies uniformly spaced at multiples of MaxGHz / K
  /// (divider network off a MaxGHz general clock).
  static FrequencyMenu uniform(unsigned K, Rational MaxGHz);

  /// \p K frequencies MaxGHz * m/d with small denominators, added in
  /// increasing-denominator order (1, 1/2, 2/3, 3/4, 4/5, 3/5, 5/6,
  /// ...): the natural output of the Figure 2 multiplier/divider
  /// network shared by all domains.
  static FrequencyMenu dividerLadder(unsigned K, Rational MaxGHz);

  /// Per-domain ladder (the Figure 7 sweep): each domain supports
  /// \p K frequencies fmax * m/d with the same small-denominator ratio
  /// sequence, so a domain can always run at its own maximum and slows
  /// down in coarse steps to synchronize with a loop's IT.
  static FrequencyMenu relativeLadder(unsigned K);

  bool isContinuous() const { return MenuKind == Kind::Continuous; }
  const std::vector<Rational> &frequencies() const { return Freqs; }
  const std::vector<Rational> &ratios() const { return Ratios; }

  /// Best (II, frequency) pair for a domain with maximum frequency
  /// \p FmaxGHz at initiation time \p ITNs: the largest menu frequency
  /// f <= fmax with f * IT integral; II = f * IT. std::nullopt when no
  /// pair exists (a synchronization failure; the caller must increase
  /// the IT).
  std::optional<std::pair<int64_t, Rational>>
  selectIIFreq(const Rational &ITNs, const Rational &FmaxGHz) const;

  /// Smallest IT' > ITNs at which this domain would obtain at least one
  /// feasible pair with one more slot than at ITNs (used to grow the IT
  /// after scheduling or synchronization failures).
  Rational nextIT(const Rational &ITNs, const Rational &FmaxGHz) const;
};

} // namespace hcvliw

#endif // HCVLIW_MCD_FREQUENCYMENU_H
