//===- mcd/HeteroConfig.cpp - Heterogeneous operating points ----------------===//

#include "mcd/HeteroConfig.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace hcvliw;

HeteroConfig HeteroConfig::reference(const MachineDescription &M) {
  HeteroConfig C;
  DomainOperatingPoint P;
  P.PeriodNs = M.RefPeriodNs;
  P.Vdd = M.RefVdd;
  P.Vth = M.RefVth;
  C.Clusters.assign(M.numClusters(), P);
  C.Icn = P;
  C.Cache = P;
  return C;
}

Rational HeteroConfig::fastestClusterPeriod() const {
  assert(!Clusters.empty() && "configuration with no clusters");
  Rational Best = Clusters.front().PeriodNs;
  for (const auto &C : Clusters)
    Best = Rational::min(Best, C.PeriodNs);
  return Best;
}

unsigned HeteroConfig::fastestCluster() const {
  assert(!Clusters.empty() && "configuration with no clusters");
  unsigned Best = 0;
  for (unsigned I = 1; I < Clusters.size(); ++I)
    if (Clusters[I].PeriodNs < Clusters[Best].PeriodNs)
      Best = I;
  return Best;
}

bool HeteroConfig::hasUniformClusterFrequency() const {
  for (const auto &C : Clusters)
    if (C.PeriodNs != Clusters.front().PeriodNs)
      return false;
  return true;
}

std::string HeteroConfig::str() const {
  std::string Out = "clusters:";
  for (const auto &C : Clusters)
    Out += formatString(" {T=%sns Vdd=%.2f Vth=%.3f}", C.PeriodNs.str().c_str(),
                        C.Vdd, C.Vth);
  Out += formatString(" icn:{T=%sns Vdd=%.2f} cache:{T=%sns Vdd=%.2f}",
                      Icn.PeriodNs.str().c_str(), Icn.Vdd,
                      Cache.PeriodNs.str().c_str(), Cache.Vdd);
  return Out;
}
