//===- mcd/HeteroConfig.h - Heterogeneous operating points ------*- C++ -*-===//
///
/// \file
/// The per-domain operating points of a heterogeneous configuration:
/// every cluster, the inter-cluster network (ICN) and the memory
/// hierarchy carry their own cycle time (the *maximum* frequency their
/// voltage supports) and supply/threshold voltages. The modulo scheduler
/// may clock a domain below its maximum for a given loop (frequency
/// scaling); voltages are fixed at program level (Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MCD_HETEROCONFIG_H
#define HCVLIW_MCD_HETEROCONFIG_H

#include "machine/MachineDescription.h"
#include "support/Rational.h"

#include <string>
#include <vector>

namespace hcvliw {

/// Operating point of one clock domain.
struct DomainOperatingPoint {
  Rational PeriodNs = Rational(1); ///< minimum cycle time at this voltage
  double Vdd = 1.0;
  double Vth = 0.25;

  Rational fmaxGHz() const { return PeriodNs.reciprocal(); }
};

/// A full heterogeneous configuration of the machine.
struct HeteroConfig {
  std::vector<DomainOperatingPoint> Clusters;
  DomainOperatingPoint Icn;
  DomainOperatingPoint Cache;

  /// Every domain at the machine's reference point (the paper's
  /// reference homogeneous microarchitecture).
  static HeteroConfig reference(const MachineDescription &M);

  unsigned numClusters() const {
    return static_cast<unsigned>(Clusters.size());
  }

  Rational fastestClusterPeriod() const;
  unsigned fastestCluster() const;

  /// True when all clusters share one cycle time (the configuration is
  /// homogeneous in frequency; voltages may still differ).
  bool hasUniformClusterFrequency() const;

  std::string str() const;
};

} // namespace hcvliw

#endif // HCVLIW_MCD_HETEROCONFIG_H
