//===- mcd/PlanGrid.cpp - Integer tick grid of a machine plan --------------===//

#include "mcd/PlanGrid.h"

#include <cassert>

using namespace hcvliw;

int64_t hcvliw::lcm64Checked(int64_t A, int64_t B) {
  assert(A > 0 && B > 0 && "lcm64Checked expects positive operands");
  int64_t G = gcd64(A, B);
  __int128 R = static_cast<__int128>(A / G) * B;
  if (R > INT64_MAX)
    return 0;
  return static_cast<int64_t>(R);
}

/// Lowers \p R at scale \p TicksPerNs, or -1 when the product leaves
/// the headroom bound (periods and the IT are always positive).
static int64_t lowerChecked(const Rational &R, int64_t TicksPerNs) {
  __int128 T = static_cast<__int128>(R.num()) * (TicksPerNs / R.den());
  if (T <= 0 || T > PlanGrid::MaxTicks)
    return -1;
  return static_cast<int64_t>(T);
}

PlanGrid PlanGrid::compute(const MachinePlan &Plan) {
  PlanGrid G;
  computeInto(G, Plan);
  return G;
}

void PlanGrid::computeInto(PlanGrid &G, const MachinePlan &Plan) {
  G.TicksPerNsVal = 0; // invalid until the lowering fully succeeds
  int64_t L = Plan.ITNs.den();
  for (const DomainPlan &C : Plan.Clusters) {
    L = lcm64Checked(L, C.PeriodNs.den());
    if (L == 0 || L > MaxTicks)
      return;
  }
  L = lcm64Checked(L, Plan.Bus.PeriodNs.den());
  if (L == 0 || L > MaxTicks)
    return;

  int64_t IT = lowerChecked(Plan.ITNs, L);
  int64_t Bus = lowerChecked(Plan.Bus.PeriodNs, L);
  if (IT < 0 || Bus < 0)
    return;
  G.ClusterPeriodTicks.clear();
  G.ClusterPeriodTicks.reserve(Plan.Clusters.size());
  for (const DomainPlan &C : Plan.Clusters) {
    int64_t P = lowerChecked(C.PeriodNs, L);
    if (P < 0)
      return;
    G.ClusterPeriodTicks.push_back(P);
  }

  G.TicksPerNsVal = L;
  G.ITTicksVal = IT;
  G.BusPeriodTicksVal = Bus;
}

int64_t PlanGrid::toTicks(const Rational &R) const {
  assert(valid() && "lowering onto an invalid grid");
  assert(TicksPerNsVal % R.den() == 0 && "value off the plan's tick grid");
  return R.num() * (TicksPerNsVal / R.den());
}
