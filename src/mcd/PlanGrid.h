//===- mcd/PlanGrid.h - Integer tick grid of a machine plan -----*- C++ -*-===//
///
/// \file
/// The per-plan tick grid: because the Section 2.2 integrality condition
/// `II_X = IT * f_X` holds for every domain, the initiation time and all
/// running periods of one MachinePlan share a finite common grid. One
/// *tick* is `1 / TicksPerNs` nanoseconds, where TicksPerNs is the LCM
/// of the denominators of the IT, every cluster period, and the bus
/// period. On that grid every clock quantity of the schedule hot path
/// (ASAP/ALAP fixpoints, edge bounds, placement, validation, register
/// pressure) is an exact int64, so the whole per-loop scheduling chain
/// runs on integer div/mod instead of Rational gcd normalization --
/// with bit-identical results, since tick arithmetic is Rational
/// arithmetic scaled by one exact common denominator.
///
/// The lowering is best-effort: when the LCM (or any lowered quantity)
/// would overflow the headroom needed by schedule-time products, the
/// grid is invalid and callers fall back to the exact Rational path.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MCD_PLANGRID_H
#define HCVLIW_MCD_PLANGRID_H

#include "mcd/DomainPlanner.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class PlanGrid {
  int64_t TicksPerNsVal = 0; ///< 0 = invalid grid (overflow fallback)
  int64_t ITTicksVal = 0;
  std::vector<int64_t> ClusterPeriodTicks;
  int64_t BusPeriodTicksVal = 0;

public:
  /// Lowered IT and period ticks stay below this bound so that every
  /// product the scheduler forms (slots x periods, fixpoint horizons,
  /// distance x IT) keeps ample int64 headroom.
  static constexpr int64_t MaxTicks = int64_t(1) << 38;

  /// Lowers \p Plan onto its tick grid; the result is invalid (and
  /// callers must use the Rational path) when the denominator LCM or
  /// any lowered quantity exceeds MaxTicks.
  static PlanGrid compute(const MachinePlan &Plan);

  /// In-place form of compute: reuses \p G's period buffer (the
  /// pseudo-scheduler lowers one grid per refinement candidate).
  static void computeInto(PlanGrid &G, const MachinePlan &Plan);

  bool valid() const { return TicksPerNsVal > 0; }
  int64_t ticksPerNs() const { return TicksPerNsVal; }
  int64_t itTicks() const { return ITTicksVal; }
  int64_t clusterPeriodTicks(unsigned C) const {
    return ClusterPeriodTicks[C];
  }
  int64_t busPeriodTicks() const { return BusPeriodTicksVal; }

  /// Period ticks of domain \p D, where \p BusDomain is the bus id
  /// (PartitionedGraph::busDomain() layout: clusters then bus).
  int64_t periodTicks(unsigned D, unsigned BusDomain) const {
    return D == BusDomain ? BusPeriodTicksVal : ClusterPeriodTicks[D];
  }

  /// Exact lowering of \p R (whose denominator divides TicksPerNs) onto
  /// the grid; only meaningful on a valid grid.
  int64_t toTicks(const Rational &R) const;

  /// The Rational value of \p Ticks (the inverse of toTicks).
  Rational toNs(int64_t Ticks) const {
    return Rational(Ticks, TicksPerNsVal);
  }
};

/// Least common multiple that reports overflow as 0 instead of
/// asserting (the grid lowering treats overflow as "no grid").
int64_t lcm64Checked(int64_t A, int64_t B);

} // namespace hcvliw

#endif // HCVLIW_MCD_PLANGRID_H
