//===- mcd/SyncModel.h - Cross-domain synchronization queues ----*- C++ -*-===//
///
/// \file
/// Timing of values crossing clock-domain boundaries. Domains are
/// synchronized through queues (Figure 2); when producer and consumer
/// run at different frequencies a transfer must wait for the consumer's
/// next clock edge and pay one consumer cycle of queue delay ("these
/// queues often introduce delays of one cycle"). Domains running at the
/// same frequency are edge-aligned (all clocks derive from gen_clock and
/// are enabled simultaneously), so no penalty applies -- which keeps the
/// homogeneous machine's communication cost at exactly the 1-cycle bus
/// latency of the baseline scheduler [2][3].
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MCD_SYNCMODEL_H
#define HCVLIW_MCD_SYNCMODEL_H

#include "support/Rational.h"

namespace hcvliw {

/// First multiple of \p PeriodNs at or after \p TNs.
inline Rational alignUpToTick(const Rational &TNs, const Rational &PeriodNs) {
  return Rational((TNs / PeriodNs).ceil()) * PeriodNs;
}

/// Absolute time at which a value ready at \p ReadyNs in a domain with
/// period \p ProducerPeriod becomes usable in a domain with period
/// \p ConsumerPeriod.
inline Rational crossDomainArrival(const Rational &ReadyNs,
                                   const Rational &ProducerPeriod,
                                   const Rational &ConsumerPeriod) {
  if (ProducerPeriod == ConsumerPeriod)
    return ReadyNs;
  return alignUpToTick(ReadyNs, ConsumerPeriod) + ConsumerPeriod;
}

//===----------------------------------------------------------------------===//
// Tick-grid (integer) forms of the same timing rules. On a valid
// PlanGrid every time is an exact int64 tick count, so the rules reduce
// to floor/ceil division -- by construction equal to the Rational forms
// scaled by the grid's ticks-per-ns.
//===----------------------------------------------------------------------===//

/// Floor division for any sign of \p A (\p B > 0); matches
/// Rational(A, B).floor().
inline int64_t floorDivTick(int64_t A, int64_t B) {
  if (A >= 0)
    return A / B;
  return -((-A + B - 1) / B);
}

/// Ceiling division for any sign of \p A (\p B > 0); matches
/// Rational(A, B).ceil().
inline int64_t ceilDivTick(int64_t A, int64_t B) {
  if (A >= 0)
    return (A + B - 1) / B;
  return -((-A) / B);
}

/// First multiple of \p PeriodTicks at or after \p TTicks.
inline int64_t alignUpToTick(int64_t TTicks, int64_t PeriodTicks) {
  return ceilDivTick(TTicks, PeriodTicks) * PeriodTicks;
}

/// Tick-grid form of the sync-queue arrival rule.
inline int64_t crossDomainArrival(int64_t ReadyTicks,
                                  int64_t ProducerPeriodTicks,
                                  int64_t ConsumerPeriodTicks) {
  if (ProducerPeriodTicks == ConsumerPeriodTicks)
    return ReadyTicks;
  return alignUpToTick(ReadyTicks, ConsumerPeriodTicks) +
         ConsumerPeriodTicks;
}

} // namespace hcvliw

#endif // HCVLIW_MCD_SYNCMODEL_H
