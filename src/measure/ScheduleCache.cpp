//===- measure/ScheduleCache.cpp - Memoized per-loop schedules --------------===//

#include "measure/ScheduleCache.h"

#include <algorithm>
#include <vector>

using namespace hcvliw;

std::optional<LoopScheduleResult> ScheduleCache::find(uint64_t Key,
                                                      bool *WasHit) const {
  const Shard &S = Shards[shardOf(Key)];
  std::optional<LoopScheduleResult> R;
  bool Persisted = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Entries.find(Key);
    if (It != S.Entries.end()) {
      R = It->second.R;
      Persisted = It->second.Persisted;
    }
  }
  (R ? S.Hits : S.Misses).fetch_add(1, std::memory_order_relaxed);
  if (Persisted)
    S.PersistHits.fetch_add(1, std::memory_order_relaxed);
  if (WasHit)
    *WasHit = R.has_value();
  return R;
}

void ScheduleCache::store(uint64_t Key, const LoopScheduleResult &R) {
  Shard &S = Shards[shardOf(Key)];
  // Every store was a fresh Figure 5 run: account its effort even when
  // a concurrent duplicate compute loses the emplace race below.
  S.Placements.fetch_add(R.Placements, std::memory_order_relaxed);
  S.Ejections.fetch_add(R.Ejections, std::memory_order_relaxed);
  S.BudgetUsed.fetch_add(R.BudgetUsed, std::memory_order_relaxed);
  S.ITSteps.fetch_add(R.ITSteps, std::memory_order_relaxed);
  S.PartLevels.fetch_add(R.PartStats.Levels, std::memory_order_relaxed);
  S.PartMatchedPairs.fetch_add(R.PartStats.MatchedPairs,
                               std::memory_order_relaxed);
  S.PartRefineMoves.fetch_add(R.PartStats.RefineMoves,
                              std::memory_order_relaxed);
  S.PartFMMoves.fetch_add(R.PartStats.FMMoves, std::memory_order_relaxed);
  S.PartCoarsenMemoHits.fetch_add(R.PartStats.CoarsenMemoHits,
                                  std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  // First-writer-wins: emplace keeps the old value.
  S.Entries.emplace(Key, Entry{R, /*Persisted=*/false});
}

bool ScheduleCache::importEntry(uint64_t Key, const LoopScheduleResult &R) {
  Shard &S = Shards[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Entries.emplace(Key, Entry{R, /*Persisted=*/true}).second;
}

void ScheduleCache::exportEntries(
    const std::function<void(uint64_t, const LoopScheduleResult &)> &Fn)
    const {
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    std::vector<uint64_t> Keys;
    Keys.reserve(S.Entries.size());
    for (const auto &KV : S.Entries)
      Keys.push_back(KV.first);
    std::sort(Keys.begin(), Keys.end());
    for (uint64_t K : Keys)
      Fn(K, S.Entries.find(K)->second.R);
  }
}

size_t ScheduleCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    N += S.Entries.size();
  }
  return N;
}
