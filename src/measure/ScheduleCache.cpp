//===- measure/ScheduleCache.cpp - Memoized per-loop schedules --------------===//

#include "measure/ScheduleCache.h"

using namespace hcvliw;

std::optional<LoopScheduleResult> ScheduleCache::find(uint64_t Key,
                                                      bool *WasHit) const {
  std::optional<LoopScheduleResult> R;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end())
      R = It->second;
  }
  (R ? Hits : Misses).fetch_add(1, std::memory_order_relaxed);
  if (WasHit)
    *WasHit = R.has_value();
  return R;
}

void ScheduleCache::store(uint64_t Key, const LoopScheduleResult &R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, R); // first-writer-wins: emplace keeps the old value
}

size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
