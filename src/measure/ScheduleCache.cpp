//===- measure/ScheduleCache.cpp - Memoized per-loop schedules --------------===//

#include "measure/ScheduleCache.h"

using namespace hcvliw;

std::optional<LoopScheduleResult> ScheduleCache::find(uint64_t Key,
                                                      bool *WasHit) const {
  std::optional<LoopScheduleResult> R;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end())
      R = It->second;
  }
  (R ? Hits : Misses).fetch_add(1, std::memory_order_relaxed);
  if (WasHit)
    *WasHit = R.has_value();
  return R;
}

void ScheduleCache::store(uint64_t Key, const LoopScheduleResult &R) {
  // Every store was a fresh Figure 5 run: account its effort even when
  // a concurrent duplicate compute loses the emplace race below.
  Placements.fetch_add(R.Placements, std::memory_order_relaxed);
  Ejections.fetch_add(R.Ejections, std::memory_order_relaxed);
  BudgetUsed.fetch_add(R.BudgetUsed, std::memory_order_relaxed);
  ITSteps.fetch_add(R.ITSteps, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, R); // first-writer-wins: emplace keeps the old value
}

size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
