//===- measure/ScheduleCache.h - Memoized per-loop schedules -----*- C++ -*-===//
///
/// \file
/// Memoizes whole per-loop scheduling runs (the Figure 5 driver's
/// LoopScheduleResult: partition, machine plan, modulo schedule,
/// register pressure) so the measurement layer never schedules the same
/// (loop, machine plan) pair twice. A Session owns one instance and
/// threads it through every ScheduleMeasurer it backs, so schedules are
/// reused
///
///   - across the two step-4 measurements and the frontier measurement
///     of one program (the estimated ED2 argmin is always on the
///     frontier, so FrontierMeasurer re-measures it for free),
///   - across repeated runProgram calls on the same program, and
///   - across *programs* containing structurally identical loops (the
///     synthetic SPECfp suite shares many generator parameters).
///
/// Key contract (mirrors EvalCache's structural keying, one level
/// lower): the caller — ScheduleMeasurer::loopScheduleKey — hashes
/// *everything* LoopScheduler::schedule reads: the loop's structural
/// fingerprint (ops, operands, addressing, trip count; names and
/// profile weights excluded), every domain period of the HeteroConfig,
/// the frequency menu, the partitioner/scheduler options and the IT
/// budget, and — for ED2-objective runs only — the energy-model units
/// and the per-domain scaling factors (the homogeneous baseline
/// objective reads neither, so baseline schedules hit across designs
/// that differ only in voltage). Equal keys therefore hash equal
/// scheduling inputs, and since the Figure 5 driver is a pure,
/// deterministic function of those inputs, a cached result is
/// bit-identical to recomputation.
///
/// Thread-safe and *striped*: entries live in shards selected by key
/// hash, each with its own mutex and hit/miss/effort counters, so
/// high-thread suite runs stop serializing on one lock. The public
/// counters sum the per-shard atomics at report time and stay exact.
/// Concurrent duplicate computes are allowed and insertion is
/// first-writer-wins (all writers hold identical values).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MEASURE_SCHEDULECACHE_H
#define HCVLIW_MEASURE_SCHEDULECACHE_H

#include "partition/LoopScheduler.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace hcvliw {

class ScheduleCache {
  /// Shard count: enough to make lock collisions rare at suite-level
  /// thread counts, small enough that summing counters stays trivial.
  static constexpr unsigned NumShards = 16;

  /// One entry plus where it came from: entries imported from a
  /// persistent snapshot (runtime/CachePersist) are flagged so hits
  /// they serve can be attributed to the warm tier (persistHits).
  struct Entry {
    LoopScheduleResult R;
    bool Persisted = false;
  };

  /// One stripe: its own lock, map and statistics. Cache-line aligned
  /// so neighbouring shards' counters do not false-share.
  struct alignas(64) Shard {
    mutable std::mutex Mutex;
    std::unordered_map<uint64_t, Entry> Entries;
    mutable std::atomic<uint64_t> Hits{0};
    mutable std::atomic<uint64_t> Misses{0};
    mutable std::atomic<uint64_t> PersistHits{0};
    std::atomic<uint64_t> Placements{0};
    std::atomic<uint64_t> Ejections{0};
    std::atomic<uint64_t> BudgetUsed{0};
    std::atomic<uint64_t> ITSteps{0};
    std::atomic<uint64_t> PartLevels{0};
    std::atomic<uint64_t> PartMatchedPairs{0};
    std::atomic<uint64_t> PartRefineMoves{0};
    std::atomic<uint64_t> PartFMMoves{0};
    std::atomic<uint64_t> PartCoarsenMemoHits{0};
  };

  Shard Shards[NumShards];

  /// Keys are already FNV digests; fold the high bits so shard choice
  /// is independent of the map's own bucket choice (which uses the low
  /// bits).
  static unsigned shardOf(uint64_t Key) {
    return static_cast<unsigned>((Key >> 59) ^ (Key >> 13)) % NumShards;
  }

  template <typename Fn> uint64_t sum(Fn &&Get) const {
    uint64_t Total = 0;
    for (const Shard &S : Shards)
      Total += Get(S).load(std::memory_order_relaxed);
    return Total;
  }

public:
  ScheduleCache() = default;
  ScheduleCache(const ScheduleCache &) = delete;
  ScheduleCache &operator=(const ScheduleCache &) = delete;

  /// The cached scheduling run under \p Key, or std::nullopt. Counts a
  /// hit or a miss; \p WasHit (when non-null) reports which, so
  /// concurrent users can keep exact private statistics.
  std::optional<LoopScheduleResult> find(uint64_t Key,
                                         bool *WasHit = nullptr) const;

  /// Stores \p R under \p Key (first-writer-wins) and accumulates its
  /// scheduler effort counters into the session-wide totals below.
  void store(uint64_t Key, const LoopScheduleResult &R);

  /// Inserts an entry loaded from a persistent snapshot
  /// (first-writer-wins, flagged persisted). Unlike store(), no effort
  /// counters accumulate — the work was done by the run that saved the
  /// snapshot, not this one. Returns false when the key was already
  /// present.
  bool importEntry(uint64_t Key, const LoopScheduleResult &R);

  /// Invokes \p Fn for every entry, in deterministic order (shards in
  /// index order, keys sorted within a shard). Caller must be quiescent
  /// with respect to store(); the shard lock is held across its own
  /// entries' callbacks.
  void exportEntries(
      const std::function<void(uint64_t, const LoopScheduleResult &)> &Fn)
      const;

  /// Hits served by entries importEntry() installed — the warm tier's
  /// contribution (subset of hits()).
  uint64_t persistHits() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PersistHits;
    });
  }

  uint64_t hits() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.Hits;
    });
  }
  uint64_t misses() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.Misses;
    });
  }
  size_t size() const;

  /// Scheduler effort of every *freshly computed* run stored here
  /// (cache hits add nothing: the work was not redone). Surfaced per
  /// series in the bench JSON "caches" object.
  uint64_t placements() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.Placements;
    });
  }
  uint64_t ejections() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.Ejections;
    });
  }
  uint64_t budgetUsed() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.BudgetUsed;
    });
  }
  uint64_t itSteps() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.ITSteps;
    });
  }

  /// Partitioner effort behind the misses (multilevel hierarchy work of
  /// fresh runs only), same contract as the scheduler counters above.
  uint64_t partLevels() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PartLevels;
    });
  }
  uint64_t partMatchedPairs() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PartMatchedPairs;
    });
  }
  uint64_t partRefineMoves() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PartRefineMoves;
    });
  }
  uint64_t partFMMoves() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PartFMMoves;
    });
  }
  uint64_t partCoarsenMemoHits() const {
    return sum([](const Shard &S) -> const std::atomic<uint64_t> & {
      return S.PartCoarsenMemoHits;
    });
  }
};

} // namespace hcvliw

#endif // HCVLIW_MEASURE_SCHEDULECACHE_H
