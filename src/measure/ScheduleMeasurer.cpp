//===- measure/ScheduleMeasurer.cpp - Measured-schedule evaluation ----------===//

#include "measure/ScheduleMeasurer.h"

#include "fault/Fault.h"
#include "obs/Stopwatch.h"
#include "partition/ScheduleScratch.h"
#include "support/HashUtil.h"
#include "vliwsim/PipelinedSimulator.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

ScheduleMeasurer::ScheduleMeasurer(const MachineDescription &M,
                                   const MeasureOptions &O,
                                   ScheduleCache *SharedCache,
                                   ScheduleScratchPool *ScratchPool,
                                   obs::Tracer *Tr,
                                   obs::MetricsRegistry *Mx)
    : Machine(M), Opts(O), Cache(SharedCache), Scratches(ScratchPool),
      Trace(Tr), Metrics(Mx) {}

namespace {

void mixMenu(FnvHasher &H, const FrequencyMenu &Menu) {
  H.mix(Menu.isContinuous() ? 1u : Menu.frequencies().empty() ? 2u : 3u);
  H.mixVector(Menu.frequencies());
  H.mixVector(Menu.ratios());
}

/// Everything the ED2 partitioning objective reads off the energy
/// model: the per-unit energies (which embed the breakdown shares and
/// the reference activity) and the cluster count.
void mixEnergy(FnvHasher &H, const EnergyModel &E) {
  H.mix(E.numClusters());
  H.mixDouble(E.insUnit());
  H.mixDouble(E.commUnit());
  H.mixDouble(E.accessUnit());
  H.mixDouble(E.clusterLeakPerNs());
  H.mixDouble(E.icnLeakPerNs());
  H.mixDouble(E.cacheLeakPerNs());
}

void mixScaling(FnvHasher &H, const HeteroScaling &S) {
  H.mix(S.Clusters.size());
  for (const DomainScaling &D : S.Clusters) {
    H.mixDouble(D.Delta);
    H.mixDouble(D.Sigma);
  }
  H.mixDouble(S.Icn.Delta);
  H.mixDouble(S.Icn.Sigma);
  H.mixDouble(S.Cache.Delta);
  H.mixDouble(S.Cache.Sigma);
}

} // namespace

uint64_t ScheduleMeasurer::loopScheduleKey(const Loop &L,
                                           const HeteroConfig &Config,
                                           const HeteroScaling &Scaling,
                                           const EnergyModel &Energy,
                                           bool ED2Objective) const {
  FnvHasher H;
  H.mix(L.structuralFingerprint());

  // The scheduler reads the config only through each domain's fmax
  // (DomainPlanner); voltages reach it solely via Scaling below, so
  // homogeneous-objective runs hit across designs differing only in
  // voltage.
  H.mix(Config.Clusters.size());
  for (const DomainOperatingPoint &P : Config.Clusters)
    H.mixRational(P.PeriodNs);
  H.mixRational(Config.Icn.PeriodNs);
  H.mixRational(Config.Cache.PeriodNs);

  H.mix(ED2Objective ? 1u : 2u);
  mixMenu(H, ED2Objective ? Opts.Menu : FrequencyMenu::continuous());

  // Effective partitioner objective (the ablation knob can force
  // balance-only even on the heterogeneous machine).
  bool EffectiveED2 = ED2Objective && Opts.Part.ED2Objective;
  H.mix(EffectiveED2 ? 1u : 2u);
  H.mix(Opts.Part.PrePlaceRecurrences ? 1u : 2u);
  H.mix(Opts.Part.MaxRefinePasses);
  H.mix(Opts.Part.MaxRefineMacros);
  H.mix(Opts.Part.CoarsestPerCluster);
  H.mix(Opts.Part.MaxFMPasses);
  H.mix(Opts.Sched.BudgetFactor);
  H.mix(Opts.Sched.BudgetRefOps);
  H.mixSigned(Opts.Sched.MaxSlotMultiple);
  H.mix(Opts.Sched.CompactLifetimes ? 1u : 2u);
  H.mix(Opts.MaxITSteps);
  // The effort deadline changes sweep outcomes when it fires, so it is
  // part of the key (unlike WarmStart/UseTickGrid, which never do).
  H.mix(Opts.EffortDeadline);

  // The energy model and the per-domain scaling factors steer
  // partition refinement only under the ED2 objective; the baseline
  // objective reads neither.
  if (EffectiveED2) {
    mixEnergy(H, Energy);
    mixScaling(H, Scaling);
  }
  return H.digest();
}

ConfigRunResult ScheduleMeasurer::measure(const ProgramProfile &Profile,
                                          const std::vector<Loop> &Loops,
                                          const HeteroConfig &Config,
                                          const HeteroScaling &Scaling,
                                          const EnergyModel &Energy,
                                          bool ED2Objective) const {
  ConfigRunResult R;
  assert(Profile.Loops.size() == Loops.size() &&
         "profile does not match the loop list");
  obs::Span CfgSp(Trace, ED2Objective ? "measure.config:het"
                                      : "measure.config:hom");

  // Fault site: start of one config measurement (context = program,
  // which each suite worker processes serially, so the occurrence
  // count is thread-count invariant).
  HCVLIW_FAULT_POINT(Opts.Fault, "measure.config", Profile.Name);
  const bool FaultsArmed = Opts.Fault && Opts.Fault->armed();
  // While armed, bypass the shared schedule cache: which worker
  // populates a cross-program entry is a timing race, and a hit would
  // skip the scheduling run whose site counters must advance. Healthy
  // runs (the only ones the determinism pin covers) keep the cache.
  ScheduleCache *UseCache = FaultsArmed ? nullptr : Cache;

  LoopScheduleOptions LSO;
  // Homogeneous baselines run at one fixed frequency; only the
  // heterogeneous machine negotiates per-loop (II, freq) pairs from the
  // restricted menu.
  LSO.Menu = ED2Objective ? Opts.Menu : FrequencyMenu::continuous();
  LSO.Part = Opts.Part;
  // The ablation knob in Opts.Part can force the balance-only objective
  // even on the heterogeneous machine.
  LSO.Part.ED2Objective = ED2Objective && Opts.Part.ED2Objective;
  LSO.Sched = Opts.Sched;
  LSO.MaxITSteps = Opts.MaxITSteps;
  LSO.EffortDeadline = Opts.EffortDeadline;
  LSO.Fault = Opts.Fault;
  LSO.FaultContext = Profile.Name;
  LoopScheduler Sched(Machine, Config, LSO);

  // The per-worker arena: the session pool hands this thread its own,
  // or a local one serves this call. Acquired once per measurement, not
  // per loop; schedule() results never depend on the arena.
  std::unique_ptr<ScheduleScratch> OwnScratch;
  ScheduleScratch *Scratch;
  if (Scratches) {
    Scratch = &Scratches->forThisThread();
  } else {
    OwnScratch = std::make_unique<ScheduleScratch>();
    Scratch = OwnScratch.get();
  }

  double TexecNs = 0;
  std::vector<double> WIns(Machine.numClusters(), 0.0);
  double Comms = 0, Mem = 0;

  // Fresh (uncached) schedule runs: traced through the Figure 5
  // driver's own spans and timed into the per-stage wall histogram.
  // Timing only observes — the result never depends on it.
  //
  // Graceful degradation, rung 1 (cold replay): a throw out of the
  // warm-start sweep — injected at "sched.warm", or a real defect in
  // the warm memos — is answered by replaying the loop on the cold
  // WarmStart=false path, which recomputes everything from scratch and
  // shares none of the warm code. The retry does not re-fire an
  // Nth-occurrence fault (the occurrence already counted), and a throw
  // out of the cold path itself propagates: there is no rung below.
  auto scheduleFresh = [&](const Loop &L) {
    obs::Stopwatch SW;
    LoopScheduleResult LR;
    try {
      LR = Sched.schedule(L, ED2Objective ? &Energy : nullptr,
                          ED2Objective ? &Scaling : nullptr, Scratch, Trace);
    } catch (...) {
      if (!LSO.WarmStart)
        throw;
      ++R.ColdReplays;
      if (Metrics)
        Metrics->addCounter("degrade.cold_replay");
      LoopScheduleOptions ColdLSO = LSO;
      ColdLSO.WarmStart = false;
      LoopScheduler ColdSched(Machine, Config, ColdLSO);
      LR = ColdSched.schedule(L, ED2Objective ? &Energy : nullptr,
                              ED2Objective ? &Scaling : nullptr, Scratch,
                              Trace);
    }
    if (Metrics) {
      Metrics->observeMs("stage.loop_schedule.ms", SW.elapsedMs());
      // Partitioner effort of this fresh run (cache hits add nothing).
      Metrics->addCounter("part.levels", LR.PartStats.Levels);
      Metrics->addCounter("part.matched_pairs", LR.PartStats.MatchedPairs);
      Metrics->addCounter("part.refine_moves", LR.PartStats.RefineMoves);
      Metrics->addCounter("part.fm_moves", LR.PartStats.FMMoves);
      Metrics->addCounter("part.coarsen_memo_hits",
                          LR.PartStats.CoarsenMemoHits);
    }
    return LR;
  };

  // Graceful degradation, rung 3 (analytic estimate): account a loop
  // from its reference-profile numbers instead of a measured schedule
  // — reference execution time, per-iteration activity spread evenly
  // across the clusters (no assignment exists to say better). A pure
  // function of the profile, so degraded measurements stay
  // deterministic; the loop is flagged rather than silently blended.
  auto analyticLoop = [&](const Loop &L, const LoopProfile &LP) {
    double LoopT = LP.Invocations * LP.TexecRefNs.toDouble();
    TexecNs += LoopT;
    double Iters = LP.Invocations * static_cast<double>(L.TripCount);
    double PerCluster =
        LP.PerIter.WeightedIns * Iters / Machine.numClusters();
    for (double &W : WIns)
      W += PerCluster;
    Comms += LP.PerIter.Comms * Iters;
    Mem += LP.PerIter.MemAccesses * Iters;
    LoopRunStat Stat;
    Stat.Name = L.Name;
    Stat.ITNs = LP.ItLengthRefNs.toDouble();
    Stat.TexecNs = LoopT;
    Stat.Comms = static_cast<unsigned>(LP.PerIter.Comms);
    Stat.Degraded = true;
    R.Loops.push_back(std::move(Stat));
    ++R.DegradedLoops;
  };

  for (size_t I = 0; I < Loops.size(); ++I) {
    const Loop &L = Loops[I];
    const LoopProfile &LP = Profile.Loops[I];

    // Forced degrade: skip the (expensive) sweep entirely — that is
    // the rung's whole point when used as a real load-shedding lever.
    std::string LoopCtx;
    if (FaultsArmed)
      LoopCtx = Profile.Name + "/" + L.Name;
    if (HCVLIW_FAULT_DEGRADE(Opts.Fault, "measure.loop", LoopCtx)) {
      analyticLoop(L, LP);
      continue;
    }

    LoopScheduleResult LR;
    bool Fresh = true;
    if (UseCache) {
      uint64_t Key =
          loopScheduleKey(L, Config, Scaling, Energy, ED2Objective);
      bool WasHit = false;
      if (auto Cached = UseCache->find(Key, &WasHit)) {
        LR = std::move(*Cached);
        Fresh = false;
      } else {
        LR = scheduleFresh(L);
        UseCache->store(Key, LR);
      }
      ++(WasHit ? R.ScheduleHits : R.ScheduleMisses);
    } else {
      LR = scheduleFresh(L);
    }
    R.SchedPlacements += LR.Placements;
    R.SchedEjections += LR.Ejections;
    R.SchedBudgetUsed += LR.BudgetUsed;
    R.SchedITSteps += LR.ITSteps;
    R.FallbackRational += LR.FallbackRational;
    R.FlatPartitions += static_cast<unsigned>(LR.PartStats.FlatFallbacks);
    if (!LR.Success) {
      if (Opts.AnalyticFallback) {
        analyticLoop(L, LP);
        continue;
      }
      ++R.Failures;
      R.FailureDetails.push_back({L.Name, LR.failureSummary()});
      continue;
    }

    if (Fresh && Opts.SimCheckIterations > 0) {
      uint64_t N = std::min<uint64_t>(L.TripCount, Opts.SimCheckIterations);
      [[maybe_unused]] std::string Err =
          checkFunctionalEquivalence(L, LR.PG, LR.Sched, Machine, N);
      assert(Err.empty() && "measured schedule is not functionally correct");
    }

    double LoopT = LP.Invocations *
                   LR.Sched.execTimeNs(LR.PG, L.TripCount).toDouble();
    TexecNs += LoopT;

    double Iters =
        LP.Invocations * static_cast<double>(L.TripCount);
    for (unsigned Op = 0; Op < L.size(); ++Op)
      WIns[LR.Assignment.cluster(Op)] +=
          Machine.Isa.energy(L.Ops[Op].Op) * Iters;
    Comms += static_cast<double>(LR.PG.numCopies()) * Iters;
    Mem += LP.PerIter.MemAccesses * Iters;

    LoopRunStat Stat;
    Stat.Name = L.Name;
    Stat.ITNs = LR.Sched.Plan.ITNs.toDouble();
    Stat.TexecNs = LoopT;
    Stat.Comms = LR.PG.numCopies();
    R.Loops.push_back(std::move(Stat));
  }

  if (Metrics) {
    Metrics->addCounter("measure.configs");
    if (UseCache) {
      Metrics->addCounter("cache.schedule.hits", R.ScheduleHits);
      Metrics->addCounter("cache.schedule.misses", R.ScheduleMisses);
    }
    if (R.Failures)
      Metrics->addCounter("measure.loop_failures", R.Failures);
    // The silent-degradation ledger: all zero on a healthy run.
    if (R.FallbackRational)
      Metrics->addCounter("sched.fallback_rational", R.FallbackRational);
    if (R.DegradedLoops)
      Metrics->addCounter("degrade.analytic_estimate", R.DegradedLoops);
    if (R.FlatPartitions)
      Metrics->addCounter("degrade.flat_partition", R.FlatPartitions);
  }
  if (CfgSp.active()) {
    CfgSp.arg("loops", static_cast<int64_t>(Loops.size()));
    CfgSp.arg("failures", R.Failures);
    CfgSp.arg("cache_hits", static_cast<int64_t>(R.ScheduleHits));
    CfgSp.arg("cache_misses", static_cast<int64_t>(R.ScheduleMisses));
  }

  if (R.Failures == Loops.size())
    return R;
  R.TexecNs = TexecNs;
  R.Energy = Energy.heteroEnergy(WIns, Comms, Mem, TexecNs, Scaling);
  R.ED2 = computeED2(R.Energy, TexecNs);
  R.Ok = true;
  return R;
}
