//===- measure/ScheduleMeasurer.h - Measured-schedule evaluation -*- C++ -*-===//
///
/// \file
/// The measurement stage of the paper's evaluation (step 4 of the
/// HeterogeneousPipeline), extracted into its own layer so it can be
/// driven by more callers than the once-per-program pipeline: the
/// frontier measurer fans it across Pareto points, the oracle ablation
/// across ranked candidates, and benches across option sweeps.
///
/// Measuring one HeteroConfig for a program means, per loop: partition
/// the DDG, run the heterogeneous modulo scheduler (the Figure 5
/// driver with the ED2-objective partitioning on heterogeneous
/// machines, the [2][3] baseline objective on homogeneous ones),
/// validate the schedule, optionally re-execute it on the MCD
/// simulator as a functional check, and accumulate measured
/// time/energy/ED2 from the resulting schedules.
///
/// Per-loop scheduling runs are memoized through an optional
/// ScheduleCache (session-owned), keyed on everything the Figure 5
/// driver reads — see ScheduleCache.h for the key contract. Cached
/// results are bit-identical to recomputation, so measurement with and
/// without a cache (and for any concurrency) produces identical
/// ConfigRunResults.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_MEASURE_SCHEDULEMEASURER_H
#define HCVLIW_MEASURE_SCHEDULEMEASURER_H

#include "measure/ScheduleCache.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "power/EnergyModel.h"
#include "profiling/ProfileData.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hcvliw {

namespace fault {
class FaultInjector;
}

/// Measured behaviour of one loop under one configuration.
struct LoopRunStat {
  std::string Name;
  double ITNs = 0;
  double TexecNs = 0; ///< all invocations
  unsigned Comms = 0; ///< per iteration
  /// True when this loop took the analytic-estimate rung (reference-
  /// profile numbers instead of a measured schedule) — either because
  /// scheduling failed with MeasureOptions::AnalyticFallback set, or
  /// because an armed injector degraded "measure.loop".
  bool Degraded = false;
};

/// One unschedulable loop, with the Figure 5 sweep's aggregated per-IT
/// failure reasons (which stage failed at which IT) — the detail
/// SuiteFailure records surface.
struct LoopScheduleFailure {
  std::string Loop;
  std::string Detail; ///< LoopScheduleResult::failureSummary()
};

/// Measured behaviour of one configuration on one program.
struct ConfigRunResult {
  bool Ok = false;
  double TexecNs = 0;
  double Energy = 0;
  double ED2 = 0;
  unsigned Failures = 0; ///< loops that could not be scheduled
  /// Parallel detail for every failed loop, in loop order.
  std::vector<LoopScheduleFailure> FailureDetails;
  std::vector<LoopRunStat> Loops;
  /// This measurement's ScheduleCache statistics (both zero when no
  /// cache was attached).
  uint64_t ScheduleHits = 0;
  uint64_t ScheduleMisses = 0;
  /// Scheduler effort summed over every loop's Figure 5 run (failed
  /// loops included). Cached results carry the counters of their
  /// original computation, so these are bit-identical with and without
  /// a cache; future perf work attributes wins through them.
  uint64_t SchedPlacements = 0;
  uint64_t SchedEjections = 0;
  uint64_t SchedBudgetUsed = 0;
  uint64_t SchedITSteps = 0;
  /// Graceful-degradation ledger (all zero on a healthy run; every
  /// rung fires only on an exception, an injected degrade, or an
  /// exhausted effort deadline, so the healthy path stays
  /// bit-identical to the historical output). Deterministic, and
  /// carried by cached schedule results where applicable, so the
  /// counts match with and without the schedule cache.
  unsigned DegradedLoops = 0;   ///< loops on the analytic-estimate rung
  unsigned ColdReplays = 0;     ///< warm sweeps replayed cold after a throw
  unsigned FlatPartitions = 0;  ///< partition runs on the flat rung
  /// Scheduler runs that silently fell back from the tick grid to the
  /// Rational path (summed LoopScheduleResult::FallbackRational; the
  /// sched.fallback_rational metric).
  unsigned FallbackRational = 0;
};

/// The measurement-stage knobs a ScheduleMeasurer runs under; derived
/// from PipelineOptions by the pipeline and the frontier measurer.
struct MeasureOptions {
  /// Menu heterogeneous (ED2-objective) scheduling negotiates (II,
  /// freq) pairs from; homogeneous baselines always run continuous.
  FrequencyMenu Menu = FrequencyMenu::continuous();
  PartitionerOptions Part;
  SchedulerOptions Sched;
  /// IT growth attempts per loop before the loop counts as a
  /// measurement failure (Figure 5 retries).
  unsigned MaxITSteps = 64;
  /// When nonzero, every *freshly computed* schedule is re-executed on
  /// the MCD simulator for min(trip, this) iterations and compared
  /// bit-for-bit against sequential execution (cache hits were checked
  /// when first computed — same key, same schedule).
  uint64_t SimCheckIterations = 0;
  /// Per-loop effort deadline in scheduler BudgetUsed units (0 = off);
  /// see LoopScheduleOptions::EffortDeadline. Deterministic — never
  /// wall clock — and part of loopScheduleKey.
  uint64_t EffortDeadline = 0;
  /// Degrade a loop whose Figure 5 sweep fails (including by effort
  /// deadline) to the analytic reference-profile estimate instead of
  /// counting a measurement failure. Off by default: the healthy
  /// pipeline keeps its historical failure reporting.
  bool AnalyticFallback = false;
  /// Optional fault injector (armed test/chaos runs only; null in
  /// production). Sites here: "measure.config" (point, context =
  /// program name) and "measure.loop" (degrade, context =
  /// "<program>/<loop>"). While the injector is *armed*, measure()
  /// bypasses the ScheduleCache: cross-program cache sharing is
  /// timing-dependent, and a hit would skip the very scheduling run
  /// whose fault-site occurrence counters must advance — bypassing
  /// keeps every injected failure replayable at any thread count.
  fault::FaultInjector *Fault = nullptr;
};

class ScheduleScratchPool;

class ScheduleMeasurer {
  const MachineDescription &Machine;
  MeasureOptions Opts;
  ScheduleCache *Cache; ///< may be null: schedule every loop directly
  ScheduleScratchPool *Scratches; ///< may be null: one local arena per call
  obs::Tracer *Trace;             ///< may be null: no span recording
  obs::MetricsRegistry *Metrics;  ///< may be null: no metric recording

public:
  /// \p Cache, when given, must be used with one machine only (the
  /// schedule key does not re-hash the machine; a Session owns one
  /// cache per machine). \p Scratches, when given, supplies the
  /// per-worker ScheduleScratch arenas (Session-owned); measure() then
  /// schedules allocation-free in steady state. \p Trace / \p Metrics
  /// attach the observability layer (spans per config and per loop,
  /// the stage.loop_schedule.ms histogram, cache counters) —
  /// observation only. Results are bit-identical with or without any
  /// of the four.
  ScheduleMeasurer(const MachineDescription &M, const MeasureOptions &O,
                   ScheduleCache *Cache = nullptr,
                   ScheduleScratchPool *Scratches = nullptr,
                   obs::Tracer *Trace = nullptr,
                   obs::MetricsRegistry *Metrics = nullptr);

  const MachineDescription &machine() const { return Machine; }
  const MeasureOptions &options() const { return Opts; }

  /// Schedules every loop of the program under \p Config and evaluates
  /// measured time/energy/ED2. \p ED2Objective selects the
  /// heterogeneous flow (restricted menu, ED2-guided partitioning);
  /// homogeneous baselines pass false. Pure function of its inputs:
  /// bit-identical for any thread count, with or without the cache.
  ConfigRunResult measure(const ProgramProfile &Profile,
                          const std::vector<Loop> &Loops,
                          const HeteroConfig &Config,
                          const HeteroScaling &Scaling,
                          const EnergyModel &Energy,
                          bool ED2Objective) const;

  /// The ScheduleCache key of one loop's scheduling run under this
  /// measurer's options: hashes everything LoopScheduler::schedule
  /// reads (see ScheduleCache.h for the contract).
  uint64_t loopScheduleKey(const Loop &L, const HeteroConfig &Config,
                           const HeteroScaling &Scaling,
                           const EnergyModel &Energy,
                           bool ED2Objective) const;
};

} // namespace hcvliw

#endif // HCVLIW_MEASURE_SCHEDULEMEASURER_H
