//===- obs/AllocHook.h - Allocation-counter hook for span tracing -*- C++ -*-===//
///
/// \file
/// Lets binaries that replace the global operator new (the bench
/// harness, the CLI tools) surface their allocation counter to the
/// observability layer, so every trace Span records the heap
/// allocations that happened inside it (the "allocs" arg in the
/// exported trace).
///
/// The library itself never replaces operator new — a binary opts in
/// with HCVLIW_INSTRUMENT_ALLOCS() at global scope in exactly one
/// translation unit, which defines counting new/delete and installs the
/// counter at static-init time. Library code only ever reads
/// obs::allocCount(), which is 0 when no hook is installed.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_OBS_ALLOCHOOK_H
#define HCVLIW_OBS_ALLOCHOOK_H

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace hcvliw {
namespace obs {

/// The installed allocation counter, or null. One per process.
inline std::atomic<const std::atomic<uint64_t> *> AllocCounterPtr{nullptr};

/// Installs \p C as the process allocation counter (idempotent; the
/// tracer starts attributing per-span alloc deltas from then on).
inline void installAllocCounter(const std::atomic<uint64_t> *C) {
  AllocCounterPtr.store(C, std::memory_order_release);
}

/// Allocations since process start, or 0 when no binary-level counter
/// is installed. Relaxed: exact in single-threaded sections, monotone
/// everywhere — per-span deltas on one thread are self-consistent.
inline uint64_t allocCount() {
  const std::atomic<uint64_t> *C =
      AllocCounterPtr.load(std::memory_order_acquire);
  return C ? C->load(std::memory_order_relaxed) : 0;
}

} // namespace obs
} // namespace hcvliw

/// Defines a process-wide counting operator new/delete and installs the
/// counter into the obs layer. Use at global scope, once per binary.
/// \p CounterName names the counter variable (in whatever namespace the
/// macro is expanded after — the bench harness keeps its historical
/// hcvliw::BenchAllocCounter name).
#define HCVLIW_INSTRUMENT_ALLOCS(CounterName)                                 \
  void *operator new(std::size_t Sz) {                                        \
    CounterName.fetch_add(1, std::memory_order_relaxed);                      \
    if (void *P = std::malloc(Sz ? Sz : 1))                                   \
      return P;                                                               \
    std::abort(); /* instrumented binaries never install new_handlers */      \
  }                                                                           \
  void *operator new[](std::size_t Sz) { return ::operator new(Sz); }         \
  /* The replacements allocate with malloc, so free() IS the matching   */    \
  /* deallocator — GCC's -Wmismatched-new-delete can't see through the  */    \
  /* replacement and flags every delete site against these definitions. */    \
  _Pragma("GCC diagnostic push")                                              \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")               \
  void operator delete(void *P) noexcept { std::free(P); }                    \
  void operator delete[](void *P) noexcept { std::free(P); }                  \
  void operator delete(void *P, std::size_t) noexcept { std::free(P); }       \
  void operator delete[](void *P, std::size_t) noexcept { std::free(P); }     \
  _Pragma("GCC diagnostic pop")                                               \
  namespace {                                                                 \
  struct HcvliwAllocHookInstaller {                                           \
    HcvliwAllocHookInstaller() {                                              \
      hcvliw::obs::installAllocCounter(&CounterName);                         \
    }                                                                         \
  } HcvliwAllocHookInstallerInstance;                                         \
  }

#endif // HCVLIW_OBS_ALLOCHOOK_H
