//===- obs/BuildInfo.cpp - Build/provenance stamping ------------------------===//
//
// The HCVLIW_GIT_SHA / HCVLIW_BUILD_* macros below are per-source
// compile definitions set by the root CMakeLists.txt on exactly this
// file; the fallbacks keep non-CMake builds compiling.
//
//===----------------------------------------------------------------------===//

#include "obs/BuildInfo.h"

#include "support/StrUtil.h"

#ifndef HCVLIW_GIT_SHA
#define HCVLIW_GIT_SHA "unknown"
#endif
#ifndef HCVLIW_BUILD_COMPILER
#define HCVLIW_BUILD_COMPILER "unknown"
#endif
#ifndef HCVLIW_BUILD_FLAGS
#define HCVLIW_BUILD_FLAGS ""
#endif
#ifndef HCVLIW_BUILD_TYPE
#define HCVLIW_BUILD_TYPE "unknown"
#endif

using namespace hcvliw;

const obs::BuildInfo &obs::buildInfo() {
  static const BuildInfo Info = {HCVLIW_GIT_SHA, HCVLIW_BUILD_COMPILER,
                                 HCVLIW_BUILD_FLAGS, HCVLIW_BUILD_TYPE};
  return Info;
}

std::string obs::buildInfoJson() {
  const BuildInfo &B = buildInfo();
  std::string J = "{\"git_sha\": \"";
  J += jsonEscape(B.GitSha);
  J += "\", \"compiler\": \"";
  J += jsonEscape(B.Compiler);
  J += "\", \"flags\": \"";
  J += jsonEscape(B.Flags);
  J += "\", \"build_type\": \"";
  J += jsonEscape(B.BuildType);
  J += "\"}";
  return J;
}
