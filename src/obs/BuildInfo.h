//===- obs/BuildInfo.h - Build/provenance stamping ---------------*- C++ -*-===//
///
/// \file
/// Build provenance for every emitted artifact: committed BENCH_*.json
/// baselines and archived trace files are only attributable if they
/// carry the git SHA, compiler, flags and build type they were produced
/// with. CMake stamps the values into this one translation unit via
/// per-source compile definitions (so touching the build info never
/// rebuilds the library).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_OBS_BUILDINFO_H
#define HCVLIW_OBS_BUILDINFO_H

#include <string>

namespace hcvliw {
namespace obs {

struct BuildInfo {
  const char *GitSha;    ///< short commit SHA, "unknown" outside git
  const char *Compiler;  ///< compiler id + version
  const char *Flags;     ///< CMAKE_CXX_FLAGS + per-config flags
  const char *BuildType; ///< Release / Debug / ...
};

/// The build this library was compiled as.
const BuildInfo &buildInfo();

/// The provenance as a JSON object string:
/// {"git_sha": "...", "compiler": "...", "flags": "...",
///  "build_type": "..."} — embedded verbatim in BENCH_*.json ("build")
/// and trace files ("otherData").
std::string buildInfoJson();

} // namespace obs
} // namespace hcvliw

#endif // HCVLIW_OBS_BUILDINFO_H
