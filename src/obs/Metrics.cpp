//===- obs/Metrics.cpp - Sharded metrics registry ---------------------------===//

#include "obs/Metrics.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <atomic>

using namespace hcvliw;
using namespace hcvliw::obs;

//===----------------------------------------------------------------------===//
// HistogramData
//===----------------------------------------------------------------------===//

void HistogramData::observe(double V) {
  if (Counts.empty())
    Counts.assign(Bounds.size() + 1, 0);
  size_t I = static_cast<size_t>(
      std::upper_bound(Bounds.begin(), Bounds.end(), V) - Bounds.begin());
  ++Counts[I];
  Sum += V;
  if (Count == 0 || V < Min)
    Min = V;
  if (Count == 0 || V > Max)
    Max = V;
  ++Count;
}

void HistogramData::merge(const HistogramData &O) {
  if (O.Count == 0)
    return;
  if (Count == 0) {
    *this = O;
    return;
  }
  // Identical bounds merge bucket-wise; mismatched bounds (two shards
  // that registered the same name with different explicit bounds) fold
  // into the overflow bucket rather than misattributing.
  if (Bounds == O.Bounds && Counts.size() == O.Counts.size()) {
    for (size_t I = 0; I < Counts.size(); ++I)
      Counts[I] += O.Counts[I];
  } else {
    Counts.back() += O.Count;
  }
  Sum += O.Sum;
  Min = std::min(Min, O.Min);
  Max = std::max(Max, O.Max);
  Count += O.Count;
}

std::vector<double> obs::defaultMsBounds() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000};
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

std::string MetricsSnapshot::json() const {
  std::string J = "{\"counters\": {";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      J += ", ";
    First = false;
    J += formatString("\"%s\": %llu", jsonEscape(KV.first).c_str(),
                      static_cast<unsigned long long>(KV.second));
  }
  J += "}, \"gauges\": {";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      J += ", ";
    First = false;
    J += formatString("\"%s\": %.6g", jsonEscape(KV.first).c_str(), KV.second);
  }
  J += "}, \"histograms\": {";
  First = true;
  for (const auto &KV : Histograms) {
    if (!First)
      J += ", ";
    First = false;
    const HistogramData &H = KV.second;
    double Mean = H.Count ? H.Sum / static_cast<double>(H.Count) : 0;
    J += formatString("\"%s\": {\"count\": %llu, \"sum\": %.6g, "
                      "\"min\": %.6g, \"max\": %.6g, \"mean\": %.6g, "
                      "\"bounds\": [",
                      jsonEscape(KV.first).c_str(),
                      static_cast<unsigned long long>(H.Count), H.Sum, H.Min,
                      H.Max, Mean);
    for (size_t I = 0; I < H.Bounds.size(); ++I)
      J += formatString(I ? ", %.6g" : "%.6g", H.Bounds[I]);
    J += "], \"counts\": [";
    for (size_t I = 0; I < H.Counts.size(); ++I)
      J += formatString(I ? ", %llu" : "%llu",
                        static_cast<unsigned long long>(H.Counts[I]));
    J += "]}";
  }
  J += "}}";
  return J;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> RegistryGenerationCounter{1};
thread_local uint64_t CachedShardGeneration = 0;
thread_local void *CachedShard = nullptr;
} // namespace

MetricsRegistry::MetricsRegistry()
    : Generation(
          RegistryGenerationCounter.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::Shard &MetricsRegistry::shard() {
  if (CachedShardGeneration == Generation)
    return *static_cast<Shard *>(CachedShard);
  return shardSlow();
}

MetricsRegistry::Shard &MetricsRegistry::shardSlow() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Shard *&Slot = PerThread[std::this_thread::get_id()];
  if (!Slot) {
    Shards.push_back(std::make_unique<Shard>());
    Slot = Shards.back().get();
  }
  CachedShardGeneration = Generation;
  CachedShard = Slot;
  return *Slot;
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  Shard &S = shard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Counters[Name] += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  Shard &S = shard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Gauges[Name] = Value;
}

void MetricsRegistry::observeMs(const std::string &Name, double Ms) {
  Shard &S = shard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  HistogramData &H = S.Histograms[Name];
  if (H.Bounds.empty() && H.Count == 0)
    H.Bounds = defaultMsBounds();
  H.observe(Ms);
}

void MetricsRegistry::observe(const std::string &Name, double V,
                              const std::vector<double> &Bounds) {
  Shard &S = shard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  HistogramData &H = S.Histograms[Name];
  if (H.Bounds.empty() && H.Count == 0)
    H.Bounds = Bounds;
  H.observe(V);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> SLock(S->Mutex);
    for (const auto &KV : S->Counters)
      Snap.Counters[KV.first] += KV.second;
    for (const auto &KV : S->Gauges)
      Snap.Gauges[KV.first] = KV.second;
    for (const auto &KV : S->Histograms)
      Snap.Histograms[KV.first].merge(KV.second);
  }
  return Snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> SLock(S->Mutex);
    S->Counters.clear();
    S->Gauges.clear();
    S->Histograms.clear();
  }
}

size_t MetricsRegistry::numShards() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Shards.size();
}
