//===- obs/Metrics.h - Sharded metrics registry ------------------*- C++ -*-===//
///
/// \file
/// The metrics half of the observability layer: named counters, gauges
/// and fixed-bucket histograms, recorded into per-thread shards and
/// summed exactly at snapshot time.
///
/// Shard design: each recording thread gets its own shard protected by
/// its own mutex. The hot path locks only the calling thread's shard
/// mutex — always uncontended in the steady state, so recording is a
/// handful of instructions, and TSan sees a clean happens-before edge
/// at every record/snapshot pair (pinned by tests/obs/MetricsTest under
/// the TSan CI job). Counter sums are exact: shards accumulate uint64
/// increments, snapshot() adds them with no sampling and no races.
///
/// Metric naming convention (see README "Observability"):
///   <layer>.<thing>.<unit-suffix>   e.g. stage.loop_schedule.ms,
///   cache.eval.hits, sched.placements. Histograms carry a unit suffix
///   (.ms); counters and gauges are raw counts.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_OBS_METRICS_H
#define HCVLIW_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace hcvliw {
namespace obs {

/// Fixed-bucket histogram counts: Counts[i] tallies values in
/// [Bounds[i-1], Bounds[i]), with an implicit underflow-to-first and a
/// final overflow bucket; Sum/Count give the exact mean.
struct HistogramData {
  std::vector<double> Bounds; ///< ascending upper bounds, last = +inf bucket
  std::vector<uint64_t> Counts; ///< size = Bounds.size() + 1
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  uint64_t Count = 0;

  void observe(double V);
  void merge(const HistogramData &O);
};

/// Default bucket bounds for wall-time histograms, in milliseconds.
/// Quasi-logarithmic from sub-millisecond scheduler steps up to
/// multi-second whole-program runs.
std::vector<double> defaultMsBounds();

/// An exact point-in-time aggregation of every shard.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramData> Histograms;

  /// The snapshot as a JSON object string:
  /// {"counters": {...}, "gauges": {...}, "histograms": {"name":
  ///  {"count","sum","min","max","mean","bounds":[...],
  ///   "counts":[...]}}} — embedded in BENCH_*.json under "obs" and in
  /// tool --metrics output.
  std::string json() const;
};

/// Counters, gauges and histograms keyed by name. Registration is lazy:
/// the first record against a name defines it. Thread-safe throughout;
/// see the file comment for the sharding scheme.
class MetricsRegistry {
  struct Shard {
    std::mutex Mutex;
    std::unordered_map<std::string, uint64_t> Counters;
    std::unordered_map<std::string, double> Gauges;
    std::unordered_map<std::string, HistogramData> Histograms;
  };

  mutable std::mutex Mutex; ///< guards the shard list, not the shards
  std::vector<std::unique_ptr<Shard>> Shards;
  std::unordered_map<std::thread::id, Shard *> PerThread;
  uint64_t Generation; ///< for the thread-local shard cache

  Shard &shard();
  Shard &shardSlow();

public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Adds \p Delta to counter \p Name (creating it at 0).
  void addCounter(const std::string &Name, uint64_t Delta = 1);
  /// Sets gauge \p Name to \p Value (last write from any shard wins at
  /// snapshot only when shards disagree; gauges are meant to be set
  /// from one place).
  void setGauge(const std::string &Name, double Value);
  /// Records \p Ms into histogram \p Name (created on first observe
  /// with \p defaultMsBounds()).
  void observeMs(const std::string &Name, double Ms);
  /// Records \p V into histogram \p Name with explicit \p Bounds used
  /// only if this shard hasn't seen the histogram yet.
  void observe(const std::string &Name, double V,
               const std::vector<double> &Bounds);

  /// Exact sum of every shard. Safe to call while recording continues
  /// (each shard is locked while read); values already recorded are
  /// always included.
  MetricsSnapshot snapshot() const;

  /// Drops every metric in every shard (names included).
  void reset();

  size_t numShards() const;
};

} // namespace obs
} // namespace hcvliw

#endif // HCVLIW_OBS_METRICS_H
