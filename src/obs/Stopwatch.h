//===- obs/Stopwatch.h - Wall-clock sampling for observability ---*- C++ -*-===//
///
/// \file
/// The only sanctioned wall-clock source outside bench/. Every layer
/// that wants a stage duration (histograms, StageWallMs on failure
/// records, report wall-time columns) samples it through this helper
/// instead of calling std::chrono::*_clock::now() directly, so the
/// determinism contract stays mechanical: hcvliw_lint forbids raw
/// clock reads in result-producing layers (src/** minus src/obs), and
/// a grep for Stopwatch finds every place time is observed.
///
/// Wall times measured here are observability-only values. They must
/// never feed back into a scheduling decision, a result, or a cache
/// key — the same rule every obs:: surface obeys (see
/// tests/obs/TraceSuiteIdentityTest for the bit-identity pin).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_OBS_STOPWATCH_H
#define HCVLIW_OBS_STOPWATCH_H

#include <chrono>

namespace hcvliw {
namespace obs {

/// Monotonic stopwatch: starts at construction, restartable. Reads are
/// two clock samples and a subtraction — cheap enough for per-stage
/// use, not meant for per-operation hot loops (spans cover those).
class Stopwatch {
  std::chrono::steady_clock::time_point T0;

public:
  Stopwatch() : T0(std::chrono::steady_clock::now()) {}

  /// Re-arms the stopwatch at now.
  void restart() { T0 = std::chrono::steady_clock::now(); }

  /// Milliseconds elapsed since construction / the last restart().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  }
};

} // namespace obs
} // namespace hcvliw

#endif // HCVLIW_OBS_STOPWATCH_H
