//===- obs/Trace.cpp - Deterministic per-worker span tracer -----------------===//

#include "obs/Trace.h"

#include "obs/AllocHook.h"
#include "obs/BuildInfo.h"
#include "support/StrUtil.h"

#ifndef HCVLIW_NO_TRACE

#include <algorithm>
#include <cstdio>

using namespace hcvliw;
using namespace hcvliw::obs;

//===----------------------------------------------------------------------===//
// TraceBuffer
//===----------------------------------------------------------------------===//

TraceBuffer::TraceBuffer(size_t CapacityPow2, unsigned ThreadId)
    : Ring(CapacityPow2), Mask(CapacityPow2 - 1), Tid(ThreadId) {}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint64_t> TracerGenerationCounter{1};

size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N && P < (size_t(1) << 30))
    P <<= 1;
  return P;
}

} // namespace

Tracer::Tracer()
    : Epoch(std::chrono::steady_clock::now()),
      Generation(
          TracerGenerationCounter.fetch_add(1, std::memory_order_relaxed)) {}

void Tracer::enable(const TraceOptions &O) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Opts = O;
  Opts.BufferEvents = roundUpPow2(std::max<size_t>(Opts.BufferEvents, 16));
  // Restart: drop previously recorded events (buffers whose capacity no
  // longer matches are replaced; the thread map keeps the same slots).
  for (std::unique_ptr<TraceBuffer> &B : Buffers) {
    if (B->Ring.size() != Opts.BufferEvents) {
      auto Fresh = std::make_unique<TraceBuffer>(Opts.BufferEvents, B->Tid);
      for (auto &KV : PerThread)
        if (KV.second == B.get())
          KV.second = Fresh.get();
      B = std::move(Fresh);
    } else {
      B->Written = 0;
    }
  }
  Epoch = std::chrono::steady_clock::now();
  Enabled_.store(true, std::memory_order_relaxed);
}

/// The thread-local (tracer generation, buffer) cache: one entry per
/// thread, revalidated by generation so a new Tracer at a recycled
/// address never aliases a dead one's buffers.
namespace {
thread_local uint64_t CachedGeneration = 0;
thread_local TraceBuffer *CachedBuffer = nullptr;
} // namespace

TraceBuffer &Tracer::buffer() {
  if (CachedGeneration == Generation)
    return *CachedBuffer;
  return bufferSlow();
}

TraceBuffer &Tracer::bufferSlow() {
  std::lock_guard<std::mutex> Lock(Mutex);
  TraceBuffer *&Slot = PerThread[std::this_thread::get_id()];
  if (!Slot) {
    size_t Cap = Opts.BufferEvents ? roundUpPow2(Opts.BufferEvents)
                                   : TraceOptions().BufferEvents;
    Buffers.push_back(std::make_unique<TraceBuffer>(
        Cap, static_cast<unsigned>(Buffers.size())));
    Slot = Buffers.back().get();
  }
  CachedGeneration = Generation;
  CachedBuffer = Slot;
  return *Slot;
}

uint64_t Tracer::totalEvents() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->written();
  return N;
}

uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->dropped();
  return N;
}

size_t Tracer::numBuffers() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Buffers.size();
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

void Span::open(Tracer *Tr, const char *StaticName, std::string_view Suffix) {
  T = Tr;
  size_t N = std::min<size_t>(std::strlen(StaticName),
                              TraceEvent::NameCap - 1);
  std::memcpy(Name, StaticName, N);
  if (!Suffix.empty()) {
    size_t S = std::min<size_t>(Suffix.size(), TraceEvent::NameCap - 1 - N);
    std::memcpy(Name + N, Suffix.data(), S);
    N += S;
  }
  Name[N] = '\0';
  Allocs0 = allocCount();
  StartNs = Tr->nowNs();
}

void Span::close() {
  if (!T)
    return;
  TraceEvent E;
  uint64_t End = T->nowNs();
  std::memcpy(E.Name, Name, TraceEvent::NameCap);
  E.StartNs = StartNs;
  E.DurNs = End > StartNs ? End - StartNs : 0;
  uint64_t Allocs1 = allocCount();
  E.AllocDelta = Allocs1 > Allocs0 ? Allocs1 - Allocs0 : 0;
  E.NumArgs = NumArgs;
  for (unsigned I = 0; I < NumArgs; ++I) {
    E.ArgKey[I] = ArgKey[I];
    E.ArgVal[I] = ArgVal[I];
  }
  T->buffer().push(E);
  T = nullptr;
}

//===----------------------------------------------------------------------===//
// Chrome-trace-event export
//===----------------------------------------------------------------------===//

namespace {

void appendEvent(std::string &J, const TraceEvent &E, unsigned Tid,
                 bool HaveAllocHook) {
  // ts/dur are microseconds (the trace-event convention); %.3f keeps
  // nanosecond resolution.
  J += "{\"name\": \"";
  J += jsonEscape(E.Name);
  J += formatString("\", \"cat\": \"hcvliw\", \"ph\": \"X\", "
                    "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                    static_cast<double>(E.StartNs) / 1000.0,
                    static_cast<double>(E.DurNs) / 1000.0, Tid);
  if (E.NumArgs > 0 || HaveAllocHook) {
    J += ", \"args\": {";
    bool First = true;
    if (HaveAllocHook) {
      J += formatString("\"allocs\": %llu",
                        static_cast<unsigned long long>(E.AllocDelta));
      First = false;
    }
    for (unsigned I = 0; I < E.NumArgs; ++I) {
      if (!First)
        J += ", ";
      First = false;
      J += '"';
      J += jsonEscape(E.ArgKey[I]);
      J += formatString("\": %lld", static_cast<long long>(E.ArgVal[I]));
    }
    J += "}";
  }
  J += "}";
}

} // namespace

std::string Tracer::chromeTraceJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string J = "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": ";
  uint64_t Total = 0, Dropped = 0;
  for (const auto &B : Buffers) {
    Total += B->written();
    Dropped += B->dropped();
  }
  // Provenance header: which build produced this trace.
  std::string Build = buildInfoJson();
  J += formatString("{\"build\": %s, \"total_events\": %llu, "
                    "\"dropped_events\": %llu, \"workers\": %zu}",
                    Build.c_str(), static_cast<unsigned long long>(Total),
                    static_cast<unsigned long long>(Dropped),
                    Buffers.size());
  J += ",\n\"traceEvents\": [";
  bool HaveAllocHook =
      AllocCounterPtr.load(std::memory_order_acquire) != nullptr;
  bool First = true;
  for (const auto &B : Buffers) {
    // Thread-name metadata so Perfetto labels the worker tracks.
    J += First ? "\n " : ",\n ";
    First = false;
    J += formatString("{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": %u, "
                      "\"args\": {\"name\": \"%s\"}}",
                      B->Tid,
                      B->Tid == 0 ? "main" : formatString("worker-%u", B->Tid)
                                                 .c_str());
    // Oldest surviving event first (a wrapped ring starts mid-stream).
    uint64_t Kept = std::min<uint64_t>(B->Written, B->Ring.size());
    uint64_t Start = B->Written - Kept;
    for (uint64_t I = Start; I < B->Written; ++I) {
      J += ",\n ";
      appendEvent(J, B->Ring[I & B->Mask], B->Tid, HaveAllocHook);
    }
  }
  J += "\n]\n}\n";
  return J;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string J = chromeTraceJson();
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write trace file %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(J.data(), 1, J.size(), Out);
  std::fclose(Out);
  return true;
}

#else // HCVLIW_NO_TRACE

#include <cstdio>

using namespace hcvliw;
using namespace hcvliw::obs;

std::string Tracer::chromeTraceJson() const {
  // Compiled-out tracer: an empty but well-formed trace, still carrying
  // the provenance header.
  std::string J = "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": ";
  J += "{\"build\": " + buildInfoJson() +
       ", \"total_events\": 0, \"dropped_events\": 0, \"workers\": 0, "
       "\"compiled_out\": true}";
  J += ",\n\"traceEvents\": []\n}\n";
  return J;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string J = chromeTraceJson();
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write trace file %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(J.data(), 1, J.size(), Out);
  std::fclose(Out);
  return true;
}

#endif // HCVLIW_NO_TRACE
