//===- obs/Trace.h - Deterministic per-worker span tracer --------*- C++ -*-===//
///
/// \file
/// The tracing half of the observability layer (src/obs/): RAII Span
/// scopes recorded into per-worker ring buffers and exported as a
/// Chrome-trace-event JSON file that loads directly in Perfetto or
/// chrome://tracing.
///
/// Design constraints, in order:
///
///   - *Tracing never perturbs results.* Spans only observe: they read
///     the steady clock and append fixed-size records to the calling
///     thread's own buffer. No span takes a lock on the hot path, no
///     span allocates, and nothing downstream reads trace state — so a
///     suite run with tracing enabled is bit-identical to one with it
///     disabled, for any thread count (pinned by
///     tests/obs/TraceSuiteIdentityTest).
///   - *Off means free.* A Span constructed against a null tracer or a
///     disabled one is a single branch; with HCVLIW_NO_TRACE defined
///     the whole layer compiles down to empty inline stubs.
///   - *Per-worker buffers.* Each thread that opens a span gets its own
///     ring buffer (thread-keyed, exactly like the Session's
///     ScheduleScratchPool arenas), so concurrent workers never
///     contend. A full ring wraps, overwriting the *oldest* records:
///     complete-events are written at span end, so the outermost spans
///     (program, suite) finish last and always survive a wrap.
///
/// Ownership contract: the Tracer outlives every Span opened against it
/// and every thread that traced through it; export (chromeTraceJson /
/// writeChromeTrace) requires that no span is concurrently open —
/// the tools export after the run completes.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_OBS_TRACE_H
#define HCVLIW_OBS_TRACE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#ifndef HCVLIW_NO_TRACE
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>
#endif

namespace hcvliw {
namespace obs {

/// One completed span: fixed size, copied into the ring by value. Arg
/// keys must be string literals (the record stores the pointer).
struct TraceEvent {
  static constexpr unsigned NameCap = 48;
  static constexpr unsigned MaxArgs = 4;
  char Name[NameCap];
  uint64_t StartNs = 0; ///< relative to the tracer's enable() epoch
  uint64_t DurNs = 0;
  uint64_t AllocDelta = 0; ///< heap allocations inside the span (0 when
                           ///< no alloc hook is installed; obs/AllocHook.h)
  unsigned NumArgs = 0;
  const char *ArgKey[MaxArgs] = {nullptr, nullptr, nullptr, nullptr};
  int64_t ArgVal[MaxArgs] = {0, 0, 0, 0};
};

struct TraceOptions {
  /// Ring capacity per worker thread, in events (rounded up to a power
  /// of two). A full ring wraps and overwrites the oldest events; the
  /// exporter reports how many were lost.
  size_t BufferEvents = 1u << 16;
};

#ifndef HCVLIW_NO_TRACE

/// One worker thread's ring. Written only by its owner thread; read by
/// the exporter after the run (see the Tracer ownership contract).
class TraceBuffer {
  friend class Tracer;
  std::vector<TraceEvent> Ring; ///< capacity is a power of two
  size_t Mask = 0;
  uint64_t Written = 0; ///< events ever pushed (wraps overwrite)
  unsigned Tid = 0;     ///< registration order; trace-only identity

public:
  explicit TraceBuffer(size_t CapacityPow2, unsigned Tid);
  void push(const TraceEvent &E) { Ring[Written++ & Mask] = E; }
  uint64_t written() const { return Written; }
  uint64_t dropped() const {
    return Written > Ring.size() ? Written - Ring.size() : 0;
  }
};

class Tracer {
  std::atomic<bool> Enabled_{false};
  TraceOptions Opts;
  std::chrono::steady_clock::time_point Epoch;
  uint64_t Generation; ///< distinguishes tracer instances for the
                       ///< thread-local buffer cache
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
  std::unordered_map<std::thread::id, TraceBuffer *> PerThread;

  TraceBuffer &bufferSlow();

public:
  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Starts (or restarts) recording: resets every buffer and the time
  /// epoch. Not callable while spans are open.
  void enable(const TraceOptions &O = TraceOptions());
  /// Stops recording (already-buffered events stay exportable).
  void disable() { Enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the enable() epoch.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// The calling thread's ring (created on first use; cached in a
  /// thread-local afterwards, so the steady state takes no lock).
  TraceBuffer &buffer();

  uint64_t totalEvents() const;   ///< events recorded (dropped included)
  uint64_t droppedEvents() const; ///< events lost to ring wraps
  size_t numBuffers() const;

  /// The whole trace as a Chrome-trace-event JSON object (loads in
  /// Perfetto / chrome://tracing): {"traceEvents": [...], "otherData":
  /// {build provenance, drop counts}}. Call only when no span is open.
  std::string chromeTraceJson() const;
  /// Writes chromeTraceJson() to \p Path; false (with a warning on
  /// stderr) on IO errors.
  bool writeChromeTrace(const std::string &Path) const;
};

/// RAII span scope. Usage:
///
///   obs::Span Sp(Trace, "part.coarsen");         // static name
///   obs::Span Sp(Trace, "program:", Prog.Name);  // name + suffix
///   Sp.arg("placements", SR.Placements);          // literal keys only
///
/// Cost when \p T is null or disabled: one branch. The span records one
/// complete-event (start, duration, alloc delta, args) into the calling
/// thread's ring at destruction.
class Span {
  Tracer *T = nullptr;
  uint64_t StartNs = 0;
  uint64_t Allocs0 = 0;
  char Name[TraceEvent::NameCap];
  unsigned NumArgs = 0;
  const char *ArgKey[TraceEvent::MaxArgs];
  int64_t ArgVal[TraceEvent::MaxArgs];

  void open(Tracer *Tr, const char *StaticName, std::string_view Suffix);

public:
  Span(Tracer *Tr, const char *StaticName) {
    if (Tr && Tr->enabled())
      open(Tr, StaticName, {});
  }
  Span(Tracer *Tr, const char *StaticName, std::string_view Suffix) {
    if (Tr && Tr->enabled())
      open(Tr, StaticName, Suffix);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() { close(); }

  /// True when this span is actually recording (tracer on at open).
  bool active() const { return T != nullptr; }

  /// Attaches a counter to the span (\p Key must be a string literal;
  /// at most TraceEvent::MaxArgs stick, extras are dropped).
  void arg(const char *Key, int64_t Value) {
    if (!T || NumArgs >= TraceEvent::MaxArgs)
      return;
    ArgKey[NumArgs] = Key;
    ArgVal[NumArgs] = Value;
    ++NumArgs;
  }

  /// Ends the span early (the destructor is then a no-op).
  void close();
};

#else // HCVLIW_NO_TRACE: the whole layer compiles to empty stubs.

class TraceBuffer {};

class Tracer {
public:
  Tracer() = default;
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;
  void enable(const TraceOptions & = TraceOptions()) {}
  void disable() {}
  bool enabled() const { return false; }
  uint64_t nowNs() const { return 0; }
  uint64_t totalEvents() const { return 0; }
  uint64_t droppedEvents() const { return 0; }
  size_t numBuffers() const { return 0; }
  std::string chromeTraceJson() const;
  bool writeChromeTrace(const std::string &Path) const;
};

class Span {
public:
  Span(Tracer *, const char *) {}
  Span(Tracer *, const char *, std::string_view) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  bool active() const { return false; }
  void arg(const char *, int64_t) {}
  void close() {}
};

#endif // HCVLIW_NO_TRACE

} // namespace obs
} // namespace hcvliw

#endif // HCVLIW_OBS_TRACE_H
