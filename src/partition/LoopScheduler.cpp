//===- partition/LoopScheduler.cpp - Figure 5 driver ------------------------===//

#include "partition/LoopScheduler.h"
#include "mcd/DomainPlanner.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

LoopScheduler::LoopScheduler(const MachineDescription &M,
                             const HeteroConfig &C,
                             const LoopScheduleOptions &O)
    : Machine(M), Config(C), Opts(O) {
  assert(C.numClusters() == M.numClusters() &&
         "configuration does not match machine");
}

LoopScheduleResult
LoopScheduler::schedule(const Loop &L, const EnergyModel *Energy,
                        const HeteroScaling *Scaling) const {
  LoopScheduleResult R;
  assert(L.validate().empty() && "scheduling an invalid loop");
  assert(((Energy == nullptr) == (Scaling == nullptr)) &&
         "energy model and scaling come together");

  DDG G = DDG::build(L);
  std::vector<unsigned> Lat = Machine.Isa.nodeLatencies(L);
  RecurrenceInfo Recs = analyzeRecurrences(G, Lat);
  R.RecMII = Recs.RecMII;
  R.ResMII = Machine.computeResMII(L);

  DomainPlanner Planner(Machine, Config, Opts.Menu);
  R.MITNs = Planner.computeMIT(Recs.RecMII, L.opCountsByFU());

  PartitionerOptions PartOpts = Opts.Part;
  if (!Energy)
    PartOpts.ED2Objective = false;

  // The coarsening slack matrix is IT-independent: compute it once here
  // instead of once per (IT step x partitioner attempt).
  MinDistMatrix Slack;
  MinDistMatrix::computeInto(Slack, G, Lat,
                             std::max<int64_t>(Recs.RecMII, 1));

  Rational IT = R.MITNs;
  for (unsigned Step = 0; Step <= Opts.MaxITSteps; ++Step) {
    R.ITSteps = Step;
    auto Plan = Planner.planForIT(IT);
    if (!Plan) {
      R.Failure = "synchronization: no (II, freq) pair for some domain";
      IT = Planner.nextIT(IT);
      continue;
    }

    PartitionContext Ctx;
    Ctx.L = &L;
    Ctx.G = &G;
    Ctx.M = &Machine;
    Ctx.Plan = &*Plan;
    Ctx.Recs = &Recs;
    Ctx.Energy = Energy;
    Ctx.Scaling = Scaling;
    Ctx.TripCount = L.TripCount;
    Ctx.SlackMatrix = &Slack;

    // The ED2-guided partition is tried first; if its schedule cannot be
    // completed at this IT, fall back to the balance-first partition of
    // [3] before paying an IT increase (growing the IT on a restricted
    // frequency menu can overshoot to a much slower sync point).
    std::vector<PartitionerOptions> Attempts = {PartOpts};
    if (PartOpts.ED2Objective) {
      PartitionerOptions Balance = PartOpts;
      Balance.ED2Objective = false;
      Attempts.push_back(Balance);
    }

    bool Done = false;
    for (const PartitionerOptions &PO : Attempts) {
      auto Assignment = partitionLoop(Ctx, PO);
      if (!Assignment) {
        R.Failure = "no feasible partition";
        continue;
      }

      PartitionedGraph PG = PartitionedGraph::build(
          L, G, Machine.Isa, *Assignment, Machine.numClusters(),
          Machine.BusLatency);

      HeteroModuloScheduler Scheduler(Machine, PG, *Plan, Opts.Sched);
      SchedulerResult SR = Scheduler.run();
      R.Placements += SR.Placements;
      R.Ejections += SR.Ejections;
      R.BudgetUsed += SR.BudgetUsed;
      if (!SR.Success) {
        R.Failure = SR.FailureReason;
        continue;
      }

      RegisterPressureResult Pressure =
          computeRegisterPressure(PG, SR.Sched, Opts.Sched.UseTickGrid);
      if (!Pressure.fits(Machine)) {
        R.Failure = "register pressure exceeds the register files";
        continue;
      }

      ValidatorOptions VO;
      VO.UseTickGrid = Opts.Sched.UseTickGrid;
      // Pressure was computed and bounds-checked just above; don't pay
      // a second full computation inside the validator.
      VO.CheckRegisterPressure = false;
      std::string Err = validateSchedule(Machine, PG, SR.Sched, VO);
      assert(Err.empty() && "scheduler produced an invalid schedule");
      (void)Err;

      R.Success = true;
      R.Failure.clear();
      R.Sched = std::move(SR.Sched);
      R.PG = std::move(PG);
      R.Assignment = std::move(*Assignment);
      R.Pressure = std::move(Pressure);
      Done = true;
      break;
    }
    if (Done)
      return R;
    IT = Planner.nextIT(IT);
  }
  return R;
}
