//===- partition/LoopScheduler.cpp - Figure 5 driver ------------------------===//
//
// The IT sweep, with the warm-start optimisations of the file header.
// Every warm-start shortcut below is exact:
//
//   - The recurrence lower-bound prune skips an IT only when *every*
//     cluster assignment provably fails: a dependence cycle needs
//     sum(latency_e * period(cluster(src_e))) <= distance * IT, every
//     source period is >= the plan's fastest cluster period Pmin, and
//     sync-queue alignment only delays — so IT <= (RecMII - 1) * Pmin
//     (which implies IT/Pmin below the critical cycle ratio) makes the
//     pseudo-schedule's recurrence check fail for every candidate and
//     both partition attempts return "no feasible partition", exactly
//     what the cold path computes the long way.
//   - The coarsening memo and the partitioned-graph memo fire only on
//     exact input matches (MultilevelGraph and PartitionedGraph are
//     pure functions of those inputs).
//   - A second attempt whose partition equals the first attempt's
//     failed one replays the recorded outcome; the scheduler is a pure
//     function of (PG, plan), so the cold path's second run returns the
//     identical result and counter deltas.
//
//===----------------------------------------------------------------------===//

#include "partition/LoopScheduler.h"
#include "fault/Fault.h"
#include "mcd/DomainPlanner.h"
#include "partition/ScheduleScratch.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

std::string LoopScheduleResult::failureSummary(size_t MaxEntries) const {
  if (FailureLog.empty())
    return Success ? "" : Failure;
  std::string Out;
  size_t First =
      FailureLog.size() > MaxEntries ? FailureLog.size() - MaxEntries : 0;
  if (First > 0)
    Out += formatString("[%zu earlier failures] ", First);
  for (size_t I = First; I < FailureLog.size(); ++I) {
    const ITFailure &F = FailureLog[I];
    if (I > First)
      Out += "; ";
    Out += formatString("IT+%u (%s ns): %s", F.Step, F.ITNs.str().c_str(),
                        F.Reason.c_str());
    if (F.Count > 1)
      Out += formatString(" x%u", F.Count);
  }
  return Out;
}

LoopScheduler::LoopScheduler(const MachineDescription &M,
                             const HeteroConfig &C,
                             const LoopScheduleOptions &O)
    : Machine(M), Config(C), Opts(O), Planner(M, Config, Opts.Menu) {
  assert(C.numClusters() == M.numClusters() &&
         "configuration does not match machine");
}

namespace {

/// Appends one failed attempt to the log, folding consecutive identical
/// failures of one step (the warm path replays these folds exactly).
void logFailure(std::vector<ITFailure> &Log, unsigned Step,
                const Rational &ITNs, const std::string &Reason,
                unsigned Count = 1) {
  if (!Log.empty() && Log.back().Step == Step && Log.back().Reason == Reason) {
    Log.back().Count += Count;
    return;
  }
  ITFailure F;
  F.Step = Step;
  F.ITNs = ITNs;
  F.Reason = Reason;
  F.Count = Count;
  Log.push_back(std::move(F));
}

} // namespace

LoopScheduleResult
LoopScheduler::schedule(const Loop &L, const EnergyModel *Energy,
                        const HeteroScaling *Scaling,
                        ScheduleScratch *Scratch,
                        obs::Tracer *Trace) const {
  LoopScheduleResult R;
  assert(L.validate().empty() && "scheduling an invalid loop");
  assert(((Energy == nullptr) == (Scaling == nullptr)) &&
         "energy model and scaling come together");
  obs::Span LoopSp(Trace, "loop.schedule:", L.Name);

  // The arena: caller-provided per-worker scratch, or a local one for
  // this call (still reused across the whole IT sweep).
  std::unique_ptr<ScheduleScratch> Own;
  if (!Scratch) {
    Own = std::make_unique<ScheduleScratch>();
    Scratch = Own.get();
  }
  ScheduleScratch &S = *Scratch;
  S.beginLoopRun();
  const bool Warm = Opts.WarmStart;
  S.Part.EnableMemo = Warm;

  // Per-loop fault context ("<program>/<loop>" — a serial execution
  // stream, so occurrence counts are thread-count invariant). Composed
  // only while the injector is armed; idle runs pay one branch.
  std::string FaultCtx;
  if (Opts.Fault && Opts.Fault->armed())
    FaultCtx = Opts.FaultContext + "/" + L.Name;
  // Warm-path-only site: a throw here leaves the cold (WarmStart=false)
  // path untouched, so the measurement layer's cold-replay rung can
  // retry this loop and succeed — and the retry does not re-fire,
  // because the occurrence already counted.
  if (Warm)
    HCVLIW_FAULT_POINT(Opts.Fault, "sched.warm", FaultCtx);

  DDG::buildInto(S.G, L);
  Machine.Isa.nodeLatenciesInto(S.Lat, L);

  // Recurrence analysis + coarsening slack matrix: IT-independent pure
  // functions of (loop, latencies). The warm path memoizes them across
  // whole schedule() runs — the slack matrix is Floyd-Warshall, the
  // one O(N^3) step of this driver, and the dominant cost of big loops
  // — while the cold path recomputes both every call.
  const RecurrenceInfo *Recs;
  const MinDistMatrix *Slack;
  RecurrenceInfo ColdRecs;
  if (const LoopAnalysisMemo *A =
          Warm ? S.findAnalysis(L.structuralFingerprint(), S.Lat) : nullptr) {
    Recs = &A->Recs;
    Slack = &A->Slack;
  } else {
    ColdRecs = analyzeRecurrences(S.G, S.Lat);
    MinDistMatrix::computeInto(S.Slack, S.G, S.Lat,
                               std::max<int64_t>(ColdRecs.RecMII, 1));
    if (Warm) {
      LoopAnalysisMemo &Slot = S.analysisSlot();
      Slot.Fp = L.structuralFingerprint();
      Slot.Lat = S.Lat;
      Slot.Recs = std::move(ColdRecs);
      Slot.Slack = S.Slack;
      Recs = &Slot.Recs;
      Slack = &Slot.Slack;
    } else {
      Recs = &ColdRecs;
      Slack = &S.Slack;
    }
  }
  R.RecMII = Recs->RecMII;
  R.ResMII = Machine.computeResMII(L);

  R.MITNs = Planner.computeMIT(Recs->RecMII, L.opCountsByFU());

  PartitionerOptions PartOpts = Opts.Part;
  if (!Energy)
    PartOpts.ED2Objective = false;
  const unsigned NumAttempts = PartOpts.ED2Objective ? 2 : 1;
  const unsigned NC = Machine.numClusters();

  Rational IT = R.MITNs;
  bool Done = false;
  for (unsigned Step = 0; Step <= Opts.MaxITSteps && !Done; ++Step) {
    obs::Span StepSp(Trace, "loop.itstep");
    if (StepSp.active())
      StepSp.arg("step", Step);
    R.ITSteps = Step;
    // Deterministic per-loop deadline: effort (BudgetUsed is part of
    // the warm==cold equivalence contract), never wall clock, so every
    // thread count gives up at the identical point.
    if (Opts.EffortDeadline && R.BudgetUsed >= Opts.EffortDeadline) {
      R.Failure = "effort deadline exhausted";
      logFailure(R.FailureLog, Step, IT, R.Failure);
      break;
    }
    auto Plan = Planner.planForIT(IT);
    if (!Plan) {
      R.Failure = "synchronization: no (II, freq) pair for some domain";
      logFailure(R.FailureLog, Step, IT, R.Failure);
      IT = Planner.nextIT(IT);
      continue;
    }

    // Warm-start lower-bound prune (exact; see file header): when the
    // critical recurrence cannot be placed in *any* cluster at this IT,
    // both partition attempts are doomed to "no feasible partition" —
    // record that outcome without paying them. (NC == 1 machines skip
    // partitioning entirely, so the cold path fails elsewhere there.)
    if (Warm && NC > 1 && R.RecMII >= 2) {
      Rational Pmin = Plan->Clusters[0].PeriodNs;
      for (unsigned C = 1; C < NC; ++C)
        Pmin = Rational::min(Pmin, Plan->Clusters[C].PeriodNs);
      if (!(Rational(R.RecMII - 1) * Pmin < IT)) {
        R.Failure = "no feasible partition";
        logFailure(R.FailureLog, Step, IT, R.Failure, NumAttempts);
        ++R.PrunedITSteps;
        IT = Planner.nextIT(IT);
        continue;
      }
    }

    PartitionContext Ctx;
    Ctx.L = &L;
    Ctx.G = &S.G;
    Ctx.M = &Machine;
    Ctx.Plan = &*Plan;
    Ctx.Recs = Recs;
    Ctx.Energy = Energy;
    Ctx.Scaling = Scaling;
    Ctx.TripCount = L.TripCount;
    Ctx.SlackMatrix = Slack;
    Ctx.Scratch = &S.Part;
    Ctx.Trace = Trace;
    Ctx.Stats = &R.PartStats;
    Ctx.Fault = Opts.Fault;
    Ctx.FaultCtx = FaultCtx;

    // The ED2-guided partition is tried first; if its schedule cannot be
    // completed at this IT, fall back to the balance-first partition of
    // [3] before paying an IT increase (growing the IT on a restricted
    // frequency menu can overshoot to a much slower sync point).
    PartitionerOptions Attempts[2] = {PartOpts, PartOpts};
    if (NumAttempts == 2)
      Attempts[1].ED2Objective = false;

    // Outcome of this step's first failed attempt, for the exact
    // duplicate-assignment replay (scheduler and pressure are pure
    // functions of (PG, plan), so an identical partition fails
    // identically — the cold path recomputes the same counters).
    Partition FirstTry;
    SchedulerResult FirstSR;
    std::string FirstFailure;
    bool HaveFirstTry = false;

    for (unsigned Att = 0; Att < NumAttempts; ++Att) {
      const PartitionerOptions &PO = Attempts[Att];
      auto Assignment = partitionLoop(Ctx, PO);
      if (!Assignment) {
        R.Failure = "no feasible partition";
        logFailure(R.FailureLog, Step, IT, R.Failure);
        continue;
      }

      if (Warm && HaveFirstTry &&
          Assignment->ClusterOf == FirstTry.ClusterOf) {
        // Same partition as the failed first attempt: replay its
        // outcome (identical SR on recomputation) instead of paying it.
        R.Placements += FirstSR.Placements;
        R.Ejections += FirstSR.Ejections;
        R.BudgetUsed += FirstSR.BudgetUsed;
        R.FallbackRational += FirstSR.FallbackRational ? 1 : 0;
        R.Failure = FirstFailure;
        logFailure(R.FailureLog, Step, IT, R.Failure);
        continue;
      }

      // Materialize the partitioned graph — reusing the memoized one
      // when this assignment is the one it already holds (the common
      // case across IT steps once the partition stabilizes).
      if (!(Warm && S.PGValid &&
            Assignment->ClusterOf == S.PGAssignment.ClusterOf)) {
        PartitionedGraph::buildInto(S.PG, L, S.G, Machine.Isa, *Assignment,
                                    NC, Machine.BusLatency, &S.PGCopySlots,
                                    &S.Lat);
        if (Warm) {
          S.PGAssignment = *Assignment;
          S.PGValid = true;
        }
      }

      // One tick lowering per attempt, shared by the scheduler, the
      // register-pressure computation and the validator. An invalid
      // lowering (grid overflow) is passed through as-is: every
      // consumer treats it as "known no grid, use Rational".
      if (Opts.Sched.UseTickGrid)
        TickGraph::buildInto(S.Ticks, S.PG, *Plan);
      const TickGraph *Ticks =
          Opts.Sched.UseTickGrid ? &S.Ticks : nullptr;

      HCVLIW_FAULT_POINT(Opts.Fault, "sched.place", FaultCtx);
      HeteroModuloScheduler Scheduler(Machine, S.PG, *Plan, Opts.Sched);
      SchedulerResult SR = Scheduler.run(Ticks, &S.Sched, Trace);
      R.Placements += SR.Placements;
      R.Ejections += SR.Ejections;
      R.BudgetUsed += SR.BudgetUsed;
      R.FallbackRational += SR.FallbackRational ? 1 : 0;
      if (!SR.Success) {
        R.Failure = SR.FailureReason;
        logFailure(R.FailureLog, Step, IT, R.Failure);
        if (Warm && !HaveFirstTry) {
          FirstTry = std::move(*Assignment);
          FirstSR = std::move(SR);
          FirstFailure = R.Failure;
          HaveFirstTry = true;
        }
        continue;
      }

      RegisterPressureResult Pressure = computeRegisterPressure(
          S.PG, SR.Sched, Opts.Sched.UseTickGrid, Ticks, &S.Pressure);
      if (!Pressure.fits(Machine) && Opts.Sched.CompactLifetimes) {
        // Salvage: stage compaction collapses whole-II lifetime
        // crossings (the dominant pressure term on wide graphs) while
        // keeping the schedule valid by construction. Applied only on
        // overflow — schedules that already fit keep the historical
        // makespan-optimal shape. Pure function of (PG, Plan, Sched),
        // so warm and cold sweeps rescue identically.
        obs::Span CSp(Trace, "sched.compact");
        unsigned Moved = compactScheduleLifetimes(
            S.PG, *Plan, Ticks, SR.Sched, Opts.Sched.MaxSlotMultiple,
            &S.Sched);
        if (Moved)
          Pressure = computeRegisterPressure(
              S.PG, SR.Sched, Opts.Sched.UseTickGrid, Ticks, &S.Pressure);
        if (CSp.active()) {
          CSp.arg("moved", static_cast<int64_t>(Moved));
          CSp.arg("fits", Pressure.fits(Machine) ? 1 : 0);
        }
      }
      if (!Pressure.fits(Machine)) {
        R.Failure = "register pressure exceeds the register files";
        logFailure(R.FailureLog, Step, IT, R.Failure);
        if (Warm && !HaveFirstTry) {
          FirstTry = std::move(*Assignment);
          FirstSR = std::move(SR);
          FirstFailure = R.Failure;
          HaveFirstTry = true;
        }
        continue;
      }

      ValidatorOptions VO;
      VO.UseTickGrid = Opts.Sched.UseTickGrid;
      VO.Ticks = Ticks;
      // Pressure was computed and bounds-checked just above; don't pay
      // a second full computation inside the validator.
      VO.CheckRegisterPressure = false;
      std::string Err = validateSchedule(Machine, S.PG, SR.Sched, VO);
      assert(Err.empty() && "scheduler produced an invalid schedule");
      (void)Err;

      R.Success = true;
      R.Failure.clear();
      R.Sched = std::move(SR.Sched);
      // The graph escapes the arena: move it out and drop the memo (the
      // scratch rebuilds next run; nothing may reference arena storage
      // after schedule() returns).
      R.PG = std::move(S.PG);
      S.PGValid = false;
      R.Assignment = std::move(*Assignment);
      R.Pressure = std::move(Pressure);
      Done = true;
      break;
    }
    if (!Done)
      IT = Planner.nextIT(IT);
  }
  if (LoopSp.active()) {
    LoopSp.arg("it_steps", R.ITSteps);
    LoopSp.arg("placements", static_cast<int64_t>(R.Placements));
    LoopSp.arg("ejections", static_cast<int64_t>(R.Ejections));
    LoopSp.arg("ok", R.Success ? 1 : 0);
  }
  return R;
}
