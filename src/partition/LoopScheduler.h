//===- partition/LoopScheduler.h - Figure 5 driver ---------------*- C++ -*-===//
///
/// \file
/// The top-level per-loop code-generation flow of the paper's Figure 5:
///
///   compute MIT -> IT := MIT -> select IIs & frequencies -> partition
///   the DDG -> schedule; on any failure (synchronization, partitioning,
///   scheduling, register pressure) increase the IT and retry.
///
/// The same driver serves homogeneous machines (every domain at one
/// frequency, baseline [2][3] objective) and heterogeneous ones (ED2
/// objective, Section 4 extensions).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_LOOPSCHEDULER_H
#define HCVLIW_PARTITION_LOOPSCHEDULER_H

#include "partition/Partitioner.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/RegisterPressure.h"
#include "sched/ScheduleValidator.h"

namespace hcvliw {

struct LoopScheduleOptions {
  FrequencyMenu Menu = FrequencyMenu::continuous();
  SchedulerOptions Sched;
  PartitionerOptions Part;
  /// IT growth attempts before giving up.
  unsigned MaxITSteps = 64;
};

struct LoopScheduleResult {
  bool Success = false;
  std::string Failure;

  Schedule Sched;
  PartitionedGraph PG;
  Partition Assignment;
  RegisterPressureResult Pressure;

  Rational MITNs;
  unsigned ITSteps = 0; ///< times the IT was increased past the MIT

  /// Scheduler effort over the whole Figure 5 run (every attempt at
  /// every IT step, failed ones included): placements made, nodes
  /// ejected, and placement-loop iterations consumed. Deterministic for
  /// fixed inputs, so cached results carry identical counters.
  uint64_t Placements = 0;
  uint64_t Ejections = 0;
  uint64_t BudgetUsed = 0;

  /// Reference-machine classification stats (Table 2): recurrence- and
  /// resource-constrained MII of the loop.
  int64_t RecMII = 0;
  int64_t ResMII = 0;
};

class LoopScheduler {
  const MachineDescription &Machine;
  HeteroConfig Config;
  LoopScheduleOptions Opts;

public:
  LoopScheduler(const MachineDescription &M, const HeteroConfig &C,
                const LoopScheduleOptions &O = LoopScheduleOptions());

  /// Schedules \p L; \p Energy / \p Scaling enable the ED2 partitioning
  /// objective (both or neither).
  LoopScheduleResult schedule(const Loop &L,
                              const EnergyModel *Energy = nullptr,
                              const HeteroScaling *Scaling = nullptr) const;
};

} // namespace hcvliw

#endif // HCVLIW_PARTITION_LOOPSCHEDULER_H
