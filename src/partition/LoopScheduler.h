//===- partition/LoopScheduler.h - Figure 5 driver ---------------*- C++ -*-===//
///
/// \file
/// The top-level per-loop code-generation flow of the paper's Figure 5:
///
///   compute MIT -> IT := MIT -> select IIs & frequencies -> partition
///   the DDG -> schedule; on any failure (synchronization, partitioning,
///   scheduling, register pressure) increase the IT and retry.
///
/// The same driver serves homogeneous machines (every domain at one
/// frequency, baseline [2][3] objective) and heterogeneous ones (ED2
/// objective, Section 4 extensions).
///
/// The sweep is *warm-started* by default (LoopScheduleOptions::
/// WarmStart): an IT step whose critical recurrence provably cannot be
/// placed is skipped without paying the partition attempts, the
/// coarsening level stack is carried across attempts and IT steps when
/// its inputs are unchanged, the partitioned graph is carried forward
/// whenever an attempt re-derives the previous assignment, and a second
/// attempt that re-derives the first attempt's failed assignment reuses
/// its outcome. Every one of these is an exact memo or an exact lower
/// bound — results (schedule, counters, failure log) are bit-identical
/// to the retained WarmStart=false cold path, which recomputes
/// everything from scratch at every step; tests/sched/WarmStartTest
/// pins the equivalence the way TickDomainTest pins tick-vs-Rational.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_LOOPSCHEDULER_H
#define HCVLIW_PARTITION_LOOPSCHEDULER_H

#include "partition/Partitioner.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/RegisterPressure.h"
#include "sched/ScheduleValidator.h"

namespace hcvliw {

namespace fault {
class FaultInjector;
}

struct ScheduleScratch;

struct LoopScheduleOptions {
  FrequencyMenu Menu = FrequencyMenu::continuous();
  SchedulerOptions Sched;
  PartitionerOptions Part;
  /// IT growth attempts before giving up.
  unsigned MaxITSteps = 64;
  /// Warm-start the IT sweep (exact memos + lower-bound prune; see the
  /// file header). Bit-identical to the cold path, so — like
  /// SchedulerOptions::UseTickGrid — not part of any cache key.
  bool WarmStart = true;
  /// Hard ceiling on scheduler effort for one schedule() run, in
  /// BudgetUsed units (placement-loop iterations); 0 = unlimited. When
  /// the accumulated budget crosses the ceiling the sweep stops with
  /// an "effort deadline exhausted" failure — a *deterministic* per-loop
  /// deadline (effort, never wall clock), so every thread count and
  /// every machine gives up at the same point. Changes results when it
  /// fires, hence part of the schedule-cache key (loopScheduleKey).
  uint64_t EffortDeadline = 0;
  /// Optional fault injector (armed test/chaos runs only; null in
  /// production). Fault sites: "sched.warm" fires on the warm path
  /// only, "sched.place" before every scheduler run. Injection changes
  /// results by design; callers must not mix armed runs with shared
  /// caches (ScheduleMeasurer bypasses the ScheduleCache while armed).
  fault::FaultInjector *Fault = nullptr;
  /// Context string for fault sites: the program name; per-loop sites
  /// use FaultContext + "/" + Loop::Name, which is a serial execution
  /// stream, so occurrence counts are thread-count invariant.
  std::string FaultContext;
};

/// One failed (IT step, attempt) of the Figure 5 sweep; consecutive
/// identical failures at one step are folded into Count.
struct ITFailure {
  unsigned Step = 0; ///< IT growths past the MIT when this failed
  Rational ITNs;     ///< the IT attempted
  std::string Reason;
  unsigned Count = 1;
};

struct LoopScheduleResult {
  bool Success = false;
  std::string Failure;

  Schedule Sched;
  PartitionedGraph PG;
  Partition Assignment;
  RegisterPressureResult Pressure;

  Rational MITNs;
  unsigned ITSteps = 0; ///< times the IT was increased past the MIT

  /// Scheduler effort over the whole Figure 5 run (every attempt at
  /// every IT step, failed ones included): placements made, nodes
  /// ejected, and placement-loop iterations consumed. Deterministic for
  /// fixed inputs, so cached results carry identical counters.
  uint64_t Placements = 0;
  uint64_t Ejections = 0;
  uint64_t BudgetUsed = 0;

  /// Scheduler runs (over the whole sweep) that silently fell back from
  /// the requested tick grid to the Rational path (SchedulerResult::
  /// FallbackRational). Unlike the effort counters this is part of the
  /// warm==cold equivalence contract — the duplicate-assignment replay
  /// re-counts it from the recorded first attempt — and cached results
  /// carry it, so the sched.fallback_rational metric is identical with
  /// or without the schedule cache.
  unsigned FallbackRational = 0;

  /// Every failed (IT step, attempt) of the sweep, in order — the
  /// per-IT failure aggregation SuiteFailure records surface. Identical
  /// on the warm and cold paths (warm-start skips work, not outcomes).
  std::vector<ITFailure> FailureLog;

  /// IT steps the warm-start lower bound skipped without paying the
  /// partition attempts. Diagnostic only (always 0 on the cold path):
  /// the one field that reports work *saved*, so it is excluded from
  /// the warm-vs-cold equivalence contract.
  unsigned PrunedITSteps = 0;

  /// Partitioner effort over the whole sweep (coarsening levels,
  /// matched pairs, refinement passes/moves; PartitionStats). Like
  /// PrunedITSteps these report work *performed*, so the warm path —
  /// which skips work — legitimately reports smaller values and they
  /// are excluded from the warm-vs-cold equivalence contract.
  PartitionStats PartStats;

  /// Reference-machine classification stats (Table 2): recurrence- and
  /// resource-constrained MII of the loop.
  int64_t RecMII = 0;
  int64_t ResMII = 0;

  /// Human-readable digest of FailureLog: which stage failed at which
  /// IT, most recent \p MaxEntries steps, earlier ones summarized.
  std::string failureSummary(size_t MaxEntries = 4) const;
};

class LoopScheduler {
  const MachineDescription &Machine;
  HeteroConfig Config;
  LoopScheduleOptions Opts;
  DomainPlanner Planner; ///< fixed per (machine, config, menu)

public:
  LoopScheduler(const MachineDescription &M, const HeteroConfig &C,
                const LoopScheduleOptions &O = LoopScheduleOptions());

  /// Schedules \p L; \p Energy / \p Scaling enable the ED2 partitioning
  /// objective (both or neither). \p Scratch provides the per-worker
  /// arena (reusable buffers + warm-start memos); when null a local
  /// arena serves this one call. Results are bit-identical for any
  /// scratch (ScheduleScratch contract). \p Trace, when enabled,
  /// records a "loop.schedule:<name>" span per run and one
  /// "loop.itstep" span per IT step (observation only; the schedule
  /// never depends on it).
  LoopScheduleResult schedule(const Loop &L,
                              const EnergyModel *Energy = nullptr,
                              const HeteroScaling *Scaling = nullptr,
                              ScheduleScratch *Scratch = nullptr,
                              obs::Tracer *Trace = nullptr) const;
};

} // namespace hcvliw

#endif // HCVLIW_PARTITION_LOOPSCHEDULER_H
