//===- partition/MultilevelGraph.cpp - Macro-node coarsening ----------------===//

#include "partition/MultilevelGraph.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace hcvliw;

CoarseLevel
MultilevelGraph::makeLevelFromGroups(const std::vector<int> &GroupOf,
                                     unsigned NumGroups,
                                     const std::vector<int> &Pins) const {
  CoarseLevel Lvl;
  Lvl.Macros.resize(NumGroups);
  Lvl.MacroOf.resize(G->size());
  for (unsigned I = 0; I < NumGroups; ++I) {
    Lvl.Macros[I].FUCounts.assign(NumFUKinds, 0);
    Lvl.Macros[I].Pin = Pins[I];
  }
  for (unsigned N = 0; N < G->size(); ++N) {
    assert(GroupOf[N] >= 0 && "node without a group");
    unsigned Gp = static_cast<unsigned>(GroupOf[N]);
    Lvl.MacroOf[N] = Gp;
    MacroNode &Mac = Lvl.Macros[Gp];
    Mac.Members.push_back(N);
    ++Mac.FUCounts[static_cast<unsigned>(fuKindOf(L->Ops[N].Op))];
    Mac.Weight += M->Isa.energy(L->Ops[N].Op);
  }
  return Lvl;
}

void MultilevelGraph::build(
    const Loop &TheLoop, const DDG &TheDDG,
    const MachineDescription &TheMachine,
    const std::vector<std::vector<unsigned>> &InitialGroups,
    const std::vector<int> &GroupPins, const MinDistMatrix &Slack,
    unsigned TargetMacros) {
  L = &TheLoop;
  G = &TheDDG;
  M = &TheMachine;
  Levels.clear();
  assert(InitialGroups.size() == GroupPins.size() &&
         "one pin slot per initial group");

  // Finest level: initial groups plus singletons.
  std::vector<int> GroupOf(G->size(), -1);
  std::vector<int> Pins;
  unsigned NumGroups = 0;
  for (unsigned Gp = 0; Gp < InitialGroups.size(); ++Gp) {
    for (unsigned N : InitialGroups[Gp]) {
      assert(GroupOf[N] < 0 && "node in two initial groups");
      GroupOf[N] = static_cast<int>(NumGroups);
    }
    Pins.push_back(GroupPins[Gp]);
    ++NumGroups;
  }
  for (unsigned N = 0; N < G->size(); ++N)
    if (GroupOf[N] < 0) {
      GroupOf[N] = static_cast<int>(NumGroups++);
      Pins.push_back(-1);
    }
  Levels.push_back(makeLevelFromGroups(GroupOf, NumGroups, Pins));

  // A macro may not exceed the largest per-cluster capacity of any FU
  // kind: a bigger macro could never be scheduled in one cluster.
  std::vector<unsigned> MaxKindCap(NumFUKinds, 0);
  for (unsigned K = 0; K < NumFUKinds; ++K)
    for (const auto &C : M->Clusters)
      MaxKindCap[K] =
          std::max(MaxKindCap[K], C.fuCount(static_cast<FUKind>(K)));

  // Coarsening rounds: contract a matching along lowest-slack edges.
  while (Levels.back().Macros.size() > TargetMacros) {
    const CoarseLevel &Cur = Levels.back();
    unsigned NumMac = static_cast<unsigned>(Cur.Macros.size());

    // Candidate macro-level edges with the minimum node-level slack.
    struct Cand {
      unsigned A, B;
      int64_t Slack;
      double Weight;
    };
    std::map<std::pair<unsigned, unsigned>, Cand> Cands;
    for (const auto &E : G->edges()) {
      unsigned A = Cur.MacroOf[E.Src], B = Cur.MacroOf[E.Dst];
      if (A == B)
        continue;
      if (A > B)
        std::swap(A, B);
      int64_t S = Slack.slack(E.Src, E.Dst, /*II=*/0);
      auto Key = std::make_pair(A, B);
      auto It = Cands.find(Key);
      if (It == Cands.end())
        Cands.emplace(Key, Cand{A, B, S, 1.0});
      else {
        It->second.Slack = std::min(It->second.Slack, S);
        It->second.Weight += 1.0;
      }
    }
    std::vector<Cand> Ordered;
    Ordered.reserve(Cands.size());
    for (auto &KV : Cands)
      Ordered.push_back(KV.second);
    std::sort(Ordered.begin(), Ordered.end(), [](const Cand &X, const Cand &Y) {
      if (X.Slack != Y.Slack)
        return X.Slack < Y.Slack; // most critical first
      if (X.Weight != Y.Weight)
        return X.Weight > Y.Weight; // then heaviest
      return std::make_pair(X.A, X.B) < std::make_pair(Y.A, Y.B);
    });

    std::vector<bool> Matched(NumMac, false);
    std::vector<int> NewGroupOfMacro(NumMac, -1);
    std::vector<int> NewPins;
    unsigned NewCount = 0;
    unsigned Remaining = NumMac;

    auto canMerge = [&](unsigned A, unsigned B) {
      const MacroNode &MA = Cur.Macros[A];
      const MacroNode &MB = Cur.Macros[B];
      if (MA.Pin >= 0 && MB.Pin >= 0 && MA.Pin != MB.Pin)
        return false;
      for (unsigned K = 0; K < NumFUKinds; ++K)
        if (MA.FUCounts[K] + MB.FUCounts[K] > MaxKindCap[K] * 64)
          return false; // generous cap; II-level checks happen later
      return true;
    };

    bool AnyMerge = false;
    for (const Cand &C : Ordered) {
      if (Remaining <= TargetMacros)
        break;
      if (Matched[C.A] || Matched[C.B] || !canMerge(C.A, C.B))
        continue;
      Matched[C.A] = Matched[C.B] = true;
      int Pin = Cur.Macros[C.A].Pin >= 0 ? Cur.Macros[C.A].Pin
                                         : Cur.Macros[C.B].Pin;
      NewGroupOfMacro[C.A] = NewGroupOfMacro[C.B] =
          static_cast<int>(NewCount);
      NewPins.push_back(Pin);
      ++NewCount;
      --Remaining;
      AnyMerge = true;
    }
    if (!AnyMerge)
      break; // no contractible edge (e.g. disconnected & pinned apart)

    // Unmatched macros survive unchanged; also pair up disconnected
    // leftovers is unnecessary -- the initial partition handles them.
    for (unsigned Mac = 0; Mac < NumMac; ++Mac)
      if (NewGroupOfMacro[Mac] < 0) {
        NewGroupOfMacro[Mac] = static_cast<int>(NewCount++);
        NewPins.push_back(Cur.Macros[Mac].Pin);
      }

    std::vector<int> NewGroupOf(G->size());
    for (unsigned N = 0; N < G->size(); ++N)
      NewGroupOf[N] = NewGroupOfMacro[Cur.MacroOf[N]];
    Levels.push_back(makeLevelFromGroups(NewGroupOf, NewCount, NewPins));
  }
}
