//===- partition/MultilevelGraph.cpp - Macro-node coarsening ----------------===//

#include "partition/MultilevelGraph.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace hcvliw;

void MultilevelGraph::makeLevel(CoarseLevel &Out, unsigned NumGroups,
                                const MinDistMatrix &Slack) {
  unsigned N = G->size();
  Out.NumMacros = NumGroups;
  Out.MacroOf.resize(N);
  Out.Rep.assign(NumGroups, 0);
  Out.Size.assign(NumGroups, 0);
  Out.FUCounts.assign(static_cast<size_t>(NumGroups) * NumFUKinds, 0);
  Out.Weight.assign(NumGroups, 0.0);
  Out.Pin.assign(PinOfGroup.begin(), PinOfGroup.begin() + NumGroups);
  for (unsigned Nd = 0; Nd < N; ++Nd) {
    assert(GroupOfNode[Nd] >= 0 && "node without a group");
    unsigned Gp = static_cast<unsigned>(GroupOfNode[Nd]);
    Out.MacroOf[Nd] = Gp;
    if (Out.Size[Gp]++ == 0)
      Out.Rep[Gp] = Nd; // nodes scanned ascending: lowest member id
    ++Out.FUCounts[static_cast<size_t>(Gp) * NumFUKinds +
                   static_cast<unsigned>(fuKindOf(L->Ops[Nd].Op))];
    Out.Weight[Gp] += M->Isa.energy(L->Ops[Nd].Op);
  }

  // Macro adjacency: sort the half-edges by (from, to) and fold runs
  // into CSR rows (edge multiplicity, minimum node-level slack).
  HE.clear();
  for (const auto &E : G->edges()) {
    unsigned A = Out.MacroOf[E.Src], B = Out.MacroOf[E.Dst];
    if (A == B)
      continue;
    int64_t S = Slack.slack(E.Src, E.Dst, /*II=*/0);
    HE.push_back({(static_cast<uint64_t>(A) << 32) | B, S});
    HE.push_back({(static_cast<uint64_t>(B) << 32) | A, S});
  }
  std::sort(HE.begin(), HE.end(),
            [](const HalfEdge &X, const HalfEdge &Y) { return X.Key < Y.Key; });
  Out.AdjStart.assign(NumGroups + 1, 0);
  Out.AdjMacro.clear();
  Out.AdjWeight.clear();
  Out.AdjSlack.clear();
  for (size_t I = 0; I < HE.size();) {
    size_t J = I;
    int64_t MinSlack = HE[I].Slack;
    while (J < HE.size() && HE[J].Key == HE[I].Key) {
      MinSlack = std::min(MinSlack, HE[J].Slack);
      ++J;
    }
    unsigned From = static_cast<unsigned>(HE[I].Key >> 32);
    unsigned To = static_cast<unsigned>(HE[I].Key & 0xffffffffu);
    ++Out.AdjStart[From + 1];
    Out.AdjMacro.push_back(To);
    Out.AdjWeight.push_back(static_cast<unsigned>(J - I));
    Out.AdjSlack.push_back(MinSlack);
    I = J;
  }
  for (unsigned Mac = 0; Mac < NumGroups; ++Mac)
    Out.AdjStart[Mac + 1] += Out.AdjStart[Mac];
}

unsigned MultilevelGraph::matchRound(const CoarseLevel &Cur, CoarseLevel &Out,
                                     unsigned TargetMacros, double WeightCap,
                                     const MinDistMatrix &Slack) {
  unsigned NumMac = Cur.NumMacros;

  // Candidate pairs straight from the CSR (each undirected pair once).
  Cands.clear();
  for (unsigned A = 0; A < NumMac; ++A)
    for (unsigned I = Cur.AdjStart[A]; I < Cur.AdjStart[A + 1]; ++I) {
      unsigned B = Cur.AdjMacro[I];
      if (B <= A)
        continue;
      Cands.push_back({Cur.AdjSlack[I], Cur.AdjWeight[I], A, B});
    }
  std::sort(Cands.begin(), Cands.end(),
            [](const MatchCand &X, const MatchCand &Y) {
              if (X.Slack != Y.Slack)
                return X.Slack < Y.Slack; // most critical first
              if (X.Weight != Y.Weight)
                return X.Weight > Y.Weight; // then heaviest
              if (X.A != Y.A)
                return X.A < Y.A;
              return X.B < Y.B;
            });

  // The balance bound (file header): a merge may not push any per-kind
  // count or the energy weight past a 1/numClusters share of the loop.
  auto canMerge = [&](unsigned A, unsigned B) {
    if (Cur.Pin[A] >= 0 && Cur.Pin[B] >= 0 && Cur.Pin[A] != Cur.Pin[B])
      return false;
    for (unsigned K = 0; K < NumFUKinds; ++K)
      if (Cur.fuCount(A, K) + Cur.fuCount(B, K) > KindCap[K])
        return false;
    return Cur.Weight[A] + Cur.Weight[B] <= WeightCap;
  };

  NewIdOfMacro.assign(NumMac, -1);
  NewPins.clear();
  unsigned NewCount = 0, Remaining = NumMac, Pairs = 0;
  for (const MatchCand &C : Cands) {
    if (Remaining <= TargetMacros)
      break;
    if (NewIdOfMacro[C.A] >= 0 || NewIdOfMacro[C.B] >= 0 ||
        !canMerge(C.A, C.B))
      continue;
    int Pin = Cur.Pin[C.A] >= 0 ? Cur.Pin[C.A] : Cur.Pin[C.B];
    NewIdOfMacro[C.A] = NewIdOfMacro[C.B] = static_cast<int>(NewCount);
    NewPins.push_back(Pin);
    ++NewCount;
    --Remaining;
    ++Pairs;
  }
  if (Pairs == 0)
    return 0; // no contractible edge (caps, pins, or disconnection)

  // Unmatched macros survive unchanged; pairing up disconnected
  // leftovers is unnecessary -- the initial partition handles them.
  for (unsigned Mac = 0; Mac < NumMac; ++Mac)
    if (NewIdOfMacro[Mac] < 0) {
      NewIdOfMacro[Mac] = static_cast<int>(NewCount++);
      NewPins.push_back(Cur.Pin[Mac]);
    }

  for (unsigned Nd = 0; Nd < G->size(); ++Nd)
    GroupOfNode[Nd] = NewIdOfMacro[Cur.MacroOf[Nd]];
  PinOfGroup.assign(NewPins.begin(), NewPins.end());
  makeLevel(Out, NewCount, Slack);
  return Pairs;
}

void MultilevelGraph::recordLevel(const CoarseLevel &Lvl) {
  if (Levels.size() <= NumLvls)
    Levels.emplace_back();
  Levels[NumLvls] = Lvl; // copy-assign reuses the slot's capacity
  ++NumLvls;
}

void MultilevelGraph::build(
    const Loop &TheLoop, const DDG &TheDDG, const MachineDescription &TheMachine,
    const std::vector<std::vector<unsigned>> &InitialGroups,
    const std::vector<int> &GroupPins, const MinDistMatrix &Slack,
    unsigned TargetMacros, obs::Tracer *Trace) {
  L = &TheLoop;
  G = &TheDDG;
  M = &TheMachine;
  NumLvls = 0;
  Stats = BuildStats();
  assert(InitialGroups.size() == GroupPins.size() &&
         "one pin slot per initial group");

  // Finest grouping: initial groups plus singletons.
  unsigned N = G->size();
  GroupOfNode.assign(N, -1);
  PinOfGroup.clear();
  unsigned NumGroups = 0;
  for (unsigned Gp = 0; Gp < InitialGroups.size(); ++Gp) {
    for (unsigned Nd : InitialGroups[Gp]) {
      assert(GroupOfNode[Nd] < 0 && "node in two initial groups");
      GroupOfNode[Nd] = static_cast<int>(NumGroups);
    }
    PinOfGroup.push_back(GroupPins[Gp]);
    ++NumGroups;
  }
  for (unsigned Nd = 0; Nd < N; ++Nd)
    if (GroupOfNode[Nd] < 0) {
      GroupOfNode[Nd] = static_cast<int>(NumGroups++);
      PinOfGroup.push_back(-1);
    }

  // Balance bounds for matching (file header): no macro may outgrow
  // twice the average share of a target-count macro, per kind and in
  // energy weight. A looser 1/numClusters share lets a few "snowball"
  // macros swallow a whole cluster's worth of the loop, which leaves
  // the refinement no granularity to balance with.
  unsigned Tgt = std::max(1u, TargetMacros);
  KindCap.assign(NumFUKinds, 0);
  double WeightTotal = 0;
  for (unsigned Nd = 0; Nd < N; ++Nd) {
    ++KindCap[static_cast<unsigned>(fuKindOf(L->Ops[Nd].Op))];
    WeightTotal += M->Isa.energy(L->Ops[Nd].Op);
  }
  for (unsigned K = 0; K < NumFUKinds; ++K)
    KindCap[K] = std::max<unsigned>(2, 2 * ((KindCap[K] + Tgt - 1) / Tgt));
  double WeightCap = 2.0 * WeightTotal / Tgt;

  makeLevel(WorkA, NumGroups, Slack);
  recordLevel(WorkA);

  CoarseLevel *CurW = &WorkA, *NextW = &WorkB;
  unsigned LastRecorded = CurW->NumMacros;
  while (CurW->NumMacros > TargetMacros) {
    char LvlBuf[16];
    std::snprintf(LvlBuf, sizeof LvlBuf, "%u", NumLvls);
    obs::Span Sp(Trace, "part.coarsen:", LvlBuf);
    unsigned SegPairs = 0;
    bool Recorded = false;
    // Matching rounds accumulate until the macro count has shrunk
    // geometrically (<= 3/4 of the last recorded level) or matching
    // stalls; only then is a level recorded, keeping the stack
    // O(log N) deep.
    while (true) {
      unsigned Pairs =
          matchRound(*CurW, *NextW, TargetMacros, WeightCap, Slack);
      ++Stats.Rounds;
      if (Pairs == 0)
        break;
      SegPairs += Pairs;
      Stats.MatchedPairs += Pairs;
      std::swap(CurW, NextW);
      if (CurW->NumMacros <=
          std::max(TargetMacros, LastRecorded * 3 / 4)) {
        recordLevel(*CurW);
        LastRecorded = CurW->NumMacros;
        Recorded = true;
        break;
      }
    }
    if (Sp.active()) {
      Sp.arg("macros", CurW->NumMacros);
      Sp.arg("pairs", SegPairs);
    }
    if (!Recorded) {
      // Stalled below the geometric threshold: keep whatever shrink the
      // rounds achieved as the coarsest level.
      if (CurW->NumMacros < LastRecorded)
        recordLevel(*CurW);
      break;
    }
  }
  Stats.Levels = NumLvls;
}
