//===- partition/MultilevelGraph.h - Macro-node coarsening ------*- C++ -*-===//
///
/// \file
/// The coarsening machinery of the multilevel partitioner (Section 4.1,
/// after [2][3] and Karypis-Kumar multilevel schemes). Nodes of the DDG
/// are fused into macro nodes; each coarsening round contracts a
/// matching of macro-node pairs chosen along low-slack (critical) edges.
/// Recurrences enter coarsening pre-fused (the paper does not split
/// recurrences before refinement) and may carry a *pin* to a cluster
/// fixed by the critical-recurrence pre-placement.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_MULTILEVELGRAPH_H
#define HCVLIW_PARTITION_MULTILEVELGRAPH_H

#include "ir/DDG.h"
#include "ir/MinDist.h"
#include "machine/MachineDescription.h"

#include <vector>

namespace hcvliw {

/// A macro node: a set of DDG nodes moved as a unit.
struct MacroNode {
  std::vector<unsigned> Members;
  /// Per-FUKind operation counts of the members.
  std::vector<unsigned> FUCounts;
  /// Energy-weighted instruction mass (Table 1).
  double Weight = 0;
  /// Cluster this macro is pinned to, or -1.
  int Pin = -1;
};

/// One level of the hierarchy: the macro nodes existing at that level.
struct CoarseLevel {
  std::vector<MacroNode> Macros;
  /// Macro id of each DDG node at this level.
  std::vector<unsigned> MacroOf;
};

class MultilevelGraph {
  const Loop *L = nullptr;
  const DDG *G = nullptr;
  const MachineDescription *M = nullptr;
  std::vector<CoarseLevel> Levels; // [0] = finest

  CoarseLevel makeLevelFromGroups(const std::vector<int> &GroupOf,
                                  unsigned NumGroups,
                                  const std::vector<int> &Pins) const;

public:
  /// Builds the level stack. \p InitialGroups pre-fuses node sets (one
  /// entry per group; nodes absent from all groups start as singletons)
  /// with optional pins; \p EdgePriority orders contraction candidates
  /// (lower = contract first, typically MinDist slack); \p TargetMacros
  /// stops coarsening (>= number of clusters).
  void build(const Loop &TheLoop, const DDG &TheDDG,
             const MachineDescription &TheMachine,
             const std::vector<std::vector<unsigned>> &InitialGroups,
             const std::vector<int> &GroupPins,
             const MinDistMatrix &Slack, unsigned TargetMacros);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  /// Level 0 is the finest (original grouping), the last the coarsest.
  const CoarseLevel &level(unsigned I) const { return Levels[I]; }
  const CoarseLevel &coarsest() const { return Levels.back(); }
};

} // namespace hcvliw

#endif // HCVLIW_PARTITION_MULTILEVELGRAPH_H
