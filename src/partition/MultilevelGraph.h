//===- partition/MultilevelGraph.h - Macro-node coarsening ------*- C++ -*-===//
///
/// \file
/// The coarsening machinery of the multilevel partitioner (Section 4.1,
/// after [2][3] and Karypis-Kumar multilevel schemes). Nodes of the DDG
/// are fused into macro nodes by repeated heavy-edge matching along
/// low-slack (critical) edges; a level is recorded whenever the macro
/// count has shrunk geometrically (to <= 3/4 of the previous recorded
/// level), so the stack has O(log N) levels and refinement sees a
/// meaningfully different granularity at each one. Recurrences enter
/// coarsening pre-fused (the paper does not split recurrences before
/// refinement) and may carry a *pin* to a cluster fixed by the
/// critical-recurrence pre-placement.
///
/// Matching is *balance-bounded*: a merge may not push any per-kind
/// operation count (or the energy weight) of the combined macro past
/// twice the average share of a coarsest-target macro. Without the
/// bound a hub macro absorbs a partner every round and snowballs into
/// a fragment far larger than any cluster can hold — such a macro can
/// never be placed and never be split, which is exactly how the old
/// one-shot coarsening lost every loop beyond ~200 ops. Pre-fused
/// recurrence groups may exceed the bound (they are atomic by
/// construction); they simply stop merging further.
///
/// Levels store flat per-macro arrays plus a CSR macro adjacency
/// (neighbor, DDG-edge multiplicity, minimum node-level slack): the
/// refinement passes walk macro boundaries, and the matching rounds
/// derive their candidate edges from the same structure. All storage is
/// reused across build() calls, so a warm IT sweep coarsens without
/// touching malloc in steady state.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_MULTILEVELGRAPH_H
#define HCVLIW_PARTITION_MULTILEVELGRAPH_H

#include "ir/DDG.h"
#include "ir/MinDist.h"
#include "machine/MachineDescription.h"
#include "obs/Trace.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

/// One level of the hierarchy: flat per-macro arrays (no per-macro
/// member lists; MacroOf is the node->macro map and Rep the canonical
/// representative) plus the macro-level adjacency in CSR form.
struct CoarseLevel {
  unsigned NumMacros = 0;
  /// Macro id of each DDG node at this level.
  std::vector<unsigned> MacroOf;
  /// Lowest-numbered member node of each macro (canonical
  /// representative; projecting a node-level partition onto macros
  /// reads one node per macro).
  std::vector<unsigned> Rep;
  /// Member count per macro.
  std::vector<unsigned> Size;
  /// Per-FUKind operation counts, flat [macro][NumFUKinds].
  std::vector<unsigned> FUCounts;
  /// Energy-weighted instruction mass (Table 1) per macro.
  std::vector<double> Weight;
  /// Cluster each macro is pinned to, or -1.
  std::vector<int> Pin;

  /// Macro adjacency, CSR over symmetric neighbor lists: for each
  /// neighbor pair the DDG-edge multiplicity between the two macros and
  /// the minimum node-level slack across those edges.
  std::vector<unsigned> AdjStart; ///< [NumMacros + 1]
  std::vector<unsigned> AdjMacro;
  std::vector<unsigned> AdjWeight;
  std::vector<int64_t> AdjSlack;

  unsigned fuCount(unsigned Mac, unsigned K) const {
    return FUCounts[static_cast<size_t>(Mac) * NumFUKinds + K];
  }
};

class MultilevelGraph {
public:
  /// Effort counters of the last build() (observability; the stack
  /// itself never depends on them).
  struct BuildStats {
    unsigned Levels = 0;       ///< recorded levels (finest included)
    unsigned Rounds = 0;       ///< matching rounds run
    unsigned MatchedPairs = 0; ///< pair contractions across all rounds
  };

private:
  const Loop *L = nullptr;
  const DDG *G = nullptr;
  const MachineDescription *M = nullptr;

  std::vector<CoarseLevel> Levels; ///< [0] = finest; reused storage
  unsigned NumLvls = 0;
  BuildStats Stats;

  // Reused working storage (see file header): two ping-pong work
  // levels for unrecorded matching rounds, the half-edge buffer the
  // CSR build sorts, and the matching arrays.
  CoarseLevel WorkA, WorkB;
  struct HalfEdge {
    uint64_t Key; ///< (from macro << 32) | to macro
    int64_t Slack;
  };
  std::vector<HalfEdge> HE;
  struct MatchCand {
    int64_t Slack;
    unsigned Weight;
    unsigned A, B;
  };
  std::vector<MatchCand> Cands;
  std::vector<int> GroupOfNode;
  std::vector<int> PinOfGroup;
  std::vector<int> NewIdOfMacro;
  std::vector<int> NewPins;
  std::vector<unsigned> KindCap;

  void makeLevel(CoarseLevel &Out, unsigned NumGroups,
                 const MinDistMatrix &Slack);
  /// One matching round Cur -> Out; returns contracted pair count.
  unsigned matchRound(const CoarseLevel &Cur, CoarseLevel &Out,
                      unsigned TargetMacros, double WeightCap,
                      const MinDistMatrix &Slack);
  void recordLevel(const CoarseLevel &Lvl);

public:
  /// Builds the level stack. \p InitialGroups pre-fuses node sets (one
  /// entry per group; nodes absent from all groups start as singletons)
  /// with optional pins; \p Slack orders contraction candidates (lower
  /// = contract first); \p TargetMacros stops coarsening (>= number of
  /// clusters). \p Trace, when enabled, records one
  /// "part.coarsen:<level>" span per recorded level (observation only;
  /// the stack never depends on it). The result is a pure function of
  /// (loop, DDG, machine, groups, pins, slack, target).
  void build(const Loop &TheLoop, const DDG &TheDDG,
             const MachineDescription &TheMachine,
             const std::vector<std::vector<unsigned>> &InitialGroups,
             const std::vector<int> &GroupPins, const MinDistMatrix &Slack,
             unsigned TargetMacros, obs::Tracer *Trace = nullptr);

  unsigned numLevels() const { return NumLvls; }
  /// Level 0 is the finest (original grouping), the last the coarsest.
  const CoarseLevel &level(unsigned I) const { return Levels[I]; }
  const CoarseLevel &coarsest() const { return Levels[NumLvls - 1]; }
  const BuildStats &buildStats() const { return Stats; }
};

} // namespace hcvliw

#endif // HCVLIW_PARTITION_MULTILEVELGRAPH_H
