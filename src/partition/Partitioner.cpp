//===- partition/Partitioner.cpp - Multilevel DDG partitioning --------------===//

#include "partition/Partitioner.h"
#include "partition/MultilevelGraph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace hcvliw;

double hcvliw::scorePartition(const PartitionContext &Ctx,
                              const PartitionerOptions &Opts,
                              const Partition &P) {
  // With a scratch, both the estimate's working set and its result
  // vectors are reused — the scoring loop is allocation-free.
  PseudoSchedule Local;
  PseudoSchedule &PS = Ctx.Scratch ? Ctx.Scratch->PS.Result : Local;
  estimatePseudoScheduleInto(PS, *Ctx.L, *Ctx.G, *Ctx.M, *Ctx.Plan, P,
                             Ctx.Scratch ? &Ctx.Scratch->PS : nullptr);
  if (!PS.Feasible) {
    // Graded penalty: any feasible partition beats every infeasible
    // one, but among infeasible partitions smaller violations win, so
    // greedy refinement can walk out of an infeasible region.
    return InfeasiblePartitionScore * (1.0 + PS.Overflow);
  }

  double N = static_cast<double>(Ctx.TripCount);
  double TexecNs =
      (N - 1) * Ctx.Plan->ITNs.toDouble() + PS.ItLengthNs.toDouble();

  if (Opts.ED2Objective) {
    assert(Ctx.Energy && Ctx.Scaling && "ED2 objective needs energy model");
    std::vector<double> WIns(PS.WInsPerCluster);
    for (double &W : WIns)
      W *= N;
    double E = Ctx.Energy->heteroEnergy(WIns, PS.Comms * N,
                                        static_cast<double>([&] {
                                          unsigned Mem = 0;
                                          for (const auto &O : Ctx.L->Ops)
                                            if (isMemoryOpcode(O.Op))
                                              ++Mem;
                                          return Mem;
                                        }()) * N,
                                        TexecNs, *Ctx.Scaling);
    return computeED2(E, TexecNs);
  }

  // Homogeneous baseline objective [2][3]: fewest communications, then
  // balance, then shorter iterations. Folded lexicographically.
  double MaxLoad = 0;
  for (unsigned C = 0; C < Ctx.M->numClusters(); ++C) {
    double Cap = static_cast<double>(Ctx.Plan->Clusters[C].II);
    double Load = PS.WInsPerCluster[C] / std::max(1.0, Cap);
    MaxLoad = std::max(MaxLoad, Load);
  }
  return PS.Comms * 1e6 + MaxLoad * 1e3 + PS.ItLengthNs.toDouble();
}

namespace {

/// Expands a macro-level assignment into the node-level partition \p P
/// (in place; the refinement loop reuses two partition buffers).
void expandInto(Partition &P, const CoarseLevel &Lvl,
                const std::vector<unsigned> &ClusterOfMacro,
                unsigned NumNodes) {
  P.ClusterOf.resize(NumNodes);
  for (unsigned N = 0; N < NumNodes; ++N)
    P.ClusterOf[N] = ClusterOfMacro[Lvl.MacroOf[N]];
}

/// Pre-places critical recurrences; returns initial groups + pins for
/// coarsening (into the caller's reusable buffers), or false when some
/// recurrence fits nowhere.
bool prePlaceRecurrences(const PartitionContext &Ctx, bool EnablePinning,
                         std::vector<std::vector<unsigned>> &Groups,
                         std::vector<int> &Pins,
                         std::vector<int64_t> &Free) {
  const MachineDescription &M = *Ctx.M;
  const MachinePlan &Plan = *Ctx.Plan;
  unsigned NC = M.numClusters();

  // Remaining per-cluster, per-kind slot capacity (flat [C][K]).
  Free.resize(static_cast<size_t>(NC) * NumFUKinds);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] =
          Plan.Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));

  int64_t MinII = Plan.Clusters[0].II;
  for (const auto &D : Plan.Clusters)
    MinII = std::min(MinII, D.II);

  size_t NG = 0;
  auto appendGroup = [&](const std::vector<unsigned> &Nodes, int Pin) {
    if (NG < Groups.size())
      Groups[NG].assign(Nodes.begin(), Nodes.end());
    else
      Groups.push_back(Nodes);
    if (NG < Pins.size())
      Pins[NG] = Pin;
    else
      Pins.push_back(Pin);
    ++NG;
  };

  // Recurrences arrive sorted by descending recMII (most critical first).
  for (const Recurrence &R : Ctx.Recs->Recurrences) {
    unsigned Need[NumFUKinds] = {0};
    for (unsigned N : R.Nodes)
      ++Need[static_cast<unsigned>(fuKindOf(Ctx.L->Ops[N].Op))];

    bool MustPin = EnablePinning && R.RecMII > MinII;
    if (!MustPin) {
      appendGroup(R.Nodes, -1);
      continue;
    }

    // Slowest feasible cluster: maximum running period whose II admits
    // the recurrence and whose capacity can still hold its operations.
    int Best = -1;
    for (unsigned C = 0; C < NC; ++C) {
      if (Plan.Clusters[C].II < R.RecMII)
        continue;
      bool Fits = true;
      for (unsigned K = 0; K < NumFUKinds; ++K)
        if (static_cast<int64_t>(Need[K]) > Free[C * NumFUKinds + K])
          Fits = false;
      if (!Fits)
        continue;
      if (Best < 0 ||
          Plan.Clusters[C].PeriodNs > Plan.Clusters[Best].PeriodNs)
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false; // grow the IT
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[static_cast<unsigned>(Best) * NumFUKinds + K] -= Need[K];
    appendGroup(R.Nodes, Best);
  }
  Groups.resize(NG);
  Pins.resize(NG);
  return true;
}

} // namespace

std::optional<Partition>
hcvliw::partitionLoop(const PartitionContext &Ctx,
                      const PartitionerOptions &Opts) {
  const MachineDescription &M = *Ctx.M;
  unsigned NC = M.numClusters();
  unsigned NumNodes = Ctx.G->size();

  if (NC == 1)
    return Partition::allInCluster(NumNodes, 0);

  PartitionScratch Local;
  PartitionScratch &S = Ctx.Scratch ? *Ctx.Scratch : Local;

  if (!prePlaceRecurrences(Ctx, Opts.PrePlaceRecurrences, S.Groups, S.Pins,
                           S.Free))
    return std::nullopt;

  // Slack matrix for the coarsening order, on reference latencies at the
  // recurrence-safe II; IT-independent, so drivers that retry IT steps
  // pass one precomputed matrix through the context.
  MinDistMatrix OwnSlack;
  const MinDistMatrix *Slack = Ctx.SlackMatrix;
  if (!Slack) {
    std::vector<unsigned> Lat = M.Isa.nodeLatencies(*Ctx.L);
    MinDistMatrix::computeInto(OwnSlack, *Ctx.G, Lat,
                               std::max<int64_t>(Ctx.Recs->RecMII, 1));
    Slack = &OwnSlack;
  }

  // Coarsening: on the warm-start path, reuse the previous attempt's
  // level stack when the (groups, pins) inputs are identical — the
  // other build inputs (loop, DDG, machine, slack) are fixed for the
  // whole Figure 5 run, so the key match makes the reuse exact. The
  // cold reference path (EnableMemo false) rebuilds every attempt.
  bool ReuseML = S.EnableMemo && S.MLValid && S.MemoGroups == S.Groups &&
                 S.MemoPins == S.Pins;
  if (!ReuseML) {
    obs::Span CoarsenSp(Ctx.Trace, "part.coarsen");
    S.ML.build(*Ctx.L, *Ctx.G, M, S.Groups, S.Pins, *Slack, NC);
    if (CoarsenSp.active())
      CoarsenSp.arg("levels", static_cast<int64_t>(S.ML.numLevels()));
    if (S.EnableMemo) {
      S.MemoGroups = S.Groups;
      S.MemoPins = S.Pins;
      S.MLValid = true;
    }
  }
  const MultilevelGraph &ML = S.ML;

  // Initial assignment of the coarsest macros: pins first, then largest
  // macros onto the cluster with the most remaining per-kind slot
  // capacity (capacity-aware best fit keeps the starting point feasible
  // whenever the coarse macros allow it).
  const CoarseLevel &Coarsest = ML.coarsest();
  unsigned NumMac = static_cast<unsigned>(Coarsest.Macros.size());
  std::vector<unsigned> &ClusterOfMacro = S.ClusterOfMacro;
  ClusterOfMacro.assign(NumMac, 0);
  std::vector<int64_t> &Free = S.Free;
  Free.resize(static_cast<size_t>(NC) * NumFUKinds);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] =
          Ctx.Plan->Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));
  auto place = [&](unsigned Mac, unsigned C) {
    ClusterOfMacro[Mac] = C;
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] -= Coarsest.Macros[Mac].FUCounts[K];
  };

  std::vector<unsigned> &ByWeight = S.ByWeight;
  ByWeight.resize(NumMac);
  for (unsigned I = 0; I < NumMac; ++I)
    ByWeight[I] = I;
  std::sort(ByWeight.begin(), ByWeight.end(), [&](unsigned A, unsigned B) {
    return Coarsest.Macros[A].Weight > Coarsest.Macros[B].Weight;
  });
  for (unsigned Mac : ByWeight) {
    const MacroNode &MN = Coarsest.Macros[Mac];
    if (MN.Pin >= 0) {
      place(Mac, static_cast<unsigned>(MN.Pin));
      continue;
    }
    int BestFit = -1;
    int64_t BestFitSlack = 0;
    int BestOverflow = -1;
    int64_t LeastOverflow = 0;
    for (unsigned C = 0; C < NC; ++C) {
      bool Fits = true;
      int64_t Slk = 0, Overflow = 0;
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        int64_t Rem = Free[C * NumFUKinds + K] -
                      static_cast<int64_t>(MN.FUCounts[K]);
        if (Rem < 0) {
          Fits = false;
          Overflow -= Rem;
        } else {
          Slk += Rem;
        }
      }
      if (Fits && (BestFit < 0 || Slk > BestFitSlack)) {
        BestFit = static_cast<int>(C);
        BestFitSlack = Slk;
      }
      if (!Fits && (BestOverflow < 0 || Overflow < LeastOverflow)) {
        BestOverflow = static_cast<int>(C);
        LeastOverflow = Overflow;
      }
    }
    place(Mac, BestFit >= 0 ? static_cast<unsigned>(BestFit)
                            : static_cast<unsigned>(BestOverflow));
  }

  // Refinement, coarsest to finest.
  obs::Span RefineSp(Ctx.Trace, "part.refine");
  Partition &Current = S.Current;
  Partition &Cand = S.Cand;
  expandInto(Current, Coarsest, ClusterOfMacro, NumNodes);
  double CurrentScore = scorePartition(Ctx, Opts, Current);

  for (int LvlIx = static_cast<int>(ML.numLevels()) - 1; LvlIx >= 0;
       --LvlIx) {
    const CoarseLevel &Lvl = ML.level(static_cast<unsigned>(LvlIx));
    unsigned LN = static_cast<unsigned>(Lvl.Macros.size());
    if (LN > Opts.MaxRefineMacros)
      continue;
    // Project the current node-level partition onto this level's macros
    // (members of one macro share a cluster by construction).
    std::vector<unsigned> &Assign = S.Assign;
    Assign.resize(LN);
    for (unsigned Mac = 0; Mac < LN; ++Mac)
      Assign[Mac] = Current.ClusterOf[Lvl.Macros[Mac].Members.front()];

    // Warm-path skip (exact): a candidate move (Mac -> C) re-scores
    // identically unless some move was accepted since its last
    // evaluation at this level — the assignment vector, and hence the
    // expanded partition and its pure-function score, are unchanged, so
    // the greedy rejection repeats. Stamp each eval with the level's
    // accepted-move count and skip on a stamp match.
    std::vector<uint64_t> &EvalStamp = S.EvalStamp;
    EvalStamp.assign(static_cast<size_t>(LN) * NC, ~uint64_t(0));
    uint64_t Accepts = 0;

    for (unsigned Pass = 0; Pass < Opts.MaxRefinePasses; ++Pass) {
      bool Improved = false;
      for (unsigned Mac = 0; Mac < LN; ++Mac) {
        if (Lvl.Macros[Mac].Pin >= 0)
          continue;
        unsigned Home = Assign[Mac];
        for (unsigned C = 0; C < NC; ++C) {
          if (C == Home)
            continue;
          if (S.EnableMemo && EvalStamp[Mac * NC + C] == Accepts)
            continue; // unchanged candidate: same score, same rejection
          EvalStamp[Mac * NC + C] = Accepts;
          Assign[Mac] = C;
          expandInto(Cand, Lvl, Assign, NumNodes);
          double Sc = scorePartition(Ctx, Opts, Cand);
          if (Sc < CurrentScore) {
            CurrentScore = Sc;
            std::swap(Current, Cand);
            Home = C;
            Improved = true;
            ++Accepts;
          } else {
            Assign[Mac] = Home;
          }
        }
        Assign[Mac] = Home;
      }
      if (!Improved)
        break;
    }
  }

  if (CurrentScore >= InfeasiblePartitionScore)
    return std::nullopt; // nothing feasible found at this IT
  return Current;
}
