//===- partition/Partitioner.cpp - Multilevel DDG partitioning --------------===//

#include "partition/Partitioner.h"
#include "fault/Fault.h"
#include "partition/MultilevelGraph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <new>

using namespace hcvliw;

double hcvliw::scorePartition(const PartitionContext &Ctx,
                              const PartitionerOptions &Opts,
                              const Partition &P) {
  // With a scratch, both the estimate's working set and its result
  // vectors are reused — the scoring loop is allocation-free.
  PseudoSchedule Local;
  PseudoSchedule &PS = Ctx.Scratch ? Ctx.Scratch->PS.Result : Local;
  estimatePseudoScheduleInto(PS, *Ctx.L, *Ctx.G, *Ctx.M, *Ctx.Plan, P,
                             Ctx.Scratch ? &Ctx.Scratch->PS : nullptr);
  if (!PS.Feasible) {
    // Graded penalty: any feasible partition beats every infeasible
    // one, but among infeasible partitions smaller violations win, so
    // greedy refinement can walk out of an infeasible region.
    return InfeasiblePartitionScore * (1.0 + PS.Overflow);
  }

  double N = static_cast<double>(Ctx.TripCount);
  double TexecNs =
      (N - 1) * Ctx.Plan->ITNs.toDouble() + PS.ItLengthNs.toDouble();

  if (Opts.ED2Objective) {
    assert(Ctx.Energy && Ctx.Scaling && "ED2 objective needs energy model");
    std::vector<double> LocalW;
    std::vector<double> &WIns = Ctx.Scratch ? Ctx.Scratch->WInsTmp : LocalW;
    WIns.assign(PS.WInsPerCluster.begin(), PS.WInsPerCluster.end());
    for (double &W : WIns)
      W *= N;
    unsigned Mem = 0;
    for (const auto &O : Ctx.L->Ops)
      if (isMemoryOpcode(O.Op))
        ++Mem;
    double E = Ctx.Energy->heteroEnergy(WIns, PS.Comms * N,
                                        static_cast<double>(Mem) * N, TexecNs,
                                        *Ctx.Scaling);
    return computeED2(E, TexecNs);
  }

  // Homogeneous baseline objective [2][3]: fewest communications, then
  // balance, then shorter iterations. Folded lexicographically.
  double MaxLoad = 0;
  for (unsigned C = 0; C < Ctx.M->numClusters(); ++C) {
    double Cap = static_cast<double>(Ctx.Plan->Clusters[C].II);
    double Load = PS.WInsPerCluster[C] / std::max(1.0, Cap);
    MaxLoad = std::max(MaxLoad, Load);
  }
  return PS.Comms * 1e6 + MaxLoad * 1e3 + PS.ItLengthNs.toDouble();
}

namespace {

/// Expands a macro-level assignment into the node-level partition \p P
/// (in place; the refinement loop reuses two partition buffers).
void expandInto(Partition &P, const CoarseLevel &Lvl,
                const std::vector<unsigned> &ClusterOfMacro,
                unsigned NumNodes) {
  P.ClusterOf.resize(NumNodes);
  for (unsigned N = 0; N < NumNodes; ++N)
    P.ClusterOf[N] = ClusterOfMacro[Lvl.MacroOf[N]];
}

/// Pre-places critical recurrences; returns initial groups + pins for
/// coarsening (into the caller's reusable key buffers), or false when
/// some recurrence fits nowhere.
bool prePlaceRecurrences(const PartitionContext &Ctx, bool EnablePinning,
                         CoarsenMemoKey &Key, std::vector<int64_t> &Free) {
  const MachineDescription &M = *Ctx.M;
  const MachinePlan &Plan = *Ctx.Plan;
  unsigned NC = M.numClusters();

  // Remaining per-cluster, per-kind slot capacity (flat [C][K]).
  Free.resize(static_cast<size_t>(NC) * NumFUKinds);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] =
          Plan.Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));

  int64_t MinII = Plan.Clusters[0].II;
  for (const auto &D : Plan.Clusters)
    MinII = std::min(MinII, D.II);

  size_t NG = 0;
  auto appendGroup = [&](const std::vector<unsigned> &Nodes, int Pin) {
    if (NG < Key.Groups.size())
      Key.Groups[NG].assign(Nodes.begin(), Nodes.end());
    else
      Key.Groups.push_back(Nodes);
    if (NG < Key.Pins.size())
      Key.Pins[NG] = Pin;
    else
      Key.Pins.push_back(Pin);
    ++NG;
  };

  // Recurrences arrive sorted by descending recMII (most critical first).
  for (const Recurrence &R : Ctx.Recs->Recurrences) {
    unsigned Need[NumFUKinds] = {0};
    for (unsigned N : R.Nodes)
      ++Need[static_cast<unsigned>(fuKindOf(Ctx.L->Ops[N].Op))];

    bool MustPin = EnablePinning && R.RecMII > MinII;
    if (!MustPin) {
      appendGroup(R.Nodes, -1);
      continue;
    }

    // Slowest feasible cluster: maximum running period whose II admits
    // the recurrence and whose capacity can still hold its operations.
    int Best = -1;
    for (unsigned C = 0; C < NC; ++C) {
      if (Plan.Clusters[C].II < R.RecMII)
        continue;
      bool Fits = true;
      for (unsigned K = 0; K < NumFUKinds; ++K)
        if (static_cast<int64_t>(Need[K]) > Free[C * NumFUKinds + K])
          Fits = false;
      if (!Fits)
        continue;
      if (Best < 0 ||
          Plan.Clusters[C].PeriodNs > Plan.Clusters[Best].PeriodNs)
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false; // grow the IT
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[static_cast<unsigned>(Best) * NumFUKinds + K] -= Need[K];
    appendGroup(R.Nodes, Best);
  }
  Key.Groups.resize(NG);
  Key.Pins.resize(NG);
  return true;
}

/// Boundary FM-style refinement of one level on the surrogate objective
///
///   1e6 * (total per-cluster per-kind capacity overload)
///   + (DDG edges cut between clusters)
///   + 1e-3 * (sum of squared per-cluster energy weights)
///
/// evaluated incrementally: each pass picks the highest-gain unlocked
/// boundary macro from a max-heap, applies the move when its recomputed
/// gain is strictly positive, locks the macro, and refreshes its
/// neighbors, until no improving move remains. Every applied move
/// strictly decreases the surrogate, so the passes terminate; the
/// caller only keeps the result when the *exact* objective did not get
/// worse. Deterministic: ties break toward the lowest macro id and
/// lowest cluster id, and the warm path's cut-row stamp cache
/// (FMCutStamp) reuses values the cold path recomputes identically.
uint64_t refineLevelFM(const PartitionContext &Ctx,
                       const PartitionerOptions &Opts, PartitionScratch &S,
                       const CoarseLevel &Lvl, std::vector<unsigned> &Assign,
                       PartitionStats *Stats) {
  const MachineDescription &M = *Ctx.M;
  const MachinePlan &Plan = *Ctx.Plan;
  const unsigned NC = M.numClusters();
  const unsigned LN = Lvl.NumMacros;
  const bool Memo = S.EnableMemo;

  S.FMCap.resize(static_cast<size_t>(NC) * NumFUKinds);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      S.FMCap[C * NumFUKinds + K] =
          Plan.Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));
  S.FMLoad.assign(static_cast<size_t>(NC) * NumFUKinds, 0);
  S.FMWeight.assign(NC, 0.0);
  for (unsigned Mac = 0; Mac < LN; ++Mac) {
    unsigned C = Assign[Mac];
    for (unsigned K = 0; K < NumFUKinds; ++K)
      S.FMLoad[C * NumFUKinds + K] += Lvl.fuCount(Mac, K);
    S.FMWeight[C] += Lvl.Weight[Mac];
  }
  S.FMCutTo.assign(static_cast<size_t>(LN) * NC, 0);
  S.FMCutStamp.assign(LN, ~uint64_t(0));
  S.FMNbrVer.assign(LN, 0);
  S.FMLocked.assign(LN, 0);

  // Overload reduction of moving Mac from Home to C (positive = less).
  auto capGain = [&](unsigned Mac, unsigned Home, unsigned C) {
    int64_t D = 0;
    for (unsigned K = 0; K < NumFUKinds; ++K) {
      int64_t W = Lvl.fuCount(Mac, K);
      if (!W)
        continue;
      int64_t LH = S.FMLoad[Home * NumFUKinds + K];
      int64_t CH = S.FMCap[Home * NumFUKinds + K];
      int64_t LC = S.FMLoad[C * NumFUKinds + K];
      int64_t CC = S.FMCap[C * NumFUKinds + K];
      D += std::max<int64_t>(0, LH - CH) - std::max<int64_t>(0, LH - W - CH);
      D -= std::max<int64_t>(0, LC + W - CC) - std::max<int64_t>(0, LC - CC);
    }
    return D;
  };

  // Cut mass of Mac toward every cluster. The row only changes when a
  // neighbor moves, so the warm path stamps it with the macro's
  // neighbor version and skips the rescan on a match (exact: the cold
  // path recomputes the identical sums).
  auto cutRow = [&](unsigned Mac) -> const int64_t * {
    int64_t *Row = &S.FMCutTo[static_cast<size_t>(Mac) * NC];
    if (!(Memo && S.FMCutStamp[Mac] == S.FMNbrVer[Mac])) {
      std::fill(Row, Row + NC, int64_t(0));
      for (unsigned I = Lvl.AdjStart[Mac]; I < Lvl.AdjStart[Mac + 1]; ++I)
        Row[Assign[Lvl.AdjMacro[I]]] += Lvl.AdjWeight[I];
      S.FMCutStamp[Mac] = S.FMNbrVer[Mac];
    }
    return Row;
  };

  auto bestMove = [&](unsigned Mac, double &BestGain, unsigned &BestC) {
    unsigned Home = Assign[Mac];
    const int64_t *Cut = cutRow(Mac);
    double WMac = Lvl.Weight[Mac];
    double WH = S.FMWeight[Home];
    BestGain = -std::numeric_limits<double>::infinity();
    BestC = Home;
    for (unsigned C = 0; C < NC; ++C) {
      if (C == Home)
        continue;
      double WC = S.FMWeight[C];
      double DW2 = (WH - WMac) * (WH - WMac) + (WC + WMac) * (WC + WMac) -
                   WH * WH - WC * WC;
      double G = 1e6 * static_cast<double>(capGain(Mac, Home, C)) +
                 static_cast<double>(Cut[C] - Cut[Home]) - 1e-3 * DW2;
      if (G > BestGain) { // strict: ties keep the lowest cluster id
        BestGain = G;
        BestC = C;
      }
    }
  };

  auto apply = [&](unsigned Mac, unsigned C) {
    unsigned Home = Assign[Mac];
    for (unsigned K = 0; K < NumFUKinds; ++K) {
      int64_t W = Lvl.fuCount(Mac, K);
      S.FMLoad[Home * NumFUKinds + K] -= W;
      S.FMLoad[C * NumFUKinds + K] += W;
    }
    S.FMWeight[Home] -= Lvl.Weight[Mac];
    S.FMWeight[C] += Lvl.Weight[Mac];
    Assign[Mac] = C;
    for (unsigned I = Lvl.AdjStart[Mac]; I < Lvl.AdjStart[Mac + 1]; ++I)
      ++S.FMNbrVer[Lvl.AdjMacro[I]];
  };

  auto HeapLess = [](const PartitionScratch::FMHeapEntry &A,
                     const PartitionScratch::FMHeapEntry &B) {
    if (A.Gain != B.Gain)
      return A.Gain < B.Gain; // max-heap on gain
    return A.Mac > B.Mac;     // ties: lowest macro id on top
  };

  uint64_t Moves = 0;
  unsigned PassesRun = 0;
  for (unsigned Pass = 0; Pass < Opts.MaxFMPasses; ++Pass) {
    std::fill(S.FMLocked.begin(), S.FMLocked.end(), uint8_t(0));
    uint64_t MovesThisPass = 0;
    while (true) {
      // Fill: every unlocked, unpinned macro with a positive best gain.
      S.FMHeap.clear();
      for (unsigned Mac = 0; Mac < LN; ++Mac) {
        if (S.FMLocked[Mac] || Lvl.Pin[Mac] >= 0)
          continue;
        double G;
        unsigned C;
        bestMove(Mac, G, C);
        if (G > 0)
          S.FMHeap.push_back({G, Mac});
      }
      if (S.FMHeap.empty())
        break;
      std::make_heap(S.FMHeap.begin(), S.FMHeap.end(), HeapLess);
      // Drain: lazy invalidation — a popped entry whose gain is stale
      // is re-inserted at its current value instead of applied.
      while (!S.FMHeap.empty()) {
        std::pop_heap(S.FMHeap.begin(), S.FMHeap.end(), HeapLess);
        PartitionScratch::FMHeapEntry E = S.FMHeap.back();
        S.FMHeap.pop_back();
        if (S.FMLocked[E.Mac])
          continue;
        double G;
        unsigned C;
        bestMove(E.Mac, G, C);
        if (G != E.Gain) {
          if (G > 0) {
            S.FMHeap.push_back({G, E.Mac});
            std::push_heap(S.FMHeap.begin(), S.FMHeap.end(), HeapLess);
          }
          continue;
        }
        if (G <= 0)
          continue;
        apply(E.Mac, C);
        S.FMLocked[E.Mac] = 1;
        ++MovesThisPass;
        for (unsigned I = Lvl.AdjStart[E.Mac]; I < Lvl.AdjStart[E.Mac + 1];
             ++I) {
          unsigned Nb = Lvl.AdjMacro[I];
          if (S.FMLocked[Nb] || Lvl.Pin[Nb] >= 0)
            continue;
          double NG;
          unsigned NbC;
          bestMove(Nb, NG, NbC);
          if (NG > 0) {
            S.FMHeap.push_back({NG, Nb});
            std::push_heap(S.FMHeap.begin(), S.FMHeap.end(), HeapLess);
          }
        }
      }
    }
    ++PassesRun;
    Moves += MovesThisPass;
    if (MovesThisPass == 0)
      break;
  }
  if (Stats) {
    Stats->FMPasses += PassesRun;
    Stats->FMMoves += Moves;
  }
  return Moves;
}

/// The graceful-degradation rung behind the multilevel path: a flat,
/// coarsening-free partition built directly from the pre-placement
/// groups (recurrences stay whole) plus singleton nodes, assigned by
/// the same pins-first / weight-descending capacity best-fit as the
/// coarsest-level initial assignment, with no refinement. Runs when an
/// armed injector degrades "part.coarsen" or when the multilevel path
/// itself runs out of memory. Allocation-light and a pure function of
/// (loop, plan, options), so degraded runs stay deterministic; the
/// usual feasibility gate still applies, so an infeasible flat
/// partition reports std::nullopt and the IT sweep grows the IT
/// normally.
std::optional<Partition> flatPartition(const PartitionContext &Ctx,
                                       const PartitionerOptions &Opts) {
  const MachineDescription &M = *Ctx.M;
  const MachinePlan &Plan = *Ctx.Plan;
  unsigned NC = M.numClusters();
  unsigned NumNodes = Ctx.G->size();
  if (Ctx.Stats)
    ++Ctx.Stats->FlatFallbacks;

  // Recompute the pre-placement into local buffers (pure function):
  // the scratch copy may be mid-mutation when the multilevel path
  // threw, and this rung must not depend on partial state.
  CoarsenMemoKey Key;
  std::vector<int64_t> Free;
  if (!prePlaceRecurrences(Ctx, Opts.PrePlaceRecurrences, Key, Free))
    return std::nullopt;

  // Units: one per pre-placement group (recurrences are never split),
  // plus a singleton unit per node outside every group.
  struct Unit {
    std::vector<unsigned> Nodes;
    int Pin = -1;
  };
  std::vector<uint8_t> Grouped(NumNodes, 0);
  std::vector<Unit> Units(Key.Groups.size());
  for (size_t G = 0; G < Key.Groups.size(); ++G) {
    Units[G].Nodes = Key.Groups[G];
    Units[G].Pin = Key.Pins[G];
    for (unsigned N : Key.Groups[G])
      Grouped[N] = 1;
  }
  for (unsigned N = 0; N < NumNodes; ++N)
    if (!Grouped[N]) {
      Units.emplace_back();
      Units.back().Nodes.push_back(N);
    }

  // Per-unit FU demand (flat [unit][kind]).
  std::vector<int64_t> Need(Units.size() * NumFUKinds, 0);
  for (size_t U = 0; U < Units.size(); ++U)
    for (unsigned N : Units[U].Nodes)
      ++Need[U * NumFUKinds +
             static_cast<unsigned>(fuKindOf(Ctx.L->Ops[N].Op))];

  // Fresh capacity, then the coarse initial-assignment policy: pins at
  // their cluster, everything else largest-first onto the cluster with
  // the most remaining slack (least overflow when nothing fits).
  Free.assign(static_cast<size_t>(NC) * NumFUKinds, 0);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] =
          Plan.Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));

  Partition P;
  P.ClusterOf.assign(NumNodes, 0);
  auto place = [&](size_t U, unsigned C) {
    for (unsigned N : Units[U].Nodes)
      P.ClusterOf[N] = C;
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] -= Need[U * NumFUKinds + K];
  };

  std::vector<unsigned> Order(Units.size());
  for (unsigned I = 0; I < Units.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    if (Units[A].Nodes.size() != Units[B].Nodes.size())
      return Units[A].Nodes.size() > Units[B].Nodes.size();
    return A < B;
  });
  for (unsigned U : Order) {
    if (Units[U].Pin >= 0) {
      place(U, static_cast<unsigned>(Units[U].Pin));
      continue;
    }
    int BestFit = -1;
    int64_t BestFitSlack = 0;
    int BestOverflow = -1;
    int64_t LeastOverflow = 0;
    for (unsigned C = 0; C < NC; ++C) {
      bool Fits = true;
      int64_t Slk = 0, Overflow = 0;
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        int64_t Rem = Free[C * NumFUKinds + K] - Need[U * NumFUKinds + K];
        if (Rem < 0) {
          Fits = false;
          Overflow -= Rem;
        } else {
          Slk += Rem;
        }
      }
      if (Fits && (BestFit < 0 || Slk > BestFitSlack)) {
        BestFit = static_cast<int>(C);
        BestFitSlack = Slk;
      }
      if (!Fits && (BestOverflow < 0 || Overflow < LeastOverflow)) {
        BestOverflow = static_cast<int>(C);
        LeastOverflow = Overflow;
      }
    }
    place(U, BestFit >= 0 ? static_cast<unsigned>(BestFit)
                          : static_cast<unsigned>(BestOverflow));
  }

  double Score = scorePartition(Ctx, Opts, P);
  if (Ctx.Stats) {
    Ctx.Stats->InitialScore = Score;
    Ctx.Stats->FinalScore = Score;
  }
  if (Score >= InfeasiblePartitionScore)
    return std::nullopt; // still infeasible: grow the IT normally
  return P;
}

/// The normal multilevel path (file header steps 2-4); \p S holds the
/// pre-placement result in S.Key / S.Free.
std::optional<Partition> multilevelPartition(const PartitionContext &Ctx,
                                             const PartitionerOptions &Opts,
                                             PartitionScratch &S) {
  const MachineDescription &M = *Ctx.M;
  unsigned NC = M.numClusters();
  unsigned NumNodes = Ctx.G->size();
  // Coarsest target: CoarsestPerCluster macros per cluster, but never
  // more than half the node count — small loops must still coarsen, or
  // the initial best-fit scatters connected nodes that a few greedy
  // passes cannot regroup.
  S.Key.TargetMacros =
      std::max(NC, std::min(NC * std::max(1u, Opts.CoarsestPerCluster),
                            NumNodes / 2));

  // Slack matrix for the coarsening order, on reference latencies at the
  // recurrence-safe II; IT-independent, so drivers that retry IT steps
  // pass one precomputed matrix through the context.
  MinDistMatrix OwnSlack;
  const MinDistMatrix *Slack = Ctx.SlackMatrix;
  if (!Slack) {
    std::vector<unsigned> Lat = M.Isa.nodeLatencies(*Ctx.L);
    MinDistMatrix::computeInto(OwnSlack, *Ctx.G, Lat,
                               std::max<int64_t>(Ctx.Recs->RecMII, 1));
    Slack = &OwnSlack;
  }

  // Coarsening: on the warm-start path, reuse the previous attempt's
  // level stack when the CoarsenMemoKey matches exactly (hash first,
  // then the full comparison) — the other build inputs (loop, DDG,
  // machine, slack) are fixed for the whole Figure 5 run, so the key
  // match makes the reuse exact. The cold reference path (EnableMemo
  // false) rebuilds every attempt.
  size_t KeyHash = CoarsenMemoKeyHash{}(S.Key);
  bool ReuseML = S.EnableMemo && S.MLValid && KeyHash == S.MemoHashVal &&
                 S.Key == S.MemoKey;
  if (!ReuseML) {
    S.ML.build(*Ctx.L, *Ctx.G, M, S.Key.Groups, S.Key.Pins, *Slack,
               S.Key.TargetMacros, Ctx.Trace);
    if (Ctx.Stats) {
      ++Ctx.Stats->CoarsenBuilds;
      Ctx.Stats->Levels += S.ML.buildStats().Levels;
      Ctx.Stats->MatchedPairs += S.ML.buildStats().MatchedPairs;
    }
    if (S.EnableMemo) {
      std::swap(S.MemoKey, S.Key); // keep both buffers' capacity alive
      S.MemoHashVal = KeyHash;
      S.MLValid = true;
    }
  } else if (Ctx.Stats) {
    ++Ctx.Stats->CoarsenMemoHits;
  }
  const MultilevelGraph &ML = S.ML;

  // Initial assignment of the coarsest macros: pins first, then largest
  // macros onto the cluster with the most remaining per-kind slot
  // capacity (capacity-aware best fit keeps the starting point feasible
  // whenever the coarse macros allow it).
  const CoarseLevel &Coarsest = ML.coarsest();
  unsigned NumMac = Coarsest.NumMacros;
  std::vector<unsigned> &ClusterOfMacro = S.ClusterOfMacro;
  ClusterOfMacro.assign(NumMac, 0);
  std::vector<int64_t> &Free = S.Free;
  Free.resize(static_cast<size_t>(NC) * NumFUKinds);
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] =
          Ctx.Plan->Clusters[C].II *
          static_cast<int64_t>(
              M.Clusters[C].fuCount(static_cast<FUKind>(K)));
  auto place = [&](unsigned Mac, unsigned C) {
    ClusterOfMacro[Mac] = C;
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Free[C * NumFUKinds + K] -= Coarsest.fuCount(Mac, K);
  };

  std::vector<unsigned> &ByWeight = S.ByWeight;
  ByWeight.resize(NumMac);
  for (unsigned I = 0; I < NumMac; ++I)
    ByWeight[I] = I;
  std::sort(ByWeight.begin(), ByWeight.end(), [&](unsigned A, unsigned B) {
    if (Coarsest.Weight[A] != Coarsest.Weight[B])
      return Coarsest.Weight[A] > Coarsest.Weight[B];
    return A < B;
  });
  for (unsigned Mac : ByWeight) {
    if (Coarsest.Pin[Mac] >= 0) {
      place(Mac, static_cast<unsigned>(Coarsest.Pin[Mac]));
      continue;
    }
    int BestFit = -1;
    int64_t BestFitSlack = 0;
    int BestOverflow = -1;
    int64_t LeastOverflow = 0;
    for (unsigned C = 0; C < NC; ++C) {
      bool Fits = true;
      int64_t Slk = 0, Overflow = 0;
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        int64_t Rem = Free[C * NumFUKinds + K] -
                      static_cast<int64_t>(Coarsest.fuCount(Mac, K));
        if (Rem < 0) {
          Fits = false;
          Overflow -= Rem;
        } else {
          Slk += Rem;
        }
      }
      if (Fits && (BestFit < 0 || Slk > BestFitSlack)) {
        BestFit = static_cast<int>(C);
        BestFitSlack = Slk;
      }
      if (!Fits && (BestOverflow < 0 || Overflow < LeastOverflow)) {
        BestOverflow = static_cast<int>(C);
        LeastOverflow = Overflow;
      }
    }
    place(Mac, BestFit >= 0 ? static_cast<unsigned>(BestFit)
                            : static_cast<unsigned>(BestOverflow));
  }

  // Refinement, coarsest to finest. Small levels get the exact greedy
  // (pseudo-schedule-scored) moves; big levels get boundary FM passes
  // whose result is kept only when the exact score did not get worse —
  // so CurrentScore is non-increasing across the whole uncoarsening.
  Partition &Current = S.Current;
  Partition &Cand = S.Cand;
  expandInto(Current, Coarsest, ClusterOfMacro, NumNodes);
  double CurrentScore = scorePartition(Ctx, Opts, Current);
  if (Ctx.Stats)
    Ctx.Stats->InitialScore = CurrentScore;

  for (int LvlIx = static_cast<int>(ML.numLevels()) - 1; LvlIx >= 0;
       --LvlIx) {
    const CoarseLevel &Lvl = ML.level(static_cast<unsigned>(LvlIx));
    unsigned LN = Lvl.NumMacros;
    char LvlBuf[16];
    std::snprintf(LvlBuf, sizeof LvlBuf, "%u", LvlIx);
    obs::Span RefineSp(Ctx.Trace, "part.refine:", LvlBuf);

    // Project the current node-level partition onto this level's macros
    // (members of one macro share a cluster by construction).
    std::vector<unsigned> &Assign = S.Assign;
    Assign.resize(LN);
    for (unsigned Mac = 0; Mac < LN; ++Mac)
      Assign[Mac] = Current.ClusterOf[Lvl.Rep[Mac]];

    if (LN > Opts.MaxRefineMacros) {
      // Boundary FM on the surrogate objective; guarded acceptance.
      uint64_t FMMoves = refineLevelFM(Ctx, Opts, S, Lvl, Assign, Ctx.Stats);
      if (RefineSp.active()) {
        RefineSp.arg("macros", LN);
        RefineSp.arg("fm_moves", static_cast<int64_t>(FMMoves));
      }
      if (FMMoves == 0)
        continue;
      expandInto(Cand, Lvl, Assign, NumNodes);
      double Sc = scorePartition(Ctx, Opts, Cand);
      if (Sc < CurrentScore) {
        CurrentScore = Sc;
        std::swap(Current, Cand);
      }
      continue;
    }

    // Warm-path skip (exact): a candidate move (Mac -> C) re-scores
    // identically unless some move was accepted since its last
    // evaluation at this level — the assignment vector, and hence the
    // expanded partition and its pure-function score, are unchanged, so
    // the greedy rejection repeats. Stamp each eval with the level's
    // accepted-move count and skip on a stamp match.
    std::vector<uint64_t> &EvalStamp = S.EvalStamp;
    EvalStamp.assign(static_cast<size_t>(LN) * NC, ~uint64_t(0));
    uint64_t Accepts = 0;

    for (unsigned Pass = 0; Pass < Opts.MaxRefinePasses; ++Pass) {
      bool Improved = false;
      if (Ctx.Stats)
        ++Ctx.Stats->RefinePasses;
      for (unsigned Mac = 0; Mac < LN; ++Mac) {
        if (Lvl.Pin[Mac] >= 0)
          continue;
        unsigned Home = Assign[Mac];
        for (unsigned C = 0; C < NC; ++C) {
          if (C == Home)
            continue;
          if (S.EnableMemo && EvalStamp[Mac * NC + C] == Accepts)
            continue; // unchanged candidate: same score, same rejection
          EvalStamp[Mac * NC + C] = Accepts;
          Assign[Mac] = C;
          expandInto(Cand, Lvl, Assign, NumNodes);
          double Sc = scorePartition(Ctx, Opts, Cand);
          if (Sc < CurrentScore) {
            CurrentScore = Sc;
            std::swap(Current, Cand);
            Home = C;
            Improved = true;
            ++Accepts;
            if (Ctx.Stats)
              ++Ctx.Stats->RefineMoves;
          } else {
            Assign[Mac] = Home;
          }
        }
        Assign[Mac] = Home;
      }
      if (!Improved)
        break;
    }
    if (RefineSp.active()) {
      RefineSp.arg("macros", LN);
      RefineSp.arg("accepts", static_cast<int64_t>(Accepts));
    }
  }

  if (Ctx.Stats)
    Ctx.Stats->FinalScore = CurrentScore;
  if (CurrentScore >= InfeasiblePartitionScore)
    return std::nullopt; // nothing feasible found at this IT
  return Current;
}

} // namespace

std::optional<Partition>
hcvliw::partitionLoop(const PartitionContext &Ctx,
                      const PartitionerOptions &Opts) {
  unsigned NC = Ctx.M->numClusters();
  unsigned NumNodes = Ctx.G->size();

  if (NC == 1)
    return Partition::allInCluster(NumNodes, 0);

  PartitionScratch Local;
  PartitionScratch &S = Ctx.Scratch ? *Ctx.Scratch : Local;
  if (Ctx.Stats)
    ++Ctx.Stats->Runs;

  if (!prePlaceRecurrences(Ctx, Opts.PrePlaceRecurrences, S.Key, S.Free))
    return std::nullopt;

  // Graceful degradation (the "flat partition" rung): forced by an
  // armed injector, or taken for real when coarsening cannot allocate.
  // Partition quality drops; determinism and the feasibility gate do
  // not.
  if (HCVLIW_FAULT_DEGRADE(Ctx.Fault, "part.coarsen", Ctx.FaultCtx))
    return flatPartition(Ctx, Opts);
  try {
    return multilevelPartition(Ctx, Opts, S);
  } catch (const std::bad_alloc &) {
    // The scratch may hold a partially built level stack; drop the
    // memo so no later attempt reuses it.
    S.MLValid = false;
    return flatPartition(Ctx, Opts);
  }
}
