//===- partition/Partitioner.h - Multilevel DDG partitioning ----*- C++ -*-===//
///
/// \file
/// The Section 4.1 graph partitioner. Produces the cluster assignment
/// the heterogeneous modulo scheduler consumes:
///
///  1. *Critical-recurrence pre-placement* (4.1.1): recurrences whose
///     recMII exceeds the II of some cluster are placed, most critical
///     first, in the **slowest** cluster that can still schedule them,
///     keeping energy low while protecting the IT.
///  2. *Coarsening*: multilevel contraction along low-slack edges;
///     recurrences are never split during coarsening.
///  3. *Initial partition* of the coarsest macros, honoring pins.
///  4. *Refinement* (4.1.2): per level, greedy macro moves scored either
///     by estimated ED2 (pseudo-schedule timing x Section 3.1 energy)
///     for heterogeneous machines, or by the [2][3] baseline objective
///     (feasibility, communications, balance) for homogeneous ones.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_PARTITIONER_H
#define HCVLIW_PARTITION_PARTITIONER_H

#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "power/EnergyModel.h"
#include "sched/Partition.h"
#include "sched/PseudoScheduler.h"

#include <optional>

namespace hcvliw {

struct PartitionerOptions {
  /// Score moves by estimated ED2 (the heterogeneous objective); when
  /// false, use the homogeneous baseline objective of [2][3].
  bool ED2Objective = true;
  /// Pre-place critical recurrences (ablation knob of DESIGN.md #2).
  bool PrePlaceRecurrences = true;
  /// Greedy refinement passes per level.
  unsigned MaxRefinePasses = 2;
  /// Skip refinement at levels with more macros than this (every move
  /// costs a pseudo-schedule; very fine levels of large loops buy
  /// little and cost quadratically).
  unsigned MaxRefineMacros = 48;
};

/// Everything a partitioning run needs to see.
struct PartitionContext {
  const Loop *L = nullptr;
  const DDG *G = nullptr;
  const MachineDescription *M = nullptr;
  const MachinePlan *Plan = nullptr;
  const RecurrenceInfo *Recs = nullptr;
  /// Optional energy scoring (required when ED2Objective is set).
  const EnergyModel *Energy = nullptr;
  const HeteroScaling *Scaling = nullptr;
  uint64_t TripCount = 1;
  /// Optional precomputed coarsening slack matrix
  /// (MinDistMatrix::compute(G, Isa latencies, max(RecMII, 1))). The
  /// matrix does not depend on the IT, so drivers retrying II/IT steps
  /// compute it once instead of reallocating the O(N^2) buffer per
  /// attempt; when null the partitioner computes its own.
  const MinDistMatrix *SlackMatrix = nullptr;
};

/// Runs the partitioner; std::nullopt when no feasible assignment exists
/// at this IT (the driver must grow the IT).
std::optional<Partition> partitionLoop(const PartitionContext &Ctx,
                                       const PartitionerOptions &Opts);

/// Every infeasible partition scores at least this much; feasible
/// scores are always below it.
inline constexpr double InfeasiblePartitionScore = 1e24;

/// Scoring helper shared with tests: lower is better; infeasible
/// partitions score >= InfeasiblePartitionScore, graded by violation.
double scorePartition(const PartitionContext &Ctx,
                      const PartitionerOptions &Opts, const Partition &P);

} // namespace hcvliw

#endif // HCVLIW_PARTITION_PARTITIONER_H
