//===- partition/Partitioner.h - Multilevel DDG partitioning ----*- C++ -*-===//
///
/// \file
/// The Section 4.1 graph partitioner. Produces the cluster assignment
/// the heterogeneous modulo scheduler consumes:
///
///  1. *Critical-recurrence pre-placement* (4.1.1): recurrences whose
///     recMII exceeds the II of some cluster are placed, most critical
///     first, in the **slowest** cluster that can still schedule them,
///     keeping energy low while protecting the IT.
///  2. *Coarsening*: multilevel contraction along low-slack edges;
///     recurrences are never split during coarsening.
///  3. *Initial partition* of the coarsest macros, honoring pins.
///  4. *Refinement* (4.1.2): per level, greedy macro moves scored either
///     by estimated ED2 (pseudo-schedule timing x Section 3.1 energy)
///     for heterogeneous machines, or by the [2][3] baseline objective
///     (feasibility, communications, balance) for homogeneous ones.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_PARTITIONER_H
#define HCVLIW_PARTITION_PARTITIONER_H

#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "obs/Trace.h"
#include "partition/MultilevelGraph.h"
#include "power/EnergyModel.h"
#include "sched/Partition.h"
#include "sched/PseudoScheduler.h"

#include <optional>

namespace hcvliw {

/// Reusable buffers + warm-start memo for partitionLoop. One partition
/// run builds groups, a multilevel coarsening, an initial assignment
/// and hundreds of refinement candidates; the Figure 5 driver runs it
/// up to twice per IT step. A scratch removes the allocation churn, and
/// — on the warm-start path only (EnableMemo) — carries the coarsening
/// across attempts and IT steps: MultilevelGraph::build depends only on
/// (loop, DDG, machine, groups, pins, slack), all of which are fixed
/// within one Figure 5 run except the (groups, pins) pair, so an exact
/// key match lets the next attempt reuse the level stack verbatim.
struct PartitionScratch {
  /// Warm-start switch, set by the driver; the cold reference path
  /// leaves it false and recomputes the coarsening every attempt.
  bool EnableMemo = false;

  // Per-attempt buffers (no information carried between attempts).
  std::vector<std::vector<unsigned>> Groups;
  std::vector<int> Pins;
  std::vector<int64_t> Free; ///< flat [cluster][kind] slot capacity
  std::vector<unsigned> ClusterOfMacro;
  std::vector<unsigned> ByWeight;
  std::vector<unsigned> Assign;
  Partition Current;
  Partition Cand;
  PseudoScratch PS;
  /// Refinement eval stamps (flat [macro][cluster]): the accepted-move
  /// count at the last evaluation of that move, for the exact
  /// unchanged-candidate skip (warm path only).
  std::vector<uint64_t> EvalStamp;

  // Coarsening memo, valid for one Figure 5 run (the driver clears
  // MLValid per loop); keyed exactly on the (groups, pins) inputs.
  MultilevelGraph ML;
  std::vector<std::vector<unsigned>> MemoGroups;
  std::vector<int> MemoPins;
  bool MLValid = false;
};

struct PartitionerOptions {
  /// Score moves by estimated ED2 (the heterogeneous objective); when
  /// false, use the homogeneous baseline objective of [2][3].
  bool ED2Objective = true;
  /// Pre-place critical recurrences (ablation knob of DESIGN.md #2).
  bool PrePlaceRecurrences = true;
  /// Greedy refinement passes per level.
  unsigned MaxRefinePasses = 2;
  /// Skip refinement at levels with more macros than this (every move
  /// costs a pseudo-schedule; very fine levels of large loops buy
  /// little and cost quadratically).
  unsigned MaxRefineMacros = 48;
};

/// Everything a partitioning run needs to see.
struct PartitionContext {
  const Loop *L = nullptr;
  const DDG *G = nullptr;
  const MachineDescription *M = nullptr;
  const MachinePlan *Plan = nullptr;
  const RecurrenceInfo *Recs = nullptr;
  /// Optional energy scoring (required when ED2Objective is set).
  const EnergyModel *Energy = nullptr;
  const HeteroScaling *Scaling = nullptr;
  uint64_t TripCount = 1;
  /// Optional precomputed coarsening slack matrix
  /// (MinDistMatrix::compute(G, Isa latencies, max(RecMII, 1))). The
  /// matrix does not depend on the IT, so drivers retrying II/IT steps
  /// compute it once instead of reallocating the O(N^2) buffer per
  /// attempt; when null the partitioner computes its own.
  const MinDistMatrix *SlackMatrix = nullptr;
  /// Optional reusable buffers + warm-start coarsening memo; results
  /// are bit-identical with or without one.
  PartitionScratch *Scratch = nullptr;
  /// Optional span tracer ("part.coarsen" / "part.refine" phases);
  /// observation only — the assignment never depends on it.
  obs::Tracer *Trace = nullptr;
};

/// Runs the partitioner; std::nullopt when no feasible assignment exists
/// at this IT (the driver must grow the IT).
std::optional<Partition> partitionLoop(const PartitionContext &Ctx,
                                       const PartitionerOptions &Opts);

/// Every infeasible partition scores at least this much; feasible
/// scores are always below it.
inline constexpr double InfeasiblePartitionScore = 1e24;

/// Scoring helper shared with tests: lower is better; infeasible
/// partitions score >= InfeasiblePartitionScore, graded by violation.
double scorePartition(const PartitionContext &Ctx,
                      const PartitionerOptions &Opts, const Partition &P);

} // namespace hcvliw

#endif // HCVLIW_PARTITION_PARTITIONER_H
