//===- partition/Partitioner.h - Multilevel DDG partitioning ----*- C++ -*-===//
///
/// \file
/// The Section 4.1 graph partitioner. Produces the cluster assignment
/// the heterogeneous modulo scheduler consumes:
///
///  1. *Critical-recurrence pre-placement* (4.1.1): recurrences whose
///     recMII exceeds the II of some cluster are placed, most critical
///     first, in the **slowest** cluster that can still schedule them,
///     keeping energy low while protecting the IT.
///  2. *Coarsening*: multilevel heavy-edge matching along low-slack
///     edges, balance-bounded so no macro outgrows a cluster share
///     (MultilevelGraph.h); recurrences are never split.
///  3. *Initial partition* of the coarsest macros, honoring pins.
///  4. *Refinement* (4.1.2), uncoarsening from the coarsest level to
///     the finest. Levels with at most MaxRefineMacros macros use
///     greedy macro moves scored by the exact pseudo-schedule objective
///     (estimated ED2 for heterogeneous machines, the [2][3] baseline
///     for homogeneous ones). Finer levels use boundary FM-style passes
///     on a cheap surrogate (capacity overload, cut, weight balance)
///     whose result is only kept when the exact objective did not get
///     worse — so the tracked objective is monotone across the whole
///     uncoarsening, at every granularity.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_PARTITIONER_H
#define HCVLIW_PARTITION_PARTITIONER_H

#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "obs/Trace.h"
#include "partition/MultilevelGraph.h"
#include "power/EnergyModel.h"
#include "sched/Partition.h"
#include "sched/PseudoScheduler.h"

#include <cstdint>
#include <optional>
#include <string_view>

namespace hcvliw {

namespace fault {
class FaultInjector;
}

/// Warm-start coarsening memo key: the only MultilevelGraph::build
/// inputs that vary within one Figure 5 run (loop, DDG, machine and
/// slack matrix are fixed per run; groups and pins follow the plan's
/// IIs, and the target follows the options). An exact key match makes
/// reusing the memoized level stack provably exact.
struct CoarsenMemoKey {
  std::vector<std::vector<unsigned>> Groups;
  std::vector<int> Pins;
  unsigned TargetMacros = 0;

  bool operator==(const CoarsenMemoKey &O) const {
    return TargetMacros == O.TargetMacros && Pins == O.Pins &&
           Groups == O.Groups;
  }
};

/// FNV-1a over every field of CoarsenMemoKey; the memo compares the
/// hash before paying the exact vector comparison.
struct CoarsenMemoKeyHash {
  size_t operator()(const CoarsenMemoKey &K) const {
    uint64_t H = 1469598103934665603ull;
    auto mix = [&H](uint64_t V) {
      H ^= V;
      H *= 1099511628211ull;
    };
    mix(K.TargetMacros);
    mix(K.Pins.size());
    for (int P : K.Pins)
      mix(static_cast<uint64_t>(static_cast<int64_t>(P)));
    mix(K.Groups.size());
    for (const auto &Gp : K.Groups) {
      mix(Gp.size());
      for (unsigned N : Gp)
        mix(N);
    }
    return static_cast<size_t>(H);
  }
};

/// Partitioner effort counters, accumulated across the attempts of a
/// Figure 5 run (observability: they report work *performed*, so — like
/// LoopScheduleResult::PrunedITSteps — the warm and cold paths report
/// different values and they are excluded from the warm==cold
/// equivalence contract; the partition itself never depends on them).
struct PartitionStats {
  uint64_t Runs = 0;            ///< partitionLoop invocations
  uint64_t CoarsenBuilds = 0;   ///< multilevel stacks built
  uint64_t CoarsenMemoHits = 0; ///< stacks reused from the memo
  uint64_t Levels = 0;          ///< recorded levels across all builds
  uint64_t MatchedPairs = 0;    ///< pair contractions across all builds
  uint64_t RefinePasses = 0;    ///< exact greedy passes run
  uint64_t RefineMoves = 0;     ///< exact greedy moves accepted
  uint64_t FMPasses = 0;        ///< boundary FM passes run
  uint64_t FMMoves = 0;         ///< boundary FM moves applied
  /// Runs that took the pre-fused flat-partition rung instead of the
  /// multilevel path (forced by an injected part.coarsen degrade or by
  /// an allocation failure inside coarsening). Unlike the effort
  /// counters above this is part of the result contract: the rung
  /// changes the partition, so the count is deterministic and cached
  /// results replay it exactly.
  uint64_t FlatFallbacks = 0;
  /// Exact score of the initial (coarsest) assignment and of the final
  /// refined partition of the most recent run — the refinement
  /// invariant FinalScore <= InitialScore is pinned by MultilevelTest.
  double InitialScore = 0;
  double FinalScore = 0;
};

/// Reusable buffers + warm-start memo for partitionLoop. One partition
/// run builds groups, a multilevel coarsening, an initial assignment
/// and hundreds of refinement candidates; the Figure 5 driver runs it
/// up to twice per IT step. A scratch removes the allocation churn, and
/// — on the warm-start path only (EnableMemo) — carries the coarsening
/// across attempts and IT steps via an exact CoarsenMemoKey match.
struct PartitionScratch {
  /// Warm-start switch, set by the driver; the cold reference path
  /// leaves it false and recomputes the coarsening every attempt.
  bool EnableMemo = false;

  // Per-attempt buffers (no information carried between attempts).
  CoarsenMemoKey Key;        ///< this attempt's (groups, pins, target)
  std::vector<int64_t> Free; ///< flat [cluster][kind] slot capacity
  std::vector<double> WInsTmp; ///< scorePartition's scaled-activity buffer
  std::vector<unsigned> ClusterOfMacro;
  std::vector<unsigned> ByWeight;
  std::vector<unsigned> Assign;
  Partition Current;
  Partition Cand;
  PseudoScratch PS;
  /// Exact-refinement eval stamps (flat [macro][cluster]): the
  /// accepted-move count at the last evaluation of that move, for the
  /// exact unchanged-candidate skip (warm path only).
  std::vector<uint64_t> EvalStamp;

  // Boundary FM refinement working set (levels above MaxRefineMacros;
  // all sized per level and reused, so steady state is allocation-free
  // — the "gain buckets in the arena" half of the big-loop work).
  std::vector<int64_t> FMLoad;     ///< flat [cluster][kind] op counts
  std::vector<int64_t> FMCap;      ///< flat [cluster][kind] capacity
  std::vector<double> FMWeight;    ///< [cluster] energy mass
  std::vector<uint8_t> FMLocked;   ///< [macro] moved this pass
  struct FMHeapEntry {
    double Gain;
    unsigned Mac;
  };
  std::vector<FMHeapEntry> FMHeap; ///< binary max-heap storage
  /// Boundary-refinement eval stamps (warm path only; exact): cached
  /// per-macro cut mass toward every cluster, valid while no neighbor
  /// of the macro has moved (FMCutStamp[mac] == FMNbrVer[mac]). The
  /// cold path rescans the adjacency every evaluation and computes the
  /// identical values.
  std::vector<int64_t> FMCutTo;    ///< flat [macro][cluster]
  std::vector<uint64_t> FMCutStamp; ///< [macro]
  std::vector<uint64_t> FMNbrVer;   ///< [macro]

  // Coarsening memo, valid for one Figure 5 run (the driver clears
  // MLValid per loop); keyed exactly on CoarsenMemoKey, hash-first.
  MultilevelGraph ML;
  CoarsenMemoKey MemoKey;
  size_t MemoHashVal = 0;
  bool MLValid = false;
};

struct PartitionerOptions {
  /// Score moves by estimated ED2 (the heterogeneous objective); when
  /// false, use the homogeneous baseline objective of [2][3].
  bool ED2Objective = true;
  /// Pre-place critical recurrences (ablation knob of DESIGN.md #2).
  bool PrePlaceRecurrences = true;
  /// Greedy exact-refinement passes per level.
  unsigned MaxRefinePasses = 2;
  /// Levels with more macros than this skip the exact greedy
  /// refinement (every move costs a pseudo-schedule) and run boundary
  /// FM passes on the surrogate objective instead.
  unsigned MaxRefineMacros = 48;
  /// Coarsening target, in macros per cluster. One macro per cluster
  /// keeps each coarsest macro a connected low-slack blob, which the
  /// ED2-quality pins of PipelineTest show beats a finer coarsest
  /// level: the weight-sorted initial best-fit ignores connectivity,
  /// and with many macros it scatters connected work across clusters
  /// into a local optimum the refinement cannot escape.
  unsigned CoarsestPerCluster = 1;
  /// Boundary FM passes per level (levels above MaxRefineMacros).
  unsigned MaxFMPasses = 4;
};

/// Everything a partitioning run needs to see.
struct PartitionContext {
  const Loop *L = nullptr;
  const DDG *G = nullptr;
  const MachineDescription *M = nullptr;
  const MachinePlan *Plan = nullptr;
  const RecurrenceInfo *Recs = nullptr;
  /// Optional energy scoring (required when ED2Objective is set).
  const EnergyModel *Energy = nullptr;
  const HeteroScaling *Scaling = nullptr;
  uint64_t TripCount = 1;
  /// Optional precomputed coarsening slack matrix
  /// (MinDistMatrix::compute(G, Isa latencies, max(RecMII, 1))). The
  /// matrix does not depend on the IT, so drivers retrying II/IT steps
  /// compute it once instead of reallocating the O(N^2) buffer per
  /// attempt; when null the partitioner computes its own.
  const MinDistMatrix *SlackMatrix = nullptr;
  /// Optional reusable buffers + warm-start coarsening memo; results
  /// are bit-identical with or without one.
  PartitionScratch *Scratch = nullptr;
  /// Optional span tracer ("part.coarsen:<level>" / "part.refine:
  /// <level>" phases); observation only — the assignment never depends
  /// on it.
  obs::Tracer *Trace = nullptr;
  /// Optional effort counters, accumulated (+=) per run; observation
  /// only (see PartitionStats).
  PartitionStats *Stats = nullptr;
  /// Optional fault injector (armed test/chaos runs only; null in
  /// production). The "part.coarsen" degrade site forces the
  /// flat-partition rung; context is FaultCtx ("<program>/<loop>").
  fault::FaultInjector *Fault = nullptr;
  std::string_view FaultCtx;
};

/// Runs the partitioner; std::nullopt when no feasible assignment exists
/// at this IT (the driver must grow the IT).
std::optional<Partition> partitionLoop(const PartitionContext &Ctx,
                                       const PartitionerOptions &Opts);

/// Every infeasible partition scores at least this much; feasible
/// scores are always below it.
inline constexpr double InfeasiblePartitionScore = 1e24;

/// Scoring helper shared with tests: lower is better; infeasible
/// partitions score >= InfeasiblePartitionScore, graded by violation.
double scorePartition(const PartitionContext &Ctx,
                      const PartitionerOptions &Opts, const Partition &P);

} // namespace hcvliw

#endif // HCVLIW_PARTITION_PARTITIONER_H
