//===- partition/ScheduleScratch.cpp - Per-worker schedule arenas -----------===//

#include "partition/ScheduleScratch.h"

using namespace hcvliw;

ScheduleScratch &ScheduleScratchPool::forThisThread() {
  std::thread::id Id = std::this_thread::get_id();
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<ScheduleScratch> &Slot = PerThread[Id];
  if (!Slot)
    Slot = std::make_unique<ScheduleScratch>();
  return *Slot;
}

size_t ScheduleScratchPool::threadsSeen() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return PerThread.size();
}
