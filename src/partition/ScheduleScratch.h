//===- partition/ScheduleScratch.h - Per-worker schedule arenas --*- C++ -*-===//
///
/// \file
/// The per-worker scratch arena of the per-loop scheduling chain. One
/// ScheduleScratch owns every reusable buffer a Figure 5 run touches —
/// the DDG, the coarsening slack matrix, the partitioner's multilevel
/// stack and pseudo-schedule buffers, the partitioned graph and its
/// tick lowering, the modulo reservation table, the scheduler's
/// ready-list bitset and priority arrays, and the register-pressure
/// accumulators — so the thousands of schedule runs a suite performs
/// stop hitting malloc in steady state.
///
/// Ownership contract (see also README "Performance"):
///
///   - A ScheduleScratch belongs to exactly one thread at a time. The
///     Session-owned ScheduleScratchPool hands each thread its own
///     arena (keyed on the thread's identity), so pool workers and
///     external callers never share one.
///   - Everything inside a scratch is *owned by the scratch* and valid
///     only until the next LoopScheduler::schedule call that uses it.
///     Callers must not hold references into a scratch across schedule
///     calls; results that escape (LoopScheduleResult) are copied or
///     moved out by the driver before it returns.
///   - Scratch contents never carry information between runs: results
///     are bit-identical with and without a scratch, for any pool
///     shape. The warm-start memos inside (coarsening, partitioned
///     graph) are keyed exactly and invalidated per run
///     (beginLoopRun), so they are reuse, not state.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PARTITION_SCHEDULESCRATCH_H
#define HCVLIW_PARTITION_SCHEDULESCRATCH_H

#include "ir/DDG.h"
#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "partition/Partitioner.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/RegisterPressure.h"
#include "sched/TickGraph.h"

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace hcvliw {

/// One memoized IT-independent loop analysis: the recurrence summary
/// and the coarsening slack matrix, both pure functions of the loop's
/// structure and its node latencies (the matrix is Floyd-Warshall
/// longest paths at II = max(recMII, 1) — O(N^3), and the single
/// dominant cost of scheduling a 1000-op loop). Keyed by the loop's
/// structural fingerprint plus the exact latency vector (latencies
/// vary by ISA table, fingerprints by loop), so an entry is reusable
/// across machine plans, menus, and whole schedule() runs — the suite
/// pattern of re-scheduling one loop under many configurations pays
/// the cubic analysis once per loop, not once per run.
struct LoopAnalysisMemo {
  uint64_t Fp = 0;
  std::vector<unsigned> Lat;
  RecurrenceInfo Recs;
  MinDistMatrix Slack;
};

/// All reusable storage of one per-loop scheduling run (one thread's
/// arena). See the file header for the ownership contract.
struct ScheduleScratch {
  // Figure 5 driver state (per loop).
  DDG G;
  std::vector<unsigned> Lat;
  MinDistMatrix Slack;

  // Per-attempt structures.
  PartitionedGraph PG;
  std::vector<int> PGCopySlots;
  TickGraph Ticks;
  SchedulerScratch Sched;
  PressureScratch Pressure;
  PartitionScratch Part;

  // Warm-start memo: the assignment PG currently materializes. The
  // graph is a pure function of the assignment (the plan plays no
  // part), so an exact match across attempts or IT steps skips the
  // rebuild. Valid for one Figure 5 run only.
  Partition PGAssignment;
  bool PGValid = false;

  /// Cross-run analysis memos (see LoopAnalysisMemo). Bounded and
  /// overwritten round-robin — eviction affects speed only, never
  /// results, since every entry is bit-identical to recomputation.
  /// Deliberately NOT cleared by beginLoopRun: the key is globally
  /// unique (fingerprint + latencies), unlike the per-sweep memos.
  static constexpr unsigned MaxAnalysisMemos = 16;
  std::vector<LoopAnalysisMemo> Analysis;
  unsigned AnalysisNext = 0;

  const LoopAnalysisMemo *findAnalysis(uint64_t Fp,
                                       const std::vector<unsigned> &L) const {
    for (const LoopAnalysisMemo &A : Analysis)
      if (A.Fp == Fp && A.Lat == L)
        return &A;
    return nullptr;
  }

  /// The slot the next memo should be stored into (round-robin once
  /// full; the overwritten entry's buffers are reused in place).
  LoopAnalysisMemo &analysisSlot() {
    if (Analysis.size() < MaxAnalysisMemos) {
      Analysis.emplace_back();
      return Analysis.back();
    }
    LoopAnalysisMemo &A = Analysis[AnalysisNext];
    AnalysisNext = (AnalysisNext + 1) % MaxAnalysisMemos;
    return A;
  }

  /// Invalidates the cross-attempt memos; the driver calls this at the
  /// start of every schedule() run (the memo keys are only unique
  /// within one loop's sweep).
  void beginLoopRun() {
    PGValid = false;
    Part.MLValid = false;
  }
};

/// The Session-owned arena table: one ScheduleScratch per thread that
/// schedules through the session (pool workers and any external caller
/// of runProgram). Thread-keyed so concurrent measurements never share
/// an arena; which arena a thread gets cannot affect results (see the
/// ScheduleScratch contract), so determinism is preserved for any pool
/// shape. Arenas live as long as the pool.
class ScheduleScratchPool {
  mutable std::mutex Mutex;
  std::unordered_map<std::thread::id, std::unique_ptr<ScheduleScratch>>
      PerThread;

public:
  ScheduleScratchPool() = default;
  ScheduleScratchPool(const ScheduleScratchPool &) = delete;
  ScheduleScratchPool &operator=(const ScheduleScratchPool &) = delete;

  /// The calling thread's arena (created on first use). One mutex
  /// acquisition per call; callers acquire once per program
  /// measurement, not per loop.
  ScheduleScratch &forThisThread();

  /// Number of distinct threads that have acquired an arena.
  size_t threadsSeen() const;
};

} // namespace hcvliw

#endif // HCVLIW_PARTITION_SCHEDULESCRATCH_H
