//===- power/AlphaPowerModel.cpp - fmax <-> (Vdd, Vth) ----------------------===//

#include "power/AlphaPowerModel.h"

#include <cassert>
#include <cmath>

using namespace hcvliw;

AlphaPowerModel::AlphaPowerModel(const TechnologyModel &T, double RefFreqGHz,
                                 double RefVdd, double RefVth)
    : Tech(T) {
  assert(RefVdd > RefVth && RefVth > 0 && "bad reference operating point");
  K = RefFreqGHz * RefVdd / std::pow(RefVdd - RefVth, Tech.Alpha);
  assert(isValidOperatingPoint(RefVdd, RefVth) &&
         "reference operating point violates the validity constraint");
}

double AlphaPowerModel::fmaxGHz(double Vdd, double Vth) const {
  if (Vth >= Vdd)
    return 0;
  return K * std::pow(Vdd - Vth, Tech.Alpha) / Vdd;
}

std::optional<double> AlphaPowerModel::vthForFrequency(double FreqGHz,
                                                       double Vdd) const {
  assert(FreqGHz > 0 && Vdd > 0 && "bad frequency/voltage request");
  double Overdrive = std::pow(FreqGHz * Vdd / K, 1.0 / Tech.Alpha);
  double Vth = Vdd - Overdrive;
  if (!isValidOperatingPoint(Vdd, Vth))
    return std::nullopt;
  return Vth;
}

bool AlphaPowerModel::isValidOperatingPoint(double Vdd, double Vth) const {
  if (Vth <= 0 || Vth >= Vdd)
    return false;
  return (Vdd - Vth) - Vth > Tech.OverdriveMargin * Vdd;
}

double hcvliw::dynamicEnergyScale(double Vdd, double VddRef) {
  double R = Vdd / VddRef;
  return R * R;
}

double hcvliw::staticEnergyScale(double Vdd, double Vth, double VddRef,
                                 double VthRef, double SubthresholdSlopeV) {
  return std::pow(10.0, (VthRef - Vth) / SubthresholdSlopeV) * Vdd / VddRef;
}
