//===- power/AlphaPowerModel.h - fmax <-> (Vdd, Vth) ------------*- C++ -*-===//
///
/// \file
/// The alpha-power MOSFET model of Section 3.3. Given a supply voltage
/// and a target frequency, the threshold voltage is derived by inverting
///
///   fmax = K * (Vdd - Vth)^alpha / Vdd          (K calibrated so the
///                                                reference point is a
///                                                fixed point)
///
/// and validated against the overdrive-margin constraint. Frequencies
/// are in GHz, voltages in volts; the calibration makes the model
/// unit-consistent with the machine's 1 GHz / 1 V / 0.25 V reference.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_POWER_ALPHAPOWERMODEL_H
#define HCVLIW_POWER_ALPHAPOWERMODEL_H

#include "power/TechnologyModel.h"

#include <optional>

namespace hcvliw {

class AlphaPowerModel {
  TechnologyModel Tech;
  double K; ///< beta / CL, folded into one calibrated constant

public:
  /// Calibrates K so that fmax(RefVdd, RefVth) == RefFreqGHz.
  AlphaPowerModel(const TechnologyModel &T, double RefFreqGHz,
                  double RefVdd, double RefVth);

  /// Maximum frequency at the given operating point; 0 when Vth >= Vdd.
  double fmaxGHz(double Vdd, double Vth) const;

  /// Threshold voltage making fmax(Vdd, Vth) == FreqGHz exactly;
  /// std::nullopt when the required Vth violates the validity
  /// constraint (including Vth <= 0, i.e. the frequency is unreachable
  /// at this supply voltage).
  std::optional<double> vthForFrequency(double FreqGHz, double Vdd) const;

  /// The overdrive-margin validity predicate (see TechnologyModel).
  bool isValidOperatingPoint(double Vdd, double Vth) const;

  const TechnologyModel &technology() const { return Tech; }
};

/// Dynamic-energy scaling factor delta = (Vdd / VddRef)^2 (Section 3.1.1).
double dynamicEnergyScale(double Vdd, double VddRef);

/// Static-energy scaling factor
/// sigma = 10^((VthRef - Vth) / Sv) * Vdd / VddRef (Section 3.1.2).
double staticEnergyScale(double Vdd, double Vth, double VddRef,
                         double VthRef, double SubthresholdSlopeV);

} // namespace hcvliw

#endif // HCVLIW_POWER_ALPHAPOWERMODEL_H
