//===- power/EnergyModel.cpp - Section 3.1 energy model ---------------------===//

#include "power/EnergyModel.h"

#include <cassert>

using namespace hcvliw;

EnergyModel::EnergyModel(const EnergyBreakdown &B,
                         const ActivityCounts &RefCounts, double RefTexecNs,
                         unsigned NumClustersIn)
    : Breakdown(B), NumClusters(NumClustersIn) {
  assert(NumClusters >= 1 && "model needs at least one cluster");
  assert(RefTexecNs > 0 && "reference execution time must be positive");
  assert(B.clusterShare() > 0 && "cluster share must be positive");

  auto unit = [](double Share, double Count) {
    return Count > 0 ? Share / Count : 0.0;
  };
  double ClusterShare = B.clusterShare();
  EInsUnit =
      unit(ClusterShare * (1.0 - B.ClusterLeakageFrac), RefCounts.WeightedIns);
  ECommUnit = unit(B.IcnShare * (1.0 - B.IcnLeakageFrac), RefCounts.Comms);
  EAccessUnit =
      unit(B.CacheShare * (1.0 - B.CacheLeakageFrac), RefCounts.MemAccesses);

  EsClusterUnit = ClusterShare * B.ClusterLeakageFrac /
                  (RefTexecNs * static_cast<double>(NumClusters));
  EsIcnUnit = B.IcnShare * B.IcnLeakageFrac / RefTexecNs;
  EsCacheUnit = B.CacheShare * B.CacheLeakageFrac / RefTexecNs;
}

double EnergyModel::heteroEnergy(const std::vector<double> &WInsPerCluster,
                                 double Comms, double MemAccesses,
                                 double TexecNs,
                                 const HeteroScaling &S) const {
  assert(WInsPerCluster.size() == NumClusters &&
         S.Clusters.size() == NumClusters &&
         "per-cluster vectors must match the machine");
  double E = 0;
  for (unsigned C = 0; C < NumClusters; ++C)
    E += S.Clusters[C].Delta * WInsPerCluster[C] * EInsUnit;
  E += S.Icn.Delta * Comms * ECommUnit;
  E += S.Cache.Delta * MemAccesses * EAccessUnit;

  double LeakPerNs = 0;
  for (unsigned C = 0; C < NumClusters; ++C)
    LeakPerNs += S.Clusters[C].Sigma * EsClusterUnit;
  LeakPerNs += S.Icn.Sigma * EsIcnUnit;
  LeakPerNs += S.Cache.Sigma * EsCacheUnit;
  return E + TexecNs * LeakPerNs;
}

double EnergyModel::homogeneousEnergy(const ActivityCounts &Counts,
                                      double TexecNs,
                                      const DomainScaling &Cluster,
                                      const DomainScaling &Icn,
                                      const DomainScaling &Cache) const {
  std::vector<double> WIns(NumClusters,
                           Counts.WeightedIns /
                               static_cast<double>(NumClusters));
  HeteroScaling S;
  S.Clusters.assign(NumClusters, Cluster);
  S.Icn = Icn;
  S.Cache = Cache;
  return heteroEnergy(WIns, Counts.Comms, Counts.MemAccesses, TexecNs, S);
}
