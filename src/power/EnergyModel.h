//===- power/EnergyModel.h - Section 3.1 energy model ------------*- C++ -*-===//
///
/// \file
/// The compile-time energy model of Section 3.1. The total energy of the
/// *reference homogeneous* machine is decomposed into six components:
/// {clusters, interconnect, cache} x {dynamic, static}, using the
/// baseline assumptions of Section 5 (cache one third of total energy,
/// ICN 10%; leakage one third of cluster energy, two thirds of cache
/// energy, 10% of ICN energy). Per-unit energies (one instruction, one
/// communication, one access, one second of leakage per component) are
/// derived by dividing each share by the reference activity counts; the
/// energy of an arbitrary heterogeneous configuration is then
///
///   E_het = sum_C delta_C * WIns_C * E_ins
///         + delta_ICN * nComms * E_comm
///         + delta_cache * nMem * E_access
///         + T_exec * ( sum_C sigma_C * Es_C
///                    + sigma_ICN * Es_ICN + sigma_cache * Es_cache )
///
/// Instruction counts are *energy-weighted* using Table 1 (the paper
/// notes the class refinement as an enhancement; we implement it).
/// Reference energy is normalized to 1.0, so heteroEnergy() values read
/// directly as fractions of the reference machine's energy.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_POWER_ENERGYMODEL_H
#define HCVLIW_POWER_ENERGYMODEL_H

#include <vector>

namespace hcvliw {

/// Dynamic activity of one run (a loop, or a whole program).
struct ActivityCounts {
  double WeightedIns = 0;  ///< sum of Table-1 relative energies executed
  double Comms = 0;        ///< inter-cluster transfers
  double MemAccesses = 0;  ///< loads + stores

  ActivityCounts &operator+=(const ActivityCounts &O) {
    WeightedIns += O.WeightedIns;
    Comms += O.Comms;
    MemAccesses += O.MemAccesses;
    return *this;
  }
};

/// The Section 5 baseline energy-share assumptions; Figures 8 and 9 vary
/// these.
struct EnergyBreakdown {
  double CacheShare = 1.0 / 3.0;
  double IcnShare = 0.1;
  double ClusterLeakageFrac = 1.0 / 3.0;
  double CacheLeakageFrac = 2.0 / 3.0;
  double IcnLeakageFrac = 0.1;

  double clusterShare() const { return 1.0 - CacheShare - IcnShare; }
};

/// Voltage/frequency scaling of one clock domain relative to the
/// reference (delta: dynamic, sigma: static; Sections 3.1.1-3.1.2).
struct DomainScaling {
  double Delta = 1.0;
  double Sigma = 1.0;
};

/// Scaling of every domain of a heterogeneous configuration.
struct HeteroScaling {
  std::vector<DomainScaling> Clusters;
  DomainScaling Icn;
  DomainScaling Cache;
};

class EnergyModel {
  EnergyBreakdown Breakdown;
  unsigned NumClusters;
  double EInsUnit = 0;      ///< per weighted instruction
  double ECommUnit = 0;     ///< per communication
  double EAccessUnit = 0;   ///< per memory access
  double EsClusterUnit = 0; ///< per cluster, per ns
  double EsIcnUnit = 0;     ///< per ns
  double EsCacheUnit = 0;   ///< per ns

public:
  /// Builds the model from the reference homogeneous run: its activity
  /// counts and execution time (ns). Total reference energy == 1.
  EnergyModel(const EnergyBreakdown &B, const ActivityCounts &RefCounts,
              double RefTexecNs, unsigned NumClusters);

  /// Section 3.1.3 heterogeneous-energy equation. \p WInsPerCluster is
  /// the energy-weighted instruction count executed in each cluster
  /// (its normalized form is the paper's p_Ci).
  double heteroEnergy(const std::vector<double> &WInsPerCluster,
                      double Comms, double MemAccesses, double TexecNs,
                      const HeteroScaling &S) const;

  /// The same equation for a *homogeneous* configuration (every cluster
  /// scaled identically); used when ranking candidate homogeneous
  /// designs (Section 5.1).
  double homogeneousEnergy(const ActivityCounts &Counts, double TexecNs,
                           const DomainScaling &Cluster,
                           const DomainScaling &Icn,
                           const DomainScaling &Cache) const;

  const EnergyBreakdown &breakdown() const { return Breakdown; }
  unsigned numClusters() const { return NumClusters; }
  double insUnit() const { return EInsUnit; }
  double commUnit() const { return ECommUnit; }
  double accessUnit() const { return EAccessUnit; }
  double clusterLeakPerNs() const { return EsClusterUnit; }
  double icnLeakPerNs() const { return EsIcnUnit; }
  double cacheLeakPerNs() const { return EsCacheUnit; }
};

/// Energy-delay-squared, the paper's figure of merit.
inline double computeED2(double Energy, double DelayNs) {
  return Energy * DelayNs * DelayNs;
}

} // namespace hcvliw

#endif // HCVLIW_POWER_ENERGYMODEL_H
