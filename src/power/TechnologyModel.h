//===- power/TechnologyModel.h - Process technology constants ----*- C++ -*-===//
///
/// \file
/// Technology constants of the Section 3 power model: the alpha-power
/// velocity-saturation exponent, the subthreshold slope of the leakage
/// law, and the metastability/overdrive margin constraining Vth.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_POWER_TECHNOLOGYMODEL_H
#define HCVLIW_POWER_TECHNOLOGYMODEL_H

namespace hcvliw {

struct TechnologyModel {
  /// Velocity-saturation exponent of the alpha-power law
  /// fmax = beta * (Vdd - Vth)^Alpha / (CL * Vdd). 1.3 is the standard
  /// short-channel value.
  double Alpha = 1.3;

  /// Subthreshold slope Sv (volts per decade) of
  /// Pstat = I_t0 * W * 10^(-Vth/Sv) * Vdd. 100 mV/decade.
  double SubthresholdSlopeV = 0.1;

  /// Validity margin on the derived threshold voltage. The paper requires
  /// (its PDF rendering is garbled; see DESIGN.md) a gate-overdrive
  /// margin preventing metastability, glitches and process-variation
  /// upsets; we read it as (Vdd - Vth) - Vth > OverdriveMargin * Vdd,
  /// which admits the reference point (1 V, 0.25 V).
  double OverdriveMargin = 0.1;

  static TechnologyModel paperDefault() { return TechnologyModel(); }
};

} // namespace hcvliw

#endif // HCVLIW_POWER_TECHNOLOGYMODEL_H
