//===- profiling/ProfileData.h - Reference-run profiles ----------*- C++ -*-===//
///
/// \file
/// Profile data collected from the reference homogeneous machine
/// (Section 3: "we will first simulate program execution in a reference
/// homogeneous microarchitecture"): per-loop scheduling statistics and
/// dynamic activity that the configuration-selection models consume.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PROFILING_PROFILEDATA_H
#define HCVLIW_PROFILING_PROFILEDATA_H

#include "power/EnergyModel.h"
#include "support/Rational.h"

#include <string>
#include <vector>

namespace hcvliw {

/// Table 2's loop taxonomy.
enum class LoopConstraint {
  Resource,   ///< recMII <  resMII
  Borderline, ///< resMII <= recMII < 1.3 * resMII
  Recurrence, ///< 1.3 * resMII <= recMII
};

const char *loopConstraintName(LoopConstraint C);

/// One weakly-connected component of a loop's DDG: the indivisible unit
/// the timing estimator packs into clusters (splitting a component costs
/// communications, so the estimator treats components as atomic).
struct ComponentProfile {
  std::vector<unsigned> FUCounts; ///< per FUKind
  int64_t RecMII = 0;             ///< max recurrence inside (0 if none)
};

struct LoopProfile {
  std::string Name;
  uint64_t TripCount = 1;
  double Weight = 1.0;
  /// Invocations per program run, realizing the loop's weight as a
  /// share of the program's execution-time budget.
  double Invocations = 1.0;

  int64_t RecMII = 0;
  int64_t ResMII = 1;
  int64_t IIHom = 1;             ///< reference homogeneous II
  Rational ItLengthRefNs;        ///< reference iteration drain time
  Rational TexecRefNs;           ///< one invocation, reference machine
  ActivityCounts PerIter;        ///< per iteration
  int64_t SumLifetimesRef = 0;   ///< all clusters, reference cycles
  std::vector<unsigned> OpCounts; ///< per FUKind
  unsigned NumOps = 0;
  /// Weakly-connected DDG components, for the estimator's packing check.
  std::vector<ComponentProfile> Components;

  LoopConstraint classification() const {
    if (RecMII < ResMII)
      return LoopConstraint::Resource;
    if (10 * RecMII < 13 * ResMII)
      return LoopConstraint::Borderline;
    return LoopConstraint::Recurrence;
  }

  /// Reference execution time of all invocations (ns).
  double totalRefNs() const { return Invocations * TexecRefNs.toDouble(); }

  /// Structural identity of everything the Section 3.2 timing estimator
  /// reads (name, weight and invocation count excluded): two loops with
  /// equal fingerprints receive bit-identical timing estimates on equal
  /// machines, which is what lets a shared EvalCache hit across
  /// programs containing structurally identical loops. The Profiler
  /// precomputes it into StructuralFP (the hash sits on the cache-hit
  /// hot path); hand-built profiles are hashed on demand. Mutating a
  /// profile after it was fingerprinted requires resetting
  /// StructuralFP to 0.
  uint64_t timingFingerprint() const {
    return StructuralFP ? StructuralFP : computeTimingFingerprint();
  }
  uint64_t computeTimingFingerprint() const;

  uint64_t StructuralFP = 0; ///< cached timingFingerprint (0 = unset)
};

struct ProgramProfile {
  std::string Name;
  std::vector<LoopProfile> Loops;
  double TexecRefNs = 0;  ///< whole program, reference machine
  ActivityCounts Totals;  ///< whole program

  /// Execution-time share per LoopConstraint class (Table 2 row).
  std::vector<double> shareByConstraint() const;

  /// Identity of every selection-relevant field (loop structure plus
  /// weights, invocations, activity and reference totals; Name
  /// excluded). Used by the Session layer to memoize whole selections.
  uint64_t fingerprint() const;
};

} // namespace hcvliw

#endif // HCVLIW_PROFILING_PROFILEDATA_H
