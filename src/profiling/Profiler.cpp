//===- profiling/Profiler.cpp - Reference homogeneous profiling -------------===//

#include "profiling/Profiler.h"
#include "ir/RecurrenceAnalysis.h"
#include "partition/LoopScheduler.h"
#include "support/HashUtil.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

using namespace hcvliw;

const char *hcvliw::loopConstraintName(LoopConstraint C) {
  switch (C) {
  case LoopConstraint::Resource:
    return "resource";
  case LoopConstraint::Borderline:
    return "borderline";
  case LoopConstraint::Recurrence:
    return "recurrence";
  }
  assert(false && "unknown constraint class");
  return "?";
}

uint64_t LoopProfile::computeTimingFingerprint() const {
  // Exactly the fields estimateLoopTiming and the EvalCache's derived
  // expressions read; Name / Weight / Invocations / energy activity are
  // deliberately excluded so structurally identical loops collide.
  FnvHasher H;
  H.mix(TripCount);
  H.mixSigned(RecMII);
  H.mixSigned(ResMII);
  H.mixSigned(IIHom);
  H.mixRational(ItLengthRefNs);
  H.mixSigned(SumLifetimesRef);
  H.mixDouble(PerIter.Comms);
  H.mix(NumOps);
  H.mixVector(OpCounts);
  H.mix(Components.size());
  for (const ComponentProfile &C : Components) {
    H.mixVector(C.FUCounts);
    H.mixSigned(C.RecMII);
  }
  return H.digest();
}

uint64_t ProgramProfile::fingerprint() const {
  FnvHasher H;
  H.mixDouble(TexecRefNs);
  H.mixDouble(Totals.WeightedIns);
  H.mixDouble(Totals.Comms);
  H.mixDouble(Totals.MemAccesses);
  H.mix(Loops.size());
  for (const LoopProfile &L : Loops) {
    H.mix(L.timingFingerprint());
    H.mixDouble(L.Weight);
    H.mixDouble(L.Invocations);
    H.mixRational(L.TexecRefNs);
    H.mixDouble(L.PerIter.WeightedIns);
    H.mixDouble(L.PerIter.MemAccesses);
  }
  return H.digest();
}

std::vector<double> ProgramProfile::shareByConstraint() const {
  std::vector<double> Share(3, 0.0);
  double Total = 0;
  for (const LoopProfile &L : Loops) {
    Share[static_cast<unsigned>(L.classification())] += L.totalRefNs();
    Total += L.totalRefNs();
  }
  if (Total > 0)
    for (double &S : Share)
      S /= Total;
  return Share;
}

Profiler::Profiler(const MachineDescription &M, double BudgetNs)
    : Machine(M), ProgramBudgetNs(BudgetNs) {
  assert(BudgetNs > 0 && "profiling budget must be positive");
}

std::optional<ProgramProfile>
Profiler::profileProgram(const std::string &Name,
                         const std::vector<Loop> &Loops,
                         std::string *Err) const {
  ProgramProfile P;
  P.Name = Name;

  HeteroConfig Ref = HeteroConfig::reference(Machine);
  LoopScheduleOptions Opts;
  Opts.Part.ED2Objective = false; // baseline [2][3] objective
  LoopScheduler Sched(Machine, Ref, Opts);

  double TotalWeight = 0;
  for (const Loop &L : Loops)
    TotalWeight += L.Weight;
  if (TotalWeight <= 0) {
    if (Err)
      *Err = Loops.empty() ? "program has no loops"
                           : "total loop weight is not positive";
    return std::nullopt;
  }

  for (const Loop &L : Loops) {
    LoopScheduleResult R = Sched.schedule(L);
    if (!R.Success) {
      if (Err)
        *Err = "loop '" + L.Name +
               "' failed to schedule on the reference machine: " +
               R.Failure;
      return std::nullopt;
    }

    LoopProfile LP;
    LP.Name = L.Name;
    LP.TripCount = L.TripCount;
    LP.Weight = L.Weight / TotalWeight;
    LP.RecMII = R.RecMII;
    LP.ResMII = R.ResMII;
    LP.IIHom = R.Sched.Plan.Clusters.front().II;
    LP.ItLengthRefNs = R.Sched.itLengthNs(R.PG);
    LP.TexecRefNs = R.Sched.execTimeNs(R.PG, L.TripCount);
    LP.NumOps = L.size();
    LP.OpCounts = L.opCountsByFU();

    for (const Operation &O : L.Ops) {
      LP.PerIter.WeightedIns += Machine.Isa.energy(O.Op);
      if (isMemoryOpcode(O.Op))
        LP.PerIter.MemAccesses += 1;
    }
    LP.PerIter.Comms = R.PG.numCopies();
    for (int64_t SL : R.Pressure.SumLifetimes)
      LP.SumLifetimesRef += SL;

    // Weakly-connected DDG components with their internal recMII.
    {
      DDG G = DDG::build(L);
      RecurrenceInfo Recs =
          analyzeRecurrences(G, Machine.Isa.nodeLatencies(L));
      std::vector<unsigned> Root(L.size());
      std::iota(Root.begin(), Root.end(), 0u);
      std::function<unsigned(unsigned)> Find = [&](unsigned X) {
        while (Root[X] != X)
          X = Root[X] = Root[Root[X]];
        return X;
      };
      for (const auto &E : G.edges()) {
        unsigned A = Find(E.Src), B = Find(E.Dst);
        if (A != B)
          Root[A] = B;
      }
      std::vector<int> CompIx(L.size(), -1);
      for (unsigned N = 0; N < L.size(); ++N) {
        unsigned Rep = Find(N);
        if (CompIx[Rep] < 0) {
          CompIx[Rep] = static_cast<int>(LP.Components.size());
          ComponentProfile CP;
          CP.FUCounts.assign(NumFUKinds, 0);
          LP.Components.push_back(std::move(CP));
        }
        ComponentProfile &CP =
            LP.Components[static_cast<size_t>(CompIx[Rep])];
        ++CP.FUCounts[static_cast<unsigned>(fuKindOf(L.Ops[N].Op))];
        int RecId = Recs.RecurrenceOf[N];
        if (RecId >= 0)
          CP.RecMII = std::max(
              CP.RecMII,
              Recs.Recurrences[static_cast<size_t>(RecId)].RecMII);
      }
    }

    LP.Invocations =
        LP.Weight * ProgramBudgetNs / LP.TexecRefNs.toDouble();

    double Iters = LP.Invocations * static_cast<double>(LP.TripCount);
    P.Totals.WeightedIns += LP.PerIter.WeightedIns * Iters;
    P.Totals.Comms += LP.PerIter.Comms * Iters;
    P.Totals.MemAccesses += LP.PerIter.MemAccesses * Iters;
    P.TexecRefNs += LP.totalRefNs();

    // Precompute the structural identity now that every timing-relevant
    // field is final: the EvalCache keys on it once per candidate.
    LP.StructuralFP = LP.computeTimingFingerprint();

    P.Loops.push_back(std::move(LP));
  }
  return P;
}
