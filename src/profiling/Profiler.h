//===- profiling/Profiler.h - Reference homogeneous profiling ----*- C++ -*-===//
///
/// \file
/// Schedules every loop of a program on the reference homogeneous
/// machine (the paper's 1 GHz / 1 V / 0.25 V four-cluster design) with
/// the baseline [2][3] objective and extracts the LoopProfile data.
/// Loop weights are realized as invocation counts against a fixed
/// program execution-time budget, so a loop with weight w contributes a
/// fraction w of the program's reference execution time.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_PROFILING_PROFILER_H
#define HCVLIW_PROFILING_PROFILER_H

#include "ir/Loop.h"
#include "machine/MachineDescription.h"
#include "profiling/ProfileData.h"

#include <optional>

namespace hcvliw {

class Profiler {
  const MachineDescription &Machine;
  double ProgramBudgetNs;

public:
  explicit Profiler(const MachineDescription &M,
                    double ProgramBudgetNs = 1e6);

  /// std::nullopt when some loop cannot be scheduled on the reference
  /// machine (a workload bug). On failure, \p Err (when non-null)
  /// receives a human-readable reason naming the offending loop.
  std::optional<ProgramProfile>
  profileProgram(const std::string &Name, const std::vector<Loop> &Loops,
                 std::string *Err = nullptr) const;
};

} // namespace hcvliw

#endif // HCVLIW_PROFILING_PROFILER_H
