//===- runtime/CachePersist.cpp - Persistent schedule/eval caches -----------===//

#include "runtime/CachePersist.h"

#include "obs/BuildInfo.h"
#include "runtime/ResultSerde.h"
#include "support/HashUtil.h"
#include "support/RecordIO.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace hcvliw;
using recio::Sink;
using recio::Source;

namespace {

constexpr const char *SnapshotMagic = "hcvliw-cache-snapshot v1";

/// "rec <kind> <crc> <body>" framing. Kind tags are stable format
/// vocabulary, not C++ identifiers.
constexpr const char *KindSched = "sched";
constexpr const char *KindEval = "eval";
constexpr const char *KindSel = "sel";

std::string hex(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

void putRecord(std::FILE *Out, const char *Kind, const std::string &Body) {
  std::fprintf(Out, "rec %s %08x %s\n", Kind, recio::crc32(Body),
               Body.c_str());
}

/// One "eval" body: the TimingRecord, key fields first.
std::string evalBody(const EvalCache::TimingRecord &R) {
  Sink S;
  S.u64(R.LoopFP);
  S.u64(R.NumFast);
  S.i64(R.RatioNum);
  S.i64(R.RatioDen);
  S.i64(R.FastNum);
  S.i64(R.FastDen);
  S.b(R.Feasible);
  S.rat(R.ITNorm);
  S.u64(R.ClusterShare.size());
  for (double V : R.ClusterShare)
    S.d(V);
  return S.line();
}

bool parseEvalBody(const std::string &Body, EvalCache::TimingRecord &R) {
  Source S(Body);
  R.LoopFP = S.u64();
  R.NumFast = static_cast<uint32_t>(S.u64());
  R.RatioNum = S.i64();
  R.RatioDen = S.i64();
  R.FastNum = S.i64();
  R.FastDen = S.i64();
  R.Feasible = S.b();
  R.ITNorm = S.rat();
  uint64_t N = S.u64();
  if (S.bad() || N > (1u << 20))
    return false;
  R.ClusterShare.resize(N);
  for (uint64_t I = 0; I < N; ++I)
    R.ClusterShare[I] = S.d();
  return S.done();
}

/// Header of an open snapshot stream; Line is reused by the caller.
struct Header {
  uint32_t Schema = 0;
  uint64_t Binding = 0;
};

bool readLine(std::FILE *In, std::string &Out) {
  Out.clear();
  int C;
  while ((C = std::fgetc(In)) != EOF && C != '\n')
    Out.push_back(static_cast<char>(C));
  return C != EOF || !Out.empty();
}

/// Reads and validates the three header lines. False (with \p Err) on
/// any skew; \p ExpectBinding == 0 skips the binding check (merge reads
/// the first input's binding this way, then pins it).
bool readHeader(std::FILE *In, const std::string &Path, Header &H,
                std::string *Err) {
  auto fail = [&](const std::string &What) {
    if (Err)
      *Err = "cache snapshot " + Path + ": " + What;
    return false;
  };
  std::string Line;
  if (!readLine(In, Line))
    return fail("empty file");
  if (Line != SnapshotMagic)
    return fail("not a cache snapshot (bad magic/version: \"" + Line +
                "\")");
  if (!readLine(In, Line))
    return fail("truncated header");
  {
    std::istringstream SS(Line);
    std::string K1, K2, BindingHex;
    unsigned long long Schema = 0;
    if (!(SS >> K1 >> Schema >> K2 >> BindingHex) || K1 != "schema" ||
        K2 != "binding")
      return fail("malformed schema line: \"" + Line + "\"");
    H.Schema = static_cast<uint32_t>(Schema);
    H.Binding = std::strtoull(BindingHex.c_str(), nullptr, 16);
  }
  if (!readLine(In, Line) || Line.rfind("build ", 0) != 0)
    return fail("missing build line");
  // The build sha is provenance only; no check (see header comment).
  return true;
}

void writeHeader(std::FILE *Out, uint64_t Binding) {
  std::fprintf(Out, "%s\n", SnapshotMagic);
  std::fprintf(Out, "schema %u binding %s\n", CacheKeySchemaVersion,
               hex(Binding).c_str());
  std::fprintf(Out, "build %s\n", obs::buildInfo().GitSha);
}

/// Splits one "rec <kind> <crc> <body>" line. False when the frame is
/// malformed or the CRC mismatches — the caller quarantines it.
bool splitRecord(const std::string &Line, std::string &Kind,
                 std::string &Body) {
  if (Line.rfind("rec ", 0) != 0)
    return false;
  size_t KindEnd = Line.find(' ', 4);
  if (KindEnd == std::string::npos)
    return false;
  size_t CrcEnd = Line.find(' ', KindEnd + 1);
  if (CrcEnd == std::string::npos)
    return false;
  Kind = Line.substr(4, KindEnd - 4);
  uint32_t Crc = static_cast<uint32_t>(
      std::strtoul(Line.substr(KindEnd + 1, CrcEnd - KindEnd - 1).c_str(),
                   nullptr, 16));
  Body = Line.substr(CrcEnd + 1);
  return recio::crc32(Body) == Crc;
}

} // namespace

uint64_t hcvliw::cacheBindingFingerprint(const MachineDescription &M,
                                         const FrequencyMenu &Menu) {
  FnvHasher H;
  H.mix(CacheKeySchemaVersion);
  H.mix(M.numClusters());
  H.mix(M.Buses);
  H.mix(M.BusLatency);
  H.mixRational(M.RefPeriodNs);
  for (const ClusterConfig &C : M.Clusters) {
    H.mix(C.IntFUs);
    H.mix(C.FpFUs);
    H.mix(C.MemPorts);
    H.mix(C.Registers);
  }
  H.mix(Menu.isContinuous() ? 1u : 2u);
  H.mixVector(Menu.frequencies());
  H.mixVector(Menu.ratios());
  return H.digest();
}

bool hcvliw::writeCacheSnapshot(const std::string &Path,
                                const ScheduleCache &Sched,
                                const EvalCache &Eval, uint64_t Binding,
                                CacheSaveStats *Stats, std::string *Err) {
  std::string Tmp = Path + ".tmp";
  std::FILE *Out = std::fopen(Tmp.c_str(), "wb");
  if (!Out) {
    if (Err)
      *Err = "cannot open " + Tmp + " for writing";
    return false;
  }
  CacheSaveStats Local;
  writeHeader(Out, Binding);
  // Canonical record order: sched, eval, sel; within a kind the caches'
  // export order (shards in index order, keys sorted) — so equal cache
  // contents produce byte-identical snapshots.
  Sched.exportEntries([&](uint64_t Key, const LoopScheduleResult &R) {
    Sink S;
    S.u64(Key);
    serde::putLoopScheduleResult(S, R);
    putRecord(Out, KindSched, S.line());
    ++Local.SchedSaved;
  });
  Eval.exportTimings([&](const EvalCache::TimingRecord &R) {
    putRecord(Out, KindEval, evalBody(R));
    ++Local.EvalSaved;
  });
  Eval.exportSelections([&](uint64_t Key, const SelectedDesign &D) {
    Sink S;
    S.u64(Key);
    serde::putDesign(S, D);
    putRecord(Out, KindSel, S.line());
    ++Local.SelSaved;
  });
  bool Ok = std::fflush(Out) == 0;
  Ok = std::fclose(Out) == 0 && Ok;
  if (Ok)
    Ok = std::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "failed writing cache snapshot " + Path;
    return false;
  }
  if (Stats)
    *Stats = Local;
  return true;
}

bool hcvliw::loadCacheSnapshot(const std::string &Path, ScheduleCache &Sched,
                               EvalCache &Eval, uint64_t Binding,
                               fault::FaultInjector *Inj,
                               CacheLoadStats *Stats, std::string *Err) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    if (Err)
      *Err = "cannot open cache snapshot " + Path;
    return false;
  }
  Header H;
  if (!readHeader(In, Path, H, Err)) {
    std::fclose(In);
    return false;
  }
  auto refuse = [&](const std::string &What) {
    if (Err)
      *Err = "cache snapshot " + Path + ": " + What;
    std::fclose(In);
    return false;
  };
  if (H.Schema != CacheKeySchemaVersion)
    return refuse("key schema v" + std::to_string(H.Schema) +
                  " does not match this build's v" +
                  std::to_string(CacheKeySchemaVersion) +
                  "; refusing to load");
  if (H.Binding != Binding)
    return refuse("bound to a different (machine, menu) configuration "
                  "(binding " +
                  hex(H.Binding) + " != " + hex(Binding) +
                  "); refusing to load");

  CacheLoadStats Local;
  std::string Line, Kind, Body;
  while (readLine(In, Line)) {
    if (Line.empty())
      continue;
    // One deterministic quarantine decision per frame: a real
    // corruption (CRC/parse failure) or an injected one (the chaos
    // suite drives the quarantine path through this site).
    bool Corrupt = !splitRecord(Line, Kind, Body);
    if (HCVLIW_FAULT_DEGRADE(Inj, "cache.load", Path))
      Corrupt = true;
    if (!Corrupt) {
      if (Kind == KindSched) {
        Source S(Body);
        uint64_t Key = S.u64();
        LoopScheduleResult R = serde::getLoopScheduleResult(S);
        if (S.done()) {
          Sched.importEntry(Key, R);
          ++Local.SchedLoaded;
        } else {
          Corrupt = true;
        }
      } else if (Kind == KindEval) {
        EvalCache::TimingRecord R;
        if (parseEvalBody(Body, R)) {
          Eval.importTiming(R);
          ++Local.EvalLoaded;
        } else {
          Corrupt = true;
        }
      } else if (Kind == KindSel) {
        Source S(Body);
        uint64_t Key = S.u64();
        SelectedDesign D = serde::getDesign(S);
        if (S.done()) {
          Eval.importSelection(Key, D);
          ++Local.SelLoaded;
        } else {
          Corrupt = true;
        }
      } else {
        Corrupt = true; // unknown kind: quarantine, don't guess
      }
    }
    if (Corrupt)
      ++Local.CorruptFrames;
  }
  std::fclose(In);
  if (Stats)
    *Stats = Local;
  return true;
}

bool hcvliw::mergeCacheSnapshots(const std::vector<std::string> &Inputs,
                                 const std::string &OutPath,
                                 uint64_t *CorruptFrames, std::string *Err) {
  if (Inputs.empty()) {
    if (Err)
      *Err = "no cache snapshots to merge";
    return false;
  }
  // (kind rank, key tokens) -> body. Later inputs overwrite — sound
  // last-wins because equal keys hold bit-identical values. Key tokens
  // are parsed only for ordering; bodies are carried verbatim.
  struct MergeKey {
    int Kind = 0;
    uint64_t K[6] = {0, 0, 0, 0, 0, 0};
    bool operator<(const MergeKey &O) const {
      if (Kind != O.Kind)
        return Kind < O.Kind;
      for (int I = 0; I < 6; ++I)
        if (K[I] != O.K[I])
          return K[I] < O.K[I];
      return false;
    }
  };
  std::map<MergeKey, std::string> Merged;
  uint64_t Corrupt = 0;
  uint64_t Binding = 0;
  bool First = true;
  for (const std::string &Path : Inputs) {
    std::FILE *In = std::fopen(Path.c_str(), "rb");
    if (!In) {
      if (Err)
        *Err = "cannot open cache snapshot " + Path;
      return false;
    }
    Header H;
    if (!readHeader(In, Path, H, Err)) {
      std::fclose(In);
      return false;
    }
    if (H.Schema != CacheKeySchemaVersion ||
        (!First && H.Binding != Binding)) {
      std::fclose(In);
      if (Err)
        *Err = "cache snapshot " + Path +
               ": schema or binding disagrees with the other inputs; "
               "refusing to merge";
      return false;
    }
    Binding = H.Binding;
    First = false;
    std::string Line, Kind, Body;
    while (readLine(In, Line)) {
      if (Line.empty())
        continue;
      if (!splitRecord(Line, Kind, Body)) {
        ++Corrupt;
        continue;
      }
      MergeKey MK;
      size_t KeyTokens = 1;
      if (Kind == KindSched) {
        MK.Kind = 0;
      } else if (Kind == KindEval) {
        MK.Kind = 1;
        KeyTokens = 6;
      } else if (Kind == KindSel) {
        MK.Kind = 2;
      } else {
        ++Corrupt;
        continue;
      }
      Source S(Body);
      for (size_t I = 0; I < KeyTokens; ++I)
        MK.K[I] = S.u64();
      if (S.bad()) {
        ++Corrupt;
        continue;
      }
      Merged[MK] = Body;
    }
    std::fclose(In);
  }
  std::string Tmp = OutPath + ".tmp";
  std::FILE *Out = std::fopen(Tmp.c_str(), "wb");
  if (!Out) {
    if (Err)
      *Err = "cannot open " + Tmp + " for writing";
    return false;
  }
  writeHeader(Out, Binding);
  static const char *const KindNames[] = {KindSched, KindEval, KindSel};
  for (const auto &KV : Merged)
    putRecord(Out, KindNames[KV.first.Kind], KV.second);
  bool Ok = std::fflush(Out) == 0;
  Ok = std::fclose(Out) == 0 && Ok;
  if (Ok)
    Ok = std::rename(Tmp.c_str(), OutPath.c_str()) == 0;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "failed writing merged cache snapshot " + OutPath;
    return false;
  }
  if (CorruptFrames)
    *CorruptFrames = Corrupt;
  return true;
}
