//===- runtime/CachePersist.h - Persistent schedule/eval caches --*- C++ -*-===//
///
/// \file
/// The on-disk tier of the session caches: a versioned, checksummed
/// snapshot of every ScheduleCache entry, EvalCache timing entry and
/// selection memo, so a later process can start warm — across suite
/// shards (dist/ShardOrchestrator merges the shards' side-car
/// snapshots) and across whole runs (CI's warm-start job).
///
/// Format: a line-oriented text file over the support/RecordIO token
/// codec. Header:
///
///   hcvliw-cache-snapshot v1
///   schema <u32> binding <hex16>
///   build <sha>
///
/// then one framed record per line:
///
///   rec <sched|eval|sel> <crc32-hex8> <body tokens...>
///
/// where the CRC-32 covers the body exactly as written. Safety
/// contract, in order:
///
///   - *Version skew refuses.* A load whose magic, format version,
///     key-schema version or binding fingerprint differs from the
///     loading session returns an error and imports nothing: cache
///     keys are digests, so entries are only meaningful under the
///     exact key schema and (machine, menu) binding that produced
///     them. The build sha is provenance only — semantic changes to
///     the keyed computations must bump CacheKeySchemaVersion.
///   - *Corruption quarantines.* A record whose CRC mismatches, whose
///     body fails to parse, or whose kind is unknown is skipped and
///     counted (CacheLoadStats::CorruptFrames, surfaced as the
///     cache.load_corrupt metric); every intact record before and
///     after it still loads. A torn tail (the writer died mid-line)
///     is one corrupt frame, never UB.
///   - *Partial load is always safe.* Imported entries are
///     first-writer-wins and bit-identical to recomputation (the
///     caches' key contract), so any subset of a snapshot warms the
///     run without changing any result.
///   - *Saves are torn-write-safe.* writeCacheSnapshot writes to a
///     temp file and renames into place, so a killed save leaves the
///     previous snapshot (or nothing), never a half-written one.
///   - *Snapshots are deterministic.* Records are emitted in a
///     canonical order (kind, then key), so equal cache contents save
///     byte-identical files.
///
/// The "cache.load" degrade fault site is consulted once per record in
/// loadCacheSnapshot — a deterministic way to drive the quarantine
/// path in tests without hand-crafting bit-flips.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_CACHEPERSIST_H
#define HCVLIW_RUNTIME_CACHEPERSIST_H

#include "explore/EvalCache.h"
#include "fault/Fault.h"
#include "measure/ScheduleCache.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hcvliw {

/// Version of the *meaning* of persisted cache keys: the fingerprint
/// and key-hash recipes of ScheduleCache / EvalCache and the serialized
/// value layouts. Bump whenever any keyed computation or serde layout
/// changes semantically; old snapshots are then refused instead of
/// silently serving stale values.
constexpr uint32_t CacheKeySchemaVersion = 1;

/// The (machine, menu) identity a snapshot is bound to: FNV over the
/// key-schema version, the timing-relevant machine structure (the same
/// fields EvalCache::compatibleWith compares) and the frequency menu.
/// Everything else the cached computations read is hashed into the
/// entry keys themselves (ScheduleMeasurer::loopScheduleKey, the
/// selection key), so binding + key is a complete identity.
uint64_t cacheBindingFingerprint(const MachineDescription &M,
                                 const FrequencyMenu &Menu);

/// What a load did: entries imported per kind, corrupt frames skipped.
struct CacheLoadStats {
  uint64_t SchedLoaded = 0;
  uint64_t EvalLoaded = 0;
  uint64_t SelLoaded = 0;
  uint64_t CorruptFrames = 0;

  uint64_t loaded() const { return SchedLoaded + EvalLoaded + SelLoaded; }
};

/// What a save wrote, per kind.
struct CacheSaveStats {
  uint64_t SchedSaved = 0;
  uint64_t EvalSaved = 0;
  uint64_t SelSaved = 0;

  uint64_t saved() const { return SchedSaved + EvalSaved + SelSaved; }
};

/// Writes a snapshot of \p Sched and \p Eval to \p Path (temp file +
/// rename; deterministic record order). \p Binding is the session's
/// cacheBindingFingerprint. False (with \p Err filled when non-null)
/// on IO failure. Callers must be quiescent with respect to cache
/// writes.
bool writeCacheSnapshot(const std::string &Path, const ScheduleCache &Sched,
                        const EvalCache &Eval, uint64_t Binding,
                        CacheSaveStats *Stats = nullptr,
                        std::string *Err = nullptr);

/// Loads \p Path into \p Sched and \p Eval. Refuses (false, \p Err)
/// on a missing/empty file or any header skew (see file header);
/// otherwise quarantines corrupt frames into Stats->CorruptFrames and
/// imports every intact record (first-writer-wins). \p Inj (may be
/// null) is consulted at the "cache.load" degrade site once per
/// record, with the snapshot path as context.
bool loadCacheSnapshot(const std::string &Path, ScheduleCache &Sched,
                       EvalCache &Eval, uint64_t Binding,
                       fault::FaultInjector *Inj = nullptr,
                       CacheLoadStats *Stats = nullptr,
                       std::string *Err = nullptr);

/// Merges the snapshot files \p Inputs (all must share one schema and
/// binding) into \p OutPath, record-level last-wins on (kind, key) —
/// sound because equal keys hold bit-identical values, so "last" only
/// dedupes. Values are never deserialized; bodies are carried verbatim
/// and re-emitted in canonical order, so the merged file is
/// byte-deterministic. Corrupt frames in inputs are quarantined (and
/// counted into \p CorruptFrames when non-null), not merged. False
/// (with \p Err) when an input refuses to load or the inputs disagree
/// on schema/binding.
bool mergeCacheSnapshots(const std::vector<std::string> &Inputs,
                         const std::string &OutPath,
                         uint64_t *CorruptFrames = nullptr,
                         std::string *Err = nullptr);

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_CACHEPERSIST_H
