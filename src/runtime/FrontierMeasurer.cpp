//===- runtime/FrontierMeasurer.cpp - Measured frontier evaluation ----------===//

#include "runtime/FrontierMeasurer.h"

#include "explore/ExplorationEngine.h"
#include "profiling/Profiler.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cstdio>

using namespace hcvliw;

double MeasuredFrontier::meanAbsED2Error() const {
  double Sum = 0;
  size_t N = 0;
  for (const FrontierPointMeasurement &P : Points) {
    if (!P.Measured.Ok)
      continue;
    Sum += P.ED2Error < 0 ? -P.ED2Error : P.ED2Error;
    ++N;
  }
  return N ? Sum / static_cast<double>(N) : 0.0;
}

std::string MeasuredFrontier::csvHeader() {
  return "program,point,candidate,fast_factor,slow_ratio,ok,"
         "est_texec_ns,est_energy,est_ed2,"
         "meas_texec_ns,meas_energy,meas_ed2,"
         "texec_error,energy_error,ed2_error,"
         "measured_rank,est_argmin,meas_argmin\n";
}

std::string MeasuredFrontier::csvRows() const {
  // Point index -> position in the measured re-ranking (-1 when the
  // point could not be measured).
  std::vector<int> RankOf(Points.size(), -1);
  for (size_t R = 0; R < RankByMeasuredED2.size(); ++R)
    RankOf[RankByMeasuredED2[R]] = static_cast<int>(R);

  std::string Out;
  for (size_t I = 0; I < Points.size(); ++I) {
    const FrontierPointMeasurement &P = Points[I];
    Out += formatString("%s,%zu,%zu,%s,%s,%d", Program.c_str(), I,
                        P.Candidate, P.FastFactor.str().c_str(),
                        P.SlowRatio.str().c_str(), P.Measured.Ok ? 1 : 0);
    Out += formatString(",%.17g,%.17g,%.17g", P.Design.EstTexecNs,
                        P.Design.EstEnergy, P.Design.EstED2);
    if (P.Measured.Ok)
      Out += formatString(",%.17g,%.17g,%.17g,%.17g,%.17g,%.17g",
                          P.Measured.TexecNs, P.Measured.Energy,
                          P.Measured.ED2, P.TexecError, P.EnergyError,
                          P.ED2Error);
    else
      Out += ",,,,,,";
    bool IsMeasArgmin = !RankByMeasuredED2.empty() && I == MeasArgmin;
    Out += formatString(",%d,%d,%d\n", RankOf[I],
                        I == EstArgmin ? 1 : 0, IsMeasArgmin ? 1 : 0);
  }
  return Out;
}

std::string MeasuredFrontier::csv() const { return csvHeader() + csvRows(); }

namespace {

std::string frontierJsonBody(const MeasuredFrontier &F) {
  std::string S = formatString("{\"program\": \"%s\", \"points\": [",
                               jsonEscape(F.Program).c_str());
  for (size_t I = 0; I < F.Points.size(); ++I) {
    const FrontierPointMeasurement &P = F.Points[I];
    S += I ? ",\n    " : "\n    ";
    S += formatString(
        "{\"point\": %zu, \"candidate\": %zu, \"fast_factor\": \"%s\", "
        "\"slow_ratio\": \"%s\", \"ok\": %s, \"est_texec_ns\": %.17g, "
        "\"est_energy\": %.17g, \"est_ed2\": %.17g",
        I, P.Candidate, P.FastFactor.str().c_str(),
        P.SlowRatio.str().c_str(), P.Measured.Ok ? "true" : "false",
        P.Design.EstTexecNs, P.Design.EstEnergy, P.Design.EstED2);
    if (P.Measured.Ok)
      S += formatString(
          ", \"meas_texec_ns\": %.17g, \"meas_energy\": %.17g, "
          "\"meas_ed2\": %.17g, \"texec_error\": %.17g, "
          "\"energy_error\": %.17g, \"ed2_error\": %.17g",
          P.Measured.TexecNs, P.Measured.Energy, P.Measured.ED2,
          P.TexecError, P.EnergyError, P.ED2Error);
    S += "}";
  }
  S += F.Points.empty() ? "]" : "\n  ]";
  S += ", \"rank_by_measured_ed2\": [";
  for (size_t I = 0; I < F.RankByMeasuredED2.size(); ++I)
    S += formatString("%s%zu", I ? ", " : "", F.RankByMeasuredED2[I]);
  // No schedule-cache counters here: they are scheduling-dependent
  // diagnostics, and the serialized frontier must be byte-identical
  // for any thread count.
  S += formatString("], \"est_argmin\": %zu, \"meas_argmin\": ",
                    F.EstArgmin);
  S += F.RankByMeasuredED2.empty() ? "null"
                                   : formatString("%zu", F.MeasArgmin);
  S += formatString(", \"argmin_agrees\": %s, "
                    "\"mean_abs_ed2_error\": %.17g}",
                    F.ArgminAgrees ? "true" : "false",
                    F.meanAbsED2Error());
  return S;
}

bool writeStringToFile(const std::string &Data, const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out)
    return false;
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), Out) == Data.size();
  Ok &= std::fclose(Out) == 0;
  return Ok;
}

} // namespace

std::string MeasuredFrontier::json() const {
  return frontierJsonBody(*this) + "\n";
}

bool MeasuredFrontier::writeCsv(const std::string &Path) const {
  return writeStringToFile(csv(), Path);
}

bool MeasuredFrontier::writeJson(const std::string &Path) const {
  return writeStringToFile(json(), Path);
}

bool hcvliw::writeFrontierCsv(const std::vector<MeasuredFrontier> &Frontiers,
                              const std::string &Path) {
  std::string Out = MeasuredFrontier::csvHeader();
  for (const MeasuredFrontier &F : Frontiers)
    Out += F.csvRows();
  return writeStringToFile(Out, Path);
}

bool hcvliw::writeFrontierJson(const std::vector<MeasuredFrontier> &Frontiers,
                               const std::string &Path) {
  std::string Out = "[";
  for (size_t I = 0; I < Frontiers.size(); ++I) {
    Out += I ? ",\n" : "\n";
    Out += frontierJsonBody(Frontiers[I]);
  }
  Out += Frontiers.empty() ? "]\n" : "\n]\n";
  return writeStringToFile(Out, Path);
}

MeasuredFrontier
FrontierMeasurer::measure(const std::string &ProgramName,
                          const std::vector<Loop> &Loops,
                          const ProgramProfile &Profile) const {
  const PipelineOptions &Opts = S.pipelineOptions();
  MeasuredFrontier F;
  F.Program = ProgramName;
  obs::Span FrontierSp(&S.tracer(), "frontier.measure:", ProgramName);

  EnergyModel Energy(Opts.Breakdown, Profile.Totals, Profile.TexecRefNs,
                     S.machine().numClusters());

  // Re-run the search with the frontier on. Candidate timing is
  // memoized through the session EvalCache, so after a selection
  // already ran (pipeline step 3) this re-enumeration is cheap and
  // reproduces the identical grid.
  ExplorationEngine Engine(Profile, S.machine(), Energy, Opts.Tech,
                           S.menu(), Opts.Space);
  ExploreOptions EO;
  EO.ComputeFrontier = true;
  EO.Pool = &S.pool();
  EO.SharedCache = &S.evalCache();
  ExplorationResult R = Engine.explore(EO);

  F.Points.reserve(R.Frontier.size());
  for (size_t Index : R.Frontier) {
    const ExploreCandidate &C = R.Candidates[Index];
    FrontierPointMeasurement P;
    P.Candidate = Index;
    P.FastFactor = C.FastFactor;
    P.SlowRatio = C.SlowRatio;
    P.Design = C.Design;
    F.Points.push_back(std::move(P));
  }

  // Fan the points across the session pool: each point's measurement
  // is a pure function of (point, program, options) written into its
  // own slot, so the result is thread-count-invariant. Per-loop
  // schedules are memoized through the session ScheduleCache; running
  // under the same derived options (and the session's one menu object)
  // as pipeline step 4 keeps the cache keys shared with it.
  MeasureOptions MO =
      HeterogeneousPipeline::measureOptionsFor(S.pipelineOptions());
  MO.Menu = S.menu();
  ScheduleMeasurer Measurer(S.machine(), MO, &S.scheduleCache(),
                            &S.scheduleScratchPool(), &S.tracer(),
                            &S.metrics());

  S.pool().parallelFor(F.Points.size(), [&](size_t I) {
    FrontierPointMeasurement &P = F.Points[I];
    P.Measured = Measurer.measure(Profile, Loops, P.Design.Config,
                                  P.Design.Scaling, Energy,
                                  /*ED2Objective=*/true);
    if (P.Measured.Ok) {
      P.TexecError = P.Measured.TexecNs / P.Design.EstTexecNs - 1.0;
      P.EnergyError = P.Measured.Energy / P.Design.EstEnergy - 1.0;
      P.ED2Error = P.Measured.ED2 / P.Design.EstED2 - 1.0;
    }
  });

  // Serial reductions in point order: re-rank by measured ED2 and
  // locate the two argmins (first wins on exact ties, matching the
  // engine's estimate-level reduction).
  for (size_t I = 0; I < F.Points.size(); ++I) {
    const FrontierPointMeasurement &P = F.Points[I];
    F.ScheduleHits += P.Measured.ScheduleHits;
    F.ScheduleMisses += P.Measured.ScheduleMisses;
    if (P.Design.EstED2 < F.Points[F.EstArgmin].Design.EstED2)
      F.EstArgmin = I;
    if (P.Measured.Ok)
      F.RankByMeasuredED2.push_back(I);
  }
  std::stable_sort(F.RankByMeasuredED2.begin(), F.RankByMeasuredED2.end(),
                   [&](size_t A, size_t B) {
                     return F.Points[A].Measured.ED2 <
                            F.Points[B].Measured.ED2;
                   });
  if (!F.RankByMeasuredED2.empty()) {
    F.MeasArgmin = F.RankByMeasuredED2.front();
    F.ArgminAgrees = F.MeasArgmin == F.EstArgmin;
  }
  if (FrontierSp.active()) {
    FrontierSp.arg("points", static_cast<int64_t>(F.Points.size()));
    FrontierSp.arg("cache_hits", static_cast<int64_t>(F.ScheduleHits));
    FrontierSp.arg("cache_misses", static_cast<int64_t>(F.ScheduleMisses));
  }
  return F;
}

std::optional<MeasuredFrontier>
FrontierMeasurer::measureProgram(const BenchmarkProgram &Program,
                                 PipelineError *Err) const {
  Profiler Prof(S.machine(), S.pipelineOptions().ProgramBudgetNs);
  std::string ProfErr;
  auto Profile =
      Prof.profileProgram(Program.Name, Program.Loops, &ProfErr);
  if (!Profile) {
    if (Err) {
      Err->Stage = PipelineStage::Profiling;
      Err->Reason = std::move(ProfErr);
    }
    return std::nullopt;
  }
  return measure(Program.Name, Program.Loops, *Profile);
}
