//===- runtime/FrontierMeasurer.h - Measured frontier evaluation -*- C++ -*-===//
///
/// \file
/// Measured (scheduler-level) evaluation of a design-space search's
/// Pareto frontier. The exploration layer ranks the whole grid by the
/// Section 3.2/3.3 *estimate*; the paper's headline numbers (Figure 6)
/// come from *measured* schedules, and SLAP-style per-workload
/// operating-point adaptation needs a frontier whose points carry
/// measured Texec/Energy/ED2, not estimates.
///
/// FrontierMeasurer fans the surviving ParetoFrontier points of one
/// program through the Session's WorkerPool — each point is one
/// ScheduleMeasurer run (partition + heterogeneous modulo schedule +
/// validation + optional MCD sim-check per loop), memoized through the
/// session ScheduleCache so per-loop schedules are reused across
/// frontier points, across the pipeline's own step-4 measurement (the
/// estimated ED2 argmin is always on the frontier), and across
/// programs. Points are then re-ranked by measured ED2 and every point
/// reports its estimate-vs-measured error.
///
/// Determinism: frontier enumeration is the exploration's (ascending
/// estimated Texec), each point's measurement is a pure function of
/// (point, program, session options) written to its own slot, and all
/// reductions run serially afterwards — the MeasuredFrontier is
/// bit-identical for any thread count (pinned by tests/measure/).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_FRONTIERMEASURER_H
#define HCVLIW_RUNTIME_FRONTIERMEASURER_H

#include "measure/ScheduleMeasurer.h"
#include "runtime/Session.h"

#include <optional>
#include <string>
#include <vector>

namespace hcvliw {

/// One frontier point: its estimate-level selection record and its
/// measured behaviour.
struct FrontierPointMeasurement {
  size_t Candidate = 0;  ///< index into the exploration's candidate grid
  Rational FastFactor;   ///< fast period / reference period
  Rational SlowRatio;    ///< slow period / fast period
  SelectedDesign Design; ///< the estimates behind the point
  ConfigRunResult Measured; ///< Ok=false when some loop is unschedulable
  /// Relative estimate error, measured/estimated - 1 (valid when
  /// Measured.Ok).
  double TexecError = 0;
  double EnergyError = 0;
  double ED2Error = 0;
};

/// The measured frontier of one program.
struct MeasuredFrontier {
  std::string Program;
  /// Frontier order: ascending estimated Texec (the exploration's).
  std::vector<FrontierPointMeasurement> Points;
  /// Indices into Points of the measurable (Measured.Ok) points,
  /// re-ranked by ascending measured ED2 (ties by point index).
  std::vector<size_t> RankByMeasuredED2;
  size_t EstArgmin = 0;  ///< point index minimizing estimated ED2
  /// Point index minimizing measured ED2; meaningful only when
  /// RankByMeasuredED2 is non-empty (some point was measurable) —
  /// serialized as null / unflagged otherwise.
  size_t MeasArgmin = 0;
  /// Whether the estimate-level and measured ED2 argmins are the same
  /// design (the quantity bench_frontier_measured pins suite-wide).
  bool ArgminAgrees = false;
  /// This measurement's ScheduleCache statistics, summed over points.
  /// Diagnostics, not results: concurrent points may duplicate a
  /// compute instead of hitting, so (unlike everything above) the
  /// counters are scheduling-dependent.
  uint64_t ScheduleHits = 0;
  uint64_t ScheduleMisses = 0;

  /// Mean |ED2Error| over the measurable points (0 when none).
  double meanAbsED2Error() const;

  /// CSV, one row per frontier point (see csvHeader() for columns);
  /// rationals exact, doubles %.17g — a serialized frontier round-trips
  /// losslessly.
  static std::string csvHeader();
  std::string csvRows() const;
  std::string csv() const;
  std::string json() const;
  bool writeCsv(const std::string &Path) const;
  bool writeJson(const std::string &Path) const;
};

/// Multi-program aggregation (the `--measure-frontier` artifact:
/// frontier_measured.csv / frontier_measured.json over a whole suite).
bool writeFrontierCsv(const std::vector<MeasuredFrontier> &Frontiers,
                      const std::string &Path);
bool writeFrontierJson(const std::vector<MeasuredFrontier> &Frontiers,
                       const std::string &Path);

class FrontierMeasurer {
  Session &S;

public:
  explicit FrontierMeasurer(Session &Sess) : S(Sess) {}

  /// Measures the frontier of an already-profiled program: re-runs the
  /// exploration with the frontier on (timing memoized through the
  /// session EvalCache, so this is cheap after a selection already
  /// ran), then measures every surviving point on the session pool.
  MeasuredFrontier measure(const std::string &ProgramName,
                           const std::vector<Loop> &Loops,
                           const ProgramProfile &Profile) const;

  /// Profile + measure; std::nullopt (with \p Err filled) when
  /// profiling fails.
  std::optional<MeasuredFrontier>
  measureProgram(const BenchmarkProgram &Program,
                 PipelineError *Err = nullptr) const;
};

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_FRONTIERMEASURER_H
