//===- runtime/ResultSerde.cpp - Result-component serializers ---------------===//

#include "runtime/ResultSerde.h"

#include <algorithm>

using namespace hcvliw;
using namespace hcvliw::serde;

//===----------------------------------------------------------------------===//
// Profiling / selection components (suite journal records)
//===----------------------------------------------------------------------===//

void serde::putActivity(Sink &S, const ActivityCounts &A) {
  S.d(A.WeightedIns);
  S.d(A.Comms);
  S.d(A.MemAccesses);
}
ActivityCounts serde::getActivity(Source &S) {
  ActivityCounts A;
  A.WeightedIns = S.d();
  A.Comms = S.d();
  A.MemAccesses = S.d();
  return A;
}

void serde::putLoopProfile(Sink &S, const LoopProfile &L) {
  S.str(L.Name);
  S.u64(L.TripCount);
  S.d(L.Weight);
  S.d(L.Invocations);
  S.i64(L.RecMII);
  S.i64(L.ResMII);
  S.i64(L.IIHom);
  S.rat(L.ItLengthRefNs);
  S.rat(L.TexecRefNs);
  putActivity(S, L.PerIter);
  S.i64(L.SumLifetimesRef);
  S.u64(L.OpCounts.size());
  for (unsigned C : L.OpCounts)
    S.u64(C);
  S.u64(L.NumOps);
  S.u64(L.StructuralFP);
  S.u64(L.Components.size());
  for (const ComponentProfile &C : L.Components) {
    S.i64(C.RecMII);
    S.u64(C.FUCounts.size());
    for (unsigned F : C.FUCounts)
      S.u64(F);
  }
}
LoopProfile serde::getLoopProfile(Source &S) {
  LoopProfile L;
  L.Name = S.str();
  L.TripCount = S.u64();
  L.Weight = S.d();
  L.Invocations = S.d();
  L.RecMII = S.i64();
  L.ResMII = S.i64();
  L.IIHom = S.i64();
  L.ItLengthRefNs = S.rat();
  L.TexecRefNs = S.rat();
  L.PerIter = getActivity(S);
  L.SumLifetimesRef = S.i64();
  L.OpCounts.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (unsigned &C : L.OpCounts)
    C = static_cast<unsigned>(S.u64());
  L.NumOps = static_cast<unsigned>(S.u64());
  L.StructuralFP = S.u64();
  L.Components.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (ComponentProfile &C : L.Components) {
    C.RecMII = S.i64();
    C.FUCounts.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
    for (unsigned &F : C.FUCounts)
      F = static_cast<unsigned>(S.u64());
  }
  return L;
}

void serde::putProfile(Sink &S, const ProgramProfile &P) {
  S.str(P.Name);
  S.d(P.TexecRefNs);
  putActivity(S, P.Totals);
  S.u64(P.Loops.size());
  for (const LoopProfile &L : P.Loops)
    putLoopProfile(S, L);
}
ProgramProfile serde::getProfile(Source &S) {
  ProgramProfile P;
  P.Name = S.str();
  P.TexecRefNs = S.d();
  P.Totals = getActivity(S);
  P.Loops.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopProfile &L : P.Loops)
    L = getLoopProfile(S);
  return P;
}

void serde::putOpPoint(Sink &S, const DomainOperatingPoint &P) {
  S.rat(P.PeriodNs);
  S.d(P.Vdd);
  S.d(P.Vth);
}
DomainOperatingPoint serde::getOpPoint(Source &S) {
  DomainOperatingPoint P;
  P.PeriodNs = S.rat();
  P.Vdd = S.d();
  P.Vth = S.d();
  return P;
}

void serde::putDesign(Sink &S, const SelectedDesign &D) {
  S.b(D.Valid);
  S.d(D.EstTexecNs);
  S.d(D.EstEnergy);
  S.d(D.EstED2);
  S.u64(D.Config.Clusters.size());
  for (const DomainOperatingPoint &P : D.Config.Clusters)
    putOpPoint(S, P);
  putOpPoint(S, D.Config.Icn);
  putOpPoint(S, D.Config.Cache);
  S.u64(D.Scaling.Clusters.size());
  for (const DomainScaling &Sc : D.Scaling.Clusters) {
    S.d(Sc.Delta);
    S.d(Sc.Sigma);
  }
  S.d(D.Scaling.Icn.Delta);
  S.d(D.Scaling.Icn.Sigma);
  S.d(D.Scaling.Cache.Delta);
  S.d(D.Scaling.Cache.Sigma);
}
SelectedDesign serde::getDesign(Source &S) {
  SelectedDesign D;
  D.Valid = S.b();
  D.EstTexecNs = S.d();
  D.EstEnergy = S.d();
  D.EstED2 = S.d();
  D.Config.Clusters.resize(S.bad() ? 0
                                   : std::min<uint64_t>(S.u64(), 1u << 20));
  for (DomainOperatingPoint &P : D.Config.Clusters)
    P = getOpPoint(S);
  D.Config.Icn = getOpPoint(S);
  D.Config.Cache = getOpPoint(S);
  D.Scaling.Clusters.resize(S.bad() ? 0
                                    : std::min<uint64_t>(S.u64(), 1u << 20));
  for (DomainScaling &Sc : D.Scaling.Clusters) {
    Sc.Delta = S.d();
    Sc.Sigma = S.d();
  }
  D.Scaling.Icn.Delta = S.d();
  D.Scaling.Icn.Sigma = S.d();
  D.Scaling.Cache.Delta = S.d();
  D.Scaling.Cache.Sigma = S.d();
  return D;
}

void serde::putConfigRun(Sink &S, const ConfigRunResult &R) {
  S.b(R.Ok);
  S.d(R.TexecNs);
  S.d(R.Energy);
  S.d(R.ED2);
  S.u64(R.Failures);
  S.u64(R.FailureDetails.size());
  for (const LoopScheduleFailure &F : R.FailureDetails) {
    S.str(F.Loop);
    S.str(F.Detail);
  }
  S.u64(R.Loops.size());
  for (const LoopRunStat &L : R.Loops) {
    S.str(L.Name);
    S.d(L.ITNs);
    S.d(L.TexecNs);
    S.u64(L.Comms);
    S.b(L.Degraded);
  }
  S.u64(R.ScheduleHits);
  S.u64(R.ScheduleMisses);
  S.u64(R.SchedPlacements);
  S.u64(R.SchedEjections);
  S.u64(R.SchedBudgetUsed);
  S.u64(R.SchedITSteps);
  S.u64(R.DegradedLoops);
  S.u64(R.ColdReplays);
  S.u64(R.FlatPartitions);
  S.u64(R.FallbackRational);
}
ConfigRunResult serde::getConfigRun(Source &S) {
  ConfigRunResult R;
  R.Ok = S.b();
  R.TexecNs = S.d();
  R.Energy = S.d();
  R.ED2 = S.d();
  R.Failures = static_cast<unsigned>(S.u64());
  R.FailureDetails.resize(S.bad() ? 0
                                  : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopScheduleFailure &F : R.FailureDetails) {
    F.Loop = S.str();
    F.Detail = S.str();
  }
  R.Loops.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopRunStat &L : R.Loops) {
    L.Name = S.str();
    L.ITNs = S.d();
    L.TexecNs = S.d();
    L.Comms = static_cast<unsigned>(S.u64());
    L.Degraded = S.b();
  }
  R.ScheduleHits = S.u64();
  R.ScheduleMisses = S.u64();
  R.SchedPlacements = S.u64();
  R.SchedEjections = S.u64();
  R.SchedBudgetUsed = S.u64();
  R.SchedITSteps = S.u64();
  R.DegradedLoops = static_cast<unsigned>(S.u64());
  R.ColdReplays = static_cast<unsigned>(S.u64());
  R.FlatPartitions = static_cast<unsigned>(S.u64());
  R.FallbackRational = static_cast<unsigned>(S.u64());
  return R;
}

void serde::putResult(Sink &S, const ProgramRunResult &R) {
  S.str(R.Name);
  S.d(R.ED2Ratio);
  putProfile(S, R.Profile);
  putDesign(S, R.HetDesign);
  putDesign(S, R.HomDesign);
  putConfigRun(S, R.HetMeasured);
  putConfigRun(S, R.HomMeasured);
}
ProgramRunResult serde::getResult(Source &S) {
  ProgramRunResult R;
  R.Name = S.str();
  R.ED2Ratio = S.d();
  R.Profile = getProfile(S);
  R.HetDesign = getDesign(S);
  R.HomDesign = getDesign(S);
  R.HetMeasured = getConfigRun(S);
  R.HomMeasured = getConfigRun(S);
  return R;
}

void serde::putFailure(Sink &S, PipelineStage Stage, const std::string &Reason,
                       double StageWallMs) {
  S.u64(static_cast<uint64_t>(Stage));
  S.str(Reason);
  S.d(StageWallMs);
}
JournaledFailure serde::getFailure(Source &S) {
  JournaledFailure F;
  uint64_t Stage = S.u64();
  if (Stage > static_cast<uint64_t>(PipelineStage::Measurement))
    Stage = 0;
  F.Stage = static_cast<PipelineStage>(Stage);
  F.Reason = S.str();
  F.StageWallMs = S.d();
  return F;
}

//===----------------------------------------------------------------------===//
// Scheduling artifacts (persistent schedule-cache records)
//===----------------------------------------------------------------------===//

namespace {

void putDomainPlan(Sink &S, const DomainPlan &D) {
  S.i64(D.II);
  S.rat(D.FreqGHz);
  S.rat(D.PeriodNs);
}
DomainPlan getDomainPlan(Source &S) {
  DomainPlan D;
  D.II = S.i64();
  D.FreqGHz = S.rat();
  D.PeriodNs = S.rat();
  return D;
}

/// Reads a u64 and rejects values above \p Max (enum range checks: the
/// CRC already guards against corruption, this guards against skew).
uint64_t getBounded(Source &S, uint64_t Max) {
  uint64_t V = S.u64();
  if (V > Max) {
    S.markBad();
    return 0;
  }
  return V;
}

} // namespace

void serde::putMachinePlan(Sink &S, const MachinePlan &P) {
  S.rat(P.ITNs);
  S.u64(P.Clusters.size());
  for (const DomainPlan &D : P.Clusters)
    putDomainPlan(S, D);
  putDomainPlan(S, P.Bus);
  putDomainPlan(S, P.Cache);
}
MachinePlan serde::getMachinePlan(Source &S) {
  MachinePlan P;
  P.ITNs = S.rat();
  P.Clusters.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (DomainPlan &D : P.Clusters)
    D = getDomainPlan(S);
  P.Bus = getDomainPlan(S);
  P.Cache = getDomainPlan(S);
  return P;
}

void serde::putSchedule(Sink &S, const Schedule &Sch) {
  putMachinePlan(S, Sch.Plan);
  S.u64(Sch.Nodes.size());
  for (const ScheduledNode &N : Sch.Nodes) {
    S.b(N.Placed);
    S.i64(N.Slot);
    S.u64(N.Unit);
  }
}
Schedule serde::getSchedule(Source &S) {
  Schedule Sch;
  Sch.Plan = getMachinePlan(S);
  Sch.Nodes.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 22));
  for (ScheduledNode &N : Sch.Nodes) {
    N.Placed = S.b();
    N.Slot = S.i64();
    N.Unit = static_cast<unsigned>(S.u64());
  }
  return Sch;
}

void serde::putPartitionedGraph(Sink &S, const PartitionedGraph &PG) {
  S.u64(PG.numClusters());
  S.u64(PG.size());
  for (unsigned I = 0; I < PG.size(); ++I) {
    const PGNode &N = PG.node(I);
    S.u64(N.Domain);
    S.u64(static_cast<uint64_t>(N.Op));
    S.u64(N.LatencyCycles);
    S.u64(static_cast<uint64_t>(N.Kind));
    S.i64(N.OrigOp);
    S.i64(N.CopiedValue);
  }
  S.u64(PG.edges().size());
  for (const PGEdge &E : PG.edges()) {
    S.u64(E.Src);
    S.u64(E.Dst);
    S.u64(E.Distance);
    S.u64(E.LatencyCycles);
    S.b(E.CarriesValue);
  }
}
PartitionedGraph serde::getPartitionedGraph(Source &S) {
  unsigned NumClusters = static_cast<unsigned>(S.u64());
  std::vector<PGNode> Nodes(S.bad() ? 0
                                    : std::min<uint64_t>(S.u64(), 1u << 22));
  for (PGNode &N : Nodes) {
    N.Domain = static_cast<unsigned>(S.u64());
    N.Op = static_cast<Opcode>(
        getBounded(S, static_cast<uint64_t>(Opcode::Copy)));
    N.LatencyCycles = static_cast<unsigned>(S.u64());
    N.Kind =
        static_cast<FUKind>(getBounded(S, static_cast<uint64_t>(FUKind::Bus)));
    N.OrigOp = static_cast<int>(S.i64());
    N.CopiedValue = static_cast<int>(S.i64());
  }
  std::vector<PGEdge> Edges(S.bad() ? 0
                                    : std::min<uint64_t>(S.u64(), 1u << 22));
  const uint64_t MaxNode = Nodes.empty() ? 0 : Nodes.size() - 1;
  for (PGEdge &E : Edges) {
    E.Src = static_cast<unsigned>(getBounded(S, MaxNode));
    E.Dst = static_cast<unsigned>(getBounded(S, MaxNode));
    E.Distance = static_cast<unsigned>(S.u64());
    E.LatencyCycles = static_cast<unsigned>(S.u64());
    E.CarriesValue = S.b();
  }
  if (S.bad())
    return PartitionedGraph();
  return PartitionedGraph::fromRaw(NumClusters, std::move(Nodes),
                                   std::move(Edges));
}

void serde::putLoopScheduleResult(Sink &S, const LoopScheduleResult &R) {
  S.b(R.Success);
  S.str(R.Failure);
  putSchedule(S, R.Sched);
  putPartitionedGraph(S, R.PG);
  S.u64(R.Assignment.ClusterOf.size());
  for (unsigned C : R.Assignment.ClusterOf)
    S.u64(C);
  S.u64(R.Pressure.MaxLive.size());
  for (int64_t V : R.Pressure.MaxLive)
    S.i64(V);
  S.u64(R.Pressure.SumLifetimes.size());
  for (int64_t V : R.Pressure.SumLifetimes)
    S.i64(V);
  S.rat(R.MITNs);
  S.u64(R.ITSteps);
  S.u64(R.Placements);
  S.u64(R.Ejections);
  S.u64(R.BudgetUsed);
  S.u64(R.FallbackRational);
  S.u64(R.FailureLog.size());
  for (const ITFailure &F : R.FailureLog) {
    S.u64(F.Step);
    S.rat(F.ITNs);
    S.str(F.Reason);
    S.u64(F.Count);
  }
  S.u64(R.PrunedITSteps);
  S.u64(R.PartStats.Runs);
  S.u64(R.PartStats.CoarsenBuilds);
  S.u64(R.PartStats.CoarsenMemoHits);
  S.u64(R.PartStats.Levels);
  S.u64(R.PartStats.MatchedPairs);
  S.u64(R.PartStats.RefinePasses);
  S.u64(R.PartStats.RefineMoves);
  S.u64(R.PartStats.FMPasses);
  S.u64(R.PartStats.FMMoves);
  S.u64(R.PartStats.FlatFallbacks);
  S.d(R.PartStats.InitialScore);
  S.d(R.PartStats.FinalScore);
  S.i64(R.RecMII);
  S.i64(R.ResMII);
}
LoopScheduleResult serde::getLoopScheduleResult(Source &S) {
  LoopScheduleResult R;
  R.Success = S.b();
  R.Failure = S.str();
  R.Sched = getSchedule(S);
  R.PG = getPartitionedGraph(S);
  R.Assignment.ClusterOf.resize(S.bad() ? 0
                                        : std::min<uint64_t>(S.u64(),
                                                             1u << 22));
  for (unsigned &C : R.Assignment.ClusterOf)
    C = static_cast<unsigned>(S.u64());
  R.Pressure.MaxLive.resize(S.bad() ? 0
                                    : std::min<uint64_t>(S.u64(), 1u << 20));
  for (int64_t &V : R.Pressure.MaxLive)
    V = S.i64();
  R.Pressure.SumLifetimes.resize(
      S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (int64_t &V : R.Pressure.SumLifetimes)
    V = S.i64();
  R.MITNs = S.rat();
  R.ITSteps = static_cast<unsigned>(S.u64());
  R.Placements = S.u64();
  R.Ejections = S.u64();
  R.BudgetUsed = S.u64();
  R.FallbackRational = static_cast<unsigned>(S.u64());
  R.FailureLog.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (ITFailure &F : R.FailureLog) {
    F.Step = static_cast<unsigned>(S.u64());
    F.ITNs = S.rat();
    F.Reason = S.str();
    F.Count = static_cast<unsigned>(S.u64());
  }
  R.PrunedITSteps = static_cast<unsigned>(S.u64());
  R.PartStats.Runs = S.u64();
  R.PartStats.CoarsenBuilds = S.u64();
  R.PartStats.CoarsenMemoHits = S.u64();
  R.PartStats.Levels = S.u64();
  R.PartStats.MatchedPairs = S.u64();
  R.PartStats.RefinePasses = S.u64();
  R.PartStats.RefineMoves = S.u64();
  R.PartStats.FMPasses = S.u64();
  R.PartStats.FMMoves = S.u64();
  R.PartStats.FlatFallbacks = S.u64();
  R.PartStats.InitialScore = S.d();
  R.PartStats.FinalScore = S.d();
  R.RecMII = S.i64();
  R.ResMII = S.i64();
  return R;
}
