//===- runtime/ResultSerde.h - Result-component serializers ------*- C++ -*-===//
///
/// \file
/// Mirrored put*/get* serializers for the result components the durable
/// formats persist, over the support/RecordIO token codec. Shared by
/// runtime/SuiteJournal (per-program suite records) and
/// runtime/CachePersist (schedule / eval cache snapshots); each put has
/// a positionally mirrored get, so a value round-trips bit-exactly.
/// A get on malformed input latches Source::bad() and returns a
/// default-shaped value — callers must check bad()/done() before
/// trusting the result.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_RESULTSERDE_H
#define HCVLIW_RUNTIME_RESULTSERDE_H

#include "core/HeterogeneousPipeline.h"
#include "partition/LoopScheduler.h"
#include "runtime/SuiteJournal.h"
#include "support/RecordIO.h"

namespace hcvliw {
namespace serde {

using recio::Sink;
using recio::Source;

// --- profiling / selection components (suite journal records) ----------
void putActivity(Sink &S, const ActivityCounts &A);
ActivityCounts getActivity(Source &S);

void putLoopProfile(Sink &S, const LoopProfile &L);
LoopProfile getLoopProfile(Source &S);

void putProfile(Sink &S, const ProgramProfile &P);
ProgramProfile getProfile(Source &S);

void putOpPoint(Sink &S, const DomainOperatingPoint &P);
DomainOperatingPoint getOpPoint(Source &S);

void putDesign(Sink &S, const SelectedDesign &D);
SelectedDesign getDesign(Source &S);

void putConfigRun(Sink &S, const ConfigRunResult &R);
ConfigRunResult getConfigRun(Source &S);

void putResult(Sink &S, const ProgramRunResult &R);
ProgramRunResult getResult(Source &S);

void putFailure(Sink &S, PipelineStage Stage, const std::string &Reason,
                double StageWallMs);
JournaledFailure getFailure(Source &S);

// --- scheduling artifacts (persistent schedule-cache records) -----------
void putMachinePlan(Sink &S, const MachinePlan &P);
MachinePlan getMachinePlan(Source &S);

void putSchedule(Sink &S, const Schedule &Sch);
Schedule getSchedule(Source &S);

void putPartitionedGraph(Sink &S, const PartitionedGraph &PG);
PartitionedGraph getPartitionedGraph(Source &S);

void putLoopScheduleResult(Sink &S, const LoopScheduleResult &R);
LoopScheduleResult getLoopScheduleResult(Source &S);

} // namespace serde
} // namespace hcvliw

#endif // HCVLIW_RUNTIME_RESULTSERDE_H
