//===- runtime/Session.cpp - Shared execution substrate ---------------------===//

#include "runtime/Session.h"

using namespace hcvliw;

Session::Session(const PipelineOptions &O, unsigned Threads)
    : PipeOpts(O),
      Machine_(MachineDescription::paperDefault(O.Buses, O.NumClusters)),
      Menu_(HeterogeneousPipeline::menuFor(O)), Pool_(Threads),
      Cache_(Machine_, Menu_), Pipe_(*this) {}

bool Session::loadCacheFrom(const std::string &Path, std::string *Err) {
  CacheLoadStats Stats;
  if (!loadCacheSnapshot(Path, SchedCache_, Cache_, cacheBinding(), &Fault_,
                         &Stats, Err))
    return false;
  PersistLoad_.SchedLoaded += Stats.SchedLoaded;
  PersistLoad_.EvalLoaded += Stats.EvalLoaded;
  PersistLoad_.SelLoaded += Stats.SelLoaded;
  PersistLoad_.CorruptFrames += Stats.CorruptFrames;
  Metrics_.addCounter("cache.persist.loaded", Stats.loaded());
  Metrics_.addCounter("cache.load_corrupt", Stats.CorruptFrames);
  return true;
}

bool Session::saveCacheTo(const std::string &Path, std::string *Err) {
  CacheSaveStats Stats;
  if (!writeCacheSnapshot(Path, SchedCache_, Cache_, cacheBinding(), &Stats,
                          Err))
    return false;
  PersistSave_.SchedSaved += Stats.SchedSaved;
  PersistSave_.EvalSaved += Stats.EvalSaved;
  PersistSave_.SelSaved += Stats.SelSaved;
  Metrics_.addCounter("cache.persist.saved", Stats.saved());
  return true;
}

obs::MetricsSnapshot Session::metricsSnapshot() const {
  obs::MetricsSnapshot Snap = Metrics_.snapshot();
  // Mirror the shared substrate's own statistics into the snapshot as
  // gauges, so one snapshot carries everything the session observed
  // (the caches keep their deterministic counters; this only reports
  // them).
  Snap.Gauges["cache.eval.hits"] = static_cast<double>(Cache_.hits());
  Snap.Gauges["cache.eval.misses"] = static_cast<double>(Cache_.misses());
  Snap.Gauges["cache.eval.entries"] = static_cast<double>(Cache_.size());
  Snap.Gauges["cache.selection.hits"] =
      static_cast<double>(Cache_.selectionHits());
  Snap.Gauges["cache.selection.misses"] =
      static_cast<double>(Cache_.selectionMisses());
  Snap.Gauges["cache.schedule.hit_total"] =
      static_cast<double>(SchedCache_.hits());
  Snap.Gauges["cache.schedule.miss_total"] =
      static_cast<double>(SchedCache_.misses());
  Snap.Gauges["cache.schedule.entries"] =
      static_cast<double>(SchedCache_.size());
  // Persistent-tier ledger (all zero unless loadCacheFrom/saveCacheTo
  // ran): what the warm tier contributed and whether any frame had to
  // be quarantined (clean runs assert cache.persist.corrupt == 0).
  Snap.Gauges["cache.persist.hits"] =
      static_cast<double>(cachePersistHits());
  Snap.Gauges["cache.persist.loaded"] =
      static_cast<double>(PersistLoad_.loaded());
  Snap.Gauges["cache.persist.corrupt"] =
      static_cast<double>(PersistLoad_.CorruptFrames);
  Snap.Gauges["cache.persist.saved"] =
      static_cast<double>(PersistSave_.saved());
  Snap.Gauges["pool.threads"] = static_cast<double>(Pool_.threads());
  Snap.Gauges["pool.scratch_arenas"] =
      static_cast<double>(Scratches_.threadsSeen());
  Snap.Gauges["obs.trace_events"] = static_cast<double>(Tracer_.totalEvents());
  Snap.Gauges["obs.trace_dropped"] =
      static_cast<double>(Tracer_.droppedEvents());
  // Fault-injection ledger (all zero unless a plan was armed; compiled
  // to constant zeros under -DHCVLIW_NO_FAULT).
  Snap.Gauges["fault.injected"] = static_cast<double>(Fault_.totalInjected());
  Snap.Gauges["fault.injected_throws"] =
      static_cast<double>(Fault_.injectedThrows());
  Snap.Gauges["fault.injected_bad_allocs"] =
      static_cast<double>(Fault_.injectedBadAllocs());
  Snap.Gauges["fault.injected_degrades"] =
      static_cast<double>(Fault_.injectedDegrades());
  return Snap;
}
