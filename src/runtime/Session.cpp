//===- runtime/Session.cpp - Shared execution substrate ---------------------===//

#include "runtime/Session.h"

using namespace hcvliw;

Session::Session(const PipelineOptions &O, unsigned Threads)
    : PipeOpts(O),
      Machine_(MachineDescription::paperDefault(O.Buses, O.NumClusters)),
      Menu_(HeterogeneousPipeline::menuFor(O)), Pool_(Threads),
      Cache_(Machine_, Menu_), Pipe_(*this) {}
