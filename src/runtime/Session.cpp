//===- runtime/Session.cpp - Shared execution substrate ---------------------===//

#include "runtime/Session.h"

using namespace hcvliw;

Session::Session(const PipelineOptions &O, unsigned Threads)
    : PipeOpts(O),
      Machine_(MachineDescription::paperDefault(O.Buses, O.NumClusters)),
      Menu_(HeterogeneousPipeline::menuFor(O)), Pool_(Threads),
      Cache_(Machine_, Menu_), Pipe_(*this) {}

obs::MetricsSnapshot Session::metricsSnapshot() const {
  obs::MetricsSnapshot Snap = Metrics_.snapshot();
  // Mirror the shared substrate's own statistics into the snapshot as
  // gauges, so one snapshot carries everything the session observed
  // (the caches keep their deterministic counters; this only reports
  // them).
  Snap.Gauges["cache.eval.hits"] = static_cast<double>(Cache_.hits());
  Snap.Gauges["cache.eval.misses"] = static_cast<double>(Cache_.misses());
  Snap.Gauges["cache.eval.entries"] = static_cast<double>(Cache_.size());
  Snap.Gauges["cache.selection.hits"] =
      static_cast<double>(Cache_.selectionHits());
  Snap.Gauges["cache.selection.misses"] =
      static_cast<double>(Cache_.selectionMisses());
  Snap.Gauges["cache.schedule.hit_total"] =
      static_cast<double>(SchedCache_.hits());
  Snap.Gauges["cache.schedule.miss_total"] =
      static_cast<double>(SchedCache_.misses());
  Snap.Gauges["cache.schedule.entries"] =
      static_cast<double>(SchedCache_.size());
  Snap.Gauges["pool.threads"] = static_cast<double>(Pool_.threads());
  Snap.Gauges["pool.scratch_arenas"] =
      static_cast<double>(Scratches_.threadsSeen());
  Snap.Gauges["obs.trace_events"] = static_cast<double>(Tracer_.totalEvents());
  Snap.Gauges["obs.trace_dropped"] =
      static_cast<double>(Tracer_.droppedEvents());
  // Fault-injection ledger (all zero unless a plan was armed; compiled
  // to constant zeros under -DHCVLIW_NO_FAULT).
  Snap.Gauges["fault.injected"] = static_cast<double>(Fault_.totalInjected());
  Snap.Gauges["fault.injected_throws"] =
      static_cast<double>(Fault_.injectedThrows());
  Snap.Gauges["fault.injected_bad_allocs"] =
      static_cast<double>(Fault_.injectedBadAllocs());
  Snap.Gauges["fault.injected_degrades"] =
      static_cast<double>(Fault_.injectedDegrades());
  return Snap;
}
