//===- runtime/Session.h - Shared execution substrate ------------*- C++ -*-===//
///
/// \file
/// A Session owns the long-lived state every pipeline run in a process
/// should share instead of rebuilding per call:
///
///   - the PipelineOptions and the MachineDescription they imply,
///   - one WorkerPool, over which both the suite-level program fan-out
///     (SuiteRunner) and each program's design-space exploration run
///     (nested jobs on the same threads, so one thread budget governs
///     both levels),
///   - one EvalCache keyed by (loop structure, frequency shape), so
///     selection no longer rebuilds timing caches per explore() call
///     and structurally identical loops hit across programs, plus the
///     selection memo that skips whole repeated selections,
///   - one ScheduleCache memoizing whole per-loop scheduling runs, so
///     the measurement stage (pipeline step 4, the frontier measurer,
///     the oracle ablation) never schedules the same (loop, machine
///     plan) pair twice — schedules are reused across frontier points,
///     across repeated measurements and across programs,
///   - one ScheduleScratchPool of per-worker ScheduleScratch arenas, so
///     the schedule runs that do happen reuse their working storage
///     (DDG, partitioned graph, tick graphs, reservation tables, ...)
///     instead of hitting malloc per attempt.
///
/// Everything a Session hands out is thread-safe in the ways its users
/// need: runProgram may be called concurrently, explorations may nest
/// under suite fan-outs, and all results are bit-identical to the
/// serial, cache-less computation for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_SESSION_H
#define HCVLIW_RUNTIME_SESSION_H

#include "core/HeterogeneousPipeline.h"
#include "explore/EvalCache.h"
#include "fault/Fault.h"
#include "measure/ScheduleCache.h"
#include "runtime/CachePersist.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "partition/ScheduleScratch.h"
#include "runtime/WorkerPool.h"

namespace hcvliw {

class Session {
  PipelineOptions PipeOpts;
  MachineDescription Machine_;
  FrequencyMenu Menu_;
  WorkerPool Pool_;
  EvalCache Cache_;
  ScheduleCache SchedCache_;
  ScheduleScratchPool Scratches_;
  obs::Tracer Tracer_;
  obs::MetricsRegistry Metrics_;
  fault::FaultInjector Fault_;
  CacheLoadStats PersistLoad_;
  CacheSaveStats PersistSave_;
  HeterogeneousPipeline Pipe_;

public:
  /// \p Threads is the pool's total parallelism degree (0 = hardware
  /// concurrency, 1 = fully serial).
  explicit Session(const PipelineOptions &O = PipelineOptions(),
                   unsigned Threads = 0);

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const PipelineOptions &pipelineOptions() const { return PipeOpts; }
  const MachineDescription &machine() const { return Machine_; }
  const FrequencyMenu &menu() const { return Menu_; }
  WorkerPool &pool() { return Pool_; }
  EvalCache &evalCache() { return Cache_; }
  const EvalCache &evalCache() const { return Cache_; }
  ScheduleCache &scheduleCache() { return SchedCache_; }
  const ScheduleCache &scheduleCache() const { return SchedCache_; }
  /// The per-worker ScheduleScratch arenas every measurement this
  /// session backs schedules through (one arena per thread; results
  /// never depend on which arena serves a run).
  ScheduleScratchPool &scheduleScratchPool() { return Scratches_; }
  const ScheduleScratchPool &scheduleScratchPool() const {
    return Scratches_;
  }

  /// The session span tracer. Off by default: enable it (and export
  /// after the run) to get a Perfetto-loadable timeline of everything
  /// this session executes. Tracing only observes — results are
  /// bit-identical with it on or off (tests/obs/TraceSuiteIdentityTest).
  obs::Tracer &tracer() { return Tracer_; }
  const obs::Tracer &tracer() const { return Tracer_; }

  /// The session metrics registry: stage wall-time histograms, cache
  /// counters, scheduler effort. Recording only observes — results
  /// never depend on it.
  obs::MetricsRegistry &metrics() { return Metrics_; }
  const obs::MetricsRegistry &metrics() const { return Metrics_; }

  /// The session fault injector (deterministic chaos testing; see
  /// fault/Fault.h). Disarmed by default, in which case every fault
  /// site in the session's pipelines is a single predictable branch
  /// and results are bit-identical to a build without the fault layer
  /// (-DHCVLIW_NO_FAULT compiles the sites out entirely). Arm it with
  /// a FaultPlan to replay exact failures; while armed, measurements
  /// bypass the shared ScheduleCache (MeasureOptions::Fault).
  fault::FaultInjector &faultInjector() { return Fault_; }
  const fault::FaultInjector &faultInjector() const { return Fault_; }

  /// The snapshot binding this session's caches persist under (see
  /// runtime/CachePersist.h).
  uint64_t cacheBinding() const {
    return cacheBindingFingerprint(Machine_, Menu_);
  }

  /// Warms the session caches from the persistent snapshot at \p Path.
  /// Refuses version/binding skew (false, \p Err); corrupt frames are
  /// quarantined and counted, never fatal. Accumulates
  /// cachePersistStats() and the cache.persist.loaded /
  /// cache.load_corrupt metrics. The "cache.load" fault site is this
  /// session's injector.
  bool loadCacheFrom(const std::string &Path, std::string *Err = nullptr);

  /// Writes the session caches' persistent snapshot to \p Path
  /// (torn-write-safe, deterministic record order). Accumulates
  /// cachePersistStats() and the cache.persist.saved metric.
  bool saveCacheTo(const std::string &Path, std::string *Err = nullptr);

  /// What loadCacheFrom imported / quarantined so far.
  const CacheLoadStats &cachePersistLoadStats() const {
    return PersistLoad_;
  }
  /// What saveCacheTo wrote so far.
  const CacheSaveStats &cachePersistSaveStats() const {
    return PersistSave_;
  }
  /// Hits served by persisted (snapshot-imported) entries across both
  /// caches — the warm tier's contribution to this run.
  uint64_t cachePersistHits() const {
    return SchedCache_.persistHits() + Cache_.persistHits();
  }

  /// A snapshot of the registry with the session's cache statistics
  /// and scratch-pool state mirrored in as gauges (cache.eval.*,
  /// cache.selection.*, cache.schedule.*, pool.*) — the one call that
  /// aggregates everything this session observed.
  obs::MetricsSnapshot metricsSnapshot() const;

  /// The session-backed pipeline (selections share the pool and cache).
  const HeterogeneousPipeline &pipeline() const { return Pipe_; }
};

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_SESSION_H
