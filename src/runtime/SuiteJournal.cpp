//===- runtime/SuiteJournal.cpp - Suite checkpoint / resume -----------------===//
//
// Serialization strategy: every record body is ONE line of
// space-separated tokens, written positionally by the put* helpers and
// read back by the mirrored get* helpers (the "v1" in the header is
// the contract version for the positional layout). Tokens never
// contain spaces: strings are escaped (backslash, space, newline, the
// empty string), doubles are hex-floats (%a) and Rationals are
// "num den" token pairs, so every value round-trips bit-exactly.
// Records are framed by begin/end lines carrying the program name; the
// loader drops a trailing record whose frame or body is incomplete
// (the run died mid-append) along with anything after it.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteJournal.h"

#include "support/HashUtil.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace hcvliw;

namespace {

//===----------------------------------------------------------------------===//
// Token escaping
//===----------------------------------------------------------------------===//

/// Escapes \p S into a single space-free token: '\' -> "\\", ' ' ->
/// "\s", '\n' -> "\n", '\t' -> "\t", "" -> "\e".
std::string escToken(const std::string &S) {
  if (S.empty())
    return "\\e";
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case ' ':
      Out += "\\s";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Inverse of escToken; false on a malformed escape.
bool unescToken(const std::string &T, std::string &Out) {
  Out.clear();
  if (T == "\\e")
    return true;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '\\') {
      Out += T[I];
      continue;
    }
    if (I + 1 >= T.size())
      return false;
    switch (T[++I]) {
    case '\\':
      Out += '\\';
      break;
    case 's':
      Out += ' ';
      break;
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Positional token sink / source
//===----------------------------------------------------------------------===//

class Sink {
  std::string Buf;

public:
  void raw(const std::string &T) {
    if (!Buf.empty())
      Buf += ' ';
    Buf += T;
  }
  void str(const std::string &S) { raw(escToken(S)); }
  void u64(uint64_t V) {
    char B[32];
    std::snprintf(B, sizeof B, "%" PRIu64, V);
    raw(B);
  }
  void i64(int64_t V) {
    char B[32];
    std::snprintf(B, sizeof B, "%" PRId64, V);
    raw(B);
  }
  void b(bool V) { raw(V ? "1" : "0"); }
  void d(double V) {
    // Hex-float: exact round trip, locale-independent.
    char B[48];
    std::snprintf(B, sizeof B, "%a", V);
    raw(B);
  }
  void rat(const Rational &R) {
    i64(R.num());
    i64(R.den());
  }
  const std::string &line() const { return Buf; }
};

class Source {
  std::istringstream In;
  bool Bad_ = false;

  std::string next() {
    std::string T;
    if (!(In >> T))
      Bad_ = true;
    return T;
  }

public:
  explicit Source(const std::string &Line) : In(Line) {}
  bool bad() const { return Bad_; }
  /// True when every token was consumed and none failed to parse.
  bool done() {
    std::string T;
    return !Bad_ && !(In >> T);
  }

  std::string str() {
    std::string Out;
    if (!unescToken(next(), Out))
      Bad_ = true;
    return Out;
  }
  uint64_t u64() {
    std::string T = next();
    if (Bad_)
      return 0;
    char *End = nullptr;
    uint64_t V = std::strtoull(T.c_str(), &End, 10);
    if (End != T.c_str() + T.size())
      Bad_ = true;
    return V;
  }
  int64_t i64() {
    std::string T = next();
    if (Bad_)
      return 0;
    char *End = nullptr;
    int64_t V = std::strtoll(T.c_str(), &End, 10);
    if (End != T.c_str() + T.size())
      Bad_ = true;
    return V;
  }
  bool b() { return u64() != 0; }
  double d() {
    std::string T = next();
    if (Bad_)
      return 0;
    char *End = nullptr;
    double V = std::strtod(T.c_str(), &End);
    if (End != T.c_str() + T.size())
      Bad_ = true;
    return V;
  }
  Rational rat() {
    int64_t N = i64();
    int64_t D = i64();
    return Bad_ ? Rational() : Rational(N, D);
  }
};

//===----------------------------------------------------------------------===//
// Mirrored put/get per result component
//===----------------------------------------------------------------------===//

void putActivity(Sink &S, const ActivityCounts &A) {
  S.d(A.WeightedIns);
  S.d(A.Comms);
  S.d(A.MemAccesses);
}
ActivityCounts getActivity(Source &S) {
  ActivityCounts A;
  A.WeightedIns = S.d();
  A.Comms = S.d();
  A.MemAccesses = S.d();
  return A;
}

void putLoopProfile(Sink &S, const LoopProfile &L) {
  S.str(L.Name);
  S.u64(L.TripCount);
  S.d(L.Weight);
  S.d(L.Invocations);
  S.i64(L.RecMII);
  S.i64(L.ResMII);
  S.i64(L.IIHom);
  S.rat(L.ItLengthRefNs);
  S.rat(L.TexecRefNs);
  putActivity(S, L.PerIter);
  S.i64(L.SumLifetimesRef);
  S.u64(L.OpCounts.size());
  for (unsigned C : L.OpCounts)
    S.u64(C);
  S.u64(L.NumOps);
  S.u64(L.StructuralFP);
  S.u64(L.Components.size());
  for (const ComponentProfile &C : L.Components) {
    S.i64(C.RecMII);
    S.u64(C.FUCounts.size());
    for (unsigned F : C.FUCounts)
      S.u64(F);
  }
}
LoopProfile getLoopProfile(Source &S) {
  LoopProfile L;
  L.Name = S.str();
  L.TripCount = S.u64();
  L.Weight = S.d();
  L.Invocations = S.d();
  L.RecMII = S.i64();
  L.ResMII = S.i64();
  L.IIHom = S.i64();
  L.ItLengthRefNs = S.rat();
  L.TexecRefNs = S.rat();
  L.PerIter = getActivity(S);
  L.SumLifetimesRef = S.i64();
  L.OpCounts.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (unsigned &C : L.OpCounts)
    C = static_cast<unsigned>(S.u64());
  L.NumOps = static_cast<unsigned>(S.u64());
  L.StructuralFP = S.u64();
  L.Components.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (ComponentProfile &C : L.Components) {
    C.RecMII = S.i64();
    C.FUCounts.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
    for (unsigned &F : C.FUCounts)
      F = static_cast<unsigned>(S.u64());
  }
  return L;
}

void putProfile(Sink &S, const ProgramProfile &P) {
  S.str(P.Name);
  S.d(P.TexecRefNs);
  putActivity(S, P.Totals);
  S.u64(P.Loops.size());
  for (const LoopProfile &L : P.Loops)
    putLoopProfile(S, L);
}
ProgramProfile getProfile(Source &S) {
  ProgramProfile P;
  P.Name = S.str();
  P.TexecRefNs = S.d();
  P.Totals = getActivity(S);
  P.Loops.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopProfile &L : P.Loops)
    L = getLoopProfile(S);
  return P;
}

void putOpPoint(Sink &S, const DomainOperatingPoint &P) {
  S.rat(P.PeriodNs);
  S.d(P.Vdd);
  S.d(P.Vth);
}
DomainOperatingPoint getOpPoint(Source &S) {
  DomainOperatingPoint P;
  P.PeriodNs = S.rat();
  P.Vdd = S.d();
  P.Vth = S.d();
  return P;
}

void putDesign(Sink &S, const SelectedDesign &D) {
  S.b(D.Valid);
  S.d(D.EstTexecNs);
  S.d(D.EstEnergy);
  S.d(D.EstED2);
  S.u64(D.Config.Clusters.size());
  for (const DomainOperatingPoint &P : D.Config.Clusters)
    putOpPoint(S, P);
  putOpPoint(S, D.Config.Icn);
  putOpPoint(S, D.Config.Cache);
  S.u64(D.Scaling.Clusters.size());
  for (const DomainScaling &Sc : D.Scaling.Clusters) {
    S.d(Sc.Delta);
    S.d(Sc.Sigma);
  }
  S.d(D.Scaling.Icn.Delta);
  S.d(D.Scaling.Icn.Sigma);
  S.d(D.Scaling.Cache.Delta);
  S.d(D.Scaling.Cache.Sigma);
}
SelectedDesign getDesign(Source &S) {
  SelectedDesign D;
  D.Valid = S.b();
  D.EstTexecNs = S.d();
  D.EstEnergy = S.d();
  D.EstED2 = S.d();
  D.Config.Clusters.resize(S.bad() ? 0
                                   : std::min<uint64_t>(S.u64(), 1u << 20));
  for (DomainOperatingPoint &P : D.Config.Clusters)
    P = getOpPoint(S);
  D.Config.Icn = getOpPoint(S);
  D.Config.Cache = getOpPoint(S);
  D.Scaling.Clusters.resize(S.bad() ? 0
                                    : std::min<uint64_t>(S.u64(), 1u << 20));
  for (DomainScaling &Sc : D.Scaling.Clusters) {
    Sc.Delta = S.d();
    Sc.Sigma = S.d();
  }
  D.Scaling.Icn.Delta = S.d();
  D.Scaling.Icn.Sigma = S.d();
  D.Scaling.Cache.Delta = S.d();
  D.Scaling.Cache.Sigma = S.d();
  return D;
}

void putConfigRun(Sink &S, const ConfigRunResult &R) {
  S.b(R.Ok);
  S.d(R.TexecNs);
  S.d(R.Energy);
  S.d(R.ED2);
  S.u64(R.Failures);
  S.u64(R.FailureDetails.size());
  for (const LoopScheduleFailure &F : R.FailureDetails) {
    S.str(F.Loop);
    S.str(F.Detail);
  }
  S.u64(R.Loops.size());
  for (const LoopRunStat &L : R.Loops) {
    S.str(L.Name);
    S.d(L.ITNs);
    S.d(L.TexecNs);
    S.u64(L.Comms);
    S.b(L.Degraded);
  }
  S.u64(R.ScheduleHits);
  S.u64(R.ScheduleMisses);
  S.u64(R.SchedPlacements);
  S.u64(R.SchedEjections);
  S.u64(R.SchedBudgetUsed);
  S.u64(R.SchedITSteps);
  S.u64(R.DegradedLoops);
  S.u64(R.ColdReplays);
  S.u64(R.FlatPartitions);
  S.u64(R.FallbackRational);
}
ConfigRunResult getConfigRun(Source &S) {
  ConfigRunResult R;
  R.Ok = S.b();
  R.TexecNs = S.d();
  R.Energy = S.d();
  R.ED2 = S.d();
  R.Failures = static_cast<unsigned>(S.u64());
  R.FailureDetails.resize(S.bad() ? 0
                                  : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopScheduleFailure &F : R.FailureDetails) {
    F.Loop = S.str();
    F.Detail = S.str();
  }
  R.Loops.resize(S.bad() ? 0 : std::min<uint64_t>(S.u64(), 1u << 20));
  for (LoopRunStat &L : R.Loops) {
    L.Name = S.str();
    L.ITNs = S.d();
    L.TexecNs = S.d();
    L.Comms = static_cast<unsigned>(S.u64());
    L.Degraded = S.b();
  }
  R.ScheduleHits = S.u64();
  R.ScheduleMisses = S.u64();
  R.SchedPlacements = S.u64();
  R.SchedEjections = S.u64();
  R.SchedBudgetUsed = S.u64();
  R.SchedITSteps = S.u64();
  R.DegradedLoops = static_cast<unsigned>(S.u64());
  R.ColdReplays = static_cast<unsigned>(S.u64());
  R.FlatPartitions = static_cast<unsigned>(S.u64());
  R.FallbackRational = static_cast<unsigned>(S.u64());
  return R;
}

void putResult(Sink &S, const ProgramRunResult &R) {
  S.str(R.Name);
  S.d(R.ED2Ratio);
  putProfile(S, R.Profile);
  putDesign(S, R.HetDesign);
  putDesign(S, R.HomDesign);
  putConfigRun(S, R.HetMeasured);
  putConfigRun(S, R.HomMeasured);
}
ProgramRunResult getResult(Source &S) {
  ProgramRunResult R;
  R.Name = S.str();
  R.ED2Ratio = S.d();
  R.Profile = getProfile(S);
  R.HetDesign = getDesign(S);
  R.HomDesign = getDesign(S);
  R.HetMeasured = getConfigRun(S);
  R.HomMeasured = getConfigRun(S);
  return R;
}

void putFailure(Sink &S, PipelineStage Stage, const std::string &Reason,
                double StageWallMs) {
  S.u64(static_cast<uint64_t>(Stage));
  S.str(Reason);
  S.d(StageWallMs);
}
JournaledFailure getFailure(Source &S) {
  JournaledFailure F;
  uint64_t Stage = S.u64();
  if (Stage > static_cast<uint64_t>(PipelineStage::Measurement))
    Stage = 0;
  F.Stage = static_cast<PipelineStage>(Stage);
  F.Reason = S.str();
  F.StageWallMs = S.d();
  return F;
}

constexpr const char *JournalMagic = "hcvliw-suite-journal v1";

} // namespace

//===----------------------------------------------------------------------===//
// SuiteJournal (loader)
//===----------------------------------------------------------------------===//

std::optional<SuiteJournal> SuiteJournal::load(const std::string &Path,
                                               uint64_t ExpectFingerprint,
                                               std::string *Err) {
  auto fail = [&](const std::string &Why) -> std::optional<SuiteJournal> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };
  std::ifstream In(Path);
  if (!In)
    return fail("cannot open journal: " + Path);

  std::string Line;
  if (!std::getline(In, Line) || Line != JournalMagic)
    return fail("not a hcvliw suite journal (bad header): " + Path);
  if (!std::getline(In, Line) || Line.rfind("fingerprint ", 0) != 0)
    return fail("journal missing fingerprint line: " + Path);
  SuiteJournal J;
  {
    std::string Hex = Line.substr(std::strlen("fingerprint "));
    char *End = nullptr;
    J.Fingerprint = std::strtoull(Hex.c_str(), &End, 16);
    if (Hex.empty() || End != Hex.c_str() + Hex.size())
      return fail("journal fingerprint is not hex: " + Path);
  }
  if (ExpectFingerprint && J.Fingerprint != ExpectFingerprint)
    return fail("journal was written under different options or programs "
                "(fingerprint mismatch); refusing to resume from it");

  // Framed records. Any malformed or unterminated record is treated as
  // the torn tail of a killed run: it and everything after it are
  // dropped, everything before it loads.
  while (std::getline(In, Line)) {
    Source Frame(Line);
    std::string Kw = Frame.str();
    if (Kw != "begin")
      break;
    std::string Kind = Frame.str();
    std::string Name = Frame.str();
    if (Frame.bad() || !Frame.done() || (Kind != "ok" && Kind != "fail"))
      break;

    std::string Body;
    if (!std::getline(In, Body))
      break;
    std::string EndLine;
    if (!std::getline(In, EndLine))
      break;
    Source EndFrame(EndLine);
    if (EndFrame.str() != "end" || EndFrame.str() != Kind ||
        EndFrame.str() != Name || EndFrame.bad() || !EndFrame.done())
      break;

    Source S(Body);
    if (Kind == "ok") {
      ProgramRunResult R = getResult(S);
      if (S.bad() || !S.done() || R.Name != Name)
        break;
      J.Results[Name] = std::move(R);
    } else {
      JournaledFailure F = getFailure(S);
      if (S.bad() || !S.done())
        break;
      J.Failures[Name] = std::move(F);
    }
  }
  return J;
}

//===----------------------------------------------------------------------===//
// SuiteJournalWriter
//===----------------------------------------------------------------------===//

bool SuiteJournalWriter::open(const std::string &Path, uint64_t Fingerprint,
                              std::string *Err) {
  close();
  // Append mode: a resumed run extends the journal it loaded. When the
  // file already has content the header must match (same format, same
  // fingerprint) — validated by re-loading it.
  bool WriteHeader = true;
  {
    std::ifstream Probe(Path);
    if (Probe && Probe.peek() != std::ifstream::traits_type::eof()) {
      std::string LoadErr;
      auto Existing = SuiteJournal::load(Path, Fingerprint, &LoadErr);
      if (!Existing) {
        if (Err)
          *Err = "cannot append to journal: " + LoadErr;
        return false;
      }
      WriteHeader = false;
    }
  }
  Out = std::fopen(Path.c_str(), "ab");
  if (!Out) {
    if (Err)
      *Err = "cannot open journal for append: " + Path;
    return false;
  }
  if (WriteHeader) {
    std::fprintf(Out, "%s\nfingerprint %016llx\n", JournalMagic,
                 static_cast<unsigned long long>(Fingerprint));
    std::fflush(Out);
  }
  return true;
}

void SuiteJournalWriter::append(const ProgramRunResult &R) {
  if (!Out)
    return;
  Sink S;
  putResult(S, R);
  std::string Rec;
  std::string Name = escToken(R.Name);
  Rec.reserve(S.line().size() + 2 * Name.size() + 32);
  Rec += "begin ok " + Name + "\n";
  Rec += S.line();
  Rec += "\nend ok " + Name + "\n";
  // One write + flush per record: a kill between appends loses
  // nothing; a kill mid-append loses exactly the (droppable) tail.
  std::fwrite(Rec.data(), 1, Rec.size(), Out);
  std::fflush(Out);
}

void SuiteJournalWriter::appendFailure(const std::string &Program,
                                       PipelineStage Stage,
                                       const std::string &Reason,
                                       double StageWallMs) {
  if (!Out)
    return;
  Sink S;
  putFailure(S, Stage, Reason, StageWallMs);
  std::string Rec;
  std::string Name = escToken(Program);
  Rec += "begin fail " + Name + "\n";
  Rec += S.line();
  Rec += "\nend fail " + Name + "\n";
  std::fwrite(Rec.data(), 1, Rec.size(), Out);
  std::fflush(Out);
}

void SuiteJournalWriter::close() {
  if (Out) {
    std::fclose(Out);
    Out = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t
hcvliw::suiteJournalFingerprint(const PipelineOptions &Opts,
                                const std::vector<BenchmarkProgram> &Programs) {
  FnvHasher H;
  H.mix(1); // format/contract version

  // The program list: names plus the structural identity of every loop.
  H.mix(Programs.size());
  for (const BenchmarkProgram &P : Programs) {
    H.mix(P.Name.size());
    for (char C : P.Name)
      H.mix(static_cast<unsigned char>(C));
    H.mix(P.Loops.size());
    for (const Loop &L : P.Loops) {
      H.mix(L.structuralFingerprint());
      H.mix(L.TripCount);
    }
  }

  // Every pipeline option the per-program computation reads.
  H.mix(Opts.Buses);
  H.mix(Opts.NumClusters);
  H.mix(Opts.MenuSize ? 1u + *Opts.MenuSize : 0u);
  H.mixDouble(Opts.Breakdown.CacheShare);
  H.mixDouble(Opts.Breakdown.IcnShare);
  H.mixDouble(Opts.Breakdown.ClusterLeakageFrac);
  H.mixDouble(Opts.Breakdown.CacheLeakageFrac);
  H.mixDouble(Opts.Breakdown.IcnLeakageFrac);
  H.mixDouble(Opts.Tech.Alpha);
  H.mixDouble(Opts.Tech.SubthresholdSlopeV);
  H.mixDouble(Opts.Tech.OverdriveMargin);
  const DesignSpaceOptions &Sp = Opts.Space;
  H.mixVector(Sp.FastFactors);
  H.mixVector(Sp.SlowRatios);
  H.mix(Sp.NumFastClusters);
  H.mixVector(Sp.ClusterVddGrid);
  H.mixVector(Sp.IcnVddGrid);
  H.mixVector(Sp.CacheVddGrid);
  H.mixVector(Sp.HomogFactors);
  H.mixVector(Sp.HomogVddGrid);
  H.mix(Opts.Part.ED2Objective ? 1u : 2u);
  H.mix(Opts.Part.PrePlaceRecurrences ? 1u : 2u);
  H.mix(Opts.Part.MaxRefinePasses);
  H.mix(Opts.Part.MaxRefineMacros);
  H.mix(Opts.Part.CoarsestPerCluster);
  H.mix(Opts.Part.MaxFMPasses);
  H.mixDouble(Opts.ProgramBudgetNs);
  H.mix(Opts.MaxITSteps);
  H.mix(Opts.SimCheckIterations);
  H.mix(Opts.LoopEffortDeadline);
  H.mix(Opts.DegradeToEstimate ? 1u : 2u);
  return H.digest();
}
