//===- runtime/SuiteJournal.cpp - Suite checkpoint / resume -----------------===//
//
// Serialization strategy: every record body is ONE line of
// space-separated tokens, written positionally by the shared
// runtime/ResultSerde put* helpers and read back by the mirrored get*
// helpers over the support/RecordIO codec (the "v1" in the header is
// the contract version for the positional layout). Records are framed
// by begin/end lines carrying the program name; the loader drops a
// trailing record whose frame or body is incomplete (the run died
// mid-append) along with anything after it.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteJournal.h"

#include "runtime/ResultSerde.h"
#include "support/HashUtil.h"
#include "support/RecordIO.h"

#include <cstring>
#include <fstream>

#include <unistd.h>

using namespace hcvliw;
using recio::Sink;
using recio::Source;

namespace {

constexpr const char *JournalMagic = "hcvliw-suite-journal v1";

} // namespace

//===----------------------------------------------------------------------===//
// SuiteJournal (loader)
//===----------------------------------------------------------------------===//

std::optional<SuiteJournal> SuiteJournal::load(const std::string &Path,
                                               uint64_t ExpectFingerprint,
                                               std::string *Err) {
  auto fail = [&](const std::string &Why) -> std::optional<SuiteJournal> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };
  std::ifstream In(Path);
  if (!In)
    return fail("cannot open journal: " + Path);

  std::string Line;
  if (!std::getline(In, Line) || Line != JournalMagic)
    return fail("not a hcvliw suite journal (bad header): " + Path);
  if (!std::getline(In, Line) || Line.rfind("fingerprint ", 0) != 0)
    return fail("journal missing fingerprint line: " + Path);
  SuiteJournal J;
  {
    std::string Hex = Line.substr(std::strlen("fingerprint "));
    char *End = nullptr;
    J.Fingerprint = std::strtoull(Hex.c_str(), &End, 16);
    if (Hex.empty() || End != Hex.c_str() + Hex.size())
      return fail("journal fingerprint is not hex: " + Path);
  }
  if (ExpectFingerprint && J.Fingerprint != ExpectFingerprint)
    return fail("journal was written under different options or programs "
                "(fingerprint mismatch); refusing to resume from it");

  // Framed records. Any malformed or unterminated record is treated as
  // the torn tail of a killed run: it and everything after it are
  // dropped, everything before it loads. CleanBytes tracks how far the
  // intact prefix reaches, so an appending reopen can cut the tear off
  // instead of writing records the next load would never see.
  J.CleanBytes = static_cast<uint64_t>(In.tellg());
  while (std::getline(In, Line)) {
    Source Frame(Line);
    std::string Kw = Frame.str();
    if (Kw != "begin")
      break;
    std::string Kind = Frame.str();
    std::string Name = Frame.str();
    if (Frame.bad() || !Frame.done() || (Kind != "ok" && Kind != "fail"))
      break;

    std::string Body;
    if (!std::getline(In, Body))
      break;
    std::string EndLine;
    if (!std::getline(In, EndLine))
      break;
    Source EndFrame(EndLine);
    if (EndFrame.str() != "end" || EndFrame.str() != Kind ||
        EndFrame.str() != Name || EndFrame.bad() || !EndFrame.done())
      break;

    Source S(Body);
    if (Kind == "ok") {
      ProgramRunResult R = serde::getResult(S);
      if (S.bad() || !S.done() || R.Name != Name)
        break;
      J.Results[Name] = std::move(R);
    } else {
      JournaledFailure F = serde::getFailure(S);
      if (S.bad() || !S.done())
        break;
      J.Failures[Name] = std::move(F);
    }
    J.CleanBytes = static_cast<uint64_t>(In.tellg());
  }
  return J;
}

//===----------------------------------------------------------------------===//
// SuiteJournalWriter
//===----------------------------------------------------------------------===//

bool SuiteJournalWriter::open(const std::string &Path, uint64_t Fingerprint,
                              std::string *Err) {
  close();
  // Append mode: a resumed run extends the journal it loaded. When the
  // file already has content the header must match (same format, same
  // fingerprint) — validated by re-loading it.
  bool WriteHeader = true;
  {
    std::ifstream Probe(Path);
    if (Probe && Probe.peek() != std::ifstream::traits_type::eof()) {
      std::string LoadErr;
      auto Existing = SuiteJournal::load(Path, Fingerprint, &LoadErr);
      if (!Existing) {
        if (Err)
          *Err = "cannot append to journal: " + LoadErr;
        return false;
      }
      WriteHeader = false;
      // Cut off a torn tail before appending: records written after
      // the tear would otherwise be dropped by every future load.
      if (::truncate(Path.c_str(), static_cast<off_t>(Existing->CleanBytes))
          != 0) {
        if (Err)
          *Err = "cannot truncate torn journal tail: " + Path;
        return false;
      }
    }
  }
  Out = std::fopen(Path.c_str(), "ab");
  if (!Out) {
    if (Err)
      *Err = "cannot open journal for append: " + Path;
    return false;
  }
  if (WriteHeader) {
    std::fprintf(Out, "%s\nfingerprint %016llx\n", JournalMagic,
                 static_cast<unsigned long long>(Fingerprint));
    std::fflush(Out);
  }
  return true;
}

void SuiteJournalWriter::append(const ProgramRunResult &R) {
  if (!Out)
    return;
  Sink S;
  serde::putResult(S, R);
  std::string Rec;
  std::string Name = recio::escToken(R.Name);
  Rec.reserve(S.line().size() + 2 * Name.size() + 32);
  Rec += "begin ok " + Name + "\n";
  Rec += S.line();
  Rec += "\nend ok " + Name + "\n";
  // One write + flush per record: a kill between appends loses
  // nothing; a kill mid-append loses exactly the (droppable) tail.
  std::fwrite(Rec.data(), 1, Rec.size(), Out);
  std::fflush(Out);
}

void SuiteJournalWriter::appendFailure(const std::string &Program,
                                       PipelineStage Stage,
                                       const std::string &Reason,
                                       double StageWallMs) {
  if (!Out)
    return;
  Sink S;
  serde::putFailure(S, Stage, Reason, StageWallMs);
  std::string Rec;
  std::string Name = recio::escToken(Program);
  Rec += "begin fail " + Name + "\n";
  Rec += S.line();
  Rec += "\nend fail " + Name + "\n";
  std::fwrite(Rec.data(), 1, Rec.size(), Out);
  std::fflush(Out);
}

void SuiteJournalWriter::close() {
  if (Out) {
    std::fclose(Out);
    Out = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t
hcvliw::suiteJournalFingerprint(const PipelineOptions &Opts,
                                const std::vector<BenchmarkProgram> &Programs) {
  FnvHasher H;
  H.mix(1); // format/contract version

  // The program list: names plus the structural identity of every loop.
  H.mix(Programs.size());
  for (const BenchmarkProgram &P : Programs) {
    H.mix(P.Name.size());
    for (char C : P.Name)
      H.mix(static_cast<unsigned char>(C));
    H.mix(P.Loops.size());
    for (const Loop &L : P.Loops) {
      H.mix(L.structuralFingerprint());
      H.mix(L.TripCount);
    }
  }

  // Every pipeline option the per-program computation reads.
  H.mix(Opts.Buses);
  H.mix(Opts.NumClusters);
  H.mix(Opts.MenuSize ? 1u + *Opts.MenuSize : 0u);
  H.mixDouble(Opts.Breakdown.CacheShare);
  H.mixDouble(Opts.Breakdown.IcnShare);
  H.mixDouble(Opts.Breakdown.ClusterLeakageFrac);
  H.mixDouble(Opts.Breakdown.CacheLeakageFrac);
  H.mixDouble(Opts.Breakdown.IcnLeakageFrac);
  H.mixDouble(Opts.Tech.Alpha);
  H.mixDouble(Opts.Tech.SubthresholdSlopeV);
  H.mixDouble(Opts.Tech.OverdriveMargin);
  const DesignSpaceOptions &Sp = Opts.Space;
  H.mixVector(Sp.FastFactors);
  H.mixVector(Sp.SlowRatios);
  H.mix(Sp.NumFastClusters);
  H.mixVector(Sp.ClusterVddGrid);
  H.mixVector(Sp.IcnVddGrid);
  H.mixVector(Sp.CacheVddGrid);
  H.mixVector(Sp.HomogFactors);
  H.mixVector(Sp.HomogVddGrid);
  H.mix(Opts.Part.ED2Objective ? 1u : 2u);
  H.mix(Opts.Part.PrePlaceRecurrences ? 1u : 2u);
  H.mix(Opts.Part.MaxRefinePasses);
  H.mix(Opts.Part.MaxRefineMacros);
  H.mix(Opts.Part.CoarsestPerCluster);
  H.mix(Opts.Part.MaxFMPasses);
  H.mixDouble(Opts.ProgramBudgetNs);
  H.mix(Opts.MaxITSteps);
  H.mix(Opts.SimCheckIterations);
  H.mix(Opts.LoopEffortDeadline);
  H.mix(Opts.DegradeToEstimate ? 1u : 2u);
  return H.digest();
}
