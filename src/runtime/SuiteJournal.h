//===- runtime/SuiteJournal.h - Suite checkpoint / resume --------*- C++ -*-===//
///
/// \file
/// Durable per-program checkpointing for SuiteRunner: as each program
/// of a suite completes (successfully or not), its full result record
/// is appended to a versioned journal file and flushed, so a killed run
/// loses at most the programs still in flight. A later run loads the
/// journal and passes it back through SuiteOptions::ResumeFrom;
/// journaled programs are spliced into the SuiteResult without being
/// re-executed, and — because every per-program computation is a pure
/// function of (program, session options) — the merged result is
/// bit-identical to an uninterrupted run in every deterministic field
/// (the one exception is SuiteFailure::StageWallMs, which was never
/// part of the determinism contract: resumed failures carry the wall
/// time of the run that recorded them).
///
/// Format: a line-oriented text file. Header:
///
///   hcvliw-suite-journal v1
///   fingerprint <hex>
///
/// then framed records ("begin ok <name>" ... "end ok <name>", or
/// "begin fail <name>" ... "end fail <name>"). Doubles are serialized
/// as hex-floats (%a) and Rationals as num/den, so every value
/// round-trips exactly. A record whose end frame is missing (the run
/// died mid-append) is detected and dropped; everything before it
/// loads. The fingerprint hashes the program list (names + structural
/// loop fingerprints) and every pipeline option the per-program
/// computation reads; load() refuses a journal whose fingerprint does
/// not match the resuming session, so a resume can never splice results
/// computed under different options.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_SUITEJOURNAL_H
#define HCVLIW_RUNTIME_SUITEJOURNAL_H

#include "core/HeterogeneousPipeline.h"
#include "workloads/SpecFPSuite.h"

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hcvliw {

struct SuiteFailure;

/// Everything the resuming run needs about one journaled failure.
struct JournaledFailure {
  PipelineStage Stage = PipelineStage::Profiling;
  std::string Reason;
  double StageWallMs = 0;
};

/// A loaded journal: completed results and failures keyed by program.
struct SuiteJournal {
  uint64_t Fingerprint = 0;
  std::map<std::string, ProgramRunResult> Results;
  std::map<std::string, JournaledFailure> Failures;
  /// Byte length of the intact prefix load() parsed (header + complete
  /// records). Shorter than the file when a torn tail was dropped;
  /// SuiteJournalWriter::open truncates to it before appending, so
  /// records appended by a retry are never hidden behind the tear.
  uint64_t CleanBytes = 0;

  size_t numRecords() const { return Results.size() + Failures.size(); }

  /// Loads \p Path, dropping a torn trailing record. std::nullopt (with
  /// \p Err filled when non-null) when the file is missing, the header
  /// is malformed, or \p ExpectFingerprint is nonzero and differs.
  static std::optional<SuiteJournal> load(const std::string &Path,
                                          uint64_t ExpectFingerprint = 0,
                                          std::string *Err = nullptr);
};

/// Appending writer. open() writes (or re-validates) the header; every
/// append*() writes one framed record and flushes, so a kill between
/// appends loses nothing and a kill mid-append loses one droppable
/// record.
class SuiteJournalWriter {
  std::FILE *Out = nullptr;

public:
  SuiteJournalWriter() = default;
  ~SuiteJournalWriter() { close(); }
  SuiteJournalWriter(const SuiteJournalWriter &) = delete;
  SuiteJournalWriter &operator=(const SuiteJournalWriter &) = delete;

  /// Opens \p Path for appending, writing the v1 header when the file
  /// is new or empty. False (with \p Err) on IO failure.
  bool open(const std::string &Path, uint64_t Fingerprint,
            std::string *Err = nullptr);
  bool isOpen() const { return Out != nullptr; }
  void append(const ProgramRunResult &R);
  void appendFailure(const std::string &Program, PipelineStage Stage,
                     const std::string &Reason, double StageWallMs);
  void close();
};

/// The options/program-list identity journals are bound to (see file
/// header). Pure function of its inputs.
uint64_t suiteJournalFingerprint(const PipelineOptions &Opts,
                                 const std::vector<BenchmarkProgram> &Programs);

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_SUITEJOURNAL_H
