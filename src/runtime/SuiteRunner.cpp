//===- runtime/SuiteRunner.cpp - Parallel suite execution -------------------===//

#include "runtime/SuiteRunner.h"

#include "obs/Stopwatch.h"
#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>

using namespace hcvliw;

double SuiteResult::meanRatio() const { return mean(ED2Ratios); }

std::string hcvliw::shortSpecName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

SuiteResult SuiteRunner::run(const std::vector<BenchmarkProgram> &Programs,
                             const SuiteOptions &Opts) {
  struct Slot {
    std::optional<ProgramRunResult> Res;
    std::optional<MeasuredFrontier> Frontier;
    PipelineError Err;
  };
  const size_t N = Programs.size();
  std::vector<Slot> Slots(N);

  obs::Span SuiteSp(&S.tracer(), "suite.run");
  if (SuiteSp.active())
    SuiteSp.arg("programs", static_cast<int64_t>(N));

  std::mutex ProgressMutex;
  size_t Completed = 0;

  auto runOne = [&](size_t I) {
    Slot &S_ = Slots[I];
    obs::Span ProgSp(&S.tracer(), "program:", Programs[I].Name);
    obs::Stopwatch SW;
    S_.Res = S.pipeline().runProgram(Programs[I], &S_.Err);
    // The measured frontier reuses the program's profile; exploration
    // hits the session EvalCache and the argmin point's schedules hit
    // the ScheduleCache entries step 4 just filled.
    if (Opts.MeasureFrontier && S_.Res)
      S_.Frontier = FrontierMeasurer(S).measure(
          Programs[I].Name, Programs[I].Loops, S_.Res->Profile);
    S.metrics().observeMs("stage.program.ms", SW.elapsedMs());
    if (ProgSp.active())
      ProgSp.arg("ok", S_.Res.has_value() ? 1 : 0);
    ProgSp.close();
    if (!Opts.OnProgramDone)
      return;
    // Streamed completion: serialized, in completion order (which is
    // scheduling-dependent; the SuiteResult reduction below is not).
    std::lock_guard<std::mutex> Lock(ProgressMutex);
    SuiteProgress P;
    P.Completed = ++Completed;
    P.Total = N;
    P.Program = Programs[I].Name;
    P.Ok = S_.Res.has_value();
    SuiteFailure F;
    if (P.Ok) {
      P.ED2Ratio = S_.Res->ED2Ratio;
    } else {
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = S_.Err.Reason;
      F.StageWallMs = S_.Err.StageWallMs;
      P.Failure = &F;
    }
    Opts.OnProgramDone(P);
  };

  // Outer fan-out with the nested-parallelism budget: ProgramLanes
  // strided lanes claim programs; each program's exploration then
  // nests on the same pool, so spare threads help whichever level has
  // work. Slot-indexed writes keep the result thread-count-invariant.
  size_t Lanes = Opts.ProgramLanes == 0
                     ? N
                     : std::min<size_t>(Opts.ProgramLanes, N);
  if (Lanes == N) {
    S.pool().parallelFor(N, runOne);
  } else {
    S.pool().parallelFor(Lanes, [&](size_t Lane) {
      for (size_t I = Lane; I < N; I += Lanes)
        runOne(I);
    });
  }

  // Serial reduction in suite order.
  SuiteResult R;
  for (size_t I = 0; I < N; ++I) {
    Slot &S_ = Slots[I];
    if (S_.Res) {
      R.Names.push_back(Programs[I].Name);
      R.ED2Ratios.push_back(S_.Res->ED2Ratio);
      R.Details.push_back(std::move(*S_.Res));
      if (S_.Frontier)
        R.Frontiers.push_back(std::move(*S_.Frontier));
    } else {
      SuiteFailure F;
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = std::move(S_.Err.Reason);
      F.StageWallMs = S_.Err.StageWallMs;
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}

SuiteResult SuiteRunner::runSpecFP(const SuiteOptions &Opts) {
  return run(buildSpecFPSuite(), Opts);
}
