//===- runtime/SuiteRunner.cpp - Parallel suite execution -------------------===//

#include "runtime/SuiteRunner.h"

#include "obs/Stopwatch.h"
#include "support/HashUtil.h"
#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>

using namespace hcvliw;

double SuiteResult::meanRatio() const { return mean(ED2Ratios); }

std::string hcvliw::shortSpecName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

unsigned hcvliw::suiteShardOf(const std::string &Name, unsigned ShardCount) {
  FnvHasher H;
  for (char C : Name)
    H.mix(static_cast<unsigned char>(C));
  return static_cast<unsigned>(H.digest() % ShardCount);
}

SuiteResult SuiteRunner::run(const std::vector<BenchmarkProgram> &Programs,
                             const SuiteOptions &Opts) {
  struct Slot {
    std::optional<ProgramRunResult> Res;
    std::optional<MeasuredFrontier> Frontier;
    PipelineError Err;
  };
  const size_t N = Programs.size();

  // Frontiers are not journalable (the journal schema is per-program
  // pure results only), so a frontier run combined with durability or
  // sharding options could only drop them silently — refuse instead.
  if (Opts.MeasureFrontier &&
      (!Opts.JournalPath.empty() || Opts.ResumeFrom || Opts.ShardCount > 0))
    throw std::runtime_error(
        "frontier runs cannot be journaled, resumed or sharded (measured "
        "frontiers are not journalable); drop MeasureFrontier or the "
        "journal/resume/shard options");
  if (Opts.ShardCount > 0 && Opts.ShardIndex >= Opts.ShardCount)
    throw std::runtime_error("shard index " +
                             std::to_string(Opts.ShardIndex) +
                             " out of range for " +
                             std::to_string(Opts.ShardCount) + " shards");

  std::vector<Slot> Slots(N);

  // --- shard ownership -----------------------------------------------------
  // Stable per-name hash: ownership depends only on (name, count), so
  // any process computing the same partition agrees with this one.
  std::vector<char> Owned(N, 1);
  size_t NumOwned = N;
  if (Opts.ShardCount > 0) {
    NumOwned = 0;
    for (size_t I = 0; I < N; ++I) {
      Owned[I] =
          suiteShardOf(Programs[I].Name, Opts.ShardCount) == Opts.ShardIndex
              ? 1
              : 0;
      NumOwned += Owned[I];
    }
  }

  // --- checkpoint / resume -------------------------------------------------
  const SuiteJournal *Resume = Opts.ResumeFrom;
  const bool Journaling = !Opts.JournalPath.empty();
  uint64_t Fingerprint = 0;
  if (Resume || Journaling)
    // Over the FULL program list even when sharded: every shard of one
    // suite shares one fingerprint, so shard journals merge (and a
    // merged journal resumes an unsharded run) without re-keying.
    Fingerprint = suiteJournalFingerprint(S.pipelineOptions(), Programs);
  if (Resume && Resume->Fingerprint != Fingerprint)
    throw std::runtime_error(
        "suite journal was recorded under different options or programs "
        "(fingerprint mismatch); refusing to resume from it");
  // Prefilled slots are complete before the fan-out starts; runOne
  // skips them, the reduction treats them like freshly computed ones.
  std::vector<char> Prefilled(N, 0);
  if (Resume) {
    for (size_t I = 0; I < N; ++I) {
      if (!Owned[I])
        continue;
      if (auto It = Resume->Results.find(Programs[I].Name);
          It != Resume->Results.end()) {
        Slots[I].Res = It->second;
        Prefilled[I] = 1;
      } else if (auto It2 = Resume->Failures.find(Programs[I].Name);
                 It2 != Resume->Failures.end()) {
        Slots[I].Err.Stage = It2->second.Stage;
        Slots[I].Err.Reason = It2->second.Reason;
        Slots[I].Err.StageWallMs = It2->second.StageWallMs;
        Prefilled[I] = 1;
      }
    }
  }
  SuiteJournalWriter Journal;
  std::mutex JournalMutex;
  if (Journaling) {
    std::string JErr;
    if (!Journal.open(Opts.JournalPath, Fingerprint, &JErr))
      throw std::runtime_error(JErr);
  }

  obs::Span SuiteSp(&S.tracer(), "suite.run");
  if (SuiteSp.active()) {
    SuiteSp.arg("programs", static_cast<int64_t>(N));
    if (Opts.ShardCount > 0) {
      SuiteSp.arg("shard", static_cast<int64_t>(Opts.ShardIndex));
      SuiteSp.arg("shards", static_cast<int64_t>(Opts.ShardCount));
      SuiteSp.arg("owned", static_cast<int64_t>(NumOwned));
    }
  }

  std::mutex ProgressMutex;
  size_t Completed = 0;

  auto runOne = [&](size_t I) {
    Slot &S_ = Slots[I];
    if (!Prefilled[I]) {
      obs::Span ProgSp(&S.tracer(), "program:", Programs[I].Name);
      obs::Stopwatch SW;
      // Containment: runProgram converts its own stage exceptions to
      // PipelineError already; this backstop catches everything else a
      // job can throw (the pool.job fault site, the frontier measurer,
      // a defect in the glue here) so one program's crash becomes one
      // SuiteFailure record, never a dead suite. The WorkerPool's own
      // capture (WorkerPool.h) stays the last line of defense for
      // exceptions escaping the OnProgramDone callback below.
      try {
        HCVLIW_FAULT_POINT(&S.faultInjector(), "pool.job", Programs[I].Name);
        S_.Res = S.pipeline().runProgram(Programs[I], &S_.Err);
        // The measured frontier reuses the program's profile;
        // exploration hits the session EvalCache and the argmin point's
        // schedules hit the ScheduleCache entries step 4 just filled.
        if (Opts.MeasureFrontier && S_.Res)
          S_.Frontier = FrontierMeasurer(S).measure(
              Programs[I].Name, Programs[I].Loops, S_.Res->Profile);
      } catch (const std::exception &E) {
        S_.Res.reset();
        S_.Frontier.reset();
        S_.Err.Stage = PipelineStage::Profiling;
        S_.Err.Reason = std::string("worker job exception: ") + E.what();
        S_.Err.StageWallMs = SW.elapsedMs();
      } catch (...) {
        S_.Res.reset();
        S_.Frontier.reset();
        S_.Err.Stage = PipelineStage::Profiling;
        S_.Err.Reason = "worker job exception: unknown exception";
        S_.Err.StageWallMs = SW.elapsedMs();
      }
      S.metrics().observeMs("stage.program.ms", SW.elapsedMs());
      if (ProgSp.active())
        ProgSp.arg("ok", S_.Res.has_value() ? 1 : 0);
      ProgSp.close();
      // Checkpoint the completed program (resumed ones are already in
      // the file). One record per append, flushed inside.
      if (Journaling) {
        std::lock_guard<std::mutex> JLock(JournalMutex);
        if (S_.Res)
          Journal.append(*S_.Res);
        else
          Journal.appendFailure(Programs[I].Name, S_.Err.Stage, S_.Err.Reason,
                                S_.Err.StageWallMs);
      }
    }
    if (!Opts.OnProgramDone)
      return;
    // Streamed completion: serialized, in completion order (which is
    // scheduling-dependent; the SuiteResult reduction below is not).
    std::lock_guard<std::mutex> Lock(ProgressMutex);
    SuiteProgress P;
    P.Completed = ++Completed;
    P.Total = NumOwned;
    P.Program = Programs[I].Name;
    P.Ok = S_.Res.has_value();
    SuiteFailure F;
    if (P.Ok) {
      P.ED2Ratio = S_.Res->ED2Ratio;
    } else {
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = S_.Err.Reason;
      F.StageWallMs = S_.Err.StageWallMs;
      P.Failure = &F;
    }
    Opts.OnProgramDone(P);
  };

  // Outer fan-out with the nested-parallelism budget: ProgramLanes
  // strided lanes claim programs; each program's exploration then
  // nests on the same pool, so spare threads help whichever level has
  // work. Slot-indexed writes keep the result thread-count-invariant.
  std::vector<size_t> OwnedIdx;
  OwnedIdx.reserve(NumOwned);
  for (size_t I = 0; I < N; ++I)
    if (Owned[I])
      OwnedIdx.push_back(I);
  size_t Lanes = Opts.ProgramLanes == 0
                     ? NumOwned
                     : std::min<size_t>(Opts.ProgramLanes, NumOwned);
  if (Lanes == NumOwned) {
    S.pool().parallelFor(NumOwned, [&](size_t J) { runOne(OwnedIdx[J]); });
  } else if (Lanes > 0) {
    S.pool().parallelFor(Lanes, [&](size_t Lane) {
      for (size_t J = Lane; J < NumOwned; J += Lanes)
        runOne(OwnedIdx[J]);
    });
  }

  // Serial reduction in suite order (owned programs only: a shard's
  // result covers exactly its partition, the orchestrator reassembles
  // the whole from the shards' journals).
  SuiteResult R;
  for (size_t I = 0; I < N; ++I) {
    if (!Owned[I])
      continue;
    Slot &S_ = Slots[I];
    if (S_.Res) {
      R.Names.push_back(Programs[I].Name);
      R.ED2Ratios.push_back(S_.Res->ED2Ratio);
      R.Details.push_back(std::move(*S_.Res));
      if (S_.Frontier)
        R.Frontiers.push_back(std::move(*S_.Frontier));
    } else {
      SuiteFailure F;
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = std::move(S_.Err.Reason);
      F.StageWallMs = S_.Err.StageWallMs;
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}

SuiteResult SuiteRunner::runSpecFP(const SuiteOptions &Opts) {
  return run(buildSpecFPSuite(), Opts);
}
