//===- runtime/SuiteRunner.cpp - Parallel suite execution -------------------===//

#include "runtime/SuiteRunner.h"

#include "obs/Stopwatch.h"
#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>

using namespace hcvliw;

double SuiteResult::meanRatio() const { return mean(ED2Ratios); }

std::string hcvliw::shortSpecName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

SuiteResult SuiteRunner::run(const std::vector<BenchmarkProgram> &Programs,
                             const SuiteOptions &Opts) {
  struct Slot {
    std::optional<ProgramRunResult> Res;
    std::optional<MeasuredFrontier> Frontier;
    PipelineError Err;
  };
  const size_t N = Programs.size();
  std::vector<Slot> Slots(N);

  // --- checkpoint / resume -------------------------------------------------
  // Frontiers are not journaled, so frontier runs neither journal nor
  // resume (SuiteOptions doc).
  const SuiteJournal *Resume =
      Opts.MeasureFrontier ? nullptr : Opts.ResumeFrom;
  const bool Journaling = !Opts.MeasureFrontier && !Opts.JournalPath.empty();
  uint64_t Fingerprint = 0;
  if (Resume || Journaling)
    Fingerprint = suiteJournalFingerprint(S.pipelineOptions(), Programs);
  if (Resume && Resume->Fingerprint != Fingerprint)
    throw std::runtime_error(
        "suite journal was recorded under different options or programs "
        "(fingerprint mismatch); refusing to resume from it");
  // Prefilled slots are complete before the fan-out starts; runOne
  // skips them, the reduction treats them like freshly computed ones.
  std::vector<char> Prefilled(N, 0);
  if (Resume) {
    for (size_t I = 0; I < N; ++I) {
      if (auto It = Resume->Results.find(Programs[I].Name);
          It != Resume->Results.end()) {
        Slots[I].Res = It->second;
        Prefilled[I] = 1;
      } else if (auto It2 = Resume->Failures.find(Programs[I].Name);
                 It2 != Resume->Failures.end()) {
        Slots[I].Err.Stage = It2->second.Stage;
        Slots[I].Err.Reason = It2->second.Reason;
        Slots[I].Err.StageWallMs = It2->second.StageWallMs;
        Prefilled[I] = 1;
      }
    }
  }
  SuiteJournalWriter Journal;
  std::mutex JournalMutex;
  if (Journaling) {
    std::string JErr;
    if (!Journal.open(Opts.JournalPath, Fingerprint, &JErr))
      throw std::runtime_error(JErr);
  }

  obs::Span SuiteSp(&S.tracer(), "suite.run");
  if (SuiteSp.active())
    SuiteSp.arg("programs", static_cast<int64_t>(N));

  std::mutex ProgressMutex;
  size_t Completed = 0;

  auto runOne = [&](size_t I) {
    Slot &S_ = Slots[I];
    if (!Prefilled[I]) {
      obs::Span ProgSp(&S.tracer(), "program:", Programs[I].Name);
      obs::Stopwatch SW;
      // Containment: runProgram converts its own stage exceptions to
      // PipelineError already; this backstop catches everything else a
      // job can throw (the pool.job fault site, the frontier measurer,
      // a defect in the glue here) so one program's crash becomes one
      // SuiteFailure record, never a dead suite. The WorkerPool's own
      // capture (WorkerPool.h) stays the last line of defense for
      // exceptions escaping the OnProgramDone callback below.
      try {
        HCVLIW_FAULT_POINT(&S.faultInjector(), "pool.job", Programs[I].Name);
        S_.Res = S.pipeline().runProgram(Programs[I], &S_.Err);
        // The measured frontier reuses the program's profile;
        // exploration hits the session EvalCache and the argmin point's
        // schedules hit the ScheduleCache entries step 4 just filled.
        if (Opts.MeasureFrontier && S_.Res)
          S_.Frontier = FrontierMeasurer(S).measure(
              Programs[I].Name, Programs[I].Loops, S_.Res->Profile);
      } catch (const std::exception &E) {
        S_.Res.reset();
        S_.Frontier.reset();
        S_.Err.Stage = PipelineStage::Profiling;
        S_.Err.Reason = std::string("worker job exception: ") + E.what();
        S_.Err.StageWallMs = SW.elapsedMs();
      } catch (...) {
        S_.Res.reset();
        S_.Frontier.reset();
        S_.Err.Stage = PipelineStage::Profiling;
        S_.Err.Reason = "worker job exception: unknown exception";
        S_.Err.StageWallMs = SW.elapsedMs();
      }
      S.metrics().observeMs("stage.program.ms", SW.elapsedMs());
      if (ProgSp.active())
        ProgSp.arg("ok", S_.Res.has_value() ? 1 : 0);
      ProgSp.close();
      // Checkpoint the completed program (resumed ones are already in
      // the file). One record per append, flushed inside.
      if (Journaling) {
        std::lock_guard<std::mutex> JLock(JournalMutex);
        if (S_.Res)
          Journal.append(*S_.Res);
        else
          Journal.appendFailure(Programs[I].Name, S_.Err.Stage, S_.Err.Reason,
                                S_.Err.StageWallMs);
      }
    }
    if (!Opts.OnProgramDone)
      return;
    // Streamed completion: serialized, in completion order (which is
    // scheduling-dependent; the SuiteResult reduction below is not).
    std::lock_guard<std::mutex> Lock(ProgressMutex);
    SuiteProgress P;
    P.Completed = ++Completed;
    P.Total = N;
    P.Program = Programs[I].Name;
    P.Ok = S_.Res.has_value();
    SuiteFailure F;
    if (P.Ok) {
      P.ED2Ratio = S_.Res->ED2Ratio;
    } else {
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = S_.Err.Reason;
      F.StageWallMs = S_.Err.StageWallMs;
      P.Failure = &F;
    }
    Opts.OnProgramDone(P);
  };

  // Outer fan-out with the nested-parallelism budget: ProgramLanes
  // strided lanes claim programs; each program's exploration then
  // nests on the same pool, so spare threads help whichever level has
  // work. Slot-indexed writes keep the result thread-count-invariant.
  size_t Lanes = Opts.ProgramLanes == 0
                     ? N
                     : std::min<size_t>(Opts.ProgramLanes, N);
  if (Lanes == N) {
    S.pool().parallelFor(N, runOne);
  } else {
    S.pool().parallelFor(Lanes, [&](size_t Lane) {
      for (size_t I = Lane; I < N; I += Lanes)
        runOne(I);
    });
  }

  // Serial reduction in suite order.
  SuiteResult R;
  for (size_t I = 0; I < N; ++I) {
    Slot &S_ = Slots[I];
    if (S_.Res) {
      R.Names.push_back(Programs[I].Name);
      R.ED2Ratios.push_back(S_.Res->ED2Ratio);
      R.Details.push_back(std::move(*S_.Res));
      if (S_.Frontier)
        R.Frontiers.push_back(std::move(*S_.Frontier));
    } else {
      SuiteFailure F;
      F.Program = Programs[I].Name;
      F.Stage = S_.Err.Stage;
      F.Reason = std::move(S_.Err.Reason);
      F.StageWallMs = S_.Err.StageWallMs;
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}

SuiteResult SuiteRunner::runSpecFP(const SuiteOptions &Opts) {
  return run(buildSpecFPSuite(), Opts);
}
