//===- runtime/SuiteRunner.h - Parallel suite execution ----------*- C++ -*-===//
///
/// \file
/// First-class suite execution: fans HeterogeneousPipeline::runProgram
/// across the programs of a benchmark suite on a Session's worker
/// pool, while each program's design-space exploration nests on the
/// same pool — one thread budget governs both levels (the
/// nested-parallelism budget is the ProgramLanes option: how many
/// programs may be in flight at once; threads left over accelerate the
/// in-flight programs' candidate grids).
///
/// Replaces the seed's serial bench-side suite loop (the long-removed
/// bench/BenchUtil.h shim), with four contract upgrades:
///
///   - failed programs are not silently dropped: every failure appears
///     in SuiteResult::Failures as a structured record (program name,
///     pipeline stage, reason);
///   - failures are *contained*: a program whose job throws — an
///     injected fault, a bad_alloc, a defect anywhere under
///     runProgram — costs that one program (a SuiteFailure record),
///     never the suite or the process;
///   - per-program completion streams through SuiteOptions::
///     OnProgramDone (serialized; completion order is
///     scheduling-dependent, the SuiteResult is not);
///   - runs are durable: with SuiteOptions::JournalPath set, each
///     completed program is checkpointed to a journal file, and a
///     killed suite resumes via SuiteOptions::ResumeFrom with a merged
///     SuiteResult bit-identical to the uninterrupted run (see
///     runtime/SuiteJournal.h).
///
/// Determinism: each program's result is written to its own slot and
/// reduced in program order, and every per-program computation is a
/// pure function of (program, session options), so the SuiteResult is
/// bit-identical for any thread count and any ProgramLanes value.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_SUITERUNNER_H
#define HCVLIW_RUNTIME_SUITERUNNER_H

#include "runtime/FrontierMeasurer.h"
#include "runtime/Session.h"
#include "runtime/SuiteJournal.h"
#include "workloads/SpecFPSuite.h"

#include <functional>
#include <string>
#include <vector>

namespace hcvliw {

/// One failed program, with where, why, and for how long the failing
/// stage ran — so timeout-shaped failures (a stage grinding for
/// seconds before giving up) read differently from logic failures
/// (instant). Wall time is diagnostic only: it lives here on the
/// failure record, never inside any deterministic result.
struct SuiteFailure {
  std::string Program;
  PipelineStage Stage = PipelineStage::Profiling;
  std::string Reason;
  double StageWallMs = 0; ///< wall time of the failing stage
};

/// Streamed to OnProgramDone as each program completes.
struct SuiteProgress {
  size_t Completed = 0; ///< programs finished so far (this one included)
  size_t Total = 0;
  std::string Program;
  bool Ok = false;
  double ED2Ratio = 0; ///< valid when Ok
  const SuiteFailure *Failure = nullptr; ///< valid during the callback
};

struct SuiteOptions {
  /// Nested-parallelism budget: at most this many programs in flight
  /// at once (0 = one lane per program, i.e. the pool decides). With
  /// fewer lanes than pool threads, the spare threads speed up the
  /// in-flight programs' exploration grids instead.
  size_t ProgramLanes = 0;
  /// Called as each program completes (serialized under a mutex; may
  /// be invoked from any pool thread).
  std::function<void(const SuiteProgress &)> OnProgramDone;
  /// Also measure every successful program's Pareto frontier with real
  /// schedules (measure/FrontierMeasurer on the session pool and
  /// ScheduleCache) and fill SuiteResult::Frontiers. Incompatible with
  /// journaling and sharding (frontiers are not journaled, so a killed
  /// or sharded frontier run cannot be reassembled): run() throws
  /// std::runtime_error when JournalPath, ResumeFrom or ShardCount is
  /// combined with this — fail fast, never silently drop durability
  /// the caller asked for.
  bool MeasureFrontier = false;
  /// Deterministic shard selection: with ShardCount > 0, this run
  /// executes only the programs suiteShardOf() assigns to ShardIndex
  /// (stable per-name hash, any count — no divisibility assumption).
  /// The journal fingerprint still covers the FULL program list, so
  /// every shard of one suite shares one fingerprint and their
  /// journals merge into a resumable whole (dist/ShardOrchestrator).
  /// run() throws std::runtime_error when ShardIndex >= ShardCount.
  unsigned ShardIndex = 0;
  unsigned ShardCount = 0; ///< 0 = unsharded
  /// When non-empty, append each program's completed record (result or
  /// failure) to this journal file as it finishes, flushed per record —
  /// a killed run loses at most the programs still in flight. Resuming
  /// with the same path extends the same file. run() throws
  /// std::runtime_error when the journal cannot be opened or belongs to
  /// different options/programs (fingerprint mismatch).
  std::string JournalPath;
  /// A journal loaded from a previous (killed) run of the *same*
  /// programs under the *same* options: journaled programs are spliced
  /// into the SuiteResult without re-executing, and the merged result
  /// is bit-identical to an uninterrupted run (except SuiteFailure::
  /// StageWallMs, which is diagnostic wall time carried from the run
  /// that recorded it). run() throws std::runtime_error on a
  /// fingerprint mismatch. Non-owning; must outlive run().
  const SuiteJournal *ResumeFrom = nullptr;
};

struct SuiteResult {
  std::vector<std::string> Names;        ///< successful programs, suite order
  std::vector<double> ED2Ratios;         ///< parallel to Names
  std::vector<ProgramRunResult> Details; ///< parallel to Names
  /// Parallel to Names when SuiteOptions::MeasureFrontier was set
  /// (empty otherwise): each program's measured frontier.
  std::vector<MeasuredFrontier> Frontiers;
  std::vector<SuiteFailure> Failures;    ///< failed programs, suite order

  double meanRatio() const;
  size_t numPrograms() const { return Names.size() + Failures.size(); }
};

/// Strips the SPEC number prefix ("171.swim" -> "swim").
std::string shortSpecName(const std::string &Name);

/// The shard that owns \p Name under \p ShardCount-way sharding: a
/// stable FNV hash of the program name, so ownership depends only on
/// (name, count) — not on list order, thread count, or divisibility.
unsigned suiteShardOf(const std::string &Name, unsigned ShardCount);

class SuiteRunner {
  Session &S;

public:
  explicit SuiteRunner(Session &Sess) : S(Sess) {}

  /// Runs every program of \p Programs under the session's options.
  /// Per-program exceptions are contained as SuiteFailure records; the
  /// only throws out of run() itself are journal configuration errors
  /// (see SuiteOptions::JournalPath / ResumeFrom).
  SuiteResult run(const std::vector<BenchmarkProgram> &Programs,
                  const SuiteOptions &Opts = SuiteOptions());

  /// The paper's ten-program synthetic SPECfp suite.
  SuiteResult runSpecFP(const SuiteOptions &Opts = SuiteOptions());
};

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_SUITERUNNER_H
