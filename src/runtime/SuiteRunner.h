//===- runtime/SuiteRunner.h - Parallel suite execution ----------*- C++ -*-===//
///
/// \file
/// First-class suite execution: fans HeterogeneousPipeline::runProgram
/// across the programs of a benchmark suite on a Session's worker
/// pool, while each program's design-space exploration nests on the
/// same pool — one thread budget governs both levels (the
/// nested-parallelism budget is the ProgramLanes option: how many
/// programs may be in flight at once; threads left over accelerate the
/// in-flight programs' candidate grids).
///
/// Replaces the seed's serial bench-side suite loop (the long-removed
/// bench/BenchUtil.h shim), with two contract upgrades:
///
///   - failed programs are not silently dropped: every failure appears
///     in SuiteResult::Failures as a structured record (program name,
///     pipeline stage, reason);
///   - per-program completion streams through SuiteOptions::
///     OnProgramDone (serialized; completion order is
///     scheduling-dependent, the SuiteResult is not).
///
/// Determinism: each program's result is written to its own slot and
/// reduced in program order, and every per-program computation is a
/// pure function of (program, session options), so the SuiteResult is
/// bit-identical for any thread count and any ProgramLanes value.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_SUITERUNNER_H
#define HCVLIW_RUNTIME_SUITERUNNER_H

#include "runtime/FrontierMeasurer.h"
#include "runtime/Session.h"
#include "workloads/SpecFPSuite.h"

#include <functional>
#include <string>
#include <vector>

namespace hcvliw {

/// One failed program, with where, why, and for how long the failing
/// stage ran — so timeout-shaped failures (a stage grinding for
/// seconds before giving up) read differently from logic failures
/// (instant). Wall time is diagnostic only: it lives here on the
/// failure record, never inside any deterministic result.
struct SuiteFailure {
  std::string Program;
  PipelineStage Stage = PipelineStage::Profiling;
  std::string Reason;
  double StageWallMs = 0; ///< wall time of the failing stage
};

/// Streamed to OnProgramDone as each program completes.
struct SuiteProgress {
  size_t Completed = 0; ///< programs finished so far (this one included)
  size_t Total = 0;
  std::string Program;
  bool Ok = false;
  double ED2Ratio = 0; ///< valid when Ok
  const SuiteFailure *Failure = nullptr; ///< valid during the callback
};

struct SuiteOptions {
  /// Nested-parallelism budget: at most this many programs in flight
  /// at once (0 = one lane per program, i.e. the pool decides). With
  /// fewer lanes than pool threads, the spare threads speed up the
  /// in-flight programs' exploration grids instead.
  size_t ProgramLanes = 0;
  /// Called as each program completes (serialized under a mutex; may
  /// be invoked from any pool thread).
  std::function<void(const SuiteProgress &)> OnProgramDone;
  /// Also measure every successful program's Pareto frontier with real
  /// schedules (measure/FrontierMeasurer on the session pool and
  /// ScheduleCache) and fill SuiteResult::Frontiers.
  bool MeasureFrontier = false;
};

struct SuiteResult {
  std::vector<std::string> Names;        ///< successful programs, suite order
  std::vector<double> ED2Ratios;         ///< parallel to Names
  std::vector<ProgramRunResult> Details; ///< parallel to Names
  /// Parallel to Names when SuiteOptions::MeasureFrontier was set
  /// (empty otherwise): each program's measured frontier.
  std::vector<MeasuredFrontier> Frontiers;
  std::vector<SuiteFailure> Failures;    ///< failed programs, suite order

  double meanRatio() const;
  size_t numPrograms() const { return Names.size() + Failures.size(); }
};

/// Strips the SPEC number prefix ("171.swim" -> "swim").
std::string shortSpecName(const std::string &Name);

class SuiteRunner {
  Session &S;

public:
  explicit SuiteRunner(Session &Sess) : S(Sess) {}

  /// Runs every program of \p Programs under the session's options.
  SuiteResult run(const std::vector<BenchmarkProgram> &Programs,
                  const SuiteOptions &Opts = SuiteOptions());

  /// The paper's ten-program synthetic SPECfp suite.
  SuiteResult runSpecFP(const SuiteOptions &Opts = SuiteOptions());
};

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_SUITERUNNER_H
