//===- runtime/WorkerPool.cpp - Reusable deterministic worker pool ----------===//

#include "runtime/WorkerPool.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

WorkerPool::WorkerPool(unsigned Threads) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  NumThreads = Threads;
  Workers.reserve(NumThreads - 1);
  for (unsigned T = 1; T < NumThreads; ++T)
    Workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Jobs.empty() && "WorkerPool destroyed with active jobs");
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

namespace {
/// Pre: queue mutex held. Erases \p J if still present: the thread
/// claiming a job's last slot removes it so no later claimer sees an
/// exhausted job.
template <typename Deque, typename JobT> void eraseJob(Deque &Jobs, JobT *J) {
  for (auto It = Jobs.begin(); It != Jobs.end(); ++It)
    if (*It == J) {
      Jobs.erase(It);
      return;
    }
}
} // namespace

/// Pre: Mutex held. Records one completed slot and wakes submitters
/// when the job is fully done. The job object is guaranteed alive here
/// because its submitter only returns (destroying the job) after
/// observing Done == N under the same mutex.
void WorkerPool::finishSlot(Job &J) {
  if (J.Done.fetch_add(1, std::memory_order_relaxed) + 1 == J.N)
    JobFinished.notify_all();
}

/// Pre: \p Lock holds Mutex; so again on return. Claims and runs slots
/// of \p J until none are left, removing J from the queue with the last
/// claim. Slot claims happen under the mutex, so a job still in the
/// queue always has an unclaimed slot.
void WorkerPool::drain(Job &J, std::unique_lock<std::mutex> &Lock) {
  while (J.Next.load(std::memory_order_relaxed) < J.N) {
    size_t Slot = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (J.Next.load(std::memory_order_relaxed) >= J.N)
      eraseJob(Jobs, &J);
    Lock.unlock();
    try {
      (*J.Fn)(Slot);
    } catch (...) {
      J.Errs[Slot] = std::current_exception();
    }
    Lock.lock();
    finishSlot(J);
  }
}

void WorkerPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkAvailable.wait(Lock, [this] { return Stopping || !Jobs.empty(); });
    if (Stopping)
      return;
    Job *J = Jobs.front();
    if (J->Next.load(std::memory_order_relaxed) >= J->N) {
      Jobs.pop_front();
      continue;
    }
    size_t Slot = J->Next.fetch_add(1, std::memory_order_relaxed);
    if (J->Next.load(std::memory_order_relaxed) >= J->N)
      eraseJob(Jobs, J);
    Lock.unlock();
    try {
      (*J->Fn)(Slot);
    } catch (...) {
      J->Errs[Slot] = std::current_exception();
    }
    Lock.lock();
    finishSlot(*J);
  }
}

void WorkerPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (NumThreads <= 1 || N == 1) {
    // Same containment policy as the threaded path: every slot runs,
    // then the lowest-numbered captured exception is rethrown.
    std::exception_ptr First;
    for (size_t I = 0; I < N; ++I) {
      try {
        Fn(I);
      } catch (...) {
        if (!First)
          First = std::current_exception();
      }
    }
    if (First)
      std::rethrow_exception(First);
    return;
  }

  std::vector<std::exception_ptr> Errs(N);
  Job J;
  J.Fn = &Fn;
  J.N = N;
  J.Errs = Errs.data();
  std::unique_lock<std::mutex> Lock(Mutex);
  Jobs.push_back(&J);
  WorkAvailable.notify_all();
  // The submitter works on its own job too: essential under nesting,
  // where every other worker may be busy (or blocked on a deeper job)
  // and the only guaranteed progress is the submitter's.
  drain(J, Lock);
  JobFinished.wait(Lock, [&J] {
    return J.Done.load(std::memory_order_relaxed) == J.N;
  });
  Lock.unlock();
  // Deterministic rethrow: the lowest throwing slot, for any thread
  // count and any interleaving.
  for (std::exception_ptr &E : Errs)
    if (E)
      std::rethrow_exception(E);
}

void WorkerPool::parallelFor(size_t N, const RNG &Root,
                             const std::function<void(size_t, RNG &)> &Fn) {
  parallelFor(N, [&Root, &Fn](size_t Slot) {
    RNG Stream = Root.fork(Slot);
    Fn(Slot, Stream);
  });
}
