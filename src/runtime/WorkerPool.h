//===- runtime/WorkerPool.h - Reusable deterministic worker pool -*- C++ -*-===//
///
/// \file
/// The worker-pool substrate shared by every parallel layer of the
/// library (design-space exploration, suite execution). Extracted from
/// ExplorationEngine so outer loops (programs) and inner loops
/// (candidate grids) fan out over the *same* threads instead of
/// spawning per-call.
///
/// Determinism contract: parallelFor(N, Fn) calls Fn(Slot) exactly once
/// for every Slot in [0, N). Which thread runs which slot is
/// scheduling-dependent, but a caller that writes its result into
/// element Slot of a pre-sized vector obtains a result identical to the
/// serial loop for any pool size. Randomized work items obtain their
/// stream by fork()ing a root RNG on the slot index (the RNG overload),
/// never by drawing from a shared generator, so random draws are also
/// independent of thread scheduling.
///
/// Nesting: parallelFor may be called from inside a work item. The
/// nested job is queued on the same pool and the submitting thread
/// participates in it (it claims the nested job's slots itself), so
/// nesting never deadlocks even when every other worker is busy; idle
/// workers help with whatever job is runnable, which is how the suite
/// runner's outer program loop and each program's inner candidate grid
/// share one thread budget.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_RUNTIME_WORKERPOOL_H
#define HCVLIW_RUNTIME_WORKERPOOL_H

#include "support/RNG.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcvliw {

class WorkerPool {
  /// One parallelFor invocation. Lives on the submitter's stack; the
  /// queue holds non-owning pointers for exactly the job's lifetime.
  struct Job {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t N = 0;
    /// Per-slot captured exceptions (submitter-owned array of N, one
    /// element per slot). A slot writes only its own element while it
    /// exclusively owns it, and the submitter reads only after
    /// observing Done == N under the mutex, so no lock is needed.
    std::exception_ptr *Errs = nullptr;
    std::atomic<size_t> Next{0}; ///< next unclaimed slot
    std::atomic<size_t> Done{0}; ///< completed slots
  };

  unsigned NumThreads; ///< parallelism degree (submitter included)
  std::vector<std::thread> Workers; ///< NumThreads - 1 helper threads
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable JobFinished;
  std::deque<Job *> Jobs;
  bool Stopping = false;

  void workerLoop();
  /// Claims and runs slots of \p J until none are left.
  void drain(Job &J, std::unique_lock<std::mutex> &Lock);
  void finishSlot(Job &J);

public:
  /// \p Threads is the total parallelism degree: the submitting thread
  /// plus Threads - 1 pool threads. 0 means hardware_concurrency();
  /// 1 means fully inline execution (no threads are spawned).
  explicit WorkerPool(unsigned Threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Total parallelism degree (>= 1).
  unsigned threads() const { return NumThreads; }

  /// Runs Fn(Slot) for every Slot in [0, N); returns when all have
  /// completed. Callable from any thread, including pool workers
  /// (nested jobs).
  ///
  /// Fn may throw. A throwing slot never takes down a worker thread or
  /// the process: the exception is captured in the slot's own cell,
  /// every other slot still runs to completion, and after all N slots
  /// have finished the *lowest-numbered* captured exception is rethrown
  /// on the submitting thread (the rest are dropped). The serial path
  /// (NumThreads <= 1 or N == 1) follows the identical
  /// run-everything-then-rethrow-lowest policy, so exception behavior —
  /// like results — is independent of the thread count. Callers that
  /// need every failure, not just the first, catch per slot and record
  /// into their slot-indexed output (SuiteRunner does).
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// As above, with a deterministic per-slot RNG stream forked off
  /// \p Root: Fn(Slot, Rng) sees Root.fork(Slot) regardless of which
  /// thread runs the slot.
  void parallelFor(size_t N, const RNG &Root,
                   const std::function<void(size_t, RNG &)> &Fn);
};

} // namespace hcvliw

#endif // HCVLIW_RUNTIME_WORKERPOOL_H
