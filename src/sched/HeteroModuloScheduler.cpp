//===- sched/HeteroModuloScheduler.cpp - Heterogeneous IMS ------------------===//
//
// Two interchangeable placement paths produce bit-identical schedules:
//
//   - runTicks: the production fast path on the plan's PlanGrid --
//     every clock quantity an exact int64 tick count, per-edge timing
//     constants precomputed (TickGraph), and the highest-priority
//     unplaced node selected through a rank-ordered bitset instead of a
//     linear rescan of the priority list.
//   - runRational: the retained exact-Rational reference, also the
//     automatic fallback when the plan's grid overflows int64.
//
// Both paths make the same decisions in the same order (tick arithmetic
// is Rational arithmetic scaled by ticksPerNs, exactly), which
// tests/sched/TickDomainTest pins over random loops and plans.
//
// All per-run storage lives in a SchedulerScratch (caller-provided for
// steady-state allocation-free sweeps, stack-local otherwise); scratch
// contents never carry information between runs.
//
//===----------------------------------------------------------------------===//

#include "sched/HeteroModuloScheduler.h"
#include "mcd/SyncModel.h"
#include "sched/TickGraph.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

static Rational periodOf(const PartitionedGraph &PG, const MachinePlan &Plan,
                         unsigned Node) {
  unsigned D = PG.node(Node).Domain;
  return D == PG.busDomain() ? Plan.Bus.PeriodNs : Plan.Clusters[D].PeriodNs;
}

static int64_t iiOf(const PartitionedGraph &PG, const MachinePlan &Plan,
                    unsigned Node) {
  unsigned D = PG.node(Node).Domain;
  return D == PG.busDomain() ? Plan.Bus.II : Plan.Clusters[D].II;
}

Rational hcvliw::edgeStartBound(const PartitionedGraph &PG,
                                const MachinePlan &Plan, const PGEdge &E,
                                const Rational &SrcStartNs) {
  Rational PSrc = periodOf(PG, Plan, E.Src);
  Rational PDst = periodOf(PG, Plan, E.Dst);
  Rational Ready = SrcStartNs + Rational(E.LatencyCycles) * PSrc;
  Rational Arrive = crossDomainArrival(Ready, PSrc, PDst);
  return Arrive - Rational(E.Distance) * Plan.ITNs;
}

bool hcvliw::computeAsapTimesInto(std::vector<Rational> &Start,
                                  const PartitionedGraph &PG,
                                  const MachinePlan &Plan) {
  Start.assign(PG.size(), Rational(0));
  // Longest-path fixpoint; with V nodes, a change in round V proves an
  // unsatisfiable (positive) dependence cycle for this IT.
  for (unsigned Round = 0; Round <= PG.size(); ++Round) {
    bool Changed = false;
    for (const PGEdge &E : PG.edges()) {
      Rational Bound = edgeStartBound(PG, Plan, E, Start[E.Src]);
      if (Start[E.Dst] < Bound) {
        // Starts are slot-aligned: round the bound up to the domain tick.
        Rational P = periodOf(PG, Plan, E.Dst);
        Rational Aligned = alignUpToTick(Bound, P);
        if (Start[E.Dst] < Aligned) {
          Start[E.Dst] = Aligned;
          Changed = true;
        }
      }
    }
    if (!Changed)
      return true;
  }
  return false;
}

std::optional<std::vector<Rational>>
hcvliw::computeAsapTimes(const PartitionedGraph &PG, const MachinePlan &Plan) {
  std::vector<Rational> Start;
  if (!computeAsapTimesInto(Start, PG, Plan))
    return std::nullopt;
  return Start;
}

HeteroModuloScheduler::HeteroModuloScheduler(const MachineDescription &M,
                                             const PartitionedGraph &Graph,
                                             const MachinePlan &ThePlan,
                                             const SchedulerOptions &O)
    : Machine(M), PG(Graph), Plan(ThePlan), Opts(O) {}

namespace {

/// The indexed ready structure of the tick path: one bit per priority
/// rank, set while the node holding that rank is unplaced. Selecting
/// the highest-priority unplaced node is a find-first-set over the
/// word array (O(N/64) worst case, first-word in the common case)
/// instead of the reference path's O(N) rescan of the priority list.
/// Operates on a caller-owned word buffer so sweeps reuse the storage.
class RankReadySet {
  std::vector<uint64_t> &Words;

public:
  RankReadySet(std::vector<uint64_t> &Storage, unsigned N) : Words(Storage) {
    Words.assign((N + 63) / 64, 0);
    for (unsigned R = 0; R < N; ++R)
      Words[R / 64] |= uint64_t(1) << (R % 64);
  }

  void insert(unsigned Rank) { Words[Rank / 64] |= uint64_t(1) << (Rank % 64); }
  void erase(unsigned Rank) { Words[Rank / 64] &= ~(uint64_t(1) << (Rank % 64)); }

  /// Lowest set rank, or -1 when all nodes are placed.
  int first() const {
    for (size_t W = 0; W < Words.size(); ++W)
      if (Words[W])
        return static_cast<int>(W * 64 +
                                static_cast<unsigned>(__builtin_ctzll(Words[W])));
    return -1;
  }
};

/// Sweep cap for the stage-compaction fixpoint of both arithmetic
/// forms. Each sweep only moves slots later (bounded by
/// MaxSlotMultiple * II), so the fixpoint exists; chains of
/// cross-iteration edges resolve one link per sweep, and real loops
/// settle in 2-3.
constexpr unsigned CompactMaxPasses = 8;

/// Occupant of (Domain, Kind, Slot) with the largest rank (the
/// lowest-priority victim of a forced placement), without materializing
/// the occupant list. Identical choice to scanning occupants() in unit
/// order and keeping the strictly-larger rank.
int victimByRank(ModuloReservationTable &MRT, unsigned Domain, FUKind Kind,
                 int64_t Slot, const std::vector<unsigned> &Rank) {
  int Victim = -1;
  unsigned Units = MRT.units(Domain, Kind);
  for (unsigned U = 0; U < Units; ++U) {
    int Occ = MRT.occupant(Domain, Kind, Slot, U);
    if (Occ < 0)
      continue;
    if (Victim < 0 || Rank[static_cast<unsigned>(Occ)] >
                          Rank[static_cast<unsigned>(Victim)])
      Victim = Occ;
  }
  return Victim;
}

} // namespace

SchedulerResult HeteroModuloScheduler::run(const TickGraph *Ticks,
                                           SchedulerScratch *Scratch,
                                           obs::Tracer *Trace) {
  obs::Span Sp(Trace, "sched.place");
  SchedulerScratch Local;
  SchedulerScratch &SS = Scratch ? *Scratch : Local;
  SchedulerResult R;
  bool Dispatched = false;
  if (Opts.UseTickGrid) {
    if (Ticks) {
      if (Ticks->valid()) {
        assert(&Ticks->graph() == &PG && "prebuilt tick graph mismatch");
        R = runTicks(*Ticks, SS);
        Dispatched = true;
      }
      // Caller already proved the plan has no grid: Rational fallback.
    } else if (auto T = TickGraph::build(PG, Plan)) {
      R = runTicks(*T, SS);
      Dispatched = true;
    }
  }
  if (!Dispatched) {
    R = runRational(SS);
    // Requested grid had no valid lowering: record the silent
    // tick->Rational degradation so callers can count it.
    R.FallbackRational = Opts.UseTickGrid;
  }
  if (Sp.active()) {
    Sp.arg("placements", static_cast<int64_t>(R.Placements));
    Sp.arg("ejections", static_cast<int64_t>(R.Ejections));
    Sp.arg("budget_used", static_cast<int64_t>(R.BudgetUsed));
    Sp.arg("ok", R.Success ? 1 : 0);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Tick-domain fast path
//===----------------------------------------------------------------------===//

SchedulerResult HeteroModuloScheduler::runTicks(const TickGraph &T,
                                                SchedulerScratch &SS) {
  SchedulerResult Result;
  unsigned N = PG.size();

  if (!T.computeAsapTicksInto(SS.Asap)) {
    Result.FailureReason = "recurrence infeasible at this IT";
    return Result;
  }
  const std::vector<int64_t> &Asap = SS.Asap;

  // Approximate ALAP against the ASAP horizon using the no-sync timing
  // rule backwards (priorities only; correctness never depends on it).
  int64_t Horizon = 0;
  for (unsigned I = 0; I < N; ++I)
    Horizon = std::max(Horizon, Asap[I]);
  std::vector<int64_t> &Alap = SS.Alap;
  Alap.assign(N, Horizon);
  std::vector<int64_t> &EdgeBack = SS.EdgeBack;
  EdgeBack.resize(PG.edges().size());
  for (unsigned EIx = 0; EIx < PG.edges().size(); ++EIx)
    // The backward rule's per-edge constant, from the TickGraph's
    // precomputed products: distance * IT - latency * period(src).
    EdgeBack[EIx] = T.edgeDistTicks(EIx) - T.edgeLatTicks(EIx);
  for (unsigned Round = 0; Round < N; ++Round) {
    bool Changed = false;
    for (unsigned EIx = 0; EIx < PG.edges().size(); ++EIx) {
      const PGEdge &E = PG.edge(EIx);
      int64_t Limit = Alap[E.Dst] + EdgeBack[EIx];
      if (Limit < Alap[E.Src]) {
        Alap[E.Src] = Limit;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  std::vector<SchedulerScratch::TickEntry> &Order = SS.TickOrder;
  Order.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Order[I] = {I, Alap[I] - Asap[I], Asap[I]};
  std::sort(Order.begin(), Order.end(),
            [](const SchedulerScratch::TickEntry &A,
               const SchedulerScratch::TickEntry &B) {
              if (A.Slack != B.Slack)
                return A.Slack < B.Slack;
              if (A.Asap != B.Asap)
                return A.Asap < B.Asap;
              return A.Node < B.Node;
            });
  std::vector<unsigned> &Rank = SS.Rank;
  std::vector<unsigned> &NodeOfRank = SS.NodeOfRank;
  Rank.resize(N);
  NodeOfRank.resize(N);
  for (unsigned I = 0; I < N; ++I) {
    Rank[Order[I].Node] = I;
    NodeOfRank[I] = Order[I].Node;
  }

  SS.MRT.reset(Machine, Plan);
  ModuloReservationTable &MRT = SS.MRT;
  SS.Placed.assign(N, 0);
  std::vector<uint8_t> &Placed = SS.Placed;
  SS.Slot.assign(N, 0);
  std::vector<int64_t> &Slot = SS.Slot;
  SS.Unit.assign(N, 0);
  std::vector<unsigned> &Unit = SS.Unit;
  SS.LastSlot.assign(N, INT64_MIN);
  std::vector<int64_t> &LastSlot = SS.LastSlot;
  RankReadySet Ready(SS.ReadyWords, N);

  auto startTicks = [&](unsigned Node) {
    return T.startTicks(Node, Slot[Node]);
  };

  auto eject = [&](unsigned Node) {
    assert(Placed[Node] && "ejecting an unplaced node");
    MRT.release(PG.node(Node).Domain, PG.node(Node).Kind, Slot[Node],
                Unit[Node], Node);
    Placed[Node] = 0;
    Ready.insert(Rank[Node]);
    ++Result.Ejections;
  };

  int64_t Budget = Opts.budgetFor(N);
  unsigned NumPlaced = 0;

  while (NumPlaced < N) {
    if (--Budget < 0) {
      Result.FailureReason = "scheduling budget exhausted";
      return Result;
    }
    ++Result.BudgetUsed;
    // Highest-priority unplaced node, from the rank-indexed ready set.
    int FirstRank = Ready.first();
    assert(FirstRank >= 0 && "no unplaced node despite NumPlaced < N");
    unsigned U = NodeOfRank[static_cast<unsigned>(FirstRank)];

    // Earliest slot from ASAP and placed predecessors.
    int64_t Earliest = Asap[U];
    for (unsigned EIx : PG.inEdges(U)) {
      const PGEdge &E = PG.edge(EIx);
      if (!Placed[E.Src])
        continue;
      Earliest = std::max(Earliest, T.edgeStartBound(EIx, startTicks(E.Src)));
    }
    int64_t E0 = ceilDivTick(Earliest, T.periodTicks(U));
    if (E0 < 0)
      E0 = 0;
    if (LastSlot[U] != INT64_MIN && E0 <= LastSlot[U])
      E0 = LastSlot[U] + 1; // Rau's progress rule on re-placement

    int64_t II = T.iiOf(U);
    if (E0 > Opts.MaxSlotMultiple * II) {
      Result.FailureReason = "slot bound exceeded (ejection runaway)";
      return Result;
    }

    const PGNode &Node = PG.node(U);
    // First resource-feasible slot in the II-slot window above E0 (the
    // modulo-free scan; identical choice to probing slot by slot).
    int64_t S = E0;
    int GotUnit = MRT.reserveFirstFree(Node.Domain, Node.Kind, E0, U, S);
    if (GotUnit < 0) {
      // Force placement at E0: evict one occupant of the cell (the
      // lowest-priority one, i.e. largest rank), scanning the cell's
      // units in place instead of materializing an occupant list.
      S = E0;
      int Victim = victimByRank(MRT, Node.Domain, Node.Kind, S, Rank);
      assert(Victim >= 0 && "no free unit yet no occupants");
      eject(static_cast<unsigned>(Victim));
      --NumPlaced;
      GotUnit = MRT.tryReserve(Node.Domain, Node.Kind, S, U);
      assert(GotUnit >= 0 && "reservation failed after eviction");
    }

    Placed[U] = 1;
    Slot[U] = S;
    Unit[U] = static_cast<unsigned>(GotUnit);
    LastSlot[U] = S;
    Ready.erase(Rank[U]);
    ++NumPlaced;
    ++Result.Placements;

    // Eject placed successors whose dependence is now violated.
    for (unsigned EIx : PG.outEdges(U)) {
      const PGEdge &E = PG.edge(EIx);
      if (!Placed[E.Dst] || E.Dst == U)
        continue;
      int64_t Bound = T.edgeStartBound(EIx, startTicks(U));
      if (startTicks(E.Dst) < Bound) {
        eject(E.Dst);
        --NumPlaced;
      }
    }
  }

  Result.Success = true;
  Result.Sched.Plan = Plan;
  Result.Sched.Nodes.assign(N, ScheduledNode());
  for (unsigned I = 0; I < N; ++I) {
    Result.Sched.Nodes[I].Placed = true;
    Result.Sched.Nodes[I].Slot = Slot[I];
    Result.Sched.Nodes[I].Unit = Unit[I];
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Exact-Rational reference path (and overflow fallback)
//===----------------------------------------------------------------------===//

SchedulerResult HeteroModuloScheduler::runRational(SchedulerScratch &SS) {
  SchedulerResult Result;
  unsigned N = PG.size();

  if (!computeAsapTimesInto(SS.RatAsap, PG, Plan)) {
    Result.FailureReason = "recurrence infeasible at this IT";
    return Result;
  }
  const std::vector<Rational> &Asap = SS.RatAsap;

  // Approximate ALAP against the ASAP horizon using the no-sync timing
  // rule backwards (priorities only; correctness never depends on it).
  Rational Horizon(0);
  for (unsigned I = 0; I < N; ++I)
    Horizon = Rational::max(Horizon, Asap[I]);
  std::vector<Rational> &Alap = SS.RatAlap;
  Alap.assign(N, Horizon);
  for (unsigned Round = 0; Round < N; ++Round) {
    bool Changed = false;
    for (const PGEdge &E : PG.edges()) {
      Rational PSrc = periodOf(PG, Plan, E.Src);
      Rational Limit = Alap[E.Dst] + Rational(E.Distance) * Plan.ITNs -
                       Rational(E.LatencyCycles) * PSrc;
      if (Limit < Alap[E.Src]) {
        Alap[E.Src] = Limit;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  std::vector<SchedulerScratch::RatEntry> &Order = SS.RatOrder;
  Order.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Order[I] = {I, Alap[I] - Asap[I], Asap[I]};
  std::sort(Order.begin(), Order.end(),
            [](const SchedulerScratch::RatEntry &A,
               const SchedulerScratch::RatEntry &B) {
              if (A.Slack != B.Slack)
                return A.Slack < B.Slack;
              if (A.Asap != B.Asap)
                return A.Asap < B.Asap;
              return A.Node < B.Node;
            });
  std::vector<unsigned> &Rank = SS.Rank;
  Rank.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Rank[Order[I].Node] = I;

  SS.MRT.reset(Machine, Plan);
  ModuloReservationTable &MRT = SS.MRT;
  SS.Placed.assign(N, 0);
  std::vector<uint8_t> &Placed = SS.Placed;
  SS.Slot.assign(N, 0);
  std::vector<int64_t> &Slot = SS.Slot;
  SS.Unit.assign(N, 0);
  std::vector<unsigned> &Unit = SS.Unit;
  SS.LastSlot.assign(N, INT64_MIN);
  std::vector<int64_t> &LastSlot = SS.LastSlot;
  std::vector<Rational> &Period = SS.RatPeriod;
  Period.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Period[I] = periodOf(PG, Plan, I);

  auto startNs = [&](unsigned Node) {
    return Rational(Slot[Node]) * Period[Node];
  };

  auto eject = [&](unsigned Node) {
    assert(Placed[Node] && "ejecting an unplaced node");
    MRT.release(PG.node(Node).Domain, PG.node(Node).Kind, Slot[Node],
                Unit[Node], Node);
    Placed[Node] = 0;
    ++Result.Ejections;
  };

  int64_t Budget = Opts.budgetFor(N);
  unsigned NumPlaced = 0;

  while (NumPlaced < N) {
    if (--Budget < 0) {
      Result.FailureReason = "scheduling budget exhausted";
      return Result;
    }
    ++Result.BudgetUsed;
    // Highest-priority unplaced node (the reference path's linear
    // rescan of the priority list).
    unsigned U = ~0u;
    for (const auto &P : Order)
      if (!Placed[P.Node]) {
        U = P.Node;
        break;
      }
    assert(U != ~0u && "no unplaced node despite NumPlaced < N");

    // Earliest slot from ASAP and placed predecessors.
    Rational EarliestNs = Asap[U];
    for (unsigned EIx : PG.inEdges(U)) {
      const PGEdge &E = PG.edge(EIx);
      if (!Placed[E.Src])
        continue;
      Rational Bound = edgeStartBound(PG, Plan, E, startNs(E.Src));
      EarliestNs = Rational::max(EarliestNs, Bound);
    }
    int64_t E0 = (EarliestNs / Period[U]).ceil();
    if (E0 < 0)
      E0 = 0;
    if (LastSlot[U] != INT64_MIN && E0 <= LastSlot[U])
      E0 = LastSlot[U] + 1; // Rau's progress rule on re-placement

    int64_t II = iiOf(PG, Plan, U);
    if (E0 > Opts.MaxSlotMultiple * II) {
      Result.FailureReason = "slot bound exceeded (ejection runaway)";
      return Result;
    }

    const PGNode &Node = PG.node(U);
    // Same modulo-free first-free-slot scan as the tick path.
    int64_t S = E0;
    int GotUnit = MRT.reserveFirstFree(Node.Domain, Node.Kind, E0, U, S);
    if (GotUnit < 0) {
      // Force placement at E0: evict one occupant of the cell (same
      // in-place victim scan as the tick path).
      S = E0;
      int Victim = victimByRank(MRT, Node.Domain, Node.Kind, S, Rank);
      assert(Victim >= 0 && "no free unit yet no occupants");
      eject(static_cast<unsigned>(Victim));
      --NumPlaced;
      GotUnit = MRT.tryReserve(Node.Domain, Node.Kind, S, U);
      assert(GotUnit >= 0 && "reservation failed after eviction");
    }

    Placed[U] = 1;
    Slot[U] = S;
    Unit[U] = static_cast<unsigned>(GotUnit);
    LastSlot[U] = S;
    ++NumPlaced;
    ++Result.Placements;

    // Eject placed successors whose dependence is now violated.
    for (unsigned EIx : PG.outEdges(U)) {
      const PGEdge &E = PG.edge(EIx);
      if (!Placed[E.Dst] || E.Dst == U)
        continue;
      Rational Bound = edgeStartBound(PG, Plan, E, startNs(U));
      if (startNs(E.Dst) < Bound) {
        eject(E.Dst);
        --NumPlaced;
      }
    }
  }

  Result.Success = true;
  Result.Sched.Plan = Plan;
  Result.Sched.Nodes.assign(N, ScheduledNode());
  for (unsigned I = 0; I < N; ++I) {
    Result.Sched.Nodes[I].Placed = true;
    Result.Sched.Nodes[I].Slot = Slot[I];
    Result.Sched.Nodes[I].Unit = Unit[I];
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Stage compaction (register-lifetime salvage)
//===----------------------------------------------------------------------===//

namespace {

/// Shared shape of the two arithmetic forms below: in decreasing start
/// order — so each consumer settles before its producers slide up
/// against it — move every node with a non-self out-edge later by the
/// largest whole-II stage multiple its out-edge bounds admit. The
/// modulo reservation is untouched (same slot mod II, same unit) and
/// in-edge bounds only get slacker, so the schedule stays valid by
/// construction. Cross-iteration consumers can start *below* their
/// producer and only open room once moved themselves, so the sweep
/// repeats to a fixpoint (slots grow monotonically toward the
/// MaxSlotMultiple bound). \p StartOf(node) and \p BoundLeq(edge,
/// srcNode, srcSlot, dst) abstract the tick/Rational arithmetic;
/// both forms compare the same exact quantities, so they move the
/// same nodes by the same stage counts.
template <typename Entry, typename StartKeyFn, typename FeasibleFn,
          typename IIFn>
unsigned compactSweeps(const PartitionedGraph &PG, int64_t MaxSlotMultiple,
                       std::vector<Entry> &COrder, std::vector<int64_t> &Slots,
                       StartKeyFn StartKey, FeasibleFn EdgesHold, IIFn IIOf) {
  unsigned N = PG.size();
  unsigned Moved = 0;
  for (unsigned Pass = 0; Pass < CompactMaxPasses; ++Pass) {
    COrder.resize(N);
    for (unsigned I = 0; I < N; ++I)
      COrder[I] = {I, {}, StartKey(I)};
    std::sort(COrder.begin(), COrder.end(), [](const Entry &A, const Entry &B) {
      if (!(A.Asap == B.Asap))
        return B.Asap < A.Asap;
      return A.Node < B.Node;
    });
    bool AnyMove = false;
    for (const auto &Ent : COrder) {
      unsigned U = Ent.Node;
      bool HasOut = false;
      for (unsigned EIx : PG.outEdges(U))
        if (PG.edge(EIx).Dst != U) {
          HasOut = true;
          break;
        }
      if (!HasOut)
        continue; // sinks and self-cycle-only nodes stay put
      int64_t II = IIOf(U);
      int64_t KCap = (MaxSlotMultiple * II - Slots[U]) / II;
      if (KCap <= 0)
        continue;
      // Largest feasible stage count; binary search is exact because
      // every out-edge bound is monotone in the source start.
      int64_t Lo = 0, Hi = KCap;
      while (Lo < Hi) {
        int64_t Mid = Lo + (Hi - Lo + 1) / 2;
        if (EdgesHold(U, Slots[U] + Mid * II))
          Lo = Mid;
        else
          Hi = Mid - 1;
      }
      if (Lo > 0) {
        Slots[U] += Lo * II;
        AnyMove = true;
        ++Moved;
      }
    }
    if (!AnyMove)
      break;
  }
  return Moved;
}

} // namespace

unsigned hcvliw::compactScheduleLifetimes(const PartitionedGraph &PG,
                                          const MachinePlan &Plan,
                                          const TickGraph *Ticks, Schedule &S,
                                          int64_t MaxSlotMultiple,
                                          SchedulerScratch *Scratch) {
  SchedulerScratch Local;
  SchedulerScratch &SS = Scratch ? *Scratch : Local;
  unsigned N = PG.size();
  std::vector<int64_t> &Slots = SS.Slot;
  Slots.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Slots[I] = S.Nodes[I].Slot;

  unsigned Moved = 0;
  std::optional<TickGraph> Own;
  const TickGraph *T = nullptr;
  if (Ticks) {
    if (Ticks->valid())
      T = Ticks;
  } else {
    Own = TickGraph::build(PG, Plan);
    if (Own)
      T = &*Own;
  }

  if (T) {
    auto StartKey = [&](unsigned Node) { return T->startTicks(Node, Slots[Node]); };
    auto EdgesHold = [&](unsigned U, int64_t CandSlot) {
      int64_t Src = T->startTicks(U, CandSlot);
      for (unsigned EIx : PG.outEdges(U)) {
        const PGEdge &E = PG.edge(EIx);
        if (E.Dst == U)
          continue;
        if (T->startTicks(E.Dst, Slots[E.Dst]) < T->edgeStartBound(EIx, Src))
          return false;
      }
      return true;
    };
    auto IIOf = [&](unsigned Node) { return T->iiOf(Node); };
    Moved = compactSweeps<SchedulerScratch::TickEntry>(
        PG, MaxSlotMultiple, SS.TickOrder, Slots, StartKey, EdgesHold, IIOf);
  } else {
    auto StartKey = [&](unsigned Node) {
      return Rational(Slots[Node]) * periodOf(PG, Plan, Node);
    };
    auto EdgesHold = [&](unsigned U, int64_t CandSlot) {
      Rational Src = Rational(CandSlot) * periodOf(PG, Plan, U);
      for (unsigned EIx : PG.outEdges(U)) {
        const PGEdge &E = PG.edge(EIx);
        if (E.Dst == U)
          continue;
        if (StartKey(E.Dst) < edgeStartBound(PG, Plan, E, Src))
          return false;
      }
      return true;
    };
    auto IIOf = [&](unsigned Node) { return iiOf(PG, Plan, Node); };
    Moved = compactSweeps<SchedulerScratch::RatEntry>(
        PG, MaxSlotMultiple, SS.RatOrder, Slots, StartKey, EdgesHold, IIOf);
  }

  for (unsigned I = 0; I < N; ++I)
    S.Nodes[I].Slot = Slots[I];
  return Moved;
}
