//===- sched/HeteroModuloScheduler.h - Heterogeneous IMS ---------*- C++ -*-===//
///
/// \file
/// Iterative modulo scheduling for heterogeneous clustered machines
/// (the "Schedule" box of the paper's Figure 5). Given a partitioned
/// graph and a machine plan (IT plus per-domain II/frequency), nodes are
/// placed in absolute time: node n at slot s of domain d issues at
/// s * period(d), and its modulo resource reservation is slot mod II_d.
///
/// The algorithm follows Rau's iterative modulo scheduling adapted to
/// absolute-time dependences: nodes are ordered by slack (ALAP - ASAP);
/// each node is placed at the first resource-feasible slot in a window
/// of II_d slots above its predecessor-induced earliest start; when the
/// window is full the node is force-placed and conflicting occupants /
/// violated successors are ejected, bounded by an operation budget.
///
/// The scheduler does not check register pressure; the driver validates
/// it afterwards (sched/RegisterPressure.h) and grows the IT on failure.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_HETEROMODULOSCHEDULER_H
#define HCVLIW_SCHED_HETEROMODULOSCHEDULER_H

#include "obs/Trace.h"
#include "sched/ModuloReservationTable.h"
#include "sched/Schedule.h"

#include <optional>
#include <string>

namespace hcvliw {

struct SchedulerOptions {
  /// Placement attempts allowed, as a multiple of the node count (for
  /// loops up to BudgetRefOps nodes; see budgetFor).
  unsigned BudgetFactor = 12;
  /// Node count past which the ejection budget stops growing linearly.
  /// Up to this size the budget is BudgetFactor * N + 64 (unchanged
  /// from the historical policy); above it the per-node allowance
  /// decays as sqrt(BudgetRefOps / N), so the total grows like
  /// sqrt(N) — sublinear, which keeps 1000+-op sweeps from spending
  /// minutes in ejection storms at hopeless IIs. Growing the IT makes
  /// scheduling strictly easier, so a budget miss only defers success
  /// to a later (cheaper) IT step, never to failure of the sweep.
  unsigned BudgetRefOps = 256;
  /// Fail when any slot exceeds this multiple of its domain's II
  /// (runaway ejection chains).
  int64_t MaxSlotMultiple = 64;
  /// Let the sweep driver (LoopScheduler) salvage a placement whose
  /// register pressure overflows by running compactScheduleLifetimes
  /// before giving up on the IT step. Earliest-feasible placement
  /// leaves early-produced values live for many IIs on wide graphs, and
  /// each full II a lifetime spans costs one register in *every* modulo
  /// slot — compaction removes exactly those crossings. It trades
  /// per-iteration makespan for pressure, so it only runs as a rescue
  /// (schedules that already fit are left untouched and bit-identical
  /// to the historical output). Changes the emitted schedule when it
  /// fires, hence part of the ScheduleCache key (unlike UseTickGrid).
  bool CompactLifetimes = true;

  /// The placement-loop budget for an \p NumOps-node partitioned graph
  /// (copy nodes included). Integer sqrt keeps it exact and
  /// platform-independent.
  int64_t budgetFor(size_t NumOps) const {
    int64_t N = static_cast<int64_t>(NumOps);
    int64_t Ref = static_cast<int64_t>(BudgetRefOps);
    int64_t F = static_cast<int64_t>(BudgetFactor);
    if (Ref <= 0 || N <= Ref)
      return F * N + 64;
    int64_t X = Ref * N, R = 0;
    for (int64_t Bit = int64_t(1) << 31; Bit > 0; Bit >>= 1) {
      int64_t T = R + Bit;
      if (T * T <= X)
        R = T;
    }
    return F * R + 64; // floor(sqrt(Ref * N)); continuous at N == Ref
  }
  /// Run the placement loop on the plan's integer tick grid (PlanGrid)
  /// when it has one; results are bit-identical to the Rational
  /// reference path, which remains reachable by clearing this (and is
  /// the automatic fallback when the grid overflows). Not part of the
  /// ScheduleCache key for exactly that reason.
  bool UseTickGrid = true;
};

struct SchedulerResult {
  bool Success = false;
  Schedule Sched;
  std::string FailureReason;
  /// Effort counters (identical on the tick and Rational paths, which
  /// make the same decisions in the same order).
  uint64_t Placements = 0; ///< successful node placements
  uint64_t Ejections = 0;  ///< evictions + dependence ejections
  uint64_t BudgetUsed = 0; ///< placement-loop iterations consumed
  /// True when UseTickGrid was requested but the plan has no valid
  /// integer grid, so the run fell back to the bit-identical Rational
  /// path (PR 4's one silent degradation, now counted: the sweep
  /// driver sums it into LoopScheduleResult::FallbackRational and the
  /// measurement layer surfaces it as the sched.fallback_rational
  /// metric). Deterministic — a pure function of (PG, Plan, Opts).
  bool FallbackRational = false;
};

/// Earliest start times (ns) of every node ignoring resources, or
/// std::nullopt when a dependence cycle cannot meet the plan's IT (the
/// recurrence is infeasible for this partition/IT). Exact longest-path
/// fixpoint over the cross-domain timing rule.
std::optional<std::vector<Rational>>
computeAsapTimes(const PartitionedGraph &PG, const MachinePlan &Plan);

/// In-place form of computeAsapTimes: fills \p Start and returns false
/// on an unsatisfiable recurrence. Identical values.
bool computeAsapTimesInto(std::vector<Rational> &Start,
                          const PartitionedGraph &PG,
                          const MachinePlan &Plan);

/// Lower bound on start(Dst) induced by edge \p E when Src starts at
/// \p SrcStartNs (the Section 2.2 + sync-queue timing rule).
Rational edgeStartBound(const PartitionedGraph &PG, const MachinePlan &Plan,
                        const PGEdge &E, const Rational &SrcStartNs);

class TickGraph;

/// Reusable buffers for HeteroModuloScheduler::run. One scheduling run
/// allocates ~a dozen per-node/per-edge vectors plus the reservation
/// table; an IT sweep runs the scheduler many times per loop, so sweep
/// drivers (LoopScheduler via ScheduleScratch) pass one of these and
/// the steady state stops hitting malloc. Contents carry no information
/// between runs — results are bit-identical with or without a scratch.
struct SchedulerScratch {
  struct TickEntry {
    unsigned Node;
    int64_t Slack;
    int64_t Asap;
  };
  struct RatEntry {
    unsigned Node;
    Rational Slack;
    Rational Asap;
  };
  std::vector<int64_t> Asap, Alap, EdgeBack, Slot, LastSlot;
  std::vector<unsigned> Unit, Rank, NodeOfRank;
  std::vector<uint8_t> Placed;
  std::vector<uint64_t> ReadyWords;
  std::vector<TickEntry> TickOrder;
  std::vector<RatEntry> RatOrder;
  std::vector<Rational> RatAsap, RatAlap, RatPeriod;
  ModuloReservationTable MRT;
};

/// Stage compaction: slide every node with a consumer later by whole
/// multiples of its domain II, up against its consumers' dependence
/// bounds, iterated to a fixpoint. Whole-II moves keep the modulo
/// reservation (same slot mod II, same unit) and only relax in-edge
/// bounds, so a valid \p S stays valid by construction while long
/// lifetimes stop crossing full IIs — typically a large register-
/// pressure reduction on wide graphs, at the cost of deeper stages
/// (longer per-iteration makespan). Pure function of (PG, Plan, S),
/// independent of thread count and of how S was produced, so warm-start
/// replays and cold runs compact identically. \p Ticks follows the
/// run() contract: pass the prebuilt grid to take the tick path, pass
/// nullptr to build one internally, and an invalid grid falls back to
/// the bit-identical Rational arithmetic. Returns the number of nodes
/// moved.
unsigned compactScheduleLifetimes(const PartitionedGraph &PG,
                                  const MachinePlan &Plan,
                                  const TickGraph *Ticks, Schedule &S,
                                  int64_t MaxSlotMultiple,
                                  SchedulerScratch *Scratch = nullptr);

class HeteroModuloScheduler {
  const MachineDescription &Machine;
  const PartitionedGraph &PG;
  const MachinePlan &Plan; ///< borrowed; must outlive run()
  SchedulerOptions Opts;

  SchedulerResult runRational(SchedulerScratch &S);
  SchedulerResult runTicks(const TickGraph &T, SchedulerScratch &S);

public:
  HeteroModuloScheduler(const MachineDescription &M,
                        const PartitionedGraph &Graph,
                        const MachinePlan &ThePlan,
                        const SchedulerOptions &O = SchedulerOptions());

  /// Runs the placement loop. \p Ticks: nullptr = lower the plan's tick
  /// grid internally (the historical behavior); a *valid* TickGraph of
  /// exactly (Graph, ThePlan) = use it directly; an *invalid* one = the
  /// caller already proved the plan has no grid, go straight to the
  /// Rational path. \p Scratch provides reusable buffers (optional).
  /// \p Trace, when enabled, records one "sched.place" span per run
  /// (observation only; results never depend on it).
  SchedulerResult run(const TickGraph *Ticks = nullptr,
                      SchedulerScratch *Scratch = nullptr,
                      obs::Tracer *Trace = nullptr);
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_HETEROMODULOSCHEDULER_H
