//===- sched/HeteroModuloScheduler.h - Heterogeneous IMS ---------*- C++ -*-===//
///
/// \file
/// Iterative modulo scheduling for heterogeneous clustered machines
/// (the "Schedule" box of the paper's Figure 5). Given a partitioned
/// graph and a machine plan (IT plus per-domain II/frequency), nodes are
/// placed in absolute time: node n at slot s of domain d issues at
/// s * period(d), and its modulo resource reservation is slot mod II_d.
///
/// The algorithm follows Rau's iterative modulo scheduling adapted to
/// absolute-time dependences: nodes are ordered by slack (ALAP - ASAP);
/// each node is placed at the first resource-feasible slot in a window
/// of II_d slots above its predecessor-induced earliest start; when the
/// window is full the node is force-placed and conflicting occupants /
/// violated successors are ejected, bounded by an operation budget.
///
/// The scheduler does not check register pressure; the driver validates
/// it afterwards (sched/RegisterPressure.h) and grows the IT on failure.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_HETEROMODULOSCHEDULER_H
#define HCVLIW_SCHED_HETEROMODULOSCHEDULER_H

#include "obs/Trace.h"
#include "sched/ModuloReservationTable.h"
#include "sched/Schedule.h"

#include <optional>
#include <string>

namespace hcvliw {

struct SchedulerOptions {
  /// Placement attempts allowed, as a multiple of the node count.
  unsigned BudgetFactor = 12;
  /// Fail when any slot exceeds this multiple of its domain's II
  /// (runaway ejection chains).
  int64_t MaxSlotMultiple = 64;
  /// Run the placement loop on the plan's integer tick grid (PlanGrid)
  /// when it has one; results are bit-identical to the Rational
  /// reference path, which remains reachable by clearing this (and is
  /// the automatic fallback when the grid overflows). Not part of the
  /// ScheduleCache key for exactly that reason.
  bool UseTickGrid = true;
};

struct SchedulerResult {
  bool Success = false;
  Schedule Sched;
  std::string FailureReason;
  /// Effort counters (identical on the tick and Rational paths, which
  /// make the same decisions in the same order).
  uint64_t Placements = 0; ///< successful node placements
  uint64_t Ejections = 0;  ///< evictions + dependence ejections
  uint64_t BudgetUsed = 0; ///< placement-loop iterations consumed
};

/// Earliest start times (ns) of every node ignoring resources, or
/// std::nullopt when a dependence cycle cannot meet the plan's IT (the
/// recurrence is infeasible for this partition/IT). Exact longest-path
/// fixpoint over the cross-domain timing rule.
std::optional<std::vector<Rational>>
computeAsapTimes(const PartitionedGraph &PG, const MachinePlan &Plan);

/// In-place form of computeAsapTimes: fills \p Start and returns false
/// on an unsatisfiable recurrence. Identical values.
bool computeAsapTimesInto(std::vector<Rational> &Start,
                          const PartitionedGraph &PG,
                          const MachinePlan &Plan);

/// Lower bound on start(Dst) induced by edge \p E when Src starts at
/// \p SrcStartNs (the Section 2.2 + sync-queue timing rule).
Rational edgeStartBound(const PartitionedGraph &PG, const MachinePlan &Plan,
                        const PGEdge &E, const Rational &SrcStartNs);

class TickGraph;

/// Reusable buffers for HeteroModuloScheduler::run. One scheduling run
/// allocates ~a dozen per-node/per-edge vectors plus the reservation
/// table; an IT sweep runs the scheduler many times per loop, so sweep
/// drivers (LoopScheduler via ScheduleScratch) pass one of these and
/// the steady state stops hitting malloc. Contents carry no information
/// between runs — results are bit-identical with or without a scratch.
struct SchedulerScratch {
  struct TickEntry {
    unsigned Node;
    int64_t Slack;
    int64_t Asap;
  };
  struct RatEntry {
    unsigned Node;
    Rational Slack;
    Rational Asap;
  };
  std::vector<int64_t> Asap, Alap, EdgeBack, Slot, LastSlot;
  std::vector<unsigned> Unit, Rank, NodeOfRank;
  std::vector<uint8_t> Placed;
  std::vector<uint64_t> ReadyWords;
  std::vector<TickEntry> TickOrder;
  std::vector<RatEntry> RatOrder;
  std::vector<Rational> RatAsap, RatAlap, RatPeriod;
  ModuloReservationTable MRT;
};

class HeteroModuloScheduler {
  const MachineDescription &Machine;
  const PartitionedGraph &PG;
  MachinePlan Plan;
  SchedulerOptions Opts;

  SchedulerResult runRational(SchedulerScratch &S);
  SchedulerResult runTicks(const TickGraph &T, SchedulerScratch &S);

public:
  HeteroModuloScheduler(const MachineDescription &M,
                        const PartitionedGraph &Graph,
                        const MachinePlan &ThePlan,
                        const SchedulerOptions &O = SchedulerOptions());

  /// Runs the placement loop. \p Ticks: nullptr = lower the plan's tick
  /// grid internally (the historical behavior); a *valid* TickGraph of
  /// exactly (Graph, ThePlan) = use it directly; an *invalid* one = the
  /// caller already proved the plan has no grid, go straight to the
  /// Rational path. \p Scratch provides reusable buffers (optional).
  /// \p Trace, when enabled, records one "sched.place" span per run
  /// (observation only; results never depend on it).
  SchedulerResult run(const TickGraph *Ticks = nullptr,
                      SchedulerScratch *Scratch = nullptr,
                      obs::Tracer *Trace = nullptr);
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_HETEROMODULOSCHEDULER_H
