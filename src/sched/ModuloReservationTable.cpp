//===- sched/ModuloReservationTable.cpp - Per-domain MRTs -------------------===//

#include "sched/ModuloReservationTable.h"

#include <cassert>

using namespace hcvliw;

ModuloReservationTable::ModuloReservationTable(const MachineDescription &M,
                                               const MachinePlan &Plan) {
  reset(M, Plan);
}

void ModuloReservationTable::reset(const MachineDescription &M,
                                   const MachinePlan &Plan) {
  NumClusters = M.numClusters();
  Tables.resize(NumClusters + 1);
  for (unsigned C = 0; C < NumClusters; ++C) {
    Tables[C].resize(NumFUKinds);
    for (unsigned K = 0; K < NumFUKinds; ++K) {
      FUKind Kind = static_cast<FUKind>(K);
      if (Kind == FUKind::Bus)
        continue;
      KindTable &T = Tables[C][K];
      T.II = Plan.Clusters[C].II;
      T.Units = M.Clusters[C].fuCount(Kind);
      T.Cells.assign(T.Units * static_cast<size_t>(T.II), -1);
    }
  }
  Tables[NumClusters].resize(NumFUKinds);
  KindTable &B = Tables[NumClusters][static_cast<unsigned>(FUKind::Bus)];
  B.II = Plan.Bus.II;
  B.Units = M.Buses;
  B.Cells.assign(B.Units * static_cast<size_t>(B.II), -1);
}

ModuloReservationTable::KindTable &
ModuloReservationTable::tableFor(unsigned Domain, FUKind Kind) {
  assert(Domain < Tables.size() && "domain out of range");
  assert((Domain == NumClusters) == (Kind == FUKind::Bus) &&
         "bus reservations only in the bus domain");
  KindTable &T = Tables[Domain][static_cast<unsigned>(Kind)];
  assert(T.Units > 0 && "reserving a unit kind this domain lacks");
  return T;
}

int ModuloReservationTable::reserveFirstFree(unsigned Domain, FUKind Kind,
                                             int64_t FromSlot, unsigned Node,
                                             int64_t &GotSlot) {
  KindTable &T = tableFor(Domain, Kind);
  int64_t M = FromSlot % T.II;
  if (M < 0)
    M += T.II;
  for (int64_t Off = 0; Off < T.II; ++Off) {
    for (unsigned U = 0; U < T.Units; ++U) {
      int &Cell = T.Cells[U * static_cast<size_t>(T.II) +
                          static_cast<size_t>(M)];
      if (Cell < 0) {
        Cell = static_cast<int>(Node);
        GotSlot = FromSlot + Off;
        return static_cast<int>(U);
      }
    }
    if (++M == T.II)
      M = 0;
  }
  return -1;
}

int ModuloReservationTable::tryReserve(unsigned Domain, FUKind Kind,
                                       int64_t Slot, unsigned Node) {
  KindTable &T = tableFor(Domain, Kind);
  for (unsigned U = 0; U < T.Units; ++U) {
    int &Cell = T.cell(U, Slot);
    if (Cell < 0) {
      Cell = static_cast<int>(Node);
      return static_cast<int>(U);
    }
  }
  return -1;
}

void ModuloReservationTable::release(unsigned Domain, FUKind Kind,
                                     int64_t Slot, unsigned Unit,
                                     unsigned Node) {
  KindTable &T = tableFor(Domain, Kind);
  int &Cell = T.cell(Unit, Slot);
  assert(Cell == static_cast<int>(Node) && "releasing someone else's cell");
  (void)Node;
  Cell = -1;
}

std::vector<unsigned> ModuloReservationTable::occupants(unsigned Domain,
                                                        FUKind Kind,
                                                        int64_t Slot) {
  KindTable &T = tableFor(Domain, Kind);
  std::vector<unsigned> Out;
  for (unsigned U = 0; U < T.Units; ++U) {
    int Cell = T.cell(U, Slot);
    if (Cell >= 0)
      Out.push_back(static_cast<unsigned>(Cell));
  }
  return Out;
}

int ModuloReservationTable::occupant(unsigned Domain, FUKind Kind,
                                     int64_t Slot, unsigned Unit) {
  return tableFor(Domain, Kind).cell(Unit, Slot);
}
