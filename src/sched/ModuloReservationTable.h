//===- sched/ModuloReservationTable.h - Per-domain MRTs ----------*- C++ -*-===//
///
/// \file
/// Modulo reservation tables for the heterogeneous machine: each clock
/// domain owns a table with II_domain columns (slot modulo II) and one
/// row per functional-unit instance of each kind. Cluster domains carry
/// INT / FP / memory-port rows; the bus domain carries one row per bus.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_MODULORESERVATIONTABLE_H
#define HCVLIW_SCHED_MODULORESERVATIONTABLE_H

#include "machine/MachineDescription.h"
#include "mcd/DomainPlanner.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class ModuloReservationTable {
  struct KindTable {
    int64_t II = 1;
    unsigned Units = 0;
    /// Units x II, occupant node id or -1.
    std::vector<int> Cells;

    int &cell(unsigned Unit, int64_t Slot) {
      int64_t M = Slot % II;
      if (M < 0)
        M += II;
      return Cells[Unit * static_cast<size_t>(II) + static_cast<size_t>(M)];
    }
  };

  unsigned NumClusters = 0;
  /// [domain][kind]; the bus domain has a single Bus kind table.
  std::vector<std::vector<KindTable>> Tables;

  KindTable &tableFor(unsigned Domain, FUKind Kind);

public:
  /// An empty table; reset() before use (scratch-arena form).
  ModuloReservationTable() = default;
  ModuloReservationTable(const MachineDescription &M, const MachinePlan &Plan);

  /// Re-initializes the table for (\p M, \p Plan), reusing the cell
  /// buffers of any previous plan (the scheduling sweep resets one
  /// table per attempt instead of allocating a fresh one).
  void reset(const MachineDescription &M, const MachinePlan &Plan);

  /// Functional-unit instances of \p Kind in \p Domain.
  unsigned units(unsigned Domain, FUKind Kind) {
    return tableFor(Domain, Kind).Units;
  }

  /// Tries to reserve a unit of \p Kind in \p Domain at \p Slot for node
  /// \p Node. Returns the unit index, or -1 when all units are busy.
  int tryReserve(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Node);

  /// First slot S in [FromSlot, FromSlot + II) with a free unit of
  /// \p Kind in \p Domain, reserving the lowest free unit there for
  /// \p Node: identical outcome to probing tryReserve slot by slot, but
  /// with one modulo division total instead of one per probed slot (the
  /// scan over a nearly-full single-unit table — the saturated bus of
  /// copy-heavy loops — is the placement loop's hottest stretch).
  /// Returns the unit and sets \p GotSlot, or -1 when the whole window
  /// is full (\p GotSlot untouched).
  int reserveFirstFree(unsigned Domain, FUKind Kind, int64_t FromSlot,
                       unsigned Node, int64_t &GotSlot);

  /// Releases the reservation \p Node holds at \p Slot.
  void release(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Unit,
               unsigned Node);

  /// Node ids occupying all units of \p Kind at \p Slot (used by the
  /// scheduler's forced-placement eviction).
  std::vector<unsigned> occupants(unsigned Domain, FUKind Kind,
                                  int64_t Slot);

  /// Occupant of a specific cell, or -1.
  int occupant(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Unit);
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_MODULORESERVATIONTABLE_H
