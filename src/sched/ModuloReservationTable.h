//===- sched/ModuloReservationTable.h - Per-domain MRTs ----------*- C++ -*-===//
///
/// \file
/// Modulo reservation tables for the heterogeneous machine: each clock
/// domain owns a table with II_domain columns (slot modulo II) and one
/// row per functional-unit instance of each kind. Cluster domains carry
/// INT / FP / memory-port rows; the bus domain carries one row per bus.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_MODULORESERVATIONTABLE_H
#define HCVLIW_SCHED_MODULORESERVATIONTABLE_H

#include "machine/MachineDescription.h"
#include "mcd/DomainPlanner.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class ModuloReservationTable {
  struct KindTable {
    int64_t II = 1;
    unsigned Units = 0;
    /// Units x II, occupant node id or -1.
    std::vector<int> Cells;

    int &cell(unsigned Unit, int64_t Slot) {
      int64_t M = Slot % II;
      if (M < 0)
        M += II;
      return Cells[Unit * static_cast<size_t>(II) + static_cast<size_t>(M)];
    }
  };

  unsigned NumClusters = 0;
  /// [domain][kind]; the bus domain has a single Bus kind table.
  std::vector<std::vector<KindTable>> Tables;

  KindTable &tableFor(unsigned Domain, FUKind Kind);

public:
  ModuloReservationTable(const MachineDescription &M, const MachinePlan &Plan);

  /// Tries to reserve a unit of \p Kind in \p Domain at \p Slot for node
  /// \p Node. Returns the unit index, or -1 when all units are busy.
  int tryReserve(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Node);

  /// Releases the reservation \p Node holds at \p Slot.
  void release(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Unit,
               unsigned Node);

  /// Node ids occupying all units of \p Kind at \p Slot (used by the
  /// scheduler's forced-placement eviction).
  std::vector<unsigned> occupants(unsigned Domain, FUKind Kind,
                                  int64_t Slot);

  /// Occupant of a specific cell, or -1.
  int occupant(unsigned Domain, FUKind Kind, int64_t Slot, unsigned Unit);
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_MODULORESERVATIONTABLE_H
