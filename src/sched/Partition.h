//===- sched/Partition.h - Cluster assignment -------------------*- C++ -*-===//
///
/// \file
/// A cluster assignment of a loop's operations: the output of the graph
/// partitioner and the input of the modulo scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_PARTITION_H
#define HCVLIW_SCHED_PARTITION_H

#include <cassert>
#include <vector>

namespace hcvliw {

struct Partition {
  /// Cluster id per DDG node.
  std::vector<unsigned> ClusterOf;

  unsigned size() const { return static_cast<unsigned>(ClusterOf.size()); }

  unsigned cluster(unsigned Node) const {
    assert(Node < ClusterOf.size() && "node out of range");
    return ClusterOf[Node];
  }

  /// All nodes in one cluster (trivial partition) -- the DDG of a
  /// single-cluster machine.
  static Partition allInCluster(unsigned NumNodes, unsigned Cluster) {
    Partition P;
    P.ClusterOf.assign(NumNodes, Cluster);
    return P;
  }
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_PARTITION_H
