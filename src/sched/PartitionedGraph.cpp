//===- sched/PartitionedGraph.cpp - DDG + cluster assignment + copies ------===//

#include "sched/PartitionedGraph.h"

#include <cassert>

using namespace hcvliw;

void PartitionedGraph::addNode(const PGNode &N) {
  Nodes.push_back(N);
  if (OutEdgeIx.size() < Nodes.size()) {
    OutEdgeIx.emplace_back();
    InEdgeIx.emplace_back();
  } else {
    // Reused adjacency row (buildInto keeps rows around for capacity).
    OutEdgeIx[Nodes.size() - 1].clear();
    InEdgeIx[Nodes.size() - 1].clear();
  }
}

void PartitionedGraph::addEdge(const PGEdge &E) {
  assert(E.Src < Nodes.size() && E.Dst < Nodes.size() &&
         "edge endpoint out of range");
  unsigned Ix = static_cast<unsigned>(Edges.size());
  Edges.push_back(E);
  OutEdgeIx[E.Src].push_back(Ix);
  InEdgeIx[E.Dst].push_back(Ix);
}

unsigned PartitionedGraph::numCopies() const {
  unsigned N = 0;
  for (const auto &Node : Nodes)
    if (Node.OrigOp < 0)
      ++N;
  return N;
}

PartitionedGraph PartitionedGraph::build(const Loop &L, const DDG &G,
                                         const IsaTable &Isa,
                                         const Partition &P,
                                         unsigned NumClusters,
                                         unsigned BusLatency) {
  PartitionedGraph PG;
  buildInto(PG, L, G, Isa, P, NumClusters, BusLatency);
  return PG;
}

void PartitionedGraph::buildInto(PartitionedGraph &PG, const Loop &L,
                                 const DDG &G, const IsaTable &Isa,
                                 const Partition &P, unsigned NumClusters,
                                 unsigned BusLatency,
                                 std::vector<int> *CopyScratch,
                                 const std::vector<unsigned> *NodeLatencies) {
  assert(P.size() == G.size() && "partition does not cover the DDG");
  PG.NumClustersVal = NumClusters;
  PG.Nodes.clear();
  PG.Edges.clear();
  // Adjacency rows are kept at the largest node count ever built into
  // this object (rows keep their capacity across builds; addNode clears
  // a row when it reuses one).

  for (unsigned I = 0; I < G.size(); ++I) {
    assert(P.cluster(I) < NumClusters && "cluster id out of range");
    PGNode N;
    N.Domain = P.cluster(I);
    N.Op = L.Ops[I].Op;
    N.LatencyCycles = Isa.latency(N.Op);
    N.Kind = fuKindOf(N.Op);
    N.OrigOp = static_cast<int>(I);
    PG.addNode(N);
  }

  std::vector<unsigned> LocalLat;
  if (!NodeLatencies) {
    Isa.nodeLatenciesInto(LocalLat, L);
    NodeLatencies = &LocalLat;
  }
  const std::vector<unsigned> &NodeLat = *NodeLatencies;
  assert(NodeLat.size() == G.size() && "latency vector does not match");

  // One copy per (produced value, destination cluster); consumers at
  // different distances share it (the copy follows the producer at
  // distance 0; each consumer keeps its original distance). The flat
  // index table replaces the old std::map: same lookup semantics, no
  // per-copy node allocation.
  std::vector<int> LocalCopyIx;
  std::vector<int> &CopyIx = CopyScratch ? *CopyScratch : LocalCopyIx;
  CopyIx.assign(static_cast<size_t>(G.size()) * NumClusters, -1);
  auto copyFor = [&](unsigned Value, unsigned DstCluster) -> unsigned {
    int &Slot = CopyIx[static_cast<size_t>(Value) * NumClusters + DstCluster];
    if (Slot >= 0)
      return static_cast<unsigned>(Slot);
    PGNode C;
    C.Domain = PG.busDomain();
    C.Op = Opcode::Copy;
    C.LatencyCycles = BusLatency;
    C.Kind = FUKind::Bus;
    C.OrigOp = -1;
    C.CopiedValue = static_cast<int>(Value);
    unsigned Ix = PG.size();
    PG.addNode(C);
    PG.addEdge({Value, Ix, /*Distance=*/0, /*LatencyCycles=*/NodeLat[Value],
                /*CarriesValue=*/true});
    Slot = static_cast<int>(Ix);
    return Ix;
  };

  for (const auto &E : G.edges()) {
    bool Carries = isValueCarrying(E.Kind);
    unsigned Lat = edgeLatency(E, NodeLat);
    if (!Carries || P.cluster(E.Src) == P.cluster(E.Dst)) {
      PG.addEdge({E.Src, E.Dst, E.Distance, Lat, Carries});
      continue;
    }
    unsigned C = copyFor(E.Src, P.cluster(E.Dst));
    PG.addEdge({C, E.Dst, E.Distance, /*LatencyCycles=*/BusLatency,
                /*CarriesValue=*/true});
  }
}
