//===- sched/PartitionedGraph.cpp - DDG + cluster assignment + copies ------===//

#include "sched/PartitionedGraph.h"

#include <cassert>

using namespace hcvliw;

unsigned PartitionedGraph::numCopies() const {
  unsigned N = 0;
  for (const auto &Node : Nodes)
    if (Node.OrigOp < 0)
      ++N;
  return N;
}

/// Counting sort of the edge list into the CSR rows. Stable: within
/// one node's row, edge indices stay in insertion order — exactly the
/// iteration order of the per-node push_back rows this replaces.
void PartitionedGraph::finalizeAdjacency() {
  const unsigned N = size();
  const unsigned E = static_cast<unsigned>(Edges.size());
  OutStart.assign(N + 1, 0);
  InStart.assign(N + 1, 0);
  for (const PGEdge &Ed : Edges) {
    ++OutStart[Ed.Src + 1];
    ++InStart[Ed.Dst + 1];
  }
  for (unsigned I = 0; I < N; ++I) {
    OutStart[I + 1] += OutStart[I];
    InStart[I + 1] += InStart[I];
  }
  OutIx.resize(E);
  InIx.resize(E);
  // Fill using the start arrays as cursors, then shift them back.
  for (unsigned Ix = 0; Ix < E; ++Ix) {
    OutIx[OutStart[Edges[Ix].Src]++] = Ix;
    InIx[InStart[Edges[Ix].Dst]++] = Ix;
  }
  for (unsigned I = N; I > 0; --I) {
    OutStart[I] = OutStart[I - 1];
    InStart[I] = InStart[I - 1];
  }
  OutStart[0] = 0;
  InStart[0] = 0;
}

PartitionedGraph PartitionedGraph::fromRaw(unsigned NumClusters,
                                           std::vector<PGNode> RawNodes,
                                           std::vector<PGEdge> RawEdges) {
  PartitionedGraph PG;
  PG.NumClustersVal = NumClusters;
  PG.Nodes = std::move(RawNodes);
  PG.Edges = std::move(RawEdges);
#ifndef NDEBUG
  for (const PGEdge &E : PG.Edges)
    assert(E.Src < PG.Nodes.size() && E.Dst < PG.Nodes.size() &&
           "raw edge endpoint out of range");
#endif
  PG.finalizeAdjacency();
  return PG;
}

PartitionedGraph PartitionedGraph::build(const Loop &L, const DDG &G,
                                         const IsaTable &Isa,
                                         const Partition &P,
                                         unsigned NumClusters,
                                         unsigned BusLatency) {
  PartitionedGraph PG;
  buildInto(PG, L, G, Isa, P, NumClusters, BusLatency);
  return PG;
}

void PartitionedGraph::buildInto(PartitionedGraph &PG, const Loop &L,
                                 const DDG &G, const IsaTable &Isa,
                                 const Partition &P, unsigned NumClusters,
                                 unsigned BusLatency,
                                 std::vector<int> *CopyScratch,
                                 const std::vector<unsigned> *NodeLatencies) {
  assert(P.size() == G.size() && "partition does not cover the DDG");
  PG.NumClustersVal = NumClusters;
  PG.Nodes.clear();
  PG.Edges.clear();

  for (unsigned I = 0; I < G.size(); ++I) {
    assert(P.cluster(I) < NumClusters && "cluster id out of range");
    PGNode N;
    N.Domain = P.cluster(I);
    N.Op = L.Ops[I].Op;
    N.LatencyCycles = Isa.latency(N.Op);
    N.Kind = fuKindOf(N.Op);
    N.OrigOp = static_cast<int>(I);
    PG.Nodes.push_back(N);
  }

  std::vector<unsigned> LocalLat;
  if (!NodeLatencies) {
    Isa.nodeLatenciesInto(LocalLat, L);
    NodeLatencies = &LocalLat;
  }
  const std::vector<unsigned> &NodeLat = *NodeLatencies;
  assert(NodeLat.size() == G.size() && "latency vector does not match");

  // One copy per (produced value, destination cluster); consumers at
  // different distances share it (the copy follows the producer at
  // distance 0; each consumer keeps its original distance). The flat
  // index table replaces the old std::map: same lookup semantics, no
  // per-copy node allocation.
  std::vector<int> LocalCopyIx;
  std::vector<int> &CopyIx = CopyScratch ? *CopyScratch : LocalCopyIx;
  CopyIx.assign(static_cast<size_t>(G.size()) * NumClusters, -1);
  auto copyFor = [&](unsigned Value, unsigned DstCluster) -> unsigned {
    int &Slot = CopyIx[static_cast<size_t>(Value) * NumClusters + DstCluster];
    if (Slot >= 0)
      return static_cast<unsigned>(Slot);
    PGNode C;
    C.Domain = PG.busDomain();
    C.Op = Opcode::Copy;
    C.LatencyCycles = BusLatency;
    C.Kind = FUKind::Bus;
    C.OrigOp = -1;
    C.CopiedValue = static_cast<int>(Value);
    unsigned Ix = PG.size();
    PG.Nodes.push_back(C);
    PG.Edges.push_back({Value, Ix, /*Distance=*/0,
                        /*LatencyCycles=*/NodeLat[Value],
                        /*CarriesValue=*/true});
    Slot = static_cast<int>(Ix);
    return Ix;
  };

  for (const auto &E : G.edges()) {
    bool Carries = isValueCarrying(E.Kind);
    unsigned Lat = edgeLatency(E, NodeLat);
    if (!Carries || P.cluster(E.Src) == P.cluster(E.Dst)) {
      PG.Edges.push_back({E.Src, E.Dst, E.Distance, Lat, Carries});
      continue;
    }
    unsigned C = copyFor(E.Src, P.cluster(E.Dst));
    PG.Edges.push_back({C, E.Dst, E.Distance, /*LatencyCycles=*/BusLatency,
                        /*CarriesValue=*/true});
  }

  PG.finalizeAdjacency();
}
