//===- sched/PartitionedGraph.cpp - DDG + cluster assignment + copies ------===//

#include "sched/PartitionedGraph.h"

#include <cassert>
#include <map>

using namespace hcvliw;

void PartitionedGraph::addNode(const PGNode &N) {
  Nodes.push_back(N);
  OutEdgeIx.emplace_back();
  InEdgeIx.emplace_back();
}

void PartitionedGraph::addEdge(const PGEdge &E) {
  assert(E.Src < Nodes.size() && E.Dst < Nodes.size() &&
         "edge endpoint out of range");
  unsigned Ix = static_cast<unsigned>(Edges.size());
  Edges.push_back(E);
  OutEdgeIx[E.Src].push_back(Ix);
  InEdgeIx[E.Dst].push_back(Ix);
}

unsigned PartitionedGraph::numCopies() const {
  unsigned N = 0;
  for (const auto &Node : Nodes)
    if (Node.OrigOp < 0)
      ++N;
  return N;
}

PartitionedGraph PartitionedGraph::build(const Loop &L, const DDG &G,
                                         const IsaTable &Isa,
                                         const Partition &P,
                                         unsigned NumClusters,
                                         unsigned BusLatency) {
  assert(P.size() == G.size() && "partition does not cover the DDG");
  PartitionedGraph PG;
  PG.NumClustersVal = NumClusters;

  for (unsigned I = 0; I < G.size(); ++I) {
    assert(P.cluster(I) < NumClusters && "cluster id out of range");
    PGNode N;
    N.Domain = P.cluster(I);
    N.Op = L.Ops[I].Op;
    N.LatencyCycles = Isa.latency(N.Op);
    N.Kind = fuKindOf(N.Op);
    N.OrigOp = static_cast<int>(I);
    PG.addNode(N);
  }

  std::vector<unsigned> NodeLat = Isa.nodeLatencies(L);

  // One copy per (produced value, destination cluster); consumers at
  // different distances share it (the copy follows the producer at
  // distance 0; each consumer keeps its original distance).
  std::map<std::pair<unsigned, unsigned>, unsigned> CopyIx;
  auto copyFor = [&](unsigned Value, unsigned DstCluster) -> unsigned {
    auto Key = std::make_pair(Value, DstCluster);
    auto It = CopyIx.find(Key);
    if (It != CopyIx.end())
      return It->second;
    PGNode C;
    C.Domain = PG.busDomain();
    C.Op = Opcode::Copy;
    C.LatencyCycles = BusLatency;
    C.Kind = FUKind::Bus;
    C.OrigOp = -1;
    C.CopiedValue = static_cast<int>(Value);
    unsigned Ix = PG.size();
    PG.addNode(C);
    PG.addEdge({Value, Ix, /*Distance=*/0, /*LatencyCycles=*/NodeLat[Value],
                /*CarriesValue=*/true});
    CopyIx.emplace(Key, Ix);
    return Ix;
  };

  for (const auto &E : G.edges()) {
    bool Carries = isValueCarrying(E.Kind);
    unsigned Lat = edgeLatency(E, NodeLat);
    if (!Carries || P.cluster(E.Src) == P.cluster(E.Dst)) {
      PG.addEdge({E.Src, E.Dst, E.Distance, Lat, Carries});
      continue;
    }
    unsigned C = copyFor(E.Src, P.cluster(E.Dst));
    PG.addEdge({C, E.Dst, E.Distance, /*LatencyCycles=*/BusLatency,
                /*CarriesValue=*/true});
  }
  return PG;
}
