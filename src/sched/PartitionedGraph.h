//===- sched/PartitionedGraph.h - DDG + cluster assignment + copies -*-C++-*-===//
///
/// \file
/// The scheduling-level graph: the loop's DDG specialized by a cluster
/// assignment, with one explicit *copy node* per (produced value,
/// consuming cluster) pair whose flow edges cross clusters. Copy nodes
/// execute on the bus domain; every node therefore has a clock domain
/// (its cluster, or the bus) and the scheduler treats all nodes
/// uniformly. Memory-ordering edges never materialize copies (no value
/// moves; they only constrain time).
///
/// Edge timing rule (absolute nanoseconds, Section 2.2 + sync queues):
///
///   ready(u)  = start(u) + latency(u) * period(domain(u))
///   arrive(v) = crossDomainArrival(ready(u), period(u), period(v))
///   start(v) >= arrive(v) - distance * IT
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_PARTITIONEDGRAPH_H
#define HCVLIW_SCHED_PARTITIONEDGRAPH_H

#include "ir/DDG.h"
#include "machine/IsaTable.h"
#include "sched/Partition.h"

#include <vector>

namespace hcvliw {

/// One schedulable node: an original operation or a materialized copy.
struct PGNode {
  /// Cluster id, or numClusters() for the bus domain.
  unsigned Domain = 0;
  Opcode Op = Opcode::IntAdd;
  /// Execution latency in cycles of this node's own domain.
  unsigned LatencyCycles = 1;
  FUKind Kind = FUKind::IntFU;
  /// Original DDG node id; -1 for copies.
  int OrigOp = -1;
  /// For copies: the DDG node whose value is transported.
  int CopiedValue = -1;
};

struct PGEdge {
  unsigned Src = 0;
  unsigned Dst = 0;
  unsigned Distance = 0;
  /// Cycles (of Src's domain) between start(Src) and the time this
  /// dependence is satisfied: the producer latency for value/mem-flow
  /// edges, 1 for anti/output ordering edges.
  unsigned LatencyCycles = 1;
  /// Whether the edge carries a register value (defines lifetimes).
  bool CarriesValue = true;
};

class PartitionedGraph {
  unsigned NumClustersVal = 0;
  std::vector<PGNode> Nodes;
  std::vector<PGEdge> Edges;
  /// CSR adjacency (built once per buildInto, after all edges exist):
  /// node N's out-edge indices are OutIx[OutStart[N] .. OutStart[N+1]),
  /// in insertion order — identical iteration order to the per-node
  /// rows this replaces, but four flat arrays instead of two
  /// heap-allocated rows per node, so a graph that escapes into a
  /// LoopScheduleResult costs O(1) allocations to rebuild, not O(N).
  std::vector<unsigned> OutStart, OutIx, InStart, InIx;

  void finalizeAdjacency();

public:
  /// Builds the graph for \p L under assignment \p P. \p BusLatency is
  /// the transfer latency of one copy in bus cycles.
  static PartitionedGraph build(const Loop &L, const DDG &G,
                                const IsaTable &Isa, const Partition &P,
                                unsigned NumClusters, unsigned BusLatency);

  /// In-place form of build: reuses \p PG's node/edge/adjacency buffers
  /// and (when given) \p CopyScratch, a flat (value, cluster) -> copy
  /// index table sized G.size() * NumClusters, and \p NodeLatencies,
  /// the Isa.nodeLatencies(L) vector callers usually already hold. The
  /// partitioner scores hundreds of candidate assignments per loop and
  /// the Figure 5 driver rebuilds per attempt; this keeps all of that
  /// allocation-free in steady state. Identical output to build().
  static void buildInto(PartitionedGraph &PG, const Loop &L, const DDG &G,
                        const IsaTable &Isa, const Partition &P,
                        unsigned NumClusters, unsigned BusLatency,
                        std::vector<int> *CopyScratch = nullptr,
                        const std::vector<unsigned> *NodeLatencies = nullptr);

  /// Rebuilds a graph from raw node/edge lists — the persistent
  /// schedule-cache loader's path (runtime/ResultSerde): the CSR
  /// adjacency is rederived from \p Edges exactly as buildInto derives
  /// it, so a deserialized graph is indistinguishable from the one
  /// that was serialized. Every edge endpoint must be < Nodes.size().
  static PartitionedGraph fromRaw(unsigned NumClusters,
                                  std::vector<PGNode> Nodes,
                                  std::vector<PGEdge> Edges);

  unsigned numClusters() const { return NumClustersVal; }
  unsigned busDomain() const { return NumClustersVal; }
  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }
  unsigned numCopies() const;

  const PGNode &node(unsigned N) const { return Nodes[N]; }
  const std::vector<PGEdge> &edges() const { return Edges; }
  const PGEdge &edge(unsigned E) const { return Edges[E]; }
  EdgeIxSpan outEdges(unsigned N) const {
    return {OutIx.data() + OutStart[N], OutIx.data() + OutStart[N + 1]};
  }
  EdgeIxSpan inEdges(unsigned N) const {
    return {InIx.data() + InStart[N], InIx.data() + InStart[N + 1]};
  }
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_PARTITIONEDGRAPH_H
