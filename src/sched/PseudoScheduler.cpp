//===- sched/PseudoScheduler.cpp - Fast schedule estimates ------------------===//

#include "sched/PseudoScheduler.h"
#include "sched/HeteroModuloScheduler.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

PseudoSchedule hcvliw::estimatePseudoSchedule(const Loop &L, const DDG &G,
                                              const MachineDescription &M,
                                              const MachinePlan &Plan,
                                              const Partition &P,
                                              PseudoScratch *Scratch) {
  PseudoSchedule PS;
  estimatePseudoScheduleInto(PS, L, G, M, Plan, P, Scratch);
  return PS;
}

void hcvliw::estimatePseudoScheduleInto(PseudoSchedule &PS, const Loop &L,
                                        const DDG &G,
                                        const MachineDescription &M,
                                        const MachinePlan &Plan,
                                        const Partition &P,
                                        PseudoScratch *Scratch) {
  PseudoScratch Local;
  PseudoScratch &S = Scratch ? *Scratch : Local;

  // Reset every field (PS may be a reused scratch result).
  PS.Feasible = false;
  PS.Reason.clear();
  PS.Overflow = 0;
  PS.Comms = 0;
  PS.ItLengthNs = Rational(0);
  unsigned NC = M.numClusters();
  PS.WInsPerCluster.assign(NC, 0.0);
  PS.LifetimeProxy.assign(NC, 0);

  auto flag = [&](const char *Reason, double Amount) {
    if (PS.Reason.empty())
      PS.Reason = Reason;
    PS.Overflow += Amount;
  };

  // Per-cluster, per-kind capacity at the plan's IIs (flat scratch
  // accumulator: Counts[C * NumFUKinds + K]).
  std::vector<unsigned> &Counts = S.Counts;
  Counts.assign(static_cast<size_t>(NC) * NumFUKinds, 0);
  for (unsigned I = 0; I < G.size(); ++I) {
    unsigned C = P.cluster(I);
    ++Counts[C * NumFUKinds + static_cast<unsigned>(fuKindOf(L.Ops[I].Op))];
    PS.WInsPerCluster[C] += M.Isa.energy(L.Ops[I].Op);
  }
  for (unsigned C = 0; C < NC; ++C)
    for (unsigned K = 0; K < NumFUKinds; ++K) {
      FUKind Kind = static_cast<FUKind>(K);
      unsigned Cnt = Counts[C * NumFUKinds + K];
      if (Kind == FUKind::Bus || Cnt == 0)
        continue;
      int64_t Slots = Plan.Clusters[C].II *
                      static_cast<int64_t>(M.Clusters[C].fuCount(Kind));
      if (Slots <= 0) {
        flag("cluster capacity exceeded", Cnt);
        continue;
      }
      if (static_cast<int64_t>(Cnt) > Slots)
        flag("cluster capacity exceeded",
             (static_cast<double>(Cnt) - static_cast<double>(Slots)) /
                 static_cast<double>(Slots));
    }

  // Materialize copies and check bus capacity.
  M.Isa.nodeLatenciesInto(S.NodeLat, L);
  PartitionedGraph::buildInto(S.PG, L, G, M.Isa, P, NC, M.BusLatency,
                              &S.CopySlots, &S.NodeLat);
  const PartitionedGraph &PG = S.PG;
  PS.Comms = PG.numCopies();
  int64_t BusSlots = Plan.Bus.II * static_cast<int64_t>(M.Buses);
  if (static_cast<int64_t>(PS.Comms) > BusSlots)
    flag("bus capacity exceeded",
         (static_cast<double>(PS.Comms) - static_cast<double>(BusSlots)) /
             static_cast<double>(BusSlots));

  // Recurrence feasibility + it_length from the exact ASAP fixpoint --
  // on the plan's integer tick grid when it has one (this estimate runs
  // once per refinement candidate, so it is the partitioner's hottest
  // clock math), through Rational otherwise. Both are exact and agree.
  if (TickGraph::buildInto(S.Ticks, PG, Plan)) {
    const TickGraph &T = S.Ticks;
    if (!T.computeAsapTicksInto(S.Asap)) {
      // No usable gradient for an unsatisfiable cycle: dominate every
      // capacity violation so refinement prefers fixing the recurrence.
      flag("recurrence infeasible", 1e3);
    } else {
      int64_t End = 0;
      for (unsigned N = 0; N < PG.size(); ++N)
        End = std::max(End,
                       S.Asap[N] +
                           static_cast<int64_t>(PG.node(N).LatencyCycles) *
                               T.periodTicks(N));
      PS.ItLengthNs = T.grid().toNs(End);
    }
  } else {
    auto Asap = computeAsapTimes(PG, Plan);
    if (!Asap) {
      flag("recurrence infeasible", 1e3);
    } else {
      Rational End(0);
      for (unsigned N = 0; N < PG.size(); ++N) {
        Rational P2 = PG.node(N).Domain == PG.busDomain()
                          ? Plan.Bus.PeriodNs
                          : Plan.Clusters[PG.node(N).Domain].PeriodNs;
        End = Rational::max(
            End, (*Asap)[N] + Rational(PG.node(N).LatencyCycles) * P2);
      }
      PS.ItLengthNs = End;
    }
  }

  // Register proxy: each value's lifetime is roughly its producer
  // latency plus a few cycles of consumer spread; cross-cluster values
  // add a landing register in the destination cluster. The spread term
  // is half an II capped at SpreadCapCycles: the modulo scheduler
  // places consumers right above their producers, so real lifetimes do
  // not grow with the II — an uncapped II/2 term would make any
  // cluster holding more than 2x its register count infeasible at
  // *every* II (the big-loop ceiling), which the exact post-scheduling
  // pressure check contradicts.
  constexpr int64_t SpreadCapCycles = 4;
  for (unsigned I = 0; I < G.size(); ++I) {
    if (!L.Ops[I].definesValue())
      continue;
    unsigned C = P.cluster(I);
    PS.LifetimeProxy[C] +=
        M.Isa.latency(L.Ops[I].Op) +
        std::min<int64_t>(Plan.Clusters[C].II / 2, SpreadCapCycles);
  }
  for (unsigned N = G.size(); N < PG.size(); ++N) {
    for (unsigned EIx : PG.outEdges(N)) {
      unsigned Dst = PG.node(PG.edge(EIx).Dst).Domain;
      if (Dst != PG.busDomain()) {
        PS.LifetimeProxy[Dst] +=
            std::min<int64_t>(Plan.Clusters[Dst].II / 2, SpreadCapCycles) + 1;
        break;
      }
    }
  }
  for (unsigned C = 0; C < NC; ++C) {
    int64_t Budget = static_cast<int64_t>(M.Clusters[C].Registers) *
                     Plan.Clusters[C].II;
    if (Budget > 0 && PS.LifetimeProxy[C] > Budget)
      flag("register lifetime budget exceeded",
           (static_cast<double>(PS.LifetimeProxy[C]) -
            static_cast<double>(Budget)) /
               static_cast<double>(Budget));
  }

  PS.Feasible = PS.Reason.empty();
}
