//===- sched/PseudoScheduler.h - Fast schedule estimates ---------*- C++ -*-===//
///
/// \file
/// Pseudo-schedules (Section 4.1.2, after [3]): a cheap approximation of
/// the schedule a partition would obtain, used to compare candidate
/// partitions during refinement without running the full scheduler.
/// The estimate checks
///   - per-cluster functional-unit capacity at the plan's IIs,
///   - bus capacity against the partition's communication count,
///   - recurrence feasibility through the exact ASAP fixpoint,
///   - a sum-of-lifetimes register proxy (Section 3.2's third bullet),
/// and reports the activity distribution the energy model needs (the
/// paper's p_Ci) plus an it_length approximation from the ASAP times.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_PSEUDOSCHEDULER_H
#define HCVLIW_SCHED_PSEUDOSCHEDULER_H

#include "sched/PartitionedGraph.h"
#include "sched/Schedule.h"
#include "sched/TickGraph.h"

#include <string>
#include <vector>

namespace hcvliw {

struct PseudoSchedule {
  bool Feasible = false;
  std::string Reason;
  /// Graded infeasibility: total normalized violation over all checks
  /// (0 when feasible). Refinement uses this as a gradient so greedy
  /// moves can walk *out* of an infeasible region instead of stalling
  /// on a flat "infinite" score.
  double Overflow = 0;

  /// Inter-cluster transfers per iteration (copy nodes materialized).
  unsigned Comms = 0;
  /// Energy-weighted instructions per cluster (normalizes to p_Ci).
  std::vector<double> WInsPerCluster;
  /// Approximate time for one iteration to complete.
  Rational ItLengthNs;
  /// Sum-of-lifetimes register proxy per cluster, in cluster cycles.
  std::vector<int64_t> LifetimeProxy;
};

/// Reusable buffers for estimatePseudoSchedule. Partition refinement
/// scores one pseudo-schedule per candidate move — hundreds per loop —
/// and each estimate materializes a PartitionedGraph plus a tick
/// lowering; with a scratch, the whole refinement runs allocation-free
/// in steady state. Contents carry nothing between calls.
struct PseudoScratch {
  PartitionedGraph PG;
  std::vector<int> CopySlots;
  std::vector<unsigned> NodeLat;
  TickGraph Ticks;
  std::vector<int64_t> Asap;
  std::vector<unsigned> Counts; ///< flat [cluster][kind] op counts
  PseudoSchedule Result;        ///< reused by scorePartition
};

/// Estimates the schedule quality of \p P for \p L under \p Plan.
/// \p Scratch provides reusable buffers (optional; identical results).
PseudoSchedule estimatePseudoSchedule(const Loop &L, const DDG &G,
                                      const MachineDescription &M,
                                      const MachinePlan &Plan,
                                      const Partition &P,
                                      PseudoScratch *Scratch = nullptr);

/// In-place form: writes the estimate into \p PS, reusing its vectors
/// (refinement scores hundreds of candidates; with this plus a scratch
/// the whole scoring loop is allocation-free in steady state).
void estimatePseudoScheduleInto(PseudoSchedule &PS, const Loop &L,
                                const DDG &G, const MachineDescription &M,
                                const MachinePlan &Plan, const Partition &P,
                                PseudoScratch *Scratch = nullptr);

} // namespace hcvliw

#endif // HCVLIW_SCHED_PSEUDOSCHEDULER_H
