//===- sched/RegisterPressure.cpp - MaxLive computation ---------------------===//

#include "sched/RegisterPressure.h"
#include "mcd/SyncModel.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

bool RegisterPressureResult::fits(const MachineDescription &M) const {
  for (unsigned C = 0; C < MaxLive.size(); ++C)
    if (MaxLive[C] > static_cast<int64_t>(M.Clusters[C].Registers))
      return false;
  return true;
}

RegisterPressureResult
hcvliw::computeRegisterPressure(const PartitionedGraph &PG,
                                const Schedule &S) {
  unsigned NC = PG.numClusters();
  RegisterPressureResult R;
  R.MaxLive.assign(NC, 0);
  R.SumLifetimes.assign(NC, 0);

  // Per-cluster modulo pressure accumulators.
  std::vector<std::vector<int64_t>> Pressure(NC);
  for (unsigned C = 0; C < NC; ++C)
    Pressure[C].assign(static_cast<size_t>(S.Plan.Clusters[C].II), 0);

  // A node's value occupies a register in cluster HomeCluster from
  // WriteNs until the latest read among its value-carrying out-edges.
  for (unsigned N = 0; N < PG.size(); ++N) {
    const PGNode &Node = PG.node(N);
    bool DefinesRegister =
        Node.Op != Opcode::Store &&
        (Node.OrigOp >= 0 || Node.CopiedValue >= 0);
    if (!DefinesRegister)
      continue;

    // Where does the value live, and when is it written?
    unsigned Home;
    Rational WriteNs;
    if (Node.Domain != PG.busDomain()) {
      Home = Node.Domain;
      WriteNs = S.readyNs(PG, N);
    } else {
      // A copy's payload lands in the (unique) cluster of its consumers.
      int HomeInt = -1;
      for (unsigned EIx : PG.outEdges(N)) {
        unsigned DstDom = PG.node(PG.edge(EIx).Dst).Domain;
        assert(DstDom != PG.busDomain() && "copy feeding a copy");
        assert((HomeInt < 0 || HomeInt == static_cast<int>(DstDom)) &&
               "copy with consumers in several clusters");
        HomeInt = static_cast<int>(DstDom);
      }
      if (HomeInt < 0)
        continue; // dead copy: nothing to hold
      Home = static_cast<unsigned>(HomeInt);
      WriteNs = crossDomainArrival(S.readyNs(PG, N), S.Plan.Bus.PeriodNs,
                                   S.Plan.Clusters[Home].PeriodNs);
    }

    bool HasUse = false;
    Rational LastReadNs(0);
    for (unsigned EIx : PG.outEdges(N)) {
      const PGEdge &E = PG.edge(EIx);
      if (!E.CarriesValue)
        continue;
      Rational ReadNs = S.startNs(PG, E.Dst) +
                        Rational(E.Distance) * S.Plan.ITNs;
      if (!HasUse || LastReadNs < ReadNs)
        LastReadNs = ReadNs;
      HasUse = true;
    }
    if (!HasUse)
      continue;

    const Rational &P = S.Plan.Clusters[Home].PeriodNs;
    int64_t II = S.Plan.Clusters[Home].II;
    int64_t DefSlot = (WriteNs / P).floor();
    int64_t EndSlot = (LastReadNs / P).ceil();
    int64_t Len = std::max<int64_t>(1, EndSlot - DefSlot);
    R.SumLifetimes[Home] += Len;

    int64_t Full = Len / II;
    int64_t Rem = Len % II;
    for (int64_t M = 0; M < II; ++M) {
      int64_t Shift = (M - DefSlot) % II;
      if (Shift < 0)
        Shift += II;
      Pressure[Home][static_cast<size_t>(M)] += Full + (Shift < Rem ? 1 : 0);
    }
  }

  for (unsigned C = 0; C < NC; ++C)
    for (int64_t V : Pressure[C])
      R.MaxLive[C] = std::max(R.MaxLive[C], V);
  return R;
}
