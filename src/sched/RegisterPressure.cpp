//===- sched/RegisterPressure.cpp - MaxLive computation ---------------------===//

#include "sched/RegisterPressure.h"
#include "mcd/SyncModel.h"
#include "sched/TickGraph.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

bool RegisterPressureResult::fits(const MachineDescription &M) const {
  for (unsigned C = 0; C < MaxLive.size(); ++C)
    if (MaxLive[C] > static_cast<int64_t>(M.Clusters[C].Registers))
      return false;
  return true;
}

namespace {

/// True when node \p N defines a register and, for copies, resolves the
/// (unique) consumer cluster the payload lands in. Shared between the
/// two arithmetic paths so they classify nodes identically.
bool valueHome(const PartitionedGraph &PG, unsigned N, unsigned &Home,
               bool &IsCopy) {
  const PGNode &Node = PG.node(N);
  bool DefinesRegister = Node.Op != Opcode::Store &&
                         (Node.OrigOp >= 0 || Node.CopiedValue >= 0);
  if (!DefinesRegister)
    return false;
  if (Node.Domain != PG.busDomain()) {
    Home = Node.Domain;
    IsCopy = false;
    return true;
  }
  // A copy's payload lands in the (unique) cluster of its consumers.
  int HomeInt = -1;
  for (unsigned EIx : PG.outEdges(N)) {
    unsigned DstDom = PG.node(PG.edge(EIx).Dst).Domain;
    assert(DstDom != PG.busDomain() && "copy feeding a copy");
    assert((HomeInt < 0 || HomeInt == static_cast<int>(DstDom)) &&
           "copy with consumers in several clusters");
    HomeInt = static_cast<int>(DstDom);
  }
  if (HomeInt < 0)
    return false; // dead copy: nothing to hold
  Home = static_cast<unsigned>(HomeInt);
  IsCopy = true;
  return true;
}

} // namespace

RegisterPressureResult
hcvliw::computeRegisterPressure(const PartitionedGraph &PG, const Schedule &S,
                                bool UseTickGrid, const TickGraph *Ticks,
                                PressureScratch *Scratch) {
  unsigned NC = PG.numClusters();
  RegisterPressureResult R;
  R.MaxLive.assign(NC, 0);
  R.SumLifetimes.assign(NC, 0);

  std::optional<TickGraph> Own;
  const TickGraph *T = nullptr;
  if (UseTickGrid) {
    if (Ticks && Ticks->valid()) {
      T = Ticks;
    } else if (!Ticks) {
      Own = TickGraph::build(PG, S.Plan);
      if (Own)
        T = &*Own;
    }
  }

  // A node's value occupies a register in cluster Home from its write
  // time until the latest read among its value-carrying out-edges.
  PressureScratch Local;
  PressureScratch &SS = Scratch ? *Scratch : Local;
  std::vector<RegLifetime> &Lifetimes = SS.Lifetimes;
  Lifetimes.clear();
  Lifetimes.reserve(PG.size());
  for (unsigned N = 0; N < PG.size(); ++N) {
    unsigned Home;
    bool IsCopy;
    if (!valueHome(PG, N, Home, IsCopy))
      continue;

    bool HasUse = false;
    int64_t DefSlot, EndSlot;
    if (T) {
      const PlanGrid &G = T->grid();
      int64_t Write = T->startTicks(N, S.Nodes[N].Slot) +
                      static_cast<int64_t>(PG.node(N).LatencyCycles) *
                          T->periodTicks(N);
      if (IsCopy)
        Write = crossDomainArrival(Write, G.busPeriodTicks(),
                                   G.clusterPeriodTicks(Home));
      int64_t LastRead = 0;
      for (unsigned EIx : PG.outEdges(N)) {
        const PGEdge &E = PG.edge(EIx);
        if (!E.CarriesValue)
          continue;
        int64_t Read = T->startTicks(E.Dst, S.Nodes[E.Dst].Slot) +
                       static_cast<int64_t>(E.Distance) * G.itTicks();
        if (!HasUse || LastRead < Read)
          LastRead = Read;
        HasUse = true;
      }
      if (!HasUse)
        continue;
      int64_t P = G.clusterPeriodTicks(Home);
      DefSlot = floorDivTick(Write, P);
      EndSlot = ceilDivTick(LastRead, P);
    } else {
      Rational WriteNs = S.readyNs(PG, N);
      if (IsCopy)
        WriteNs = crossDomainArrival(WriteNs, S.Plan.Bus.PeriodNs,
                                     S.Plan.Clusters[Home].PeriodNs);
      Rational LastReadNs(0);
      for (unsigned EIx : PG.outEdges(N)) {
        const PGEdge &E = PG.edge(EIx);
        if (!E.CarriesValue)
          continue;
        Rational ReadNs =
            S.startNs(PG, E.Dst) + Rational(E.Distance) * S.Plan.ITNs;
        if (!HasUse || LastReadNs < ReadNs)
          LastReadNs = ReadNs;
        HasUse = true;
      }
      if (!HasUse)
        continue;
      const Rational &P = S.Plan.Clusters[Home].PeriodNs;
      DefSlot = (WriteNs / P).floor();
      EndSlot = (LastReadNs / P).ceil();
    }

    int64_t Len = std::max<int64_t>(1, EndSlot - DefSlot);
    R.SumLifetimes[Home] += Len;
    Lifetimes.push_back({Home, DefSlot, Len});
  }

  // Per-cluster modulo pressure accumulators: a lifetime of Len cycles
  // adds floor(Len / II) at every modulo slot plus one over Len mod II
  // slots starting at the def.
  std::vector<std::vector<int64_t>> &Pressure = SS.Pressure;
  Pressure.resize(NC);
  for (unsigned C = 0; C < NC; ++C)
    Pressure[C].assign(static_cast<size_t>(S.Plan.Clusters[C].II), 0);
  for (const RegLifetime &L : Lifetimes) {
    int64_t II = S.Plan.Clusters[L.Home].II;
    int64_t Full = L.Len / II;
    int64_t Rem = L.Len % II;
    for (int64_t M = 0; M < II; ++M) {
      int64_t Shift = (M - L.DefSlot) % II;
      if (Shift < 0)
        Shift += II;
      Pressure[L.Home][static_cast<size_t>(M)] +=
          Full + (Shift < Rem ? 1 : 0);
    }
  }

  for (unsigned C = 0; C < NC; ++C)
    for (int64_t V : Pressure[C])
      R.MaxLive[C] = std::max(R.MaxLive[C], V);
  return R;
}
