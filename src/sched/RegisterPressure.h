//===- sched/RegisterPressure.h - MaxLive computation ------------*- C++ -*-===//
///
/// \file
/// Register pressure of a modulo schedule. Every value (a cluster-local
/// def, or a copy arriving into a cluster) lives from its write time to
/// its last read (reads of consumers d iterations later happen d*IT
/// later). In a modulo schedule a lifetime of L cluster cycles adds
/// floor(L / II) registers at every modulo slot plus one more over
/// L mod II slots; MaxLive is the peak over the II slots and must fit in
/// the cluster's register file. The Section 3.2 estimator uses the
/// coarser "sum of lifetimes <= registers * II" form, also provided.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_REGISTERPRESSURE_H
#define HCVLIW_SCHED_REGISTERPRESSURE_H

#include "sched/Schedule.h"

#include <vector>

namespace hcvliw {

class TickGraph;

struct RegisterPressureResult {
  /// Peak live values per cluster.
  std::vector<int64_t> MaxLive;
  /// Sum of lifetimes (cluster cycles) per cluster.
  std::vector<int64_t> SumLifetimes;

  /// True when every cluster's MaxLive fits its register file.
  bool fits(const MachineDescription &M) const;
};

/// One value's register occupation: [DefSlot, DefSlot + Len) in cluster
/// Home's slot space (exposed for the scratch buffers below).
struct RegLifetime {
  unsigned Home;
  int64_t DefSlot;
  int64_t Len;
};

/// Reusable buffers for computeRegisterPressure: the Figure 5 driver
/// computes pressure once per scheduling attempt, so sweep drivers pass
/// one scratch object instead of reallocating the lifetime list and the
/// per-cluster modulo accumulators every time.
struct PressureScratch {
  std::vector<RegLifetime> Lifetimes;
  std::vector<std::vector<int64_t>> Pressure;
};

/// Computes pressure on the plan's integer tick grid when it has one
/// (\p UseTickGrid, the default), falling back to the exact Rational
/// arithmetic otherwise; both forms are bit-identical. \p Ticks, when
/// non-null, must be the lowered (PG, S.Plan) pair and saves the
/// internal TickGraph build; \p Scratch provides reusable buffers.
RegisterPressureResult computeRegisterPressure(const PartitionedGraph &PG,
                                               const Schedule &S,
                                               bool UseTickGrid = true,
                                               const TickGraph *Ticks = nullptr,
                                               PressureScratch *Scratch =
                                                   nullptr);

} // namespace hcvliw

#endif // HCVLIW_SCHED_REGISTERPRESSURE_H
