//===- sched/Schedule.cpp - Modulo schedule artifact ------------------------===//

#include "sched/Schedule.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

Rational Schedule::periodOf(const PartitionedGraph &PG, unsigned Node) const {
  unsigned D = PG.node(Node).Domain;
  if (D == PG.busDomain())
    return Plan.Bus.PeriodNs;
  return Plan.Clusters[D].PeriodNs;
}

int64_t Schedule::iiOf(const PartitionedGraph &PG, unsigned Node) const {
  unsigned D = PG.node(Node).Domain;
  if (D == PG.busDomain())
    return Plan.Bus.II;
  return Plan.Clusters[D].II;
}

Rational Schedule::startNs(const PartitionedGraph &PG, unsigned Node) const {
  assert(Nodes[Node].Placed && "querying an unplaced node");
  return Rational(Nodes[Node].Slot) * periodOf(PG, Node);
}

Rational Schedule::readyNs(const PartitionedGraph &PG, unsigned Node) const {
  return startNs(PG, Node) +
         Rational(PG.node(Node).LatencyCycles) * periodOf(PG, Node);
}

Rational Schedule::itLengthNs(const PartitionedGraph &PG) const {
  Rational End(0);
  for (unsigned N = 0; N < PG.size(); ++N)
    if (Nodes[N].Placed)
      End = Rational::max(End, readyNs(PG, N));
  return End;
}

int64_t Schedule::stageCount(const PartitionedGraph &PG,
                             unsigned Domain) const {
  int64_t II = Domain == PG.busDomain() ? Plan.Bus.II
                                        : Plan.Clusters[Domain].II;
  int64_t MaxSlot = -1;
  for (unsigned N = 0; N < PG.size(); ++N)
    if (Nodes[N].Placed && PG.node(N).Domain == Domain)
      MaxSlot = std::max(MaxSlot, Nodes[N].Slot);
  if (MaxSlot < 0)
    return 0;
  return MaxSlot / II + 1;
}

Rational Schedule::execTimeNs(const PartitionedGraph &PG,
                              uint64_t TripCount) const {
  assert(TripCount >= 1 && "empty loop execution");
  return Rational(static_cast<int64_t>(TripCount) - 1) * Plan.ITNs +
         itLengthNs(PG);
}

std::string Schedule::str(const PartitionedGraph &PG) const {
  std::string Out = formatString("IT = %s ns\n", Plan.ITNs.str().c_str());
  for (unsigned C = 0; C < PG.numClusters(); ++C)
    Out += formatString("  cluster %u: II=%lld period=%s ns\n", C,
                        static_cast<long long>(Plan.Clusters[C].II),
                        Plan.Clusters[C].PeriodNs.str().c_str());
  Out += formatString("  bus: II=%lld period=%s ns\n",
                      static_cast<long long>(Plan.Bus.II),
                      Plan.Bus.PeriodNs.str().c_str());
  for (unsigned N = 0; N < PG.size(); ++N) {
    const PGNode &Node = PG.node(N);
    Out += formatString(
        "  n%-3u %-6s dom=%u slot=%lld unit=%u start=%s ns\n", N,
        opcodeName(Node.Op), Node.Domain,
        static_cast<long long>(Nodes[N].Slot), Nodes[N].Unit,
        Nodes[N].Placed ? startNs(PG, N).str().c_str() : "-");
  }
  return Out;
}
