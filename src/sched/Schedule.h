//===- sched/Schedule.h - Modulo schedule artifact ---------------*- C++ -*-===//
///
/// \file
/// The result of modulo scheduling one loop on the heterogeneous
/// machine: a slot (in the node's own clock domain), a functional unit,
/// and the derived absolute start time for every node of the partitioned
/// graph, together with the machine plan (IT and per-domain II/freq).
///
/// Execution time follows the paper's Section 2.2:
///   Texec = (N - 1) * IT + it_length
/// where it_length is the absolute time one iteration takes to drain.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_SCHEDULE_H
#define HCVLIW_SCHED_SCHEDULE_H

#include "mcd/DomainPlanner.h"
#include "sched/PartitionedGraph.h"

#include <string>
#include <vector>

namespace hcvliw {

struct ScheduledNode {
  bool Placed = false;
  int64_t Slot = 0; ///< issue cycle in the node's own domain
  unsigned Unit = 0;
};

class Schedule {
public:
  MachinePlan Plan;
  std::vector<ScheduledNode> Nodes;

  /// Running period of \p Node's domain under Plan.
  Rational periodOf(const PartitionedGraph &PG, unsigned Node) const;

  /// II of \p Node's domain under Plan.
  int64_t iiOf(const PartitionedGraph &PG, unsigned Node) const;

  Rational startNs(const PartitionedGraph &PG, unsigned Node) const;

  /// Completion time of \p Node (start + latency cycles in its domain).
  Rational readyNs(const PartitionedGraph &PG, unsigned Node) const;

  /// Time one iteration needs from the first issue to the last
  /// completion (the paper's it_length, in ns).
  Rational itLengthNs(const PartitionedGraph &PG) const;

  /// Stage count of \p Cluster: how many iterations overlap there.
  int64_t stageCount(const PartitionedGraph &PG, unsigned Domain) const;

  /// (N - 1) * IT + it_length.
  Rational execTimeNs(const PartitionedGraph &PG, uint64_t TripCount) const;

  /// Human-readable table of the schedule.
  std::string str(const PartitionedGraph &PG) const;
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_SCHEDULE_H
