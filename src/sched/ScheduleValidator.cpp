//===- sched/ScheduleValidator.cpp - Schedule invariant checks --------------===//

#include "sched/ScheduleValidator.h"
#include "sched/HeteroModuloScheduler.h"
#include "sched/TickGraph.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <tuple>

using namespace hcvliw;

std::string hcvliw::validateSchedule(const MachineDescription &M,
                                     const PartitionedGraph &PG,
                                     const Schedule &S,
                                     const ValidatorOptions &Opts) {
  if (S.Nodes.size() != PG.size())
    return "schedule does not cover the graph";

  // Per-domain II * running period must equal the IT exactly.
  for (unsigned C = 0; C < PG.numClusters(); ++C)
    if (Rational(S.Plan.Clusters[C].II) * S.Plan.Clusters[C].PeriodNs !=
        S.Plan.ITNs)
      return formatString("cluster %u: II * period != IT", C);
  if (Rational(S.Plan.Bus.II) * S.Plan.Bus.PeriodNs != S.Plan.ITNs)
    return "bus: II * period != IT";

  for (unsigned N = 0; N < PG.size(); ++N) {
    if (!S.Nodes[N].Placed)
      return formatString("node %u unplaced", N);
    if (S.Nodes[N].Slot < 0)
      return formatString("node %u at negative slot", N);
  }

  // Dependences under the exact timing rule -- on the plan's tick grid
  // when it has one (the same rule scaled by an exact common
  // denominator), through Rational otherwise.
  std::optional<TickGraph> Own;
  const TickGraph *T = nullptr;
  if (Opts.UseTickGrid) {
    if (Opts.Ticks && Opts.Ticks->valid()) {
      T = Opts.Ticks;
    } else if (!Opts.Ticks) {
      Own = TickGraph::build(PG, S.Plan);
      if (Own)
        T = &*Own;
    }
  }
  for (unsigned EIx = 0; EIx < PG.edges().size(); ++EIx) {
    const PGEdge &E = PG.edge(EIx);
    bool Violated;
    if (T) {
      int64_t Bound =
          T->edgeStartBound(EIx, T->startTicks(E.Src, S.Nodes[E.Src].Slot));
      Violated = T->startTicks(E.Dst, S.Nodes[E.Dst].Slot) < Bound;
    } else {
      Rational Bound = edgeStartBound(PG, S.Plan, E, S.startNs(PG, E.Src));
      Violated = S.startNs(PG, E.Dst) < Bound;
    }
    if (Violated)
      return formatString("edge %u->%u (dist %u) violated", E.Src, E.Dst,
                          E.Distance);
  }

  // Modulo resource conflicts: (domain, kind, unit, slot mod II) unique.
  // Sort-and-scan over one flat vector instead of a node-per-entry map:
  // the validator runs on every successful schedule, so it must not
  // dominate the driver's allocation budget.
  struct Cell {
    unsigned Domain, Kind, Unit;
    int64_t Mod;
    unsigned Node;
  };
  std::vector<Cell> Cells;
  Cells.reserve(PG.size());
  for (unsigned N = 0; N < PG.size(); ++N) {
    const PGNode &Node = PG.node(N);
    int64_t II = S.iiOf(PG, N);
    Cells.push_back({Node.Domain, static_cast<unsigned>(Node.Kind),
                     S.Nodes[N].Unit, S.Nodes[N].Slot % II, N});
    // The unit index must exist.
    unsigned Units = Node.Domain == PG.busDomain()
                         ? M.Buses
                         : M.Clusters[Node.Domain].fuCount(Node.Kind);
    if (S.Nodes[N].Unit >= Units)
      return formatString("node %u on nonexistent unit", N);
  }
  std::sort(Cells.begin(), Cells.end(), [](const Cell &A, const Cell &B) {
    return std::tie(A.Domain, A.Kind, A.Unit, A.Mod, A.Node) <
           std::tie(B.Domain, B.Kind, B.Unit, B.Mod, B.Node);
  });
  for (size_t I = 1; I < Cells.size(); ++I) {
    const Cell &A = Cells[I - 1], &B = Cells[I];
    if (A.Domain == B.Domain && A.Kind == B.Kind && A.Unit == B.Unit &&
        A.Mod == B.Mod)
      return formatString("nodes %u and %u share a reservation cell", A.Node,
                          B.Node);
  }

  if (Opts.CheckRegisterPressure) {
    RegisterPressureResult R =
        computeRegisterPressure(PG, S, Opts.UseTickGrid, Opts.Ticks);
    for (unsigned C = 0; C < PG.numClusters(); ++C)
      if (R.MaxLive[C] > static_cast<int64_t>(M.Clusters[C].Registers))
        return formatString("cluster %u: MaxLive %lld exceeds %u registers",
                            C, static_cast<long long>(R.MaxLive[C]),
                            M.Clusters[C].Registers);
  }
  return "";
}
