//===- sched/ScheduleValidator.h - Schedule invariant checks -----*- C++ -*-===//
///
/// \file
/// Independent re-verification of a finished modulo schedule: every
/// dependence satisfied under the exact cross-domain timing rule, no
/// modulo resource conflicts, per-domain II * period == IT, and
/// (optionally) register pressure within each cluster's file. Used by
/// the tests, the driver, and the simulator's self-checks.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_SCHEDULEVALIDATOR_H
#define HCVLIW_SCHED_SCHEDULEVALIDATOR_H

#include "sched/RegisterPressure.h"
#include "sched/Schedule.h"

#include <string>

namespace hcvliw {

class TickGraph;

struct ValidatorOptions {
  bool CheckRegisterPressure = true;
  /// Check dependences on the plan's integer tick grid when it has one
  /// (bit-identical to the Rational rule, which remains the fallback).
  bool UseTickGrid = true;
  /// Optional prebuilt tick view of the (PG, S.Plan) pair being
  /// validated: the driver already lowered one for the scheduler, so
  /// passing it here saves a redundant TickGraph build per attempt.
  const TickGraph *Ticks = nullptr;
};

/// Returns an empty string when the schedule is valid, else a
/// description of the first violated invariant.
std::string validateSchedule(const MachineDescription &M,
                             const PartitionedGraph &PG, const Schedule &S,
                             const ValidatorOptions &Opts = ValidatorOptions());

} // namespace hcvliw

#endif // HCVLIW_SCHED_SCHEDULEVALIDATOR_H
