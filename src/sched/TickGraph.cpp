//===- sched/TickGraph.cpp - Tick-domain view of a partitioned graph -------===//

#include "sched/TickGraph.h"

using namespace hcvliw;

std::optional<TickGraph> TickGraph::build(const PartitionedGraph &Graph,
                                          const MachinePlan &Plan) {
  PlanGrid Grid = PlanGrid::compute(Plan);
  if (!Grid.valid())
    return std::nullopt;

  TickGraph T;
  T.PG = &Graph;
  T.Grid = Grid;

  unsigned N = Graph.size();
  unsigned Bus = Graph.busDomain();
  T.PeriodTicksVec.resize(N);
  T.IIsVec.resize(N);
  for (unsigned I = 0; I < N; ++I) {
    unsigned D = Graph.node(I).Domain;
    T.PeriodTicksVec[I] = Grid.periodTicks(D, Bus);
    T.IIsVec[I] = D == Bus ? Plan.Bus.II : Plan.Clusters[D].II;
  }

  size_t NE = Graph.edges().size();
  T.EdgeLatTicks.resize(NE);
  T.EdgeDistTicks.resize(NE);
  for (size_t E = 0; E < NE; ++E) {
    const PGEdge &Edge = Graph.edge(static_cast<unsigned>(E));
    T.EdgeLatTicks[E] = static_cast<int64_t>(Edge.LatencyCycles) *
                        T.PeriodTicksVec[Edge.Src];
    T.EdgeDistTicks[E] =
        static_cast<int64_t>(Edge.Distance) * Grid.itTicks();
  }
  return T;
}

std::optional<std::vector<int64_t>> TickGraph::computeAsapTicks() const {
  unsigned N = PG->size();
  std::vector<int64_t> Start(N, 0);
  // Longest-path fixpoint; with V nodes, a change in round V proves an
  // unsatisfiable (positive) dependence cycle for this IT. Mirrors the
  // Rational computeAsapTimes round for round.
  for (unsigned Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (unsigned EIx = 0; EIx < PG->edges().size(); ++EIx) {
      const PGEdge &E = PG->edge(EIx);
      int64_t Bound = edgeStartBound(EIx, Start[E.Src]);
      if (Start[E.Dst] < Bound) {
        // Starts are slot-aligned: round the bound up to the domain tick.
        int64_t Aligned = alignUpToTick(Bound, PeriodTicksVec[E.Dst]);
        if (Start[E.Dst] < Aligned) {
          Start[E.Dst] = Aligned;
          Changed = true;
        }
      }
    }
    if (!Changed)
      return Start;
  }
  return std::nullopt;
}
