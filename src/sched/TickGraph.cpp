//===- sched/TickGraph.cpp - Tick-domain view of a partitioned graph -------===//

#include "sched/TickGraph.h"

using namespace hcvliw;

std::optional<TickGraph> TickGraph::build(const PartitionedGraph &Graph,
                                          const MachinePlan &Plan) {
  TickGraph T;
  if (!buildInto(T, Graph, Plan))
    return std::nullopt;
  return T;
}

bool TickGraph::buildInto(TickGraph &T, const PartitionedGraph &Graph,
                          const MachinePlan &Plan) {
  PlanGrid::computeInto(T.Grid, Plan);
  if (!T.Grid.valid()) {
    T.PG = nullptr;
    return false;
  }
  T.PG = &Graph;

  unsigned N = Graph.size();
  unsigned Bus = Graph.busDomain();
  T.PeriodTicksVec.resize(N);
  T.IIsVec.resize(N);
  for (unsigned I = 0; I < N; ++I) {
    unsigned D = Graph.node(I).Domain;
    T.PeriodTicksVec[I] = T.Grid.periodTicks(D, Bus);
    T.IIsVec[I] = D == Bus ? Plan.Bus.II : Plan.Clusters[D].II;
  }

  size_t NE = Graph.edges().size();
  T.EdgeLatTicks.resize(NE);
  T.EdgeDistTicks.resize(NE);
  for (size_t E = 0; E < NE; ++E) {
    const PGEdge &Edge = Graph.edge(static_cast<unsigned>(E));
    T.EdgeLatTicks[E] = static_cast<int64_t>(Edge.LatencyCycles) *
                        T.PeriodTicksVec[Edge.Src];
    T.EdgeDistTicks[E] =
        static_cast<int64_t>(Edge.Distance) * T.Grid.itTicks();
  }
  return true;
}

std::optional<std::vector<int64_t>> TickGraph::computeAsapTicks() const {
  std::vector<int64_t> Start;
  if (!computeAsapTicksInto(Start))
    return std::nullopt;
  return Start;
}

bool TickGraph::computeAsapTicksInto(std::vector<int64_t> &Start) const {
  unsigned N = PG->size();
  Start.assign(N, 0);
  // Longest-path fixpoint as a FIFO worklist in waves: wave k relaxes
  // the out-edges of nodes raised in wave k-1, so each edge is visited
  // only when its source actually changed (the round-based reference
  // rescans every edge every round). The least fixpoint of a monotone
  // relaxation is unique, so the values are identical to the reference;
  // and a change in wave N still proves an unsatisfiable (positive)
  // dependence cycle — a justification chain of more than N edges must
  // revisit a node, exactly the reference's change-in-round-N argument.
  WaveCur.resize(N);
  for (unsigned I = 0; I < N; ++I)
    WaveCur[I] = I;
  InWave.assign(N, 0);
  WaveNext.clear();
  for (unsigned Wave = 0; Wave <= N; ++Wave) {
    for (unsigned V : WaveCur) {
      InWave[V] = 0;
      for (unsigned EIx : PG->outEdges(V)) {
        const PGEdge &E = PG->edge(EIx);
        int64_t Bound = edgeStartBound(EIx, Start[V]);
        if (Start[E.Dst] < Bound) {
          // Starts are slot-aligned: round the bound up to the domain
          // tick.
          int64_t Aligned = alignUpToTick(Bound, PeriodTicksVec[E.Dst]);
          if (Start[E.Dst] < Aligned) {
            Start[E.Dst] = Aligned;
            if (!InWave[E.Dst]) {
              InWave[E.Dst] = 1;
              WaveNext.push_back(E.Dst);
            }
          }
        }
      }
    }
    if (WaveNext.empty())
      return true;
    WaveCur.swap(WaveNext);
    WaveNext.clear();
  }
  return false;
}
