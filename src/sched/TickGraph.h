//===- sched/TickGraph.h - Tick-domain view of a partitioned graph -*-C++-*-===//
///
/// \file
/// The scheduling hot path's integer view of one (PartitionedGraph,
/// MachinePlan) pair: the plan lowered onto its PlanGrid plus per-node
/// and per-edge tick constants precomputed once --
///
///   PeriodTicks[n]  running period of n's domain, in ticks
///   IIs[n]          II of n's domain (slots per IT)
///   EdgeLatTicks[e] LatencyCycles(e) * period(src(e)), in ticks
///   EdgeDistTicks[e] Distance(e) * IT, in ticks
///
/// so the ASAP/ALAP fixpoints, edgeStartBound, the placement/ejection
/// loop, the validator, and the register-pressure computation are pure
/// integer arithmetic. Tick results are bit-identical to the Rational
/// reference (every quantity is the Rational value times ticksPerNs,
/// exactly); HeteroModuloScheduler's retained Rational path and
/// tests/sched/TickDomainTest pin that equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SCHED_TICKGRAPH_H
#define HCVLIW_SCHED_TICKGRAPH_H

#include "mcd/PlanGrid.h"
#include "mcd/SyncModel.h"
#include "sched/PartitionedGraph.h"

#include <optional>
#include <vector>

namespace hcvliw {

class TickGraph {
  const PartitionedGraph *PG = nullptr;
  PlanGrid Grid;
  std::vector<int64_t> PeriodTicksVec; ///< per node
  std::vector<int64_t> IIsVec;         ///< per node
  std::vector<int64_t> EdgeLatTicks;   ///< per edge: latency * period(src)
  std::vector<int64_t> EdgeDistTicks;  ///< per edge: distance * IT
  /// Worklist buffers of computeAsapTicksInto, reused across calls (a
  /// TickGraph lives in a per-thread scratch arena; mutable because the
  /// fixpoint is logically const).
  mutable std::vector<unsigned> WaveCur, WaveNext;
  mutable std::vector<uint8_t> InWave;

public:
  /// Lowers \p Graph under \p Plan; std::nullopt when the plan has no
  /// valid grid (LCM overflow) and callers must take the Rational path.
  static std::optional<TickGraph> build(const PartitionedGraph &Graph,
                                        const MachinePlan &Plan);

  /// In-place form of build: reuses \p T's per-node/per-edge vectors.
  /// Returns false (leaving T invalid) when the plan has no valid grid.
  /// The scheduling chain lowers one TickGraph per (partition, IT)
  /// attempt, so sweep drivers pass one scratch object instead of
  /// reallocating the four vectors every attempt.
  static bool buildInto(TickGraph &T, const PartitionedGraph &Graph,
                        const MachinePlan &Plan);

  /// Whether this object holds a lowered graph (buildInto succeeded).
  bool valid() const { return PG != nullptr && Grid.valid(); }

  const PlanGrid &grid() const { return Grid; }
  const PartitionedGraph &graph() const { return *PG; }
  int64_t itTicks() const { return Grid.itTicks(); }
  int64_t periodTicks(unsigned Node) const { return PeriodTicksVec[Node]; }
  int64_t iiOf(unsigned Node) const { return IIsVec[Node]; }
  int64_t edgeLatTicks(unsigned EIx) const { return EdgeLatTicks[EIx]; }
  int64_t edgeDistTicks(unsigned EIx) const { return EdgeDistTicks[EIx]; }

  /// start(n) in ticks when n issues at \p Slot of its own domain.
  int64_t startTicks(unsigned Node, int64_t Slot) const {
    return Slot * PeriodTicksVec[Node];
  }

  /// Tick form of hcvliw::edgeStartBound for edge index \p EIx.
  int64_t edgeStartBound(unsigned EIx, int64_t SrcStartTicks) const {
    const PGEdge &E = PG->edge(EIx);
    int64_t Ready = SrcStartTicks + EdgeLatTicks[EIx];
    int64_t Arrive = crossDomainArrival(Ready, PeriodTicksVec[E.Src],
                                        PeriodTicksVec[E.Dst]);
    return Arrive - EdgeDistTicks[EIx];
  }

  /// Tick form of hcvliw::computeAsapTimes: earliest starts ignoring
  /// resources, or std::nullopt when the recurrence cannot meet the IT.
  std::optional<std::vector<int64_t>> computeAsapTicks() const;

  /// In-place form of computeAsapTicks: fills \p Start (resized to the
  /// node count) and returns false when the recurrence cannot meet the
  /// IT. Identical values to computeAsapTicks.
  bool computeAsapTicksInto(std::vector<int64_t> &Start) const;
};

} // namespace hcvliw

#endif // HCVLIW_SCHED_TICKGRAPH_H
