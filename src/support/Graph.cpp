//===- support/Graph.cpp - Generic directed-graph algorithms --------------===//

#include "support/Graph.h"

#include <cassert>

using namespace hcvliw;

std::vector<std::vector<unsigned>> SCCResult::members() const {
  std::vector<std::vector<unsigned>> M(NumComponents);
  for (unsigned N = 0; N < ComponentOf.size(); ++N)
    M[ComponentOf[N]].push_back(N);
  return M;
}

SCCResult hcvliw::computeSCCs(unsigned NumNodes,
                              const std::vector<std::vector<unsigned>> &Adj) {
  assert(Adj.size() == NumNodes && "adjacency size mismatch");
  SCCResult Result;
  Result.ComponentOf.assign(NumNodes, ~0u);

  constexpr unsigned Undefined = ~0u;
  std::vector<unsigned> Index(NumNodes, Undefined);
  std::vector<unsigned> LowLink(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;

  // Iterative Tarjan with an explicit DFS frame stack.
  struct Frame {
    unsigned Node;
    size_t EdgeIx;
  };
  std::vector<Frame> DFS;

  for (unsigned Root = 0; Root < NumNodes; ++Root) {
    if (Index[Root] != Undefined)
      continue;
    DFS.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!DFS.empty()) {
      Frame &F = DFS.back();
      unsigned N = F.Node;
      if (F.EdgeIx < Adj[N].size()) {
        unsigned M = Adj[N][F.EdgeIx++];
        if (Index[M] == Undefined) {
          Index[M] = LowLink[M] = NextIndex++;
          Stack.push_back(M);
          OnStack[M] = true;
          DFS.push_back({M, 0});
        } else if (OnStack[M] && Index[M] < LowLink[N]) {
          LowLink[N] = Index[M];
        }
        continue;
      }
      // All edges of N explored: maybe emit a component, then pop.
      if (LowLink[N] == Index[N]) {
        unsigned Comp = Result.NumComponents++;
        while (true) {
          unsigned M = Stack.back();
          Stack.pop_back();
          OnStack[M] = false;
          Result.ComponentOf[M] = Comp;
          if (M == N)
            break;
        }
      }
      DFS.pop_back();
      if (!DFS.empty()) {
        unsigned Parent = DFS.back().Node;
        if (LowLink[N] < LowLink[Parent])
          LowLink[Parent] = LowLink[N];
      }
    }
  }
  return Result;
}

std::optional<std::vector<unsigned>>
hcvliw::topologicalOrder(unsigned NumNodes,
                         const std::vector<std::vector<unsigned>> &Adj) {
  assert(Adj.size() == NumNodes && "adjacency size mismatch");
  std::vector<unsigned> InDegree(NumNodes, 0);
  for (unsigned N = 0; N < NumNodes; ++N)
    for (unsigned M : Adj[N])
      ++InDegree[M];

  std::vector<unsigned> Ready;
  for (unsigned N = 0; N < NumNodes; ++N)
    if (InDegree[N] == 0)
      Ready.push_back(N);

  std::vector<unsigned> Order;
  Order.reserve(NumNodes);
  for (size_t I = 0; I < Ready.size(); ++I) {
    unsigned N = Ready[I];
    Order.push_back(N);
    for (unsigned M : Adj[N])
      if (--InDegree[M] == 0)
        Ready.push_back(M);
  }
  if (Order.size() != NumNodes)
    return std::nullopt;
  return Order;
}
