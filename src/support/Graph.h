//===- support/Graph.h - Generic directed-graph algorithms -----*- C++ -*-===//
///
/// \file
/// Directed-graph utilities shared by the dependence-graph analyses:
/// Tarjan strongly-connected components, topological ordering, and a
/// Bellman-Ford style positive-cycle probe (the inner loop of the
/// minimum-initiation-interval computation).
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_GRAPH_H
#define HCVLIW_SUPPORT_GRAPH_H

#include <cstdint>
#include <optional>
#include <vector>

namespace hcvliw {

/// A weighted directed edge used by the generic algorithms.
template <typename WeightT> struct WeightedEdge {
  unsigned Src;
  unsigned Dst;
  WeightT Weight;
};

/// Result of a strongly-connected-component decomposition.
struct SCCResult {
  /// Component id per node; ids are a reverse topological order of the
  /// condensation (Tarjan property: a component is numbered before any
  /// component it can reach... specifically successors get lower ids).
  std::vector<unsigned> ComponentOf;
  unsigned NumComponents = 0;

  /// Node lists per component.
  std::vector<std::vector<unsigned>> members() const;
};

/// Tarjan's algorithm (iterative) on an adjacency-list graph.
SCCResult computeSCCs(unsigned NumNodes,
                      const std::vector<std::vector<unsigned>> &Adj);

/// Topological order of a DAG; std::nullopt when a cycle exists.
std::optional<std::vector<unsigned>>
topologicalOrder(unsigned NumNodes,
                 const std::vector<std::vector<unsigned>> &Adj);

/// Returns true iff the graph contains a cycle of strictly positive total
/// weight. Longest-path Bellman-Ford: relax up to NumNodes rounds; any
/// relaxation in round NumNodes proves a positive cycle. Exact when
/// WeightT is exact (int64_t / Rational).
template <typename WeightT>
bool hasPositiveCycle(unsigned NumNodes,
                      const std::vector<WeightedEdge<WeightT>> &Edges) {
  if (NumNodes == 0)
    return false;
  // Distances start at zero for every node (acts as a super-source), so
  // any positive-weight cycle is reachable by construction.
  std::vector<WeightT> Dist(NumNodes, WeightT(0));
  for (unsigned Round = 0; Round < NumNodes; ++Round) {
    bool Changed = false;
    for (const auto &E : Edges) {
      WeightT Cand = Dist[E.Src] + E.Weight;
      if (Dist[E.Dst] < Cand) {
        Dist[E.Dst] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

/// Longest path lengths from every node to any sink in a DAG given in a
/// valid reverse-usable topological order; used for scheduling heights.
/// Weight of a node's height is max over out-edges of weight + height(dst).
template <typename WeightT>
std::vector<WeightT>
dagHeights(unsigned NumNodes, const std::vector<WeightedEdge<WeightT>> &Edges,
           const std::vector<unsigned> &TopoOrder) {
  std::vector<std::vector<const WeightedEdge<WeightT> *>> Out(NumNodes);
  for (const auto &E : Edges)
    Out[E.Src].push_back(&E);
  std::vector<WeightT> Height(NumNodes, WeightT(0));
  for (auto It = TopoOrder.rbegin(); It != TopoOrder.rend(); ++It) {
    unsigned N = *It;
    for (const auto *E : Out[N]) {
      WeightT Cand = E->Weight + Height[E->Dst];
      if (Height[N] < Cand)
        Height[N] = Cand;
    }
  }
  return Height;
}

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_GRAPH_H
