//===- support/HashUtil.h - FNV-1a hashing for cache keys --------*- C++ -*-===//
///
/// \file
/// A small FNV-1a accumulator used to fingerprint value-semantic model
/// inputs (loop profiles, design-space grids) for cross-program
/// memoization keys. Not cryptographic: 64-bit FNV over a handful of
/// structurally distinct workloads, where an accidental collision is
/// vanishingly unlikely and would at worst reuse a numerically
/// identical cached result shape.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_HASHUTIL_H
#define HCVLIW_SUPPORT_HASHUTIL_H

#include "support/Rational.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace hcvliw {

class FnvHasher {
  uint64_t H = 0xcbf29ce484222325ull;

public:
  FnvHasher &mix(uint64_t V) {
    // Mix all eight bytes (classic FNV-1a is byte-wise; word-wise with
    // a final avalanche keeps the cost down while separating fields).
    H ^= V;
    H *= 0x100000001b3ull;
    H ^= H >> 32;
    H *= 0x100000001b3ull;
    return *this;
  }

  FnvHasher &mixSigned(int64_t V) { return mix(static_cast<uint64_t>(V)); }

  FnvHasher &mixDouble(double V) {
    uint64_t Bits = 0;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    return mix(Bits);
  }

  FnvHasher &mixRational(const Rational &R) {
    mixSigned(R.num());
    return mixSigned(R.den());
  }

  template <typename T> FnvHasher &mixVector(const std::vector<T> &V);

  uint64_t digest() const { return H; }
};

template <> inline FnvHasher &FnvHasher::mixVector(const std::vector<double> &V) {
  mix(V.size());
  for (double X : V)
    mixDouble(X);
  return *this;
}

template <> inline FnvHasher &FnvHasher::mixVector(const std::vector<unsigned> &V) {
  mix(V.size());
  for (unsigned X : V)
    mix(X);
  return *this;
}

template <> inline FnvHasher &FnvHasher::mixVector(const std::vector<Rational> &V) {
  mix(V.size());
  for (const Rational &X : V)
    mixRational(X);
  return *this;
}

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_HASHUTIL_H
