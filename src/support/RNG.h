//===- support/RNG.h - Deterministic random numbers ------------*- C++ -*-===//
///
/// \file
/// A small, deterministic xoshiro256** generator. Every randomized piece
/// of the library (synthetic workload generation, property tests) is
/// seeded explicitly so all experiments are exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_RNG_H
#define HCVLIW_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcvliw {

/// xoshiro256** seeded via splitmix64.
class RNG {
  uint64_t S[4];

  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the full state.
    uint64_t Z = Seed;
    for (auto &W : S) {
      Z += 0x9e3779b97f4a7c15ull;
      uint64_t T = Z;
      T = (T ^ (T >> 30)) * 0xbf58476d1ce4e5b9ull;
      T = (T ^ (T >> 27)) * 0x94d049bb133111ebull;
      W = T ^ (T >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [Lo, Hi], inclusive.
  int64_t nextInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw.
  bool nextBool(double PTrue) { return nextDouble() < PTrue; }

  /// Uniformly selects an element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "pick from empty vector");
    return V[static_cast<size_t>(nextInt(0, static_cast<int64_t>(V.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[static_cast<size_t>(nextInt(0, I - 1))]);
  }
};

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_RNG_H
