//===- support/RNG.h - Deterministic random numbers ------------*- C++ -*-===//
///
/// \file
/// A small, deterministic xoshiro256** generator. Every randomized piece
/// of the library (synthetic workload generation, property tests) is
/// seeded explicitly — the constructor *requires* a seed — so all
/// experiments are exactly reproducible. The generator uses only fixed-
/// width integer arithmetic (no std::mt19937, no distribution objects,
/// whose sequences vary across standard libraries), so a seed produces
/// the same stream on every platform. fork() derives independent child
/// streams deterministically, which keeps parallel exploration runs
/// reproducible regardless of thread scheduling: fork per work item,
/// never share one generator across threads.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_RNG_H
#define HCVLIW_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcvliw {

/// xoshiro256** seeded via splitmix64.
class RNG {
  uint64_t S[4];

  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  static uint64_t splitmix64(uint64_t &Z) {
    Z += 0x9e3779b97f4a7c15ull;
    uint64_t T = Z;
    T = (T ^ (T >> 30)) * 0xbf58476d1ce4e5b9ull;
    T = (T ^ (T >> 27)) * 0x94d049bb133111ebull;
    return T ^ (T >> 31);
  }

public:
  /// The conventional seed of the library's own tools when the caller
  /// has no better choice. Spelled out rather than defaulted so every
  /// construction site documents its stream.
  static constexpr uint64_t DefaultSeed = 0x9e3779b97f4a7c15ull;

  explicit RNG(uint64_t Seed) {
    // splitmix64 expansion of the seed into the full state. splitmix64
    // is a bijection chain, so no seed expands to the all-zero state
    // xoshiro cannot leave.
    uint64_t Z = Seed;
    for (auto &W : S)
      W = splitmix64(Z);
  }

  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// A deterministic child stream for work item \p Stream: parallel
  /// workers fork one root generator per item instead of drawing from a
  /// shared one, so results do not depend on scheduling order. The
  /// child's seed mixes the parent's *current* state, so forking after
  /// different draw counts yields different streams.
  RNG fork(uint64_t Stream) const {
    uint64_t Z = S[0] ^ rotl(S[2], 19) ^ (Stream * 0xd6e8feb86659fd93ull);
    return RNG(splitmix64(Z));
  }

  /// Uniform integer in [Lo, Hi], inclusive. Well-defined for the full
  /// int64_t range (the span is computed in unsigned arithmetic).
  int64_t nextInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span =
        static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    if (Span == 0) // full 64-bit range
      return static_cast<int64_t>(next());
    return static_cast<int64_t>(static_cast<uint64_t>(Lo) + next() % Span);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw.
  bool nextBool(double PTrue) { return nextDouble() < PTrue; }

  /// Uniformly selects an element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "pick from empty vector");
    return V[static_cast<size_t>(nextInt(0, static_cast<int64_t>(V.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[static_cast<size_t>(nextInt(0, I - 1))]);
  }
};

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_RNG_H
