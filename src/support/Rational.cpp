//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"
#include "support/StrUtil.h"

using namespace hcvliw;

int64_t hcvliw::gcd64(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "gcd64 expects non-negative operands");
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t hcvliw::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  __int128 R = static_cast<__int128>(A / G) * B;
  assert(R <= INT64_MAX && "lcm64 overflow");
  return static_cast<int64_t>(R);
}

static int64_t narrow(__int128 V) {
  assert(V <= INT64_MAX && V >= INT64_MIN && "rational overflow");
  return static_cast<int64_t>(V);
}

void Rational::normalize() {
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  int64_t G = gcd64(Num < 0 ? -Num : Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
  if (Num == 0)
    Den = 1;
}

int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  return -((-Num + Den - 1) / Den);
}

int64_t Rational::ceil() const {
  if (Num >= 0)
    return (Num + Den - 1) / Den;
  return -((-Num) / Den);
}

// Build Num/Den from a 128-bit pair, reducing before narrowing so that
// transient wide values (common in a*d + c*b) still fit.
static Rational make128(__int128 N, __int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  __int128 A = N < 0 ? -N : N;
  __int128 B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  return Rational(narrow(N), narrow(D));
}

Rational Rational::operator+(const Rational &O) const {
  // Fast path: equal denominators (integers included) add numerator to
  // numerator -- no 128-bit products, and no gcd at all when both are
  // integers. Overflow falls through to the wide path.
  if (Den == O.Den) {
    int64_t N;
    if (!__builtin_add_overflow(Num, O.Num, &N))
      return Den == 1 ? Rational(N) : Rational(N, Den);
  }
  return make128(static_cast<__int128>(Num) * O.Den +
                     static_cast<__int128>(O.Num) * Den,
                 static_cast<__int128>(Den) * O.Den);
}

Rational Rational::operator-(const Rational &O) const {
  if (Den == O.Den) {
    int64_t N;
    if (!__builtin_sub_overflow(Num, O.Num, &N))
      return Den == 1 ? Rational(N) : Rational(N, Den);
  }
  return make128(static_cast<__int128>(Num) * O.Den -
                     static_cast<__int128>(O.Num) * Den,
                 static_cast<__int128>(Den) * O.Den);
}

Rational Rational::operator*(const Rational &O) const {
  // Fast path: integer * integer needs no gcd and no 128-bit product
  // unless the multiplication itself overflows.
  if (Den == 1 && O.Den == 1) {
    int64_t N;
    if (!__builtin_mul_overflow(Num, O.Num, &N))
      return Rational(N);
  }
  return make128(static_cast<__int128>(Num) * O.Num,
                 static_cast<__int128>(Den) * O.Den);
}

Rational Rational::operator/(const Rational &O) const {
  assert(O.Num != 0 && "rational division by zero");
  return make128(static_cast<__int128>(Num) * O.Den,
                 static_cast<__int128>(Den) * O.Num);
}

bool Rational::operator<(const Rational &O) const {
  // Equal denominators (integers included) compare by numerator alone.
  if (Den == O.Den)
    return Num < O.Num;
  return static_cast<__int128>(Num) * O.Den <
         static_cast<__int128>(O.Num) * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return formatString("%lld", static_cast<long long>(Num));
  return formatString("%lld/%lld", static_cast<long long>(Num),
                      static_cast<long long>(Den));
}
