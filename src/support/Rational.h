//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of the hcvliw project: a reproduction of "Heterogeneous Clustered
// VLIW Microarchitectures" (Aletà et al., CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic over 64-bit integers.
///
/// All clock arithmetic in the heterogeneous machine model (initiation
/// times, per-domain periods, frequencies, absolute schedule times) is
/// performed with this class so that the integrality condition
/// `II_X = IT * f_X` of the paper's Section 2.2 can be tested exactly,
/// never with floating point.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_RATIONAL_H
#define HCVLIW_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace hcvliw {

/// An exact rational number Num/Den with Den > 0 and gcd(Num, Den) == 1.
///
/// Intermediate products are computed in 128-bit arithmetic and asserted
/// to fit back into 64 bits after normalization, which is ample for the
/// picosecond-scale clock math this library performs.
class Rational {
  int64_t Num = 0;
  int64_t Den = 1;

  void normalize();

public:
  Rational() = default;
  /*implicit*/ Rational(int64_t N) : Num(N), Den(1) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) {
    assert(D != 0 && "rational with zero denominator");
    normalize();
  }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Largest integer <= *this.
  int64_t floor() const;
  /// Smallest integer >= *this.
  int64_t ceil() const;

  double toDouble() const { return static_cast<double>(Num) / Den; }

  Rational operator-() const { return Rational(-Num, Den); }
  Rational operator+(const Rational &O) const;
  Rational operator-(const Rational &O) const;
  Rational operator*(const Rational &O) const;
  Rational operator/(const Rational &O) const;

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const;
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>=(const Rational &O) const { return !(*this < O); }

  /// Multiplicative inverse; *this must be nonzero.
  Rational reciprocal() const {
    assert(Num != 0 && "reciprocal of zero");
    return Rational(Den, Num);
  }

  Rational abs() const { return Num < 0 ? Rational(-Num, Den) : *this; }

  /// Renders "N" for integers and "N/D" otherwise.
  std::string str() const;

  static Rational min(const Rational &A, const Rational &B) {
    return A < B ? A : B;
  }
  static Rational max(const Rational &A, const Rational &B) {
    return A < B ? B : A;
  }
};

/// Greatest common divisor of two non-negative 64-bit integers.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple; asserts on overflow.
int64_t lcm64(int64_t A, int64_t B);

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_RATIONAL_H
