//===- support/RecordIO.cpp - Token-framed record serialization -------------===//

#include "support/RecordIO.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace hcvliw;
using namespace hcvliw::recio;

std::string recio::escToken(const std::string &S) {
  if (S.empty())
    return "\\e";
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case ' ':
      Out += "\\s";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

bool recio::unescToken(const std::string &T, std::string &Out) {
  Out.clear();
  if (T == "\\e")
    return true;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '\\') {
      Out += T[I];
      continue;
    }
    if (I + 1 >= T.size())
      return false;
    switch (T[++I]) {
    case '\\':
      Out += '\\';
      break;
    case 's':
      Out += ' ';
      break;
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      return false;
    }
  }
  return true;
}

uint32_t recio::crc32(const void *Data, size_t Size) {
  // Table-driven reflected CRC-32 (poly 0xEDB88320). The table is a
  // pure function of the polynomial; building it lazily once is safe
  // (magic statics) and deterministic.
  struct Table {
    uint32_t T[256];
    Table() {
      for (uint32_t I = 0; I < 256; ++I) {
        uint32_t C = I;
        for (int K = 0; K < 8; ++K)
          C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
        T[I] = C;
      }
    }
  };
  static const Table Tab;
  uint32_t C = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I)
    C = Tab.T[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

void Sink::u64(uint64_t V) {
  char B[32];
  std::snprintf(B, sizeof B, "%" PRIu64, V);
  raw(B);
}

void Sink::i64(int64_t V) {
  char B[32];
  std::snprintf(B, sizeof B, "%" PRId64, V);
  raw(B);
}

void Sink::d(double V) {
  char B[48];
  std::snprintf(B, sizeof B, "%a", V);
  raw(B);
}

std::string Source::str() {
  std::string Out;
  if (!unescToken(next(), Out))
    Bad_ = true;
  return Out;
}

uint64_t Source::u64() {
  std::string T = next();
  if (Bad_)
    return 0;
  char *End = nullptr;
  uint64_t V = std::strtoull(T.c_str(), &End, 10);
  if (End != T.c_str() + T.size())
    Bad_ = true;
  return V;
}

int64_t Source::i64() {
  std::string T = next();
  if (Bad_)
    return 0;
  char *End = nullptr;
  int64_t V = std::strtoll(T.c_str(), &End, 10);
  if (End != T.c_str() + T.size())
    Bad_ = true;
  return V;
}

double Source::d() {
  std::string T = next();
  if (Bad_)
    return 0;
  char *End = nullptr;
  double V = std::strtod(T.c_str(), &End);
  if (End != T.c_str() + T.size())
    Bad_ = true;
  return V;
}
