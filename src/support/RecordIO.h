//===- support/RecordIO.h - Token-framed record serialization ----*- C++ -*-===//
///
/// \file
/// The positional token codec the durable file formats share
/// (runtime/SuiteJournal, runtime/CachePersist): every record body is
/// ONE line of space-separated tokens, written positionally by a Sink
/// and read back by a mirrored Source. Tokens never contain spaces:
/// strings are escaped ('\' -> "\\", ' ' -> "\s", '\n' -> "\n",
/// '\t' -> "\t", "" -> "\e"), doubles are hex-floats (%a) and
/// Rationals are num/den token pairs, so every value round-trips
/// bit-exactly and locale-independently.
///
/// Also provides the CRC-32 (IEEE 802.3, reflected 0xEDB88320) used to
/// checksum persistent-cache record bodies.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_RECORDIO_H
#define HCVLIW_SUPPORT_RECORDIO_H

#include "support/Rational.h"

#include <cstdint>
#include <sstream>
#include <string>

namespace hcvliw {
namespace recio {

/// Escapes \p S into a single space-free token (see file header).
std::string escToken(const std::string &S);

/// Inverse of escToken; false on a malformed escape.
bool unescToken(const std::string &T, std::string &Out);

/// CRC-32 of \p Size bytes at \p Data (IEEE polynomial, reflected).
uint32_t crc32(const void *Data, size_t Size);
inline uint32_t crc32(const std::string &S) {
  return crc32(S.data(), S.size());
}

/// Positional token writer: one record body per Sink.
class Sink {
  std::string Buf;

public:
  void raw(const std::string &T) {
    if (!Buf.empty())
      Buf += ' ';
    Buf += T;
  }
  void str(const std::string &S) { raw(escToken(S)); }
  void u64(uint64_t V);
  void i64(int64_t V);
  void b(bool V) { raw(V ? "1" : "0"); }
  /// Hex-float: exact round trip, locale-independent.
  void d(double V);
  void rat(const Rational &R) {
    i64(R.num());
    i64(R.den());
  }
  const std::string &line() const { return Buf; }
};

/// Positional token reader mirroring Sink. Parse failures latch bad();
/// subsequent reads return zero values.
class Source {
  std::istringstream In;
  bool Bad_ = false;

  std::string next() {
    std::string T;
    if (!(In >> T))
      Bad_ = true;
    return T;
  }

public:
  explicit Source(const std::string &Line) : In(Line) {}
  bool bad() const { return Bad_; }
  /// Latches the failure flag from outside: a caller that decodes a
  /// token into a domain type (an enum, a bounded index) and finds it
  /// out of range marks the whole record bad.
  void markBad() { Bad_ = true; }
  /// True when every token was consumed and none failed to parse.
  bool done() {
    std::string T;
    return !Bad_ && !(In >> T);
  }

  std::string str();
  uint64_t u64();
  int64_t i64();
  bool b() { return u64() != 0; }
  double d();
  Rational rat() {
    int64_t N = i64();
    int64_t D = i64();
    return Bad_ ? Rational() : Rational(N, D);
  }
};

} // namespace recio
} // namespace hcvliw

#endif // HCVLIW_SUPPORT_RECORDIO_H
