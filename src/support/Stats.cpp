//===- support/Stats.cpp - Small statistics helpers -----------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace hcvliw;

double hcvliw::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs)
    S += X;
  return S / static_cast<double>(Xs.size());
}

double hcvliw::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs) {
    assert(X > 0 && "geomean requires positive samples");
    S += std::log(X);
  }
  return std::exp(S / static_cast<double>(Xs.size()));
}

double hcvliw::stddev(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0;
  double M = mean(Xs);
  double S = 0;
  for (double X : Xs)
    S += (X - M) * (X - M);
  return std::sqrt(S / static_cast<double>(Xs.size()));
}

double hcvliw::median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return 0.5 * (Xs[N / 2 - 1] + Xs[N / 2]);
}

void Accumulator::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  Sum += X;
  ++N;
}
