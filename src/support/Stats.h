//===- support/Stats.h - Small statistics helpers --------------*- C++ -*-===//
///
/// \file
/// Mean / geometric-mean / variance helpers used by the benchmark
/// harnesses when aggregating per-program ED2 ratios.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_STATS_H
#define HCVLIW_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace hcvliw {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Geometric mean; requires strictly positive samples; 0 if empty.
double geomean(const std::vector<double> &Xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double> &Xs);

/// Median (averaging the middle pair for even sizes); 0 if empty.
double median(std::vector<double> Xs);

/// Streaming accumulator for min/max/mean.
class Accumulator {
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  size_t N = 0;

public:
  void add(double X);
  size_t count() const { return N; }
  double sum() const { return Sum; }
  double mean() const { return N == 0 ? 0 : Sum / static_cast<double>(N); }
  double min() const { return Min; }
  double max() const { return Max; }
};

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_STATS_H
