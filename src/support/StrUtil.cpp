//===- support/StrUtil.cpp - String helpers -------------------------------===//

#include "support/StrUtil.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace hcvliw;

std::string hcvliw::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  }
  va_end(Args);
  return Out;
}

std::vector<std::string> hcvliw::splitString(std::string_view S,
                                             std::string_view Seps) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && Seps.find(S[I]) != std::string_view::npos)
      ++I;
    size_t Start = I;
    while (I < S.size() && Seps.find(S[I]) == std::string_view::npos)
      ++I;
    if (I > Start)
      Tokens.emplace_back(S.substr(Start, I - Start));
  }
  return Tokens;
}

std::string_view hcvliw::trimString(std::string_view S) {
  size_t B = 0;
  while (B < S.size() && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  size_t E = S.size();
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool hcvliw::parseInt64(std::string_view S, int64_t &Out) {
  std::string Buf(S);
  if (Buf.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Buf.c_str(), &End, 10);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = V;
  return true;
}

bool hcvliw::parseThreadCount(std::string_view S, unsigned &Out) {
  int64_t V = 0;
  if (!parseInt64(S, V) || V < 0 || V > 1024)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

std::string hcvliw::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
      continue;
    }
    Out += C;
  }
  return Out;
}

bool hcvliw::parseDouble(std::string_view S, double &Out) {
  std::string Buf(S);
  if (Buf.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = V;
  return true;
}
