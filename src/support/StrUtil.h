//===- support/StrUtil.h - String helpers ----------------------*- C++ -*-===//
///
/// \file
/// printf-style formatting into std::string plus tokenizing helpers used
/// by the loop DSL parser and the report printers.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_STRUTIL_H
#define HCVLIW_SUPPORT_STRUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace hcvliw {

/// Formats like printf and returns the result as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p S on any run of characters in \p Seps; empty tokens dropped.
std::vector<std::string> splitString(std::string_view S,
                                     std::string_view Seps = " \t");

/// Removes leading and trailing whitespace.
std::string_view trimString(std::string_view S);

/// Parses a signed integer; returns false on malformed input.
bool parseInt64(std::string_view S, int64_t &Out);

/// Parses a --threads style value: an integer in [0, 1024] (0 = let
/// the worker pool pick hardware concurrency). Returns false on
/// malformed or out-of-range input — a stray "-1" must not turn into
/// four billion worker threads.
bool parseThreadCount(std::string_view S, unsigned &Out);

/// Parses a double; returns false on malformed input.
bool parseDouble(std::string_view S, double &Out);

/// Escapes \p S for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every JSON-emitting
/// report writer so artifact escaping stays uniform.
std::string jsonEscape(const std::string &S);

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_STRUTIL_H
