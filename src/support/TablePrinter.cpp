//===- support/TablePrinter.cpp - Aligned console tables -------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace hcvliw;

std::string TablePrinter::render() const {
  std::string Out;
  if (!Title.empty()) {
    Out += "== " + Title + " ==\n";
  }
  if (Rows.empty())
    return Out;

  size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < NumCols; ++C) {
      const std::string Cell = C < Row.size() ? Row[C] : "";
      Out += Cell;
      if (C + 1 != NumCols)
        Out += std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };

  emitRow(Rows.front());
  size_t Total = 0;
  for (size_t C = 0; C < NumCols; ++C)
    Total += Widths[C] + (C + 1 != NumCols ? 2 : 0);
  Out += std::string(Total, '-');
  Out += '\n';
  for (size_t R = 1; R < Rows.size(); ++R)
    emitRow(Rows[R]);
  return Out;
}

void TablePrinter::print(std::FILE *Stream) const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), Stream);
}
