//===- support/TablePrinter.h - Aligned console tables ----------*- C++ -*-===//
///
/// \file
/// Renders the paper's tables/figures as aligned plain-text tables on
/// stdout. Used by every bench binary so the reproduced rows read like
/// the rows in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_SUPPORT_TABLEPRINTER_H
#define HCVLIW_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace hcvliw {

/// Collects rows of string cells and renders them with per-column
/// alignment. The first added row is treated as the header.
class TablePrinter {
  std::string Title;
  std::vector<std::vector<std::string>> Rows;

public:
  explicit TablePrinter(std::string TableTitle = "")
      : Title(std::move(TableTitle)) {}

  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Renders the whole table, including a separator under the header.
  std::string render() const;

  /// Renders to a FILE stream (stdout by default).
  void print(std::FILE *Out = stdout) const;
};

} // namespace hcvliw

#endif // HCVLIW_SUPPORT_TABLEPRINTER_H
