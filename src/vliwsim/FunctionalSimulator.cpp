//===- vliwsim/FunctionalSimulator.cpp - Sequential reference ---------------===//

#include "vliwsim/FunctionalSimulator.h"

#include <cassert>

using namespace hcvliw;

FunctionalResult hcvliw::runFunctional(const Loop &L, uint64_t Iterations) {
  assert(L.validate().empty() && "executing an invalid loop");
  FunctionalResult R;
  R.Memory = MemoryImage::initial(L, Iterations);
  unsigned N = L.size();
  R.LastValues.assign(N, 0.0);

  // Ring of recent per-op values, deep enough for the longest carry.
  unsigned MaxDist = 1;
  for (const Operation &O : L.Ops)
    for (const Operand &U : O.Operands)
      if (U.Kind == OperandKind::Def)
        MaxDist = std::max(MaxDist, U.Distance + 1);
  std::vector<std::vector<double>> Ring(MaxDist,
                                        std::vector<double>(N, 0.0));

  auto valueAt = [&](unsigned Op, int64_t Iter,
                     [[maybe_unused]] int64_t Now) -> double {
    if (Iter < 0)
      return initialValue(L.Ops[Op], Iter);
    assert(Now - Iter < static_cast<int64_t>(MaxDist) && "ring too shallow");
    return Ring[static_cast<size_t>(Iter % MaxDist)][Op];
  };

  for (int64_t I = 0; I < static_cast<int64_t>(Iterations); ++I) {
    auto &Cur = Ring[static_cast<size_t>(I % MaxDist)];
    for (unsigned OpIx = 0; OpIx < N; ++OpIx) {
      const Operation &O = L.Ops[OpIx];
      double Vals[2] = {0, 0};
      for (unsigned U = 0; U < O.Operands.size(); ++U) {
        const Operand &Use = O.Operands[U];
        switch (Use.Kind) {
        case OperandKind::Def:
          Vals[U] = valueAt(Use.Index,
                            I - static_cast<int64_t>(Use.Distance), I);
          break;
        case OperandKind::LiveIn:
          Vals[U] = L.LiveIns[Use.Index].Value;
          break;
        case OperandKind::Immediate:
          Vals[U] = Use.Imm;
          break;
        }
      }
      double Out = 0;
      int64_t Addr = O.IndexScale * I + O.Offset;
      switch (O.Op) {
      case Opcode::Load:
        Out = R.Memory.load(static_cast<unsigned>(O.Array), Addr);
        break;
      case Opcode::Store:
        R.Memory.store(static_cast<unsigned>(O.Array), Addr, Vals[0]);
        Out = Vals[0];
        break;
      default:
        Out = evalOpcode(O.Op, Vals[0], Vals[1]);
        break;
      }
      Cur[OpIx] = Out;
      R.LastValues[OpIx] = Out;
    }
  }
  return R;
}
