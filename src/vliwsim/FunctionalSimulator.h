//===- vliwsim/FunctionalSimulator.h - Sequential reference ------*- C++ -*-===//
///
/// \file
/// Executes a loop strictly sequentially (iteration by iteration, ops in
/// program order): the semantic ground truth that a modulo-scheduled,
/// software-pipelined execution must reproduce exactly.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_VLIWSIM_FUNCTIONALSIMULATOR_H
#define HCVLIW_VLIWSIM_FUNCTIONALSIMULATOR_H

#include "vliwsim/MemoryImage.h"

namespace hcvliw {

struct FunctionalResult {
  MemoryImage Memory;
  /// Value of every op at the final iteration (stores hold the stored
  /// value), a cheap extra equivalence signal.
  std::vector<double> LastValues;
};

/// Runs \p Iterations iterations of \p L from the standard initial
/// image.
FunctionalResult runFunctional(const Loop &L, uint64_t Iterations);

} // namespace hcvliw

#endif // HCVLIW_VLIWSIM_FUNCTIONALSIMULATOR_H
