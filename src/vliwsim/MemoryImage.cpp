//===- vliwsim/MemoryImage.cpp - Simulated array memory ---------------------===//

#include "vliwsim/MemoryImage.h"

#include <cassert>
#include <cmath>

using namespace hcvliw;

MemoryImage MemoryImage::initial(const Loop &L, uint64_t Iterations) {
  MemoryImage M;
  M.Arrays.resize(L.Arrays.size());

  // Size each array to cover the densest access over all iterations
  // plus a *fixed* margin: the size must depend only on the iteration
  // span (scale * trip), not on offsets, so that unrolling -- which
  // rewrites offsets but covers the same addresses -- produces an
  // identical image and wrap-around indices stay comparable.
  constexpr int64_t Margin = 64;
  for (unsigned A = 0; A < L.Arrays.size(); ++A) {
    int64_t MaxScale = 1;
    for (const Operation &O : L.Ops)
      if (O.Array == static_cast<int>(A))
        MaxScale = std::max(MaxScale, O.IndexScale);
    size_t Size = static_cast<size_t>(
        MaxScale * static_cast<int64_t>(Iterations) + Margin);
    auto &Data = M.Arrays[A];
    Data.resize(Size);
    for (size_t K = 0; K < Size; ++K) {
      uint64_t H = K * 2654435761ull + static_cast<uint64_t>(A) * 40503ull;
      H ^= H >> 16;
      // Values in [0.5, 1.5): avoids zero divisors and keeps products
      // numerically tame over thousands of iterations.
      Data[K] = 0.5 + static_cast<double>(H % 1024) / 1024.0;
    }
  }
  return M;
}

size_t MemoryImage::elementIndex(int64_t Address, size_t Size) {
  assert(Size > 0 && "indexing an empty array");
  int64_t S = static_cast<int64_t>(Size);
  int64_t R = Address % S;
  if (R < 0)
    R += S;
  return static_cast<size_t>(R);
}

double MemoryImage::load(unsigned Array, int64_t Address) const {
  const auto &Data = Arrays[Array];
  return Data[elementIndex(Address, Data.size())];
}

void MemoryImage::store(unsigned Array, int64_t Address, double Value) {
  auto &Data = Arrays[Array];
  Data[elementIndex(Address, Data.size())] = Value;
}

uint64_t MemoryImage::digest() const {
  uint64_t H = 1469598103934665603ull;
  for (const auto &Arr : Arrays)
    for (double V : Arr) {
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(V));
      __builtin_memcpy(&Bits, &V, sizeof(Bits));
      H = (H ^ Bits) * 1099511628211ull;
    }
  return H;
}

double hcvliw::evalOpcode(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::IntAdd:
  case Opcode::FAdd:
    return A + B;
  case Opcode::IntSub:
  case Opcode::FSub:
    return A - B;
  case Opcode::IntMul:
  case Opcode::FMul:
    return A * B;
  case Opcode::IntDiv:
  case Opcode::FDiv:
    return std::fabs(B) < 1e-12 ? 0.0 : A / B;
  case Opcode::FSqrt:
    return std::sqrt(std::fabs(A));
  case Opcode::Copy:
    return A;
  case Opcode::Load:
  case Opcode::Store:
    break; // handled by the memory system
  }
  assert(false && "evalOpcode on a memory operation");
  return 0;
}
