//===- vliwsim/MemoryImage.h - Simulated array memory ------------*- C++ -*-===//
///
/// \file
/// The array memory both simulators execute against. Arrays are sized
/// from the loop's trip count and access patterns and filled with a
/// deterministic hash of (array, element), so any two executions of the
/// same loop observe identical initial state and can be compared for
/// exact equality.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_VLIWSIM_MEMORYIMAGE_H
#define HCVLIW_VLIWSIM_MEMORYIMAGE_H

#include "ir/Loop.h"

#include <cstdint>
#include <vector>

namespace hcvliw {

class MemoryImage {
public:
  std::vector<std::vector<double>> Arrays;

  /// Deterministic initial image for \p Iterations executions of \p L.
  static MemoryImage initial(const Loop &L, uint64_t Iterations);

  /// Wrap-around element index for a raw affine address (addresses may
  /// be negative through negative offsets).
  static size_t elementIndex(int64_t Address, size_t Size);

  double load(unsigned Array, int64_t Address) const;
  void store(unsigned Array, int64_t Address, double Value);

  bool operator==(const MemoryImage &O) const { return Arrays == O.Arrays; }

  /// Order-insensitive FNV-style digest, for quick test assertions.
  uint64_t digest() const;
};

/// Evaluates one opcode on up to two operands (shared by both
/// simulators so results are bitwise identical).
double evalOpcode(Opcode Op, double A, double B);

/// Initial value of op \p O for (negative) iteration \p Iter:
/// InitValue + InitStep * Iter.
inline double initialValue(const Operation &O, int64_t Iter) {
  return O.InitValue + O.InitStep * static_cast<double>(Iter);
}

} // namespace hcvliw

#endif // HCVLIW_VLIWSIM_MEMORYIMAGE_H
