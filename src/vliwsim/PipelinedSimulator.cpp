//===- vliwsim/PipelinedSimulator.cpp - MCD pipelined execution -------------===//

#include "vliwsim/PipelinedSimulator.h"
#include "mcd/SyncModel.h"
#include "sched/HeteroModuloScheduler.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

namespace {

struct Instance {
  Rational IssueNs;
  unsigned Node;
  int64_t Iter;
};

} // namespace

PipelinedResult hcvliw::runPipelined(const Loop &L,
                                     const PartitionedGraph &PG,
                                     const Schedule &S,
                                     const MachineDescription &M,
                                     uint64_t Iterations) {
  PipelinedResult R;
  R.Iterations = Iterations;
  unsigned NumOrig = L.size();
  unsigned NC = PG.numClusters();
  R.WInsPerCluster.assign(NC, 0.0);

  // Static schedule sanity first; runtime checks follow per instance.
  for (unsigned N = 0; N < PG.size(); ++N)
    if (!S.Nodes[N].Placed) {
      R.Error = formatString("node %u unplaced", N);
      return R;
    }

  std::vector<Rational> Period(PG.size()), Start0(PG.size());
  for (unsigned N = 0; N < PG.size(); ++N) {
    Period[N] = S.periodOf(PG, N);
    Start0[N] = S.startNs(PG, N);
  }

  std::vector<Instance> Timeline;
  Timeline.reserve(static_cast<size_t>(PG.size()) * Iterations);
  for (unsigned N = 0; N < PG.size(); ++N)
    for (int64_t I = 0; I < static_cast<int64_t>(Iterations); ++I)
      Timeline.push_back({Start0[N] + Rational(I) * S.Plan.ITNs, N, I});
  std::sort(Timeline.begin(), Timeline.end(),
            [](const Instance &A, const Instance &B) {
              if (A.IssueNs != B.IssueNs)
                return A.IssueNs < B.IssueNs;
              if (A.Iter != B.Iter)
                return A.Iter < B.Iter;
              return A.Node < B.Node;
            });

  R.Memory = MemoryImage::initial(L, Iterations);
  R.LastValues.assign(NumOrig, 0.0);
  // Full value history per original op (iterations are modest in tests).
  std::vector<std::vector<double>> ValueOf(
      NumOrig, std::vector<double>(Iterations, 0.0));

  auto origValue = [&](unsigned Op, int64_t Iter) -> double {
    if (Iter < 0)
      return initialValue(L.Ops[Op], Iter);
    return ValueOf[Op][static_cast<size_t>(Iter)];
  };

  for (const Instance &Inst : Timeline) {
    const PGNode &Node = PG.node(Inst.Node);

    // Runtime dependence audit: every predecessor instance must have
    // delivered by now under the exact cross-domain rule.
    for (unsigned EIx : PG.inEdges(Inst.Node)) {
      const PGEdge &E = PG.edge(EIx);
      int64_t SrcIter = Inst.Iter - static_cast<int64_t>(E.Distance);
      if (SrcIter < 0)
        continue; // prologue: value comes from the initial-value rule
      Rational SrcIssue = Start0[E.Src] + Rational(SrcIter) * S.Plan.ITNs;
      Rational Ready = SrcIssue + Rational(E.LatencyCycles) * Period[E.Src];
      Rational Arrive =
          crossDomainArrival(Ready, Period[E.Src], Period[Inst.Node]);
      if (Inst.IssueNs < Arrive) {
        R.Error = formatString(
            "iteration %lld: node %u consumed %u before its arrival",
            static_cast<long long>(Inst.Iter), Inst.Node, E.Src);
        return R;
      }
    }

    if (Node.OrigOp < 0) {
      // Copy: pure transport.
      R.Activity.Comms += 1;
      continue;
    }

    unsigned OpIx = static_cast<unsigned>(Node.OrigOp);
    const Operation &O = L.Ops[OpIx];
    double Vals[2] = {0, 0};
    for (unsigned U = 0; U < O.Operands.size(); ++U) {
      const Operand &Use = O.Operands[U];
      switch (Use.Kind) {
      case OperandKind::Def:
        Vals[U] = origValue(Use.Index,
                            Inst.Iter - static_cast<int64_t>(Use.Distance));
        break;
      case OperandKind::LiveIn:
        Vals[U] = L.LiveIns[Use.Index].Value;
        break;
      case OperandKind::Immediate:
        Vals[U] = Use.Imm;
        break;
      }
    }

    double Out = 0;
    int64_t Addr = O.IndexScale * Inst.Iter + O.Offset;
    switch (O.Op) {
    case Opcode::Load:
      Out = R.Memory.load(static_cast<unsigned>(O.Array), Addr);
      R.Activity.MemAccesses += 1;
      break;
    case Opcode::Store:
      R.Memory.store(static_cast<unsigned>(O.Array), Addr, Vals[0]);
      Out = Vals[0];
      R.Activity.MemAccesses += 1;
      break;
    default:
      Out = evalOpcode(O.Op, Vals[0], Vals[1]);
      break;
    }
    ValueOf[OpIx][static_cast<size_t>(Inst.Iter)] = Out;
    if (Inst.Iter == static_cast<int64_t>(Iterations) - 1)
      R.LastValues[OpIx] = Out;

    double W = M.Isa.energy(O.Op);
    R.Activity.WeightedIns += W;
    R.WInsPerCluster[Node.Domain] += W;
  }

  // Execution time: last completion over all instances.
  Rational End(0);
  for (unsigned N = 0; N < PG.size(); ++N) {
    Rational Finish = Start0[N] +
                      Rational(static_cast<int64_t>(Iterations) - 1) *
                          S.Plan.ITNs +
                      Rational(PG.node(N).LatencyCycles) * Period[N];
    End = Rational::max(End, Finish);
  }
  R.TexecNs = End;
  R.Ok = true;
  return R;
}

std::string hcvliw::checkFunctionalEquivalence(const Loop &L,
                                               const PartitionedGraph &PG,
                                               const Schedule &S,
                                               const MachineDescription &M,
                                               uint64_t Iterations) {
  PipelinedResult P = runPipelined(L, PG, S, M, Iterations);
  if (!P.Ok)
    return "pipelined execution failed: " + P.Error;
  FunctionalResult F = runFunctional(L, Iterations);
  if (!(P.Memory == F.Memory))
    return "final memory images differ";
  for (unsigned Op = 0; Op < L.size(); ++Op)
    if (P.LastValues[Op] != F.LastValues[Op])
      return formatString("op %u final value differs", Op);
  return "";
}
