//===- vliwsim/PipelinedSimulator.h - MCD pipelined execution ----*- C++ -*-===//
///
/// \file
/// Cycle-level execution of a modulo schedule on the heterogeneous
/// multi-clock-domain machine. Instance (node n, iteration i) issues at
/// slot(n) * period(domain(n)) + i * IT; instances execute in global
/// time order; memory effects apply at issue. The simulator
///
///   - re-validates every dependence at runtime under the exact
///     cross-domain timing rule (sync queues included),
///   - computes functional values and final memory, to be compared
///     bit-for-bit against the sequential FunctionalSimulator,
///   - measures execution time and the activity counts (per-cluster
///     energy-weighted instructions, communications, memory accesses)
///     the Section 3.1 energy model consumes.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_VLIWSIM_PIPELINEDSIMULATOR_H
#define HCVLIW_VLIWSIM_PIPELINEDSIMULATOR_H

#include "power/EnergyModel.h"
#include "sched/Schedule.h"
#include "vliwsim/FunctionalSimulator.h"

#include <string>

namespace hcvliw {

struct PipelinedResult {
  bool Ok = false;
  std::string Error;

  uint64_t Iterations = 0;
  Rational TexecNs;

  MemoryImage Memory;
  std::vector<double> LastValues; ///< per original op, final iteration

  /// Whole-run activity (energy-weighted instructions include every
  /// cluster op; copies count as communications only).
  ActivityCounts Activity;
  std::vector<double> WInsPerCluster;
};

/// Executes \p Iterations iterations of \p L under schedule \p S.
PipelinedResult runPipelined(const Loop &L, const PartitionedGraph &PG,
                             const Schedule &S, const MachineDescription &M,
                             uint64_t Iterations);

/// Convenience: runs both simulators and reports the first divergence
/// (empty string when the pipelined execution is exact).
std::string checkFunctionalEquivalence(const Loop &L,
                                       const PartitionedGraph &PG,
                                       const Schedule &S,
                                       const MachineDescription &M,
                                       uint64_t Iterations);

} // namespace hcvliw

#endif // HCVLIW_VLIWSIM_PIPELINEDSIMULATOR_H
