//===- workloads/SpecFPSuite.cpp - Synthetic SPECfp2000 programs ------------===//

#include "workloads/SpecFPSuite.h"
#include "workloads/SyntheticLoops.h"

#include <cassert>

using namespace hcvliw;

const std::vector<std::string> &hcvliw::specFPProgramNames() {
  static const std::vector<std::string> Names = {
      "168.wupwise", "171.swim",   "172.mgrid", "173.applu",
      "178.galgel",  "187.facerec", "189.lucas", "191.fma3d",
      "200.sixtrack", "301.apsi"};
  return Names;
}

// Shares follow the paper's Table 2 (percent of execution time spent in
// resource- / borderline- / recurrence-constrained loops).
BenchmarkProgram hcvliw::buildSpecFPProgram(const std::string &Name) {
  BenchmarkProgram P;
  P.Name = Name;
  auto &L = P.Loops;

  if (Name == "168.wupwise") {
    // 14.04% resource, 68.76% borderline, 17.2% recurrence.
    L.push_back(makeStreamLoop("wup_stream", 6, 64, 0.1404));
    L.push_back(makeBorderlineLoop("wup_border1", 6, 2, 96, 0.40));
    L.push_back(makeBorderlineLoop("wup_border2", 7, 2, 96, 0.2876));
    L.push_back(makeChainRecurrenceLoop("wup_rec", 0, 3, 1, 3, 96, 0.172));
  } else if (Name == "171.swim") {
    // 100% resource-constrained streams.
    L.push_back(makeStreamLoop("swim_stream1", 6, 64, 0.40));
    L.push_back(makeStreamLoop("swim_stream2", 8, 64, 0.35));
    L.push_back(makeStencilLoop("swim_stencil", 8, 64, 0.25));
  } else if (Name == "172.mgrid") {
    // 95.54% resource, 4.46% recurrence.
    L.push_back(makeStencilLoop("mgrid_stencil1", 8, 64, 0.55));
    L.push_back(makeStreamLoop("mgrid_stream", 7, 64, 0.4054));
    L.push_back(makeChainRecurrenceLoop("mgrid_rec", 0, 2, 1, 1, 96,
                                        0.0446));
  } else if (Name == "173.applu") {
    // 31.94% resource, 6.17% borderline, 61.89% recurrence, executed a
    // small number of times (it_length matters as much as the IT).
    L.push_back(makeStreamLoop("applu_stream", 6, 48, 0.3194));
    L.push_back(makeBorderlineLoop("applu_border", 6, 2, 48, 0.0617));
    L.push_back(makeChainRecurrenceLoop("applu_rec1", 1, 2, 1, 3, 24,
                                        0.35));
    L.push_back(makeChainRecurrenceLoop("applu_rec2", 0, 4, 1, 3, 24,
                                        0.2689));
  } else if (Name == "178.galgel") {
    // 33.27% resource, 9.18% borderline, 57.55% recurrence.
    L.push_back(makeStreamLoop("galgel_stream", 7, 64, 0.3327));
    L.push_back(makeBorderlineLoop("galgel_border", 6, 2, 96, 0.0918));
    L.push_back(makeChainRecurrenceLoop("galgel_rec1", 1, 1, 1, 3, 96,
                                        0.30));
    L.push_back(makeChainRecurrenceLoop("galgel_rec2", 0, 3, 1, 4, 96,
                                        0.2755));
  } else if (Name == "187.facerec") {
    // 16.59% resource, 83.41% recurrence (thin recurrences: big wins).
    L.push_back(makeStreamLoop("face_stream", 6, 64, 0.1659));
    L.push_back(makeChainRecurrenceLoop("face_rec1", 0, 3, 1, 3, 96,
                                        0.45));
    L.push_back(makeChainRecurrenceLoop("face_rec2", 1, 1, 1, 4, 96,
                                        0.3841));
  } else if (Name == "189.lucas") {
    // 32.13% resource, 0.02% borderline, 67.85% recurrence.
    L.push_back(makeStreamLoop("lucas_stream", 7, 64, 0.3213));
    L.push_back(makeBorderlineLoop("lucas_border", 6, 2, 96, 0.0002));
    L.push_back(makeChainRecurrenceLoop("lucas_rec1", 0, 4, 1, 3, 96,
                                        0.38));
    L.push_back(makeChainRecurrenceLoop("lucas_rec2", 1, 2, 1, 3, 96,
                                        0.2985));
  } else if (Name == "191.fma3d") {
    // 15.22% resource, 2.96% borderline, 81.82% recurrence -- but the
    // recurrences are *wide* (many instructions are critical).
    L.push_back(makeStreamLoop("fma3d_stream", 6, 64, 0.1522));
    L.push_back(makeBorderlineLoop("fma3d_border", 6, 2, 96, 0.0296));
    L.push_back(makeWideRecurrenceLoop("fma3d_rec1", 8, 2, 2, 96, 0.45));
    L.push_back(makeWideRecurrenceLoop("fma3d_rec2", 10, 2, 2, 96,
                                       0.3682));
  } else if (Name == "200.sixtrack") {
    // 0.08% resource, 99.92% recurrence with thin critical chains: the
    // paper's best case (~35% ED2 reduction).
    L.push_back(makeStreamLoop("six_stream", 5, 64, 0.0008));
    L.push_back(makeChainRecurrenceLoop("six_rec1", 1, 2, 1, 4, 96,
                                        0.55));
    L.push_back(makeChainRecurrenceLoop("six_rec2", 1, 3, 1, 4, 96,
                                        0.4492));
  } else if (Name == "301.apsi") {
    // 15.50% resource, 3.37% borderline, 81.13% recurrence (wide).
    L.push_back(makeStreamLoop("apsi_stream", 6, 64, 0.1550));
    L.push_back(makeBorderlineLoop("apsi_border", 6, 2, 96, 0.0337));
    L.push_back(makeWideRecurrenceLoop("apsi_rec1", 8, 2, 3, 96, 0.42));
    L.push_back(makeWideRecurrenceLoop("apsi_rec2", 6, 2, 3, 96, 0.3913));
  } else {
    assert(false && "unknown SPECfp program name");
  }
  return P;
}

std::vector<BenchmarkProgram> hcvliw::buildSpecFPSuite() {
  std::vector<BenchmarkProgram> Suite;
  for (const std::string &Name : specFPProgramNames())
    Suite.push_back(buildSpecFPProgram(Name));
  return Suite;
}
