//===- workloads/SpecFPSuite.h - Synthetic SPECfp2000 programs ---*- C++ -*-===//
///
/// \file
/// The synthetic stand-in for the paper's >4000 SPECfp2000 Fortran loops
/// (see DESIGN.md, substitution table). Each of the ten benchmark
/// programs is a weighted set of generated loops whose resource- vs
/// recurrence-constraint mix reproduces the paper's Table 2: e.g.
/// 171.swim is 100% resource-constrained streams, 200.sixtrack spends
/// 99.9% of its time in a long, thin recurrence, 191.fma3d's recurrences
/// contain many instructions. Loop weights are the target
/// execution-time shares; the profiler realizes them as invocation
/// counts, and the Table 2 bench then *measures* the shares through the
/// full scheduling stack.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_WORKLOADS_SPECFPSUITE_H
#define HCVLIW_WORKLOADS_SPECFPSUITE_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace hcvliw {

struct BenchmarkProgram {
  std::string Name;
  std::vector<Loop> Loops;
};

/// The ten SPECfp2000 program names of the paper's evaluation, in the
/// paper's order.
const std::vector<std::string> &specFPProgramNames();

/// Builds one program by name (asserts the name exists).
BenchmarkProgram buildSpecFPProgram(const std::string &Name);

/// Builds the whole suite.
std::vector<BenchmarkProgram> buildSpecFPSuite();

} // namespace hcvliw

#endif // HCVLIW_WORKLOADS_SPECFPSUITE_H
