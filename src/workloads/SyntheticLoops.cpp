//===- workloads/SyntheticLoops.cpp - Parametric loop generators ------------===//

#include "workloads/SyntheticLoops.h"
#include "ir/LoopBuilder.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace hcvliw;

Loop hcvliw::makeStreamLoop(const std::string &Name, unsigned Lanes,
                            uint64_t Trip, double Weight) {
  assert(Lanes >= 1 && "stream loop needs at least one lane");
  LoopBuilder B(Name, Trip, Weight);
  unsigned A = B.array("A");
  unsigned C = B.array("B");
  unsigned S = B.array("S");
  Operand K = B.liveIn("k", 1.25);
  int64_t Scale = Lanes;
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    std::string Suffix = formatString(".%u", Lane);
    unsigned X = B.load("x" + Suffix, A, Lane, Scale);
    unsigned Y = B.load("y" + Suffix, C, Lane, Scale);
    unsigned M =
        B.op(Opcode::FMul, "m" + Suffix, Operand::def(X), Operand::def(Y));
    unsigned U = B.op(Opcode::FAdd, "u" + Suffix, Operand::def(M), K);
    B.store(S, Operand::def(U), Lane, Scale);
  }
  return B.take();
}

Loop hcvliw::makeStencilLoop(const std::string &Name, unsigned Taps,
                             uint64_t Trip, double Weight) {
  assert(Taps >= 2 && "stencil needs at least two taps");
  LoopBuilder B(Name, Trip, Weight);
  unsigned A = B.array("A");
  unsigned Out = B.array("OUT");
  Operand W = B.liveIn("w", 0.5);

  std::vector<unsigned> Loads;
  for (unsigned T = 0; T < Taps; ++T)
    Loads.push_back(B.load(formatString("x.%u", T), A,
                           static_cast<int64_t>(T) -
                               static_cast<int64_t>(Taps / 2)));
  // Reduction tree.
  std::vector<unsigned> Level = Loads;
  unsigned Tmp = 0;
  while (Level.size() > 1) {
    std::vector<unsigned> Next;
    for (size_t I = 0; I + 1 < Level.size(); I += 2)
      Next.push_back(B.op(Opcode::FAdd, formatString("t.%u", Tmp++),
                          Operand::def(Level[I]),
                          Operand::def(Level[I + 1])));
    if (Level.size() % 2 == 1)
      Next.push_back(Level.back());
    Level = std::move(Next);
  }
  unsigned Scaled =
      B.op(Opcode::FMul, "scaled", Operand::def(Level.front()), W);
  B.store(Out, Operand::def(Scaled));
  return B.take();
}

Loop hcvliw::makeChainRecurrenceLoop(const std::string &Name,
                                     unsigned ChainMuls, unsigned ChainAdds,
                                     unsigned Dist, unsigned SideLanes,
                                     uint64_t Trip, double Weight) {
  assert(ChainMuls + ChainAdds >= 1 && Dist >= 1 && "bad recurrence shape");
  LoopBuilder B(Name, Trip, Weight);
  unsigned A = B.array("A");
  unsigned S = B.array("S");
  unsigned R = B.array("R");
  Operand K = B.liveIn("k", 0.999);

  // The cycle: op 0 reads the last chain op at the carry distance; the
  // back reference is rewired once the chain exists.
  std::vector<unsigned> Chain;
  for (unsigned I = 0; I < ChainMuls + ChainAdds; ++I) {
    Opcode Op = I < ChainMuls ? Opcode::FMul : Opcode::FAdd;
    Operand Prev = I == 0 ? K : Operand::def(Chain.back());
    unsigned Ix = B.op(Op, formatString("r.%u", I), Prev, K);
    Chain.push_back(Ix);
  }
  B.rewireOperand(Chain.front(), 0, Operand::def(Chain.back(), Dist));
  B.setInit(Chain.back(), 1.0, 0.25);
  B.store(R, Operand::def(Chain.back()));

  int64_t Scale = std::max(1u, SideLanes);
  for (unsigned Lane = 0; Lane < SideLanes; ++Lane) {
    std::string Suffix = formatString(".s%u", Lane);
    unsigned X = B.load("x" + Suffix, A, Lane, Scale);
    unsigned M = B.op(Opcode::FMul, "m" + Suffix, Operand::def(X), K);
    unsigned U = B.op(Opcode::FAdd, "u" + Suffix, Operand::def(M), K);
    B.store(S, Operand::def(U), Lane, Scale);
  }
  return B.take();
}

Loop hcvliw::makeWideRecurrenceLoop(const std::string &Name,
                                    unsigned RecAdds, unsigned Dist,
                                    unsigned SideLanes, uint64_t Trip,
                                    double Weight) {
  return makeChainRecurrenceLoop(Name, /*ChainMuls=*/0, RecAdds, Dist,
                                 SideLanes, Trip, Weight);
}

Loop hcvliw::makeBorderlineLoop(const std::string &Name, unsigned Lanes,
                                unsigned RecAdds, uint64_t Trip,
                                double Weight) {
  LoopBuilder B(Name, Trip, Weight);
  unsigned A = B.array("A");
  unsigned C = B.array("B");
  unsigned S = B.array("S");
  unsigned R = B.array("R");
  Operand K = B.liveIn("k", 1.0625);

  std::vector<unsigned> Chain;
  for (unsigned I = 0; I < RecAdds; ++I) {
    Operand Prev = I == 0 ? K : Operand::def(Chain.back());
    Chain.push_back(B.op(Opcode::FAdd, formatString("r.%u", I), Prev, K));
  }
  if (!Chain.empty()) {
    B.rewireOperand(Chain.front(), 0, Operand::def(Chain.back(), 1));
    B.setInit(Chain.back(), 0.5, 0.5);
    B.store(R, Operand::def(Chain.back()));
  }

  int64_t Scale = std::max(1u, Lanes);
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    std::string Suffix = formatString(".%u", Lane);
    unsigned X = B.load("x" + Suffix, A, Lane, Scale);
    unsigned Y = B.load("y" + Suffix, C, Lane, Scale);
    unsigned M =
        B.op(Opcode::FMul, "m" + Suffix, Operand::def(X), Operand::def(Y));
    unsigned U = B.op(Opcode::FAdd, "u" + Suffix, Operand::def(M), K);
    B.store(S, Operand::def(U), Lane, Scale);
  }
  return B.take();
}

Loop hcvliw::makeRandomLoop(RNG &Rng, const RandomLoopParams &P,
                            const std::string &Name) {
  unsigned NumOps = static_cast<unsigned>(
      Rng.nextInt(P.MinOps, std::max(P.MinOps, P.MaxOps)));
  LoopBuilder B(Name, P.Trip, 1.0);
  unsigned In = B.array("IN");
  unsigned Out = B.array("OUT");
  Operand K = B.liveIn("k", 1.125);

  std::vector<unsigned> Defs; // ops producing values
  unsigned Emitted = 0;
  unsigned LoadCount = 0, StoreCount = 0;

  auto randomUse = [&](bool AllowCarried) -> Operand {
    if (Defs.empty() || Rng.nextBool(0.15))
      return K;
    size_t Lo = 0;
    if (P.OperandWindow && Defs.size() > P.OperandWindow)
      Lo = Defs.size() - P.OperandWindow;
    unsigned Ix = Defs[static_cast<size_t>(
        Rng.nextInt(static_cast<int64_t>(Lo),
                    static_cast<int64_t>(Defs.size()) - 1))];
    unsigned Dist = 0;
    if (AllowCarried && Rng.nextBool(0.2))
      Dist = static_cast<unsigned>(Rng.nextInt(1, P.MaxDist));
    return Operand::def(Ix, Dist);
  };

  while (Emitted < NumOps) {
    double Draw = Rng.nextDouble();
    if (Draw < P.MemFraction / 2) {
      // Load with a lane-disjoint address.
      Defs.push_back(B.load(formatString("ld.%u", LoadCount), In,
                            LoadCount, /*Scale=*/8));
      ++LoadCount;
      ++Emitted;
      continue;
    }
    if (Draw < P.MemFraction && !Defs.empty() && StoreCount < 7) {
      B.store(Out, randomUse(/*AllowCarried=*/true), StoreCount,
              /*Scale=*/8);
      ++StoreCount;
      ++Emitted;
      continue;
    }
    if (Rng.nextBool(P.RecurrenceProb / 4) && Emitted + 3 <= NumOps) {
      // Emit a short chain and close it into a recurrence.
      unsigned Len = static_cast<unsigned>(Rng.nextInt(2, P.MaxRecDepth));
      unsigned Dist = static_cast<unsigned>(Rng.nextInt(1, P.MaxDist));
      std::vector<unsigned> Chain;
      for (unsigned I = 0; I < Len && Emitted < NumOps; ++I, ++Emitted) {
        Opcode Op = Rng.nextBool(0.3) ? Opcode::FMul : Opcode::FAdd;
        Operand Prev = I == 0 ? K : Operand::def(Chain.back());
        Chain.push_back(
            B.op(Op, formatString("rc.%u", B.numOps()), Prev, K));
      }
      if (Chain.size() >= 2) {
        B.rewireOperand(Chain.front(), 0,
                        Operand::def(Chain.back(), Dist));
        B.setInit(Chain.back(), 1.0, 0.5);
      }
      for (unsigned C : Chain)
        Defs.push_back(C);
      continue;
    }
    // Plain arithmetic op.
    static const Opcode Pool[] = {Opcode::FAdd, Opcode::FMul, Opcode::FSub,
                                  Opcode::IntAdd, Opcode::IntMul,
                                  Opcode::FDiv,  Opcode::IntSub};
    Opcode Op = Pool[static_cast<size_t>(Rng.nextInt(0, 6))];
    Defs.push_back(B.op(Op, formatString("v.%u", B.numOps()),
                        randomUse(true), randomUse(false)));
    ++Emitted;
  }

  // Guarantee a sink so the loop has observable effects.
  if (StoreCount == 0)
    B.store(Out, Defs.empty() ? K : Operand::def(Defs.back()), 7,
            /*Scale=*/8);
  return B.take();
}

Loop hcvliw::makeUnrolledKernelLoop(const std::string &Name, unsigned Ops,
                                    unsigned Try) {
  // Seed formula shared with the historical probe runs; 7919 decorrelates
  // the tries without touching the size term.
  RNG Rng(0x5eed + Ops + 7919u * Try);
  RandomLoopParams P;
  P.MinOps = Ops;
  P.MaxOps = Ops;
  P.Trip = 64;
  P.RecurrenceProb = 0.1;
  P.MaxDist = 1;
  P.OperandWindow = 24;
  return makeRandomLoop(Rng, P, Name);
}

unsigned hcvliw::bigLoopRegisters(unsigned Ops) {
  return std::max(16u, Ops / 4);
}
