//===- workloads/SyntheticLoops.h - Parametric loop generators ---*- C++ -*-===//
///
/// \file
/// Parametric generators for the loop shapes that dominate SPECfp2000's
/// software-pipelined regions (the substrate replacing ORC + SPECfp, see
/// DESIGN.md):
///
///  - *stream* loops: independent load/compute/store lanes; purely
///    resource-constrained (swim/mgrid style).
///  - *stencil* loops: multi-tap reads, reduction tree, store; resource
///    constrained with heavy memory pressure.
///  - *chain recurrence* loops: one long-latency arithmetic cycle plus
///    independent side lanes; recurrence-constrained with few critical
///    instructions (sixtrack/facerec style).
///  - *wide recurrence* loops: recurrences containing many instructions
///    (fma3d/apsi style: speedups possible, smaller energy savings).
///  - *borderline* loops: recMII slightly above resMII (wupwise style).
///  - *random* loops: seed-reproducible property-test inputs.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_WORKLOADS_SYNTHETICLOOPS_H
#define HCVLIW_WORKLOADS_SYNTHETICLOOPS_H

#include "ir/Loop.h"
#include "support/RNG.h"

#include <string>

namespace hcvliw {

/// Independent lanes of load+load+fmul+fadd+store. resMII grows with
/// \p Lanes (memory-port bound); recMII stays 1.
Loop makeStreamLoop(const std::string &Name, unsigned Lanes, uint64_t Trip,
                    double Weight);

/// \p Taps loads of A around i, an fadd reduction tree scaled by a
/// live-in, one store to B.
Loop makeStencilLoop(const std::string &Name, unsigned Taps, uint64_t Trip,
                     double Weight);

/// A single recurrence cycle of \p ChainMuls fmul and \p ChainAdds fadd
/// at carry distance \p Dist, with \p SideLanes independent
/// load/fmul/fadd/store lanes feeding nothing back into the cycle.
/// recMII = ceil((6*ChainMuls + 3*ChainAdds) / Dist).
Loop makeChainRecurrenceLoop(const std::string &Name, unsigned ChainMuls,
                             unsigned ChainAdds, unsigned Dist,
                             unsigned SideLanes, uint64_t Trip,
                             double Weight);

/// A recurrence of \p RecAdds fadd ops at distance \p Dist (many
/// instructions inside the cycle) plus \p SideLanes side lanes.
Loop makeWideRecurrenceLoop(const std::string &Name, unsigned RecAdds,
                            unsigned Dist, unsigned SideLanes,
                            uint64_t Trip, double Weight);

/// \p Lanes stream lanes plus a recurrence of \p RecAdds fadds tuned so
/// recMII lands in [resMII, 1.3 * resMII).
Loop makeBorderlineLoop(const std::string &Name, unsigned Lanes,
                        unsigned RecAdds, uint64_t Trip, double Weight);

struct RandomLoopParams {
  unsigned MinOps = 8;
  unsigned MaxOps = 40;
  double MemFraction = 0.3;
  double RecurrenceProb = 0.5;
  unsigned MaxRecDepth = 4;
  unsigned MaxDist = 3;
  /// When nonzero, operands are drawn from the last OperandWindow
  /// defined values instead of uniformly over every earlier value.
  /// Unrolled/fused kernel bodies — the shape of real big loops — keep
  /// consumers near their producers; an unwindowed draw over hundreds
  /// of earlier ops manufactures values whose earliest and latest
  /// consumers are separated by most of the loop body, i.e. register
  /// lifetimes no schedule can make short. 0 = unlimited (historical
  /// behavior, same RNG draw sequence).
  unsigned OperandWindow = 0;
  uint64_t Trip = 32;
};

/// Seed-reproducible random loop; always valid (Loop::validate passes).
Loop makeRandomLoop(RNG &Rng, const RandomLoopParams &P,
                    const std::string &Name);

/// The shared big-loop fixture of the size-series bench and the
/// partition tests: an unrolled/fused-kernel-shaped body of exactly
/// \p Ops operations — windowed operand locality (consumers stay near
/// their producers, as in a real unrolled body), sparse distance-1
/// recurrences, memory-light op mix. \p Try varies the seed so a size
/// can be sampled more than once; the result is a pure function of
/// (Ops, Try).
Loop makeUnrolledKernelLoop(const std::string &Name, unsigned Ops,
                            unsigned Try = 0);

/// Per-cluster register count for a machine running \p Ops-operation
/// unrolled bodies: max(16, Ops / 4). The paper machine's 16 registers
/// per cluster legitimately hold only its ~100-op SPECfp loop
/// population — an unroller that multiplies the body also multiplies
/// the live values per iteration, and real large-body targets scale
/// the (rotating) register file with the unroll factor. Growing
/// nothing else keeps FU pressure and the II physics unchanged.
unsigned bigLoopRegisters(unsigned Ops);

} // namespace hcvliw

#endif // HCVLIW_WORKLOADS_SYNTHETICLOOPS_H
