//===- workloads/SyntheticLoops.h - Parametric loop generators ---*- C++ -*-===//
///
/// \file
/// Parametric generators for the loop shapes that dominate SPECfp2000's
/// software-pipelined regions (the substrate replacing ORC + SPECfp, see
/// DESIGN.md):
///
///  - *stream* loops: independent load/compute/store lanes; purely
///    resource-constrained (swim/mgrid style).
///  - *stencil* loops: multi-tap reads, reduction tree, store; resource
///    constrained with heavy memory pressure.
///  - *chain recurrence* loops: one long-latency arithmetic cycle plus
///    independent side lanes; recurrence-constrained with few critical
///    instructions (sixtrack/facerec style).
///  - *wide recurrence* loops: recurrences containing many instructions
///    (fma3d/apsi style: speedups possible, smaller energy savings).
///  - *borderline* loops: recMII slightly above resMII (wupwise style).
///  - *random* loops: seed-reproducible property-test inputs.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_WORKLOADS_SYNTHETICLOOPS_H
#define HCVLIW_WORKLOADS_SYNTHETICLOOPS_H

#include "ir/Loop.h"
#include "support/RNG.h"

#include <string>

namespace hcvliw {

/// Independent lanes of load+load+fmul+fadd+store. resMII grows with
/// \p Lanes (memory-port bound); recMII stays 1.
Loop makeStreamLoop(const std::string &Name, unsigned Lanes, uint64_t Trip,
                    double Weight);

/// \p Taps loads of A around i, an fadd reduction tree scaled by a
/// live-in, one store to B.
Loop makeStencilLoop(const std::string &Name, unsigned Taps, uint64_t Trip,
                     double Weight);

/// A single recurrence cycle of \p ChainMuls fmul and \p ChainAdds fadd
/// at carry distance \p Dist, with \p SideLanes independent
/// load/fmul/fadd/store lanes feeding nothing back into the cycle.
/// recMII = ceil((6*ChainMuls + 3*ChainAdds) / Dist).
Loop makeChainRecurrenceLoop(const std::string &Name, unsigned ChainMuls,
                             unsigned ChainAdds, unsigned Dist,
                             unsigned SideLanes, uint64_t Trip,
                             double Weight);

/// A recurrence of \p RecAdds fadd ops at distance \p Dist (many
/// instructions inside the cycle) plus \p SideLanes side lanes.
Loop makeWideRecurrenceLoop(const std::string &Name, unsigned RecAdds,
                            unsigned Dist, unsigned SideLanes,
                            uint64_t Trip, double Weight);

/// \p Lanes stream lanes plus a recurrence of \p RecAdds fadds tuned so
/// recMII lands in [resMII, 1.3 * resMII).
Loop makeBorderlineLoop(const std::string &Name, unsigned Lanes,
                        unsigned RecAdds, uint64_t Trip, double Weight);

struct RandomLoopParams {
  unsigned MinOps = 8;
  unsigned MaxOps = 40;
  double MemFraction = 0.3;
  double RecurrenceProb = 0.5;
  unsigned MaxRecDepth = 4;
  unsigned MaxDist = 3;
  uint64_t Trip = 32;
};

/// Seed-reproducible random loop; always valid (Loop::validate passes).
Loop makeRandomLoop(RNG &Rng, const RandomLoopParams &P,
                    const std::string &Name);

} // namespace hcvliw

#endif // HCVLIW_WORKLOADS_SYNTHETICLOOPS_H
