//===- tests/PipelineProbe.cpp - Manual pipeline inspection -----------------===//
//
// A diagnostic main (not a gtest): runs the full pipeline on the suite
// and prints the measured shapes, used while calibrating the workloads.
//
//===----------------------------------------------------------------------===//

#include "core/HeterogeneousPipeline.h"
#include "support/StrUtil.h"

#include <cstdio>

using namespace hcvliw;

int main(int argc, char **argv) {
  PipelineOptions Opts;
  if (argc > 1)
    Opts.Buses = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2 && std::atoi(argv[2]) > 0)
    Opts.MenuSize = static_cast<unsigned>(std::atoi(argv[2]));
  bool Verbose = argc > 3;
  HeterogeneousPipeline Pipe(Opts);

  for (const auto &Prog : buildSpecFPSuite()) {
    auto R = Pipe.runProgram(Prog);
    if (!R) {
      std::printf("%-14s FAILED\n", Prog.Name.c_str());
      continue;
    }
    auto Shares = R->Profile.shareByConstraint();
    const auto &HC = R->HetDesign.Config;
    std::printf("%-14s ED2 %.3f (est %.3f/%.3f) T %.2f/%.2f E %.3f/%.3f "
                "res/bord/rec %.2f/%.2f/%.2f fast=%s slow=%s Vf=%.2f "
                "Vs=%.2f homT=%s Vh=%.2f fail=%u/%u\n",
                R->Name.c_str(), R->ED2Ratio,
                R->HetDesign.EstED2 / 1e12, R->HomDesign.EstED2 / 1e12,
                R->HetMeasured.TexecNs / 1e6, R->HomMeasured.TexecNs / 1e6,
                R->HetMeasured.Energy, R->HomMeasured.Energy, Shares[0],
                Shares[1], Shares[2],
                HC.Clusters.front().PeriodNs.str().c_str(),
                HC.Clusters.back().PeriodNs.str().c_str(),
                HC.Clusters.front().Vdd, HC.Clusters.back().Vdd,
                R->HomDesign.Config.Clusters.front().PeriodNs.str().c_str(),
                R->HomDesign.Config.Clusters.front().Vdd,
                R->HetMeasured.Failures, R->HomMeasured.Failures);
    if (Verbose) {
      for (size_t I = 0; I < R->HetMeasured.Loops.size(); ++I) {
        const auto &H = R->HetMeasured.Loops[I];
        const auto &G = R->HomMeasured.Loops[I];
        const auto &P = R->Profile.Loops[I];
        std::printf("    %-16s IThet=%.3f IThom=%.3f recMII=%lld "
                    "resMII=%lld comms %u/%u Thet=%.0f Thom=%.0f\n",
                    H.Name.c_str(), H.ITNs, G.ITNs,
                    static_cast<long long>(P.RecMII),
                    static_cast<long long>(P.ResMII), H.Comms, G.Comms,
                    H.TexecNs, G.TexecNs);
      }
    }
  }
  return 0;
}
