//===- tests/SmokeTest.cpp - End-to-end scheduling smoke tests -------------===//
//
// Fast cross-module checks: DSL -> DDG -> recurrence analysis ->
// partition -> heterogeneous modulo schedule -> validation -> pipelined
// execution functionally equivalent to sequential execution.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopDSL.h"
#include "ir/RecurrenceAnalysis.h"
#include "mcd/DomainPlanner.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

const char *DotProductSrc = R"(
loop dot trip=64
  arrays A B S
  x = load A
  y = load B
  m = fmul x y
  s = fadd s@1 m init=0
  store S s
endloop
)";

TEST(Smoke, ParseAnalyze) {
  Loop L = parseSingleLoop(DotProductSrc);
  EXPECT_EQ(L.size(), 5u);
  DDG G = DDG::build(L);
  MachineDescription M = MachineDescription::paperDefault();
  RecurrenceInfo R = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
  // s = fadd s@1: one self-recurrence of latency 3 at distance 1.
  ASSERT_EQ(R.Recurrences.size(), 1u);
  EXPECT_EQ(R.RecMII, 3);
  EXPECT_EQ(M.computeResMII(L), 1);
}

TEST(Smoke, HomogeneousScheduleRuns) {
  Loop L = parseSingleLoop(DotProductSrc);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler S(M, C);
  LoopScheduleResult R = S.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  EXPECT_EQ(validateSchedule(M, R.PG, R.Sched), "");
  EXPECT_EQ(checkFunctionalEquivalence(L, R.PG, R.Sched, M, 64), "");
}

TEST(Smoke, HeterogeneousScheduleRuns) {
  Loop L = parseSingleLoop(DotProductSrc);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  // One fast cluster at 0.9 ns, three slow at 1.35 ns.
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);

  LoopScheduler S(M, C);
  LoopScheduleResult R = S.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  EXPECT_EQ(validateSchedule(M, R.PG, R.Sched), "");
  EXPECT_EQ(checkFunctionalEquivalence(L, R.PG, R.Sched, M, 64), "");
}

} // namespace
