//===- tests/configsel/ConfigSelTest.cpp - Section 3 selection --------------===//

#include "explore/ConfigurationSelector.h"
#include "profiling/Profiler.h"
#include "runtime/WorkerPool.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

struct Fixture {
  MachineDescription M = MachineDescription::paperDefault();
  ProgramProfile Profile;
  TechnologyModel Tech = TechnologyModel::paperDefault();

  explicit Fixture(std::vector<Loop> Loops) {
    Profiler Prof(M, 1e6);
    auto P = Prof.profileProgram("fixture", Loops);
    EXPECT_TRUE(P.has_value());
    Profile = std::move(*P);
  }

  EnergyModel energy(EnergyBreakdown B = EnergyBreakdown()) const {
    return EnergyModel(B, Profile.Totals, Profile.TexecRefNs,
                       M.numClusters());
  }
};

TEST(Scaling, ReferenceConfigIsUnity) {
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  HeteroScaling S =
      scalingForConfig(C, M, TechnologyModel::paperDefault());
  for (const auto &D : S.Clusters) {
    EXPECT_NEAR(D.Delta, 1.0, 1e-12);
    EXPECT_NEAR(D.Sigma, 1.0, 1e-12);
  }
  EXPECT_NEAR(S.Cache.Delta, 1.0, 1e-12);
}

TEST(TimingEstimator, ReferenceConfigMatchesHomogeneousII) {
  Fixture F({makeStreamLoop("s", 5, 64, 1.0)});
  HeteroConfig C = HeteroConfig::reference(F.M);
  LoopTimingEstimate E = estimateLoopTiming(
      F.Profile.Loops[0], F.M, C, FrequencyMenu::continuous());
  ASSERT_TRUE(E.Feasible);
  // On the reference machine the estimate must not beat the measured
  // homogeneous II; it may exceed it by one slot because the estimator
  // packs connected components atomically while the real scheduler may
  // split a lane across clusters (paying communications).
  EXPECT_GE(E.ITNs, Rational(F.Profile.Loops[0].ResMII));
  EXPECT_LE(E.ITNs, Rational(F.Profile.Loops[0].IIHom + 1));
  // Equal cluster shares on a uniform machine.
  for (double S : E.ClusterShare)
    EXPECT_NEAR(S, 0.25, 1e-12);
}

TEST(TimingEstimator, SlowerClustersRaiseIT) {
  Fixture F({makeStreamLoop("s", 6, 64, 1.0)});
  HeteroConfig Ref = HeteroConfig::reference(F.M);
  HeteroConfig Het = Ref;
  for (unsigned I = 1; I < 4; ++I)
    Het.Clusters[I].PeriodNs = Rational(3, 2);
  LoopTimingEstimate ERef = estimateLoopTiming(
      F.Profile.Loops[0], F.M, Ref, FrequencyMenu::continuous());
  LoopTimingEstimate EHet = estimateLoopTiming(
      F.Profile.Loops[0], F.M, Het, FrequencyMenu::continuous());
  ASSERT_TRUE(ERef.Feasible && EHet.Feasible);
  // The split allowance can absorb the capacity loss at equal IT, but
  // never below the reference; the iteration tail strictly stretches.
  EXPECT_GE(EHet.ITNs, ERef.ITNs);
  EXPECT_GT(EHet.ItLengthNs, ERef.ItLengthNs);
}

TEST(TimingEstimator, RecurrenceBoundUsesFastCluster) {
  Fixture F({makeChainRecurrenceLoop("r", 1, 2, 1, 3, 64, 1.0)});
  HeteroConfig Het = HeteroConfig::reference(F.M);
  Het.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    Het.Clusters[I].PeriodNs = Rational(27, 20);
  Het.Icn.PeriodNs = Rational(9, 10);
  Het.Cache.PeriodNs = Rational(9, 10);
  LoopTimingEstimate E = estimateLoopTiming(
      F.Profile.Loops[0], F.M, Het, FrequencyMenu::continuous());
  ASSERT_TRUE(E.Feasible);
  // recMIT = recMII(12) * 0.9 = 10.8: the recurrence rides the fast
  // cluster, beating the homogeneous 12 ns.
  EXPECT_LT(E.ITNs, Rational(12));
  EXPECT_GE(E.ITNs, Rational(54, 5));
}

TEST(Selector, PaperDefaultSpace) {
  DesignSpaceOptions S = DesignSpaceOptions::paperDefault();
  EXPECT_EQ(S.FastFactors.size(), 5u);
  EXPECT_EQ(S.SlowRatios.size(), 4u);
  EXPECT_EQ(S.NumFastClusters, 1u);
  EXPECT_DOUBLE_EQ(S.ClusterVddGrid.front(), 0.70);
  EXPECT_DOUBLE_EQ(S.ClusterVddGrid.back(), 1.20);
  EXPECT_DOUBLE_EQ(S.IcnVddGrid.back(), 1.10);
  EXPECT_DOUBLE_EQ(S.CacheVddGrid.back(), 1.40);
}

TEST(Selector, SelectsValidDesignsAndHetBeatsHomEstimate) {
  Fixture F({makeChainRecurrenceLoop("r1", 1, 2, 1, 4, 64, 0.7),
             makeStreamLoop("s1", 5, 64, 0.3)});
  EnergyModel E = F.energy();
  ConfigurationSelector Sel(F.Profile, F.M, E, F.Tech,
                            FrequencyMenu::continuous(),
                            DesignSpaceOptions::paperDefault());
  SelectedDesign Het = Sel.selectHeterogeneous();
  SelectedDesign Hom = Sel.selectOptimumHomogeneous();
  ASSERT_TRUE(Het.Valid);
  ASSERT_TRUE(Hom.Valid);
  EXPECT_LE(Het.EstED2, Hom.EstED2);
  // Voltages respect the per-component ranges.
  for (const auto &Cl : Het.Config.Clusters) {
    EXPECT_GE(Cl.Vdd, 0.70 - 1e-9);
    EXPECT_LE(Cl.Vdd, 1.20 + 1e-9);
    EXPECT_GT(Cl.Vth, 0.0);
  }
  EXPECT_GE(Het.Config.Cache.Vdd, 1.00 - 1e-9);
  EXPECT_LE(Het.Config.Cache.Vdd, 1.40 + 1e-9);
  // Cache and ICN clock with the fastest cluster (Section 5).
  EXPECT_EQ(Het.Config.Cache.PeriodNs, Het.Config.fastestClusterPeriod());
  EXPECT_EQ(Het.Config.Icn.PeriodNs, Het.Config.fastestClusterPeriod());
}

TEST(Selector, RankedCandidatesSorted) {
  Fixture F({makeChainRecurrenceLoop("r1", 1, 2, 1, 4, 64, 1.0)});
  EnergyModel E = F.energy();
  ConfigurationSelector Sel(F.Profile, F.M, E, F.Tech,
                            FrequencyMenu::continuous(),
                            DesignSpaceOptions::paperDefault());
  auto Ranked = Sel.rankHeterogeneous();
  ASSERT_FALSE(Ranked.empty());
  for (size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_LE(Ranked[I - 1].EstED2, Ranked[I].EstED2);
}

// Regression pin: the engine-backed selector must keep reproducing the
// design the seed's exhaustive serial search picked on the paper-default
// grids for this fixture. If an intentional model change moves the
// optimum, update these literals alongside the change.
TEST(Selector, PaperDefaultSelectedDesignRegression) {
  Fixture F({makeChainRecurrenceLoop("r1", 1, 2, 1, 4, 64, 0.7),
             makeStreamLoop("s1", 5, 64, 0.3)});
  EnergyModel E = F.energy();
  ConfigurationSelector Sel(F.Profile, F.M, E, F.Tech,
                            FrequencyMenu::continuous(),
                            DesignSpaceOptions::paperDefault());
  SelectedDesign D = Sel.selectHeterogeneous();
  ASSERT_TRUE(D.Valid);
  EXPECT_EQ(D.Config.Clusters.front().PeriodNs, Rational(1));
  EXPECT_EQ(D.Config.Clusters.back().PeriodNs, Rational(5, 4));
  EXPECT_DOUBLE_EQ(D.Config.Clusters.front().Vdd, 1.05);
  EXPECT_DOUBLE_EQ(D.Config.Clusters.back().Vdd, 0.85);
  EXPECT_DOUBLE_EQ(D.Config.Icn.Vdd, 0.95);
  EXPECT_DOUBLE_EQ(D.Config.Cache.Vdd, 1.25);
  EXPECT_NEAR(D.EstTexecNs, 1078626.9430051814, 1e-6);
  EXPECT_NEAR(D.EstEnergy, 0.69296920124225836, 1e-12);
  EXPECT_NEAR(D.EstED2, 806225372562.41223, 1.0);

  // The selector is the engine's Threads=1, no-prune special case; a
  // parallel, pruning run must agree on the selected design exactly.
  ExploreOptions Par;
  Par.Threads = 4;
  auto R = Sel.explore(Par);
  ASSERT_TRUE(R.Best.Valid);
  EXPECT_EQ(R.Best.EstED2, D.EstED2);
  EXPECT_EQ(R.Best.EstTexecNs, D.EstTexecNs);
  EXPECT_EQ(R.Best.Config.Clusters.front().PeriodNs,
            D.Config.Clusters.front().PeriodNs);
  EXPECT_EQ(R.Best.Config.Clusters.back().PeriodNs,
            D.Config.Clusters.back().PeriodNs);

  // Session substrate: a selector wired onto a shared cache and a
  // long-lived pool must reproduce the same pinned design, and a
  // second selection must run entirely from the cache.
  WorkerPool Pool(4);
  EvalCache Shared(F.M, FrequencyMenu::continuous());
  ConfigurationSelector SharedSel(F.Profile, F.M, E, F.Tech,
                                  FrequencyMenu::continuous(),
                                  DesignSpaceOptions::paperDefault(),
                                  &Shared, &Pool);
  SelectedDesign DS = SharedSel.selectHeterogeneous();
  ASSERT_TRUE(DS.Valid);
  EXPECT_EQ(DS.EstED2, D.EstED2);
  EXPECT_EQ(DS.EstTexecNs, D.EstTexecNs);
  EXPECT_EQ(DS.EstEnergy, D.EstEnergy);
  uint64_t Misses = Shared.misses();
  SelectedDesign DS2 = SharedSel.selectHeterogeneous();
  EXPECT_EQ(DS2.EstED2, D.EstED2);
  EXPECT_EQ(Shared.misses(), Misses) << "re-selection re-ran the estimator";
}

TEST(Selector, HomogeneousOptimumNoWorseThanReferencePoint) {
  Fixture F({makeStreamLoop("s", 5, 64, 1.0)});
  EnergyModel E = F.energy();
  ConfigurationSelector Sel(F.Profile, F.M, E, F.Tech,
                            FrequencyMenu::continuous(),
                            DesignSpaceOptions::paperDefault());
  SelectedDesign Hom = Sel.selectOptimumHomogeneous();
  ASSERT_TRUE(Hom.Valid);
  // Estimated ED2 of the reference point itself (factor 1, Vdd 1.0).
  double RefED2 = computeED2(1.0, F.Profile.TexecRefNs);
  EXPECT_LE(Hom.EstED2, RefED2 * 1.0001);
}

} // namespace
