//===- tests/core/PipelineTest.cpp - End-to-end paper reproduction ----------===//
//
// The headline assertions: on every benchmark the measured ED2 of the
// selected heterogeneous design is at most that of the optimum
// homogeneous design (within noise), the per-program ordering follows
// the paper's Figure 6 (sixtrack best, facerec next, wupwise/applu
// smallest), and every measured schedule is functionally exact.
//
//===----------------------------------------------------------------------===//

#include "core/HeterogeneousPipeline.h"
#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <map>

using namespace hcvliw;

namespace {

// One shared run of the whole suite (the pipeline is deterministic),
// through the Session/SuiteRunner API: programs fan out across the
// session pool and selections share the session EvalCache — results
// are bit-identical to the serial standalone pipeline, which
// SessionSuiteTest pins explicitly.
const std::map<std::string, ProgramRunResult> &suiteResults() {
  static const std::map<std::string, ProgramRunResult> Results = [] {
    std::map<std::string, ProgramRunResult> R;
    PipelineOptions Opts;
    Opts.SimCheckIterations = 48; // functional checks on every schedule
    Session S(Opts, 4);
    SuiteResult Suite = SuiteRunner(S).runSpecFP();
    for (ProgramRunResult &Res : Suite.Details) {
      std::string Name = Res.Name;
      R.emplace(std::move(Name), std::move(Res));
    }
    return R;
  }();
  return Results;
}

TEST(Pipeline, AllProgramsRun) {
  EXPECT_EQ(suiteResults().size(), 10u);
  for (const auto &[Name, R] : suiteResults()) {
    EXPECT_EQ(R.HetMeasured.Failures, 0u) << Name;
    EXPECT_EQ(R.HomMeasured.Failures, 0u) << Name;
    EXPECT_GT(R.HetMeasured.TexecNs, 0) << Name;
    EXPECT_GT(R.HetMeasured.Energy, 0) << Name;
  }
}

TEST(Pipeline, HeterogeneityNeverLoses) {
  for (const auto &[Name, R] : suiteResults())
    EXPECT_LE(R.ED2Ratio, 1.005) << Name;
}

TEST(Pipeline, MeanBenefitMatchesPaperBand) {
  double Sum = 0;
  for (const auto &[Name, R] : suiteResults())
    Sum += R.ED2Ratio;
  double Mean = Sum / static_cast<double>(suiteResults().size());
  // Paper: ~15% mean ED2 benefit. Accept 8-20%.
  EXPECT_LT(Mean, 0.92);
  EXPECT_GT(Mean, 0.80);
}

TEST(Pipeline, SixtrackIsTheBestCase) {
  const auto &R = suiteResults();
  double Six = R.at("200.sixtrack").ED2Ratio;
  EXPECT_LT(Six, 0.72); // paper: ~35% reduction
  for (const auto &[Name, Res] : R)
    EXPECT_LE(Six, Res.ED2Ratio + 1e-9) << Name;
}

TEST(Pipeline, FacerecStrongRecurrenceWin) {
  EXPECT_LT(suiteResults().at("187.facerec").ED2Ratio, 0.82);
}

TEST(Pipeline, WupwiseAndApplusAreSmallest) {
  const auto &R = suiteResults();
  // Paper: smallest benefits (~5%) for wupwise and applu.
  EXPECT_GT(R.at("168.wupwise").ED2Ratio, 0.90);
  EXPECT_GT(R.at("173.applu").ED2Ratio, 0.90);
}

TEST(Pipeline, RecurrenceProgramsBeatResourcePrograms) {
  const auto &R = suiteResults();
  double RecMean = (R.at("200.sixtrack").ED2Ratio +
                    R.at("187.facerec").ED2Ratio +
                    R.at("191.fma3d").ED2Ratio) /
                   3.0;
  double ResMean =
      (R.at("171.swim").ED2Ratio + R.at("172.mgrid").ED2Ratio) / 2.0;
  EXPECT_LT(RecMean, ResMean);
}

TEST(Pipeline, ResourceProgramsTradeTimeForEnergy) {
  // The paper: swim/mgrid pick a lower frequency; execution time rises
  // ~5% while energy drops ~15%.
  const auto &R = suiteResults().at("171.swim");
  EXPECT_GE(R.HetMeasured.TexecNs, R.HomMeasured.TexecNs * 0.999);
  EXPECT_LT(R.HetMeasured.Energy, R.HomMeasured.Energy);
}

TEST(Pipeline, RecurrenceProgramsKeepOrGainSpeed) {
  const auto &R = suiteResults().at("200.sixtrack");
  EXPECT_LE(R.HetMeasured.TexecNs, R.HomMeasured.TexecNs * 1.01);
}

TEST(Pipeline, SelectedConfigsRespectVoltageRanges) {
  for (const auto &[Name, R] : suiteResults()) {
    for (const auto &Cl : R.HetDesign.Config.Clusters) {
      EXPECT_GE(Cl.Vdd, 0.70 - 1e-9) << Name;
      EXPECT_LE(Cl.Vdd, 1.20 + 1e-9) << Name;
    }
    EXPECT_GE(R.HetDesign.Config.Icn.Vdd, 0.80 - 1e-9) << Name;
    EXPECT_LE(R.HetDesign.Config.Icn.Vdd, 1.10 + 1e-9) << Name;
    EXPECT_GE(R.HetDesign.Config.Cache.Vdd, 1.00 - 1e-9) << Name;
    EXPECT_LE(R.HetDesign.Config.Cache.Vdd, 1.40 + 1e-9) << Name;
    // Fast clusters first; slow never faster than fast.
    const auto &Cls = R.HetDesign.Config.Clusters;
    for (size_t I = 1; I < Cls.size(); ++I)
      EXPECT_GE(Cls[I].PeriodNs, Cls.front().PeriodNs) << Name;
  }
}

TEST(Pipeline, TwoBusesSimilarBenefits) {
  PipelineOptions Opts;
  Opts.Buses = 2;
  HeterogeneousPipeline Pipe(Opts);
  auto R1 = suiteResults().at("200.sixtrack");
  auto Prog = buildSpecFPProgram("200.sixtrack");
  auto R2 = Pipe.runProgram(Prog);
  ASSERT_TRUE(R2.has_value());
  EXPECT_NEAR(R2->ED2Ratio, R1.ED2Ratio, 0.05);
}

TEST(Pipeline, RestrictedMenuDegradesGracefully) {
  PipelineOptions Opts;
  Opts.MenuSize = 4;
  HeterogeneousPipeline Pipe(Opts);
  double Sum = 0;
  unsigned N = 0;
  for (const auto &Name :
       {"200.sixtrack", "187.facerec", "171.swim", "168.wupwise"}) {
    auto R = Pipe.runProgram(buildSpecFPProgram(Name));
    ASSERT_TRUE(R.has_value()) << Name;
    EXPECT_LE(R->ED2Ratio, 1.05) << Name;
    Sum += R->ED2Ratio;
    ++N;
  }
  // Mean over these four still clearly below 1.
  EXPECT_LT(Sum / N, 0.95);
}

TEST(Pipeline, EstimatorTracksMeasurement) {
  // The Section 3 models drive the selection; they should predict the
  // measured heterogeneous ED2 within a factor of 2 everywhere.
  for (const auto &[Name, R] : suiteResults()) {
    double Ratio = R.HetDesign.EstED2 / R.HetMeasured.ED2;
    EXPECT_GT(Ratio, 0.5) << Name;
    EXPECT_LT(Ratio, 2.0) << Name;
  }
}

} // namespace
