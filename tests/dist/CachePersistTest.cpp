//===- tests/dist/CachePersistTest.cpp - Persistent cache tier --------------===//
//
// The on-disk cache tier's safety contracts (runtime/CachePersist):
// a snapshot round-trips — the warm session serves persist hits and
// produces results bit-identical to cold; snapshots are byte-
// deterministic (equal cache contents, equal files); the corruption
// matrix — truncation mid-frame, bit-flip in a record body, bit-flip
// in the header, key-schema version skew, binding mismatch, empty
// file, unknown record kind — quarantines or refuses with exact
// counts and never changes a result; the "cache.load" fault site
// drives the quarantine path from a plan; and mergeCacheSnapshots is
// last-wins, idempotent and byte-deterministic across input orders.
//
//===----------------------------------------------------------------------===//

#include "DistTestUtil.h"

#include "runtime/CachePersist.h"
#include "runtime/Session.h"
#include "support/RecordIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace hcvliw;
using namespace disttest;

namespace {

// --- binding fingerprint ---------------------------------------------------

TEST(CacheBinding, PureAndStructural) {
  Session A{PipelineOptions(), 1};
  Session B{PipelineOptions(), 1};
  EXPECT_EQ(A.cacheBinding(), B.cacheBinding()); // pure

  PipelineOptions Wider;
  Wider.NumClusters = 8;
  Session C{Wider, 1};
  EXPECT_NE(A.cacheBinding(), C.cacheBinding()); // machine structure

  PipelineOptions MoreBuses;
  MoreBuses.Buses = 3;
  Session D{MoreBuses, 1};
  EXPECT_NE(A.cacheBinding(), D.cacheBinding());
}

// --- shared fixture: one cold run + snapshot, computed once ----------------

class CachePersistFixture : public ::testing::Test {
protected:
  static std::vector<BenchmarkProgram> Programs;
  static std::string ColdKey;   ///< suiteResultKey of the cold run
  static std::string SnapBytes; ///< the snapshot the cold run saved
  static CacheSaveStats Saved;

  static void SetUpTestSuite() {
    for (const char *Name : {"171.swim", "172.mgrid"})
      Programs.push_back(buildSpecFPProgram(Name));
    Session Cold{PipelineOptions(), 1};
    SuiteResult R = SuiteRunner(Cold).run(Programs);
    ASSERT_EQ(R.Names.size(), 2u);
    ColdKey = suiteResultKey(R);
    std::string Path = tempPath("cachepersist_fixture.cache");
    std::string Err;
    ASSERT_TRUE(Cold.saveCacheTo(Path, &Err)) << Err;
    Saved = Cold.cachePersistSaveStats();
    ASSERT_GT(Saved.saved(), 0u);
    SnapBytes = slurp(Path);
    std::remove(Path.c_str());

    // Byte determinism: saving the same cache contents again produces
    // the identical file.
    std::string Again = tempPath("cachepersist_fixture2.cache");
    ASSERT_TRUE(Cold.saveCacheTo(Again, &Err)) << Err;
    ASSERT_EQ(SnapBytes, slurp(Again));
    std::remove(Again.c_str());
  }

  /// Writes \p Bytes to a temp snapshot and loads it into a fresh
  /// session; returns load success, filling the session's stats.
  static bool loadInto(Session &S, const std::string &Bytes,
                       const std::string &Name, std::string *Err = nullptr) {
    std::string Path = tempPath(Name);
    spit(Path, Bytes);
    bool Ok = S.loadCacheFrom(Path, Err);
    std::remove(Path.c_str());
    return Ok;
  }
};

std::vector<BenchmarkProgram> CachePersistFixture::Programs;
std::string CachePersistFixture::ColdKey;
std::string CachePersistFixture::SnapBytes;
CacheSaveStats CachePersistFixture::Saved;

TEST_F(CachePersistFixture, RoundTripWarmsAndPreservesResults) {
  Session Warm{PipelineOptions(), 1};
  std::string Err;
  ASSERT_TRUE(loadInto(Warm, SnapBytes, "cp_roundtrip.cache", &Err)) << Err;
  EXPECT_EQ(Warm.cachePersistLoadStats().loaded(), Saved.saved());
  EXPECT_EQ(Warm.cachePersistLoadStats().CorruptFrames, 0u);

  SuiteResult R = SuiteRunner(Warm).run(Programs);
  EXPECT_EQ(suiteResultKey(R), ColdKey); // warm == cold, bitwise
  EXPECT_GT(Warm.cachePersistHits(), 0u);

  // The warm session's caches hold the same entries; its snapshot is
  // byte-identical to the cold one.
  std::string Resave = tempPath("cp_resave.cache");
  ASSERT_TRUE(Warm.saveCacheTo(Resave, &Err)) << Err;
  EXPECT_EQ(slurp(Resave), SnapBytes);
  std::remove(Resave.c_str());
}

// --- corruption matrix ------------------------------------------------------

TEST_F(CachePersistFixture, TruncationMidFrameQuarantinesOneFrame) {
  size_t LastRec = SnapBytes.rfind("\nrec ");
  ASSERT_NE(LastRec, std::string::npos);
  // Cut into the middle of the last record line: the torn-tail shape.
  std::string Torn = SnapBytes.substr(0, LastRec + 15);

  Session S{PipelineOptions(), 1};
  std::string Err;
  ASSERT_TRUE(loadInto(S, Torn, "cp_torn.cache", &Err)) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().CorruptFrames, 1u);
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), Saved.saved() - 1);
}

TEST_F(CachePersistFixture, BitFlipInBodyQuarantinesThatFrameOnly) {
  size_t FirstRec = SnapBytes.find("\nrec ");
  ASSERT_NE(FirstRec, std::string::npos);
  size_t LineEnd = SnapBytes.find('\n', FirstRec + 1);
  ASSERT_NE(LineEnd, std::string::npos);
  std::string Flipped = SnapBytes;
  char &C = Flipped[LineEnd - 1]; // last body byte: CRC must catch it
  C = (C == 'a') ? 'b' : 'a';

  Session S{PipelineOptions(), 1};
  std::string Err;
  ASSERT_TRUE(loadInto(S, Flipped, "cp_flip.cache", &Err)) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().CorruptFrames, 1u);
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), Saved.saved() - 1);

  // The quarantine never changes a result: the partially warmed run is
  // still bit-identical to cold.
  SuiteResult R = SuiteRunner(S).run(Programs);
  EXPECT_EQ(suiteResultKey(R), ColdKey);
}

TEST_F(CachePersistFixture, BitFlipInHeaderRefuses) {
  std::string Flipped = SnapBytes;
  ASSERT_GT(Flipped.size(), 3u);
  Flipped[2] = (Flipped[2] == 'a') ? 'b' : 'a'; // inside the magic line

  Session S{PipelineOptions(), 1};
  std::string Err;
  EXPECT_FALSE(loadInto(S, Flipped, "cp_badmagic.cache", &Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), 0u); // imported nothing
}

TEST_F(CachePersistFixture, VersionSkewRefuses) {
  std::string Skewed = SnapBytes;
  size_t Pos = Skewed.find("schema 1 ");
  ASSERT_NE(Pos, std::string::npos);
  Skewed.replace(Pos, 9, "schema 999 ");

  Session S{PipelineOptions(), 1};
  std::string Err;
  EXPECT_FALSE(loadInto(S, Skewed, "cp_skew.cache", &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), 0u);
}

TEST_F(CachePersistFixture, BindingMismatchRefuses) {
  size_t Pos = SnapBytes.find("binding ");
  ASSERT_NE(Pos, std::string::npos);
  std::string Other = SnapBytes;
  char &C = Other[Pos + 8]; // first hex digit of the binding
  C = (C == '0') ? '1' : '0';

  Session S{PipelineOptions(), 1};
  std::string Err;
  EXPECT_FALSE(loadInto(S, Other, "cp_binding.cache", &Err));
  EXPECT_NE(Err.find("binding"), std::string::npos) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), 0u);
}

TEST_F(CachePersistFixture, EmptyFileRefuses) {
  Session S{PipelineOptions(), 1};
  std::string Err;
  EXPECT_FALSE(loadInto(S, "", "cp_empty.cache", &Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;
}

TEST_F(CachePersistFixture, UnknownRecordKindIsQuarantined) {
  // A well-formed frame (CRC matches) of a kind this build does not
  // know: quarantine, never guess.
  std::string Body = "42 13";
  char Frame[64];
  std::snprintf(Frame, sizeof Frame, "rec zzz %08x %s\n",
                recio::crc32(Body), Body.c_str());
  std::string WithAlien = SnapBytes + Frame;

  Session S{PipelineOptions(), 1};
  std::string Err;
  ASSERT_TRUE(loadInto(S, WithAlien, "cp_alien.cache", &Err)) << Err;
  EXPECT_EQ(S.cachePersistLoadStats().CorruptFrames, 1u);
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), Saved.saved());
}

TEST_F(CachePersistFixture, FaultPlanDrivesQuarantinePath) {
  // Every third frame "corrupts" via the cache.load degrade site — the
  // chaos suite's way to exercise quarantine without crafted bytes.
  Session S{PipelineOptions(), 1};
  auto Plan = fault::FaultPlan::parse("on cache.load every 3 degrade");
  ASSERT_TRUE(Plan.has_value());
  S.faultInjector().arm(*Plan);

  std::string Err;
  ASSERT_TRUE(loadInto(S, SnapBytes, "cp_fault.cache", &Err)) << Err;
  S.faultInjector().disarm();

  uint64_t Expect = Saved.saved() / 3;
  EXPECT_EQ(S.cachePersistLoadStats().CorruptFrames, Expect);
  EXPECT_EQ(S.cachePersistLoadStats().loaded(), Saved.saved() - Expect);
  EXPECT_EQ(S.faultInjector().injectedDegrades(), Expect);
}

// --- merge ------------------------------------------------------------------

TEST_F(CachePersistFixture, MergeIsLastWinsIdempotentAndDeterministic) {
  // Two sessions warm disjoint-ish cache contents (one program each).
  std::string PathA = tempPath("cp_merge_a.cache");
  std::string PathB = tempPath("cp_merge_b.cache");
  uint64_t SavedA = 0, SavedB = 0;
  {
    Session A{PipelineOptions(), 1};
    SuiteRunner(A).run({Programs[0]});
    std::string Err;
    ASSERT_TRUE(A.saveCacheTo(PathA, &Err)) << Err;
    SavedA = A.cachePersistSaveStats().saved();
  }
  {
    Session B{PipelineOptions(), 1};
    SuiteRunner(B).run({Programs[1]});
    std::string Err;
    ASSERT_TRUE(B.saveCacheTo(PathB, &Err)) << Err;
    SavedB = B.cachePersistSaveStats().saved();
  }

  // Input order never changes the merged bytes (values under equal
  // keys are bit-identical, and emission is canonical).
  std::string OutAB = tempPath("cp_merge_ab.cache");
  std::string OutBA = tempPath("cp_merge_ba.cache");
  uint64_t Corrupt = 77;
  std::string Err;
  ASSERT_TRUE(mergeCacheSnapshots({PathA, PathB}, OutAB, &Corrupt, &Err))
      << Err;
  EXPECT_EQ(Corrupt, 0u);
  ASSERT_TRUE(mergeCacheSnapshots({PathB, PathA}, OutBA, nullptr, &Err))
      << Err;
  EXPECT_EQ(slurp(OutAB), slurp(OutBA));

  // Idempotent: merging a snapshot with itself only dedupes.
  std::string OutAA = tempPath("cp_merge_aa.cache");
  ASSERT_TRUE(mergeCacheSnapshots({PathA, PathA}, OutAA, nullptr, &Err))
      << Err;
  std::string OutA = tempPath("cp_merge_a1.cache");
  ASSERT_TRUE(mergeCacheSnapshots({PathA}, OutA, nullptr, &Err)) << Err;
  EXPECT_EQ(slurp(OutAA), slurp(OutA));

  // The merged snapshot loads cleanly and covers both inputs.
  Session M{PipelineOptions(), 1};
  ASSERT_TRUE(M.loadCacheFrom(OutAB, &Err)) << Err;
  EXPECT_EQ(M.cachePersistLoadStats().CorruptFrames, 0u);
  EXPECT_GE(M.cachePersistLoadStats().loaded(),
            std::max(SavedA, SavedB));
  // Warmed from the merge, the two-program run is bit-identical to the
  // fixture's cold run.
  SuiteResult R = SuiteRunner(M).run(Programs);
  EXPECT_EQ(suiteResultKey(R), ColdKey);
  EXPECT_GT(M.cachePersistHits(), 0u);

  for (const std::string &P : {PathA, PathB, OutAB, OutBA, OutAA, OutA})
    std::remove(P.c_str());
}

TEST_F(CachePersistFixture, MergeRefusesMismatchedInputs) {
  std::string Good = tempPath("cp_mm_good.cache");
  spit(Good, SnapBytes);
  std::string Skewed = SnapBytes;
  size_t Pos = Skewed.find("schema 1 ");
  ASSERT_NE(Pos, std::string::npos);
  Skewed.replace(Pos, 9, "schema 999 ");
  std::string Bad = tempPath("cp_mm_bad.cache");
  spit(Bad, Skewed);

  std::string Out = tempPath("cp_mm_out.cache");
  std::string Err;
  EXPECT_FALSE(mergeCacheSnapshots({Good, Bad}, Out, nullptr, &Err));
  EXPECT_FALSE(Err.empty());
  for (const std::string &P : {Good, Bad, Out})
    std::remove(P.c_str());
}

} // namespace
